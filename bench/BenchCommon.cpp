#include "BenchCommon.h"

#include "apps/Kernel.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace atmem;
using namespace atmem::bench;

void bench::addCommonOptions(OptionParser &Parser) {
  Parser.addString("datasets", "all",
                   "comma-separated dataset names or 'all' "
                   "(pokec,rmat24,twitter,rmat27,friendster)");
  Parser.addString("kernels", "all",
                   "comma-separated kernel names or 'all' "
                   "(bfs,sssp,pr,bc,cc)");
  Parser.addDouble("scale", graph::DefaultScaleDivisor,
                   "dataset scale divisor (paper size / divisor)");
  Parser.addFlag("quick", "restrict to two datasets and two kernels");
}

bool bench::readCommonOptions(const OptionParser &Parser, BenchOptions &Out) {
  Out.ScaleDivisor = Parser.getDouble("scale");
  Out.Quick = Parser.getFlag("quick");

  std::string DatasetArg = Parser.getString("datasets");
  if (DatasetArg == "all") {
    Out.Datasets = graph::datasetNames();
  } else {
    for (const std::string &Name : splitString(DatasetArg, ',')) {
      if (!graph::isKnownDataset(Name)) {
        std::fprintf(stderr, "error: unknown dataset '%s'\n", Name.c_str());
        return false;
      }
      Out.Datasets.push_back(Name);
    }
  }

  std::string KernelArg = Parser.getString("kernels");
  if (KernelArg == "all") {
    Out.Kernels = apps::kernelNames();
  } else {
    for (const std::string &Name : splitString(KernelArg, ',')) {
      if (!apps::isKnownKernel(Name)) {
        std::fprintf(stderr, "error: unknown kernel '%s'\n", Name.c_str());
        return false;
      }
      Out.Kernels.push_back(Name);
    }
  }

  if (Out.Quick) {
    Out.Datasets = {"pokec", "rmat24"};
    Out.Kernels.resize(std::min<size_t>(Out.Kernels.size(), 2));
  }
  return true;
}

const graph::Dataset &DatasetCache::get(const std::string &Name) {
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return It->second;
  auto [NewIt, Inserted] =
      Cache.emplace(Name, graph::makeDataset(Name, ScaleDivisor));
  (void)Inserted;
  return NewIt->second;
}

void bench::printBanner(const std::string &Title,
                        const BenchOptions &Options) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", Title.c_str());
  std::printf("scale divisor: %.0f (paper-size graphs / %.0f; machine "
              "capacities scaled to match)\n",
              Options.ScaleDivisor, Options.ScaleDivisor);
  std::printf("==============================================================="
              "=================\n");
  std::fflush(stdout);
}

baseline::RunResult bench::runOne(const std::string &Kernel,
                                  const graph::Dataset &Data,
                                  const sim::MachineConfig &Machine,
                                  baseline::Policy Policy,
                                  double EpsilonOffset, bool MeasureTlb) {
  baseline::RunConfig Config;
  Config.KernelName = Kernel;
  Config.Graph = &Data.Graph;
  Config.Machine = Machine;
  Config.PolicyKind = Policy;
  Config.EpsilonOffset = EpsilonOffset;
  Config.MeasureTlb = MeasureTlb;
  return baseline::runExperiment(Config);
}
