#include "BenchCommon.h"

#include "apps/Kernel.h"
#include "fault/FaultInjection.h"
#include "obs/DecisionLog.h"
#include "obs/Export.h"
#include "obs/TimeSeries.h"
#include "support/BuildInfo.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

using namespace atmem;
using namespace atmem::bench;

void bench::addCommonOptions(OptionParser &Parser) {
  Parser.addString("datasets", "all",
                   "comma-separated dataset names or 'all' "
                   "(pokec,rmat24,twitter,rmat27,friendster)");
  Parser.addString("kernels", "all",
                   "comma-separated kernel names or 'all' "
                   "(bfs,sssp,pr,bc,cc)");
  Parser.addDouble("scale", graph::DefaultScaleDivisor,
                   "dataset scale divisor (paper size / divisor)");
  Parser.addFlag("quick", "restrict to two datasets and two kernels");
  Parser.addUnsigned("sim-threads", 1,
                     "tracked-execution engine threads (1 = serial engine)");
  Parser.addUnsigned("jobs", 1,
                     "concurrent experiment configurations "
                     "(0 = one per host hardware thread)");
  Parser.addString("json", "bench_results.json",
                   "machine-readable timing output path ('' disables)");
  Parser.addString("metrics-out", "",
                   "write a telemetry metrics snapshot (atmem-metrics-v1 "
                   "JSON) and embed a \"metrics\" block in the timing "
                   "output; also enables collection");
  Parser.addString("trace-out", "",
                   "write a Chrome trace-event JSON of the batch; also "
                   "enables collection");
  Parser.addString("decision-log", "",
                   "record every placement decision across the batch to this "
                   "binary flight-recorder file; inspect with atmem_explain");
  Parser.addString("timeseries-out", "",
                   "write per-epoch gauge snapshots of the whole batch as "
                   "atmem-timeseries-v1 JSONL (each job's epochs restart "
                   "at 1; validate with atmem_obs_check --timeseries)");
  Parser.addString("health-log", "",
                   "arm the online health monitor in every job and append "
                   "events as atmem-health-v1 JSONL to this path (triage "
                   "with atmem_doctor)");
  Parser.addString("health-knobs", "",
                   "detector tuning overrides for --health-log, "
                   "comma-separated knob=value");
  Parser.addString("fault-spec", "", fault::faultSpecHelp());
}

bool bench::readCommonOptions(const OptionParser &Parser, BenchOptions &Out) {
  Out.ScaleDivisor = Parser.getDouble("scale");
  Out.Quick = Parser.getFlag("quick");
  Out.SimThreads =
      std::max<uint64_t>(Parser.getUnsigned("sim-threads"), 1);
  Out.Jobs = static_cast<uint32_t>(Parser.getUnsigned("jobs"));
  if (Out.Jobs == 0) {
    Out.Jobs = std::max(1u, std::thread::hardware_concurrency());
  }
  Out.JsonPath = Parser.getString("json");
  Out.Telemetry.MetricsPath = Parser.getString("metrics-out");
  Out.Telemetry.TracePath = Parser.getString("trace-out");
  Out.Telemetry.DecisionLogPath = Parser.getString("decision-log");
  Out.Telemetry.TimeSeriesPath = Parser.getString("timeseries-out");
  Out.Telemetry.HealthLogPath = Parser.getString("health-log");
  if (std::string Knobs = Parser.getString("health-knobs");
      !Knobs.empty()) {
    std::string KnobError;
    if (!obs::parseHealthKnobs(Knobs, Out.Telemetry.Health, &KnobError)) {
      std::fprintf(stderr, "error: bad --health-knobs: %s\n",
                   KnobError.c_str());
      return false;
    }
  }
  Out.Telemetry.Enabled = Out.Telemetry.anyOutput();
  if (Out.Telemetry.Enabled)
    obs::setEnabled(true);
  // Bench jobs build their own runtimes without the batch's telemetry
  // config, so the flight recorder is opened here for the whole batch;
  // exportIfConfigured finalizes it (trailer + close) after the last job.
  if (!Out.Telemetry.DecisionLogPath.empty()) {
    std::string LogError;
    if (!obs::DecisionLog::instance().open(Out.Telemetry.DecisionLogPath,
                                           &LogError)) {
      std::fprintf(stderr, "error: decision log: %s\n", LogError.c_str());
      return false;
    }
  }
  // Same pattern for the per-epoch series and the health layer: arm the
  // process-wide stores here so every job's runtime records into them.
  if (!Out.Telemetry.TimeSeriesPath.empty())
    obs::TimeSeries::instance().setEnabled(true);
  if (!Out.Telemetry.HealthLogPath.empty()) {
    std::string LogError;
    if (!obs::HealthLog::instance().open(Out.Telemetry.HealthLogPath,
                                         &LogError)) {
      std::fprintf(stderr, "error: health log: %s\n", LogError.c_str());
      return false;
    }
    obs::setHealthDefaultEnabled(true, Out.Telemetry.Health);
  }

  if (std::string SpecError; !fault::armFromEnvironment(&SpecError)) {
    std::fprintf(stderr, "error: bad ATMEM_FAULT_SPEC: %s\n",
                 SpecError.c_str());
    return false;
  }
  if (std::string Spec = Parser.getString("fault-spec"); !Spec.empty()) {
    std::string SpecError;
    if (!fault::armFromSpec(Spec, &SpecError)) {
      std::fprintf(stderr, "error: bad --fault-spec: %s\n",
                   SpecError.c_str());
      return false;
    }
  }

  std::string DatasetArg = Parser.getString("datasets");
  if (DatasetArg == "all") {
    Out.Datasets = graph::datasetNames();
  } else {
    for (const std::string &Name : splitString(DatasetArg, ',')) {
      if (!graph::isKnownDataset(Name)) {
        std::fprintf(stderr, "error: unknown dataset '%s'\n", Name.c_str());
        return false;
      }
      Out.Datasets.push_back(Name);
    }
  }

  std::string KernelArg = Parser.getString("kernels");
  if (KernelArg == "all") {
    Out.Kernels = apps::kernelNames();
  } else {
    for (const std::string &Name : splitString(KernelArg, ',')) {
      if (!apps::isKnownKernel(Name)) {
        std::fprintf(stderr, "error: unknown kernel '%s'\n", Name.c_str());
        return false;
      }
      Out.Kernels.push_back(Name);
    }
  }

  if (Out.Quick) {
    Out.Datasets = {"pokec", "rmat24"};
    Out.Kernels.resize(std::min<size_t>(Out.Kernels.size(), 2));
  }
  return true;
}

const graph::Dataset &DatasetCache::get(const std::string &Name) {
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return It->second;
  auto [NewIt, Inserted] =
      Cache.emplace(Name, graph::makeDataset(Name, ScaleDivisor));
  (void)Inserted;
  return NewIt->second;
}

void bench::printBanner(const std::string &Title,
                        const BenchOptions &Options) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", Title.c_str());
  std::printf("scale divisor: %.0f (paper-size graphs / %.0f; machine "
              "capacities scaled to match)\n",
              Options.ScaleDivisor, Options.ScaleDivisor);
  if (Options.SimThreads > 1 || Options.Jobs > 1)
    std::printf("engine: %u sim thread(s), %u concurrent job(s)\n",
                Options.SimThreads, Options.Jobs);
  std::printf("==============================================================="
              "=================\n");
  std::fflush(stdout);
}

baseline::RunResult bench::runOne(const std::string &Kernel,
                                  const graph::Dataset &Data,
                                  const sim::MachineConfig &Machine,
                                  baseline::Policy Policy,
                                  double EpsilonOffset, bool MeasureTlb,
                                  uint32_t SimThreads) {
  baseline::RunConfig Config;
  Config.KernelName = Kernel;
  Config.Graph = &Data.Graph;
  Config.Machine = Machine;
  Config.PolicyKind = Policy;
  Config.EpsilonOffset = EpsilonOffset;
  Config.MeasureTlb = MeasureTlb;
  Config.SimThreads = SimThreads;
  return baseline::runExperiment(Config);
}

std::vector<BenchRecord> bench::runConcurrent(const std::vector<BenchJob> &Jobs,
                                              DatasetCache &Cache,
                                              const sim::MachineConfig &Machine,
                                              const BenchOptions &Options,
                                              double *TotalWallMs) {
  using Clock = std::chrono::steady_clock;
  // Generate every referenced dataset up front: the cache is not
  // thread-safe, and sharing one generated graph across jobs is the point.
  for (const BenchJob &Job : Jobs)
    Cache.get(Job.Dataset);

  std::vector<BenchRecord> Records(Jobs.size());
  auto BatchStart = Clock::now();
  std::atomic<size_t> NextJob{0};
  auto Work = [&] {
    for (;;) {
      size_t I = NextJob.fetch_add(1, std::memory_order_relaxed);
      if (I >= Jobs.size())
        return;
      const BenchJob &Job = Jobs[I];
      auto JobStart = Clock::now();
      BenchRecord &Record = Records[I];
      Record.Job = Job;
      Record.Result =
          runOne(Job.Kernel, Cache.get(Job.Dataset), Machine, Job.PolicyKind,
                 Job.EpsilonOffset, Job.MeasureTlb, Options.SimThreads);
      Record.WallMs =
          std::chrono::duration<double, std::milli>(Clock::now() - JobStart)
              .count();
    }
  };

  uint32_t Workers =
      std::min<size_t>(std::max(Options.Jobs, 1u), Jobs.size());
  if (Workers <= 1) {
    Work();
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(Workers);
    for (uint32_t W = 0; W < Workers; ++W)
      Threads.emplace_back(Work);
    for (std::thread &T : Threads)
      T.join();
  }
  if (TotalWallMs)
    *TotalWallMs =
        std::chrono::duration<double, std::milli>(Clock::now() - BatchStart)
            .count();
  return Records;
}

void bench::writeBenchResults(const std::string &BenchName,
                              const BenchOptions &Options,
                              const std::vector<BenchRecord> &Records,
                              double TotalWallMs) {
  // Telemetry artifacts (metrics, trace, decision log trailer + close,
  // time series) finalize even when the timing JSON is disabled — the
  // flight recorder must not lose its trailer to a '--json ""' run.
  if (Options.JsonPath.empty()) {
    if (!obs::exportIfConfigured(Options.Telemetry))
      std::fprintf(stderr, "warning: telemetry artifact export failed\n");
    return;
  }
  std::FILE *Out = std::fopen(Options.JsonPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "warning: cannot write '%s'\n",
                 Options.JsonPath.c_str());
    return;
  }
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"bench\": \"%s\",\n", BenchName.c_str());
  std::fprintf(Out, "  \"scale_divisor\": %.0f,\n", Options.ScaleDivisor);
  std::fprintf(Out, "  \"sim_threads\": %u,\n", Options.SimThreads);
  std::fprintf(Out, "  \"jobs\": %u,\n", Options.Jobs);
  std::fprintf(Out, "  \"host_hardware_threads\": %u,\n",
               std::max(1u, std::thread::hardware_concurrency()));
  std::fprintf(Out, "  \"git_sha\": \"%s\",\n", support::gitSha());
  std::fprintf(Out, "  \"compiler\": \"%s\",\n", support::compilerId());
  std::fprintf(Out, "  \"cpu_model\": \"%s\",\n",
               support::cpuModel().c_str());
  std::fprintf(Out, "  \"peak_rss_bytes\": %llu,\n",
               static_cast<unsigned long long>(support::peakRssBytes()));
  std::fprintf(Out, "  \"total_wall_ms\": %.3f,\n", TotalWallMs);
  std::fprintf(Out, "  \"runs\": [\n");
  for (size_t I = 0; I < Records.size(); ++I) {
    const BenchRecord &R = Records[I];
    std::fprintf(Out,
                 "    {\"kernel\": \"%s\", \"dataset\": \"%s\", "
                 "\"policy\": \"%s\", \"measured_iter_sec\": %.9g, "
                 "\"first_iter_sec\": %.9g, \"fast_data_ratio\": %.6f, "
                 "\"checksum\": %llu, \"wall_ms\": %.3f}%s\n",
                 R.Job.Kernel.c_str(), R.Job.Dataset.c_str(),
                 baseline::policyName(R.Job.PolicyKind),
                 R.Result.MeasuredIterSec, R.Result.FirstIterSec,
                 R.Result.FastDataRatio,
                 static_cast<unsigned long long>(R.Result.Checksum),
                 R.WallMs, I + 1 == Records.size() ? "" : ",");
  }
  std::fprintf(Out, "  ]");
  if (obs::enabled()) {
    // Telemetry was armed for this batch: embed the merged snapshot plus a
    // wall-clock spread summary of the runs. Emitted only when enabled, so
    // default bench output stays byte-identical.
    RunningStat Wall;
    for (const BenchRecord &R : Records)
      Wall.add(R.WallMs);
    std::fprintf(Out, ",\n  \"metrics\": {\n");
    std::fprintf(Out,
                 "    \"wall_ms\": {\"count\": %zu, \"mean\": %.3f, "
                 "\"min\": %.3f, \"max\": %.3f, \"stddev\": %.3f},\n",
                 Wall.count(), Wall.mean(), Wall.min(), Wall.max(),
                 Wall.stddev());
    std::string Snapshot =
        obs::metricsJson(obs::Registry::instance().snapshot(), "    ");
    std::fprintf(Out, "    \"snapshot\":\n%s\n  }", Snapshot.c_str());
  }
  std::fprintf(Out, "\n}\n");
  std::fclose(Out);
  std::printf("\ntiming block written to %s (total wall %.0f ms)\n",
              Options.JsonPath.c_str(), TotalWallMs);
  if (!obs::exportIfConfigured(Options.Telemetry))
    std::fprintf(stderr, "warning: telemetry artifact export failed\n");
}
