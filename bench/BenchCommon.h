//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared scaffolding for the figure/table reproduction benchmarks: common
/// command-line options (dataset/kernel selection, scale divisor), dataset
/// caching, and uniform headers so every benchmark's output is directly
/// comparable with the paper's evaluation section.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_BENCH_BENCHCOMMON_H
#define ATMEM_BENCH_BENCHCOMMON_H

#include "baseline/Experiment.h"
#include "graph/Datasets.h"
#include "support/Options.h"

#include <map>
#include <string>
#include <vector>

namespace atmem {
namespace bench {

/// Parsed common benchmark options.
struct BenchOptions {
  std::vector<std::string> Datasets;
  std::vector<std::string> Kernels;
  double ScaleDivisor = graph::DefaultScaleDivisor;
  bool Quick = false;
};

/// Registers the shared options on \p Parser.
void addCommonOptions(OptionParser &Parser);

/// Reads the shared options back; returns false on malformed selections.
bool readCommonOptions(const OptionParser &Parser, BenchOptions &Out);

/// Lazily generated, cached datasets so multi-section benchmarks build
/// each graph once.
class DatasetCache {
public:
  explicit DatasetCache(double ScaleDivisor) : ScaleDivisor(ScaleDivisor) {}

  /// The dataset named \p Name (generated on first use).
  const graph::Dataset &get(const std::string &Name);

  double scaleDivisor() const { return ScaleDivisor; }

private:
  double ScaleDivisor;
  std::map<std::string, graph::Dataset> Cache;
};

/// Prints a benchmark banner naming the reproduced figure/table.
void printBanner(const std::string &Title, const BenchOptions &Options);

/// Runs one experiment with the common configuration applied.
baseline::RunResult runOne(const std::string &Kernel,
                           const graph::Dataset &Data,
                           const sim::MachineConfig &Machine,
                           baseline::Policy Policy,
                           double EpsilonOffset = 0.0,
                           bool MeasureTlb = false);

} // namespace bench
} // namespace atmem

#endif // ATMEM_BENCH_BENCHCOMMON_H
