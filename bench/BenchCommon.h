//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared scaffolding for the figure/table reproduction benchmarks: common
/// command-line options (dataset/kernel selection, scale divisor, engine
/// threads, bench-level concurrency), dataset caching, a concurrent runner
/// for independent (dataset x kernel x policy) configurations, and a
/// machine-readable bench_results.json emitter so successive PRs leave a
/// perf trajectory behind.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_BENCH_BENCHCOMMON_H
#define ATMEM_BENCH_BENCHCOMMON_H

#include "baseline/Experiment.h"
#include "graph/Datasets.h"
#include "obs/Telemetry.h"
#include "support/Options.h"

#include <map>
#include <string>
#include <vector>

namespace atmem {
namespace bench {

/// Parsed common benchmark options.
struct BenchOptions {
  std::vector<std::string> Datasets;
  std::vector<std::string> Kernels;
  double ScaleDivisor = graph::DefaultScaleDivisor;
  bool Quick = false;
  /// Threads for the runtime's tracked-execution engine (1 = serial).
  uint32_t SimThreads = 1;
  /// Concurrent experiment configurations (1 = sequential; 0 = one per
  /// host hardware thread).
  uint32_t Jobs = 1;
  /// Path of the machine-readable timing block ("" disables).
  std::string JsonPath = "bench_results.json";
  /// Telemetry collection/export (--metrics-out / --trace-out). When any
  /// output is requested, collection is armed for the whole batch, the
  /// artifacts are written next to the timing block, and bench_results.json
  /// gains a "metrics" block. Off by default, so existing bench output is
  /// byte-identical.
  obs::TelemetryConfig Telemetry;
};

/// Registers the shared options on \p Parser.
void addCommonOptions(OptionParser &Parser);

/// Reads the shared options back; returns false on malformed selections.
bool readCommonOptions(const OptionParser &Parser, BenchOptions &Out);

/// Lazily generated, cached datasets so multi-section benchmarks build
/// each graph once. Lookups are not thread-safe; the concurrent runner
/// pre-populates the cache before fanning out.
class DatasetCache {
public:
  explicit DatasetCache(double ScaleDivisor) : ScaleDivisor(ScaleDivisor) {}

  /// The dataset named \p Name (generated on first use).
  const graph::Dataset &get(const std::string &Name);

  double scaleDivisor() const { return ScaleDivisor; }

private:
  double ScaleDivisor;
  std::map<std::string, graph::Dataset> Cache;
};

/// Prints a benchmark banner naming the reproduced figure/table.
void printBanner(const std::string &Title, const BenchOptions &Options);

/// Runs one experiment with the common configuration applied.
baseline::RunResult runOne(const std::string &Kernel,
                           const graph::Dataset &Data,
                           const sim::MachineConfig &Machine,
                           baseline::Policy Policy,
                           double EpsilonOffset = 0.0,
                           bool MeasureTlb = false,
                           uint32_t SimThreads = 1);

/// One independent experiment configuration for the concurrent runner.
struct BenchJob {
  std::string Kernel;
  std::string Dataset;
  baseline::Policy PolicyKind = baseline::Policy::AllSlow;
  double EpsilonOffset = 0.0;
  bool MeasureTlb = false;
};

/// A finished job: its result plus the host wall-clock it took.
struct BenchRecord {
  BenchJob Job;
  baseline::RunResult Result;
  double WallMs = 0.0;
};

/// Runs \p Jobs with Options.Jobs worker threads (each job builds its own
/// runtime, so configurations are independent) and returns records in job
/// order. Datasets are generated once, before the fan-out. Wall-clock of
/// the whole batch is returned through \p TotalWallMs when non-null.
std::vector<BenchRecord> runConcurrent(const std::vector<BenchJob> &Jobs,
                                       DatasetCache &Cache,
                                       const sim::MachineConfig &Machine,
                                       const BenchOptions &Options,
                                       double *TotalWallMs = nullptr);

/// Writes the batch's timing block as JSON to Options.JsonPath (no-op when
/// the path is empty). The block records the bench name, engine/runner
/// knobs, host parallelism, per-run simulated + wall times, and the batch
/// wall-clock, giving future PRs a perf trajectory to compare against.
void writeBenchResults(const std::string &BenchName,
                       const BenchOptions &Options,
                       const std::vector<BenchRecord> &Records,
                       double TotalWallMs);

} // namespace bench
} // namespace atmem

#endif // ATMEM_BENCH_BENCHCOMMON_H
