//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations over the design choices DESIGN.md calls out (Section 6 of the
/// design document):
///
///  1. tree promotion on/off — sampled selection alone fragments the plan
///     and misses hot chunks the sampler skipped;
///  2. coarse-grained (whole-object) chunks — the Tahoe-style prior
///     approach the paper improves on, which wastes fast memory under
///     capacity pressure;
///  3. tree arity m — the sensitivity the paper discusses in 4.3.1;
///  4. fixed vs adaptive chunk granularity.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/Kernel.h"
#include "mem/AtmemMigrator.h"
#include "profiler/OfflineProfiler.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace atmem;
using namespace atmem::bench;
using baseline::Policy;

int main(int Argc, const char **Argv) {
  OptionParser Parser("ablation_study: promotion / granularity / arity "
                      "ablations of the ATMem design");
  addCommonOptions(Parser);
  Parser.addString("kernel", "bfs", "kernel to ablate with");
  if (!Parser.parse(Argc, Argv))
    return 1;
  BenchOptions Options;
  if (!readCommonOptions(Parser, Options))
    return 1;
  std::string Kernel = Parser.getString("kernel");

  DatasetCache Cache(Options.ScaleDivisor);

  printBanner("Ablation 1+2: tree promotion and chunk granularity (" +
                  Kernel + ", both testbeds)",
              Options);
  for (bool Mcdram : {false, true}) {
    sim::MachineConfig Machine =
        Mcdram ? sim::mcdramDramTestbed(1.0 / Options.ScaleDivisor)
               : sim::nvmDramTestbed(1.0 / Options.ScaleDivisor);
    std::printf("\n[%s]\n", Machine.Name.c_str());
    TablePrinter Table({"dataset", "variant", "time", "data ratio",
                        "migration ranges"});
    for (const std::string &Name : Options.Datasets) {
      const graph::Dataset &Data = Cache.get(Name);
      struct Variant {
        const char *Label;
        Policy PolicyKind;
      };
      const Variant Variants[] = {
          {"ATMem (full)", Policy::Atmem},
          {"no tree promotion", Policy::AtmemSampledOnly},
          {"whole-object chunks", Policy::CoarseGrained},
      };
      for (const Variant &V : Variants) {
        auto Result = runOne(Kernel, Data, Machine, V.PolicyKind, 0.0,
                             /*MeasureTlb=*/false, Options.SimThreads);
        Table.addRow({Name, V.Label,
                      formatSeconds(Result.MeasuredIterSec),
                      formatPercent(Result.FastDataRatio),
                      std::to_string(Result.Migration.Ranges)});
      }
    }
    Table.print();
  }

  printBanner("Ablation 3: promotion-tree arity m (" + Kernel +
                  ", NVM-DRAM)",
              Options);
  {
    sim::MachineConfig Machine =
        sim::nvmDramTestbed(1.0 / Options.ScaleDivisor);
    TablePrinter Table({"dataset", "arity", "time", "data ratio"});
    for (const std::string &Name : Options.Datasets) {
      const graph::Dataset &Data = Cache.get(Name);
      for (uint32_t Arity : {2u, 4u, 8u, 16u}) {
        baseline::RunConfig Config;
        Config.KernelName = Kernel;
        Config.Graph = &Data.Graph;
        Config.Machine = Machine;
        Config.PolicyKind = Policy::Atmem;
        // Arity is an analyzer knob; thread it via the experiment's
        // machine-independent epsilon path is not possible, so run the
        // pipeline directly.
        core::RuntimeConfig RtConfig;
        RtConfig.Machine = Machine;
        RtConfig.Analyzer.Promoter.Arity = Arity;
        core::Runtime Rt(RtConfig);
        auto KernelPtr = apps::makeKernel(Kernel);
        KernelPtr->setup(Rt, Data.Graph);
        Rt.profilingStart();
        Rt.beginIteration();
        KernelPtr->runIteration();
        Rt.endIteration();
        Rt.profilingStop();
        Rt.optimize();
        Rt.beginIteration();
        KernelPtr->runIteration();
        double Time = Rt.endIteration();
        Table.addRow({Name, std::to_string(Arity), formatSeconds(Time),
                      formatPercent(Rt.fastDataRatio())});
      }
    }
    Table.print();
  }

  printBanner("Ablation 4: chunk granularity (fixed sizes vs adaptive, " +
                  Kernel + ", NVM-DRAM)",
              Options);
  {
    sim::MachineConfig Machine =
        sim::nvmDramTestbed(1.0 / Options.ScaleDivisor);
    TablePrinter Table({"dataset", "chunk size", "time", "data ratio",
                        "total chunks"});
    for (const std::string &Name : Options.Datasets) {
      const graph::Dataset &Data = Cache.get(Name);
      for (uint64_t Chunk : {uint64_t(0), uint64_t(4096),
                             uint64_t(64) << 10, uint64_t(1) << 20}) {
        core::RuntimeConfig RtConfig;
        RtConfig.Machine = Machine;
        RtConfig.ChunkBytesOverride = Chunk;
        core::Runtime Rt(RtConfig);
        auto KernelPtr = apps::makeKernel(Kernel);
        KernelPtr->setup(Rt, Data.Graph);
        Rt.profilingStart();
        Rt.beginIteration();
        KernelPtr->runIteration();
        Rt.endIteration();
        Rt.profilingStop();
        Rt.optimize();
        Rt.beginIteration();
        KernelPtr->runIteration();
        double Time = Rt.endIteration();
        uint64_t TotalChunks = 0;
        for (const auto *Obj : Rt.registry().liveObjects())
          TotalChunks += Obj->numChunks();
        Table.addRow({Name, Chunk == 0 ? "adaptive" : formatBytes(Chunk),
                      formatSeconds(Time),
                      formatPercent(Rt.fastDataRatio()),
                      std::to_string(TotalChunks)});
      }
    }
    Table.print();
  }
  printBanner("Ablation 5: sampled vs full-trace (offline) profiling (" +
                  Kernel + ", NVM-DRAM)",
              Options);
  {
    // Records the complete miss trace of the profiled iteration, builds
    // an exact offline profile from it (the Pin-style comparators of the
    // paper's related work), and compares the resulting placements: the
    // Jaccard overlap of the selected chunk sets and the measured
    // iteration times. High overlap = the sampling loss the tree
    // promotion exists to patch is mostly recovered (Objective II).
    sim::MachineConfig Machine =
        sim::nvmDramTestbed(1.0 / Options.ScaleDivisor);
    TablePrinter Table({"dataset", "sampled time", "offline time",
                        "sampled ratio", "offline ratio",
                        "selection overlap"});
    for (const std::string &Name : Options.Datasets) {
      const graph::Dataset &Data = Cache.get(Name);
      core::RuntimeConfig RtConfig;
      RtConfig.Machine = Machine;
      core::Runtime Rt(RtConfig);
      auto KernelPtr = apps::makeKernel(Kernel);
      KernelPtr->setup(Rt, Data.Graph);

      std::string TracePath = "/tmp/atmem_ablation5_trace.bin";
      prof::TraceWriter Writer;
      if (!Writer.open(TracePath))
        continue;
      Rt.setMissTrace(&Writer);
      Rt.profilingStart();
      Rt.beginIteration();
      KernelPtr->runIteration();
      Rt.endIteration();
      Rt.profilingStop();
      Rt.setMissTrace(nullptr);
      Writer.finish();

      prof::OfflineProfiler Offline(Rt.registry());
      Offline.loadTrace(TracePath);
      std::remove(TracePath.c_str());

      analyzer::Analyzer Anal;
      auto Sampled = Anal.classify(Rt.registry(), Rt.profiler());
      auto Exact = Anal.classify(Rt.registry(), Offline);
      uint64_t Inter = 0, Uni = 0;
      for (size_t O = 0; O < Sampled.size(); ++O)
        for (uint32_t C = 0; C < Sampled[O].numChunks(); ++C) {
          bool S = Sampled[O].isSelected(C);
          bool E = Exact[O].isSelected(C);
          Inter += (S && E) ? 1 : 0;
          Uni += (S || E) ? 1 : 0;
        }
      double Jaccard = Uni == 0 ? 1.0
                                : static_cast<double>(Inter) /
                                      static_cast<double>(Uni);

      // Apply each placement on a fresh runtime and measure.
      auto MeasureWith = [&](bool UseOffline) {
        core::RuntimeConfig FreshConfig;
        FreshConfig.Machine = Machine;
        core::Runtime Fresh(FreshConfig);
        auto FreshKernel = apps::makeKernel(Kernel);
        FreshKernel->setup(Fresh, Data.Graph);
        std::string TmpTrace = "/tmp/atmem_ablation5_trace2.bin";
        prof::TraceWriter W2;
        W2.open(TmpTrace);
        if (UseOffline)
          Fresh.setMissTrace(&W2);
        Fresh.profilingStart();
        Fresh.beginIteration();
        FreshKernel->runIteration();
        Fresh.endIteration();
        Fresh.profilingStop();
        Fresh.setMissTrace(nullptr);
        W2.finish();
        double Ratio = 0.0;
        if (UseOffline) {
          // Plan from the exact profile, then migrate through the
          // runtime's migrator by temporarily installing the plan.
          prof::OfflineProfiler Exact2(Fresh.registry());
          Exact2.loadTrace(TmpTrace);
          // The runtime's optimize() consumes its own profiler, so for
          // the offline variant the plan is applied manually.
          analyzer::Analyzer Anal2;
          uint64_t Budget = static_cast<uint64_t>(
              0.85 *
              static_cast<double>(
                  Fresh.machine().allocator(sim::TierId::Fast).freeBytes()));
          auto Plan = Anal2.plan(Fresh.registry(), Exact2, Budget);
          mem::ThreadPool Pool(8);
          mem::AtmemMigrator Migrator(Fresh.registry(), Pool);
          mem::MigrationResult Result;
          for (const auto &ObjPlan : Plan.Objects)
            Migrator.migrate(Fresh.registry().object(ObjPlan.Object),
                             ObjPlan.Ranges, sim::TierId::Fast, Result);
        } else {
          Fresh.optimize();
        }
        std::remove(TmpTrace.c_str());
        Fresh.beginIteration();
        FreshKernel->runIteration();
        double T = Fresh.endIteration();
        Ratio = Fresh.fastDataRatio();
        return std::make_pair(T, Ratio);
      };
      auto [SampledTime, SampledRatio] = MeasureWith(false);
      auto [OfflineTime, OfflineRatio] = MeasureWith(true);
      Table.addRow({Name, formatSeconds(SampledTime),
                    formatSeconds(OfflineTime),
                    formatPercent(SampledRatio),
                    formatPercent(OfflineRatio),
                    formatPercent(Jaccard)});
    }
    Table.print();
  }

  std::printf("\nExpected shape: the full system matches or beats every "
              "ablation; whole-object chunks waste fast-memory bytes; "
              "tiny fixed chunks inflate metadata and migration ranges "
              "while huge fixed chunks blur the hot/cold boundary; the "
              "sampled placement tracks the full-trace placement closely "
              "(high overlap, near-equal times) at a fraction of the "
              "profiling cost.\n");
  return 0;
}
