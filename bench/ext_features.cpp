//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Benchmarks the Section 9 extension features beyond the paper's
/// evaluation:
///
///  1. adaptive re-optimization across query changes (demotion +
///     AutoTuner) — placement follows the workload;
///  2. bandwidth-balanced placement on the independent-channel KNL
///     machine vs the default critical-chunk placement;
///  3. overlapped migration accounting: the visible cost of migration
///     when it overlaps the next iteration (Section 9's "overlap the
///     data movement" future work).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/Kernels.h"
#include "core/AutoTuner.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <cstdio>

using namespace atmem;
using namespace atmem::bench;

int main(int Argc, const char **Argv) {
  OptionParser Parser("ext_features: Section 9 extensions (adaptive "
                      "re-optimization, bandwidth balancing, overlapped "
                      "migration)");
  addCommonOptions(Parser);
  if (!Parser.parse(Argc, Argv))
    return 1;
  BenchOptions Options;
  if (!readCommonOptions(Parser, Options))
    return 1;

  DatasetCache Cache(Options.ScaleDivisor);

  printBanner("Extension 1: adaptive re-optimization across query changes "
              "(PageRank -> SSSP, NVM-DRAM)",
              Options);
  {
    TablePrinter Table({"dataset", "PR iter (tuned)", "SSSP iter (stale "
                                                      "placement)",
                        "SSSP iter (re-tuned)", "re-tune gain"});
    for (const std::string &Name : Options.Datasets) {
      const graph::Dataset &Data = Cache.get(Name);
      core::RuntimeConfig Config;
      Config.Machine = sim::nvmDramTestbed(1.0 / Options.ScaleDivisor);
      core::Runtime Rt(Config);
      apps::PageRankKernel Pr;
      Pr.setup(Rt, Data.Graph);
      apps::SsspKernel Sssp;
      Sssp.setup(Rt, Data.Graph);

      // Tune for PageRank.
      Rt.profilingStart();
      Rt.beginIteration();
      Pr.runIteration();
      Rt.endIteration();
      Rt.profilingStop();
      Rt.optimize();
      Rt.beginIteration();
      Pr.runIteration();
      double PrTuned = Rt.endIteration();

      // Switch query without re-tuning: stale placement.
      Rt.beginIteration();
      Sssp.runIteration();
      double SsspStale = Rt.endIteration();

      // Re-profile and re-optimize (demotes PR data, promotes SSSP data).
      Rt.profilingStart();
      Rt.beginIteration();
      Sssp.runIteration();
      Rt.endIteration();
      Rt.profilingStop();
      Rt.optimize();
      Rt.beginIteration();
      Sssp.runIteration();
      double SsspTuned = Rt.endIteration();

      Table.addRow({Name, formatSeconds(PrTuned),
                    formatSeconds(SsspStale), formatSeconds(SsspTuned),
                    formatSpeedup(SsspStale / SsspTuned)});
    }
    Table.print();
  }

  printBanner("Extension 2: bandwidth-balanced placement on the "
              "independent-channel KNL machine (PR)",
              Options);
  {
    TablePrinter Table({"dataset", "critical-chunks", "ratio",
                        "bandwidth-balanced", "ratio ", "balanced vs "
                                                        "critical"});
    for (const std::string &Name : Options.Datasets) {
      const graph::Dataset &Data = Cache.get(Name);
      auto RunWith = [&](core::PlacementStrategy Strategy, double &Ratio) {
        core::RuntimeConfig Config;
        Config.Machine = sim::mcdramDramTestbed(1.0 / Options.ScaleDivisor);
        Config.Strategy = Strategy;
        core::Runtime Rt(Config);
        apps::PageRankKernel Kernel;
        Kernel.setup(Rt, Data.Graph);
        Rt.profilingStart();
        Rt.beginIteration();
        Kernel.runIteration();
        Rt.endIteration();
        Rt.profilingStop();
        Rt.optimize();
        Rt.beginIteration();
        Kernel.runIteration();
        double T = Rt.endIteration();
        Ratio = Rt.fastDataRatio();
        return T;
      };
      double CriticalRatio = 0.0, BalancedRatio = 0.0;
      double Critical =
          RunWith(core::PlacementStrategy::CriticalChunks, CriticalRatio);
      double Balanced = RunWith(core::PlacementStrategy::BandwidthBalanced,
                                BalancedRatio);
      Table.addRow({Name, formatSeconds(Critical),
                    formatPercent(CriticalRatio), formatSeconds(Balanced),
                    formatPercent(BalancedRatio),
                    formatSpeedup(Critical / Balanced)});
    }
    Table.print();
  }

  printBanner("Extension 3: overlapped migration accounting (BFS, "
              "NVM-DRAM)",
              Options);
  {
    TablePrinter Table({"dataset", "migration time", "iteration time",
                        "blocking cost", "overlapped cost"});
    for (const std::string &Name : Options.Datasets) {
      const graph::Dataset &Data = Cache.get(Name);
      auto Result = runOne("bfs", Data,
                           sim::nvmDramTestbed(1.0 / Options.ScaleDivisor),
                           baseline::Policy::Atmem, 0.0,
                           /*MeasureTlb=*/false, Options.SimThreads);
      // Overlapping migration with the next (still unoptimized-speed)
      // iteration hides it up to that iteration's duration.
      double Blocking = Result.Migration.SimSeconds;
      double Overlapped =
          std::max(0.0, Blocking - Result.FirstIterSec);
      Table.addRow({Name, formatSeconds(Blocking),
                    formatSeconds(Result.FirstIterSec),
                    formatSeconds(Blocking),
                    formatSeconds(Overlapped)});
    }
    Table.print();
  }
  printBanner("Extension 4: shared-server fast-memory pressure (BFS, "
              "NVM-DRAM): a co-tenant occupies part of DRAM, ATMem's "
              "budget shrinks accordingly",
              Options);
  {
    TablePrinter Table({"dataset", "budget (of free demand)", "data ratio",
                        "time"});
    for (const std::string &Name : Options.Datasets) {
      const graph::Dataset &Data = Cache.get(Name);
      // Reference: what ATMem selects with DRAM to itself.
      auto RunWithCap = [&](uint64_t CapBytes) {
        core::RuntimeConfig Config;
        Config.Machine = sim::nvmDramTestbed(1.0 / Options.ScaleDivisor);
        Config.FastBudgetBytesCap = CapBytes;
        core::Runtime Rt(Config);
        auto Kernel = apps::makeKernel("bfs");
        Kernel->setup(Rt, Data.Graph);
        Rt.profilingStart();
        Rt.beginIteration();
        Kernel->runIteration();
        Rt.endIteration();
        Rt.profilingStop();
        mem::MigrationResult Migration = Rt.optimize();
        Rt.beginIteration();
        Kernel->runIteration();
        double Time = Rt.endIteration();
        return std::make_tuple(Time, Rt.fastDataRatio(),
                               Migration.BytesMoved);
      };
      auto [FullTime, FullRatio, FullBytes] = RunWithCap(0);
      Table.addRow({Name, "unconstrained", formatPercent(FullRatio),
                    formatSeconds(FullTime)});
      // Co-tenants squeeze ATMem to a fraction of its free-run demand.
      for (double Share : {0.5, 0.25, 0.1}) {
        auto Cap = static_cast<uint64_t>(Share *
                                         static_cast<double>(FullBytes));
        auto [Time, Ratio, Bytes] = RunWithCap(std::max<uint64_t>(Cap, 1));
        (void)Bytes;
        Table.addRow({Name, formatPercent(Share), formatPercent(Ratio),
                      formatSeconds(Time)});
      }
    }
    Table.print();
  }

  std::printf("\nExpected shape: re-tuning recovers the stale-placement "
              "loss; bandwidth balancing matches or beats critical-chunk "
              "placement on the aggregated-bandwidth machine; overlap "
              "hides most or all of the migration cost; under tenant "
              "pressure the budget trim keeps the hottest chunks so time "
              "degrades gracefully, not cliff-like.\n");
  return 0;
}
