//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 1 (the motivation study):
///
///  - Fig. 1a: execution time with all data on Optane NVM, normalized to
///    all data on DRAM (NVM-DRAM testbed). The paper observes slowdowns up
///    to ~10x, far beyond the raw 2.7x bandwidth ratio.
///  - Fig. 1b: execution time with all data on DDR4, normalized to the
///    'numactl -p MCDRAM' preferred placement (MCDRAM-DRAM testbed).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace atmem;
using namespace atmem::bench;
using baseline::Policy;

int main(int Argc, const char **Argv) {
  OptionParser Parser("fig01_motivation: reproduce the Figure 1 slowdown "
                      "study on both testbeds");
  addCommonOptions(Parser);
  if (!Parser.parse(Argc, Argv))
    return 1;
  BenchOptions Options;
  if (!readCommonOptions(Parser, Options))
    return 1;

  DatasetCache Cache(Options.ScaleDivisor);
  double CapacityScale = 1.0 / Options.ScaleDivisor;

  printBanner("Figure 1a: normalized time, all data on NVM vs all on DRAM "
              "(NVM-DRAM testbed)",
              Options);
  {
    sim::MachineConfig Machine = sim::nvmDramTestbed(CapacityScale);
    TablePrinter Table({"app", "dataset", "all-NVM", "all-DRAM",
                        "slowdown (paper: up to ~10x)"});
    for (const std::string &Kernel : Options.Kernels) {
      for (const std::string &Name : Options.Datasets) {
        const graph::Dataset &Data = Cache.get(Name);
        auto Slow = runOne(Kernel, Data, Machine, Policy::AllSlow, 0.0,
                           /*MeasureTlb=*/false, Options.SimThreads);
        auto Fast = runOne(Kernel, Data, Machine, Policy::AllFast, 0.0,
                           /*MeasureTlb=*/false, Options.SimThreads);
        Table.addRow({Kernel, Name, formatSeconds(Slow.MeasuredIterSec),
                      formatSeconds(Fast.MeasuredIterSec),
                      formatSpeedup(Slow.MeasuredIterSec /
                                    Fast.MeasuredIterSec)});
      }
    }
    Table.print();
  }

  printBanner("Figure 1b: normalized time, all data on DDR4 vs MCDRAM "
              "preferred (MCDRAM-DRAM testbed)",
              Options);
  {
    sim::MachineConfig Machine = sim::mcdramDramTestbed(CapacityScale);
    TablePrinter Table({"app", "dataset", "all-DDR4", "MCDRAM-p",
                        "slowdown (paper: up to ~3x)"});
    for (const std::string &Kernel : Options.Kernels) {
      for (const std::string &Name : Options.Datasets) {
        const graph::Dataset &Data = Cache.get(Name);
        auto Slow = runOne(Kernel, Data, Machine, Policy::AllSlow, 0.0,
                           /*MeasureTlb=*/false, Options.SimThreads);
        auto Pref = runOne(Kernel, Data, Machine, Policy::PreferredFast, 0.0,
                           /*MeasureTlb=*/false, Options.SimThreads);
        Table.addRow({Kernel, Name, formatSeconds(Slow.MeasuredIterSec),
                      formatSeconds(Pref.MeasuredIterSec),
                      formatSpeedup(Slow.MeasuredIterSec /
                                    Pref.MeasuredIterSec)});
      }
    }
    Table.print();
  }
  std::printf("\nExpected shape: slowdowns far exceed the raw bandwidth "
              "ratios, larger on bigger and more latency-bound inputs;\n"
              "MCDRAM-p gains shrink on graphs exceeding MCDRAM capacity "
              "(twitter, rmat27, friendster).\n");
  return 0;
}
