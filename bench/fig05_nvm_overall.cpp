//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 5 (overall performance on the NVM-DRAM testbed) and
/// the derived Table 3 (ATMem slowdown vs the all-DRAM ideal). For each
/// app x dataset the three bars are: baseline all-NVM, ATMem (profile on
/// iteration one, migrate, measure iteration two), and ideal all-DRAM.
///
/// Paper expectations: ATMem improves over all-NVM by 1.25x-8.4x, and
/// Table 3 slowdowns vs all-DRAM range from 9% (BC min) to 3.0x (PR max).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <map>

using namespace atmem;
using namespace atmem::bench;
using baseline::Policy;

int main(int Argc, const char **Argv) {
  OptionParser Parser("fig05_nvm_overall: reproduce Figure 5 and Table 3 "
                      "(NVM-DRAM testbed)");
  addCommonOptions(Parser);
  if (!Parser.parse(Argc, Argv))
    return 1;
  BenchOptions Options;
  if (!readCommonOptions(Parser, Options))
    return 1;

  DatasetCache Cache(Options.ScaleDivisor);
  sim::MachineConfig Machine =
      sim::nvmDramTestbed(1.0 / Options.ScaleDivisor);

  printBanner("Figure 5: execution time on NVM-DRAM (baseline all-NVM, "
              "ATMem, ideal all-DRAM)",
              Options);

  TablePrinter Table({"app", "dataset", "all-NVM", "ATMem", "all-DRAM",
                      "gain vs NVM", "slowdown vs DRAM", "data ratio"});
  // Per-kernel min/max slowdown vs the ideal, for the Table 3 block.
  std::map<std::string, RunningStat> SlowdownByKernel;

  // All (kernel, dataset, policy) configurations are independent: enqueue
  // the full cross product and let the concurrent runner fan out.
  std::vector<BenchJob> Jobs;
  for (const std::string &Kernel : Options.Kernels)
    for (const std::string &Name : Options.Datasets)
      for (Policy P : {Policy::AllSlow, Policy::Atmem, Policy::AllFast})
        Jobs.push_back({Kernel, Name, P});
  double TotalWallMs = 0.0;
  std::vector<BenchRecord> Records =
      runConcurrent(Jobs, Cache, Machine, Options, &TotalWallMs);

  for (size_t I = 0; I < Records.size(); I += 3) {
    const baseline::RunResult &Slow = Records[I].Result;
    const baseline::RunResult &Atmem = Records[I + 1].Result;
    const baseline::RunResult &Fast = Records[I + 2].Result;
    const std::string &Kernel = Records[I].Job.Kernel;

    double Gain = Slow.MeasuredIterSec / Atmem.MeasuredIterSec;
    double Slowdown = Atmem.MeasuredIterSec / Fast.MeasuredIterSec - 1.0;
    SlowdownByKernel[Kernel].add(Slowdown);
    Table.addRow({Kernel, Records[I].Job.Dataset,
                  formatSeconds(Slow.MeasuredIterSec),
                  formatSeconds(Atmem.MeasuredIterSec),
                  formatSeconds(Fast.MeasuredIterSec),
                  formatSpeedup(Gain), formatPercent(Slowdown),
                  formatPercent(Atmem.FastDataRatio)});
  }
  Table.print();

  std::printf("\nTable 3: ATMem slowdown vs the all-DRAM ideal "
              "(paper: BFS 25%%-2.4x, SSSP 26%%-2.0x, PR 24%%-3.0x, "
              "BC 9%%-1.8x, CC 54%%-2.0x)\n");
  TablePrinter Table3({"kernel", "min slowdown", "max slowdown"});
  for (const auto &[Kernel, Stat] : SlowdownByKernel)
    Table3.addRow({Kernel, formatPercent(Stat.min()),
                   formatPercent(Stat.max())});
  Table3.print();
  std::printf("\nExpected shape: ATMem lands between the bars everywhere; "
              "improvement over all-NVM grows with graph size and skew.\n");
  writeBenchResults("fig05_nvm_overall", Options, Records, TotalWallMs);
  return 0;
}
