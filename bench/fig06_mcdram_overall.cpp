//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 6 (overall performance on the MCDRAM-DRAM testbed).
/// Bars: baseline all-DDR4, ATMem, and the MCDRAM-preferred NUMA policy
/// ('numactl -p MCDRAM') standing in for the unattainable all-MCDRAM
/// ideal, exactly as in the paper (MCDRAM cannot hold the large graphs).
///
/// Paper expectations: ATMem achieves 1.1x-3x over the baseline with only
/// 3.8%-18.2% of data on MCDRAM, and *beats* MCDRAM-p on the datasets that
/// exceed MCDRAM capacity (up to 2.79x on friendster BFS).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace atmem;
using namespace atmem::bench;
using baseline::Policy;

int main(int Argc, const char **Argv) {
  OptionParser Parser("fig06_mcdram_overall: reproduce Figure 6 "
                      "(MCDRAM-DRAM testbed)");
  addCommonOptions(Parser);
  if (!Parser.parse(Argc, Argv))
    return 1;
  BenchOptions Options;
  if (!readCommonOptions(Parser, Options))
    return 1;

  DatasetCache Cache(Options.ScaleDivisor);
  sim::MachineConfig Machine =
      sim::mcdramDramTestbed(1.0 / Options.ScaleDivisor);

  printBanner("Figure 6: execution time on MCDRAM-DRAM (baseline all-DDR4, "
              "ATMem, MCDRAM-p reference)",
              Options);

  TablePrinter Table({"app", "dataset", "all-DDR4", "ATMem", "MCDRAM-p",
                      "gain vs DDR4", "ATMem vs MCDRAM-p", "data ratio",
                      "MCDRAM-p ratio"});
  std::vector<BenchJob> Jobs;
  for (const std::string &Kernel : Options.Kernels)
    for (const std::string &Name : Options.Datasets)
      for (Policy P :
           {Policy::AllSlow, Policy::Atmem, Policy::PreferredFast})
        Jobs.push_back({Kernel, Name, P});
  double TotalWallMs = 0.0;
  std::vector<BenchRecord> Records =
      runConcurrent(Jobs, Cache, Machine, Options, &TotalWallMs);

  for (size_t I = 0; I < Records.size(); I += 3) {
    const baseline::RunResult &Slow = Records[I].Result;
    const baseline::RunResult &Atmem = Records[I + 1].Result;
    const baseline::RunResult &Pref = Records[I + 2].Result;
    Table.addRow(
        {Records[I].Job.Kernel, Records[I].Job.Dataset,
         formatSeconds(Slow.MeasuredIterSec),
         formatSeconds(Atmem.MeasuredIterSec),
         formatSeconds(Pref.MeasuredIterSec),
         formatSpeedup(Slow.MeasuredIterSec / Atmem.MeasuredIterSec),
         formatSpeedup(Pref.MeasuredIterSec / Atmem.MeasuredIterSec),
         formatPercent(Atmem.FastDataRatio),
         formatPercent(Pref.FastDataRatio)});
  }
  Table.print();
  std::printf("\nExpected shape: ATMem beats the baseline everywhere with a "
              "small data ratio, and beats MCDRAM-p (ratio > 1x in the "
              "'ATMem vs MCDRAM-p' column) on the datasets whose MCDRAM-p "
              "ratio is well below 100%% (capacity overflow).\n");
  writeBenchResults("fig06_mcdram_overall", Options, Records, TotalWallMs);
  return 0;
}
