//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 7: the fraction of application data ATMem places on
/// DRAM (the fast tier of the NVM-DRAM testbed), per app and dataset. The
/// paper reports 5%-18% on average, with small inputs (pokec) selecting
/// proportionally more because their absolute footprint is tiny.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace atmem;
using namespace atmem::bench;
using baseline::Policy;

int main(int Argc, const char **Argv) {
  OptionParser Parser("fig07_data_ratio_nvm: reproduce Figure 7 (data "
                      "ratio ATMem places on DRAM, NVM-DRAM testbed)");
  addCommonOptions(Parser);
  if (!Parser.parse(Argc, Argv))
    return 1;
  BenchOptions Options;
  if (!readCommonOptions(Parser, Options))
    return 1;

  DatasetCache Cache(Options.ScaleDivisor);
  sim::MachineConfig Machine =
      sim::nvmDramTestbed(1.0 / Options.ScaleDivisor);

  printBanner("Figure 7: data ratio on DRAM under ATMem (NVM-DRAM "
              "testbed; paper average band 5%-18%)",
              Options);

  TablePrinter Table({"app", "dataset", "data ratio", "bytes moved"});
  for (const std::string &Kernel : Options.Kernels) {
    for (const std::string &Name : Options.Datasets) {
      const graph::Dataset &Data = Cache.get(Name);
      auto Atmem = runOne(Kernel, Data, Machine, Policy::Atmem, 0.0,
                          /*MeasureTlb=*/false, Options.SimThreads);
      Table.addRow({Kernel, Name, formatPercent(Atmem.FastDataRatio),
                    formatBytes(Atmem.Migration.BytesMoved)});
    }
  }
  Table.print();
  std::printf("\nExpected shape: minority ratios throughout, larger on the "
              "small pokec input, smaller on the billion-edge-class "
              "graphs.\n");
  return 0;
}
