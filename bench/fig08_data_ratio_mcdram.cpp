//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 8: the fraction of application data ATMem places on
/// MCDRAM (MCDRAM-DRAM testbed), per app and dataset. The paper reports
/// 3.8%-18.2%; capacity caps the ratio on the large graphs.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace atmem;
using namespace atmem::bench;
using baseline::Policy;

int main(int Argc, const char **Argv) {
  OptionParser Parser("fig08_data_ratio_mcdram: reproduce Figure 8 (data "
                      "ratio ATMem places on MCDRAM)");
  addCommonOptions(Parser);
  if (!Parser.parse(Argc, Argv))
    return 1;
  BenchOptions Options;
  if (!readCommonOptions(Parser, Options))
    return 1;

  DatasetCache Cache(Options.ScaleDivisor);
  sim::MachineConfig Machine =
      sim::mcdramDramTestbed(1.0 / Options.ScaleDivisor);

  printBanner("Figure 8: data ratio on MCDRAM under ATMem (MCDRAM-DRAM "
              "testbed; paper band 3.8%-18.2%)",
              Options);

  TablePrinter Table({"app", "dataset", "data ratio", "bytes moved"});
  for (const std::string &Kernel : Options.Kernels) {
    for (const std::string &Name : Options.Datasets) {
      const graph::Dataset &Data = Cache.get(Name);
      auto Atmem = runOne(Kernel, Data, Machine, Policy::Atmem, 0.0,
                          /*MeasureTlb=*/false, Options.SimThreads);
      Table.addRow({Kernel, Name, formatPercent(Atmem.FastDataRatio),
                    formatBytes(Atmem.Migration.BytesMoved)});
    }
  }
  Table.print();
  std::printf("\nExpected shape: minority ratios, bounded by the scaled "
              "16 GiB MCDRAM capacity on the large graphs.\n");
  return 0;
}
