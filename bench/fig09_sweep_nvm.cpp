//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 9 (Section 7.2 sensitivity): BFS execution time as a
/// function of the data ratio on DRAM, per dataset, on the NVM-DRAM
/// testbed. The sweep manually varies the epsilon term of Eq. 5 so the
/// analyzer selects different ratios, exactly as in the paper. The
/// expected shape is a knee: steep improvement up to an optimal region,
/// then a flat tail where more data buys nothing. The default (eps offset
/// 0) point that ATMem picks autonomously is marked with '*'.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <vector>

using namespace atmem;
using namespace atmem::bench;
using baseline::Policy;

int main(int Argc, const char **Argv) {
  OptionParser Parser("fig09_sweep_nvm: reproduce Figure 9 (data-ratio "
                      "sweep for BFS on NVM-DRAM)");
  addCommonOptions(Parser);
  Parser.addString("kernel", "bfs", "kernel to sweep (paper uses BFS)");
  if (!Parser.parse(Argc, Argv))
    return 1;
  BenchOptions Options;
  if (!readCommonOptions(Parser, Options))
    return 1;
  std::string Kernel = Parser.getString("kernel");

  DatasetCache Cache(Options.ScaleDivisor);
  sim::MachineConfig Machine =
      sim::nvmDramTestbed(1.0 / Options.ScaleDivisor);

  printBanner("Figure 9: " + Kernel +
                  " time vs data ratio on DRAM (eps sweep, NVM-DRAM)",
              Options);

  const std::vector<double> EpsOffsets = {0.50, 0.30, 0.15, 0.05, 0.0,
                                          -0.10, -0.25, -0.45, -0.70};
  for (const std::string &Name : Options.Datasets) {
    const graph::Dataset &Data = Cache.get(Name);
    std::printf("\n[%s]\n", Name.c_str());
    TablePrinter Table({"eps offset", "data ratio", "time", "note"});
    for (double Eps : EpsOffsets) {
      auto Result = runOne(Kernel, Data, Machine, Policy::Atmem, Eps,
                           /*MeasureTlb=*/false, Options.SimThreads);
      Table.addRow({formatDouble(Eps, 3),
                    formatPercent(Result.FastDataRatio),
                    formatSeconds(Result.MeasuredIterSec),
                    Eps == 0.0 ? "* ATMem default" : ""});
    }
    auto Ideal = runOne(Kernel, Data, Machine, Policy::AllFast, 0.0,
                        /*MeasureTlb=*/false, Options.SimThreads);
    Table.addRow({"(all-DRAM)", "100.0%",
                  formatSeconds(Ideal.MeasuredIterSec), "ideal"});
    Table.print();
  }
  std::printf("\nExpected shape: time falls steeply while the ratio grows "
              "from 0, then flattens past the knee; the ATMem default "
              "point sits at or just past the knee on every dataset.\n");
  return 0;
}
