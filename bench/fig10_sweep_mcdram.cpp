//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 10 (Section 7.2 sensitivity): BFS execution time vs
/// data ratio on MCDRAM, per dataset, on the MCDRAM-DRAM testbed. Unlike
/// Figure 9, the sweep's maximum ratio is capped by MCDRAM's capacity on
/// the large datasets (rmat27, twitter, friendster); the paper also notes
/// that filling MCDRAM to its capacity can *hurt*, which the plan
/// builder's budget headroom avoids.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <vector>

using namespace atmem;
using namespace atmem::bench;
using baseline::Policy;

int main(int Argc, const char **Argv) {
  OptionParser Parser("fig10_sweep_mcdram: reproduce Figure 10 (data-ratio "
                      "sweep for BFS on MCDRAM-DRAM)");
  addCommonOptions(Parser);
  Parser.addString("kernel", "bfs", "kernel to sweep (paper uses BFS)");
  if (!Parser.parse(Argc, Argv))
    return 1;
  BenchOptions Options;
  if (!readCommonOptions(Parser, Options))
    return 1;
  std::string Kernel = Parser.getString("kernel");

  DatasetCache Cache(Options.ScaleDivisor);
  sim::MachineConfig Machine =
      sim::mcdramDramTestbed(1.0 / Options.ScaleDivisor);

  printBanner("Figure 10: " + Kernel +
                  " time vs data ratio on MCDRAM (eps sweep, MCDRAM-DRAM)",
              Options);

  const std::vector<double> EpsOffsets = {0.50, 0.30, 0.15, 0.05, 0.0,
                                          -0.10, -0.25, -0.45, -0.70};
  for (const std::string &Name : Options.Datasets) {
    const graph::Dataset &Data = Cache.get(Name);
    std::printf("\n[%s]\n", Name.c_str());
    TablePrinter Table({"eps offset", "data ratio", "time", "note"});
    for (double Eps : EpsOffsets) {
      auto Result = runOne(Kernel, Data, Machine, Policy::Atmem, Eps,
                           /*MeasureTlb=*/false, Options.SimThreads);
      Table.addRow({formatDouble(Eps, 3),
                    formatPercent(Result.FastDataRatio),
                    formatSeconds(Result.MeasuredIterSec),
                    Eps == 0.0 ? "* ATMem default" : ""});
    }
    // The MCDRAM-p reference replaces an unattainable all-MCDRAM bar.
    auto Pref = runOne(Kernel, Data, Machine, Policy::PreferredFast, 0.0,
                       /*MeasureTlb=*/false, Options.SimThreads);
    Table.addRow({"(MCDRAM-p)", formatPercent(Pref.FastDataRatio),
                  formatSeconds(Pref.MeasuredIterSec), "NUMA preferred"});
    Table.print();
  }
  std::printf("\nExpected shape: a knee as in Figure 9, but the maximum "
              "reachable ratio stays below 100%% on datasets larger than "
              "MCDRAM; the ATMem default point beats MCDRAM-p there.\n");
  return 0;
}
