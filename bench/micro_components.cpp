//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark microbenchmarks for the framework's components: the
/// analyzer stages (selection, tree construction, promotion), the cache
/// and TLB models, the migrators, and the graph generators. These measure
/// the *host* cost of running the framework itself, complementing the
/// simulated-time figure benchmarks.
///
//===----------------------------------------------------------------------===//

#include "analyzer/GlobalPromoter.h"
#include "analyzer/LocalSelector.h"
#include "analyzer/MaryTree.h"
#include "mem/AtmemMigrator.h"
#include "mem/MbindMigrator.h"
#include "graph/Generators.h"
#include "sim/Machine.h"
#include "support/Prng.h"

#include <benchmark/benchmark.h>

using namespace atmem;

namespace {

std::vector<double> randomMisses(size_t N, uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  std::vector<double> Misses(N);
  for (double &M : Misses)
    M = Rng.nextDouble() < 0.2 ? 1000.0 * Rng.nextDouble() : 0.0;
  return Misses;
}

std::vector<uint8_t> randomFlags(size_t N, uint64_t Seed, double Density) {
  Xoshiro256 Rng(Seed);
  std::vector<uint8_t> Flags(N);
  for (auto &F : Flags)
    F = Rng.nextDouble() < Density ? 1 : 0;
  return Flags;
}

void BM_LocalSelector(benchmark::State &State) {
  auto Misses = randomMisses(State.range(0), 42);
  analyzer::LocalSelector Selector;
  for (auto _ : State) {
    auto Sel = Selector.select(Misses, 65536, 64);
    benchmark::DoNotOptimize(Sel.CriticalCount);
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_LocalSelector)->Range(1 << 8, 1 << 16);

void BM_MaryTreeBuild(benchmark::State &State) {
  auto Flags = randomFlags(State.range(0), 7, 0.15);
  for (auto _ : State) {
    analyzer::MaryTree Tree(Flags, 8);
    benchmark::DoNotOptimize(Tree.numNodes());
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_MaryTreeBuild)->Range(1 << 8, 1 << 18);

void BM_TreePromotion(benchmark::State &State) {
  analyzer::LocalSelection Sel;
  Sel.Critical = randomFlags(State.range(0), 9, 0.15);
  Sel.Priority.assign(Sel.Critical.size(), 0.0);
  for (size_t I = 0; I < Sel.Critical.size(); ++I)
    if (Sel.Critical[I]) {
      Sel.Priority[I] = 1.0;
      ++Sel.CriticalCount;
    }
  analyzer::GlobalPromoter Promoter;
  for (auto _ : State) {
    auto Result = Promoter.promote(Sel, 0.25);
    benchmark::DoNotOptimize(Result.PromotedCount);
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_TreePromotion)->Range(1 << 8, 1 << 18);

void BM_CacheSimAccess(benchmark::State &State) {
  sim::CacheConfig Config;
  Config.SizeBytes = 1 << 20;
  sim::CacheSim Cache(Config);
  Xoshiro256 Rng(3);
  std::vector<uint64_t> Addrs(4096);
  for (auto &A : Addrs)
    A = Rng.nextBounded(64ull << 20);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Cache.access(Addrs[I++ & 4095]));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CacheSimAccess);

void BM_TlbAccess(benchmark::State &State) {
  sim::TlbConfig Config;
  sim::Tlb Tlb(Config);
  Xoshiro256 Rng(4);
  std::vector<uint64_t> Addrs(4096);
  for (auto &A : Addrs)
    A = Rng.nextBounded(1ull << 30);
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        Tlb.access(Addrs[I++ & 4095], sim::SmallPageBytes));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_TlbAccess);

void BM_AtmemMigration(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    sim::Machine M(sim::nvmDramTestbed(1.0 / 256));
    mem::DataObjectRegistry Registry(M);
    mem::ThreadPool Pool(8);
    mem::AtmemMigrator Migrator(Registry, Pool);
    mem::DataObject &Obj =
        Registry.create("o", State.range(0), mem::InitialPlacement::Slow);
    State.ResumeTiming();
    mem::MigrationResult Result;
    Migrator.migrate(Obj, {{0, Obj.numChunks()}}, sim::TierId::Fast,
                     Result);
    benchmark::DoNotOptimize(Result.BytesMoved);
  }
  State.SetBytesProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_AtmemMigration)->Range(1 << 20, 1 << 24);

void BM_MbindMigration(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    sim::Machine M(sim::nvmDramTestbed(1.0 / 256));
    mem::DataObjectRegistry Registry(M);
    mem::MbindMigrator Migrator(Registry);
    mem::DataObject &Obj =
        Registry.create("o", State.range(0), mem::InitialPlacement::Slow);
    State.ResumeTiming();
    mem::MigrationResult Result;
    Migrator.migrate(Obj, {{0, Obj.numChunks()}}, sim::TierId::Fast,
                     Result);
    benchmark::DoNotOptimize(Result.BytesMoved);
  }
  State.SetBytesProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_MbindMigration)->Range(1 << 20, 1 << 24);

void BM_RmatGeneration(benchmark::State &State) {
  for (auto _ : State) {
    graph::RmatParams Params;
    Params.Scale = static_cast<uint32_t>(State.range(0));
    Params.EdgeFactor = 8;
    auto G = graph::generateRmat(Params);
    benchmark::DoNotOptimize(G.numEdges());
  }
}
BENCHMARK(BM_RmatGeneration)->DenseRange(10, 16, 2);

void BM_PowerLawGeneration(benchmark::State &State) {
  for (auto _ : State) {
    graph::PowerLawParams Params;
    Params.NumVertices = static_cast<uint32_t>(State.range(0));
    Params.AverageDegree = 8;
    auto G = graph::generatePowerLaw(Params);
    benchmark::DoNotOptimize(G.numEdges());
  }
}
BENCHMARK(BM_PowerLawGeneration)->Range(1 << 10, 1 << 16);

} // namespace

BENCHMARK_MAIN();
