//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmark of the two runtime hot paths this PR series optimizes:
///
///   tracked_access — the inline per-access path (LLC probe + per-tier
///       accounting) driven by a pseudo-random gather whose footprint
///       exceeds the simulated LLC, so the probe's miss side is exercised
///       as hard as its hit side;
///   miss_drain — the end-of-iteration drain of buffered shard misses
///       into the profiler, miss trace, and TLB replay. Both drains are
///       measured from one binary: the reference per-miss pipeline
///       (RuntimeConfig::BatchedDrain = false, the pre-optimization
///       behaviour preserved verbatim) and the batched pipeline, giving a
///       self-contained before/after pair plus their speedup.
///
/// Each section runs one untimed warmup pass and then N timed repeats;
/// the JSON reports min/median/max rates per section, with the legacy
/// scalar keys (wall_ms, accesses_per_sec, misses_per_sec) carrying the
/// median so perf_smoke.sh's gate reads the same keys it always did.
///
/// Results are appended as JSON (default micro_hotpath.json) so successive
/// PRs leave a perf trajectory behind, in the spirit of the figure
/// benches' bench_results.json.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "profiler/TraceFile.h"
#include "sim/Machine.h"
#include "sim/Tlb.h"
#include "support/BuildInfo.h"
#include "support/Options.h"
#include "support/Topology.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace atmem;

namespace {

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Machine whose LLC is far smaller than the bench arrays, so the gather
/// below is miss-dominated (the interesting regime for both paths).
sim::MachineConfig benchMachine() {
  sim::MachineConfig Config = sim::nvmDramTestbed(1.0 / 256);
  Config.Cache.SizeBytes = 1 << 20;
  return Config;
}

constexpr uint64_t LcgMul = 6364136223846793005ull;
constexpr uint64_t LcgAdd = 1442695040888963407ull;

struct SectionResult {
  uint64_t Events = 0;
  double WallMs = 0.0;

  double perSec() const {
    return WallMs > 0.0 ? static_cast<double>(Events) / (WallMs / 1000.0)
                        : 0.0;
  }
};

/// Min/median/max over N timed repeats of one section, ordered by rate.
/// The median repeat is the headline number (and what the perf gate
/// reads); min/max bound the run-to-run noise on the host.
struct SectionStats {
  SectionResult Min, Median, Max;
  uint32_t Repeats = 0;
};

SectionStats summarize(std::vector<SectionResult> Runs) {
  std::sort(Runs.begin(), Runs.end(),
            [](const SectionResult &A, const SectionResult &B) {
              return A.perSec() < B.perSec();
            });
  SectionStats S;
  S.Repeats = static_cast<uint32_t>(Runs.size());
  if (Runs.empty())
    return S;
  S.Min = Runs.front();
  S.Median = Runs[Runs.size() / 2];
  S.Max = Runs.back();
  return S;
}

/// Times \p Accesses tracked gathers over a 32 MiB array on the serial
/// engine with no miss consumers attached — the bare inline hot path.
SectionResult benchTrackedAccess(uint64_t Accesses) {
  core::RuntimeConfig Config;
  Config.Machine = benchMachine();
  core::Runtime Rt(Config);
  constexpr uint64_t Elems = 1u << 22;
  core::TrackedArray<uint64_t> Arr = Rt.allocate<uint64_t>("gather", Elems);
  for (uint64_t I = 0; I < Elems; ++I)
    Arr.raw()[I] = I * LcgMul;

  Rt.beginIteration();
  uint64_t State = 0x243f6a8885a308d3ull;
  uint64_t Sink = 0;
  // Untimed warmup: fault in the array and warm the simulated LLC so the
  // timed repeats all start from the same cache state.
  for (uint64_t I = 0; I < Accesses / 8; ++I) {
    State = State * LcgMul + LcgAdd;
    Sink ^= Arr[(State >> 11) & (Elems - 1)];
  }
  double Begin = nowMs();
  for (uint64_t I = 0; I < Accesses; ++I) {
    State = State * LcgMul + LcgAdd;
    Sink ^= Arr[(State >> 11) & (Elems - 1)];
  }
  double WallMs = nowMs() - Begin;
  Rt.endIteration();
  // Keep the gather alive past the optimizer.
  if (Sink == 0x5ca1ab1e)
    std::fprintf(stderr, "sink\n");
  return {Accesses, WallMs};
}

/// Deterministic per-shard miss streams (byte offsets into the gather
/// array), generated once and injected verbatim into both drain
/// configurations. Earlier revisions produced the misses with a tracked
/// kernel fill, which let the pool's work partitioning perturb each
/// shard's private LLC — the reference and batched sections then drained
/// slightly different miss counts (6192686 vs 6192602 in the committed
/// baseline) even though the drains themselves are deterministic.
/// Injection makes the two sections' inputs identical by construction.
std::vector<std::vector<uint64_t>>
makeMissStreams(uint32_t Shards, uint64_t MissesPerShard) {
  constexpr uint64_t Elems = 1u << 22;
  std::vector<std::vector<uint64_t>> Streams(Shards);
  for (uint32_t T = 0; T < Shards; ++T) {
    uint64_t State = 0x9e3779b97f4a7c15ull + T;
    Streams[T].reserve(MissesPerShard);
    for (uint64_t I = 0; I < MissesPerShard; ++I) {
      State = State * LcgMul + LcgAdd;
      Streams[T].push_back(((State >> 11) & (Elems - 1)) * 8);
    }
  }
  return Streams;
}

/// Times the end-of-iteration drain (profiler + miss trace + TLB replay
/// over every buffered miss) for one drain implementation. The buffers
/// are filled untimed from \p Streams; only endIteration() — the drain —
/// is on the clock.
SectionResult
benchMissDrain(bool Batched, uint32_t SimThreads, uint32_t Iterations,
               const std::vector<std::vector<uint64_t>> &Streams,
               const std::string &TracePath) {
  core::RuntimeConfig Config;
  Config.Machine = benchMachine();
  Config.SimThreads = SimThreads;
  Config.BatchedDrain = Batched;
  core::Runtime Rt(Config);
  constexpr uint64_t Elems = 1u << 22;
  core::TrackedArray<uint64_t> Arr = Rt.allocate<uint64_t>("gather", Elems);
  uint64_t VaBase = Arr.va();

  sim::Tlb Tlb = Rt.machine().makeTlb();
  Rt.setReplayTlb(&Tlb);
  prof::TraceWriter Trace;
  if (!Trace.open(TracePath)) {
    std::fprintf(stderr, "micro_hotpath: cannot open %s\n",
                 TracePath.c_str());
    return {};
  }
  Rt.setMissTrace(&Trace);
  Rt.profilingStart();

  SectionResult Result;
  // Iteration 0 is an untimed warmup: it touches every buffer, warms the
  // translation cache and recycle pool, and is excluded from the stats.
  for (uint32_t Iter = 0; Iter <= Iterations; ++Iter) {
    bool Warmup = Iter == 0;
    Rt.beginIteration();
    for (uint32_t T = 0; T < Rt.simThreads(); ++T) {
      std::vector<uint64_t> &Buf = Rt.simContext(T).missBuffer();
      Buf.clear();
      Buf.reserve(Streams[T].size());
      for (uint64_t Off : Streams[T])
        Buf.push_back(VaBase + Off);
      if (!Warmup)
        Result.Events += Buf.size();
    }
    double Begin = nowMs();
    Rt.endIteration();
    if (!Warmup)
      Result.WallMs += nowMs() - Begin;
  }
  Rt.profilingStop();
  Trace.finish();
  std::remove(TracePath.c_str());
  return Result;
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Parser(
      "micro_hotpath: tracked-access and miss-drain throughput, with the "
      "reference (pre-batching) drain as an in-binary baseline");
  Parser.addFlag("quick", "Cut workload sizes for CI smoke runs");
  Parser.addUnsigned("sim-threads", 2,
                     "Engine threads for the miss-drain section");
  Parser.addUnsigned("repeats", 0,
                     "Timed repeats per section (0 = 3 quick / 5 full)");
  Parser.addString("json", "micro_hotpath.json",
                   "Machine-readable results path (\"\" disables)");
  Parser.addString("trace-tmp", "micro_hotpath.mtrace",
                   "Scratch path for the drain section's miss trace");
  if (!Parser.parse(Argc, Argv))
    return 1;

  bool Quick = Parser.getFlag("quick");
  auto SimThreads =
      static_cast<uint32_t>(Parser.getUnsigned("sim-threads"));
  auto Repeats = static_cast<uint32_t>(Parser.getUnsigned("repeats"));
  if (Repeats == 0)
    Repeats = Quick ? 3 : 5;
  uint64_t TrackedAccesses = Quick ? 4u << 20 : 32u << 20;
  uint32_t DrainIters = Quick ? 3 : 8;
  uint64_t DrainMissesPerShard =
      (Quick ? 2u << 20 : 8u << 20) / std::max(1u, SimThreads) / 10;

  // One topology probe provides both provenance fields: the cached
  // hardware-thread count (the same value Runtime caches at construction
  // instead of re-asking hardware_concurrency per drain) and the NUMA
  // node count the sharded drain laid out against.
  support::Topology Topo = support::Topology::detect();

  std::printf(
      "[micro_hotpath] quick=%d sim-threads=%u host-threads=%u "
      "numa-nodes=%u repeats=%u\n",
      Quick ? 1 : 0, SimThreads, Topo.hardwareThreads(), Topo.numNodes(),
      Repeats);

  auto report = [](const char *Name, const char *Unit,
                   const SectionStats &S) {
    std::printf("%-16s %12llu %s  median %9.2f ms  %12.0f /s  "
                "(min %.0f, max %.0f)\n",
                Name, static_cast<unsigned long long>(S.Median.Events),
                Unit, S.Median.WallMs, S.Median.perSec(), S.Min.perSec(),
                S.Max.perSec());
  };

  std::vector<SectionResult> TrackedRuns;
  for (uint32_t R = 0; R < Repeats; ++R)
    TrackedRuns.push_back(benchTrackedAccess(TrackedAccesses));
  SectionStats Tracked = summarize(std::move(TrackedRuns));
  report("tracked_access", "accesses", Tracked);

  std::string TracePath = Parser.getString("trace-tmp");
  std::vector<std::vector<uint64_t>> Streams =
      makeMissStreams(std::max(1u, SimThreads), DrainMissesPerShard);
  std::vector<SectionResult> ReferenceRuns, BatchedRuns;
  for (uint32_t R = 0; R < Repeats; ++R)
    ReferenceRuns.push_back(benchMissDrain(
        /*Batched=*/false, SimThreads, DrainIters, Streams, TracePath));
  for (uint32_t R = 0; R < Repeats; ++R)
    BatchedRuns.push_back(benchMissDrain(
        /*Batched=*/true, SimThreads, DrainIters, Streams, TracePath));
  SectionStats Reference = summarize(std::move(ReferenceRuns));
  SectionStats Batched = summarize(std::move(BatchedRuns));
  report("drain_reference", "misses  ", Reference);
  report("drain_batched", "misses  ", Batched);
  if (Reference.Median.Events != Batched.Median.Events) {
    std::fprintf(stderr,
                 "micro_hotpath: reference and batched drained different "
                 "miss counts (%llu vs %llu) despite injected streams\n",
                 static_cast<unsigned long long>(Reference.Median.Events),
                 static_cast<unsigned long long>(Batched.Median.Events));
    return 1;
  }

  double Speedup = Reference.Median.perSec() > 0.0
                       ? Batched.Median.perSec() / Reference.Median.perSec()
                       : 0.0;
  std::printf("drain speedup (batched / reference, medians): %.2fx\n",
              Speedup);

  std::string JsonPath = Parser.getString("json");
  if (!JsonPath.empty()) {
    std::FILE *Out = std::fopen(JsonPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "micro_hotpath: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
    // Scalar wall_ms / *_per_sec keys carry the median repeat so older
    // tooling (and perf_smoke.sh's gate) keeps reading the same keys;
    // min/median/max rates sit alongside them.
    std::fprintf(Out,
                 "{\n"
                 "  \"bench\": \"micro_hotpath\",\n"
                 "  \"quick\": %s,\n"
                 "  \"sim_threads\": %u,\n"
                 "  \"repeats\": %u,\n"
                 "  \"host_hardware_threads\": %u,\n"
                 "  \"numa_nodes\": %u,\n"
                 "  \"git_sha\": \"%s\",\n"
                 "  \"compiler\": \"%s\",\n"
                 "  \"cpu_model\": \"%s\",\n"
                 "  \"peak_rss_bytes\": %llu,\n"
                 "  \"tracked_access\": {\n"
                 "    \"accesses\": %llu,\n"
                 "    \"wall_ms\": %.3f,\n"
                 "    \"accesses_per_sec\": %.0f,\n"
                 "    \"min_per_sec\": %.0f,\n"
                 "    \"median_per_sec\": %.0f,\n"
                 "    \"max_per_sec\": %.0f\n"
                 "  },\n"
                 "  \"miss_drain\": {\n"
                 "    \"reference\": {\"misses\": %llu, \"wall_ms\": %.3f, "
                 "\"misses_per_sec\": %.0f, \"min_per_sec\": %.0f, "
                 "\"median_per_sec\": %.0f, \"max_per_sec\": %.0f},\n"
                 "    \"batched\": {\"misses\": %llu, \"wall_ms\": %.3f, "
                 "\"misses_per_sec\": %.0f, \"min_per_sec\": %.0f, "
                 "\"median_per_sec\": %.0f, \"max_per_sec\": %.0f},\n"
                 "    \"speedup\": %.3f\n"
                 "  }\n"
                 "}\n",
                 Quick ? "true" : "false", SimThreads, Repeats,
                 Topo.hardwareThreads(), Topo.numNodes(),
                 support::gitSha(), support::compilerId(),
                 support::cpuModel().c_str(),
                 static_cast<unsigned long long>(support::peakRssBytes()),
                 static_cast<unsigned long long>(Tracked.Median.Events),
                 Tracked.Median.WallMs, Tracked.Median.perSec(),
                 Tracked.Min.perSec(), Tracked.Median.perSec(),
                 Tracked.Max.perSec(),
                 static_cast<unsigned long long>(Reference.Median.Events),
                 Reference.Median.WallMs, Reference.Median.perSec(),
                 Reference.Min.perSec(), Reference.Median.perSec(),
                 Reference.Max.perSec(),
                 static_cast<unsigned long long>(Batched.Median.Events),
                 Batched.Median.WallMs, Batched.Median.perSec(),
                 Batched.Min.perSec(), Batched.Median.perSec(),
                 Batched.Max.perSec(), Speedup);
    std::fclose(Out);
    std::printf("results written to %s\n", JsonPath.c_str());
  }
  return 0;
}
