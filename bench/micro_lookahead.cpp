//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmark of the lookahead migration scheduler. A gather array
/// carries a steady hot region plus a *warming* region whose intensity
/// ramps over the first epochs — the access-trend shape the
/// LookaheadPlanner is built to catch. The same epoch sequence runs twice,
/// lookahead off and on, and the bench records how much modelled
/// epoch-boundary stall the staged-ahead pipeline absorbed into the
/// compute overlap (committed prefetches pay only the remap at the
/// boundary), how often predictions hit or were cancelled, and how many
/// converged-tail epochs the adaptive back-off skipped. Placement identity
/// with lookahead off is covered by LookaheadTest; this bench is the perf
/// trajectory.
///
/// Results land in BENCH_lookahead.json (CI uploads the file as an
/// artifact) stamped with the same provenance fields as the other
/// BENCH_*.json emitters.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "obs/Export.h"
#include "sim/MachineConfig.h"
#include "support/BuildInfo.h"
#include "support/Options.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

using namespace atmem;

namespace {

constexpr uint64_t LcgMul = 6364136223846793005ull;
constexpr uint64_t LcgAdd = 1442695040888963407ull;

/// Geometry of the synthetic workload: a few very hot chunks over broad
/// low-intensity background noise — the strongly separated (bimodal)
/// distribution ATMem's Eq. 2 derivative cut is built for, which parks
/// theta at the midpoint between the hot and noise clusters where it
/// stays put while the warming region ramps underneath it. The simulated
/// LLC is far smaller than any region, so the profiler sees the ramp.
struct Workload {
  uint64_t ChunkBytes = 128 << 10;
  uint32_t HotChunks = 4;
  uint32_t WarmChunks = 2;
  uint32_t TotalChunks = 64;
  uint32_t Epochs = 8;
  uint64_t AccessesPerHotChunk = 60000;
  /// Background intensity of every chunk relative to the hot region.
  double NoiseWeight = 0.02;

  uint32_t totalChunks() const { return TotalChunks; }
  uint64_t elems() const { return TotalChunks * ChunkBytes / sizeof(uint64_t); }
  /// First warming chunk; separated from the hot run so the staged-ahead
  /// range is its own migration unit.
  uint32_t warmFirst() const { return HotChunks + 4; }
  /// Warming-region intensity for \p Epoch relative to the hot region:
  /// 0.04 → 0.10 → 1.0, then steady. The selector's pooled log-space
  /// stage catches anything above roughly the geometric mean of the noise
  /// and hot levels (~0.14x hot here), so the two ramp epochs must stay
  /// under that — distinguishable from noise only by their velocity,
  /// which is exactly the planner's niche. Then the region jumps critical
  /// for good.
  double warmWeight(uint32_t Epoch) const {
    return Epoch == 0 ? 0.04 : Epoch == 1 ? 0.10 : 1.0;
  }
};

struct RunTotals {
  double IterSec = 0.0;      ///< Modelled kernel seconds across epochs.
  double MigrateSec = 0.0;   ///< Modelled optimize() boundary seconds.
  core::LookaheadStats Lk;   ///< Zero for the lookahead-off run.
};

core::RuntimeConfig benchConfig(const Workload &W, bool LookaheadOn,
                                const std::string &DecisionLog) {
  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  Config.ChunkBytesOverride = W.ChunkBytes;
  Config.Telemetry.DecisionLogPath = DecisionLog;
  Config.Telemetry.Enabled = !DecisionLog.empty();
  Config.Lookahead.Enabled = LookaheadOn;
  // The pooled log-space selection stage is aggressive — any chunk above
  // ~25% of the local 2-means theta is already critical — so predictions
  // must fire below that to beat it to the punch. 0.2 puts the trigger
  // just above the noise floor, where only velocity separates a warming
  // chunk from background.
  Config.Lookahead.Planner.PredictThetaFraction = 0.2;
  // Short run: a single quiet epoch is enough evidence to back off.
  Config.Lookahead.ConvergedEpochsToBackoff = 1;
  return Config;
}

/// One epoch of tracked accesses: hot region at full intensity, warming
/// region at warmWeight(Epoch), cold region untouched. Deterministic, so
/// the off and on runs profile identical streams. Once the ramp tops out
/// the seed stops advancing — the tail epochs replay literally the same
/// stream, so placement converges and the adaptive back-off can engage.
void runEpoch(core::TrackedArray<uint64_t> &Arr, const Workload &W,
              uint32_t Epoch) {
  uint64_t ChunkElems = W.ChunkBytes / sizeof(uint64_t);
  uint64_t State = 0x243f6a8885a308d3ull + std::min(Epoch, 2u);
  auto Hammer = [&](uint32_t Chunk, uint64_t Accesses) {
    uint64_t Base = Chunk * ChunkElems;
    for (uint64_t I = 0; I < Accesses; ++I) {
      State = State * LcgMul + LcgAdd;
      Arr[Base + ((State >> 17) & (ChunkElems - 1))] += 1;
    }
  };
  auto NoiseAccesses =
      static_cast<uint64_t>(W.AccessesPerHotChunk * W.NoiseWeight);
  for (uint32_t C = 0; C < W.totalChunks(); ++C)
    Hammer(C, NoiseAccesses);
  for (uint32_t C = 0; C < W.HotChunks; ++C)
    Hammer(C, W.AccessesPerHotChunk);
  uint64_t WarmAccesses =
      static_cast<uint64_t>(W.AccessesPerHotChunk * W.warmWeight(Epoch));
  for (uint32_t C = 0; C < W.WarmChunks; ++C)
    Hammer(W.warmFirst() + C, WarmAccesses);
}

RunTotals runConfig(const Workload &W, bool LookaheadOn,
                    const std::string &DecisionLog = "") {
  core::Runtime Rt(benchConfig(W, LookaheadOn, DecisionLog));
  core::TrackedArray<uint64_t> Arr =
      Rt.allocate<uint64_t>("field", W.elems());
  for (uint64_t I = 0; I < Arr.size(); ++I)
    Arr.raw()[I] = I;

  RunTotals Totals;
  for (uint32_t E = 0; E < W.Epochs; ++E) {
    Rt.profilingStart();
    Rt.beginIteration();
    runEpoch(Arr, W, E);
    Totals.IterSec += Rt.endIteration();
    Totals.MigrateSec += Rt.optimize().SimSeconds;
  }
  Totals.Lk = Rt.lookaheadStats();
  return Totals;
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Parser(
      "micro_lookahead: epoch-boundary cost of a ramping workload with the "
      "lookahead scheduler off and on");
  Parser.addFlag("quick", "Cut workload sizes for CI smoke runs");
  Parser.addString("json", "BENCH_lookahead.json",
                   "Machine-readable results path (\"\" disables)");
  Parser.addString("decision-log", "",
                   "Record the lookahead-on run's placement decisions "
                   "(atdl, for atmem_explain; \"\" disables)");
  if (!Parser.parse(Argc, Argv))
    return 1;

  // Quick mode trims the converged tail only: the access intensity stays
  // put, because the ramp epochs need full sampling resolution for the
  // warming region's velocity to register above the noise quantum.
  Workload W;
  if (Parser.getFlag("quick"))
    W.Epochs = 6;

  std::printf("[micro_lookahead] epochs=%u chunks=%u chunk-bytes=%llu\n",
              W.Epochs, W.totalChunks(),
              static_cast<unsigned long long>(W.ChunkBytes));

  RunTotals Off = runConfig(W, /*LookaheadOn=*/false);
  std::string DecisionLog = Parser.getString("decision-log");
  RunTotals On = runConfig(W, /*LookaheadOn=*/true, DecisionLog);
  if (!DecisionLog.empty()) {
    obs::TelemetryConfig Telemetry;
    Telemetry.DecisionLogPath = DecisionLog;
    if (!obs::exportIfConfigured(Telemetry)) {
      std::fprintf(stderr, "micro_lookahead: cannot write %s\n",
                   DecisionLog.c_str());
      return 1;
    }
    std::printf("decision log written to %s\n", DecisionLog.c_str());
  }

  double OffTotal = Off.IterSec + Off.MigrateSec;
  double OnTotal = On.IterSec + On.MigrateSec;
  std::printf("lookahead off: iter %.6f s + migrate %.6f s = %.6f s\n",
              Off.IterSec, Off.MigrateSec, OffTotal);
  std::printf("lookahead on:  iter %.6f s + migrate %.6f s = %.6f s\n",
              On.IterSec, On.MigrateSec, OnTotal);
  std::printf("  staged %llu  committed %llu  cancelled %llu  "
              "backed-off %llu  overlapped %.6f s\n",
              static_cast<unsigned long long>(On.Lk.StagedRanges),
              static_cast<unsigned long long>(On.Lk.CommittedRanges),
              static_cast<unsigned long long>(On.Lk.CancelledRanges),
              static_cast<unsigned long long>(On.Lk.BackedOffEpochs),
              On.Lk.OverlappedSimSec);
  std::printf("boundary stall saved: %.6f s (%.2f%% of off-run migrate)\n",
              Off.MigrateSec - On.MigrateSec,
              Off.MigrateSec > 0.0
                  ? 100.0 * (Off.MigrateSec - On.MigrateSec) / Off.MigrateSec
                  : 0.0);

  if (On.Lk.CommittedRanges == 0) {
    std::fprintf(stderr,
                 "micro_lookahead: no staged-ahead range was committed — "
                 "the planner never caught the ramp\n");
    return 1;
  }

  std::string JsonPath = Parser.getString("json");
  if (!JsonPath.empty()) {
    std::FILE *Out = std::fopen(JsonPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "micro_lookahead: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
    std::fprintf(
        Out,
        "{\n"
        "  \"bench\": \"micro_lookahead\",\n"
        "  \"quick\": %s,\n"
        "  \"host_hardware_threads\": %u,\n"
        "  \"git_sha\": \"%s\",\n"
        "  \"compiler\": \"%s\",\n"
        "  \"cpu_model\": \"%s\",\n"
        "  \"peak_rss_bytes\": %llu,\n"
        "  \"epochs\": %u,\n"
        "  \"lookahead_off\": {\"iter_sec\": %.9f, \"migrate_sec\": %.9f},\n"
        "  \"lookahead_on\": {\"iter_sec\": %.9f, \"migrate_sec\": %.9f,\n"
        "    \"predicted_chunks\": %llu, \"staged_ranges\": %llu,\n"
        "    \"committed_ranges\": %llu, \"cancelled_ranges\": %llu,\n"
        "    \"backed_off_epochs\": %llu, \"overlapped_sim_sec\": %.9f},\n"
        "  \"boundary_sec_saved\": %.9f\n"
        "}\n",
        Parser.getFlag("quick") ? "true" : "false",
        std::max(1u, std::thread::hardware_concurrency()),
        support::gitSha(), support::compilerId(),
        support::cpuModel().c_str(),
        static_cast<unsigned long long>(support::peakRssBytes()), W.Epochs,
        Off.IterSec, Off.MigrateSec,
        On.IterSec, On.MigrateSec,
        static_cast<unsigned long long>(On.Lk.PredictedChunks),
        static_cast<unsigned long long>(On.Lk.StagedRanges),
        static_cast<unsigned long long>(On.Lk.CommittedRanges),
        static_cast<unsigned long long>(On.Lk.CancelledRanges),
        static_cast<unsigned long long>(On.Lk.BackedOffEpochs),
        On.Lk.OverlappedSimSec, Off.MigrateSec - On.MigrateSec);
    std::fclose(Out);
    std::printf("results written to %s\n", JsonPath.c_str());
  }
  return 0;
}
