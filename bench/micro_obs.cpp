//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmark of the decision-log sinks — the cost question behind
/// "always-on" observability: what does one recorded decision cost when
/// the stream goes to the flat file sink, to the crash-resilient mmap
/// ring (rotation included), and to the null sink (pure serializer cost),
/// against the disabled baseline of one relaxed load + branch per site.
///
/// Each mode replays the same workload: E epochs, each an EpochBegin, one
/// ObjectEpoch, a run of ChunkDecision records and a MigrationEvent — the
/// shape a real optimize() emits. The ring runs on default geometry, so
/// long runs exercise segment rotation and NameDef replay exactly as a
/// serving process would.
///
/// Results land in BENCH_obs.json (provenance-stamped like the other
/// BENCH_*.json trajectories). The acceptance bar this bench guards: the
/// ring's per-record cost stays within 2x of the flat file sink's.
///
//===----------------------------------------------------------------------===//

#include "obs/DecisionLog.h"
#include "obs/RingLog.h"
#include "support/BuildInfo.h"
#include "support/Options.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace atmem;
using namespace atmem::obs;

namespace {

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One epoch of the representative record mix; returns records emitted.
uint64_t emitEpoch(DecisionLog &Log, uint32_t Chunks) {
  Log.beginEpoch();
  ObjectEpochRecord Obj;
  Obj.Object = 1;
  Obj.NameId = Log.nameId("bench-object");
  Obj.NumChunks = Chunks;
  Obj.ChunkBytes = 1 << 18;
  Obj.SamplePeriod = 64;
  Obj.Weight = 0.5;
  Obj.Theta = 0.25;
  Log.recordObject(Obj);
  ChunkDecisionRecord Chunk;
  Chunk.Object = 1;
  Chunk.Samples = 7;
  Chunk.EstimatedMisses = 448.0;
  Chunk.Priority = 0.125;
  Chunk.Flags = DecisionChunkSampledCritical;
  for (uint32_t C = 0; C < Chunks; ++C) {
    Chunk.Chunk = C;
    Log.recordChunk(Chunk);
  }
  MigrationEventRecord Event;
  Event.Object = 1;
  Event.FirstChunk = 0;
  Event.NumChunks = Chunks;
  Event.TargetFast = 1;
  Event.Phase = DecisionPhase::Committed;
  Log.recordMigration(Event);
  return 3 + Chunks; // EpochBegin + ObjectEpoch + chunks + MigrationEvent.
}

struct ModeResult {
  uint64_t Records = 0;
  double WallMs = 0.0;
  double nsPerRecord() const {
    return Records ? WallMs * 1e6 / static_cast<double>(Records) : 0.0;
  }
};

/// Replays the workload into whatever sink is currently open (or none).
ModeResult runWorkload(uint64_t Epochs, uint32_t Chunks) {
  DecisionLog &Log = DecisionLog::instance();
  ModeResult R;
  double Start = nowMs();
  for (uint64_t E = 0; E < Epochs; ++E)
    R.Records += emitEpoch(Log, Chunks);
  R.WallMs = nowMs() - Start;
  return R;
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Parser(
      "micro_obs: per-record cost of the decision-log sinks (flat file, "
      "crash-resilient ring, null) vs the disabled baseline");
  Parser.addUnsigned("epochs", 2000, "workload epochs per mode");
  Parser.addUnsigned("chunks", 32, "chunk decisions per epoch");
  Parser.addFlag("quick", "1/10th workload for CI smoke runs");
  Parser.addString("json", "BENCH_obs.json",
                   "machine-readable results path ('' disables)");
  Parser.addString("workdir", "/tmp",
                   "directory for the transient log/ring files");
  if (!Parser.parse(Argc, Argv))
    return 1;

  uint64_t Epochs = Parser.getUnsigned("epochs");
  uint32_t Chunks = static_cast<uint32_t>(Parser.getUnsigned("chunks"));
  if (Parser.getFlag("quick"))
    Epochs = std::max<uint64_t>(1, Epochs / 10);
  std::string Dir = Parser.getString("workdir");

  DecisionLog &Log = DecisionLog::instance();
  std::string Error;

  std::printf("micro_obs: %llu epochs x %u chunk decisions per mode\n\n",
              static_cast<unsigned long long>(Epochs), Chunks);

  // Disabled baseline: every site pays one relaxed load + branch.
  Log.close();
  ModeResult Disabled = runWorkload(Epochs, Chunks);

  // Null sink: serializer cost with the bytes discarded.
  if (!openDecisionLogNull()) {
    std::fprintf(stderr, "error: cannot open null sink\n");
    return 1;
  }
  ModeResult Null = runWorkload(Epochs, Chunks);
  Log.close();

  // Flat file sink (the atdl-v1 reference destination).
  std::string FilePath = Dir + "/micro_obs.atdl";
  if (!Log.open(FilePath, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  ModeResult File = runWorkload(Epochs, Chunks);
  if (!Log.close(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  // Ring sink on default geometry: rotation and NameDef replay included.
  std::string RingPath = Dir + "/micro_obs.atdr";
  if (!openDecisionLogRing(RingPath, RingLogOptions(), &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  ModeResult Ring = runWorkload(Epochs, Chunks);
  if (!Log.close(&Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  std::remove(FilePath.c_str());
  for (const std::string &Segment : ringSegmentFiles(RingPath))
    std::remove(Segment.c_str());

  double RingVsFile =
      File.nsPerRecord() > 0.0 ? Ring.nsPerRecord() / File.nsPerRecord()
                               : 0.0;

  std::printf("%-10s %12s %12s %14s\n", "mode", "records", "wall_ms",
              "ns/record");
  auto Row = [](const char *Name, const ModeResult &R) {
    std::printf("%-10s %12llu %12.3f %14.1f\n", Name,
                static_cast<unsigned long long>(R.Records), R.WallMs,
                R.nsPerRecord());
  };
  Row("disabled", Disabled);
  Row("null", Null);
  Row("file", File);
  Row("ring", Ring);
  std::printf("\nring/file per-record ratio: %.3f (bar: <= 2.0)\n",
              RingVsFile);

  std::string JsonPath = Parser.getString("json");
  if (!JsonPath.empty()) {
    std::FILE *Out = std::fopen(JsonPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "warning: cannot write '%s'\n", JsonPath.c_str());
    } else {
      auto Mode = [Out](const char *Name, const ModeResult &R,
                        const char *Sep) {
        std::fprintf(Out,
                     "  \"%s\": {\"records\": %llu, \"wall_ms\": %.3f, "
                     "\"ns_per_record\": %.1f}%s\n",
                     Name, static_cast<unsigned long long>(R.Records),
                     R.WallMs, R.nsPerRecord(), Sep);
      };
      std::fprintf(Out,
                   "{\n"
                   "  \"bench\": \"micro_obs\",\n"
                   "  \"quick\": %s,\n"
                   "  \"epochs\": %llu,\n"
                   "  \"chunks_per_epoch\": %u,\n"
                   "  \"host_hardware_threads\": %u,\n"
                   "  \"git_sha\": \"%s\",\n"
                   "  \"compiler\": \"%s\",\n"
                   "  \"cpu_model\": \"%s\",\n"
                   "  \"peak_rss_bytes\": %llu,\n",
                   Parser.getFlag("quick") ? "true" : "false",
                   static_cast<unsigned long long>(Epochs), Chunks,
                   std::max(1u, std::thread::hardware_concurrency()),
                   support::gitSha(), support::compilerId(),
                   support::cpuModel().c_str(),
                   static_cast<unsigned long long>(support::peakRssBytes()));
      Mode("disabled", Disabled, ",");
      Mode("null_sink", Null, ",");
      Mode("file_sink", File, ",");
      Mode("ring_sink", Ring, ",");
      std::fprintf(Out, "  \"ring_vs_file_ratio\": %.3f\n}\n", RingVsFile);
      std::fclose(Out);
      std::printf("results written to %s\n", JsonPath.c_str());
    }
  }

  // The bar the tentpole promises: always-on ring capture costs no more
  // than twice the flat file sink per record.
  if (RingVsFile > 2.0) {
    std::fprintf(stderr,
                 "FAIL: ring sink %.3fx the file sink (bar: 2.0x)\n",
                 RingVsFile);
    return 1;
  }
  return 0;
}
