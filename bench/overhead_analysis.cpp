//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Section 7.4 overhead analysis:
///
///  - profiling overhead as a fraction of the first iteration (paper:
///    under 10%);
///  - the number of optimized iterations needed to amortize the one-time
///    profiling + migration cost (paper: "a few iterations"; e.g. SSSP on
///    friendster amortizes after one extra iteration).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cmath>
#include <cstdio>

using namespace atmem;
using namespace atmem::bench;
using baseline::Policy;

int main(int Argc, const char **Argv) {
  OptionParser Parser("overhead_analysis: reproduce the Section 7.4 "
                      "profiling/migration overhead study");
  addCommonOptions(Parser);
  if (!Parser.parse(Argc, Argv))
    return 1;
  BenchOptions Options;
  if (!readCommonOptions(Parser, Options))
    return 1;

  DatasetCache Cache(Options.ScaleDivisor);
  sim::MachineConfig Machine =
      sim::nvmDramTestbed(1.0 / Options.ScaleDivisor);

  printBanner("Section 7.4: ATMem overhead and amortization (NVM-DRAM)",
              Options);

  TablePrinter Table({"app", "dataset", "profiling overhead",
                      "% of iter 1 (paper <10%)", "migration time",
                      "per-iter gain", "iters to amortize"});
  for (const std::string &Kernel : Options.Kernels) {
    for (const std::string &Name : Options.Datasets) {
      const graph::Dataset &Data = Cache.get(Name);
      auto Baseline = runOne(Kernel, Data, Machine, Policy::AllSlow, 0.0,
                             /*MeasureTlb=*/false, Options.SimThreads);
      auto Atmem = runOne(Kernel, Data, Machine, Policy::Atmem, 0.0,
                          /*MeasureTlb=*/false, Options.SimThreads);

      double OneTimeCost =
          Atmem.ProfilingOverheadSec + Atmem.Migration.SimSeconds;
      double PerIterGain =
          Baseline.MeasuredIterSec - Atmem.MeasuredIterSec;
      double Iters =
          PerIterGain > 0 ? std::ceil(OneTimeCost / PerIterGain) : -1;
      Table.addRow(
          {Kernel, Name, formatSeconds(Atmem.ProfilingOverheadSec),
           formatPercent(Atmem.ProfilingOverheadSec / Atmem.FirstIterSec),
           formatSeconds(Atmem.Migration.SimSeconds),
           formatSeconds(PerIterGain),
           Iters < 0 ? "n/a" : formatDouble(Iters, 0)});
    }
  }
  Table.print();
  std::printf("\nExpected shape: profiling stays well under 10%% of the "
              "first iteration, and the one-time cost amortizes within a "
              "few optimized iterations on every input.\n");
  return 0;
}
