//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 4 (Section 7.3): for PageRank on both testbeds, the
/// reduction in post-migration TLB misses and migration time achieved by
/// the multi-stage multi-threaded migrator relative to mbind. The same
/// placement plan is executed through both mechanisms; TLB misses come
/// from replaying the measured iteration's accesses through the simulated
/// data TLB against the post-migration page table.
///
/// Paper expectations: both ratios > 1 everywhere; TLB reduction larger
/// on NVM-DRAM (avg 20.98x) than MCDRAM-DRAM (avg 1.72x); time speedup
/// larger on MCDRAM-DRAM (avg 5.32x) than NVM-DRAM (avg 2.07x), because
/// NVM read bandwidth bottlenecks the multi-threaded staging copy.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace atmem;
using namespace atmem::bench;
using baseline::Policy;

namespace {

void runTestbed(const std::string &Title, const sim::MachineConfig &Machine,
                const BenchOptions &Options, DatasetCache &Cache,
                const std::string &Kernel) {
  std::printf("\n[%s]\n", Title.c_str());
  TablePrinter Table({"dataset", "TLB misses (mbind/ATMem)",
                      "migration time (mbind/ATMem)", "ATMem time",
                      "mbind time"});
  RunningStat TlbRatios, TimeRatios;
  for (const std::string &Name : Options.Datasets) {
    const graph::Dataset &Data = Cache.get(Name);
    auto Atmem = runOne(Kernel, Data, Machine, Policy::Atmem, 0.0,
                        /*MeasureTlb=*/true, Options.SimThreads);
    auto Mbind = runOne(Kernel, Data, Machine, Policy::AtmemMbind, 0.0,
                        /*MeasureTlb=*/true, Options.SimThreads);
    double TlbRatio = Atmem.TlbMisses == 0
                          ? 1.0
                          : static_cast<double>(Mbind.TlbMisses) /
                                static_cast<double>(Atmem.TlbMisses);
    double TimeRatio =
        Mbind.Migration.SimSeconds / Atmem.Migration.SimSeconds;
    TlbRatios.add(TlbRatio);
    TimeRatios.add(TimeRatio);
    Table.addRow({Name, formatSpeedup(TlbRatio), formatSpeedup(TimeRatio),
                  formatSeconds(Atmem.Migration.SimSeconds),
                  formatSeconds(Mbind.Migration.SimSeconds)});
  }
  Table.addRow({"Avg.", formatSpeedup(TlbRatios.mean()),
                formatSpeedup(TimeRatios.mean()), "", ""});
  Table.print();
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Parser("table4_migration: reproduce Table 4 (TLB misses and "
                      "migration time, mbind vs ATMem, PR). Runs at a "
                      "larger default graph scale than the figure "
                      "benchmarks: migrated ranges must exceed 2 MiB for "
                      "huge pages to matter, mirroring the paper's "
                      "multi-gigabyte placements.");
  addCommonOptions(Parser);
  Parser.addString("kernel", "pr", "kernel to migrate under (paper: PR)");
  Parser.addFlag("full-scale", "run at the figure benchmarks' scale "
                               "instead of the table's default of 64");
  if (!Parser.parse(Argc, Argv))
    return 1;
  BenchOptions Options;
  if (!readCommonOptions(Parser, Options))
    return 1;
  std::string Kernel = Parser.getString("kernel");
  if (Options.ScaleDivisor == graph::DefaultScaleDivisor &&
      !Parser.getFlag("full-scale") && !Options.Quick)
    Options.ScaleDivisor = 64.0;

  DatasetCache Cache(Options.ScaleDivisor);

  printBanner("Table 4: reduction in TLB misses and migration time, "
              "mbind vs the multi-stage multi-threaded migrator (" +
                  Kernel + ")",
              Options);
  runTestbed("NVM-DRAM (paper avg: TLB 20.98x, time 2.07x)",
             sim::nvmDramTestbed(1.0 / Options.ScaleDivisor), Options,
             Cache, Kernel);
  runTestbed("MCDRAM-DRAM (paper avg: TLB 1.72x, time 5.32x)",
             sim::mcdramDramTestbed(1.0 / Options.ScaleDivisor), Options,
             Cache, Kernel);
  std::printf("\nExpected shape: both ratios exceed 1x on every dataset; "
              "the time speedup is larger on MCDRAM-DRAM while the TLB "
              "reduction is larger on NVM-DRAM.\n");
  return 0;
}
