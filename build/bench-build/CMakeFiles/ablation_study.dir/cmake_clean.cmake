file(REMOVE_RECURSE
  "../bench/ablation_study"
  "../bench/ablation_study.pdb"
  "CMakeFiles/ablation_study.dir/ablation_study.cpp.o"
  "CMakeFiles/ablation_study.dir/ablation_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
