
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_features.cpp" "bench-build/CMakeFiles/ext_features.dir/ext_features.cpp.o" "gcc" "bench-build/CMakeFiles/ext_features.dir/ext_features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/atmem_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/atmem_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atmem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/atmem_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/atmem_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/atmem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/atmem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/atmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
