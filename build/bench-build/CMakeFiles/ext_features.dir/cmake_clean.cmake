file(REMOVE_RECURSE
  "../bench/ext_features"
  "../bench/ext_features.pdb"
  "CMakeFiles/ext_features.dir/ext_features.cpp.o"
  "CMakeFiles/ext_features.dir/ext_features.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
