# Empty dependencies file for ext_features.
# This may be replaced when dependencies are built.
