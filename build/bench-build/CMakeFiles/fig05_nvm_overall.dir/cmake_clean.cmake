file(REMOVE_RECURSE
  "../bench/fig05_nvm_overall"
  "../bench/fig05_nvm_overall.pdb"
  "CMakeFiles/fig05_nvm_overall.dir/fig05_nvm_overall.cpp.o"
  "CMakeFiles/fig05_nvm_overall.dir/fig05_nvm_overall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_nvm_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
