# Empty dependencies file for fig05_nvm_overall.
# This may be replaced when dependencies are built.
