file(REMOVE_RECURSE
  "../bench/fig06_mcdram_overall"
  "../bench/fig06_mcdram_overall.pdb"
  "CMakeFiles/fig06_mcdram_overall.dir/fig06_mcdram_overall.cpp.o"
  "CMakeFiles/fig06_mcdram_overall.dir/fig06_mcdram_overall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_mcdram_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
