# Empty dependencies file for fig06_mcdram_overall.
# This may be replaced when dependencies are built.
