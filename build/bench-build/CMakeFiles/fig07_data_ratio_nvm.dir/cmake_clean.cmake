file(REMOVE_RECURSE
  "../bench/fig07_data_ratio_nvm"
  "../bench/fig07_data_ratio_nvm.pdb"
  "CMakeFiles/fig07_data_ratio_nvm.dir/fig07_data_ratio_nvm.cpp.o"
  "CMakeFiles/fig07_data_ratio_nvm.dir/fig07_data_ratio_nvm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_data_ratio_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
