# Empty compiler generated dependencies file for fig07_data_ratio_nvm.
# This may be replaced when dependencies are built.
