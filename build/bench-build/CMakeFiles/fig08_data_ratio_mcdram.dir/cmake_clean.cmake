file(REMOVE_RECURSE
  "../bench/fig08_data_ratio_mcdram"
  "../bench/fig08_data_ratio_mcdram.pdb"
  "CMakeFiles/fig08_data_ratio_mcdram.dir/fig08_data_ratio_mcdram.cpp.o"
  "CMakeFiles/fig08_data_ratio_mcdram.dir/fig08_data_ratio_mcdram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_data_ratio_mcdram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
