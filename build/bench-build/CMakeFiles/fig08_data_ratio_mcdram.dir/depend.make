# Empty dependencies file for fig08_data_ratio_mcdram.
# This may be replaced when dependencies are built.
