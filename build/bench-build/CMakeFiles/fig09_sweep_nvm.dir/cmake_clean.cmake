file(REMOVE_RECURSE
  "../bench/fig09_sweep_nvm"
  "../bench/fig09_sweep_nvm.pdb"
  "CMakeFiles/fig09_sweep_nvm.dir/fig09_sweep_nvm.cpp.o"
  "CMakeFiles/fig09_sweep_nvm.dir/fig09_sweep_nvm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_sweep_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
