file(REMOVE_RECURSE
  "../bench/fig10_sweep_mcdram"
  "../bench/fig10_sweep_mcdram.pdb"
  "CMakeFiles/fig10_sweep_mcdram.dir/fig10_sweep_mcdram.cpp.o"
  "CMakeFiles/fig10_sweep_mcdram.dir/fig10_sweep_mcdram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sweep_mcdram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
