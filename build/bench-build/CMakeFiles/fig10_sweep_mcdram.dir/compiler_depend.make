# Empty compiler generated dependencies file for fig10_sweep_mcdram.
# This may be replaced when dependencies are built.
