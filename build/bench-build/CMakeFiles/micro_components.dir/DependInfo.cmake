
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_components.cpp" "bench-build/CMakeFiles/micro_components.dir/micro_components.cpp.o" "gcc" "bench-build/CMakeFiles/micro_components.dir/micro_components.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analyzer/CMakeFiles/atmem_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/atmem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/atmem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/atmem_support.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/atmem_profiler.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
