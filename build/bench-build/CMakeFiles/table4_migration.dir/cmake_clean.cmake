file(REMOVE_RECURSE
  "../bench/table4_migration"
  "../bench/table4_migration.pdb"
  "CMakeFiles/table4_migration.dir/table4_migration.cpp.o"
  "CMakeFiles/table4_migration.dir/table4_migration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
