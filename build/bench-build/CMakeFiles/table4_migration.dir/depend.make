# Empty dependencies file for table4_migration.
# This may be replaced when dependencies are built.
