file(REMOVE_RECURSE
  "CMakeFiles/adaptive_queries.dir/adaptive_queries.cpp.o"
  "CMakeFiles/adaptive_queries.dir/adaptive_queries.cpp.o.d"
  "adaptive_queries"
  "adaptive_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
