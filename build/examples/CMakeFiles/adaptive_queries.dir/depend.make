# Empty dependencies file for adaptive_queries.
# This may be replaced when dependencies are built.
