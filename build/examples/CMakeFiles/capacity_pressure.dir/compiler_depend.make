# Empty compiler generated dependencies file for capacity_pressure.
# This may be replaced when dependencies are built.
