file(REMOVE_RECURSE
  "CMakeFiles/migration_comparison.dir/migration_comparison.cpp.o"
  "CMakeFiles/migration_comparison.dir/migration_comparison.cpp.o.d"
  "migration_comparison"
  "migration_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
