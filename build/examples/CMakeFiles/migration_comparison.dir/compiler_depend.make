# Empty compiler generated dependencies file for migration_comparison.
# This may be replaced when dependencies are built.
