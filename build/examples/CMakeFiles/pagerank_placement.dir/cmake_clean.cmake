file(REMOVE_RECURSE
  "CMakeFiles/pagerank_placement.dir/pagerank_placement.cpp.o"
  "CMakeFiles/pagerank_placement.dir/pagerank_placement.cpp.o.d"
  "pagerank_placement"
  "pagerank_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
