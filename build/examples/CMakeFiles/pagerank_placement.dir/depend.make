# Empty dependencies file for pagerank_placement.
# This may be replaced when dependencies are built.
