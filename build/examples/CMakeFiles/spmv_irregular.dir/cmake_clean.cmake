file(REMOVE_RECURSE
  "CMakeFiles/spmv_irregular.dir/spmv_irregular.cpp.o"
  "CMakeFiles/spmv_irregular.dir/spmv_irregular.cpp.o.d"
  "spmv_irregular"
  "spmv_irregular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_irregular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
