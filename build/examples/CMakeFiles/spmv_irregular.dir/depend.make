# Empty dependencies file for spmv_irregular.
# This may be replaced when dependencies are built.
