#include "analyzer/Analyzer.h"
