#include "analyzer/GlobalPromoter.h"
