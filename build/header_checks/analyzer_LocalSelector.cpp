#include "analyzer/LocalSelector.h"
