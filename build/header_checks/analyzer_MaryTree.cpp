#include "analyzer/MaryTree.h"
