#include "analyzer/PlacementPlan.h"
