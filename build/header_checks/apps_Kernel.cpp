#include "apps/Kernel.h"
