#include "apps/Kernels.h"
