#include "apps/Reference.h"
