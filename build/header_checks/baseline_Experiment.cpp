#include "baseline/Experiment.h"
