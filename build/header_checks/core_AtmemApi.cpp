#include "core/AtmemApi.h"
