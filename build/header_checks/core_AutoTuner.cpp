#include "core/AutoTuner.h"
