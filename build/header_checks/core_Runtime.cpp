#include "core/Runtime.h"
