#include "graph/CsrBinaryIO.h"
