#include "graph/CsrGraph.h"
