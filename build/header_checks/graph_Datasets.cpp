#include "graph/Datasets.h"
