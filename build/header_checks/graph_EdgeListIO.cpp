#include "graph/EdgeListIO.h"
