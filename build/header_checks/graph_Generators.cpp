#include "graph/Generators.h"
