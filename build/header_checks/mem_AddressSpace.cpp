#include "mem/AddressSpace.h"
