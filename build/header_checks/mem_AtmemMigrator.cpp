#include "mem/AtmemMigrator.h"
