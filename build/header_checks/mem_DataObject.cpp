#include "mem/DataObject.h"
