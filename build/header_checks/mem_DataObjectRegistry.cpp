#include "mem/DataObjectRegistry.h"
