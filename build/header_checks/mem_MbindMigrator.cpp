#include "mem/MbindMigrator.h"
