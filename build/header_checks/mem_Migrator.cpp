#include "mem/Migrator.h"
