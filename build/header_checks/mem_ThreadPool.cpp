#include "mem/ThreadPool.h"
