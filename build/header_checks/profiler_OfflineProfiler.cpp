#include "profiler/OfflineProfiler.h"
