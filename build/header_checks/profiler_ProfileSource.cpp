#include "profiler/ProfileSource.h"
