#include "profiler/SamplingProfiler.h"
