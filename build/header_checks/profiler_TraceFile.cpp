#include "profiler/TraceFile.h"
