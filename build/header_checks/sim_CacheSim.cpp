#include "sim/CacheSim.h"
