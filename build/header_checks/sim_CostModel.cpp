#include "sim/CostModel.h"
