#include "sim/FrameAllocator.h"
