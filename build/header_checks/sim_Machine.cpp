#include "sim/Machine.h"
