#include "sim/MachineConfig.h"
