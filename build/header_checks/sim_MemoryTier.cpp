#include "sim/MemoryTier.h"
