#include "sim/PageTable.h"
