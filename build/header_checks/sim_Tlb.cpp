#include "sim/Tlb.h"
