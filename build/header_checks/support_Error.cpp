#include "support/Error.h"
