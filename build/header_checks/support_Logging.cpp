#include "support/Logging.h"
