#include "support/Options.h"
