#include "support/Prng.h"
