#include "support/Statistics.h"
