#include "support/StringUtils.h"
