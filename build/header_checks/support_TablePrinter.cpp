#include "support/TablePrinter.h"
