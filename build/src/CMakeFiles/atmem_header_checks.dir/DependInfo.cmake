
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/build/header_checks/analyzer_Analyzer.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/analyzer_Analyzer.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/analyzer_Analyzer.cpp.o.d"
  "/root/repo/build/header_checks/analyzer_GlobalPromoter.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/analyzer_GlobalPromoter.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/analyzer_GlobalPromoter.cpp.o.d"
  "/root/repo/build/header_checks/analyzer_LocalSelector.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/analyzer_LocalSelector.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/analyzer_LocalSelector.cpp.o.d"
  "/root/repo/build/header_checks/analyzer_MaryTree.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/analyzer_MaryTree.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/analyzer_MaryTree.cpp.o.d"
  "/root/repo/build/header_checks/analyzer_PlacementPlan.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/analyzer_PlacementPlan.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/analyzer_PlacementPlan.cpp.o.d"
  "/root/repo/build/header_checks/apps_Kernel.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/apps_Kernel.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/apps_Kernel.cpp.o.d"
  "/root/repo/build/header_checks/apps_Kernels.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/apps_Kernels.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/apps_Kernels.cpp.o.d"
  "/root/repo/build/header_checks/apps_Reference.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/apps_Reference.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/apps_Reference.cpp.o.d"
  "/root/repo/build/header_checks/baseline_Experiment.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/baseline_Experiment.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/baseline_Experiment.cpp.o.d"
  "/root/repo/build/header_checks/core_AtmemApi.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/core_AtmemApi.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/core_AtmemApi.cpp.o.d"
  "/root/repo/build/header_checks/core_AutoTuner.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/core_AutoTuner.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/core_AutoTuner.cpp.o.d"
  "/root/repo/build/header_checks/core_Runtime.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/core_Runtime.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/core_Runtime.cpp.o.d"
  "/root/repo/build/header_checks/graph_CsrBinaryIO.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/graph_CsrBinaryIO.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/graph_CsrBinaryIO.cpp.o.d"
  "/root/repo/build/header_checks/graph_CsrGraph.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/graph_CsrGraph.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/graph_CsrGraph.cpp.o.d"
  "/root/repo/build/header_checks/graph_Datasets.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/graph_Datasets.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/graph_Datasets.cpp.o.d"
  "/root/repo/build/header_checks/graph_EdgeListIO.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/graph_EdgeListIO.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/graph_EdgeListIO.cpp.o.d"
  "/root/repo/build/header_checks/graph_Generators.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/graph_Generators.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/graph_Generators.cpp.o.d"
  "/root/repo/build/header_checks/mem_AddressSpace.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/mem_AddressSpace.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/mem_AddressSpace.cpp.o.d"
  "/root/repo/build/header_checks/mem_AtmemMigrator.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/mem_AtmemMigrator.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/mem_AtmemMigrator.cpp.o.d"
  "/root/repo/build/header_checks/mem_DataObject.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/mem_DataObject.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/mem_DataObject.cpp.o.d"
  "/root/repo/build/header_checks/mem_DataObjectRegistry.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/mem_DataObjectRegistry.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/mem_DataObjectRegistry.cpp.o.d"
  "/root/repo/build/header_checks/mem_MbindMigrator.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/mem_MbindMigrator.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/mem_MbindMigrator.cpp.o.d"
  "/root/repo/build/header_checks/mem_Migrator.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/mem_Migrator.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/mem_Migrator.cpp.o.d"
  "/root/repo/build/header_checks/mem_ThreadPool.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/mem_ThreadPool.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/mem_ThreadPool.cpp.o.d"
  "/root/repo/build/header_checks/profiler_OfflineProfiler.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/profiler_OfflineProfiler.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/profiler_OfflineProfiler.cpp.o.d"
  "/root/repo/build/header_checks/profiler_ProfileSource.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/profiler_ProfileSource.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/profiler_ProfileSource.cpp.o.d"
  "/root/repo/build/header_checks/profiler_SamplingProfiler.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/profiler_SamplingProfiler.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/profiler_SamplingProfiler.cpp.o.d"
  "/root/repo/build/header_checks/profiler_TraceFile.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/profiler_TraceFile.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/profiler_TraceFile.cpp.o.d"
  "/root/repo/build/header_checks/sim_CacheSim.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_CacheSim.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_CacheSim.cpp.o.d"
  "/root/repo/build/header_checks/sim_CostModel.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_CostModel.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_CostModel.cpp.o.d"
  "/root/repo/build/header_checks/sim_FrameAllocator.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_FrameAllocator.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_FrameAllocator.cpp.o.d"
  "/root/repo/build/header_checks/sim_Machine.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_Machine.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_Machine.cpp.o.d"
  "/root/repo/build/header_checks/sim_MachineConfig.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_MachineConfig.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_MachineConfig.cpp.o.d"
  "/root/repo/build/header_checks/sim_MemoryTier.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_MemoryTier.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_MemoryTier.cpp.o.d"
  "/root/repo/build/header_checks/sim_PageTable.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_PageTable.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_PageTable.cpp.o.d"
  "/root/repo/build/header_checks/sim_Tlb.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_Tlb.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/sim_Tlb.cpp.o.d"
  "/root/repo/build/header_checks/support_Error.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/support_Error.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/support_Error.cpp.o.d"
  "/root/repo/build/header_checks/support_Logging.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/support_Logging.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/support_Logging.cpp.o.d"
  "/root/repo/build/header_checks/support_Options.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/support_Options.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/support_Options.cpp.o.d"
  "/root/repo/build/header_checks/support_Prng.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/support_Prng.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/support_Prng.cpp.o.d"
  "/root/repo/build/header_checks/support_Statistics.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/support_Statistics.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/support_Statistics.cpp.o.d"
  "/root/repo/build/header_checks/support_StringUtils.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/support_StringUtils.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/support_StringUtils.cpp.o.d"
  "/root/repo/build/header_checks/support_TablePrinter.cpp" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/support_TablePrinter.cpp.o" "gcc" "src/CMakeFiles/atmem_header_checks.dir/__/header_checks/support_TablePrinter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
