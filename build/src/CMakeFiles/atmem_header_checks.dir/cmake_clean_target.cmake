file(REMOVE_RECURSE
  "libatmem_header_checks.a"
)
