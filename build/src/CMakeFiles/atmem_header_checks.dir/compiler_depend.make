# Empty compiler generated dependencies file for atmem_header_checks.
# This may be replaced when dependencies are built.
