file(REMOVE_RECURSE
  "CMakeFiles/check-headers"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/check-headers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
