# Empty custom commands generated dependencies file for check-headers.
# This may be replaced when dependencies are built.
