
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/Analyzer.cpp" "src/analyzer/CMakeFiles/atmem_analyzer.dir/Analyzer.cpp.o" "gcc" "src/analyzer/CMakeFiles/atmem_analyzer.dir/Analyzer.cpp.o.d"
  "/root/repo/src/analyzer/GlobalPromoter.cpp" "src/analyzer/CMakeFiles/atmem_analyzer.dir/GlobalPromoter.cpp.o" "gcc" "src/analyzer/CMakeFiles/atmem_analyzer.dir/GlobalPromoter.cpp.o.d"
  "/root/repo/src/analyzer/LocalSelector.cpp" "src/analyzer/CMakeFiles/atmem_analyzer.dir/LocalSelector.cpp.o" "gcc" "src/analyzer/CMakeFiles/atmem_analyzer.dir/LocalSelector.cpp.o.d"
  "/root/repo/src/analyzer/MaryTree.cpp" "src/analyzer/CMakeFiles/atmem_analyzer.dir/MaryTree.cpp.o" "gcc" "src/analyzer/CMakeFiles/atmem_analyzer.dir/MaryTree.cpp.o.d"
  "/root/repo/src/analyzer/PlacementPlan.cpp" "src/analyzer/CMakeFiles/atmem_analyzer.dir/PlacementPlan.cpp.o" "gcc" "src/analyzer/CMakeFiles/atmem_analyzer.dir/PlacementPlan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/profiler/CMakeFiles/atmem_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/atmem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/atmem_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atmem_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
