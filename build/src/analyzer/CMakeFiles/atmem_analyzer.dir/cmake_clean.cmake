file(REMOVE_RECURSE
  "CMakeFiles/atmem_analyzer.dir/Analyzer.cpp.o"
  "CMakeFiles/atmem_analyzer.dir/Analyzer.cpp.o.d"
  "CMakeFiles/atmem_analyzer.dir/GlobalPromoter.cpp.o"
  "CMakeFiles/atmem_analyzer.dir/GlobalPromoter.cpp.o.d"
  "CMakeFiles/atmem_analyzer.dir/LocalSelector.cpp.o"
  "CMakeFiles/atmem_analyzer.dir/LocalSelector.cpp.o.d"
  "CMakeFiles/atmem_analyzer.dir/MaryTree.cpp.o"
  "CMakeFiles/atmem_analyzer.dir/MaryTree.cpp.o.d"
  "CMakeFiles/atmem_analyzer.dir/PlacementPlan.cpp.o"
  "CMakeFiles/atmem_analyzer.dir/PlacementPlan.cpp.o.d"
  "libatmem_analyzer.a"
  "libatmem_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmem_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
