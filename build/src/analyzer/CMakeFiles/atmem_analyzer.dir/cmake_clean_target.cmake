file(REMOVE_RECURSE
  "libatmem_analyzer.a"
)
