# Empty compiler generated dependencies file for atmem_analyzer.
# This may be replaced when dependencies are built.
