
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/Kernel.cpp" "src/apps/CMakeFiles/atmem_apps.dir/Kernel.cpp.o" "gcc" "src/apps/CMakeFiles/atmem_apps.dir/Kernel.cpp.o.d"
  "/root/repo/src/apps/Kernels.cpp" "src/apps/CMakeFiles/atmem_apps.dir/Kernels.cpp.o" "gcc" "src/apps/CMakeFiles/atmem_apps.dir/Kernels.cpp.o.d"
  "/root/repo/src/apps/Reference.cpp" "src/apps/CMakeFiles/atmem_apps.dir/Reference.cpp.o" "gcc" "src/apps/CMakeFiles/atmem_apps.dir/Reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/atmem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/atmem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/atmem_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/atmem_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/atmem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/atmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
