file(REMOVE_RECURSE
  "CMakeFiles/atmem_apps.dir/Kernel.cpp.o"
  "CMakeFiles/atmem_apps.dir/Kernel.cpp.o.d"
  "CMakeFiles/atmem_apps.dir/Kernels.cpp.o"
  "CMakeFiles/atmem_apps.dir/Kernels.cpp.o.d"
  "CMakeFiles/atmem_apps.dir/Reference.cpp.o"
  "CMakeFiles/atmem_apps.dir/Reference.cpp.o.d"
  "libatmem_apps.a"
  "libatmem_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmem_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
