file(REMOVE_RECURSE
  "libatmem_apps.a"
)
