# Empty compiler generated dependencies file for atmem_apps.
# This may be replaced when dependencies are built.
