file(REMOVE_RECURSE
  "CMakeFiles/atmem_baseline.dir/Experiment.cpp.o"
  "CMakeFiles/atmem_baseline.dir/Experiment.cpp.o.d"
  "libatmem_baseline.a"
  "libatmem_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmem_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
