file(REMOVE_RECURSE
  "libatmem_baseline.a"
)
