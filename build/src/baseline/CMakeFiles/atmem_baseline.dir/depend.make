# Empty dependencies file for atmem_baseline.
# This may be replaced when dependencies are built.
