
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/AtmemApi.cpp" "src/core/CMakeFiles/atmem_core.dir/AtmemApi.cpp.o" "gcc" "src/core/CMakeFiles/atmem_core.dir/AtmemApi.cpp.o.d"
  "/root/repo/src/core/AutoTuner.cpp" "src/core/CMakeFiles/atmem_core.dir/AutoTuner.cpp.o" "gcc" "src/core/CMakeFiles/atmem_core.dir/AutoTuner.cpp.o.d"
  "/root/repo/src/core/Runtime.cpp" "src/core/CMakeFiles/atmem_core.dir/Runtime.cpp.o" "gcc" "src/core/CMakeFiles/atmem_core.dir/Runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analyzer/CMakeFiles/atmem_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/atmem_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/atmem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/atmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
