file(REMOVE_RECURSE
  "CMakeFiles/atmem_core.dir/AtmemApi.cpp.o"
  "CMakeFiles/atmem_core.dir/AtmemApi.cpp.o.d"
  "CMakeFiles/atmem_core.dir/AutoTuner.cpp.o"
  "CMakeFiles/atmem_core.dir/AutoTuner.cpp.o.d"
  "CMakeFiles/atmem_core.dir/Runtime.cpp.o"
  "CMakeFiles/atmem_core.dir/Runtime.cpp.o.d"
  "libatmem_core.a"
  "libatmem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
