file(REMOVE_RECURSE
  "libatmem_core.a"
)
