# Empty compiler generated dependencies file for atmem_core.
# This may be replaced when dependencies are built.
