
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/CsrBinaryIO.cpp" "src/graph/CMakeFiles/atmem_graph.dir/CsrBinaryIO.cpp.o" "gcc" "src/graph/CMakeFiles/atmem_graph.dir/CsrBinaryIO.cpp.o.d"
  "/root/repo/src/graph/CsrGraph.cpp" "src/graph/CMakeFiles/atmem_graph.dir/CsrGraph.cpp.o" "gcc" "src/graph/CMakeFiles/atmem_graph.dir/CsrGraph.cpp.o.d"
  "/root/repo/src/graph/Datasets.cpp" "src/graph/CMakeFiles/atmem_graph.dir/Datasets.cpp.o" "gcc" "src/graph/CMakeFiles/atmem_graph.dir/Datasets.cpp.o.d"
  "/root/repo/src/graph/EdgeListIO.cpp" "src/graph/CMakeFiles/atmem_graph.dir/EdgeListIO.cpp.o" "gcc" "src/graph/CMakeFiles/atmem_graph.dir/EdgeListIO.cpp.o.d"
  "/root/repo/src/graph/Generators.cpp" "src/graph/CMakeFiles/atmem_graph.dir/Generators.cpp.o" "gcc" "src/graph/CMakeFiles/atmem_graph.dir/Generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/atmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
