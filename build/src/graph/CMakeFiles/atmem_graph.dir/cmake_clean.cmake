file(REMOVE_RECURSE
  "CMakeFiles/atmem_graph.dir/CsrBinaryIO.cpp.o"
  "CMakeFiles/atmem_graph.dir/CsrBinaryIO.cpp.o.d"
  "CMakeFiles/atmem_graph.dir/CsrGraph.cpp.o"
  "CMakeFiles/atmem_graph.dir/CsrGraph.cpp.o.d"
  "CMakeFiles/atmem_graph.dir/Datasets.cpp.o"
  "CMakeFiles/atmem_graph.dir/Datasets.cpp.o.d"
  "CMakeFiles/atmem_graph.dir/EdgeListIO.cpp.o"
  "CMakeFiles/atmem_graph.dir/EdgeListIO.cpp.o.d"
  "CMakeFiles/atmem_graph.dir/Generators.cpp.o"
  "CMakeFiles/atmem_graph.dir/Generators.cpp.o.d"
  "libatmem_graph.a"
  "libatmem_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmem_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
