file(REMOVE_RECURSE
  "libatmem_graph.a"
)
