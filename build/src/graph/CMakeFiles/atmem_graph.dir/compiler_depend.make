# Empty compiler generated dependencies file for atmem_graph.
# This may be replaced when dependencies are built.
