
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/AddressSpace.cpp" "src/mem/CMakeFiles/atmem_mem.dir/AddressSpace.cpp.o" "gcc" "src/mem/CMakeFiles/atmem_mem.dir/AddressSpace.cpp.o.d"
  "/root/repo/src/mem/AtmemMigrator.cpp" "src/mem/CMakeFiles/atmem_mem.dir/AtmemMigrator.cpp.o" "gcc" "src/mem/CMakeFiles/atmem_mem.dir/AtmemMigrator.cpp.o.d"
  "/root/repo/src/mem/DataObject.cpp" "src/mem/CMakeFiles/atmem_mem.dir/DataObject.cpp.o" "gcc" "src/mem/CMakeFiles/atmem_mem.dir/DataObject.cpp.o.d"
  "/root/repo/src/mem/DataObjectRegistry.cpp" "src/mem/CMakeFiles/atmem_mem.dir/DataObjectRegistry.cpp.o" "gcc" "src/mem/CMakeFiles/atmem_mem.dir/DataObjectRegistry.cpp.o.d"
  "/root/repo/src/mem/MbindMigrator.cpp" "src/mem/CMakeFiles/atmem_mem.dir/MbindMigrator.cpp.o" "gcc" "src/mem/CMakeFiles/atmem_mem.dir/MbindMigrator.cpp.o.d"
  "/root/repo/src/mem/ThreadPool.cpp" "src/mem/CMakeFiles/atmem_mem.dir/ThreadPool.cpp.o" "gcc" "src/mem/CMakeFiles/atmem_mem.dir/ThreadPool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/atmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/atmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
