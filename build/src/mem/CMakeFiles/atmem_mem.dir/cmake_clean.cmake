file(REMOVE_RECURSE
  "CMakeFiles/atmem_mem.dir/AddressSpace.cpp.o"
  "CMakeFiles/atmem_mem.dir/AddressSpace.cpp.o.d"
  "CMakeFiles/atmem_mem.dir/AtmemMigrator.cpp.o"
  "CMakeFiles/atmem_mem.dir/AtmemMigrator.cpp.o.d"
  "CMakeFiles/atmem_mem.dir/DataObject.cpp.o"
  "CMakeFiles/atmem_mem.dir/DataObject.cpp.o.d"
  "CMakeFiles/atmem_mem.dir/DataObjectRegistry.cpp.o"
  "CMakeFiles/atmem_mem.dir/DataObjectRegistry.cpp.o.d"
  "CMakeFiles/atmem_mem.dir/MbindMigrator.cpp.o"
  "CMakeFiles/atmem_mem.dir/MbindMigrator.cpp.o.d"
  "CMakeFiles/atmem_mem.dir/ThreadPool.cpp.o"
  "CMakeFiles/atmem_mem.dir/ThreadPool.cpp.o.d"
  "libatmem_mem.a"
  "libatmem_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmem_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
