file(REMOVE_RECURSE
  "libatmem_mem.a"
)
