# Empty compiler generated dependencies file for atmem_mem.
# This may be replaced when dependencies are built.
