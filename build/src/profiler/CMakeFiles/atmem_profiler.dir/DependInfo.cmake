
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiler/OfflineProfiler.cpp" "src/profiler/CMakeFiles/atmem_profiler.dir/OfflineProfiler.cpp.o" "gcc" "src/profiler/CMakeFiles/atmem_profiler.dir/OfflineProfiler.cpp.o.d"
  "/root/repo/src/profiler/SamplingProfiler.cpp" "src/profiler/CMakeFiles/atmem_profiler.dir/SamplingProfiler.cpp.o" "gcc" "src/profiler/CMakeFiles/atmem_profiler.dir/SamplingProfiler.cpp.o.d"
  "/root/repo/src/profiler/TraceFile.cpp" "src/profiler/CMakeFiles/atmem_profiler.dir/TraceFile.cpp.o" "gcc" "src/profiler/CMakeFiles/atmem_profiler.dir/TraceFile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/atmem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/atmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
