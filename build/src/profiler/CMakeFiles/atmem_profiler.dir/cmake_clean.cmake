file(REMOVE_RECURSE
  "CMakeFiles/atmem_profiler.dir/OfflineProfiler.cpp.o"
  "CMakeFiles/atmem_profiler.dir/OfflineProfiler.cpp.o.d"
  "CMakeFiles/atmem_profiler.dir/SamplingProfiler.cpp.o"
  "CMakeFiles/atmem_profiler.dir/SamplingProfiler.cpp.o.d"
  "CMakeFiles/atmem_profiler.dir/TraceFile.cpp.o"
  "CMakeFiles/atmem_profiler.dir/TraceFile.cpp.o.d"
  "libatmem_profiler.a"
  "libatmem_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmem_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
