file(REMOVE_RECURSE
  "libatmem_profiler.a"
)
