# Empty dependencies file for atmem_profiler.
# This may be replaced when dependencies are built.
