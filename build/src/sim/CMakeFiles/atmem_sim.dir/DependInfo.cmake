
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/CacheSim.cpp" "src/sim/CMakeFiles/atmem_sim.dir/CacheSim.cpp.o" "gcc" "src/sim/CMakeFiles/atmem_sim.dir/CacheSim.cpp.o.d"
  "/root/repo/src/sim/CostModel.cpp" "src/sim/CMakeFiles/atmem_sim.dir/CostModel.cpp.o" "gcc" "src/sim/CMakeFiles/atmem_sim.dir/CostModel.cpp.o.d"
  "/root/repo/src/sim/FrameAllocator.cpp" "src/sim/CMakeFiles/atmem_sim.dir/FrameAllocator.cpp.o" "gcc" "src/sim/CMakeFiles/atmem_sim.dir/FrameAllocator.cpp.o.d"
  "/root/repo/src/sim/Machine.cpp" "src/sim/CMakeFiles/atmem_sim.dir/Machine.cpp.o" "gcc" "src/sim/CMakeFiles/atmem_sim.dir/Machine.cpp.o.d"
  "/root/repo/src/sim/MachineConfig.cpp" "src/sim/CMakeFiles/atmem_sim.dir/MachineConfig.cpp.o" "gcc" "src/sim/CMakeFiles/atmem_sim.dir/MachineConfig.cpp.o.d"
  "/root/repo/src/sim/PageTable.cpp" "src/sim/CMakeFiles/atmem_sim.dir/PageTable.cpp.o" "gcc" "src/sim/CMakeFiles/atmem_sim.dir/PageTable.cpp.o.d"
  "/root/repo/src/sim/Tlb.cpp" "src/sim/CMakeFiles/atmem_sim.dir/Tlb.cpp.o" "gcc" "src/sim/CMakeFiles/atmem_sim.dir/Tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/atmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
