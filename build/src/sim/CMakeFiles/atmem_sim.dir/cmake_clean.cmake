file(REMOVE_RECURSE
  "CMakeFiles/atmem_sim.dir/CacheSim.cpp.o"
  "CMakeFiles/atmem_sim.dir/CacheSim.cpp.o.d"
  "CMakeFiles/atmem_sim.dir/CostModel.cpp.o"
  "CMakeFiles/atmem_sim.dir/CostModel.cpp.o.d"
  "CMakeFiles/atmem_sim.dir/FrameAllocator.cpp.o"
  "CMakeFiles/atmem_sim.dir/FrameAllocator.cpp.o.d"
  "CMakeFiles/atmem_sim.dir/Machine.cpp.o"
  "CMakeFiles/atmem_sim.dir/Machine.cpp.o.d"
  "CMakeFiles/atmem_sim.dir/MachineConfig.cpp.o"
  "CMakeFiles/atmem_sim.dir/MachineConfig.cpp.o.d"
  "CMakeFiles/atmem_sim.dir/PageTable.cpp.o"
  "CMakeFiles/atmem_sim.dir/PageTable.cpp.o.d"
  "CMakeFiles/atmem_sim.dir/Tlb.cpp.o"
  "CMakeFiles/atmem_sim.dir/Tlb.cpp.o.d"
  "libatmem_sim.a"
  "libatmem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
