file(REMOVE_RECURSE
  "libatmem_sim.a"
)
