# Empty compiler generated dependencies file for atmem_sim.
# This may be replaced when dependencies are built.
