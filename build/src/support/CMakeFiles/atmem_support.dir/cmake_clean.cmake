file(REMOVE_RECURSE
  "CMakeFiles/atmem_support.dir/Error.cpp.o"
  "CMakeFiles/atmem_support.dir/Error.cpp.o.d"
  "CMakeFiles/atmem_support.dir/Logging.cpp.o"
  "CMakeFiles/atmem_support.dir/Logging.cpp.o.d"
  "CMakeFiles/atmem_support.dir/Options.cpp.o"
  "CMakeFiles/atmem_support.dir/Options.cpp.o.d"
  "CMakeFiles/atmem_support.dir/Prng.cpp.o"
  "CMakeFiles/atmem_support.dir/Prng.cpp.o.d"
  "CMakeFiles/atmem_support.dir/Statistics.cpp.o"
  "CMakeFiles/atmem_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/atmem_support.dir/StringUtils.cpp.o"
  "CMakeFiles/atmem_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/atmem_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/atmem_support.dir/TablePrinter.cpp.o.d"
  "libatmem_support.a"
  "libatmem_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmem_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
