file(REMOVE_RECURSE
  "libatmem_support.a"
)
