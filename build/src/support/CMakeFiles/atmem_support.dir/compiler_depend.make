# Empty compiler generated dependencies file for atmem_support.
# This may be replaced when dependencies are built.
