
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AnalyzerLocalTest.cpp" "tests/CMakeFiles/analyzer_tests.dir/AnalyzerLocalTest.cpp.o" "gcc" "tests/CMakeFiles/analyzer_tests.dir/AnalyzerLocalTest.cpp.o.d"
  "/root/repo/tests/AnalyzerPipelineTest.cpp" "tests/CMakeFiles/analyzer_tests.dir/AnalyzerPipelineTest.cpp.o" "gcc" "tests/CMakeFiles/analyzer_tests.dir/AnalyzerPipelineTest.cpp.o.d"
  "/root/repo/tests/AnalyzerPromoteTest.cpp" "tests/CMakeFiles/analyzer_tests.dir/AnalyzerPromoteTest.cpp.o" "gcc" "tests/CMakeFiles/analyzer_tests.dir/AnalyzerPromoteTest.cpp.o.d"
  "/root/repo/tests/AnalyzerTreeTest.cpp" "tests/CMakeFiles/analyzer_tests.dir/AnalyzerTreeTest.cpp.o" "gcc" "tests/CMakeFiles/analyzer_tests.dir/AnalyzerTreeTest.cpp.o.d"
  "/root/repo/tests/PlanTest.cpp" "tests/CMakeFiles/analyzer_tests.dir/PlanTest.cpp.o" "gcc" "tests/CMakeFiles/analyzer_tests.dir/PlanTest.cpp.o.d"
  "/root/repo/tests/SensitivityTest.cpp" "tests/CMakeFiles/analyzer_tests.dir/SensitivityTest.cpp.o" "gcc" "tests/CMakeFiles/analyzer_tests.dir/SensitivityTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/atmem_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/atmem_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atmem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/atmem_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/atmem_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/atmem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/atmem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/atmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
