file(REMOVE_RECURSE
  "CMakeFiles/analyzer_tests.dir/AnalyzerLocalTest.cpp.o"
  "CMakeFiles/analyzer_tests.dir/AnalyzerLocalTest.cpp.o.d"
  "CMakeFiles/analyzer_tests.dir/AnalyzerPipelineTest.cpp.o"
  "CMakeFiles/analyzer_tests.dir/AnalyzerPipelineTest.cpp.o.d"
  "CMakeFiles/analyzer_tests.dir/AnalyzerPromoteTest.cpp.o"
  "CMakeFiles/analyzer_tests.dir/AnalyzerPromoteTest.cpp.o.d"
  "CMakeFiles/analyzer_tests.dir/AnalyzerTreeTest.cpp.o"
  "CMakeFiles/analyzer_tests.dir/AnalyzerTreeTest.cpp.o.d"
  "CMakeFiles/analyzer_tests.dir/PlanTest.cpp.o"
  "CMakeFiles/analyzer_tests.dir/PlanTest.cpp.o.d"
  "CMakeFiles/analyzer_tests.dir/SensitivityTest.cpp.o"
  "CMakeFiles/analyzer_tests.dir/SensitivityTest.cpp.o.d"
  "analyzer_tests"
  "analyzer_tests.pdb"
  "analyzer_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
