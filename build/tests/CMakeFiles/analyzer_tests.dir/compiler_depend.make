# Empty compiler generated dependencies file for analyzer_tests.
# This may be replaced when dependencies are built.
