file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/CrossPolicyTest.cpp.o"
  "CMakeFiles/integration_tests.dir/CrossPolicyTest.cpp.o.d"
  "CMakeFiles/integration_tests.dir/ExperimentTest.cpp.o"
  "CMakeFiles/integration_tests.dir/ExperimentTest.cpp.o.d"
  "CMakeFiles/integration_tests.dir/PlantedHotSetTest.cpp.o"
  "CMakeFiles/integration_tests.dir/PlantedHotSetTest.cpp.o.d"
  "CMakeFiles/integration_tests.dir/PropertyTest.cpp.o"
  "CMakeFiles/integration_tests.dir/PropertyTest.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
