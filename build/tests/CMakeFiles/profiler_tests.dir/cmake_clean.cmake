file(REMOVE_RECURSE
  "CMakeFiles/profiler_tests.dir/ProfilerTest.cpp.o"
  "CMakeFiles/profiler_tests.dir/ProfilerTest.cpp.o.d"
  "CMakeFiles/profiler_tests.dir/TraceOfflineTest.cpp.o"
  "CMakeFiles/profiler_tests.dir/TraceOfflineTest.cpp.o.d"
  "profiler_tests"
  "profiler_tests.pdb"
  "profiler_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiler_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
