
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ModelReferenceTest.cpp" "tests/CMakeFiles/sim_tests.dir/ModelReferenceTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/ModelReferenceTest.cpp.o.d"
  "/root/repo/tests/SimCacheTest.cpp" "tests/CMakeFiles/sim_tests.dir/SimCacheTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/SimCacheTest.cpp.o.d"
  "/root/repo/tests/SimCostModelTest.cpp" "tests/CMakeFiles/sim_tests.dir/SimCostModelTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/SimCostModelTest.cpp.o.d"
  "/root/repo/tests/SimFrameAllocatorTest.cpp" "tests/CMakeFiles/sim_tests.dir/SimFrameAllocatorTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/SimFrameAllocatorTest.cpp.o.d"
  "/root/repo/tests/SimPageTableTest.cpp" "tests/CMakeFiles/sim_tests.dir/SimPageTableTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/SimPageTableTest.cpp.o.d"
  "/root/repo/tests/SimTlbTest.cpp" "tests/CMakeFiles/sim_tests.dir/SimTlbTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/SimTlbTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/atmem_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/atmem_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atmem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/atmem_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/atmem_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/atmem_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/atmem_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/atmem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
