file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/ModelReferenceTest.cpp.o"
  "CMakeFiles/sim_tests.dir/ModelReferenceTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/SimCacheTest.cpp.o"
  "CMakeFiles/sim_tests.dir/SimCacheTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/SimCostModelTest.cpp.o"
  "CMakeFiles/sim_tests.dir/SimCostModelTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/SimFrameAllocatorTest.cpp.o"
  "CMakeFiles/sim_tests.dir/SimFrameAllocatorTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/SimPageTableTest.cpp.o"
  "CMakeFiles/sim_tests.dir/SimPageTableTest.cpp.o.d"
  "CMakeFiles/sim_tests.dir/SimTlbTest.cpp.o"
  "CMakeFiles/sim_tests.dir/SimTlbTest.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
