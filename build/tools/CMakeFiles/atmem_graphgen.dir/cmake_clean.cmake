file(REMOVE_RECURSE
  "CMakeFiles/atmem_graphgen.dir/atmem_graphgen.cpp.o"
  "CMakeFiles/atmem_graphgen.dir/atmem_graphgen.cpp.o.d"
  "atmem_graphgen"
  "atmem_graphgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmem_graphgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
