# Empty dependencies file for atmem_graphgen.
# This may be replaced when dependencies are built.
