file(REMOVE_RECURSE
  "CMakeFiles/atmem_run.dir/atmem_run.cpp.o"
  "CMakeFiles/atmem_run.dir/atmem_run.cpp.o.d"
  "atmem_run"
  "atmem_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmem_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
