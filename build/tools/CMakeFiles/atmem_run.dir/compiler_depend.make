# Empty compiler generated dependencies file for atmem_run.
# This may be replaced when dependencies are built.
