//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamics scenario of paper Section 2.2: "effective data placement
/// largely depends on ... the query at each run". An analytics service
/// alternates between two workloads over the same graph — PageRank (edge
/// streaming over ranks) and SSSP (frontier relaxation over distances and
/// weights). The AutoTuner watches iteration boundaries, profiles,
/// optimizes, detects each phase change from the shifted access volume,
/// and re-optimizes — demoting the previous phase's data and promoting
/// the new phase's (RuntimeConfig::DemoteUnselected).
///
//===----------------------------------------------------------------------===//

#include "apps/Kernels.h"
#include "core/AutoTuner.h"
#include "core/Runtime.h"
#include "graph/Datasets.h"
#include "support/Options.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace atmem;

namespace {

void printPlacement(core::Runtime &Rt, const char *Phase) {
  std::printf("  placement after %s:\n", Phase);
  for (const mem::DataObject *Obj : Rt.registry().liveObjects()) {
    uint64_t Fast = Obj->bytesOn(sim::TierId::Fast);
    if (Fast == 0)
      continue;
    std::printf("    %-18s %s on DRAM (%s)\n", Obj->name().c_str(),
                formatBytes(Fast).c_str(),
                formatPercent(static_cast<double>(Fast) /
                              static_cast<double>(Obj->mappedBytes()))
                    .c_str());
  }
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Parser("adaptive_queries: placement follows the query as "
                      "the workload alternates between PageRank and SSSP");
  Parser.addString("dataset", "rmat24", "graph to query");
  Parser.addDouble("scale", graph::DefaultScaleDivisor,
                   "dataset scale divisor");
  if (!Parser.parse(Argc, Argv))
    return 1;
  std::string Name = Parser.getString("dataset");
  if (!graph::isKnownDataset(Name)) {
    std::fprintf(stderr, "unknown dataset '%s'\n", Name.c_str());
    return 1;
  }
  double Scale = Parser.getDouble("scale");
  graph::Dataset Data = graph::makeDataset(Name, Scale);

  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / Scale);
  core::Runtime Rt(Config);

  // Both kernels register their data up front (a resident service).
  apps::PageRankKernel Pr;
  Pr.setup(Rt, Data.Graph);
  apps::SsspKernel Sssp;
  Sssp.setup(Rt, Data.Graph);

  core::AutoTunerConfig TunerConfig;
  TunerConfig.ReprofileDeviation = 0.4;
  core::AutoTuner Tuner(Rt, TunerConfig);

  auto RunPhase = [&](const char *Label, apps::Kernel &Kernel,
                      int Iterations) {
    std::printf("\n=== phase: %s (%d iterations) ===\n", Label, Iterations);
    for (int I = 0; I < Iterations; ++I) {
      Tuner.beginIteration();
      Kernel.runIteration();
      double T = Tuner.endIteration();
      std::printf("  iteration %d: %s%s\n", I + 1,
                  formatSeconds(T).c_str(),
                  I == 0 && Tuner.optimizeCount() > 0 ? "" : "");
    }
    printPlacement(Rt, Label);
  };

  RunPhase("PageRank", Pr, 3);
  std::printf("\noptimize() calls so far: %u\n", Tuner.optimizeCount());
  RunPhase("SSSP", Sssp, 3);
  std::printf("\noptimize() calls so far: %u — the tuner re-profiled when "
              "the query changed, demoted the PageRank working set, and "
              "promoted the SSSP arrays.\n",
              Tuner.optimizeCount());
  return 0;
}
