//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Domain scenario: BFS over a graph larger than the fast memory, on the
/// MCDRAM-DRAM (Knights Landing) testbed — the capacity-pressure story of
/// the paper's Figure 6 and Section 7.2. Compares three placements:
///
///  - baseline: everything in DDR4;
///  - 'numactl -p MCDRAM': the system's preferred policy, which fills
///    MCDRAM front-to-back with whatever allocates first and overflows
///    the rest — often leaving the truly hot data in DDR4;
///  - ATMem: profiles one iteration, then places only the critical chunks
///    in MCDRAM, fitting comfortably under the capacity.
///
//===----------------------------------------------------------------------===//

#include "baseline/Experiment.h"
#include "graph/Datasets.h"
#include "support/Options.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace atmem;
using baseline::Policy;

int main(int Argc, const char **Argv) {
  OptionParser Parser("capacity_pressure: ATMem vs numactl-preferred under "
                      "MCDRAM capacity pressure");
  Parser.addString("dataset", "friendster", "graph (friendster and rmat27 "
                                            "exceed scaled MCDRAM)");
  Parser.addDouble("scale", graph::DefaultScaleDivisor,
                   "dataset scale divisor");
  if (!Parser.parse(Argc, Argv))
    return 1;
  std::string Name = Parser.getString("dataset");
  if (!graph::isKnownDataset(Name)) {
    std::fprintf(stderr, "unknown dataset '%s'\n", Name.c_str());
    return 1;
  }
  double Scale = Parser.getDouble("scale");

  graph::Dataset Data = graph::makeDataset(Name, Scale);
  sim::MachineConfig Machine = sim::mcdramDramTestbed(1.0 / Scale);
  std::printf("BFS on %s (%u vertices, %llu edges); scaled MCDRAM holds "
              "%s\n",
              Name.c_str(), Data.Graph.numVertices(),
              static_cast<unsigned long long>(Data.Graph.numEdges()),
              formatBytes(Machine.Fast.CapacityBytes).c_str());

  TablePrinter Table({"placement", "iteration time", "MCDRAM data ratio",
                      "vs baseline"});
  double Baseline = 0.0;
  for (Policy P :
       {Policy::AllSlow, Policy::PreferredFast, Policy::Atmem}) {
    baseline::RunConfig Config;
    Config.KernelName = "bfs";
    Config.Graph = &Data.Graph;
    Config.Machine = Machine;
    Config.PolicyKind = P;
    baseline::RunResult Result = baseline::runExperiment(Config);
    if (P == Policy::AllSlow)
      Baseline = Result.MeasuredIterSec;
    Table.addRow({baseline::policyName(P),
                  formatSeconds(Result.MeasuredIterSec),
                  formatPercent(Result.FastDataRatio),
                  formatSpeedup(Baseline / Result.MeasuredIterSec)});
  }
  Table.print();
  std::printf("\nNote how the preferred policy fills MCDRAM with the first "
              "allocations (row offsets, then most of the edge array) and "
              "strands hot vertex state in DDR4, while ATMem selects the "
              "dense regions regardless of allocation order.\n");
  return 0;
}
