//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates the multi-stage multi-threaded migration mechanism
/// (Section 4.4) head-to-head against the mbind system service on an
/// identical placement: same object, same chunk ranges, both directions
/// of the Table 4 comparison (migration time and post-migration mapping
/// quality). Also shows the staging mechanics: data is copied out to a
/// staging buffer on the target tier, the virtual range is remapped onto
/// fresh target frames, and the data is copied back — addresses never
/// change and huge pages re-form.
///
//===----------------------------------------------------------------------===//

#include "mem/AtmemMigrator.h"
#include "mem/MbindMigrator.h"
#include "sim/Machine.h"
#include "support/Error.h"
#include "support/Options.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstring>

using namespace atmem;
using namespace atmem::mem;
using namespace atmem::sim;

namespace {

/// Runs one mechanism on a fresh machine and reports its counters.
struct Outcome {
  MigrationResult Result;
  uint64_t HugePagesAfter = 0;
  uint64_t SmallPagesAfter = 0;
  bool DataIntact = false;
};

Outcome runMechanism(bool UseMbind, uint64_t ObjectBytes) {
  Machine M(nvmDramTestbed(1.0 / 256));
  DataObjectRegistry Registry(M);
  ThreadPool Pool(8);
  AtmemMigrator Atmem(Registry, Pool);
  MbindMigrator Mbind(Registry);

  DataObject &Obj =
      Registry.create("payload", ObjectBytes, InitialPlacement::Slow);
  for (uint64_t I = 0; I < Obj.mappedBytes(); ++I)
    Obj.data()[I] = static_cast<std::byte>((I * 31 + 5) & 0xFF);

  Outcome Out;
  Migrator &Mig = UseMbind ? static_cast<Migrator &>(Mbind)
                           : static_cast<Migrator &>(Atmem);
  if (Mig.migrate(Obj, {{0, Obj.numChunks()}}, TierId::Fast, Out.Result) !=
      MigrationStatus::Success)
    reportFatalError("migration unexpectedly refused");

  Out.HugePagesAfter = M.pageTable().hugePageCount();
  Out.SmallPagesAfter = M.pageTable().smallPageCount();
  Out.DataIntact = true;
  for (uint64_t I = 0; I < Obj.mappedBytes(); ++I)
    if (Obj.data()[I] != static_cast<std::byte>((I * 31 + 5) & 0xFF)) {
      Out.DataIntact = false;
      break;
    }
  return Out;
}

} // namespace

int main(int Argc, const char **Argv) {
  OptionParser Parser("migration_comparison: multi-stage multi-threaded "
                      "migration vs the mbind system service");
  Parser.addUnsigned("mib", 64, "payload size to migrate, MiB");
  if (!Parser.parse(Argc, Argv))
    return 1;
  uint64_t Bytes = Parser.getUnsigned("mib") << 20;

  std::printf("Migrating %s from NVM to DRAM through both mechanisms...\n\n",
              formatBytes(Bytes).c_str());

  Outcome Atmem = runMechanism(/*UseMbind=*/false, Bytes);
  Outcome Mbind = runMechanism(/*UseMbind=*/true, Bytes);

  TablePrinter Table({"mechanism", "time (modelled)", "PTEs written",
                      "huge pages after", "4K pages after", "data intact"});
  Table.addRow({"ATMem (staged, multi-threaded)",
                formatSeconds(Atmem.Result.SimSeconds),
                std::to_string(Atmem.Result.PtesTouched),
                std::to_string(Atmem.HugePagesAfter),
                std::to_string(Atmem.SmallPagesAfter),
                Atmem.DataIntact ? "yes" : "NO"});
  Table.addRow({"mbind (system service)",
                formatSeconds(Mbind.Result.SimSeconds),
                std::to_string(Mbind.Result.PtesTouched),
                std::to_string(Mbind.HugePagesAfter),
                std::to_string(Mbind.SmallPagesAfter),
                Mbind.DataIntact ? "yes" : "NO"});
  Table.print();

  std::printf("\nspeedup: %s; mbind split %llu huge pages, leaving the "
              "mapping fragmented into 4 KiB entries (the Table 4 TLB "
              "effect), while ATMem's remap re-formed huge pages on the "
              "target tier.\n",
              formatSpeedup(Mbind.Result.SimSeconds /
                            Atmem.Result.SimSeconds)
                  .c_str(),
              static_cast<unsigned long long>(
                  Mbind.Result.HugePagesSplit));
  return 0;
}
