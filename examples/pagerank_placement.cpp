//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Domain scenario: iterative PageRank over a billion-edge-class social
/// graph (scaled twitter) on the NVM-DRAM testbed — the paper's headline
/// workload. Demonstrates:
///
///  - registering the CSR arrays and rank vectors through the runtime,
///  - the profile -> analyze -> migrate -> iterate loop,
///  - inspecting the analyzer's per-object decisions (which objects were
///    classified hot, how much of each moved),
///  - the amortization arithmetic of Section 7.4.
///
//===----------------------------------------------------------------------===//

#include "apps/Kernels.h"
#include "core/Runtime.h"
#include "graph/Datasets.h"
#include "support/Options.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace atmem;

int main(int Argc, const char **Argv) {
  OptionParser Parser("pagerank_placement: adaptive placement for iterative "
                      "PageRank on the NVM-DRAM testbed");
  Parser.addString("dataset", "twitter", "graph to rank");
  Parser.addDouble("scale", graph::DefaultScaleDivisor,
                   "dataset scale divisor");
  Parser.addUnsigned("iterations", 8, "optimized iterations to run");
  if (!Parser.parse(Argc, Argv))
    return 1;
  std::string Name = Parser.getString("dataset");
  if (!graph::isKnownDataset(Name)) {
    std::fprintf(stderr, "unknown dataset '%s'\n", Name.c_str());
    return 1;
  }
  double Scale = Parser.getDouble("scale");
  auto Iterations = static_cast<uint32_t>(Parser.getUnsigned("iterations"));

  graph::Dataset Data = graph::makeDataset(Name, Scale);
  std::printf("PageRank on %s: %u vertices, %llu edges\n", Name.c_str(),
              Data.Graph.numVertices(),
              static_cast<unsigned long long>(Data.Graph.numEdges()));

  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / Scale);
  core::Runtime Rt(Config);

  apps::PageRankKernel Kernel;
  Kernel.setup(Rt, Data.Graph);

  // Iteration 1: profiled, all data on NVM.
  Rt.profilingStart();
  Rt.beginIteration();
  Kernel.runIteration();
  double BaselineIter = Rt.endIteration();
  Rt.profilingStop();
  std::printf("\niteration 1 (all-NVM, profiled): %s\n",
              formatSeconds(BaselineIter).c_str());

  mem::MigrationResult Migration = Rt.optimize();

  // Per-object placement report.
  std::printf("\nanalyzer decisions:\n");
  TablePrinter Table({"object", "size", "chunk", "on DRAM", "ratio"});
  for (const mem::DataObject *Obj : Rt.registry().liveObjects()) {
    uint64_t Fast = Obj->bytesOn(sim::TierId::Fast);
    Table.addRow({Obj->name(), formatBytes(Obj->mappedBytes()),
                  formatBytes(Obj->chunkBytes()), formatBytes(Fast),
                  formatPercent(static_cast<double>(Fast) /
                                static_cast<double>(Obj->mappedBytes()))});
  }
  Table.print();
  std::printf("migration: %s in %llu ranges, %s simulated\n",
              formatBytes(Migration.BytesMoved).c_str(),
              static_cast<unsigned long long>(Migration.Ranges),
              formatSeconds(Migration.SimSeconds).c_str());

  // Optimized iterations.
  double TotalOptimized = 0.0;
  double FirstOptimized = 0.0;
  for (uint32_t I = 0; I < Iterations; ++I) {
    Rt.beginIteration();
    Kernel.runIteration();
    double T = Rt.endIteration();
    if (I == 0)
      FirstOptimized = T;
    TotalOptimized += T;
  }
  std::printf("\noptimized iterations: %s each (%s for %u iterations)\n",
              formatSeconds(FirstOptimized).c_str(),
              formatSeconds(TotalOptimized).c_str(), Iterations);
  std::printf("speedup per iteration: %s\n",
              formatSpeedup(BaselineIter / FirstOptimized).c_str());

  // Section 7.4 amortization arithmetic.
  double OneTime = Rt.profilingOverheadSeconds() + Migration.SimSeconds;
  double PerIterGain = BaselineIter - FirstOptimized;
  if (PerIterGain > 0)
    std::printf("one-time cost %s amortizes after %.0f optimized "
                "iteration(s)\n",
                formatSeconds(OneTime).c_str(),
                std::max(1.0, OneTime / PerIterGain));
  return 0;
}
