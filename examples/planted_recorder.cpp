//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// planted_recorder: deterministic multi-epoch planted-hot-set workload
/// that records a decision log for the learned-ranker pipeline.
///
/// Every epoch drives the same 1 MiB array through the full profiled
/// pipeline with a *known* traffic split:
///
///   * a stable contiguous hot block (a quarter of the chunks) that stays
///     hot in every epoch — the pattern a placement should keep resident;
///   * transient scattered spikes (an eighth of the chunks, re-drawn from
///     a seeded PRNG each epoch) that are individually hotter per chunk
///     than the stable block but never recur — bait the Eq. 1-5 snapshot
///     heuristic takes every time;
///   * a uniform background over the rest.
///
/// Under a budget that fits the stable block but not block + spikes, a
/// policy that learns "contiguous and recurring beats hot-right-now"
/// out-places the heuristic on the next epoch — which is exactly the
/// signal atmem_train fits and tools/atmem_replay measures. The recorded
/// atdl log is byte-deterministic for a given (seed, epochs), making it
/// suitable as a committed golden artifact:
///
///   planted_recorder --out tests/golden/planted_hotset.atdl
///   atmem_train tests/golden/planted_hotset.atdl --out ranker.json \
///     --budget $((18 * 16384))
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "obs/Export.h"
#include "support/Options.h"
#include "support/Prng.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace atmem;

int main(int Argc, const char **Argv) {
  OptionParser Parser(
      "record a deterministic multi-epoch planted-hot-set decision log");
  Parser.addString("out", "planted_hotset.atdl",
                   "decision-log output path (atdl-v1)");
  Parser.addUnsigned("epochs", 8, "profiled optimize() epochs to record");
  Parser.addUnsigned("seed", 42, "PRNG seed for layout and traffic");
  Parser.addUnsigned("accesses", 400000, "array accesses per epoch");
  if (!Parser.parse(Argc, Argv))
    return 1;
  uint64_t Epochs = std::max<uint64_t>(Parser.getUnsigned("epochs"), 2);
  uint64_t Seed = Parser.getUnsigned("seed");
  uint64_t Accesses = Parser.getUnsigned("accesses");

  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 1024);
  Config.Telemetry.DecisionLogPath = Parser.getString("out");
  core::Runtime Rt(Config);

  constexpr size_t Elements = 1 << 17; // 1 MiB of uint64.
  auto Arr = Rt.allocate<uint64_t>("planted", Elements);
  const mem::DataObject &Obj = Rt.registry().object(Arr.objectId());
  uint32_t Chunks = Obj.numChunks();
  uint64_t ElementsPerChunk = Elements / Chunks;

  // Stable block: a quarter of the chunks, contiguous, fixed offset.
  uint32_t StableChunks = std::max(Chunks / 4, 1u);
  uint32_t StableStart = Chunks / 8;
  // Transient spikes: an eighth of the chunks, re-drawn every epoch
  // outside the stable block.
  uint32_t SpikeChunks = std::max(Chunks / 8, 1u);

  std::printf("planted_recorder: %u chunks x %llu bytes; stable block "
              "[%u, %u), %u transient spikes/epoch\n",
              Chunks, static_cast<unsigned long long>(Obj.chunkBytes()),
              StableStart, StableStart + StableChunks, SpikeChunks);
  std::printf("planted_recorder: suggested A/B plan budget: %llu bytes "
              "(stable block + 2 chunks)\n",
              static_cast<unsigned long long>(
                  (StableChunks + 2) * Obj.chunkBytes()));

  Xoshiro256 Rng(Seed);
  for (uint64_t E = 0; E < Epochs; ++E) {
    std::vector<uint32_t> Spikes;
    while (Spikes.size() < SpikeChunks) {
      auto C = static_cast<uint32_t>(Rng.nextBounded(Chunks));
      if (C >= StableStart && C < StableStart + StableChunks)
        continue;
      if (std::find(Spikes.begin(), Spikes.end(), C) != Spikes.end())
        continue;
      Spikes.push_back(C);
    }

    Rt.profilingStart();
    Rt.beginIteration();
    for (uint64_t I = 0; I < Accesses; ++I) {
      double Pick = Rng.nextDouble();
      size_t Index;
      if (Pick < 0.50) {
        // Stable block: 50% of traffic over a quarter of the chunks.
        uint32_t C = StableStart +
                     static_cast<uint32_t>(Rng.nextBounded(StableChunks));
        Index = C * ElementsPerChunk + Rng.nextBounded(ElementsPerChunk);
      } else if (Pick < 0.85) {
        // Spikes: 35% over an eighth — hotter per chunk than the block,
        // but gone next epoch.
        uint32_t C = Spikes[Rng.nextBounded(Spikes.size())];
        Index = C * ElementsPerChunk + Rng.nextBounded(ElementsPerChunk);
      } else {
        Index = Rng.nextBounded(Elements);
      }
      Arr[Index] += 1;
    }
    Rt.endIteration();
    Rt.profilingStop();

    mem::MigrationResult Migration = Rt.optimize();
    std::printf("epoch %llu: migrated %llu bytes in %llu range(s)\n",
                static_cast<unsigned long long>(E),
                static_cast<unsigned long long>(Migration.BytesMoved),
                static_cast<unsigned long long>(Migration.Ranges));
  }

  if (!obs::exportIfConfigured(Config.Telemetry)) {
    std::fprintf(stderr, "planted_recorder: telemetry export failed\n");
    return 1;
  }
  std::printf("decision log written to %s\n",
              Parser.getString("out").c_str());
  return 0;
}
