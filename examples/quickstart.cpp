//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: the full ATMem workflow on one graph application.
///
///  1. Build a simulated NVM-DRAM machine and an ATMem runtime.
///  2. Register a graph kernel's data through the runtime (all data starts
///     on the large-capacity NVM, the paper's baseline).
///  3. Run one profiled iteration (hardware sampling of LLC misses).
///  4. atmem-optimize: analyze the samples, select critical chunks, and
///     migrate them to DRAM with the multi-stage multi-threaded migrator.
///  5. Run the second iteration and compare simulated times.
///
//===----------------------------------------------------------------------===//

#include "apps/Kernels.h"
#include "core/Runtime.h"
#include "graph/Datasets.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace atmem;

int main() {
  // A scaled-down rmat24 graph on the scaled NVM-DRAM testbed.
  double Scale = graph::DefaultScaleDivisor;
  graph::Dataset Data = graph::makeDataset("rmat24", Scale);
  std::printf("graph: %s, %u vertices, %llu edges\n", Data.Name.c_str(),
              Data.Graph.numVertices(),
              static_cast<unsigned long long>(Data.Graph.numEdges()));

  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / Scale);
  core::Runtime Rt(Config);

  // Register the application's data objects; placement starts on NVM.
  apps::PageRankKernel Kernel;
  Kernel.setup(Rt, Data.Graph);
  std::printf("registered %s bytes across %zu data objects\n",
              formatBytes(Rt.registry().totalMappedBytes()).c_str(),
              Rt.registry().liveObjects().size());

  // Iteration 1: profiled.
  Rt.profilingStart();
  Rt.beginIteration();
  Kernel.runIteration();
  double FirstIter = Rt.endIteration();
  Rt.profilingStop();
  std::printf("iteration 1 (all data on NVM): %s"
              " [profiling overhead %s, %llu samples]\n",
              formatSeconds(FirstIter).c_str(),
              formatSeconds(Rt.profilingOverheadSeconds()).c_str(),
              static_cast<unsigned long long>(Rt.profiler().sampleCount()));

  // Analyze and migrate the critical chunks to DRAM.
  mem::MigrationResult Migration = Rt.optimize();
  std::printf("migrated %s in %llu ranges (%s simulated), data ratio %s\n",
              formatBytes(Migration.BytesMoved).c_str(),
              static_cast<unsigned long long>(Migration.Ranges),
              formatSeconds(Migration.SimSeconds).c_str(),
              formatPercent(Rt.fastDataRatio()).c_str());

  // Iteration 2: the paper's measured iteration.
  Rt.beginIteration();
  Kernel.runIteration();
  double SecondIter = Rt.endIteration();
  std::printf("iteration 2 (critical chunks on DRAM): %s\n",
              formatSeconds(SecondIter).c_str());
  std::printf("speedup over all-NVM iteration: %s\n",
              formatSpeedup(FirstIter / SecondIter).c_str());
  return 0;
}
