//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 9 generalization: ATMem on sparse matrix-vector multiply
/// (SpMV), a non-graph irregular workload. The paper reports "similar
/// results as the graph applications" — the dense rows of a power-law
/// matrix and the hot stretches of the input vector get placed on the
/// fast memory. Also demonstrates the paper's Listing 1 C-style API end
/// to end (atmem_malloc / atmem_profiling_start / atmem_optimize).
///
//===----------------------------------------------------------------------===//

#include "core/AtmemApi.h"
#include "graph/Generators.h"
#include "support/Options.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace atmem;

int main(int Argc, const char **Argv) {
  OptionParser Parser("spmv_irregular: ATMem generalization to SpMV via "
                      "the paper's C-style API");
  Parser.addUnsigned("rows", 1u << 17, "matrix rows (power-law sparsity)");
  Parser.addUnsigned("nnz-per-row", 16, "average non-zeros per row");
  if (!Parser.parse(Argc, Argv))
    return 1;
  auto Rows = static_cast<uint32_t>(Parser.getUnsigned("rows"));
  double NnzPerRow = static_cast<double>(Parser.getUnsigned("nnz-per-row"));

  // A power-law sparse matrix (rows = vertices, nnz = edges).
  graph::PowerLawParams Params;
  Params.NumVertices = Rows;
  Params.AverageDegree = NnzPerRow;
  Params.Gamma = 2.0;
  graph::CsrGraph Matrix =
      graph::withRandomWeights(graph::generatePowerLaw(Params), 16, 1);
  std::printf("SpMV: %u x %u matrix, %llu non-zeros\n", Rows, Rows,
              static_cast<unsigned long long>(Matrix.numEdges()));

  core::RuntimeConfig Config;
  Config.Machine = sim::nvmDramTestbed(1.0 / 256);
  core::Runtime Rt(Config);
  atmem_set_runtime(&Rt);

  // Listing 1 workflow: register the CSR arrays through atmem_malloc.
  size_t OffBytes = (Rows + 1) * sizeof(uint64_t);
  size_t ColBytes = Matrix.numEdges() * sizeof(uint32_t);
  size_t ValBytes = Matrix.numEdges() * sizeof(float);
  size_t VecBytes = Rows * sizeof(float);
  auto *Off = static_cast<uint64_t *>(atmem_malloc(OffBytes));
  auto *Col = static_cast<uint32_t *>(atmem_malloc(ColBytes));
  auto *Val = static_cast<float *>(atmem_malloc(ValBytes));
  auto *X = static_cast<float *>(atmem_malloc(VecBytes));
  auto *Y = static_cast<float *>(atmem_malloc(VecBytes));

  Rt.setTrackingEnabled(false);
  for (uint32_t R = 0; R <= Rows; ++R)
    Off[R] = Matrix.rowOffsets()[R];
  for (uint64_t E = 0; E < Matrix.numEdges(); ++E) {
    Col[E] = Matrix.cols()[E];
    Val[E] = static_cast<float>(Matrix.weights()[E]);
  }
  for (uint32_t R = 0; R < Rows; ++R)
    X[R] = 1.0f + static_cast<float>(R % 5);
  Rt.setTrackingEnabled(true);

  // Tracked views so the simulated profiler observes the accesses.
  auto OffView = atmem_tracked_view<uint64_t>(Off, Rows + 1);
  auto ColView = atmem_tracked_view<uint32_t>(Col, Matrix.numEdges());
  auto ValView = atmem_tracked_view<float>(Val, Matrix.numEdges());
  auto XView = atmem_tracked_view<float>(X, Rows);
  auto YView = atmem_tracked_view<float>(Y, Rows);

  auto RunSpmv = [&] {
    for (uint32_t R = 0; R < Rows; ++R) {
      float Acc = 0.0f;
      uint64_t Begin = OffView[R];
      uint64_t End = OffView[R + 1];
      for (uint64_t E = Begin; E < End; ++E)
        Acc += ValView[E] * XView[ColView[E]];
      YView[R] = Acc;
    }
  };

  atmem_profiling_start();
  Rt.beginIteration();
  RunSpmv();
  double Before = Rt.endIteration();
  atmem_profiling_stop();

  atmem_optimize();

  Rt.beginIteration();
  RunSpmv();
  double After = Rt.endIteration();

  std::printf("all-NVM SpMV: %s; after ATMem placement (%s of data on "
              "DRAM): %s — %s speedup\n",
              formatSeconds(Before).c_str(),
              formatPercent(Rt.fastDataRatio()).c_str(),
              formatSeconds(After).c_str(),
              formatSpeedup(Before / After).c_str());

  atmem_free(Y);
  atmem_free(X);
  atmem_free(Val);
  atmem_free(Col);
  atmem_free(Off);
  atmem_set_runtime(nullptr);
  return 0;
}
