#!/usr/bin/env python3
"""Accumulates microbenchmark trajectory points and diffs the newest pair.

The perf-smoke job writes one BENCH_<name>.json point per run (see
scripts/perf_smoke.sh). This script folds those points into an append-only
JSONL history keyed by (bench, cpu_model, host_hardware_threads) — numbers
only compare within one host class — and reports how the newest point
moved against its predecessor: every *_per_sec throughput metric plus
peak_rss_bytes.

The report is informational: regressions are printed but never fail the
run (the hard gate lives in perf_smoke.sh where baselines are committed
and host-class-matched). Exit codes: 0 success (including "nothing to
diff"), 1 unreadable input, 2 usage.

Usage:
  bench_history.py --history bench_history.jsonl --append BENCH_hotpath.json ...
  bench_history.py --history bench_history.jsonl --diff
  bench_history.py --history bench_history.jsonl --append ... --diff
"""

import argparse
import json
import sys
import time


def flatten_rates(doc, prefix=""):
    """Yields (dotted_path, value) for every numeric *_per_sec metric."""
    for key, value in sorted(doc.items()):
        path = prefix + key
        if isinstance(value, dict):
            yield from flatten_rates(value, path + ".")
        elif isinstance(value, (int, float)) and key.endswith("_per_sec"):
            yield path, float(value)


def point_from_bench(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    point = {
        "bench": doc.get("bench", path),
        "git_sha": doc.get("git_sha", "unknown"),
        "cpu_model": doc.get("cpu_model", "unknown"),
        "host_hardware_threads": doc.get("host_hardware_threads", 0),
        "quick": doc.get("quick", False),
        "peak_rss_bytes": doc.get("peak_rss_bytes", 0),
        "recorded_unix": int(time.time()),
        "rates": dict(flatten_rates(doc)),
    }
    return point


def host_key(point):
    return (point["bench"], point["cpu_model"],
            point["host_hardware_threads"])


def load_history(path):
    points = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    points.append(json.loads(line))
                except json.JSONDecodeError as err:
                    print(f"bench_history: {path}:{line_no}: skipping "
                          f"malformed line ({err})", file=sys.stderr)
    except FileNotFoundError:
        pass
    return points


def pct(new, old):
    if old == 0:
        return float("inf") if new else 0.0
    return 100.0 * (new - old) / old


def diff_newest_pair(points):
    by_key = {}
    for point in points:
        by_key.setdefault(host_key(point), []).append(point)
    compared = 0
    for key in sorted(by_key):
        series = by_key[key]
        if len(series) < 2:
            continue
        old, new = series[-2], series[-1]
        compared += 1
        bench, cpu, threads = key
        print(f"{bench} [{cpu}, {threads} threads]: "
              f"{old['git_sha']} -> {new['git_sha']}")
        for name in sorted(set(old.get("rates", {})) |
                           set(new.get("rates", {}))):
            old_rate = old.get("rates", {}).get(name)
            new_rate = new.get("rates", {}).get(name)
            if old_rate is None or new_rate is None:
                print(f"  {name}: only one side recorded it")
                continue
            delta = pct(new_rate, old_rate)
            marker = "  <-- regression?" if delta <= -10.0 else ""
            print(f"  {name}: {old_rate:.3e} -> {new_rate:.3e} "
                  f"({delta:+.1f}%){marker}")
        old_rss = old.get("peak_rss_bytes", 0)
        new_rss = new.get("peak_rss_bytes", 0)
        delta = pct(new_rss, old_rss)
        marker = "  <-- growth?" if delta >= 10.0 else ""
        print(f"  peak_rss_bytes: {old_rss} -> {new_rss} "
              f"({delta:+.1f}%){marker}")
    if compared == 0:
        print("bench_history: nothing to diff "
              "(need two points of one host class)")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--history", required=True,
                        help="append-only JSONL history file")
    parser.add_argument("--append", nargs="*", default=[],
                        help="BENCH_*.json points to fold into the history")
    parser.add_argument("--diff", action="store_true",
                        help="report the newest pair per host class")
    args = parser.parse_args()
    if not args.append and not args.diff:
        parser.error("nothing to do: pass --append and/or --diff")

    appended = []
    for path in args.append:
        try:
            appended.append(point_from_bench(path))
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_history: cannot read '{path}': {err}",
                  file=sys.stderr)
            return 1
    if appended:
        with open(args.history, "a", encoding="utf-8") as handle:
            for point in appended:
                handle.write(json.dumps(point, sort_keys=True) + "\n")
        print(f"bench_history: appended {len(appended)} point(s) "
              f"to {args.history}")

    if args.diff:
        diff_newest_pair(load_history(args.history))
    return 0


if __name__ == "__main__":
    sys.exit(main())
