#!/usr/bin/env python3
"""Extract machine-readable CSV from the benchmark harness output.

The figure/table benchmarks print aligned text tables (via
support/TablePrinter). This script slices a saved run log — e.g. the
repository's bench_output.txt — back into CSV files, one per table, so the
paper's figures can be re-plotted with any tool.

It also ingests the decision-log JSONL export (``atmem_explain run.atdl
--jsonl decisions.jsonl``) and prints a per-object promotion summary, and
the per-epoch time series (``atmem_run --timeseries-out ts.jsonl``),
which it flattens into one plotting-ready CSV with an epoch column.

Usage:
    scripts/extract_results.py bench_output.txt -o results/
    scripts/extract_results.py bench_output.txt --list
    scripts/extract_results.py --decisions decisions.jsonl
    scripts/extract_results.py --timeseries ts.jsonl -o results/
"""

import argparse
import json
import os
import re
import sys


def split_columns(header):
    """Return [(name, start, end)] column spans from an aligned header row.

    Columns are separated by runs of two or more spaces; each column's text
    may itself contain single spaces ("data ratio").
    """
    spans = []
    for match in re.finditer(r"\S+(?: \S+)*", header):
        spans.append((match.group(0), match.start(), match.end()))
    return spans


def slice_row(line, spans):
    """Split a table row using the header's column start offsets."""
    cells = []
    for idx, (_, start, _) in enumerate(spans):
        end = spans[idx + 1][1] if idx + 1 < len(spans) else len(line)
        cells.append(line[start:end].strip())
    return cells


def find_tables(lines):
    """Yield (title, header_cells, rows) for every table in the log.

    A table is a header line followed by a dashed rule; the nearest
    preceding banner or section line provides the title.
    """
    title = "untitled"
    i = 0
    while i < len(lines):
        line = lines[i].rstrip("\n")
        if line.startswith("Figure") or line.startswith("Table") or \
           line.startswith("Ablation") or line.startswith("Extension") or \
           line.startswith("Section") or line.startswith("["):
            title = line.strip("[]")
        if i + 1 < len(lines) and re.fullmatch(r"-{4,}", lines[i + 1].strip()) \
           and len(line.split()) >= 2:
            spans = split_columns(line)
            rows = []
            j = i + 2
            while j < len(lines):
                row = lines[j].rstrip("\n")
                if not row.strip() or row.startswith("=") or \
                   re.fullmatch(r"-{4,}", row.strip()):
                    break
                rows.append(slice_row(row, spans))
                j += 1
            yield title, [name for name, _, _ in spans], rows
            i = j
            continue
        i += 1


def sanitize(title):
    slug = re.sub(r"[^A-Za-z0-9]+", "_", title.lower()).strip("_")
    return slug[:60] or "table"


def summarize_decisions(path):
    """Print a per-object promotion summary from a decision-log JSONL export.

    One row per object aggregated over epochs: how many chunks carried
    samples, how many classified critical (sampled + global-ranked), how
    many the m-ary tree promoted, the last-seen Eq. 4 weight / Eq. 5 TR',
    and how many chunk-ranges were committed, rolled back, or skipped for
    that object.
    """
    objects = {}  # id -> aggregate dict
    names = {}

    def entry(obj_id):
        return objects.setdefault(obj_id, {
            "name": "", "epochs": set(), "sampled": 0, "critical": 0,
            "global": 0, "promoted": 0, "weight": 0.0, "tr": 0.0,
            "committed": 0, "rolled_back": 0, "skipped": 0,
            "renominated": 0,
        })

    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"{path}:{line_no}: bad JSON: {err}", file=sys.stderr)
                return 1
            kind = rec.get("kind")
            if kind == "name":
                names[rec["id"]] = rec["name"]
            elif kind == "object":
                agg = entry(rec["object"])
                agg["name"] = rec.get("name") or agg["name"]
                agg["epochs"].add(rec["epoch"])
                agg["weight"] = rec["weight"]
                agg["tr"] = rec["tr_threshold"]
            elif kind == "chunk":
                agg = entry(rec["object"])
                if rec.get("samples", 0) > 0:
                    agg["sampled"] += 1
                if rec.get("sampled_critical"):
                    agg["critical"] += 1
                if rec.get("global_ranked"):
                    agg["global"] += 1
                if rec.get("promoted"):
                    agg["promoted"] += 1
            elif kind == "migration":
                agg = entry(rec["object"])
                phase = rec.get("phase")
                if phase in ("committed", "rolled_back", "skipped",
                             "renominated"):
                    agg[phase] += 1

    if not objects:
        print("no decision records found", file=sys.stderr)
        return 1

    header = ["object", "epochs", "sampled", "critical", "global",
              "promoted", "weight", "TR'", "committed", "rolled back",
              "skipped", "renominated"]
    rows = []
    for obj_id in sorted(objects):
        agg = objects[obj_id]
        rows.append([agg["name"] or f"#{obj_id}", str(len(agg["epochs"])),
                     str(agg["sampled"]), str(agg["critical"]),
                     str(agg["global"]), str(agg["promoted"]),
                     f"{agg['weight']:.4g}", f"{agg['tr']:.4g}",
                     str(agg["committed"]), str(agg["rolled_back"]),
                     str(agg["skipped"]), str(agg["renominated"])])
    widths = [max(len(header[i]), max(len(row[i]) for row in rows))
              for i in range(len(header))]
    print("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    print("  ".join("-" * widths[i] for i in range(len(header))))
    for row in rows:
        print("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
    return 0


# Column order of the time-series CSV: epoch first, then the gauges in
# the order the runtime emits them, so plots line up across runs.
TIMESERIES_COLUMNS = [
    "epoch", "accesses", "misses_fast", "misses_slow",
    "slow_miss_fraction", "drain_misses_per_sec", "migration_bytes",
    "migration_ranges", "retries", "rollbacks", "migrate_sim_sec",
    "lookahead_staged", "lookahead_cancelled", "lookahead_overlap_sec",
    "fast_data_ratio", "optimize_wall_us",
]


def extract_timeseries(path, outdir):
    """Flatten an atmem-timeseries-v1 JSONL export into one CSV.

    The first line must be the schema header; every following line is one
    epoch object. Unknown keys are appended as extra columns so the CSV
    never silently drops data from a newer runtime.
    """
    samples = []
    declared = None
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"{path}:{line_no}: bad JSON: {err}", file=sys.stderr)
                return 1
            if line_no == 1:
                if rec.get("schema") != "atmem-timeseries-v1":
                    print(f"{path}: not an atmem-timeseries-v1 export "
                          f"(schema {rec.get('schema')!r})", file=sys.stderr)
                    return 1
                declared = rec.get("epochs")
                continue
            samples.append(rec)

    if not samples:
        print("no epoch samples found", file=sys.stderr)
        return 1
    if declared is not None and declared != len(samples):
        print(f"warning: header declared {declared} epochs, "
              f"found {len(samples)}", file=sys.stderr)

    columns = list(TIMESERIES_COLUMNS)
    for rec in samples:
        for key in rec:
            if key not in columns:
                columns.append(key)

    os.makedirs(outdir, exist_ok=True)
    out_path = os.path.join(
        outdir, sanitize(os.path.basename(path)) + ".csv")
    with open(out_path, "w", encoding="utf-8") as out:
        out.write(",".join(columns) + "\n")
        for rec in samples:
            out.write(",".join(str(rec.get(col, "")) for col in columns)
                      + "\n")
    last = samples[-1]
    print(f"wrote {out_path} ({len(samples)} epochs; final slow-miss "
          f"fraction {last.get('slow_miss_fraction', 'n/a')}, fast-data "
          f"ratio {last.get('fast_data_ratio', 'n/a')})")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("log", nargs="?", help="saved benchmark output")
    parser.add_argument("-o", "--outdir", default="results",
                        help="directory for the CSV files")
    parser.add_argument("--list", action="store_true",
                        help="only list the tables found")
    parser.add_argument("--decisions", metavar="JSONL",
                        help="decision-log JSONL export (atmem_explain "
                             "--jsonl); prints a per-object promotion "
                             "summary instead of table CSVs")
    parser.add_argument("--timeseries", metavar="JSONL",
                        help="per-epoch time-series export (atmem_run "
                             "--timeseries-out); writes one plotting-ready "
                             "CSV into the output directory")
    args = parser.parse_args()

    if args.decisions:
        return summarize_decisions(args.decisions)
    if args.timeseries:
        return extract_timeseries(args.timeseries, args.outdir)
    if not args.log:
        parser.error("either a benchmark log, --decisions, or --timeseries "
                     "is required")

    with open(args.log, encoding="utf-8", errors="replace") as fh:
        lines = fh.readlines()

    tables = list(find_tables(lines))
    if not tables:
        print("no tables found", file=sys.stderr)
        return 1

    if args.list:
        for title, header, rows in tables:
            print(f"{len(rows):4d} rows  {title}  [{', '.join(header)}]")
        return 0

    os.makedirs(args.outdir, exist_ok=True)
    used = {}
    for title, header, rows in tables:
        slug = sanitize(title)
        used[slug] = used.get(slug, 0) + 1
        if used[slug] > 1:
            slug = f"{slug}_{used[slug]}"
        path = os.path.join(args.outdir, slug + ".csv")
        with open(path, "w", encoding="utf-8") as out:
            out.write(",".join(header) + "\n")
            for row in rows:
                out.write(",".join(cell.replace(",", ";") for cell in row)
                          + "\n")
        print(f"wrote {path} ({len(rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
