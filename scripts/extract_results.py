#!/usr/bin/env python3
"""Extract machine-readable CSV from the benchmark harness output.

The figure/table benchmarks print aligned text tables (via
support/TablePrinter). This script slices a saved run log — e.g. the
repository's bench_output.txt — back into CSV files, one per table, so the
paper's figures can be re-plotted with any tool.

Usage:
    scripts/extract_results.py bench_output.txt -o results/
    scripts/extract_results.py bench_output.txt --list
"""

import argparse
import os
import re
import sys


def split_columns(header):
    """Return [(name, start, end)] column spans from an aligned header row.

    Columns are separated by runs of two or more spaces; each column's text
    may itself contain single spaces ("data ratio").
    """
    spans = []
    for match in re.finditer(r"\S+(?: \S+)*", header):
        spans.append((match.group(0), match.start(), match.end()))
    return spans


def slice_row(line, spans):
    """Split a table row using the header's column start offsets."""
    cells = []
    for idx, (_, start, _) in enumerate(spans):
        end = spans[idx + 1][1] if idx + 1 < len(spans) else len(line)
        cells.append(line[start:end].strip())
    return cells


def find_tables(lines):
    """Yield (title, header_cells, rows) for every table in the log.

    A table is a header line followed by a dashed rule; the nearest
    preceding banner or section line provides the title.
    """
    title = "untitled"
    i = 0
    while i < len(lines):
        line = lines[i].rstrip("\n")
        if line.startswith("Figure") or line.startswith("Table") or \
           line.startswith("Ablation") or line.startswith("Extension") or \
           line.startswith("Section") or line.startswith("["):
            title = line.strip("[]")
        if i + 1 < len(lines) and re.fullmatch(r"-{4,}", lines[i + 1].strip()) \
           and len(line.split()) >= 2:
            spans = split_columns(line)
            rows = []
            j = i + 2
            while j < len(lines):
                row = lines[j].rstrip("\n")
                if not row.strip() or row.startswith("=") or \
                   re.fullmatch(r"-{4,}", row.strip()):
                    break
                rows.append(slice_row(row, spans))
                j += 1
            yield title, [name for name, _, _ in spans], rows
            i = j
            continue
        i += 1


def sanitize(title):
    slug = re.sub(r"[^A-Za-z0-9]+", "_", title.lower()).strip("_")
    return slug[:60] or "table"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("log", help="saved benchmark output")
    parser.add_argument("-o", "--outdir", default="results",
                        help="directory for the CSV files")
    parser.add_argument("--list", action="store_true",
                        help="only list the tables found")
    args = parser.parse_args()

    with open(args.log, encoding="utf-8", errors="replace") as fh:
        lines = fh.readlines()

    tables = list(find_tables(lines))
    if not tables:
        print("no tables found", file=sys.stderr)
        return 1

    if args.list:
        for title, header, rows in tables:
            print(f"{len(rows):4d} rows  {title}  [{', '.join(header)}]")
        return 0

    os.makedirs(args.outdir, exist_ok=True)
    used = {}
    for title, header, rows in tables:
        slug = sanitize(title)
        used[slug] = used.get(slug, 0) + 1
        if used[slug] > 1:
            slug = f"{slug}_{used[slug]}"
        path = os.path.join(args.outdir, slug + ".csv")
        with open(path, "w", encoding="utf-8") as out:
            out.write(",".join(header) + "\n")
            for row in rows:
                out.write(",".join(cell.replace(",", ";") for cell in row)
                          + "\n")
        print(f"wrote {path} ({len(rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
