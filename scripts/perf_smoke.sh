#!/usr/bin/env sh
# Runs the hot-path microbenchmark in quick mode and leaves its JSON
# trajectory point at the repository root as BENCH_hotpath.json, so
# successive PRs (and the CI artifact) accumulate comparable numbers.
#
# Usage: scripts/perf_smoke.sh [build-dir]   (default: build)
set -eu

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH="$REPO_ROOT/$BUILD_DIR/bench/micro_hotpath"

if [ ! -x "$BENCH" ]; then
  echo "perf_smoke: $BENCH not built (cmake --build $BUILD_DIR --target micro_hotpath)" >&2
  exit 1
fi

OUT="$REPO_ROOT/BENCH_hotpath.json"
"$BENCH" --quick --json "$OUT" --trace-tmp "$REPO_ROOT/$BUILD_DIR/micro_hotpath.mtrace"

# Fail on malformed output, not on any perf number: CI runners are too
# noisy for thresholds, the artifact is for offline comparison.
python3 -m json.tool "$OUT" > /dev/null
echo "perf_smoke: wrote $OUT"
