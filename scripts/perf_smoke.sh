#!/usr/bin/env sh
# Runs the hot-path and lookahead microbenchmarks in quick mode and leaves
# their JSON trajectory points at the repository root as BENCH_hotpath.json
# and BENCH_lookahead.json, so successive PRs (and the CI artifacts)
# accumulate comparable numbers.
#
# Regression gate: if a committed BENCH_hotpath.json baseline exists and
# was recorded on the same host class (same cpu_model and
# host_hardware_threads — CI runners differ wildly, numbers only compare
# within a class), the run fails when the batched drain rate drops more
# than 20% below it. micro_hotpath repeats each section and reports
# min/median/max; the legacy scalar keys the gate reads carry the median,
# so old and new baselines stay comparable.
#
# Exit codes: 0 gate passed; 1 regression or harness failure; 42 skipped —
# no committed baseline, or the baseline is from a different host class,
# so there was nothing comparable to gate against (the new trajectory
# points are still written). CI treats 42 as success-without-gating.
#
# Usage: scripts/perf_smoke.sh [build-dir]   (default: build)
set -eu

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH="$REPO_ROOT/$BUILD_DIR/bench/micro_hotpath"
LOOKAHEAD="$REPO_ROOT/$BUILD_DIR/bench/micro_lookahead"

if [ ! -x "$BENCH" ]; then
  echo "perf_smoke: $BENCH not built (cmake --build $BUILD_DIR --target micro_hotpath)" >&2
  exit 1
fi

OUT="$REPO_ROOT/BENCH_hotpath.json"
BASELINE="$REPO_ROOT/$BUILD_DIR/perf_smoke_baseline.json"
rm -f "$BASELINE"
if [ -f "$OUT" ]; then
  cp "$OUT" "$BASELINE"
fi

# --sim-threads 2 is micro_hotpath's default, but the gate compares the
# sharded-drain configuration specifically, so pin it explicitly.
"$BENCH" --quick --sim-threads 2 --json "$OUT" --trace-tmp "$REPO_ROOT/$BUILD_DIR/micro_hotpath.mtrace"
python3 -m json.tool "$OUT" > /dev/null
echo "perf_smoke: wrote $OUT"

if [ -x "$LOOKAHEAD" ]; then
  LK_OUT="$REPO_ROOT/BENCH_lookahead.json"
  "$LOOKAHEAD" --quick --json "$LK_OUT"
  python3 -m json.tool "$LK_OUT" > /dev/null
  echo "perf_smoke: wrote $LK_OUT"
else
  echo "perf_smoke: $LOOKAHEAD not built, skipping lookahead point" >&2
fi

OBS="$REPO_ROOT/$BUILD_DIR/bench/micro_obs"
if [ -x "$OBS" ]; then
  OBS_OUT="$REPO_ROOT/BENCH_obs.json"
  "$OBS" --quick --json "$OBS_OUT"
  python3 -m json.tool "$OBS_OUT" > /dev/null
  echo "perf_smoke: wrote $OBS_OUT"
else
  echo "perf_smoke: $OBS not built, skipping decision-log sink point" >&2
fi

if [ ! -f "$BASELINE" ]; then
  echo "perf_smoke: no committed BENCH_hotpath.json baseline; skipping the" \
       "regression gate (exit 42)" >&2
  exit 42
fi

python3 - "$BASELINE" "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    base = json.load(f)
with open(sys.argv[2]) as f:
    new = json.load(f)

def host_class(doc):
    return (doc.get("cpu_model", "unknown"),
            doc.get("host_hardware_threads", 0))

if "unknown" in host_class(base) or host_class(base) != host_class(new):
    print("perf_smoke: baseline host class %r does not match this host; "
          "skipping the regression gate (exit 42)" % (host_class(base),),
          file=sys.stderr)
    sys.exit(42)

old = base["miss_drain"]["batched"]["misses_per_sec"]
cur = new["miss_drain"]["batched"]["misses_per_sec"]
floor = 0.8 * old
print("perf_smoke: batched drain %.0f/s vs baseline %.0f/s (floor %.0f/s)"
      % (cur, old, floor))
if cur < floor:
    print("perf_smoke: batched drain regressed more than 20%% below the "
          "committed baseline (git_sha %s)" % base.get("git_sha", "unknown"),
          file=sys.stderr)
    sys.exit(1)
EOF
