#!/usr/bin/env sh
# End-to-end learned-ranker pipeline over a freshly recorded planted
# workload: record a deterministic multi-epoch decision log, verify it
# replays with zero drift (exit 3 from atmem_replay fails the script),
# train an atmem-ranker-v1 model from it, and re-replay A/B under a
# budget that forces the policies apart. atmem_train already rejects any
# candidate losing to the Eq. 1-5 heuristic on next-epoch hit fraction
# or exceeding 1.1x its migration churn, so a successful run proves the
# full record -> train -> replay loop and the quality gates in one shot.
#
# The committed golden artifacts under tests/golden/ are checked too, so
# an analyzer change that drifts from the recorded placements fails here
# the same way it fails in ranker_tests.
#
# Usage: scripts/ranker_ab.sh [build-dir]   (default: build)
set -eu

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
RECORDER="$REPO_ROOT/$BUILD_DIR/examples/planted_recorder"
TRAIN="$REPO_ROOT/$BUILD_DIR/tools/atmem_train"
REPLAY="$REPO_ROOT/$BUILD_DIR/tools/atmem_replay"
WORK="$REPO_ROOT/$BUILD_DIR/ranker_ab"
# The planted workload's stable hot block (64 chunks) plus two: tight
# enough that selection order decides the next-epoch hit fraction.
BUDGET=$((66 * 4096))

for BIN in "$RECORDER" "$TRAIN" "$REPLAY"; do
  if [ ! -x "$BIN" ]; then
    echo "ranker_ab: $BIN not built" >&2
    exit 1
  fi
done
mkdir -p "$WORK"

echo "ranker_ab: replaying committed golden log (drift gate)"
"$REPLAY" "$REPO_ROOT/tests/golden/planted_hotset.atdl" \
  --model "$REPO_ROOT/tests/golden/ranker.json" --budget "$BUDGET"

echo "ranker_ab: recording fresh planted workload"
"$RECORDER" --out "$WORK/planted.atdl" --epochs 8 --seed 42 > /dev/null

echo "ranker_ab: drift-checking the fresh log"
"$REPLAY" "$WORK/planted.atdl" > /dev/null

echo "ranker_ab: training"
"$TRAIN" "$WORK/planted.atdl" --out "$WORK/ranker.json" --budget "$BUDGET"

echo "ranker_ab: A/B report"
"$REPLAY" "$WORK/planted.atdl" --model "$WORK/ranker.json" \
  --budget "$BUDGET"

echo "ranker_ab: all gates passed"
