#include "analyzer/Analyzer.h"

#include "obs/DecisionLog.h"
#include "obs/Telemetry.h"
#include "obs/Trace.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>
#include <utility>

using namespace atmem;
using namespace atmem::analyzer;

namespace {

/// Publishes one object's classification as telemetry gauges: the Eq. 2/3
/// threshold and its components, the Eq. 4 weight, the Eq. 5 adaptive
/// tree-ratio threshold, and the sampled-vs-estimated critical split. The
/// names are dynamic ("analyzer.obj.<object>.<field>"), so the id lookup
/// goes through the registry's name map — classify runs once per
/// optimize(), never on the access hot path.
void publishObjectMetrics(const std::string &ObjName,
                          const LocalSelection &Sel,
                          const PromotionResult &Promo) {
  double PrMax = 0.0;
  for (double PR : Sel.Priority)
    PrMax = std::max(PrMax, PR);
  const std::string Base = "analyzer.obj." + ObjName + ".";
  obs::Gauge(Base + "pr_max").set(PrMax);
  obs::Gauge(Base + "theta").set(Sel.Theta);
  obs::Gauge(Base + "theta_percentile").set(Sel.ThetaPercentile);
  obs::Gauge(Base + "theta_derivative").set(Sel.ThetaDerivative);
  obs::Gauge(Base + "theta_noise_floor").set(Sel.ThetaNoiseFloor);
  obs::Gauge(Base + "weight").set(Promo.Weight);
  obs::Gauge(Base + "tr_threshold").set(Promo.Threshold);
  obs::Gauge(Base + "chunks_sampled_critical").set(Sel.CriticalCount);
  obs::Gauge(Base + "chunks_estimated_critical").set(Promo.PromotedCount);
}

/// Emits one epoch's worth of decision-log records for every object: the
/// ObjectEpoch verdict (Eq. 2 components and winner, Eq. 4 weight and its
/// global rank, the Eq. 5 TR' as used) followed by one ChunkDecision per
/// informative chunk (sampled, critical, or promoted — cold chunks are
/// implied by their absence). \p GlobalFlipped marks the chunks the pooled
/// ranking stage flipped critical. When a learned ranker ran, the flags
/// written here are its final verdicts — the log records what the
/// pipeline decided, whichever policy decided it.
void recordDecisions(const std::vector<ObjectProfileInput> &Inputs,
                     const std::vector<LocalSelection> &Selections,
                     const std::vector<PromotionResult> &Promotions,
                     const std::vector<std::vector<uint8_t>> &GlobalFlipped,
                     uint64_t SamplePeriod) {
  obs::DecisionLog &Log = obs::DecisionLog::instance();

  // Global weight ranks: 1-based, descending weight among the objects
  // that carry any critical chunk (W > 0); ties rank by object order.
  uint32_t RankedObjects = 0;
  std::vector<uint32_t> Rank = rankerWeightRanks(Promotions, &RankedObjects);

  for (size_t I = 0; I < Inputs.size(); ++I) {
    const ObjectProfileInput &In = Inputs[I];
    const LocalSelection &Sel = Selections[I];
    const PromotionResult &Promo = Promotions[I];
    obs::ObjectEpochRecord Obj;
    Obj.Object = In.Object;
    Obj.NameId = Log.nameId(In.Name);
    Obj.NumChunks = static_cast<uint32_t>(Sel.Priority.size());
    Obj.ChunkBytes = In.ChunkBytes;
    Obj.SamplePeriod = SamplePeriod;
    Obj.Weight = Promo.Weight;
    Obj.WeightRank = Rank[I];
    Obj.RankedObjects = RankedObjects;
    Obj.TrThreshold = Promo.Threshold;
    Obj.Theta = Sel.Theta;
    Obj.ThetaPercentile = Sel.ThetaPercentile;
    Obj.ThetaDerivative = Sel.ThetaDerivative;
    Obj.ThetaNoiseFloor = Sel.ThetaNoiseFloor;
    Obj.Winner = static_cast<obs::ThetaWinner>(Sel.winningThetaTerm());
    Obj.SampledCritical = Sel.CriticalCount;
    Obj.PromotedCount = Promo.PromotedCount;
    Log.recordObject(Obj);

    const std::vector<uint64_t> &Samples = In.Samples;
    for (size_t C = 0; C < Sel.Priority.size(); ++C) {
      bool Flipped = !GlobalFlipped[I].empty() && GlobalFlipped[I][C];
      bool Critical = Sel.Critical[C] != 0;
      bool Promoted = !Promo.Promoted.empty() && Promo.Promoted[C];
      uint64_t SampleCount = C < Samples.size() ? Samples[C] : 0;
      if (SampleCount == 0 && !Critical && !Promoted)
        continue; // Cold chunk: implied by absence.
      obs::ChunkDecisionRecord Chunk;
      Chunk.Object = In.Object;
      Chunk.Chunk = static_cast<uint32_t>(C);
      Chunk.Samples = SampleCount;
      Chunk.EstimatedMisses =
          C < In.EstimatedMisses.size() ? In.EstimatedMisses[C] : 0.0;
      Chunk.Priority = Sel.Priority[C];
      if (Critical && !Flipped)
        Chunk.Flags |= obs::DecisionChunkSampledCritical;
      if (Flipped)
        Chunk.Flags |= obs::DecisionChunkGlobalRanked;
      if (Promoted)
        Chunk.Flags |= obs::DecisionChunkPromoted;
      Chunk.NodeTreeRatio =
          C < Promo.NodeTreeRatio.size() ? Promo.NodeTreeRatio[C] : 0.0;
      Log.recordChunk(Chunk);
    }
  }
}

} // namespace

std::vector<ObjectClassification>
Analyzer::classify(mem::DataObjectRegistry &Registry,
                   const prof::ProfileSource &Profiler) const {
  std::vector<const mem::DataObject *> Objects =
      std::as_const(Registry).liveObjects();
  std::vector<ObjectProfileInput> Inputs;
  Inputs.reserve(Objects.size());
  for (const mem::DataObject *Obj : Objects) {
    prof::ObjectProfile Profile = Profiler.profileFor(Obj->id());
    ObjectProfileInput In;
    In.Object = Obj->id();
    In.Name = Obj->name();
    In.ChunkBytes = Obj->chunkBytes();
    In.MappedBytes = Obj->mappedBytes();
    In.EstimatedMisses = std::move(Profile.EstimatedMisses);
    In.Samples = std::move(Profile.Samples);
    Inputs.push_back(std::move(In));
  }
  return classifyInputs(Inputs, Profiler.period());
}

std::vector<ObjectClassification>
Analyzer::classifyInputs(const std::vector<ObjectProfileInput> &Inputs,
                         uint64_t SamplePeriod) const {
  // Apply the selectivity bias to all three selection stages (the
  // Section 7.2 sensitivity sweep): the local percentile, the global
  // ranking threshold (below), and the promotion epsilon.
  LocalSelectorConfig LocalConfig = Config.Local;
  LocalConfig.PercentileN = std::clamp(
      LocalConfig.PercentileN + 40.0 * Config.SelectivityBias, 50.0, 99.5);
  LocalSelector Selector(LocalConfig);
  std::vector<ObjectClassification> Classes;

  obs::SpanScope ClassifySpan("analyzer.classify", "analyzer");

  // The flight recorder needs evidence classify() otherwise discards:
  // which chunks the global ranking flipped.
  const bool DecisionLogOn = obs::DecisionLog::enabled();
  const bool RankerActive = Config.Ranker != nullptr;
  std::vector<std::vector<uint8_t>> GlobalFlipped;

  std::vector<LocalSelection> Selections;
  Selections.reserve(Inputs.size());
  for (const ObjectProfileInput &In : Inputs)
    Selections.push_back(
        Selector.select(In.EstimatedMisses, In.ChunkBytes, SamplePeriod));
  if (DecisionLogOn)
    GlobalFlipped.resize(Selections.size());

  if (Config.UseGlobalRanking) {
    // Pool every sampled chunk's log density; a 2-means split separates
    // the globally hot cluster. Log scale keeps the power-law head of the
    // hottest object from hiding moderately hot whole objects.
    std::vector<double> PooledLog;
    for (const LocalSelection &Sel : Selections)
      for (double PR : Sel.Priority)
        if (PR > 0.0)
          PooledLog.push_back(std::log(PR));
    if (PooledLog.size() >= 2) {
      // Compare in log space: round-tripping through exp() would move
      // the threshold by an ulp and miss exactly-equal densities.
      double GlobalLogTheta = twoMeansThreshold(PooledLog);
      if (Config.SelectivityBias != 0.0) {
        auto [MinIt, MaxIt] =
            std::minmax_element(PooledLog.begin(), PooledLog.end());
        GlobalLogTheta += Config.SelectivityBias * (*MaxIt - *MinIt);
      }
      for (size_t I = 0; I < Selections.size(); ++I) {
        LocalSelection &Sel = Selections[I];
        for (size_t C = 0; C < Sel.Priority.size(); ++C)
          if (!Sel.Critical[C] && Sel.Priority[C] > 0.0 &&
              std::log(Sel.Priority[C]) >= GlobalLogTheta) {
            Sel.Critical[C] = 1;
            ++Sel.CriticalCount;
            if (DecisionLogOn) {
              if (GlobalFlipped[I].empty())
                GlobalFlipped[I].assign(Sel.Priority.size(), 0);
              GlobalFlipped[I][C] = 1;
            }
          }
      }
    }
  }

  PromoterConfig PromoterCfg = Config.Promoter;
  PromoterCfg.EpsilonOffset += Config.SelectivityBias;
  GlobalPromoter Promoter(PromoterCfg);
  std::vector<PromotionResult> Promotions;
  if (Config.EnablePromotion) {
    // Node tracing feeds both the flight recorder and the ranker's
    // node_tree_ratio feature; promotion decisions are identical with it
    // on or off.
    Promotions = Promoter.promoteAll(Selections, DecisionLogOn || RankerActive);
  } else {
    Promotions.resize(Selections.size());
    for (size_t I = 0; I < Selections.size(); ++I) {
      Promotions[I].Promoted.assign(Selections[I].Critical.size(), 0);
      Promotions[I].Weight = GlobalPromoter::objectWeight(Selections[I]);
    }
  }

  // Learned-ranker re-scoring: every heuristic verdict above is input to
  // the model, and the model's decisions land back in the same flags, so
  // planning, migration, telemetry and the flight recorder all see one
  // consistent selection. Never entered without a configured model — the
  // heuristic path stays bit-identical.
  if (RankerActive) {
    std::vector<std::vector<uint64_t>> SampleVecs;
    std::vector<std::vector<double>> MissVecs;
    std::vector<uint64_t> ChunkBytesVec;
    SampleVecs.reserve(Inputs.size());
    MissVecs.reserve(Inputs.size());
    ChunkBytesVec.reserve(Inputs.size());
    for (const ObjectProfileInput &In : Inputs) {
      SampleVecs.push_back(In.Samples);
      MissVecs.push_back(In.EstimatedMisses);
      ChunkBytesVec.push_back(In.ChunkBytes);
    }
    RankerPolicy Policy(*Config.Ranker);
    Policy.apply(Selections, Promotions, SampleVecs, MissVecs, ChunkBytesVec,
                 DecisionLogOn ? &GlobalFlipped : nullptr);
  }

  if (DecisionLogOn)
    recordDecisions(Inputs, Selections, Promotions, GlobalFlipped,
                    SamplePeriod);

  uint64_t SampledCritical = 0;
  uint64_t EstimatedCritical = 0;
  Classes.reserve(Inputs.size());
  for (size_t I = 0; I < Inputs.size(); ++I) {
    if (obs::enabled()) {
      publishObjectMetrics(Inputs[I].Name, Selections[I], Promotions[I]);
      SampledCritical += Selections[I].CriticalCount;
      EstimatedCritical += Promotions[I].PromotedCount;
    }
    ObjectClassification Class;
    Class.Object = Inputs[I].Object;
    Class.ChunkBytes = Inputs[I].ChunkBytes;
    Class.MappedBytes = Inputs[I].MappedBytes;
    Class.Local = std::move(Selections[I]);
    Class.Promotion = std::move(Promotions[I]);
    Classes.push_back(std::move(Class));
  }
  if (obs::enabled()) {
    static obs::Counter Runs("analyzer.runs");
    static obs::Counter Sampled("analyzer.chunks_sampled_critical");
    static obs::Counter Estimated("analyzer.chunks_estimated_critical");
    Runs.add(1);
    Sampled.add(SampledCritical);
    Estimated.add(EstimatedCritical);
    ClassifySpan.arg("objects", static_cast<double>(Inputs.size()))
        .arg("chunks_sampled_critical", static_cast<double>(SampledCritical))
        .arg("chunks_estimated_critical",
             static_cast<double>(EstimatedCritical));
  }
  return Classes;
}

PlacementPlan Analyzer::plan(mem::DataObjectRegistry &Registry,
                             const prof::ProfileSource &Profiler,
                             uint64_t BudgetBytes) const {
  return PlanBuilder::build(classify(Registry, Profiler), BudgetBytes);
}
