#include "analyzer/Analyzer.h"

#include "support/Statistics.h"

#include <algorithm>
#include <cmath>
#include <utility>

using namespace atmem;
using namespace atmem::analyzer;

std::vector<ObjectClassification>
Analyzer::classify(mem::DataObjectRegistry &Registry,
                   const prof::ProfileSource &Profiler) const {
  // Apply the selectivity bias to all three selection stages (the
  // Section 7.2 sensitivity sweep): the local percentile, the global
  // ranking threshold (below), and the promotion epsilon.
  LocalSelectorConfig LocalConfig = Config.Local;
  LocalConfig.PercentileN = std::clamp(
      LocalConfig.PercentileN + 40.0 * Config.SelectivityBias, 50.0, 99.5);
  LocalSelector Selector(LocalConfig);
  std::vector<ObjectClassification> Classes;

  std::vector<LocalSelection> Selections;
  std::vector<const mem::DataObject *> Objects =
      std::as_const(Registry).liveObjects();
  for (const mem::DataObject *Obj : Objects) {
    prof::ObjectProfile Profile = Profiler.profileFor(Obj->id());
    Selections.push_back(Selector.select(Profile.EstimatedMisses,
                                         Obj->chunkBytes(),
                                         Profiler.period()));
  }

  if (Config.UseGlobalRanking) {
    // Pool every sampled chunk's log density; a 2-means split separates
    // the globally hot cluster. Log scale keeps the power-law head of the
    // hottest object from hiding moderately hot whole objects.
    std::vector<double> PooledLog;
    for (const LocalSelection &Sel : Selections)
      for (double PR : Sel.Priority)
        if (PR > 0.0)
          PooledLog.push_back(std::log(PR));
    if (PooledLog.size() >= 2) {
      // Compare in log space: round-tripping through exp() would move
      // the threshold by an ulp and miss exactly-equal densities.
      double GlobalLogTheta = twoMeansThreshold(PooledLog);
      if (Config.SelectivityBias != 0.0) {
        auto [MinIt, MaxIt] =
            std::minmax_element(PooledLog.begin(), PooledLog.end());
        GlobalLogTheta += Config.SelectivityBias * (*MaxIt - *MinIt);
      }
      for (LocalSelection &Sel : Selections)
        for (size_t C = 0; C < Sel.Priority.size(); ++C)
          if (!Sel.Critical[C] && Sel.Priority[C] > 0.0 &&
              std::log(Sel.Priority[C]) >= GlobalLogTheta) {
            Sel.Critical[C] = 1;
            ++Sel.CriticalCount;
          }
    }
  }

  PromoterConfig PromoterCfg = Config.Promoter;
  PromoterCfg.EpsilonOffset += Config.SelectivityBias;
  GlobalPromoter Promoter(PromoterCfg);
  std::vector<PromotionResult> Promotions;
  if (Config.EnablePromotion) {
    Promotions = Promoter.promoteAll(Selections);
  } else {
    Promotions.resize(Selections.size());
    for (size_t I = 0; I < Selections.size(); ++I) {
      Promotions[I].Promoted.assign(Selections[I].Critical.size(), 0);
      Promotions[I].Weight = GlobalPromoter::objectWeight(Selections[I]);
    }
  }

  Classes.reserve(Objects.size());
  for (size_t I = 0; I < Objects.size(); ++I) {
    ObjectClassification Class;
    Class.Object = Objects[I]->id();
    Class.ChunkBytes = Objects[I]->chunkBytes();
    Class.MappedBytes = Objects[I]->mappedBytes();
    Class.Local = std::move(Selections[I]);
    Class.Promotion = std::move(Promotions[I]);
    Classes.push_back(std::move(Class));
  }
  return Classes;
}

PlacementPlan Analyzer::plan(mem::DataObjectRegistry &Registry,
                             const prof::ProfileSource &Profiler,
                             uint64_t BudgetBytes) const {
  return PlanBuilder::build(classify(Registry, Profiler), BudgetBytes);
}
