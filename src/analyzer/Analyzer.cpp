#include "analyzer/Analyzer.h"

#include "obs/Telemetry.h"
#include "obs/Trace.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>
#include <utility>

using namespace atmem;
using namespace atmem::analyzer;

namespace {

/// Publishes one object's classification as telemetry gauges: the Eq. 2/3
/// threshold and its components, the Eq. 4 weight, the Eq. 5 adaptive
/// tree-ratio threshold, and the sampled-vs-estimated critical split. The
/// names are dynamic ("analyzer.obj.<object>.<field>"), so the id lookup
/// goes through the registry's name map — classify runs once per
/// optimize(), never on the access hot path.
void publishObjectMetrics(const std::string &ObjName,
                          const LocalSelection &Sel,
                          const PromotionResult &Promo) {
  double PrMax = 0.0;
  for (double PR : Sel.Priority)
    PrMax = std::max(PrMax, PR);
  const std::string Base = "analyzer.obj." + ObjName + ".";
  obs::Gauge(Base + "pr_max").set(PrMax);
  obs::Gauge(Base + "theta").set(Sel.Theta);
  obs::Gauge(Base + "theta_percentile").set(Sel.ThetaPercentile);
  obs::Gauge(Base + "theta_derivative").set(Sel.ThetaDerivative);
  obs::Gauge(Base + "theta_noise_floor").set(Sel.ThetaNoiseFloor);
  obs::Gauge(Base + "weight").set(Promo.Weight);
  obs::Gauge(Base + "tr_threshold").set(Promo.Threshold);
  obs::Gauge(Base + "chunks_sampled_critical").set(Sel.CriticalCount);
  obs::Gauge(Base + "chunks_estimated_critical").set(Promo.PromotedCount);
}

} // namespace

std::vector<ObjectClassification>
Analyzer::classify(mem::DataObjectRegistry &Registry,
                   const prof::ProfileSource &Profiler) const {
  // Apply the selectivity bias to all three selection stages (the
  // Section 7.2 sensitivity sweep): the local percentile, the global
  // ranking threshold (below), and the promotion epsilon.
  LocalSelectorConfig LocalConfig = Config.Local;
  LocalConfig.PercentileN = std::clamp(
      LocalConfig.PercentileN + 40.0 * Config.SelectivityBias, 50.0, 99.5);
  LocalSelector Selector(LocalConfig);
  std::vector<ObjectClassification> Classes;

  obs::SpanScope ClassifySpan("analyzer.classify", "analyzer");

  std::vector<LocalSelection> Selections;
  std::vector<const mem::DataObject *> Objects =
      std::as_const(Registry).liveObjects();
  for (const mem::DataObject *Obj : Objects) {
    prof::ObjectProfile Profile = Profiler.profileFor(Obj->id());
    Selections.push_back(Selector.select(Profile.EstimatedMisses,
                                         Obj->chunkBytes(),
                                         Profiler.period()));
  }

  if (Config.UseGlobalRanking) {
    // Pool every sampled chunk's log density; a 2-means split separates
    // the globally hot cluster. Log scale keeps the power-law head of the
    // hottest object from hiding moderately hot whole objects.
    std::vector<double> PooledLog;
    for (const LocalSelection &Sel : Selections)
      for (double PR : Sel.Priority)
        if (PR > 0.0)
          PooledLog.push_back(std::log(PR));
    if (PooledLog.size() >= 2) {
      // Compare in log space: round-tripping through exp() would move
      // the threshold by an ulp and miss exactly-equal densities.
      double GlobalLogTheta = twoMeansThreshold(PooledLog);
      if (Config.SelectivityBias != 0.0) {
        auto [MinIt, MaxIt] =
            std::minmax_element(PooledLog.begin(), PooledLog.end());
        GlobalLogTheta += Config.SelectivityBias * (*MaxIt - *MinIt);
      }
      for (LocalSelection &Sel : Selections)
        for (size_t C = 0; C < Sel.Priority.size(); ++C)
          if (!Sel.Critical[C] && Sel.Priority[C] > 0.0 &&
              std::log(Sel.Priority[C]) >= GlobalLogTheta) {
            Sel.Critical[C] = 1;
            ++Sel.CriticalCount;
          }
    }
  }

  PromoterConfig PromoterCfg = Config.Promoter;
  PromoterCfg.EpsilonOffset += Config.SelectivityBias;
  GlobalPromoter Promoter(PromoterCfg);
  std::vector<PromotionResult> Promotions;
  if (Config.EnablePromotion) {
    Promotions = Promoter.promoteAll(Selections);
  } else {
    Promotions.resize(Selections.size());
    for (size_t I = 0; I < Selections.size(); ++I) {
      Promotions[I].Promoted.assign(Selections[I].Critical.size(), 0);
      Promotions[I].Weight = GlobalPromoter::objectWeight(Selections[I]);
    }
  }

  uint64_t SampledCritical = 0;
  uint64_t EstimatedCritical = 0;
  Classes.reserve(Objects.size());
  for (size_t I = 0; I < Objects.size(); ++I) {
    if (obs::enabled()) {
      publishObjectMetrics(Objects[I]->name(), Selections[I], Promotions[I]);
      SampledCritical += Selections[I].CriticalCount;
      EstimatedCritical += Promotions[I].PromotedCount;
    }
    ObjectClassification Class;
    Class.Object = Objects[I]->id();
    Class.ChunkBytes = Objects[I]->chunkBytes();
    Class.MappedBytes = Objects[I]->mappedBytes();
    Class.Local = std::move(Selections[I]);
    Class.Promotion = std::move(Promotions[I]);
    Classes.push_back(std::move(Class));
  }
  if (obs::enabled()) {
    static obs::Counter Runs("analyzer.runs");
    static obs::Counter Sampled("analyzer.chunks_sampled_critical");
    static obs::Counter Estimated("analyzer.chunks_estimated_critical");
    Runs.add(1);
    Sampled.add(SampledCritical);
    Estimated.add(EstimatedCritical);
    ClassifySpan.arg("objects", static_cast<double>(Objects.size()))
        .arg("chunks_sampled_critical", static_cast<double>(SampledCritical))
        .arg("chunks_estimated_critical",
             static_cast<double>(EstimatedCritical));
  }
  return Classes;
}

PlacementPlan Analyzer::plan(mem::DataObjectRegistry &Registry,
                             const prof::ProfileSource &Profiler,
                             uint64_t BudgetBytes) const {
  return PlanBuilder::build(classify(Registry, Profiler), BudgetBytes);
}
