//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete ATMem analyzer: hybrid local selection followed by
/// tree-based global promotion, producing a budget-constrained placement
/// plan (paper Section 3's middle component).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_ANALYZER_ANALYZER_H
#define ATMEM_ANALYZER_ANALYZER_H

#include "analyzer/GlobalPromoter.h"
#include "analyzer/LocalSelector.h"
#include "analyzer/PlacementPlan.h"
#include "analyzer/RankerPolicy.h"
#include "mem/DataObjectRegistry.h"
#include "profiler/ProfileSource.h"

#include <memory>
#include <string>

namespace atmem {
namespace analyzer {

/// Registry-independent classification input for one object: everything
/// the analyzer needs, decoupled from live DataObject / ProfileSource
/// instances. classify() builds these from the registry and profiler;
/// the replay harness (ReplayHarness.h) reconstructs them from recorded
/// atdl decision logs, so both paths run the identical pipeline.
struct ObjectProfileInput {
  mem::ObjectId Object = 0;
  std::string Name;
  uint64_t ChunkBytes = 0;
  uint64_t MappedBytes = 0;
  /// The profiler's per-chunk unbiased miss estimates (Eq. 1 numerator).
  std::vector<double> EstimatedMisses;
  /// Raw per-chunk sample hits (flight-recorder evidence + ranker input).
  std::vector<uint64_t> Samples;
};

/// Analyzer configuration: both stages plus plan constraints.
struct AnalyzerConfig {
  LocalSelectorConfig Local;
  PromoterConfig Promoter;
  /// Disables the promotion stage entirely (sampled selection only); used
  /// by the ablation baseline.
  bool EnablePromotion = true;
  /// Global relative ranking across objects (Section 3): chunk priorities
  /// are byte-normalized (Eq. 1) exactly so they compare across objects;
  /// a pooled two-cluster split of all chunks' log densities adds any
  /// chunk in the globally hot cluster to the sampled selection, even if
  /// its own object's local percentile missed it (e.g. a small, uniformly
  /// hot vertex-property array next to a huge edge array).
  bool UseGlobalRanking = true;
  /// The Section 7.2 sweep knob: biases every selection threshold at
  /// once. Positive values tighten the local percentile, raise the
  /// global ranking threshold, and raise the tree-ratio epsilon (less
  /// data placed); negative values loosen all three (more data placed).
  /// Zero is ATMem's autonomous operating point.
  double SelectivityBias = 0.0;
  /// Path to an atmem-ranker-v1 JSON model file. Loaded once by the
  /// Runtime constructor (or a tool) into Ranker below; a load failure
  /// bumps "ranker.model_load_failed" and leaves the heuristic active.
  /// Empty (the default) keeps the Eq. 1-5 path bit-identical.
  std::string RankerModelPath;
  /// The active learned model. When set, every heuristic verdict is
  /// re-scored by RankerPolicy after the Eq. 1-5 pipeline runs; when
  /// null, the apply step is never entered.
  std::shared_ptr<const RankerModel> Ranker;
};

/// Runs the two analyzer stages over the profiler's results.
class Analyzer {
public:
  explicit Analyzer(AnalyzerConfig Config = {}) : Config(Config) {}

  /// Classifies every live object of \p Registry from \p Profiler's
  /// miss estimates. Works with any ProfileSource: the online sampling
  /// profiler or a trace-driven offline profiler; the source's period()
  /// feeds Eq. 2's noise floor.
  std::vector<ObjectClassification>
  classify(mem::DataObjectRegistry &Registry,
           const prof::ProfileSource &Profiler) const;

  /// The registry-independent pipeline behind classify(): local selection
  /// (Eq. 1-3), pooled global ranking, tree promotion (Eq. 4-5), the
  /// optional learned-ranker re-scoring, and flight-recorder emission,
  /// over plain per-object inputs. classify() delegates here; the replay
  /// harness calls it directly on inputs reconstructed from a decision
  /// log. \p SamplePeriod is the profiler's final sampling period (Eq. 2
  /// noise floor).
  std::vector<ObjectClassification>
  classifyInputs(const std::vector<ObjectProfileInput> &Inputs,
                 uint64_t SamplePeriod) const;

  /// Classifies and builds a plan fitting \p BudgetBytes on the fast tier.
  PlacementPlan plan(mem::DataObjectRegistry &Registry,
                     const prof::ProfileSource &Profiler,
                     uint64_t BudgetBytes) const;

  const AnalyzerConfig &config() const { return Config; }
  AnalyzerConfig &config() { return Config; }

private:
  AnalyzerConfig Config;
};

} // namespace analyzer
} // namespace atmem

#endif // ATMEM_ANALYZER_ANALYZER_H
