//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete ATMem analyzer: hybrid local selection followed by
/// tree-based global promotion, producing a budget-constrained placement
/// plan (paper Section 3's middle component).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_ANALYZER_ANALYZER_H
#define ATMEM_ANALYZER_ANALYZER_H

#include "analyzer/GlobalPromoter.h"
#include "analyzer/LocalSelector.h"
#include "analyzer/PlacementPlan.h"
#include "mem/DataObjectRegistry.h"
#include "profiler/ProfileSource.h"

namespace atmem {
namespace analyzer {

/// Analyzer configuration: both stages plus plan constraints.
struct AnalyzerConfig {
  LocalSelectorConfig Local;
  PromoterConfig Promoter;
  /// Disables the promotion stage entirely (sampled selection only); used
  /// by the ablation baseline.
  bool EnablePromotion = true;
  /// Global relative ranking across objects (Section 3): chunk priorities
  /// are byte-normalized (Eq. 1) exactly so they compare across objects;
  /// a pooled two-cluster split of all chunks' log densities adds any
  /// chunk in the globally hot cluster to the sampled selection, even if
  /// its own object's local percentile missed it (e.g. a small, uniformly
  /// hot vertex-property array next to a huge edge array).
  bool UseGlobalRanking = true;
  /// The Section 7.2 sweep knob: biases every selection threshold at
  /// once. Positive values tighten the local percentile, raise the
  /// global ranking threshold, and raise the tree-ratio epsilon (less
  /// data placed); negative values loosen all three (more data placed).
  /// Zero is ATMem's autonomous operating point.
  double SelectivityBias = 0.0;
};

/// Runs the two analyzer stages over the profiler's results.
class Analyzer {
public:
  explicit Analyzer(AnalyzerConfig Config = {}) : Config(Config) {}

  /// Classifies every live object of \p Registry from \p Profiler's
  /// miss estimates. Works with any ProfileSource: the online sampling
  /// profiler or a trace-driven offline profiler; the source's period()
  /// feeds Eq. 2's noise floor.
  std::vector<ObjectClassification>
  classify(mem::DataObjectRegistry &Registry,
           const prof::ProfileSource &Profiler) const;

  /// Classifies and builds a plan fitting \p BudgetBytes on the fast tier.
  PlacementPlan plan(mem::DataObjectRegistry &Registry,
                     const prof::ProfileSource &Profiler,
                     uint64_t BudgetBytes) const;

  const AnalyzerConfig &config() const { return Config; }
  AnalyzerConfig &config() { return Config; }

private:
  AnalyzerConfig Config;
};

} // namespace analyzer
} // namespace atmem

#endif // ATMEM_ANALYZER_ANALYZER_H
