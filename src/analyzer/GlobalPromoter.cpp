#include "analyzer/GlobalPromoter.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace atmem;
using namespace atmem::analyzer;

double GlobalPromoter::objectWeight(const LocalSelection &Selection) {
  double Sum = 0.0;
  uint64_t Count = 0;
  for (size_t I = 0; I < Selection.Critical.size(); ++I) {
    if (!Selection.Critical[I])
      continue;
    Sum += Selection.Priority[I];
    ++Count;
  }
  return Count == 0 ? 0.0 : Sum / static_cast<double>(Count);
}

std::vector<double>
GlobalPromoter::adaptiveThresholds(const std::vector<double> &Weights) const {
  std::vector<double> Thresholds(Weights.size(), 2.0);
  double Eps = 1.0 / static_cast<double>(Config.Arity) + Config.EpsilonOffset;

  double MinW = 0.0, MaxW = 0.0;
  bool Any = false;
  for (double W : Weights) {
    if (W <= 0.0)
      continue;
    if (!Any) {
      MinW = MaxW = W;
      Any = true;
    } else {
      MinW = std::min(MinW, W);
      MaxW = std::max(MaxW, W);
    }
  }
  if (!Any)
    return Thresholds;

  for (size_t I = 0; I < Weights.size(); ++I) {
    double W = Weights[I];
    if (W <= 0.0)
      continue; // No critical chunks: never promotes.
    // Eq. 5. The weight space ||minW - maxW|| degenerates when a single
    // object dominates the profile; the midpoint keeps the threshold
    // well-defined in that case.
    double Norm = MaxW > MinW ? (MaxW - W) / (MaxW - MinW) : 0.5;
    Thresholds[I] = Eps + Config.ThetaTR * Norm;
  }
  return Thresholds;
}

PromotionResult GlobalPromoter::promote(const LocalSelection &Selection,
                                        double Threshold,
                                        bool TraceNodes) const {
  PromotionResult Result;
  size_t N = Selection.Critical.size();
  Result.Promoted.assign(N, 0);
  Result.Threshold = Threshold;
  Result.Weight = objectWeight(Selection);
  if (N == 0 || Selection.CriticalCount == 0 || Threshold > 1.0)
    return Result;

  MaryTree Tree(Selection.Critical, Config.Arity);
  if (TraceNodes)
    Result.NodeTreeRatio.assign(N, 0.0);

  // Breadth-first search from the root: the first node on each path whose
  // tree ratio clears the threshold has its whole leaf range promoted —
  // "patching up" its gaps into one continuous region (Figure 3c). Nodes
  // below the threshold descend so deeper dense pockets still qualify.
  std::deque<uint32_t> Queue;
  Queue.push_back(Tree.root());
  while (!Queue.empty()) {
    uint32_t Id = Queue.front();
    Queue.pop_front();
    const MaryTree::Node &Node = Tree.node(Id);
    if (TraceNodes) {
      // Each examined node overwrites its leaf range, so every chunk ends
      // with the TR of the deepest node the walk reached above it: the
      // promoting node for promoted chunks, the last node that failed the
      // threshold (or carried no critical leaf) otherwise.
      double TR = Tree.treeRatio(Id);
      for (uint32_t Leaf = Node.LeafBegin; Leaf < Node.LeafEnd; ++Leaf)
        Result.NodeTreeRatio[Leaf] = TR;
    }
    if (Node.Value == 0)
      continue; // Nothing critical beneath: never promote.
    if (Tree.treeRatio(Id) >= Threshold) {
      for (uint32_t Leaf = Node.LeafBegin; Leaf < Node.LeafEnd; ++Leaf) {
        if (!Selection.Critical[Leaf] && !Result.Promoted[Leaf]) {
          Result.Promoted[Leaf] = 1;
          ++Result.PromotedCount;
        }
      }
      continue;
    }
    if (!Node.isLeaf())
      for (uint32_t C = 0; C < Node.NumChildren; ++C)
        Queue.push_back(Node.FirstChild + C);
  }
  return Result;
}

std::vector<PromotionResult> GlobalPromoter::promoteAll(
    const std::vector<LocalSelection> &Selections, bool TraceNodes) const {
  std::vector<double> Weights;
  Weights.reserve(Selections.size());
  for (const LocalSelection &Sel : Selections)
    Weights.push_back(objectWeight(Sel));
  std::vector<double> Thresholds = adaptiveThresholds(Weights);

  std::vector<PromotionResult> Results;
  Results.reserve(Selections.size());
  for (size_t I = 0; I < Selections.size(); ++I)
    Results.push_back(promote(Selections[I], Thresholds[I], TraceNodes));
  return Results;
}
