//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tree-based global promotion — the analyzer's second stage (paper
/// Section 4.3, Eq. 4-5). Each object is weighted by the averaged priority
/// of its sampled-critical chunks,
///
///   W(DO_i) = sum(PR * CAT) / sum(CAT)                          (Eq. 4)
///
/// and receives a tree-ratio threshold adapted by its global rank:
///
///   TR'_i = eps + thetaTR * (maxW - W_i) / ||minW - maxW||      (Eq. 5)
///
/// so objects holding few, very hot chunks (large W) get a *lower*
/// threshold and promote more aggressively. A top-down breadth-first walk
/// then finds internal nodes whose tree ratio clears the threshold and
/// promotes every non-critical chunk beneath them to *estimated critical*,
/// patching sampling gaps and merging discrete segments into contiguous
/// migration ranges.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_ANALYZER_GLOBALPROMOTER_H
#define ATMEM_ANALYZER_GLOBALPROMOTER_H

#include "analyzer/LocalSelector.h"
#include "analyzer/MaryTree.h"

#include <cstdint>
#include <vector>

namespace atmem {
namespace analyzer {

/// Tuning of the promotion stage.
struct PromoterConfig {
  /// Arity m of the promotion trees. Larger arity gives internal nodes a
  /// finer-grained tree-ratio scale and a lower theoretical threshold
  /// floor eps = 1/m (Section 4.3.1; the paper's octree example).
  uint32_t Arity = 8;
  /// The thetaTR scale of Eq. 5: how far above eps the threshold of the
  /// globally least important object sits.
  double ThetaTR = 0.5;
  /// Additive offset of Eq. 5's eps term on top of the theoretical
  /// minimum 1/m. Sweeping this value moves the selected data ratio
  /// (the paper's Section 7.2 sensitivity experiment sweeps eps).
  double EpsilonOffset = 0.0;
};

/// Classification of one object after promotion.
struct PromotionResult {
  /// 1 for chunks promoted by the tree walk (estimated critical). Sampled
  /// critical chunks keep their flag in LocalSelection::Critical.
  std::vector<uint8_t> Promoted;
  /// The adapted threshold TR' this object used.
  double Threshold = 1.0;
  /// Object weight W (Eq. 4); 0 when the object has no critical chunk.
  double Weight = 0.0;
  uint32_t PromotedCount = 0;
  /// Per-chunk provenance (only when promote() ran with TraceNodes): the
  /// tree ratio of the deepest node the BFS examined that covers each
  /// chunk — the promoting node's TR for promoted chunks, the blocking
  /// node's TR otherwise. Empty when tracing was off or the walk never
  /// ran (no critical chunks, or TR' > 1).
  std::vector<double> NodeTreeRatio;
};

/// Runs Eq. 4-5 across all objects and the top-down walk per object.
class GlobalPromoter {
public:
  explicit GlobalPromoter(PromoterConfig Config = {}) : Config(Config) {}

  /// Computes Eq. 4 for one object's local selection.
  static double objectWeight(const LocalSelection &Selection);

  /// Computes the per-object thresholds TR' (Eq. 5) given all weights.
  /// Objects with zero weight (no critical chunks) receive threshold > 1
  /// so they never promote.
  std::vector<double>
  adaptiveThresholds(const std::vector<double> &Weights) const;

  /// Top-down BFS promotion (Section 4.3.3) of one object. \p Selection is
  /// the object's local selection; the returned Promoted vector marks
  /// chunks added by the walk. \p TraceNodes additionally fills
  /// PromotionResult::NodeTreeRatio with per-chunk promotion provenance
  /// for the decision log (identical promotion decisions either way).
  PromotionResult promote(const LocalSelection &Selection, double Threshold,
                          bool TraceNodes = false) const;

  /// Convenience: full pipeline over all objects.
  std::vector<PromotionResult>
  promoteAll(const std::vector<LocalSelection> &Selections,
             bool TraceNodes = false) const;

  const PromoterConfig &config() const { return Config; }

private:
  PromoterConfig Config;
};

} // namespace analyzer
} // namespace atmem

#endif // ATMEM_ANALYZER_GLOBALPROMOTER_H
