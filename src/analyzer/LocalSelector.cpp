#include "analyzer/LocalSelector.h"

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>

using namespace atmem;
using namespace atmem::analyzer;

LocalSelection LocalSelector::select(
    const std::vector<double> &EstimatedMisses, uint64_t ChunkBytes,
    uint64_t SamplePeriod) const {
  assert(ChunkBytes > 0 && "chunk size must be positive");
  LocalSelection Result;
  size_t N = EstimatedMisses.size();
  Result.Priority.resize(N);
  Result.Critical.assign(N, 0);
  if (N == 0)
    return Result;

  auto Bytes = static_cast<double>(ChunkBytes);
  for (size_t I = 0; I < N; ++I)
    Result.Priority[I] = EstimatedMisses[I] / Bytes;

  // Only chunks that received any sample participate in threshold
  // selection; the sea of untouched chunks would otherwise drag the
  // percentile to zero and select everything.
  std::vector<double> NonZero;
  NonZero.reserve(N);
  for (double PR : Result.Priority)
    if (PR > 0.0)
      NonZero.push_back(PR);
  if (NonZero.empty())
    return Result;

  // Local selection stays deliberately conservative: the percentile P_n
  // over the whole chunk population (zeros included — a lone sampled
  // chunk in an otherwise untouched object is real intra-object
  // contrast), tightened by the 2-means cut when the non-zero
  // distribution is genuinely bimodal (Section 4.2's "highly skewed"
  // case, where the second N% of chunks buys nothing). The opposite case
  // — a relatively even distribution where more than N% deserves fast
  // memory — is handled by the *global* stages: pooled cross-object
  // ranking and tree promotion, which can lift a uniformly hot object
  // wholesale.
  double Theta = percentile(Result.Priority, Config.PercentileN);
  Result.ThetaPercentile = Theta;
  if (Config.UseDerivativeCut && NonZero.size() >= 2) {
    TwoMeansResult Clusters = twoMeansClusters(NonZero);
    if (Clusters.separation() >= Config.StrongSeparation) {
      Result.ThetaDerivative = Clusters.Threshold;
      Theta = std::max(Theta, Clusters.Threshold);
    }
  }
  // Noise floor: a chunk estimate below MinSamples * period is
  // indistinguishable from sampling noise (Eq. 2's minPR / F_sample term).
  double Floor =
      Config.MinSamples * static_cast<double>(SamplePeriod) / Bytes;
  Result.ThetaNoiseFloor = Floor;
  Theta = std::max(Theta, Floor);

  Result.Theta = Theta;
  // Eq. 3 uses a strict comparison: a chunk must exceed the threshold.
  // An exactly uniform object therefore selects nothing *locally* — by
  // itself it carries no intra-object contrast — and whole-object
  // placement decisions fall to the global ranking stage, which sees its
  // density in cross-object context.
  for (size_t I = 0; I < N; ++I) {
    if (Result.Priority[I] > Theta) {
      Result.Critical[I] = 1;
      ++Result.CriticalCount;
    }
  }
  return Result;
}
