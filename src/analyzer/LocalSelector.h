//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hybrid local selection — the first analyzer stage (paper Section 4.2,
/// Eq. 1-3). For each data object, chunks are ranked by local priority
///
///   PR_local(DC_ij) = LLCmiss(DC_ij) / Size(DC_ij)            (Eq. 1)
///
/// and classified critical when PR reaches the threshold
///
///   theta(DO_i) = max(P_n, derivativeCut(PR), minPR/F_sample) (Eq. 2)
///   CAT(DC_ij)  = PR_local > theta ? 1 : 0                    (Eq. 3)
///
/// The three terms combine a fixed top-N percentile with a k-means-style
/// derivative cut (handles both highly skewed and near-even distributions)
/// and a theoretical floor below which a chunk's estimate is sampling
/// noise (fewer than MinSamples hits at the current period).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_ANALYZER_LOCALSELECTOR_H
#define ATMEM_ANALYZER_LOCALSELECTOR_H

#include <cstdint>
#include <vector>

namespace atmem {
namespace analyzer {

/// Tuning of the local selection stage.
struct LocalSelectorConfig {
  /// The percentile P_n of Eq. 2; 90 selects roughly the top 10% of
  /// chunks before the other terms tighten or relax the cut.
  double PercentileN = 90.0;
  /// Minimum samples a chunk must have received for its estimate to beat
  /// the noise floor (the minPR/F_sample term of Eq. 2).
  double MinSamples = 1.0;
  /// Disables the derivative (2-means) term when false; used by the
  /// ablation benchmarks (selection then degenerates to plain top-N).
  bool UseDerivativeCut = true;
  /// Cluster-mean ratio above which the priority distribution counts as
  /// highly skewed (bimodal): the 2-means cut then governs alone,
  /// selecting only the hot cluster — possibly fewer than the top N%
  /// (Section 4.2's "highly skewed" scenario).
  double StrongSeparation = 4.0;
};

/// Per-chunk classification of one data object.
struct LocalSelection {
  /// PR_local per chunk (estimated misses per byte), Eq. 1.
  std::vector<double> Priority;
  /// CAT per chunk, Eq. 3 (1 = sampled critical).
  std::vector<uint8_t> Critical;
  /// The threshold theta this object used.
  double Theta = 0.0;
  /// Number of critical chunks.
  uint32_t CriticalCount = 0;
  /// \name Eq. 2 components of Theta (telemetry / diagnostics)
  /// Theta is the max of the three terms; ThetaDerivative is 0 when the
  /// 2-means cut was disabled or the distribution was not strongly
  /// separated.
  /// @{
  double ThetaPercentile = 0.0;
  double ThetaDerivative = 0.0;
  double ThetaNoiseFloor = 0.0;
  /// @}

  /// Which Eq. 2 term set Theta: 0 = percentile, 1 = derivative cut,
  /// 2 = noise floor. Mirrors the max chain in select() — a later term
  /// wins only by strictly exceeding the earlier ones, so the decision
  /// log attributes ties the same way the selection did.
  uint8_t winningThetaTerm() const {
    uint8_t Winner = 0;
    double Max = ThetaPercentile;
    if (ThetaDerivative > Max) {
      Max = ThetaDerivative;
      Winner = 1;
    }
    if (ThetaNoiseFloor > Max)
      Winner = 2;
    return Winner;
  }
};

/// Computes Eq. 1-3 for one object.
class LocalSelector {
public:
  explicit LocalSelector(LocalSelectorConfig Config = {}) : Config(Config) {}

  /// \p EstimatedMisses is the profiler's per-chunk miss estimate,
  /// \p ChunkBytes the object's chunk size, and \p SamplePeriod the final
  /// sampling period (for the noise floor).
  LocalSelection select(const std::vector<double> &EstimatedMisses,
                        uint64_t ChunkBytes, uint64_t SamplePeriod) const;

  const LocalSelectorConfig &config() const { return Config; }

private:
  LocalSelectorConfig Config;
};

} // namespace analyzer
} // namespace atmem

#endif // ATMEM_ANALYZER_LOCALSELECTOR_H
