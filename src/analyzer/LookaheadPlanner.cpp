#include "analyzer/LookaheadPlanner.h"

#include <algorithm>

using namespace atmem;
using namespace atmem::analyzer;

void LookaheadPlanner::observeEpoch(
    const std::vector<ObjectClassification> &Classes,
    uint64_t RenominatedRanges, uint64_t RolledBackRanges,
    uint64_t SkippedRanges) {
  ++Epochs;

  // Eq. 4 rank this epoch: 1-based among W > 0 objects, descending weight
  // (ties by object id so the ranking is deterministic).
  struct Ranked {
    mem::ObjectId Object;
    double Weight;
  };
  std::vector<Ranked> Ranking;
  for (const ObjectClassification &Cls : Classes)
    if (Cls.Promotion.Weight > 0.0)
      Ranking.push_back({Cls.Object, Cls.Promotion.Weight});
  std::sort(Ranking.begin(), Ranking.end(),
            [](const Ranked &A, const Ranked &B) {
              if (A.Weight != B.Weight)
                return A.Weight > B.Weight;
              return A.Object < B.Object;
            });
  auto rankOf = [&Ranking](mem::ObjectId Id) -> uint32_t {
    for (size_t I = 0; I < Ranking.size(); ++I)
      if (Ranking[I].Object == Id)
        return static_cast<uint32_t>(I + 1);
    return 0;
  };

  uint64_t Flips = 0;
  uint64_t Tracked = 0;
  for (const ObjectClassification &Cls : Classes) {
    uint32_t N = Cls.numChunks();
    Tracked += N;
    ObjectTrend &Trend = Trends[Cls.Object];
    bool Fresh = Trend.EpochsSeen == 0 ||
                 Trend.Priority.size() != static_cast<size_t>(N);
    if (Fresh) {
      // First sighting (or a resize after re-registration): seed the
      // state, no deltas to take yet.
      Trend = ObjectTrend();
      Trend.Priority.assign(N, 0.0);
      Trend.Velocity.assign(N, 0.0);
      Trend.Selected.assign(N, 0);
    }
    uint32_t Rank = rankOf(Cls.Object);
    Trend.RankVelocity =
        Fresh || Trend.WeightRank == 0 || Rank == 0
            ? 0
            : static_cast<int32_t>(Trend.WeightRank) -
                  static_cast<int32_t>(Rank);
    Trend.WeightRank = Rank;
    for (uint32_t C = 0; C < N; ++C) {
      double P = Cls.Local.Priority[C];
      double Delta = P - Trend.Priority[C];
      Trend.Velocity[C] = Fresh ? 0.0
                                : Config.VelocitySmoothing * Delta +
                                      (1.0 - Config.VelocitySmoothing) *
                                          Trend.Velocity[C];
      Trend.Priority[C] = P;
      uint8_t Sel = Cls.isSelected(C) ? 1 : 0;
      if (!Fresh && Sel != Trend.Selected[C])
        ++Flips;
      Trend.Selected[C] = Sel;
    }
    Trend.Theta = Cls.Local.Theta;
    ++Trend.EpochsSeen;
    Trend.LastEpoch = Epochs;
  }

  // Drop trend state of objects the registry no longer reports (freed).
  for (auto It = Trends.begin(); It != Trends.end();)
    It = It->second.LastEpoch == Epochs ? std::next(It) : Trends.erase(It);

  uint64_t MigrationChurn =
      RenominatedRanges + RolledBackRanges + SkippedRanges;
  LastChurn = Tracked == 0
                  ? 0.0
                  : static_cast<double>(Flips) / static_cast<double>(Tracked);
  LastChurn += static_cast<double>(MigrationChurn);
  ChurnFreeStreak =
      (Flips == 0 && MigrationChurn == 0) ? ChurnFreeStreak + 1 : 0;
}

std::vector<LookaheadPrediction> LookaheadPlanner::predict() const {
  std::vector<LookaheadPrediction> Out;
  if (LastChurn > Config.MaxChurnForPredict)
    return Out;
  for (const auto &[Id, Trend] : Trends) {
    // A single observation carries no trend, and theta 0 means the object
    // never produced a usable threshold to extrapolate against.
    if (Trend.EpochsSeen < 2 || Trend.Theta <= 0.0)
      continue;
    double Boost = Trend.RankVelocity > 0 ? Config.RankBoost : 1.0;
    double VelocityFloor = Config.MinVelocityFraction * Trend.Theta;
    for (uint32_t C = 0; C < Trend.Priority.size(); ++C) {
      if (Trend.Selected[C] || Trend.Velocity[C] <= VelocityFloor)
        continue;
      double Predicted =
          (Trend.Priority[C] + Trend.Velocity[C]) * Boost;
      if (Predicted >= Config.PredictThetaFraction * Trend.Theta)
        Out.push_back({Id, C, Predicted});
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const LookaheadPrediction &A, const LookaheadPrediction &B) {
              if (A.PredictedPriority != B.PredictedPriority)
                return A.PredictedPriority > B.PredictedPriority;
              if (A.Object != B.Object)
                return A.Object < B.Object;
              return A.Chunk < B.Chunk;
            });
  if (Out.size() > Config.MaxChunksPerEpoch)
    Out.resize(Config.MaxChunksPerEpoch);
  return Out;
}
