//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lookahead placement prediction. ATMem's pipeline is reactive — chunks
/// move only after a profile shows them hot, so every phase change eats
/// one epoch of slow-tier misses plus a migration stall at the boundary.
/// The planner closes that gap with the trend features the analyzer
/// already produces per epoch: per-chunk Eq. 1 priority deltas (sample
/// velocity), Eq. 4 weight-rank velocity across objects, and the
/// renomination / rollback / skip churn of the migration layer. From them
/// it predicts which currently-cold chunks will cross their object's
/// Eq. 2 theta next epoch — the warming edge of a growing BFS frontier,
/// the tail of a sliding window — so the runtime can stage their
/// migrations ahead of demand and commit them for free at the boundary.
///
/// The same churn bookkeeping doubles as the convergence detector for
/// adaptive epoch scheduling: when selections stop flipping and the
/// migration layer reports no churn for a streak of epochs, placement has
/// converged and the runtime can back off analysis entirely until drift
/// re-arms it.
///
/// Predictions are advisory: a wrong one costs a cancelled staging buffer
/// (a no-op for placement), never a wrong placement — the epoch-boundary
/// commit only fires for chunks the *fresh* plan independently selected.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_ANALYZER_LOOKAHEADPLANNER_H
#define ATMEM_ANALYZER_LOOKAHEADPLANNER_H

#include "analyzer/PlacementPlan.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace atmem {
namespace analyzer {

/// Tuning of the lookahead prediction and convergence detection.
struct LookaheadPlannerConfig {
  /// EWMA weight of the newest per-chunk priority delta (1 = last delta
  /// only, smaller = smoother trend).
  double VelocitySmoothing = 0.5;
  /// A cold chunk is predicted hot when its extrapolated priority reaches
  /// this fraction of the object's Eq. 2 theta. Below 1.0 because the
  /// prediction fires one epoch early by design — the chunk is still
  /// warming.
  double PredictThetaFraction = 0.75;
  /// Extrapolation boost for objects whose Eq. 4 weight rank is rising
  /// (the object as a whole is gaining heat, so its warming chunks are
  /// better bets).
  double RankBoost = 1.25;
  /// Hard cap on predictions per epoch (the capacity budget usually binds
  /// first).
  uint32_t MaxChunksPerEpoch = 64;
  /// Prediction is suppressed while selection churn exceeds this fraction
  /// of tracked chunks — an unstable profile makes every extrapolation a
  /// coin flip, and staging buffers are not free.
  double MaxChurnForPredict = 0.25;
  /// Minimum per-chunk velocity, as a fraction of the object's theta, for
  /// a chunk to count as warming. Filters the chunks hovering *at* the
  /// threshold in a converged profile: their priority ties theta with a
  /// velocity decaying toward zero, and without the floor they would be
  /// re-predicted (and re-cancelled) every epoch.
  double MinVelocityFraction = 0.05;
  /// Consecutive churn-free epochs before converged() reports true.
  uint32_t ConvergenceEpochs = 2;
};

/// One predicted-hot chunk, ordered by descending predicted priority.
struct LookaheadPrediction {
  mem::ObjectId Object = 0;
  uint32_t Chunk = 0;
  /// Extrapolated next-epoch Eq. 1 priority (misses per byte).
  double PredictedPriority = 0.0;
};

/// Consumes one epoch of analyzer output at a time and predicts the next
/// epoch's hot chunks. Not thread-safe; owned by the runtime and driven
/// from optimize().
class LookaheadPlanner {
public:
  explicit LookaheadPlanner(LookaheadPlannerConfig Config = {})
      : Config(Config) {}

  /// Feeds one epoch's classifications plus the migration layer's churn
  /// counters (ranges renominated from earlier epochs, ranges rolled back
  /// by faults, ranges skipped unplaced). Call once per analyzed epoch,
  /// after the plan is built.
  void observeEpoch(const std::vector<ObjectClassification> &Classes,
                    uint64_t RenominatedRanges, uint64_t RolledBackRanges,
                    uint64_t SkippedRanges);

  /// Predicts next-epoch hot chunks among those the last epoch did *not*
  /// select: rising priority trend, extrapolation crossing the theta
  /// fraction, rank-velocity boosted, sorted by descending predicted
  /// priority and capped at MaxChunksPerEpoch. Empty until two epochs
  /// were observed or while churn() exceeds MaxChurnForPredict.
  std::vector<LookaheadPrediction> predict() const;

  /// Selection-flip fraction of the last observed epoch (plus a full
  /// point per renominated/rolled-back/skipped range, so migration-layer
  /// instability also suppresses prediction).
  double churn() const { return LastChurn; }

  /// True when the last ConvergenceEpochs observed epochs had zero churn:
  /// no selection flips, no renominations, no rollbacks, no skips.
  bool converged() const {
    return ChurnFreeStreak >= Config.ConvergenceEpochs;
  }

  uint64_t epochsObserved() const { return Epochs; }
  const LookaheadPlannerConfig &config() const { return Config; }

private:
  /// Trend state of one live object.
  struct ObjectTrend {
    std::vector<double> Priority;  ///< Last epoch's per-chunk Eq. 1 PR.
    std::vector<double> Velocity;  ///< EWMA of per-chunk PR deltas.
    std::vector<uint8_t> Selected; ///< Last epoch's plan membership.
    double Theta = 0.0;            ///< Last epoch's Eq. 2 threshold.
    uint32_t WeightRank = 0;       ///< Last epoch's Eq. 4 rank (1-based).
    int32_t RankVelocity = 0;      ///< Previous rank minus current (>0 = rising).
    uint64_t EpochsSeen = 0;
    uint64_t LastEpoch = 0; ///< For dropping freed objects.
  };

  LookaheadPlannerConfig Config;
  std::unordered_map<mem::ObjectId, ObjectTrend> Trends;
  uint64_t Epochs = 0;
  double LastChurn = 0.0;
  uint32_t ChurnFreeStreak = 0;
};

} // namespace analyzer
} // namespace atmem

#endif // ATMEM_ANALYZER_LOOKAHEADPLANNER_H
