#include "analyzer/MaryTree.h"

#include "support/Error.h"

#include <cassert>

using namespace atmem;
using namespace atmem::analyzer;

MaryTree::MaryTree(const std::vector<uint8_t> &LeafValues, uint32_t Arity)
    : Arity(Arity), NumLeaves(static_cast<uint32_t>(LeafValues.size())) {
  if (Arity < 2)
    reportFatalError("m-ary tree requires arity >= 2");
  if (NumLeaves == 0)
    return;

  Nodes.reserve(NumLeaves * 2);
  for (uint32_t I = 0; I < NumLeaves; ++I) {
    Node Leaf;
    Leaf.LeafBegin = I;
    Leaf.LeafEnd = I + 1;
    Leaf.Value = LeafValues[I] ? 1 : 0;
    Nodes.push_back(Leaf);
  }

  // Build levels bottom-up: group each level's nodes Arity at a time.
  uint32_t LevelBegin = 0;
  uint32_t LevelCount = NumLeaves;
  while (LevelCount > 1) {
    uint32_t NextBegin = static_cast<uint32_t>(Nodes.size());
    for (uint32_t I = 0; I < LevelCount; I += Arity) {
      Node Parent;
      Parent.FirstChild = LevelBegin + I;
      Parent.NumChildren = std::min(Arity, LevelCount - I);
      Parent.LeafBegin = Nodes[Parent.FirstChild].LeafBegin;
      uint32_t LastChild = Parent.FirstChild + Parent.NumChildren - 1;
      Parent.LeafEnd = Nodes[LastChild].LeafEnd;
      for (uint32_t C = 0; C < Parent.NumChildren; ++C) {
        Parent.Value += Nodes[Parent.FirstChild + C].Value;
        Nodes[Parent.FirstChild + C].Parent =
            static_cast<uint32_t>(Nodes.size());
      }
      Nodes.push_back(Parent);
    }
    LevelBegin = NextBegin;
    LevelCount = static_cast<uint32_t>(Nodes.size()) - NextBegin;
  }
  assert(Nodes.back().LeafBegin == 0 && Nodes.back().LeafEnd == NumLeaves &&
         "root must cover every leaf");
}
