//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The m-ary tree of the analyzer's second stage (paper Section 4.3.1,
/// Figure 3). Leaves correspond to data chunks and carry the CAT value
/// from local selection; each internal node carries the sum of its
/// descendant leaves. The *tree ratio* TR of an internal node — its value
/// divided by its descendant leaf count — quantifies the likelihood that a
/// gap under that node is critical data the sampler missed.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_ANALYZER_MARYTREE_H
#define ATMEM_ANALYZER_MARYTREE_H

#include <cstdint>
#include <vector>

namespace atmem {
namespace analyzer {

/// An m-ary reduction tree over a chunk classification vector.
class MaryTree {
public:
  /// One node; leaves are the first NumLeaves() node ids in chunk order.
  struct Node {
    uint32_t Parent = InvalidNode;
    uint32_t FirstChild = InvalidNode; ///< InvalidNode for leaves.
    uint32_t NumChildren = 0;
    uint32_t LeafBegin = 0; ///< Chunk range covered: [LeafBegin, LeafEnd).
    uint32_t LeafEnd = 0;
    uint32_t Value = 0; ///< Sum of covered leaves' CAT values.

    bool isLeaf() const { return FirstChild == InvalidNode; }
    uint32_t leafCount() const { return LeafEnd - LeafBegin; }
  };

  static constexpr uint32_t InvalidNode = ~0u;

  /// Builds the tree over \p LeafValues with arity \p Arity (>= 2). The
  /// last node on each level may have fewer than Arity children when the
  /// leaf count is not a power of Arity.
  MaryTree(const std::vector<uint8_t> &LeafValues, uint32_t Arity);

  uint32_t arity() const { return Arity; }
  uint32_t numLeaves() const { return NumLeaves; }
  uint32_t numNodes() const { return static_cast<uint32_t>(Nodes.size()); }
  /// Id of the root node (the last node built). Invalid for empty trees.
  uint32_t root() const { return numNodes() - 1; }

  const Node &node(uint32_t Id) const { return Nodes[Id]; }

  /// Tree ratio of \p Id: Value / leafCount (Section 4.3.1). Leaves report
  /// their own CAT value (0.0 or 1.0).
  double treeRatio(uint32_t Id) const {
    const Node &N = Nodes[Id];
    return static_cast<double>(N.Value) / static_cast<double>(N.leafCount());
  }

private:
  uint32_t Arity;
  uint32_t NumLeaves;
  std::vector<Node> Nodes;
};

} // namespace analyzer
} // namespace atmem

#endif // ATMEM_ANALYZER_MARYTREE_H
