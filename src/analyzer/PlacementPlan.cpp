#include "analyzer/PlacementPlan.h"

#include <algorithm>
#include <cassert>

using namespace atmem;
using namespace atmem::analyzer;

uint64_t ObjectClassification::chunkPayloadBytes(uint32_t Chunk) const {
  uint64_t Begin = static_cast<uint64_t>(Chunk) * ChunkBytes;
  assert(Begin < MappedBytes && "chunk out of range");
  return std::min(ChunkBytes, MappedBytes - Begin);
}

static PlacementPlan
buildFromFlags(const std::vector<ObjectClassification> &Classes,
               const std::vector<std::vector<uint8_t>> &Selected) {
  PlacementPlan Plan;
  for (size_t ObjIdx = 0; ObjIdx < Classes.size(); ++ObjIdx) {
    const ObjectClassification &Class = Classes[ObjIdx];
    const std::vector<uint8_t> &Flags = Selected[ObjIdx];
    ObjectPlan ObjPlan;
    ObjPlan.Object = Class.Object;
    uint32_t N = Class.numChunks();
    uint32_t C = 0;
    while (C < N) {
      if (!Flags[C]) {
        ++C;
        continue;
      }
      uint32_t Begin = C;
      while (C < N && Flags[C]) {
        ObjPlan.Bytes += Class.chunkPayloadBytes(C);
        ++C;
      }
      ObjPlan.Ranges.push_back({Begin, C - Begin});
    }
    if (!ObjPlan.Ranges.empty()) {
      Plan.TotalBytes += ObjPlan.Bytes;
      Plan.Objects.push_back(std::move(ObjPlan));
    }
  }
  return Plan;
}

PlacementPlan PlanBuilder::build(std::vector<ObjectClassification> Classes) {
  std::vector<std::vector<uint8_t>> Selected(Classes.size());
  for (size_t I = 0; I < Classes.size(); ++I) {
    const ObjectClassification &Class = Classes[I];
    Selected[I].assign(Class.numChunks(), 0);
    for (uint32_t C = 0; C < Class.numChunks(); ++C)
      Selected[I][C] = Class.isSelected(C) ? 1 : 0;
  }
  return buildFromFlags(Classes, Selected);
}

PlacementPlan PlanBuilder::buildBandwidthBalanced(
    std::vector<ObjectClassification> Classes, uint64_t BudgetBytes,
    double FastTrafficShare) {
  assert(FastTrafficShare >= 0.0 && FastTrafficShare <= 1.0 &&
         "traffic share is a fraction");
  // Every chunk is a candidate (not only the classified-critical ones):
  // balancing may need to stop short of, or go beyond, the critical set.
  struct Candidate {
    double Priority;
    double Misses;
    uint32_t ClassIdx;
    uint32_t Chunk;
    uint64_t Bytes;
  };
  std::vector<Candidate> Candidates;
  double TotalMisses = 0.0;
  for (uint32_t I = 0; I < Classes.size(); ++I) {
    const ObjectClassification &Class = Classes[I];
    for (uint32_t C = 0; C < Class.numChunks(); ++C) {
      double PR = Class.Local.Priority[C];
      uint64_t Bytes = Class.chunkPayloadBytes(C);
      double Misses = PR * static_cast<double>(Class.ChunkBytes);
      TotalMisses += Misses;
      if (PR > 0.0)
        Candidates.push_back({PR, Misses, I, C, Bytes});
    }
  }
  std::stable_sort(Candidates.begin(), Candidates.end(),
                   [](const Candidate &A, const Candidate &B) {
                     return A.Priority > B.Priority;
                   });

  std::vector<std::vector<uint8_t>> Selected(Classes.size());
  for (size_t I = 0; I < Classes.size(); ++I)
    Selected[I].assign(Classes[I].numChunks(), 0);
  double MissesTaken = 0.0;
  uint64_t BytesTaken = 0;
  double TargetMisses = TotalMisses * FastTrafficShare;
  for (const Candidate &Cand : Candidates) {
    if (MissesTaken >= TargetMisses)
      break;
    if (BytesTaken + Cand.Bytes > BudgetBytes)
      continue;
    Selected[Cand.ClassIdx][Cand.Chunk] = 1;
    MissesTaken += Cand.Misses;
    BytesTaken += Cand.Bytes;
  }
  return buildFromFlags(Classes, Selected);
}

PlacementPlan PlanBuilder::build(std::vector<ObjectClassification> Classes,
                                 uint64_t BudgetBytes) {
  PlacementPlan Unbounded = build(Classes);
  if (Unbounded.TotalBytes <= BudgetBytes)
    return Unbounded;

  // Over budget: keep the highest-priority selected chunks that fit.
  struct Candidate {
    double Priority;
    uint32_t ClassIdx;
    uint32_t Chunk;
    uint64_t Bytes;
  };
  std::vector<Candidate> Candidates;
  for (uint32_t I = 0; I < Classes.size(); ++I) {
    const ObjectClassification &Class = Classes[I];
    for (uint32_t C = 0; C < Class.numChunks(); ++C)
      if (Class.isSelected(C))
        Candidates.push_back({Class.Local.Priority[C], I, C,
                              Class.chunkPayloadBytes(C)});
  }
  std::stable_sort(Candidates.begin(), Candidates.end(),
                   [](const Candidate &A, const Candidate &B) {
                     return A.Priority > B.Priority;
                   });

  std::vector<std::vector<uint8_t>> Selected(Classes.size());
  for (size_t I = 0; I < Classes.size(); ++I)
    Selected[I].assign(Classes[I].numChunks(), 0);
  uint64_t Used = 0;
  for (const Candidate &Cand : Candidates) {
    if (Used + Cand.Bytes > BudgetBytes)
      continue;
    Selected[Cand.ClassIdx][Cand.Chunk] = 1;
    Used += Cand.Bytes;
  }
  return buildFromFlags(Classes, Selected);
}
