//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzer's output: a placement plan listing, per object, the merged
/// contiguous chunk ranges to migrate onto the fast tier. Contiguity
/// matters — every discrete range pays a migration launch cost, which is
/// why the tree promotion's gap patching improves migration efficiency
/// (paper Section 4.3). The builder also enforces a byte budget so plans
/// never exceed the fast tier's capacity (the MCDRAM case, Section 7.2).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_ANALYZER_PLACEMENTPLAN_H
#define ATMEM_ANALYZER_PLACEMENTPLAN_H

#include "analyzer/GlobalPromoter.h"
#include "analyzer/LocalSelector.h"
#include "mem/DataObject.h"

#include <cstdint>
#include <vector>

namespace atmem {
namespace analyzer {

/// Classification inputs of one object, as produced by the two analyzer
/// stages.
struct ObjectClassification {
  mem::ObjectId Object = 0;
  uint64_t ChunkBytes = 0;
  uint64_t MappedBytes = 0;
  LocalSelection Local;
  PromotionResult Promotion;

  uint32_t numChunks() const {
    return static_cast<uint32_t>(Local.Critical.size());
  }

  /// True when \p Chunk is selected for fast-tier placement (sampled or
  /// estimated critical).
  bool isSelected(uint32_t Chunk) const {
    return Local.Critical[Chunk] || Promotion.Promoted[Chunk];
  }

  /// Bytes chunk \p Chunk actually occupies (the last chunk may be
  /// partial).
  uint64_t chunkPayloadBytes(uint32_t Chunk) const;
};

/// Migration directive for one object.
struct ObjectPlan {
  mem::ObjectId Object = 0;
  std::vector<mem::ChunkRange> Ranges;
  uint64_t Bytes = 0;
};

/// The full plan across objects.
struct PlacementPlan {
  std::vector<ObjectPlan> Objects;
  uint64_t TotalBytes = 0;

  /// Fraction of \p TotalMappedBytes this plan places on the fast tier —
  /// the "data ratio" of the paper's Figures 7-10.
  double dataRatio(uint64_t TotalMappedBytes) const {
    return TotalMappedBytes == 0
               ? 0.0
               : static_cast<double>(TotalBytes) /
                     static_cast<double>(TotalMappedBytes);
  }
};

/// Builds placement plans from classifications.
class PlanBuilder {
public:
  /// Merges each object's selected chunks into contiguous ranges.
  static PlacementPlan build(std::vector<ObjectClassification> Classes);

  /// Builds a plan that fits within \p BudgetBytes: when the selection
  /// exceeds the budget, the lowest-priority selected chunks are dropped
  /// first (estimated-critical gap chunks usually go before sampled ones,
  /// since their PR is what sampling observed — often zero).
  static PlacementPlan build(std::vector<ObjectClassification> Classes,
                             uint64_t BudgetBytes);

  /// Section 9 extension for machines whose tiers have independent
  /// memory channels (KNL): instead of maximizing the fast tier's share,
  /// the selection targets a *traffic split* so both tiers stream
  /// concurrently. Chunks are taken in density order until the selected
  /// chunks carry \p FastTrafficShare of the total estimated misses (or
  /// the byte budget runs out). The optimal share equalizes per-tier
  /// service time: BW_fast / (BW_fast + BW_slow).
  static PlacementPlan
  buildBandwidthBalanced(std::vector<ObjectClassification> Classes,
                         uint64_t BudgetBytes, double FastTrafficShare);
};

} // namespace analyzer
} // namespace atmem

#endif // ATMEM_ANALYZER_PLACEMENTPLAN_H
