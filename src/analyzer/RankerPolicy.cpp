#include "analyzer/RankerPolicy.h"

#include "fault/FaultInjection.h"
#include "obs/Json.h"
#include "obs/Telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace atmem;
using namespace atmem::analyzer;

static const char *const RankerFeatureNames[NumRankerFeatures] = {
    "bias",          "log_misses",  "log_samples",      "pr_over_theta",
    "sample_share",  "weight_rank", "log_weight",       "sampled_critical",
    "promoted",      "node_tree_ratio",
};

const char *atmem::analyzer::rankerFeatureName(size_t Index) {
  return Index < NumRankerFeatures ? RankerFeatureNames[Index] : "unknown";
}

const char *atmem::analyzer::rankerStatusName(RankerStatus Status) {
  switch (Status) {
  case RankerStatus::Applied:
    return "applied";
  case RankerStatus::ScoreFaulted:
    return "score_faulted";
  }
  return "unknown";
}

void atmem::analyzer::rankerFeatures(const RankerObjectContext &Obj,
                                     const RankerChunkContext &Chunk,
                                     double Out[NumRankerFeatures]) {
  for (size_t I = 0; I < NumRankerFeatures; ++I)
    Out[I] = 0.0;
  Out[RankerBias] = 1.0;
  // Object-level features are present for every chunk of a ranked object,
  // cold or not, mirroring the always-written ObjectEpoch record.
  if (Obj.RankedObjects > 0 && Obj.WeightRank > 0)
    Out[RankerWeightRank] =
        static_cast<double>(Obj.RankedObjects - Obj.WeightRank + 1) /
        static_cast<double>(Obj.RankedObjects);
  Out[RankerLogWeight] =
      std::log1p(Obj.Weight * static_cast<double>(Obj.ChunkBytes));
  // Chunk-level features vanish for chunks the flight recorder would omit
  // (cold: no samples, not critical, not promoted), so vectors built from
  // a live classification and from a decoded log agree exactly.
  if (Chunk.Samples == 0 && !Chunk.Critical && !Chunk.Promoted)
    return;
  Out[RankerLogMisses] = std::log1p(Chunk.EstimatedMisses);
  Out[RankerLogSamples] =
      std::log1p(static_cast<double>(Chunk.Samples));
  if (Obj.Theta > 0.0)
    Out[RankerPrOverTheta] = std::min(Chunk.Priority / Obj.Theta, 8.0);
  if (Obj.TotalSamples > 0)
    Out[RankerSampleShare] = static_cast<double>(Chunk.Samples) /
                             static_cast<double>(Obj.TotalSamples);
  Out[RankerSampledCritical] = Chunk.Critical ? 1.0 : 0.0;
  Out[RankerPromoted] = Chunk.Promoted ? 1.0 : 0.0;
  Out[RankerNodeTreeRatio] = Chunk.NodeTreeRatio;
}

RankerModel atmem::analyzer::heuristicMimicModel() {
  RankerModel Model;
  Model.Weights[RankerBias] = -0.5;
  Model.Weights[RankerSampledCritical] = 1.0;
  Model.Weights[RankerPromoted] = 1.0;
  return Model;
}

std::string RankerModel::toJson() const {
  std::string Out = "{\n  \"format\": \"";
  Out += Format;
  Out += "\",\n  \"features\": [";
  for (size_t I = 0; I < NumRankerFeatures; ++I) {
    if (I)
      Out += ", ";
    Out += '"';
    Out += rankerFeatureName(I);
    Out += '"';
  }
  Out += "],\n  \"weights\": [";
  char Buf[64];
  for (size_t I = 0; I < NumRankerFeatures; ++I) {
    if (I)
      Out += ", ";
    std::snprintf(Buf, sizeof(Buf), "%.17g", Weights[I]);
    Out += Buf;
  }
  Out += "],\n  \"threshold\": ";
  std::snprintf(Buf, sizeof(Buf), "%.17g", Threshold);
  Out += Buf;
  Out += "\n}\n";
  return Out;
}

bool atmem::analyzer::parseRankerModel(std::string_view Text,
                                       RankerModel &Out,
                                       std::string *Error) {
  auto fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  obs::JsonValue Doc;
  std::string ParseError;
  if (!obs::parseJson(Text, Doc, &ParseError))
    return fail("model is not valid JSON: " + ParseError);
  if (!Doc.isObject())
    return fail("model root is not a JSON object");
  const obs::JsonValue *Format = Doc.findString("format");
  if (!Format)
    return fail("model has no \"format\" string");
  if (Format->StringVal != RankerModel::Format)
    return fail("unsupported model format \"" + Format->StringVal +
                "\" (expected " + RankerModel::Format + ")");
  const obs::JsonValue *Features = Doc.find("features");
  if (Features) {
    if (!Features->isArray() ||
        Features->Array.size() != NumRankerFeatures)
      return fail("\"features\" must list the " +
                  std::to_string(NumRankerFeatures) +
                  " atmem-ranker-v1 feature names in order");
    for (size_t I = 0; I < NumRankerFeatures; ++I) {
      if (!Features->Array[I].isString() ||
          Features->Array[I].StringVal != rankerFeatureName(I))
        return fail("feature " + std::to_string(I) + " must be \"" +
                    rankerFeatureName(I) + "\"");
    }
  }
  const obs::JsonValue *Weights = Doc.find("weights");
  if (!Weights || !Weights->isArray())
    return fail("model has no \"weights\" array");
  if (Weights->Array.size() != NumRankerFeatures)
    return fail("\"weights\" has " + std::to_string(Weights->Array.size()) +
                " entries, expected " + std::to_string(NumRankerFeatures));
  RankerModel Parsed;
  for (size_t I = 0; I < NumRankerFeatures; ++I) {
    const obs::JsonValue &W = Weights->Array[I];
    if (!W.isNumber() || !std::isfinite(W.NumberVal))
      return fail("weight " + std::to_string(I) + " (" +
                  rankerFeatureName(I) + ") is not a finite number");
    Parsed.Weights[I] = W.NumberVal;
  }
  if (const obs::JsonValue *Thr = Doc.find("threshold")) {
    if (!Thr->isNumber() || !std::isfinite(Thr->NumberVal))
      return fail("\"threshold\" is not a finite number");
    Parsed.Threshold = Thr->NumberVal;
  }
  Out = Parsed;
  return true;
}

bool atmem::analyzer::loadRankerModel(const std::string &Path,
                                      RankerModel &Out,
                                      std::string *Error) {
  static fault::Site LoadSite("ranker.model_load");
  static obs::Counter LoadFailed("ranker.model_load_failed");
  auto fail = [&](const std::string &Msg) {
    LoadFailed.add(1);
    if (Error)
      *Error = Msg;
    return false;
  };
  if (LoadSite.shouldFail())
    return fail("injected fault at ranker.model_load");
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return fail("cannot open ranker model " + Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  if (In.bad())
    return fail("cannot read ranker model " + Path);
  std::string ParseError;
  if (!parseRankerModel(Buf.str(), Out, &ParseError))
    return fail(Path + ": " + ParseError);
  return true;
}

std::vector<uint32_t> atmem::analyzer::rankerWeightRanks(
    const std::vector<PromotionResult> &Promotions, uint32_t *RankedObjects) {
  std::vector<size_t> Order;
  for (size_t I = 0; I < Promotions.size(); ++I)
    if (Promotions[I].Weight > 0.0)
      Order.push_back(I);
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Promotions[A].Weight > Promotions[B].Weight;
  });
  std::vector<uint32_t> Rank(Promotions.size(), 0);
  for (size_t R = 0; R < Order.size(); ++R)
    Rank[Order[R]] = static_cast<uint32_t>(R + 1);
  if (RankedObjects)
    *RankedObjects = static_cast<uint32_t>(Order.size());
  return Rank;
}

RankerApplyResult RankerPolicy::apply(
    std::vector<LocalSelection> &Selections,
    std::vector<PromotionResult> &Promotions,
    const std::vector<std::vector<uint64_t>> &Samples,
    const std::vector<std::vector<double>> &EstimatedMisses,
    const std::vector<uint64_t> &ChunkBytes,
    std::vector<std::vector<uint8_t>> *GlobalFlipped) const {
  static fault::Site ScoreSite("ranker.score");
  static obs::Counter ScoreFaulted("ranker.score_faulted");
  static obs::Counter ChunksFlipped("ranker.chunks_flipped");

  RankerApplyResult Result;
  uint32_t RankedObjects = 0;
  std::vector<uint32_t> Ranks = rankerWeightRanks(Promotions, &RankedObjects);

  // Score everything against a snapshot of the heuristic verdicts before
  // mutating a single flag: scores must not observe earlier overrides, and
  // an injected scoring fault must leave the heuristic plan untouched.
  std::vector<std::vector<uint8_t>> Verdicts(Selections.size());
  double Features[NumRankerFeatures];
  for (size_t I = 0; I < Selections.size(); ++I) {
    const LocalSelection &Sel = Selections[I];
    const PromotionResult &Promo = Promotions[I];
    if (ScoreSite.shouldFail()) {
      ScoreFaulted.add(1);
      Result.Status = RankerStatus::ScoreFaulted;
      return Result;
    }
    RankerObjectContext Obj;
    Obj.ChunkBytes = I < ChunkBytes.size() ? ChunkBytes[I] : 0;
    Obj.Theta = Sel.Theta;
    Obj.Weight = Promo.Weight;
    Obj.WeightRank = Ranks[I];
    Obj.RankedObjects = RankedObjects;
    static const std::vector<uint64_t> NoSamples;
    static const std::vector<double> NoMisses;
    const std::vector<uint64_t> &ObjSamples =
        I < Samples.size() ? Samples[I] : NoSamples;
    const std::vector<double> &ObjMisses =
        I < EstimatedMisses.size() ? EstimatedMisses[I] : NoMisses;
    for (uint64_t S : ObjSamples)
      Obj.TotalSamples += S;

    size_t N = Sel.Priority.size();
    Verdicts[I].assign(N, 0);
    for (size_t C = 0; C < N; ++C) {
      RankerChunkContext Chunk;
      Chunk.Samples = C < ObjSamples.size() ? ObjSamples[C] : 0;
      Chunk.Priority = Sel.Priority[C];
      Chunk.EstimatedMisses = C < ObjMisses.size() ? ObjMisses[C] : 0.0;
      Chunk.Critical = Sel.Critical[C] != 0;
      Chunk.Promoted =
          !Promo.Promoted.empty() && Promo.Promoted[C] != 0;
      Chunk.NodeTreeRatio =
          C < Promo.NodeTreeRatio.size() ? Promo.NodeTreeRatio[C] : 0.0;
      rankerFeatures(Obj, Chunk, Features);
      Verdicts[I][C] = Model.selects(Features) ? 1 : 0;
    }
  }

  // Commit: overridden selections land in the same flags the heuristic
  // uses, so every downstream consumer (plan builders, decision log,
  // telemetry, lookahead) sees one consistent verdict.
  for (size_t I = 0; I < Selections.size(); ++I) {
    LocalSelection &Sel = Selections[I];
    PromotionResult &Promo = Promotions[I];
    if (Promo.Promoted.size() < Sel.Critical.size())
      Promo.Promoted.assign(Sel.Critical.size(), 0);
    for (size_t C = 0; C < Sel.Critical.size(); ++C) {
      bool Was = Sel.Critical[C] || Promo.Promoted[C];
      bool Now = Verdicts[I][C] != 0;
      if (Was == Now)
        continue;
      ++Result.FlippedChunks;
      if (Now) {
        Promo.Promoted[C] = 1;
        ++Promo.PromotedCount;
      } else {
        if (Sel.Critical[C]) {
          Sel.Critical[C] = 0;
          --Sel.CriticalCount;
        }
        if (Promo.Promoted[C]) {
          Promo.Promoted[C] = 0;
          --Promo.PromotedCount;
        }
        if (GlobalFlipped && I < GlobalFlipped->size() &&
            !(*GlobalFlipped)[I].empty())
          (*GlobalFlipped)[I][C] = 0;
      }
    }
  }
  ChunksFlipped.add(Result.FlippedChunks);
  return Result;
}
