//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The learned placement ranker: a dependency-free linear learning-to-rank
/// policy that sits behind the same contract as the Eq. 1-5 heuristics. The
/// analyzer always runs the heuristic pipeline (local selection, global
/// ranking, tree promotion) first; when a ranker model is configured, every
/// chunk is then re-scored with a linear model over the "atmem-ranker-v1"
/// feature vector — which includes the heuristic's own verdicts and
/// sub-terms, so a model carrying the mimic weights reproduces Eq. 1-5
/// plans exactly — and the selection flags are overridden by the model's
/// decisions. With no model configured the apply step is never entered and
/// the heuristic path stays bit-identical.
///
/// Models are trained offline by tools/atmem_train from atdl decision logs
/// (the flight recorder captures every feature and outcome this policy
/// needs) and serialized as a small JSON file loaded through
/// AnalyzerConfig::RankerModelPath. Malformed or truncated model files
/// never crash: loading fails with a diagnostic, bumps the
/// "ranker.model_load_failed" counter, and the analyzer falls back to the
/// heuristic. Scoring is guarded by the "ranker.score" fault site with the
/// same whole-epoch graceful degradation (an injected fault leaves every
/// heuristic verdict untouched).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_ANALYZER_RANKERPOLICY_H
#define ATMEM_ANALYZER_RANKERPOLICY_H

#include "analyzer/GlobalPromoter.h"
#include "analyzer/LocalSelector.h"

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace atmem {
namespace analyzer {

/// Feature indices of the atmem-ranker-v1 vector, in serialized order.
/// The same extraction runs at analysis time (from live classifications)
/// and at training/replay time (from decision-log records); chunks the
/// flight recorder would omit as cold produce all-zero chunk-level
/// features in both, so the two sources agree exactly.
enum RankerFeature : size_t {
  RankerBias = 0,          ///< Constant 1 (the intercept).
  RankerLogMisses,         ///< log1p(estimated misses of the chunk).
  RankerLogSamples,        ///< log1p(raw sample hits of the chunk).
  RankerPrOverTheta,       ///< Eq. 1 PR / Eq. 2 theta, capped at 8.
  RankerSampleShare,       ///< Chunk samples / object samples.
  RankerWeightRank,        ///< Eq. 4 global rank, best = 1, unranked = 0.
  RankerLogWeight,         ///< log1p(Eq. 4 W scaled to per-chunk misses).
  RankerSampledCritical,   ///< Eq. 3 CAT after global ranking (0/1).
  RankerPromoted,          ///< Tree-walk estimated critical (0/1).
  RankerNodeTreeRatio,     ///< Deepest examined m-ary node's tree ratio.
  NumRankerFeatures,
};

/// Serialized name of feature \p Index ("bias", "log_misses", ...).
const char *rankerFeatureName(size_t Index);

/// Object-level inputs of the feature extraction: one per (epoch, object),
/// matching the decision log's ObjectEpoch record.
struct RankerObjectContext {
  uint64_t ChunkBytes = 0;
  double Theta = 0.0;        ///< Eq. 2 threshold the object used.
  double Weight = 0.0;       ///< Eq. 4 W.
  uint32_t WeightRank = 0;   ///< 1-based global rank; 0 = unranked.
  uint32_t RankedObjects = 0;
  uint64_t TotalSamples = 0; ///< Sum of the object's raw chunk samples.
};

/// Chunk-level inputs, matching the decision log's ChunkDecision record.
struct RankerChunkContext {
  uint64_t Samples = 0;
  double EstimatedMisses = 0.0;
  double Priority = 0.0;      ///< Eq. 1 PR.
  bool Critical = false;      ///< Sampled critical (incl. global-ranked).
  bool Promoted = false;      ///< Tree-walk estimated critical.
  double NodeTreeRatio = 0.0; ///< 0 when the walk never examined it.
};

/// Fills \p Out with the atmem-ranker-v1 features of one chunk. Chunks the
/// flight recorder would omit (no samples, not critical, not promoted)
/// yield zero for every chunk-level feature, keeping live and log-derived
/// vectors identical.
void rankerFeatures(const RankerObjectContext &Obj,
                    const RankerChunkContext &Chunk,
                    double Out[NumRankerFeatures]);

/// A linear scoring model over the feature vector. A chunk is selected for
/// fast-tier placement when dot(Weights, features) > Threshold.
struct RankerModel {
  static constexpr const char *Format = "atmem-ranker-v1";
  std::array<double, NumRankerFeatures> Weights{};
  double Threshold = 0.0;

  double score(const double Features[NumRankerFeatures]) const {
    double S = 0.0;
    for (size_t I = 0; I < NumRankerFeatures; ++I)
      S += Weights[I] * Features[I];
    return S;
  }
  bool selects(const double Features[NumRankerFeatures]) const {
    return score(Features) > Threshold;
  }

  /// Serializes the model as a pretty-printed JSON document (the format
  /// parseRankerModel accepts, with feature names inlined for humans).
  std::string toJson() const;
};

/// The regression-guard model: weights that reproduce the Eq. 1-5 verdict
/// exactly (score = critical + promoted - 0.5, so score > 0 if and only
/// if the heuristic selected the chunk).
RankerModel heuristicMimicModel();

/// Parses an atmem-ranker-v1 JSON document. Strict: the format string,
/// a "weights" array of exactly NumRankerFeatures finite numbers, and —
/// when present — a "features" array naming them in serialized order are
/// all required to match. False (with \p Error) otherwise; \p Out is
/// untouched on failure.
bool parseRankerModel(std::string_view Text, RankerModel &Out,
                      std::string *Error = nullptr);

/// Loads a model file through parseRankerModel. Guarded by the
/// "ranker.model_load" fault site; any failure (I/O, injected, parse)
/// bumps the "ranker.model_load_failed" counter and returns false, and
/// callers keep the heuristic policy.
bool loadRankerModel(const std::string &Path, RankerModel &Out,
                     std::string *Error = nullptr);

/// Outcome of one RankerPolicy::apply call.
enum class RankerStatus : uint8_t {
  Applied = 0,  ///< Model scores overrode the selection flags.
  ScoreFaulted, ///< "ranker.score" fired: every verdict left untouched.
};

const char *rankerStatusName(RankerStatus Status);

/// Result of re-scoring one epoch's classifications.
struct RankerApplyResult {
  RankerStatus Status = RankerStatus::Applied;
  /// Chunks whose selection verdict the model changed (0 on fault).
  uint64_t FlippedChunks = 0;
};

/// Applies a linear model on top of one epoch's heuristic classifications.
class RankerPolicy {
public:
  explicit RankerPolicy(const RankerModel &Model) : Model(Model) {}

  /// Re-scores every chunk of every object and overrides the selection
  /// flags in place: a chunk the model selects but the heuristic did not
  /// becomes estimated critical (Promoted); a chunk the model rejects is
  /// cleared from both Critical and Promoted (and from \p GlobalFlipped,
  /// so decision-log flag attribution stays consistent). Counts in
  /// LocalSelection / PromotionResult are updated to match. All scores
  /// are computed against a snapshot of the heuristic verdicts before any
  /// flag is mutated, and nothing is committed when the "ranker.score"
  /// fault site fires — graceful degradation back to the heuristic plan.
  ///
  /// \p Samples and \p EstimatedMisses carry the profiler's per-object
  /// raw chunk samples and unbiased miss estimates (ObjectProfile fields;
  /// the same values the flight recorder logs, so training-time and
  /// analysis-time features are bit-identical); \p GlobalFlipped may be
  /// empty (treated as all-zero) and is only scrubbed, never grown.
  RankerApplyResult
  apply(std::vector<LocalSelection> &Selections,
        std::vector<PromotionResult> &Promotions,
        const std::vector<std::vector<uint64_t>> &Samples,
        const std::vector<std::vector<double>> &EstimatedMisses,
        const std::vector<uint64_t> &ChunkBytes,
        std::vector<std::vector<uint8_t>> *GlobalFlipped) const;

  const RankerModel &model() const { return Model; }

private:
  RankerModel Model;
};

/// Computes the decision-log style global weight ranks for one epoch's
/// promotions: 1-based descending-weight rank among objects with W > 0
/// (ties rank by object order), 0 for unranked objects. \p RankedObjects
/// receives the number of ranked objects. Shared by the ranker feature
/// extraction and the flight recorder so both attribute identically.
std::vector<uint32_t>
rankerWeightRanks(const std::vector<PromotionResult> &Promotions,
                  uint32_t *RankedObjects = nullptr);

} // namespace analyzer
} // namespace atmem

#endif // ATMEM_ANALYZER_RANKERPOLICY_H
