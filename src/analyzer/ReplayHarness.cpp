#include "analyzer/ReplayHarness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_map>

using namespace atmem;
using namespace atmem::analyzer;

bool atmem::analyzer::replayEpochsFromArtifact(
    const obs::DecisionArtifact &Artifact, std::vector<ReplayEpoch> &Out,
    std::string *Error) {
  auto fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  std::vector<ReplayEpoch> Epochs;
  ReplayEpoch *Current = nullptr;
  std::unordered_map<uint32_t, size_t> ObjIndex;
  for (const obs::DecisionRecord &Rec : Artifact.Records) {
    switch (Rec.Kind) {
    case obs::DecisionKind::EpochBegin: {
      Epochs.emplace_back();
      Current = &Epochs.back();
      Current->Epoch = Rec.Epoch;
      ObjIndex.clear();
      break;
    }
    case obs::DecisionKind::ObjectEpoch: {
      if (!Current)
        return fail("ObjectEpoch record before any EpochBegin");
      const obs::ObjectEpochRecord &Obj = Rec.Object;
      ObjIndex[Obj.Object] = Current->Inputs.size();
      Current->SamplePeriod = Obj.SamplePeriod;
      ObjectProfileInput In;
      In.Object = Obj.Object;
      In.Name = Artifact.name(Obj.NameId);
      In.ChunkBytes = Obj.ChunkBytes;
      In.MappedBytes =
          static_cast<uint64_t>(Obj.NumChunks) * Obj.ChunkBytes;
      In.EstimatedMisses.assign(Obj.NumChunks, 0.0);
      In.Samples.assign(Obj.NumChunks, 0);
      Current->Inputs.push_back(std::move(In));
      ReplayRecordedObject Recorded;
      Recorded.Meta = Obj;
      Recorded.SampledCritical.assign(Obj.NumChunks, 0);
      Recorded.GlobalRanked.assign(Obj.NumChunks, 0);
      Recorded.Promoted.assign(Obj.NumChunks, 0);
      Recorded.Priority.assign(Obj.NumChunks, 0.0);
      Recorded.NodeTreeRatio.assign(Obj.NumChunks, 0.0);
      Current->Recorded.push_back(std::move(Recorded));
      break;
    }
    case obs::DecisionKind::ChunkDecision: {
      if (!Current)
        return fail("ChunkDecision record before any EpochBegin");
      const obs::ChunkDecisionRecord &Chunk = Rec.Chunk;
      auto It = ObjIndex.find(Chunk.Object);
      if (It == ObjIndex.end())
        return fail("chunk record for object " +
                    std::to_string(Chunk.Object) +
                    " before its ObjectEpoch (epoch " +
                    std::to_string(Current->Epoch) + ")");
      ObjectProfileInput &In = Current->Inputs[It->second];
      ReplayRecordedObject &Recorded = Current->Recorded[It->second];
      if (Chunk.Chunk >= In.Samples.size())
        return fail("chunk " + std::to_string(Chunk.Chunk) +
                    " past object " + In.Name + "'s grid of " +
                    std::to_string(In.Samples.size()));
      In.Samples[Chunk.Chunk] = Chunk.Samples;
      In.EstimatedMisses[Chunk.Chunk] = Chunk.EstimatedMisses;
      Recorded.Priority[Chunk.Chunk] = Chunk.Priority;
      Recorded.NodeTreeRatio[Chunk.Chunk] = Chunk.NodeTreeRatio;
      if (Chunk.Flags & obs::DecisionChunkSampledCritical)
        Recorded.SampledCritical[Chunk.Chunk] = 1;
      if (Chunk.Flags & obs::DecisionChunkGlobalRanked)
        Recorded.GlobalRanked[Chunk.Chunk] = 1;
      if (Chunk.Flags & obs::DecisionChunkPromoted)
        Recorded.Promoted[Chunk.Chunk] = 1;
      break;
    }
    default:
      break; // NameDef handled by the artifact; migrations not replayed.
    }
  }
  // Epochs with no classification records (pure migration activity or a
  // backed-off boundary) carry nothing to replay.
  Epochs.erase(std::remove_if(Epochs.begin(), Epochs.end(),
                              [](const ReplayEpoch &E) {
                                return E.Inputs.empty();
                              }),
               Epochs.end());
  Out = std::move(Epochs);
  return true;
}

namespace {

/// Per-object placed-chunk flags of one epoch's plan, keyed by object id.
using PlacedMap = std::map<mem::ObjectId, std::vector<uint8_t>>;

PlacedMap placedFromPlan(const PlacementPlan &Plan,
                         const std::vector<ObjectClassification> &Classes) {
  PlacedMap Placed;
  for (const ObjectClassification &Class : Classes)
    Placed[Class.Object].assign(Class.numChunks(), 0);
  for (const ObjectPlan &Obj : Plan.Objects) {
    std::vector<uint8_t> &Flags = Placed[Obj.Object];
    for (const mem::ChunkRange &Range : Obj.Ranges)
      for (uint32_t C = Range.FirstChunk;
           C < Range.FirstChunk + Range.NumChunks && C < Flags.size(); ++C)
        Flags[C] = 1;
  }
  return Placed;
}

/// Miss mass of \p Placed scored against \p Epoch's recorded traffic.
void scoreHitFraction(const PlacedMap &Placed, const ReplayEpoch &Epoch,
                      double &PlacedMisses, double &TotalMisses) {
  for (const ObjectProfileInput &In : Epoch.Inputs) {
    auto It = Placed.find(In.Object);
    for (size_t C = 0; C < In.EstimatedMisses.size(); ++C) {
      double Misses = In.EstimatedMisses[C];
      TotalMisses += Misses;
      if (It != Placed.end() && C < It->second.size() && It->second[C])
        PlacedMisses += Misses;
    }
  }
}

uint64_t churnBetween(const PlacedMap &Prev, const PlacedMap &Now) {
  uint64_t Churn = 0;
  for (const auto &[Object, Flags] : Now) {
    auto It = Prev.find(Object);
    for (size_t C = 0; C < Flags.size(); ++C) {
      uint8_t Was =
          It != Prev.end() && C < It->second.size() ? It->second[C] : 0;
      if (Flags[C] != Was)
        ++Churn;
    }
  }
  // Objects that vanished from the plan demote everything they had.
  for (const auto &[Object, Flags] : Prev) {
    if (Now.count(Object))
      continue;
    for (uint8_t F : Flags)
      if (F)
        ++Churn;
  }
  return Churn;
}

/// One policy's rolling state across the replayed epochs.
struct PolicyRun {
  Analyzer Anal;
  ReplayPolicyMetrics Metrics;
  PlacedMap PrevPlaced;
  double SamePlaced = 0.0, SameTotal = 0.0;
  double NextPlaced = 0.0, NextTotal = 0.0;
  bool HasPrev = false;

  explicit PolicyRun(AnalyzerConfig Config) : Anal(std::move(Config)) {}
};

} // namespace

ReplayReport atmem::analyzer::replayCompare(
    const std::vector<ReplayEpoch> &Epochs, const AnalyzerConfig &BaseConfig,
    std::shared_ptr<const RankerModel> Model, uint64_t BudgetBytes) {
  ReplayReport Report;
  Report.Epochs = Epochs.size();
  Report.BudgetBytes = BudgetBytes;
  Report.RankerActive = Model != nullptr;

  AnalyzerConfig HeuristicConfig = BaseConfig;
  HeuristicConfig.Ranker = nullptr;
  HeuristicConfig.RankerModelPath.clear();
  PolicyRun A(HeuristicConfig);
  AnalyzerConfig RankerConfig = HeuristicConfig;
  RankerConfig.Ranker = Model;
  PolicyRun B(RankerConfig);

  uint64_t AgreeIntersection = 0;
  uint64_t AgreeUnion = 0;

  for (size_t E = 0; E < Epochs.size(); ++E) {
    const ReplayEpoch &Epoch = Epochs[E];
    const ReplayEpoch *Next = E + 1 < Epochs.size() ? &Epochs[E + 1] : nullptr;

    PolicyRun *Runs[2] = {&A, Report.RankerActive ? &B : nullptr};
    PlacedMap PlacedByPolicy[2];
    for (int P = 0; P < 2; ++P) {
      PolicyRun *Run = Runs[P];
      if (!Run)
        continue;
      std::vector<ObjectClassification> Classes =
          Run->Anal.classifyInputs(Epoch.Inputs, Epoch.SamplePeriod);

      if (P == 0) {
        // Drift: the replayed heuristic must reproduce the recorded
        // selection chunk for chunk.
        for (size_t I = 0; I < Classes.size(); ++I) {
          const ReplayRecordedObject &Recorded = Epoch.Recorded[I];
          for (uint32_t C = 0; C < Classes[I].numChunks(); ++C) {
            bool Was = Recorded.selected(C);
            bool Now = Classes[I].isSelected(C);
            if (Was == Now)
              continue;
            ++Report.Drift.Mismatches;
            if (Report.Drift.First.empty()) {
              char Buf[160];
              std::snprintf(Buf, sizeof(Buf),
                            "epoch %llu obj %s chunk %u: recorded %s, "
                            "replayed %s",
                            static_cast<unsigned long long>(Epoch.Epoch),
                            Epoch.Inputs[I].Name.c_str(), C,
                            Was ? "selected" : "unselected",
                            Now ? "selected" : "unselected");
              Report.Drift.First = Buf;
            }
          }
        }
      }

      PlacementPlan Plan = BudgetBytes > 0
                               ? PlanBuilder::build(Classes, BudgetBytes)
                               : PlanBuilder::build(Classes);
      PlacedMap Placed = placedFromPlan(Plan, Classes);
      Run->Metrics.PlanBytes += Plan.TotalBytes;
      for (const auto &[Object, Flags] : Placed)
        for (uint8_t F : Flags)
          if (F)
            ++Run->Metrics.PlacedChunks;
      scoreHitFraction(Placed, Epoch, Run->SamePlaced, Run->SameTotal);
      if (Next)
        scoreHitFraction(Placed, *Next, Run->NextPlaced, Run->NextTotal);
      if (Run->HasPrev)
        Run->Metrics.ChurnChunks += churnBetween(Run->PrevPlaced, Placed);
      Run->PrevPlaced = std::move(Placed);
      Run->HasPrev = true;
      PlacedByPolicy[P] = Run->PrevPlaced;
    }

    if (Report.RankerActive) {
      for (const auto &[Object, FlagsA] : PlacedByPolicy[0]) {
        auto It = PlacedByPolicy[1].find(Object);
        for (size_t C = 0; C < FlagsA.size(); ++C) {
          uint8_t InA = FlagsA[C];
          uint8_t InB =
              It != PlacedByPolicy[1].end() && C < It->second.size()
                  ? It->second[C]
                  : 0;
          AgreeIntersection += InA && InB;
          AgreeUnion += InA || InB;
        }
      }
    }
  }

  auto finish = [](PolicyRun &Run) {
    Run.Metrics.HitFractionSame =
        Run.SameTotal > 0.0 ? Run.SamePlaced / Run.SameTotal : 1.0;
    Run.Metrics.HitFractionNext =
        Run.NextTotal > 0.0 ? Run.NextPlaced / Run.NextTotal : 1.0;
  };
  finish(A);
  Report.Heuristic = A.Metrics;
  if (Report.RankerActive) {
    finish(B);
    Report.Ranker = B.Metrics;
    Report.PlanAgreement =
        AgreeUnion > 0
            ? static_cast<double>(AgreeIntersection) /
                  static_cast<double>(AgreeUnion)
            : 1.0;
  }
  return Report;
}

static void appendPolicyLine(std::string &Out, const char *Name,
                             const ReplayPolicyMetrics &M) {
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "%-10s %9.6f %9.6f %14llu %12llu %13llu\n", Name,
                M.HitFractionNext, M.HitFractionSame,
                static_cast<unsigned long long>(M.PlacedChunks),
                static_cast<unsigned long long>(M.PlanBytes),
                static_cast<unsigned long long>(M.ChurnChunks));
  Out += Buf;
}

std::string atmem::analyzer::replayReportText(const ReplayReport &Report) {
  std::string Out;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "replay: %llu epoch(s), budget %llu bytes, policies: "
                "heuristic%s\n",
                static_cast<unsigned long long>(Report.Epochs),
                static_cast<unsigned long long>(Report.BudgetBytes),
                Report.RankerActive ? " + ranker" : " only");
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "drift (replayed heuristic vs recorded): %llu chunk(s)%s%s\n",
                static_cast<unsigned long long>(Report.Drift.Mismatches),
                Report.Drift.First.empty() ? "" : "; first: ",
                Report.Drift.First.c_str());
  Out += Buf;
  Out += "policy      hit_next  hit_same  placed_chunks   plan_bytes  "
         "churn_chunks\n";
  appendPolicyLine(Out, "heuristic", Report.Heuristic);
  if (Report.RankerActive) {
    appendPolicyLine(Out, "ranker", Report.Ranker);
    std::snprintf(Buf, sizeof(Buf), "plan agreement (jaccard): %.6f\n",
                  Report.PlanAgreement);
    Out += Buf;
  }
  return Out;
}

static void appendPolicyJson(std::string &Out, const char *Name,
                             const ReplayPolicyMetrics &M) {
  char Buf[256];
  std::snprintf(
      Buf, sizeof(Buf),
      "  \"%s\": {\"hit_fraction_next\": %.17g, \"hit_fraction_same\": "
      "%.17g, \"placed_chunks\": %llu, \"plan_bytes\": %llu, "
      "\"churn_chunks\": %llu}",
      Name, M.HitFractionNext, M.HitFractionSame,
      static_cast<unsigned long long>(M.PlacedChunks),
      static_cast<unsigned long long>(M.PlanBytes),
      static_cast<unsigned long long>(M.ChurnChunks));
  Out += Buf;
}

std::string atmem::analyzer::replayReportJson(const ReplayReport &Report) {
  std::string Out = "{\n  \"format\": \"atmem-replay-v1\",\n";
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "  \"epochs\": %llu,\n  \"budget_bytes\": %llu,\n"
                "  \"ranker_active\": %s,\n  \"drift_chunks\": %llu,\n",
                static_cast<unsigned long long>(Report.Epochs),
                static_cast<unsigned long long>(Report.BudgetBytes),
                Report.RankerActive ? "true" : "false",
                static_cast<unsigned long long>(Report.Drift.Mismatches));
  Out += Buf;
  appendPolicyJson(Out, "heuristic", Report.Heuristic);
  Out += ",\n";
  appendPolicyJson(Out, "ranker", Report.Ranker);
  std::snprintf(Buf, sizeof(Buf), ",\n  \"plan_agreement\": %.17g\n}\n",
                Report.PlanAgreement);
  Out += Buf;
  return Out;
}

RankerTrainingSet
atmem::analyzer::rankerTrainingSet(const std::vector<ReplayEpoch> &Epochs) {
  RankerTrainingSet Set;
  for (size_t E = 0; E + 1 < Epochs.size(); ++E) {
    const ReplayEpoch &Epoch = Epochs[E];
    const ReplayEpoch &Next = Epochs[E + 1];
    std::unordered_map<uint32_t, size_t> NextIndex;
    for (size_t I = 0; I < Next.Inputs.size(); ++I)
      NextIndex[Next.Inputs[I].Object] = I;
    for (size_t I = 0; I < Epoch.Inputs.size(); ++I) {
      const ObjectProfileInput &In = Epoch.Inputs[I];
      const ReplayRecordedObject &Recorded = Epoch.Recorded[I];
      RankerObjectContext Obj;
      Obj.ChunkBytes = Recorded.Meta.ChunkBytes;
      Obj.Theta = Recorded.Meta.Theta;
      Obj.Weight = Recorded.Meta.Weight;
      Obj.WeightRank = Recorded.Meta.WeightRank;
      Obj.RankedObjects = Recorded.Meta.RankedObjects;
      for (uint64_t S : In.Samples)
        Obj.TotalSamples += S;
      auto NextIt = NextIndex.find(In.Object);
      for (size_t C = 0; C < In.Samples.size(); ++C) {
        bool Critical = Recorded.SampledCritical[C] || Recorded.GlobalRanked[C];
        bool Promoted = Recorded.Promoted[C] != 0;
        // Only recorded (warm) chunks carry evidence; the cold sea has
        // all-zero features and would just dilute the fit with its
        // overwhelmingly negative labels.
        if (In.Samples[C] == 0 && !Critical && !Promoted)
          continue;
        RankerChunkContext Chunk;
        Chunk.Samples = In.Samples[C];
        Chunk.EstimatedMisses = In.EstimatedMisses[C];
        Chunk.Priority = Recorded.Priority[C];
        Chunk.Critical = Critical;
        Chunk.Promoted = Promoted;
        Chunk.NodeTreeRatio = Recorded.NodeTreeRatio[C];
        std::array<double, NumRankerFeatures> Features{};
        rankerFeatures(Obj, Chunk, Features.data());
        bool Hot = false;
        if (NextIt != NextIndex.end()) {
          const ReplayRecordedObject &NextRecorded =
              Next.Recorded[NextIt->second];
          // Label on next-epoch *observed* hotness (sampled critical or
          // globally ranked), not the full selection: tree promotion
          // patches gaps speculatively, and folding that inflation into
          // the target would teach the model the heuristic's blanket,
          // not the workload's recurring hot set.
          if (C < NextRecorded.SampledCritical.size())
            Hot = NextRecorded.SampledCritical[C] ||
                  NextRecorded.GlobalRanked[C];
        }
        Set.Features.push_back(Features);
        Set.Labels.push_back(Hot ? 1.0 : 0.0);
      }
    }
  }
  return Set;
}

RankerModel atmem::analyzer::trainRidgeRanker(const RankerTrainingSet &Set,
                                              double L2) {
  constexpr size_t N = NumRankerFeatures;
  if (Set.Features.empty() || Set.Features.size() != Set.Labels.size())
    return heuristicMimicModel();

  // Normal equations: (X^T X + L2 * I) w = X^T y, bias unpenalized.
  double XtX[N][N] = {};
  double Xty[N] = {};
  for (size_t R = 0; R < Set.Features.size(); ++R) {
    const std::array<double, N> &F = Set.Features[R];
    double Y = Set.Labels[R];
    for (size_t I = 0; I < N; ++I) {
      Xty[I] += F[I] * Y;
      for (size_t J = 0; J < N; ++J)
        XtX[I][J] += F[I] * F[J];
    }
  }
  for (size_t I = 1; I < N; ++I)
    XtX[I][I] += L2;

  // Gaussian elimination with partial pivoting.
  double W[N] = {};
  size_t Perm[N];
  for (size_t I = 0; I < N; ++I)
    Perm[I] = I;
  for (size_t Col = 0; Col < N; ++Col) {
    size_t Pivot = Col;
    for (size_t Row = Col + 1; Row < N; ++Row)
      if (std::fabs(XtX[Row][Col]) > std::fabs(XtX[Pivot][Col]))
        Pivot = Row;
    if (std::fabs(XtX[Pivot][Col]) < 1e-12)
      return heuristicMimicModel(); // Singular: nothing learnable here.
    if (Pivot != Col) {
      for (size_t J = 0; J < N; ++J)
        std::swap(XtX[Col][J], XtX[Pivot][J]);
      std::swap(Xty[Col], Xty[Pivot]);
    }
    for (size_t Row = Col + 1; Row < N; ++Row) {
      double Factor = XtX[Row][Col] / XtX[Col][Col];
      for (size_t J = Col; J < N; ++J)
        XtX[Row][J] -= Factor * XtX[Col][J];
      Xty[Row] -= Factor * Xty[Col];
    }
  }
  for (size_t Col = N; Col-- > 0;) {
    double Sum = Xty[Col];
    for (size_t J = Col + 1; J < N; ++J)
      Sum -= XtX[Col][J] * W[J];
    W[Col] = Sum / XtX[Col][Col];
  }
  (void)Perm;

  RankerModel Model;
  for (size_t I = 0; I < N; ++I) {
    if (!std::isfinite(W[I]))
      return heuristicMimicModel();
    Model.Weights[I] = W[I];
  }
  // Regression targets are 0/1: the decision level sits at 0.5, folded
  // into the bias so the model's contract stays "select on score > 0".
  Model.Weights[RankerBias] -= 0.5;
  return Model;
}
