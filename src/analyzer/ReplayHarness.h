//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic decision-log replay and policy A/B comparison. A recorded
/// atdl log carries everything the analyzer consumed — per-(epoch, object,
/// chunk) sample counts, miss estimates, chunk geometry, the sampling
/// period — so the harness can reconstruct the exact classification inputs
/// and re-run Analyzer::classifyInputs under any policy on identical data:
///
///   * drift check — the replayed Eq. 1-5 selection must reproduce the
///     recorded verdicts chunk for chunk (atmem_explain --diff semantics:
///     tools/atmem_replay exits 3 on any mismatch), so policy experiments
///     can never silently regress placements;
///   * A/B report — the heuristic and a learned ranker run side by side
///     on every epoch, scored on fast-tier hit fraction (the share of
///     next-epoch miss traffic landing on fast-placed chunks), plan
///     agreement, and migration churn;
///   * training — the same reconstruction yields the (features, label)
///     rows tools/atmem_train fits its linear model on, with labels taken
///     from the *next* epoch's recorded selection.
///
/// Everything here is pure computation over decoded artifacts: replaying
/// the same log twice produces byte-identical reports.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_ANALYZER_REPLAYHARNESS_H
#define ATMEM_ANALYZER_REPLAYHARNESS_H

#include "analyzer/Analyzer.h"
#include "analyzer/RankerPolicy.h"
#include "obs/DecisionLog.h"

#include <array>
#include <memory>
#include <string>
#include <vector>

namespace atmem {
namespace analyzer {

/// The recorded analyzer verdicts of one object in one epoch (what the
/// original run decided; replay checks itself against these).
struct ReplayRecordedObject {
  obs::ObjectEpochRecord Meta;
  /// Per-chunk flag bits from the ChunkDecision records; cold chunks
  /// (absent from the log) are zero everywhere.
  std::vector<uint8_t> SampledCritical;
  std::vector<uint8_t> GlobalRanked;
  std::vector<uint8_t> Promoted;
  std::vector<double> Priority;
  std::vector<double> NodeTreeRatio;

  bool selected(uint32_t Chunk) const {
    return SampledCritical[Chunk] || GlobalRanked[Chunk] || Promoted[Chunk];
  }
};

/// One reconstructed epoch: the classification inputs plus the recorded
/// outcomes, in the original object order.
struct ReplayEpoch {
  uint64_t Epoch = 0;
  uint64_t SamplePeriod = 0;
  std::vector<ObjectProfileInput> Inputs;
  std::vector<ReplayRecordedObject> Recorded;
};

/// Reconstructs per-epoch analyzer inputs from a decoded artifact. Epochs
/// carrying no ObjectEpoch record (e.g. pure migration activity) are
/// skipped. False (with \p Error) on structurally inconsistent records
/// (chunk index past the object's grid, chunk before its object).
bool replayEpochsFromArtifact(const obs::DecisionArtifact &Artifact,
                              std::vector<ReplayEpoch> &Out,
                              std::string *Error = nullptr);

/// Placement metrics of one policy across the replayed epochs.
struct ReplayPolicyMetrics {
  /// Mean fast-tier hit fraction: misses landing on fast-placed chunks
  /// over all misses, scored against the *next* epoch's recorded traffic
  /// (placement serves the future; epochs without a successor are
  /// excluded). 1.0 when no epoch has a successor.
  double HitFractionNext = 0.0;
  /// Same metric scored against the epoch's own traffic.
  double HitFractionSame = 0.0;
  uint64_t PlacedChunks = 0; ///< Selected chunks summed over epochs.
  uint64_t PlanBytes = 0;    ///< Planned bytes summed over epochs.
  /// Migration churn: chunks whose planned placement flipped between
  /// consecutive epochs, summed (the migrations a runtime would issue
  /// after the initial epoch).
  uint64_t ChurnChunks = 0;
};

/// Replay-vs-record drift of the heuristic policy.
struct ReplayDrift {
  uint64_t Mismatches = 0; ///< Chunks whose selection verdict differs.
  std::string First;       ///< "epoch E obj NAME chunk C: ..." or "".
};

/// The full A/B comparison result.
struct ReplayReport {
  uint64_t Epochs = 0;
  uint64_t BudgetBytes = 0; ///< 0 = unbudgeted plans.
  bool RankerActive = false;
  ReplayPolicyMetrics Heuristic;
  ReplayPolicyMetrics Ranker; ///< Meaningful when RankerActive.
  /// Jaccard agreement of the two policies' placed chunk sets, pooled
  /// over all epochs (1.0 when both are empty or no ranker ran).
  double PlanAgreement = 1.0;
  ReplayDrift Drift;
};

/// Re-runs the analyzer over \p Epochs under the heuristic (BaseConfig
/// with no ranker) and — when \p Model is non-null — under the learned
/// ranker, computing drift against the recorded verdicts and the A/B
/// metrics above. \p BudgetBytes caps every epoch's plan (0 = unbounded).
ReplayReport replayCompare(const std::vector<ReplayEpoch> &Epochs,
                           const AnalyzerConfig &BaseConfig,
                           std::shared_ptr<const RankerModel> Model,
                           uint64_t BudgetBytes = 0);

/// Renders \p Report as a fixed-format human-readable block (byte-stable
/// across repeated replays of the same log).
std::string replayReportText(const ReplayReport &Report);

/// Renders \p Report as a single JSON object ("atmem-replay-v1").
std::string replayReportJson(const ReplayReport &Report);

/// One training row per recorded (epoch, object, chunk) that has a
/// successor epoch: atmem-ranker-v1 features from the recorded epoch,
/// label 1.0 when the *next* epoch observed the chunk hot (sampled
/// critical or globally ranked; speculative tree promotion does not
/// count, so the target is the workload's recurrence, not the
/// heuristic's gap patching).
struct RankerTrainingSet {
  std::vector<std::array<double, NumRankerFeatures>> Features;
  std::vector<double> Labels;
};

/// Extracts the training rows from reconstructed epochs. Chunks the log
/// omitted as cold still contribute rows when they are selected next
/// epoch is irrelevant — only recorded (warm) chunks produce rows, which
/// is exactly the evidence the flight recorder kept.
RankerTrainingSet rankerTrainingSet(const std::vector<ReplayEpoch> &Epochs);

/// Ridge least-squares fit of the 0/1 labels (closed-form normal
/// equations, deterministic; the bias column is not penalized). The 0.5
/// decision level of the regression target is folded into the bias so the
/// returned model selects on score > 0. Falls back to the Eq. 1-5 mimic
/// model when the set is empty or the system is singular.
RankerModel trainRidgeRanker(const RankerTrainingSet &Set, double L2);

} // namespace analyzer
} // namespace atmem

#endif // ATMEM_ANALYZER_REPLAYHARNESS_H
