#include "apps/Kernel.h"

#include "apps/Kernels.h"
#include "support/Error.h"

#include <cstring>

using namespace atmem;
using namespace atmem::apps;

Kernel::~Kernel() = default;

GraphArrays apps::registerGraph(core::Runtime &Rt, const graph::CsrGraph &G,
                                bool WithWeights) {
  GraphArrays Arrays;
  Arrays.NumVertices = G.numVertices();
  Arrays.NumEdges = G.numEdges();

  bool WasTracking = Rt.trackingEnabled();
  Rt.setTrackingEnabled(false);
  Arrays.RowOffsets =
      Rt.allocate<uint64_t>("csr.row_offsets", G.rowOffsets().size());
  std::memcpy(Arrays.RowOffsets.raw(), G.rowOffsets().data(),
              G.rowOffsets().size() * sizeof(uint64_t));
  Arrays.Cols = Rt.allocate<graph::VertexId>("csr.cols", G.cols().size());
  std::memcpy(Arrays.Cols.raw(), G.cols().data(),
              G.cols().size() * sizeof(graph::VertexId));
  if (WithWeights && G.hasWeights()) {
    Arrays.Weights = Rt.allocate<uint32_t>("csr.weights", G.weights().size());
    std::memcpy(Arrays.Weights.raw(), G.weights().data(),
                G.weights().size() * sizeof(uint32_t));
  }
  Rt.setTrackingEnabled(WasTracking);
  return Arrays;
}

const std::vector<std::string> &apps::kernelNames() {
  static const std::vector<std::string> Names = {"bfs", "sssp", "pr", "bc",
                                                 "cc"};
  return Names;
}

bool apps::isKnownKernel(const std::string &Name) {
  if (Name == "spmv" || Name == "tc" || Name == "kcore")
    return true;
  for (const std::string &Known : kernelNames())
    if (Known == Name)
      return true;
  return false;
}

std::unique_ptr<Kernel> apps::makeKernel(const std::string &Name) {
  if (Name == "bfs")
    return std::make_unique<BfsKernel>();
  if (Name == "sssp")
    return std::make_unique<SsspKernel>();
  if (Name == "pr")
    return std::make_unique<PageRankKernel>();
  if (Name == "bc")
    return std::make_unique<BcKernel>();
  if (Name == "cc")
    return std::make_unique<CcKernel>();
  if (Name == "spmv")
    return std::make_unique<SpmvKernel>();
  if (Name == "tc")
    return std::make_unique<TriangleCountKernel>();
  if (Name == "kcore")
    return std::make_unique<KCoreKernel>();
  reportFatalError("unknown kernel: " + Name);
}
