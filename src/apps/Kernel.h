//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kernel interface for the paper's five graph applications (BFS, SSSP,
/// PageRank, BC, CC; Section 6) plus the SpMV generalization (Section 9).
/// A kernel registers its data objects with an ATMem runtime during
/// setup() — CSR arrays plus its per-vertex property arrays — and then
/// executes *iterations*: one full tracked execution of the algorithm.
/// The experiment harnesses profile the first iteration, migrate, and
/// report the time of the second (paper Section 6's methodology).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_APPS_KERNEL_H
#define ATMEM_APPS_KERNEL_H

#include "core/Runtime.h"
#include "graph/CsrGraph.h"

#include <memory>
#include <string>
#include <vector>

namespace atmem {
namespace apps {

/// CSR arrays registered with a runtime, shared by every kernel.
struct GraphArrays {
  core::TrackedArray<uint64_t> RowOffsets;
  core::TrackedArray<graph::VertexId> Cols;
  core::TrackedArray<uint32_t> Weights; ///< Empty unless weighted.
  uint32_t NumVertices = 0;
  uint64_t NumEdges = 0;
};

/// Registers \p G's arrays with \p Rt (copying the adjacency into tracked
/// memory). Weights are registered only when \p WithWeights and present.
GraphArrays registerGraph(core::Runtime &Rt, const graph::CsrGraph &G,
                          bool WithWeights);

/// One graph application.
class Kernel {
public:
  virtual ~Kernel();

  /// True when runIteration() executes through the parallel
  /// tracked-execution engine (the owning runtime has SimThreads > 1 and
  /// this kernel has a parallel variant).
  virtual bool runsParallel() const { return false; }

  /// Short name ("bfs", "pr", ...).
  virtual std::string name() const = 0;

  /// True when the kernel consumes edge weights (SSSP, SpMV).
  virtual bool needsWeights() const { return false; }

  /// Registers all data objects with \p Rt and prepares initial state.
  /// Must be called exactly once before the first iteration.
  virtual void setup(core::Runtime &Rt, const graph::CsrGraph &G) = 0;

  /// Runs one full tracked execution of the algorithm.
  virtual void runIteration() = 0;

  /// Order-independent checksum of the current result, for validation
  /// against the reference implementations.
  virtual uint64_t checksum() const = 0;

protected:
  /// The runtime this kernel registered with (set by setup()); parallel
  /// kernel variants dispatch their loops through it.
  core::Runtime *Owner = nullptr;
};

/// Kernel names in the paper's evaluation order.
const std::vector<std::string> &kernelNames();

/// True when \p Name identifies a kernel (including "spmv").
bool isKnownKernel(const std::string &Name);

/// Creates the kernel named \p Name ("bfs", "sssp", "pr", "bc", "cc",
/// "spmv"). Aborts on unknown names.
std::unique_ptr<Kernel> makeKernel(const std::string &Name);

} // namespace apps
} // namespace atmem

#endif // ATMEM_APPS_KERNEL_H
