#include "apps/Kernels.h"

#include <atomic>
#include <cmath>
#include <cstring>

using namespace atmem;
using namespace atmem::apps;
using graph::VertexId;

/// Registers an all-ones weight array when the input graph carries none,
/// so the weighted kernels work on any dataset.
static void ensureWeights(core::Runtime &Rt, GraphArrays &Arrays) {
  if (Arrays.Weights.size() == Arrays.NumEdges)
    return;
  bool WasTracking = Rt.trackingEnabled();
  Rt.setTrackingEnabled(false);
  Arrays.Weights = Rt.allocate<uint32_t>("csr.weights", Arrays.NumEdges);
  for (uint64_t E = 0; E < Arrays.NumEdges; ++E)
    Arrays.Weights.raw()[E] = 1;
  Rt.setTrackingEnabled(WasTracking);
}

//===----------------------------------------------------------------------===//
// BFS
//===----------------------------------------------------------------------===//

void BfsKernel::setup(core::Runtime &Rt, const graph::CsrGraph &G) {
  Owner = &Rt;
  Arrays = registerGraph(Rt, G, /*WithWeights=*/false);
  bool WasTracking = Rt.trackingEnabled();
  Rt.setTrackingEnabled(false);
  Levels = Rt.allocate<int32_t>("bfs.levels", Arrays.NumVertices);
  Rt.setTrackingEnabled(WasTracking);
  Source = G.maxDegreeVertex();
  Frontier.reserve(Arrays.NumVertices);
  Next.reserve(Arrays.NumVertices);
  LocalNext.resize(Rt.simThreads());
}

bool BfsKernel::runsParallel() const { return Owner && Owner->simThreads() > 1; }

void BfsKernel::runParallelIteration() {
  uint32_t N = Arrays.NumVertices;
  Owner->parallelTracked(0, N, [&](uint32_t, uint64_t Begin, uint64_t End) {
    for (uint64_t V = Begin; V < End; ++V)
      Levels[V] = -1;
  });
  if (N == 0)
    return;

  Frontier.clear();
  Frontier.push_back(Source);
  Levels[Source] = 0;
  int32_t Depth = 0;
  while (!Frontier.empty()) {
    for (std::vector<VertexId> &Local : LocalNext)
      Local.clear();
    Owner->parallelTracked(
        0, Frontier.size(),
        [&](uint32_t Tid, uint64_t Begin, uint64_t End) {
          std::vector<VertexId> &Local = LocalNext[Tid];
          for (uint64_t I = Begin; I < End; ++I) {
            VertexId U = Frontier[I];
            uint64_t EdgeBegin = Arrays.RowOffsets[U];
            uint64_t EdgeEnd = Arrays.RowOffsets[U + 1];
            for (uint64_t E = EdgeBegin; E < EdgeEnd; ++E) {
              VertexId V = Arrays.Cols[E];
              std::atomic_ref<int32_t> Slot(Levels[V]);
              if (Slot.load(std::memory_order_relaxed) != -1)
                continue;
              int32_t Expected = -1;
              if (Slot.compare_exchange_strong(Expected, Depth + 1,
                                               std::memory_order_relaxed))
                Local.push_back(V);
            }
          }
        });
    Next.clear();
    for (const std::vector<VertexId> &Local : LocalNext)
      Next.insert(Next.end(), Local.begin(), Local.end());
    Frontier.swap(Next);
    ++Depth;
  }
}

void BfsKernel::runIteration() {
  if (runsParallel()) {
    runParallelIteration();
    return;
  }
  uint32_t N = Arrays.NumVertices;
  for (uint32_t V = 0; V < N; ++V)
    Levels[V] = -1;
  if (N == 0)
    return;

  Frontier.clear();
  Frontier.push_back(Source);
  Levels[Source] = 0;
  int32_t Depth = 0;
  while (!Frontier.empty()) {
    Next.clear();
    for (VertexId U : Frontier) {
      uint64_t Begin = Arrays.RowOffsets[U];
      uint64_t End = Arrays.RowOffsets[U + 1];
      for (uint64_t E = Begin; E < End; ++E) {
        VertexId V = Arrays.Cols[E];
        if (Levels[V] == -1) {
          Levels[V] = Depth + 1;
          Next.push_back(V);
        }
      }
    }
    Frontier.swap(Next);
    ++Depth;
  }
}

uint64_t BfsKernel::checksum() const {
  uint64_t Sum = 0;
  for (uint32_t V = 0; V < Arrays.NumVertices; ++V) {
    int32_t Level = Levels.raw()[V];
    Sum += Level >= 0 ? static_cast<uint64_t>(Level) + 1 : 0;
  }
  return Sum;
}

//===----------------------------------------------------------------------===//
// SSSP (frontier Bellman-Ford)
//===----------------------------------------------------------------------===//

void SsspKernel::setup(core::Runtime &Rt, const graph::CsrGraph &G) {
  Arrays = registerGraph(Rt, G, /*WithWeights=*/true);
  ensureWeights(Rt, Arrays);
  bool WasTracking = Rt.trackingEnabled();
  Rt.setTrackingEnabled(false);
  Dist = Rt.allocate<uint32_t>("sssp.dist", Arrays.NumVertices);
  Rt.setTrackingEnabled(WasTracking);
  Source = G.maxDegreeVertex();
  InNext.assign(Arrays.NumVertices, 0);
}

void SsspKernel::runIteration() {
  uint32_t N = Arrays.NumVertices;
  constexpr uint32_t Inf = ~0u;
  for (uint32_t V = 0; V < N; ++V)
    Dist[V] = Inf;
  if (N == 0)
    return;

  Frontier.clear();
  Frontier.push_back(Source);
  Dist[Source] = 0;
  while (!Frontier.empty()) {
    Next.clear();
    for (VertexId U : Frontier) {
      uint64_t Begin = Arrays.RowOffsets[U];
      uint64_t End = Arrays.RowOffsets[U + 1];
      uint32_t DistU = Dist[U];
      for (uint64_t E = Begin; E < End; ++E) {
        VertexId V = Arrays.Cols[E];
        uint32_t Candidate = DistU + Arrays.Weights[E];
        if (Candidate < Dist[V]) {
          Dist[V] = Candidate;
          if (!InNext[V]) {
            InNext[V] = 1;
            Next.push_back(V);
          }
        }
      }
    }
    for (VertexId V : Next)
      InNext[V] = 0;
    Frontier.swap(Next);
  }
}

uint64_t SsspKernel::checksum() const {
  uint64_t Sum = 0;
  for (uint32_t V = 0; V < Arrays.NumVertices; ++V) {
    uint32_t D = Dist.raw()[V];
    Sum += D == ~0u ? 0 : D + 1;
  }
  return Sum;
}

//===----------------------------------------------------------------------===//
// PageRank (push style, damping 0.85)
//===----------------------------------------------------------------------===//

void PageRankKernel::setup(core::Runtime &Rt, const graph::CsrGraph &G) {
  Owner = &Rt;
  Arrays = registerGraph(Rt, G, /*WithWeights=*/false);
  bool WasTracking = Rt.trackingEnabled();
  Rt.setTrackingEnabled(false);
  uint32_t N = Arrays.NumVertices;
  Rank = Rt.allocate<float>("pr.rank", N);
  NextRank = Rt.allocate<float>("pr.next_rank", N);
  InvDegree = Rt.allocate<float>("pr.inv_degree", N);
  float Initial = N == 0 ? 0.0f : 1.0f / static_cast<float>(N);
  for (uint32_t V = 0; V < N; ++V) {
    Rank.raw()[V] = Initial;
    NextRank.raw()[V] = 0.0f;
    uint64_t Degree = G.outDegree(V);
    InvDegree.raw()[V] =
        Degree == 0 ? 0.0f : 1.0f / static_cast<float>(Degree);
  }
  if (Rt.config().SimThreads > 1) {
    // In-edge CSR for the pull-style parallel iteration. The transpose is
    // stable in global edge order: each destination's source list appears
    // in the order the push loop would have accumulated into it, so the
    // pull's per-vertex float sums match the serial push bit for bit.
    InOffsets = Rt.allocate<uint64_t>("pr.in_offsets", N + 1);
    InSrcs = Rt.allocate<VertexId>("pr.in_srcs", Arrays.NumEdges);
    Contrib = Rt.allocate<float>("pr.contrib", N);
    const uint64_t *Rows = Arrays.RowOffsets.raw();
    const VertexId *Cols = Arrays.Cols.raw();
    uint64_t *InOff = InOffsets.raw();
    for (uint32_t V = 0; V <= N; ++V)
      InOff[V] = 0;
    for (uint64_t E = 0; E < Arrays.NumEdges; ++E)
      ++InOff[Cols[E] + 1];
    for (uint32_t V = 0; V < N; ++V)
      InOff[V + 1] += InOff[V];
    std::vector<uint64_t> Cursor(InOff, InOff + N);
    for (uint32_t U = 0; U < N; ++U)
      for (uint64_t E = Rows[U]; E < Rows[U + 1]; ++E)
        InSrcs.raw()[Cursor[Cols[E]]++] = U;
  }
  Rt.setTrackingEnabled(WasTracking);
}

bool PageRankKernel::runsParallel() const {
  return Owner && Owner->simThreads() > 1;
}

void PageRankKernel::runParallelIteration() {
  uint32_t N = Arrays.NumVertices;
  if (N == 0)
    return;
  constexpr float Damping = 0.85f;
  Owner->parallelTracked(0, N, [&](uint32_t, uint64_t Begin, uint64_t End) {
    for (uint64_t U = Begin; U < End; ++U)
      Contrib[U] = Rank[U] * InvDegree[U];
  });
  float Base = (1.0f - Damping) / static_cast<float>(N);
  Owner->parallelTracked(0, N, [&](uint32_t, uint64_t Begin, uint64_t End) {
    for (uint64_t V = Begin; V < End; ++V) {
      float Acc = 0.0f;
      uint64_t InBegin = InOffsets[V];
      uint64_t InEnd = InOffsets[V + 1];
      for (uint64_t K = InBegin; K < InEnd; ++K)
        Acc += Contrib[InSrcs[K]];
      Rank[V] = Base + Damping * Acc;
    }
  });
}

void PageRankKernel::runIteration() {
  if (runsParallel()) {
    runParallelIteration();
    return;
  }
  uint32_t N = Arrays.NumVertices;
  if (N == 0)
    return;
  constexpr float Damping = 0.85f;
  for (uint32_t U = 0; U < N; ++U) {
    float Contribution = Rank[U] * InvDegree[U];
    if (Contribution == 0.0f)
      continue;
    uint64_t Begin = Arrays.RowOffsets[U];
    uint64_t End = Arrays.RowOffsets[U + 1];
    for (uint64_t E = Begin; E < End; ++E)
      NextRank[Arrays.Cols[E]] += Contribution;
  }
  float Base = (1.0f - Damping) / static_cast<float>(N);
  for (uint32_t V = 0; V < N; ++V) {
    Rank[V] = Base + Damping * NextRank[V];
    NextRank[V] = 0.0f;
  }
}

uint64_t PageRankKernel::checksum() const {
  // Quantize so the checksum is robust to sub-ulp noise while still
  // catching real divergences.
  uint64_t Sum = 0;
  for (uint32_t V = 0; V < Arrays.NumVertices; ++V)
    Sum += static_cast<uint64_t>(
        std::lround(static_cast<double>(Rank.raw()[V]) * 1e7));
  return Sum;
}

//===----------------------------------------------------------------------===//
// Betweenness centrality (Brandes, single source)
//===----------------------------------------------------------------------===//

void BcKernel::setup(core::Runtime &Rt, const graph::CsrGraph &G) {
  Arrays = registerGraph(Rt, G, /*WithWeights=*/false);
  bool WasTracking = Rt.trackingEnabled();
  Rt.setTrackingEnabled(false);
  uint32_t N = Arrays.NumVertices;
  Sigma = Rt.allocate<float>("bc.sigma", N);
  Delta = Rt.allocate<float>("bc.delta", N);
  Depth = Rt.allocate<int32_t>("bc.depth", N);
  Rt.setTrackingEnabled(WasTracking);
  Source = G.maxDegreeVertex();
  Order.reserve(N);
}

void BcKernel::runIteration() {
  uint32_t N = Arrays.NumVertices;
  if (N == 0)
    return;
  for (uint32_t V = 0; V < N; ++V) {
    Sigma[V] = 0.0f;
    Delta[V] = 0.0f;
    Depth[V] = -1;
  }

  // Forward phase: BFS computing shortest-path counts.
  Order.clear();
  Order.push_back(Source);
  Sigma[Source] = 1.0f;
  Depth[Source] = 0;
  for (size_t Head = 0; Head < Order.size(); ++Head) {
    VertexId U = Order[Head];
    int32_t DepthU = Depth[U];
    float SigmaU = Sigma[U];
    uint64_t Begin = Arrays.RowOffsets[U];
    uint64_t End = Arrays.RowOffsets[U + 1];
    for (uint64_t E = Begin; E < End; ++E) {
      VertexId V = Arrays.Cols[E];
      if (Depth[V] == -1) {
        Depth[V] = DepthU + 1;
        Order.push_back(V);
      }
      if (Depth[V] == DepthU + 1)
        Sigma[V] += SigmaU;
    }
  }

  // Backward phase: dependency accumulation in reverse discovery order.
  for (size_t I = Order.size(); I-- > 0;) {
    VertexId U = Order[I];
    int32_t DepthU = Depth[U];
    float SigmaU = Sigma[U];
    float Acc = 0.0f;
    uint64_t Begin = Arrays.RowOffsets[U];
    uint64_t End = Arrays.RowOffsets[U + 1];
    for (uint64_t E = Begin; E < End; ++E) {
      VertexId V = Arrays.Cols[E];
      if (Depth[V] == DepthU + 1)
        Acc += SigmaU / Sigma[V] * (1.0f + Delta[V]);
    }
    Delta[U] += Acc;
  }
}

uint64_t BcKernel::checksum() const {
  uint64_t Sum = 0;
  for (uint32_t V = 0; V < Arrays.NumVertices; ++V)
    Sum += static_cast<uint64_t>(
        std::lround(static_cast<double>(Delta.raw()[V]) * 1e3));
  return Sum;
}

//===----------------------------------------------------------------------===//
// Connected components (label propagation + pointer jumping)
//===----------------------------------------------------------------------===//

void CcKernel::setup(core::Runtime &Rt, const graph::CsrGraph &G) {
  Arrays = registerGraph(Rt, G, /*WithWeights=*/false);
  bool WasTracking = Rt.trackingEnabled();
  Rt.setTrackingEnabled(false);
  Comp = Rt.allocate<uint32_t>("cc.comp", Arrays.NumVertices);
  for (uint32_t V = 0; V < Arrays.NumVertices; ++V)
    Comp.raw()[V] = V;
  Rt.setTrackingEnabled(WasTracking);
}

void CcKernel::runIteration() {
  uint32_t N = Arrays.NumVertices;
  bool Changed = false;
  // Hooking pass over every edge, updating both endpoints so components
  // form over the undirected closure of the edge set.
  for (uint32_t U = 0; U < N; ++U) {
    uint64_t Begin = Arrays.RowOffsets[U];
    uint64_t End = Arrays.RowOffsets[U + 1];
    for (uint64_t E = Begin; E < End; ++E) {
      VertexId V = Arrays.Cols[E];
      uint32_t CompU = Comp[U];
      uint32_t CompV = Comp[V];
      if (CompU < CompV) {
        Comp[V] = CompU;
        Changed = true;
      } else if (CompV < CompU) {
        Comp[U] = CompV;
        Changed = true;
      }
    }
  }
  // Pointer-jumping compression pass.
  for (uint32_t V = 0; V < N; ++V) {
    uint32_t Label = Comp[V];
    while (Label != Comp[Label])
      Label = Comp[Label];
    Comp[V] = Label;
  }
  Converged = !Changed;
}

uint64_t CcKernel::checksum() const {
  uint64_t Sum = 0;
  for (uint32_t V = 0; V < Arrays.NumVertices; ++V)
    Sum += Comp.raw()[V];
  return Sum;
}

//===----------------------------------------------------------------------===//
// Triangle counting
//===----------------------------------------------------------------------===//

void TriangleCountKernel::setup(core::Runtime &Rt,
                                const graph::CsrGraph &G) {
  // Forward graph: undirected closure, deduplicated, keeping only edges
  // to higher-ranked endpoints (rank = (degree, id)) so each triangle is
  // counted exactly once at its lowest-ranked vertex.
  graph::BuildOptions Options;
  Options.Symmetrize = true;
  Options.DeduplicateEdges = true;
  graph::CsrGraph Undirected =
      graph::buildCsr(G.numVertices(),
                      [&] {
                        std::vector<graph::Edge> Edges;
                        Edges.reserve(G.numEdges());
                        for (VertexId U = 0; U < G.numVertices(); ++U)
                          for (VertexId V : G.neighbors(U))
                            Edges.push_back({U, V});
                        return Edges;
                      }(),
                      Options);
  auto Rank = [&](VertexId V) {
    return std::make_pair(Undirected.outDegree(V), V);
  };
  std::vector<graph::Edge> Forward;
  Forward.reserve(Undirected.numEdges() / 2);
  for (VertexId U = 0; U < Undirected.numVertices(); ++U)
    for (VertexId V : Undirected.neighbors(U))
      if (Rank(U) < Rank(V))
        Forward.push_back({U, V});
  graph::CsrGraph ForwardGraph =
      graph::buildCsr(G.numVertices(), std::move(Forward));

  Arrays = registerGraph(Rt, ForwardGraph, /*WithWeights=*/false);
  bool WasTracking = Rt.trackingEnabled();
  Rt.setTrackingEnabled(false);
  PerVertex = Rt.allocate<uint64_t>("tc.per_vertex", Arrays.NumVertices);
  Rt.setTrackingEnabled(WasTracking);
}

void TriangleCountKernel::runIteration() {
  uint32_t N = Arrays.NumVertices;
  Triangles = 0;
  for (uint32_t U = 0; U < N; ++U) {
    uint64_t Count = 0;
    uint64_t UBegin = Arrays.RowOffsets[U];
    uint64_t UEnd = Arrays.RowOffsets[U + 1];
    for (uint64_t E = UBegin; E < UEnd; ++E) {
      VertexId V = Arrays.Cols[E];
      // Two-pointer intersection of forward(U) and forward(V).
      uint64_t I = UBegin;
      uint64_t J = Arrays.RowOffsets[V];
      uint64_t JEnd = Arrays.RowOffsets[V + 1];
      while (I < UEnd && J < JEnd) {
        VertexId A = Arrays.Cols[I];
        VertexId B = Arrays.Cols[J];
        if (A == B) {
          ++Count;
          ++I;
          ++J;
        } else if (A < B) {
          ++I;
        } else {
          ++J;
        }
      }
    }
    PerVertex[U] = Count;
    Triangles += Count;
  }
}

uint64_t TriangleCountKernel::checksum() const { return Triangles; }

//===----------------------------------------------------------------------===//
// k-core decomposition (iterative peeling)
//===----------------------------------------------------------------------===//

void KCoreKernel::setup(core::Runtime &Rt, const graph::CsrGraph &G) {
  graph::BuildOptions Options;
  Options.Symmetrize = true;
  Options.DeduplicateEdges = true;
  std::vector<graph::Edge> Edges;
  Edges.reserve(G.numEdges());
  for (VertexId U = 0; U < G.numVertices(); ++U)
    for (VertexId V : G.neighbors(U))
      Edges.push_back({U, V});
  graph::CsrGraph Undirected =
      graph::buildCsr(G.numVertices(), std::move(Edges), Options);

  Arrays = registerGraph(Rt, Undirected, /*WithWeights=*/false);
  bool WasTracking = Rt.trackingEnabled();
  Rt.setTrackingEnabled(false);
  uint32_t N = Arrays.NumVertices;
  Degree = Rt.allocate<uint32_t>("kcore.degree", N);
  Core = Rt.allocate<uint32_t>("kcore.core", N);
  for (uint32_t V = 0; V < N; ++V) {
    Degree.raw()[V] = static_cast<uint32_t>(Undirected.outDegree(V));
    Core.raw()[V] = 0;
  }
  Rt.setTrackingEnabled(WasTracking);
  CurrentK = 1;
  Remaining = N;
  Converged = N == 0;
}

void KCoreKernel::runIteration() {
  if (Converged)
    return;
  constexpr uint32_t Removed = ~0u;
  uint32_t N = Arrays.NumVertices;
  // One peel round at the current k: remove every vertex whose residual
  // degree is below k; its coreness is k-1.
  bool Peeled = false;
  for (uint32_t V = 0; V < N; ++V) {
    uint32_t D = Degree[V];
    if (D == Removed || D >= CurrentK)
      continue;
    Degree[V] = Removed;
    Core[V] = CurrentK - 1;
    --Remaining;
    Peeled = true;
    uint64_t Begin = Arrays.RowOffsets[V];
    uint64_t End = Arrays.RowOffsets[V + 1];
    for (uint64_t E = Begin; E < End; ++E) {
      VertexId W = Arrays.Cols[E];
      uint32_t DW = Degree[W];
      if (DW != Removed && DW > 0)
        Degree[W] = DW - 1;
    }
  }
  if (Remaining == 0) {
    Converged = true;
    return;
  }
  if (!Peeled)
    ++CurrentK;
}

uint64_t KCoreKernel::checksum() const {
  uint64_t Sum = 0;
  for (uint32_t V = 0; V < Arrays.NumVertices; ++V)
    Sum += Core.raw()[V];
  return Sum;
}

//===----------------------------------------------------------------------===//
// SpMV
//===----------------------------------------------------------------------===//

void SpmvKernel::setup(core::Runtime &Rt, const graph::CsrGraph &G) {
  Owner = &Rt;
  Arrays = registerGraph(Rt, G, /*WithWeights=*/true);
  ensureWeights(Rt, Arrays);
  bool WasTracking = Rt.trackingEnabled();
  Rt.setTrackingEnabled(false);
  uint32_t N = Arrays.NumVertices;
  X = Rt.allocate<float>("spmv.x", N);
  Y = Rt.allocate<float>("spmv.y", N);
  for (uint32_t V = 0; V < N; ++V)
    X.raw()[V] = 1.0f + static_cast<float>(V % 7);
  Rt.setTrackingEnabled(WasTracking);
}

bool SpmvKernel::runsParallel() const {
  return Owner && Owner->simThreads() > 1;
}

void SpmvKernel::runIteration() {
  uint32_t N = Arrays.NumVertices;
  // Rows are independent, so the parallel engine runs the same row body
  // chunked over threads; per-row accumulation order is unchanged and Y
  // is bit-identical to the serial pass.
  auto RowRange = [&](uint64_t Begin, uint64_t End) {
    for (uint64_t U = Begin; U < End; ++U) {
      float Acc = 0.0f;
      uint64_t EdgeBegin = Arrays.RowOffsets[U];
      uint64_t EdgeEnd = Arrays.RowOffsets[U + 1];
      for (uint64_t E = EdgeBegin; E < EdgeEnd; ++E)
        Acc += static_cast<float>(Arrays.Weights[E]) * X[Arrays.Cols[E]];
      Y[U] = Acc;
    }
  };
  if (runsParallel()) {
    Owner->parallelTracked(0, N, [&](uint32_t, uint64_t Begin, uint64_t End) {
      RowRange(Begin, End);
    });
    return;
  }
  RowRange(0, N);
}

uint64_t SpmvKernel::checksum() const {
  uint64_t Sum = 0;
  for (uint32_t V = 0; V < Arrays.NumVertices; ++V)
    Sum += static_cast<uint64_t>(
        std::lround(static_cast<double>(Y.raw()[V])));
  return Sum;
}
