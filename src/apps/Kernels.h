//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete kernel classes. Exposed (rather than hidden behind the
/// factory) so tests can reach the typed result arrays.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_APPS_KERNELS_H
#define ATMEM_APPS_KERNELS_H

#include "apps/Kernel.h"

namespace atmem {
namespace apps {

/// Breadth-first search from the graph's max-degree hub. Result: per
/// vertex BFS level (-1 unreached). With SimThreads > 1 each level's
/// frontier expands in parallel (top-down, atomic level claims); the
/// level assignment — and so the checksum — is identical to the serial
/// traversal.
class BfsKernel : public Kernel {
public:
  std::string name() const override { return "bfs"; }
  bool runsParallel() const override;
  void setup(core::Runtime &Rt, const graph::CsrGraph &G) override;
  void runIteration() override;
  uint64_t checksum() const override;

  const core::TrackedArray<int32_t> &levels() const { return Levels; }
  graph::VertexId source() const { return Source; }

private:
  void runParallelIteration();

  GraphArrays Arrays;
  core::TrackedArray<int32_t> Levels;
  graph::VertexId Source = 0;
  std::vector<graph::VertexId> Frontier; ///< Untracked scratch.
  std::vector<graph::VertexId> Next;
  /// Per-participant next-frontier buffers, concatenated in thread-index
  /// order at the end of each level (parallel mode only).
  std::vector<std::vector<graph::VertexId>> LocalNext;
};

/// Single-source shortest path (frontier Bellman-Ford) from the hub.
/// Result: per-vertex distance (UINT32_MAX unreached).
class SsspKernel : public Kernel {
public:
  std::string name() const override { return "sssp"; }
  bool needsWeights() const override { return true; }
  void setup(core::Runtime &Rt, const graph::CsrGraph &G) override;
  void runIteration() override;
  uint64_t checksum() const override;

  const core::TrackedArray<uint32_t> &distances() const { return Dist; }
  graph::VertexId source() const { return Source; }

private:
  GraphArrays Arrays;
  core::TrackedArray<uint32_t> Dist;
  graph::VertexId Source = 0;
  std::vector<graph::VertexId> Frontier;
  std::vector<graph::VertexId> Next;
  std::vector<uint8_t> InNext; ///< Untracked frontier membership bits.
};

/// One PageRank power iteration per runIteration() (push style, damping
/// 0.85). Result: per-vertex rank. With SimThreads > 1 the iteration
/// runs pull-style over an edge-order-stable in-CSR transpose, which
/// reproduces the serial push's per-vertex float accumulation order
/// exactly — ranks (and so checksums) are bit-identical to serial.
class PageRankKernel : public Kernel {
public:
  std::string name() const override { return "pr"; }
  bool runsParallel() const override;
  void setup(core::Runtime &Rt, const graph::CsrGraph &G) override;
  void runIteration() override;
  uint64_t checksum() const override;

  const core::TrackedArray<float> &ranks() const { return Rank; }

private:
  void runParallelIteration();

  GraphArrays Arrays;
  core::TrackedArray<float> Rank;
  core::TrackedArray<float> NextRank;
  core::TrackedArray<float> InvDegree;
  /// Parallel mode only: stable in-edge CSR (sources of v's in-edges in
  /// global edge order) and the per-source contribution staging array.
  core::TrackedArray<uint64_t> InOffsets;
  core::TrackedArray<graph::VertexId> InSrcs;
  core::TrackedArray<float> Contrib;
};

/// Betweenness centrality (Brandes) from the hub: forward BFS counting
/// shortest paths, then dependency accumulation. Result: per-vertex delta.
class BcKernel : public Kernel {
public:
  std::string name() const override { return "bc"; }
  void setup(core::Runtime &Rt, const graph::CsrGraph &G) override;
  void runIteration() override;
  uint64_t checksum() const override;

  const core::TrackedArray<float> &deltas() const { return Delta; }
  graph::VertexId source() const { return Source; }

private:
  GraphArrays Arrays;
  core::TrackedArray<float> Sigma;
  core::TrackedArray<float> Delta;
  core::TrackedArray<int32_t> Depth;
  graph::VertexId Source = 0;
  std::vector<graph::VertexId> Order; ///< Untracked discovery order.
};

/// Connected components (label propagation with pointer jumping over the
/// undirected closure). Result: per-vertex component label; iterations
/// continue from the current state and each performs one full edge pass.
class CcKernel : public Kernel {
public:
  std::string name() const override { return "cc"; }
  void setup(core::Runtime &Rt, const graph::CsrGraph &G) override;
  void runIteration() override;
  uint64_t checksum() const override;

  const core::TrackedArray<uint32_t> &components() const { return Comp; }
  /// True once a full pass made no update (fixpoint reached).
  bool converged() const { return Converged; }

private:
  GraphArrays Arrays;
  core::TrackedArray<uint32_t> Comp;
  bool Converged = false;
};

/// Triangle counting over the undirected closure: for every edge (u, v)
/// with u < v, intersect the sorted forward-neighbor lists. A classic
/// irregular kernel beyond the paper's five, exercising heavy sequential
/// scans of the edge array with data-dependent reuse.
class TriangleCountKernel : public Kernel {
public:
  std::string name() const override { return "tc"; }
  void setup(core::Runtime &Rt, const graph::CsrGraph &G) override;
  void runIteration() override;
  uint64_t checksum() const override;

  uint64_t triangles() const { return Triangles; }

private:
  GraphArrays Arrays; ///< Forward (degree-ordered, deduplicated) edges.
  core::TrackedArray<uint64_t> PerVertex; ///< Triangles closed per vertex.
  uint64_t Triangles = 0;
};

/// k-core decomposition by iterative peeling over the undirected closure:
/// each runIteration() removes every vertex whose residual degree is
/// below the current k, raising k when the round is stable; coreness is
/// final once no vertex remains.
class KCoreKernel : public Kernel {
public:
  std::string name() const override { return "kcore"; }
  void setup(core::Runtime &Rt, const graph::CsrGraph &G) override;
  void runIteration() override;
  uint64_t checksum() const override;

  const core::TrackedArray<uint32_t> &coreness() const { return Core; }
  bool converged() const { return Converged; }

private:
  GraphArrays Arrays; ///< Symmetrized edges.
  core::TrackedArray<uint32_t> Degree; ///< Residual degree (~0 = removed).
  core::TrackedArray<uint32_t> Core;   ///< Assigned coreness.
  uint32_t CurrentK = 1;
  uint32_t Remaining = 0;
  bool Converged = false;
};

/// Sparse matrix-vector multiply y = A x over the weighted adjacency
/// matrix (the Section 9 generalization workload).
class SpmvKernel : public Kernel {
public:
  std::string name() const override { return "spmv"; }
  bool needsWeights() const override { return true; }
  bool runsParallel() const override;
  void setup(core::Runtime &Rt, const graph::CsrGraph &G) override;
  void runIteration() override;
  uint64_t checksum() const override;

  const core::TrackedArray<float> &result() const { return Y; }

private:
  GraphArrays Arrays;
  core::TrackedArray<float> X;
  core::TrackedArray<float> Y;
};

} // namespace apps
} // namespace atmem

#endif // ATMEM_APPS_KERNELS_H
