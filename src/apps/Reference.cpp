#include "apps/Reference.h"

#include <algorithm>
#include <deque>
#include <numeric>

using namespace atmem;
using namespace atmem::apps;
using graph::CsrGraph;
using graph::VertexId;

std::vector<int32_t> apps::referenceBfs(const CsrGraph &G, VertexId Source) {
  std::vector<int32_t> Levels(G.numVertices(), -1);
  if (G.numVertices() == 0)
    return Levels;
  std::deque<VertexId> Queue;
  Queue.push_back(Source);
  Levels[Source] = 0;
  while (!Queue.empty()) {
    VertexId U = Queue.front();
    Queue.pop_front();
    for (VertexId V : G.neighbors(U)) {
      if (Levels[V] == -1) {
        Levels[V] = Levels[U] + 1;
        Queue.push_back(V);
      }
    }
  }
  return Levels;
}

std::vector<uint32_t> apps::referenceSssp(const CsrGraph &G,
                                          VertexId Source) {
  constexpr uint32_t Inf = ~0u;
  std::vector<uint32_t> Dist(G.numVertices(), Inf);
  if (G.numVertices() == 0)
    return Dist;
  Dist[Source] = 0;
  // Bellman-Ford to fixpoint: simple and obviously correct.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (VertexId U = 0; U < G.numVertices(); ++U) {
      if (Dist[U] == Inf)
        continue;
      auto Neighbors = G.neighbors(U);
      for (size_t I = 0; I < Neighbors.size(); ++I) {
        uint32_t W = G.hasWeights()
                         ? G.weights()[G.rowOffsets()[U] + I]
                         : 1;
        uint32_t Candidate = Dist[U] + W;
        if (Candidate < Dist[Neighbors[I]]) {
          Dist[Neighbors[I]] = Candidate;
          Changed = true;
        }
      }
    }
  }
  return Dist;
}

std::vector<float> apps::referencePageRank(const CsrGraph &G,
                                           uint32_t Iterations) {
  uint32_t N = G.numVertices();
  std::vector<float> Rank(N, N == 0 ? 0.0f : 1.0f / static_cast<float>(N));
  std::vector<float> Next(N, 0.0f);
  constexpr float Damping = 0.85f;
  for (uint32_t Iter = 0; Iter < Iterations; ++Iter) {
    for (VertexId U = 0; U < N; ++U) {
      uint64_t Degree = G.outDegree(U);
      if (Degree == 0)
        continue;
      float Contribution = Rank[U] / static_cast<float>(Degree);
      for (VertexId V : G.neighbors(U))
        Next[V] += Contribution;
    }
    float Base = (1.0f - Damping) / static_cast<float>(N);
    for (VertexId V = 0; V < N; ++V) {
      Rank[V] = Base + Damping * Next[V];
      Next[V] = 0.0f;
    }
  }
  return Rank;
}

std::vector<float> apps::referenceBc(const CsrGraph &G, VertexId Source) {
  uint32_t N = G.numVertices();
  std::vector<float> Sigma(N, 0.0f);
  std::vector<float> Delta(N, 0.0f);
  std::vector<int32_t> Depth(N, -1);
  if (N == 0)
    return Delta;

  std::vector<VertexId> Order;
  Order.push_back(Source);
  Sigma[Source] = 1.0f;
  Depth[Source] = 0;
  for (size_t Head = 0; Head < Order.size(); ++Head) {
    VertexId U = Order[Head];
    for (VertexId V : G.neighbors(U)) {
      if (Depth[V] == -1) {
        Depth[V] = Depth[U] + 1;
        Order.push_back(V);
      }
      if (Depth[V] == Depth[U] + 1)
        Sigma[V] += Sigma[U];
    }
  }
  for (size_t I = Order.size(); I-- > 0;) {
    VertexId U = Order[I];
    for (VertexId V : G.neighbors(U))
      if (Depth[V] == Depth[U] + 1)
        Delta[U] += Sigma[U] / Sigma[V] * (1.0f + Delta[V]);
  }
  return Delta;
}

std::vector<uint32_t> apps::referenceCc(const CsrGraph &G) {
  // Union-find over the undirected closure.
  uint32_t N = G.numVertices();
  std::vector<uint32_t> Parent(N);
  std::iota(Parent.begin(), Parent.end(), 0);
  auto Find = [&](uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  for (VertexId U = 0; U < N; ++U)
    for (VertexId V : G.neighbors(U)) {
      uint32_t RootU = Find(U);
      uint32_t RootV = Find(V);
      if (RootU == RootV)
        continue;
      // Union by minimum label so results match label propagation.
      if (RootU < RootV)
        Parent[RootV] = RootU;
      else
        Parent[RootU] = RootV;
    }
  std::vector<uint32_t> Labels(N);
  for (VertexId V = 0; V < N; ++V)
    Labels[V] = Find(V);
  return Labels;
}

uint64_t apps::referenceTriangles(const CsrGraph &G) {
  // Build the undirected closure as adjacency sets and count each
  // triangle at its smallest vertex — slow but obviously correct.
  uint32_t N = G.numVertices();
  std::vector<std::vector<VertexId>> Adj(N);
  for (VertexId U = 0; U < N; ++U)
    for (VertexId V : G.neighbors(U)) {
      if (U == V)
        continue;
      Adj[U].push_back(V);
      Adj[V].push_back(U);
    }
  for (auto &List : Adj) {
    std::sort(List.begin(), List.end());
    List.erase(std::unique(List.begin(), List.end()), List.end());
  }
  auto Connected = [&](VertexId A, VertexId B) {
    return std::binary_search(Adj[A].begin(), Adj[A].end(), B);
  };
  uint64_t Triangles = 0;
  for (VertexId U = 0; U < N; ++U)
    for (VertexId V : Adj[U]) {
      if (V <= U)
        continue;
      for (VertexId W : Adj[U]) {
        if (W <= V)
          continue;
        if (Connected(V, W))
          ++Triangles;
      }
    }
  return Triangles;
}

std::vector<uint32_t> apps::referenceKCore(const CsrGraph &G) {
  uint32_t N = G.numVertices();
  std::vector<std::vector<VertexId>> Adj(N);
  for (VertexId U = 0; U < N; ++U)
    for (VertexId V : G.neighbors(U)) {
      if (U == V)
        continue;
      Adj[U].push_back(V);
      Adj[V].push_back(U);
    }
  for (auto &List : Adj) {
    std::sort(List.begin(), List.end());
    List.erase(std::unique(List.begin(), List.end()), List.end());
  }
  std::vector<uint32_t> Degree(N);
  for (VertexId V = 0; V < N; ++V)
    Degree[V] = static_cast<uint32_t>(Adj[V].size());

  std::vector<uint32_t> Core(N, 0);
  std::vector<bool> Removed(N, false);
  uint32_t Left = N;
  uint32_t K = 1;
  while (Left > 0) {
    bool Peeled = false;
    for (VertexId V = 0; V < N; ++V) {
      if (Removed[V] || Degree[V] >= K)
        continue;
      Removed[V] = true;
      Core[V] = K - 1;
      --Left;
      Peeled = true;
      for (VertexId W : Adj[V])
        if (!Removed[W] && Degree[W] > 0)
          --Degree[W];
    }
    if (!Peeled)
      ++K;
  }
  return Core;
}

std::vector<float> apps::referenceSpmv(const CsrGraph &G) {
  uint32_t N = G.numVertices();
  std::vector<float> X(N);
  for (VertexId V = 0; V < N; ++V)
    X[V] = 1.0f + static_cast<float>(V % 7);
  std::vector<float> Y(N, 0.0f);
  for (VertexId U = 0; U < N; ++U) {
    float Acc = 0.0f;
    auto Neighbors = G.neighbors(U);
    for (size_t I = 0; I < Neighbors.size(); ++I) {
      float W = G.hasWeights()
                    ? static_cast<float>(G.weights()[G.rowOffsets()[U] + I])
                    : 1.0f;
      Acc += W * X[Neighbors[I]];
    }
    Y[U] = Acc;
  }
  return Y;
}
