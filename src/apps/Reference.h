//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain (untracked) reference implementations of the six kernels, used by
/// the test suite to validate that the instrumented kernels compute the
/// same results regardless of data placement and migration.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_APPS_REFERENCE_H
#define ATMEM_APPS_REFERENCE_H

#include "graph/CsrGraph.h"

#include <cstdint>
#include <vector>

namespace atmem {
namespace apps {

/// BFS levels from \p Source (-1 unreached).
std::vector<int32_t> referenceBfs(const graph::CsrGraph &G,
                                  graph::VertexId Source);

/// Shortest-path distances from \p Source (UINT32_MAX unreached);
/// unweighted graphs use unit weights.
std::vector<uint32_t> referenceSssp(const graph::CsrGraph &G,
                                    graph::VertexId Source);

/// Rank vector after \p Iterations push-style power iterations with
/// damping 0.85, starting from the uniform distribution.
std::vector<float> referencePageRank(const graph::CsrGraph &G,
                                     uint32_t Iterations);

/// Brandes dependency (delta) values for a single source.
std::vector<float> referenceBc(const graph::CsrGraph &G,
                               graph::VertexId Source);

/// Weakly connected component labels (minimum vertex id per component).
std::vector<uint32_t> referenceCc(const graph::CsrGraph &G);

/// y = A x over the weighted adjacency (unit weights when unweighted),
/// where x[v] = 1 + (v % 7) matches SpmvKernel's initialization.
std::vector<float> referenceSpmv(const graph::CsrGraph &G);

/// Number of triangles in the undirected closure of \p G (each triangle
/// counted once).
uint64_t referenceTriangles(const graph::CsrGraph &G);

/// Coreness of every vertex over the undirected closure of \p G.
std::vector<uint32_t> referenceKCore(const graph::CsrGraph &G);

} // namespace apps
} // namespace atmem

#endif // ATMEM_APPS_REFERENCE_H
