#include "baseline/Experiment.h"

#include "apps/Kernel.h"
#include "support/Error.h"

using namespace atmem;
using namespace atmem::baseline;

const char *baseline::policyName(Policy P) {
  switch (P) {
  case Policy::AllSlow:
    return "all-slow";
  case Policy::AllFast:
    return "all-fast";
  case Policy::PreferredFast:
    return "preferred-fast";
  case Policy::Interleaved:
    return "interleaved";
  case Policy::Atmem:
    return "atmem";
  case Policy::AtmemMbind:
    return "atmem-mbind";
  case Policy::AtmemSampledOnly:
    return "atmem-sampled-only";
  case Policy::CoarseGrained:
    return "coarse-grained";
  }
  ATMEM_UNREACHABLE("unhandled policy");
}

bool baseline::policyUsesAtmem(Policy P) {
  switch (P) {
  case Policy::AllSlow:
  case Policy::AllFast:
  case Policy::PreferredFast:
  case Policy::Interleaved:
    return false;
  case Policy::Atmem:
  case Policy::AtmemMbind:
  case Policy::AtmemSampledOnly:
  case Policy::CoarseGrained:
    return true;
  }
  ATMEM_UNREACHABLE("unhandled policy");
}

static core::RuntimeConfig makeRuntimeConfig(const RunConfig &Config) {
  core::RuntimeConfig RtConfig;
  RtConfig.Machine = Config.Machine;
  RtConfig.Analyzer.SelectivityBias = Config.EpsilonOffset;
  RtConfig.Analyzer.RankerModelPath = Config.RankerModelPath;
  RtConfig.SimThreads = Config.SimThreads;
  RtConfig.Telemetry = Config.Telemetry;
  switch (Config.PolicyKind) {
  case Policy::AllSlow:
  case Policy::Atmem:
    break;
  case Policy::AllFast:
    RtConfig.Placement = mem::InitialPlacement::Fast;
    break;
  case Policy::PreferredFast:
    RtConfig.Placement = mem::InitialPlacement::PreferredFast;
    break;
  case Policy::Interleaved:
    RtConfig.Placement = mem::InitialPlacement::Interleaved;
    break;
  case Policy::AtmemMbind:
    RtConfig.Mechanism = core::MigrationMechanism::Mbind;
    break;
  case Policy::AtmemSampledOnly:
    RtConfig.Analyzer.EnablePromotion = false;
    break;
  case Policy::CoarseGrained:
    RtConfig.WholeObjectChunks = true;
    break;
  }
  return RtConfig;
}

RunResult baseline::runExperiment(const RunConfig &Config) {
  if (!Config.Graph)
    reportFatalError("experiment requires a graph");
  if (!apps::isKnownKernel(Config.KernelName))
    reportFatalError("unknown kernel in experiment: " + Config.KernelName);

  core::Runtime Rt(makeRuntimeConfig(Config));
  std::unique_ptr<apps::Kernel> Kernel = apps::makeKernel(Config.KernelName);
  Kernel->setup(Rt, *Config.Graph);

  bool UsesAtmem = policyUsesAtmem(Config.PolicyKind);
  RunResult Result;

  // First iteration: profiled for ATMem policies, plain otherwise.
  if (UsesAtmem)
    Rt.profilingStart();
  Rt.beginIteration();
  Kernel->runIteration();
  Result.FirstIterSec = Rt.endIteration();
  if (UsesAtmem) {
    Rt.profilingStop();
    Result.ProfilingOverheadSec = Rt.profilingOverheadSeconds();
    Result.FirstIterSec += Result.ProfilingOverheadSec;
    Result.Migration = Rt.optimize();
  }
  Result.FastDataRatio = Rt.fastDataRatio();

  // Measured iteration(s): the paper reports the run time from the second
  // iteration onward, after data migrated.
  sim::Tlb ReplayTlb = Rt.machine().makeTlb();
  if (Config.MeasureTlb)
    Rt.setReplayTlb(&ReplayTlb);
  uint32_t Iterations = std::max<uint32_t>(Config.MeasuredIterations, 1);
  bool Reoptimize = Config.OptimizeEachIteration && UsesAtmem;
  for (uint32_t I = 0; I < Iterations; ++I) {
    if (Reoptimize)
      Rt.profilingStart();
    Rt.beginIteration();
    Kernel->runIteration();
    Result.IterStats.add(Rt.endIteration());
    if (Reoptimize) {
      // One more profile -> analyze -> migrate epoch per iteration; the
      // decision log grows one epoch per pass, which is what the ring
      // crash-recovery machinery exercises.
      Rt.profilingStop();
      Result.Migration += Rt.optimize();
    }
  }
  // RunningStat::mean() is Sum/N with the same accumulation order as the
  // historical TotalSec loop, so reported times are bit-identical.
  Result.MeasuredIterSec = Result.IterStats.mean();
  if (Config.MeasureTlb) {
    Rt.setReplayTlb(nullptr);
    Result.TlbMisses = ReplayTlb.misses();
  }
  Result.Checksum = Kernel->checksum();
  return Result;
}
