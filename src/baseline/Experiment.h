//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment runner shared by every figure/table reproduction. One
/// run executes a (kernel, graph, machine, policy) combination using the
/// paper's methodology (Section 6): the first iteration profiles, data
/// migrates before the second iteration, and the second iteration's
/// simulated time is the reported result.
///
/// Policies cover the paper's comparison points plus two ablations:
///
///   AllSlow        baseline: everything on the large-capacity memory
///   AllFast        ideal: everything on the fast memory (NVM testbed)
///   PreferredFast  numactl -p model (the MCDRAM testbed's reference)
///   Interleaved    numactl -i model (pages alternate between tiers)
///   Atmem          the full system (profile -> analyze -> migrate)
///   AtmemMbind     ATMem analysis, mbind migration (Table 4 comparison)
///   AtmemSampledOnly  local selection only, no tree promotion (ablation)
///   CoarseGrained  whole-object chunks (Tahoe-style ablation)
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_BASELINE_EXPERIMENT_H
#define ATMEM_BASELINE_EXPERIMENT_H

#include "core/Runtime.h"
#include "graph/CsrGraph.h"
#include "mem/Migrator.h"
#include "support/Statistics.h"

#include <string>

namespace atmem {
namespace baseline {

/// Placement policy of one experimental run.
enum class Policy {
  AllSlow,
  AllFast,
  PreferredFast,
  Interleaved,
  Atmem,
  AtmemMbind,
  AtmemSampledOnly,
  CoarseGrained,
};

/// Human-readable policy name for reports.
const char *policyName(Policy P);

/// True for policies that run the profile/optimize pipeline.
bool policyUsesAtmem(Policy P);

/// One experiment description.
struct RunConfig {
  std::string KernelName = "bfs";
  const graph::CsrGraph *Graph = nullptr;
  sim::MachineConfig Machine;
  Policy PolicyKind = Policy::AllSlow;
  /// The Section 7.2 sensitivity sweep knob: biases all selection
  /// thresholds at once (positive = less data placed, negative = more;
  /// the paper sweeps Eq. 5's epsilon, which this generalizes).
  double EpsilonOffset = 0.0;
  /// Extra measured iterations after the second (their times averaged
  /// into MeasuredIterSec).
  uint32_t MeasuredIterations = 1;
  /// Measures post-migration TLB misses by replaying the measured
  /// iteration's accesses through a simulated TLB (Table 4 mode).
  bool MeasureTlb = false;
  /// Host threads for the parallel tracked-execution engine (see
  /// core::RuntimeConfig::SimThreads); 1 keeps the serial engine.
  uint32_t SimThreads = 1;
  /// Re-profile and re-optimize around every measured iteration instead
  /// of the paper's single second-iteration optimize. Each iteration then
  /// opens its own decision-log epoch — the multi-epoch mode the ring-log
  /// crash-recovery test (and any long-running adaptive study) needs.
  /// Off by default: the paper's methodology is unchanged.
  bool OptimizeEachIteration = false;
  /// Telemetry collection/export forwarded into the runtime (see
  /// core::RuntimeConfig::Telemetry). Disabled by default.
  obs::TelemetryConfig Telemetry;
  /// atmem-ranker-v1 model file re-scoring every placement verdict (see
  /// analyzer::AnalyzerConfig::RankerModelPath). Empty keeps the Eq. 1-5
  /// heuristic bit-identical.
  std::string RankerModelPath;
};

/// Results of one experiment.
struct RunResult {
  /// Simulated time of the profiled first iteration (profiling overhead
  /// included for ATMem policies).
  double FirstIterSec = 0.0;
  /// Simulated time of the measured iteration(s), the paper's metric.
  double MeasuredIterSec = 0.0;
  /// Per-iteration simulated times of the measured iterations;
  /// mean() == MeasuredIterSec, and variance()/stddev() quantify
  /// iteration-to-iteration spread when MeasuredIterations > 1.
  RunningStat IterStats;
  /// Fraction of registered bytes on the fast tier when measuring.
  double FastDataRatio = 0.0;
  /// Migration counters (zero for non-ATMem policies).
  mem::MigrationResult Migration;
  /// Modelled profiling overhead in seconds.
  double ProfilingOverheadSec = 0.0;
  /// Post-migration TLB misses of the measured iteration (MeasureTlb).
  uint64_t TlbMisses = 0;
  /// Result checksum of the final iteration (placement must not change
  /// results; tests compare across policies).
  uint64_t Checksum = 0;
};

/// Executes one experiment.
RunResult runExperiment(const RunConfig &Config);

} // namespace baseline
} // namespace atmem

#endif // ATMEM_BASELINE_EXPERIMENT_H
