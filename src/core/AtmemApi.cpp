#include "core/AtmemApi.h"

#include <unordered_map>

using namespace atmem;

namespace {

/// Per-process state behind the C entry points.
struct ApiState {
  core::Runtime *Rt = nullptr;
  std::unordered_map<void *, mem::ObjectId> PtrToObject;
  uint64_t NextName = 0;
};

ApiState &state() {
  static ApiState State;
  return State;
}

} // namespace

void atmem::atmem_set_runtime(core::Runtime *Rt) {
  state().Rt = Rt;
  state().PtrToObject.clear();
}

core::Runtime *atmem::atmem_current_runtime() { return state().Rt; }

void *atmem::atmem_malloc(size_t Size) {
  ApiState &S = state();
  if (!S.Rt || Size == 0)
    return nullptr;
  std::string Name = "atmem_malloc#" + std::to_string(S.NextName++);
  mem::DataObject &Obj = S.Rt->registry().create(
      Name, Size, S.Rt->config().Placement,
      S.Rt->config().ChunkBytesOverride);
  void *Ptr = Obj.data();
  S.PtrToObject[Ptr] = Obj.id();
  return Ptr;
}

void atmem::atmem_free(void *Ptr) {
  ApiState &S = state();
  if (!S.Rt || !Ptr)
    return;
  auto It = S.PtrToObject.find(Ptr);
  if (It == S.PtrToObject.end())
    return;
  S.Rt->release(It->second);
  S.PtrToObject.erase(It);
}

void atmem::atmem_profiling_start() {
  if (core::Runtime *Rt = state().Rt)
    Rt->profilingStart();
}

void atmem::atmem_profiling_stop() {
  if (core::Runtime *Rt = state().Rt)
    Rt->profilingStop();
}

void atmem::atmem_optimize() {
  if (core::Runtime *Rt = state().Rt)
    Rt->optimize();
}

bool atmem::atmem_lookup_object(void *Ptr, mem::ObjectId &Out) {
  ApiState &S = state();
  auto It = S.PtrToObject.find(Ptr);
  if (It == S.PtrToObject.end())
    return false;
  Out = It->second;
  return true;
}
