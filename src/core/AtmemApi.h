//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's minimal C-style API (Listing 1):
///
///   void *atmem_malloc(size_t);
///   void  atmem_free(void *);
///   void  atmem_profiling_start();
///   void  atmem_profiling_stop();
///   void  atmem_optimize();
///
/// Calls operate on a process-wide current runtime installed with
/// atmem_set_runtime(). atmem_malloc() registers a data object and returns
/// its host memory; because the simulation observes accesses through
/// TrackedArray views, code wanting its accesses profiled should wrap the
/// returned buffer via atmem_tracked_view() (or allocate directly through
/// Runtime::allocate). The C entry points exist for interface fidelity:
/// registration, lifetime, and the profile/optimize control flow match the
/// paper exactly.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_CORE_ATMEMAPI_H
#define ATMEM_CORE_ATMEMAPI_H

#include "core/Runtime.h"

#include <cstddef>

namespace atmem {

/// Installs \p Rt as the runtime behind the C-style entry points
/// (nullptr uninstalls). Not thread-safe with concurrent API calls.
void atmem_set_runtime(core::Runtime *Rt);

/// Currently installed runtime; nullptr when none.
core::Runtime *atmem_current_runtime();

/// Registers a data object of \p Size bytes with the current runtime and
/// returns its host memory. Returns nullptr when no runtime is installed
/// or \p Size is zero.
void *atmem_malloc(size_t Size);

/// Unregisters the object previously returned by atmem_malloc().
/// Ignores pointers the runtime does not know.
void atmem_free(void *Ptr);

/// Arms profiling on the current runtime (paper Listing 1).
void atmem_profiling_start();

/// Disarms profiling.
void atmem_profiling_stop();

/// Runs the analyzer and migrates the selected chunks.
void atmem_optimize();

/// Builds a tracked view over a buffer obtained from atmem_malloc(), so
/// element accesses feed the simulated profiler. \p Ptr must be a live
/// atmem_malloc() result.
template <typename T>
core::TrackedArray<T> atmem_tracked_view(void *Ptr, size_t Count);

/// Internal: resolves an atmem_malloc() pointer to its object id.
/// Returns false for unknown pointers.
bool atmem_lookup_object(void *Ptr, mem::ObjectId &Out);

template <typename T>
core::TrackedArray<T> atmem_tracked_view(void *Ptr, size_t Count) {
  mem::ObjectId Id = 0;
  core::Runtime *Rt = atmem_current_runtime();
  if (!Rt || !atmem_lookup_object(Ptr, Id))
    return core::TrackedArray<T>();
  mem::DataObject &Obj = Rt->registry().object(Id);
  core::TrackHandle Handle;
  Handle.VaBase = Obj.va();
  Handle.ChunkTiers = Obj.chunkTierData();
  Handle.ChunkShift = Obj.chunkShift();
  Handle.Object = Obj.id();
  return core::TrackedArray<T>(Rt, reinterpret_cast<T *>(Obj.data()), Count,
                               Handle);
}

} // namespace atmem

#endif // ATMEM_CORE_ATMEMAPI_H
