#include "core/AutoTuner.h"

#include "support/Logging.h"

#include <cmath>

using namespace atmem;
using namespace atmem::core;

AutoTuner::AutoTuner(Runtime &Rt, AutoTunerConfig ConfigIn)
    : Rt(Rt), Config(ConfigIn) {
  if (Config.ProfileIterations == 0)
    Config.ProfileIterations = 1;
}

void AutoTuner::beginIteration() {
  if (Current == State::Profiling && !Rt.profiler().isActive())
    Rt.profilingStart();
  Rt.beginIteration();
}

/// Relative deviation of \p Now from \p Reference, treating a zero
/// reference with non-zero observation as a full-scale shift.
static double relativeDeviation(uint64_t Now, uint64_t Reference) {
  if (Reference == 0)
    return Now == 0 ? 0.0 : 1.0;
  return std::abs(static_cast<double>(Now) -
                  static_cast<double>(Reference)) /
         static_cast<double>(Reference);
}

double AutoTuner::endIteration() {
  double Seconds = Rt.endIteration();
  const sim::AccessStats &Stats = Rt.iterationStats();
  uint64_t SlowMisses =
      Stats.TierMisses[sim::tierIndex(sim::TierId::Slow)];

  if (Current == State::Profiling) {
    if (++IterationsProfiled >= Config.ProfileIterations) {
      Rt.profilingStop();
      Seconds += Rt.profilingOverheadSeconds() /
                 static_cast<double>(IterationsProfiled);
      Migration += Rt.optimize();
      Optimized = true;
      ++Optimizes;
      // Reference is recorded on the next (optimized) iteration; the
      // profiled one ran against the old placement.
      HaveReference = false;
      Current = State::Optimized;
      logInfo("auto-tuner: optimized after %u profiled iteration(s)",
              IterationsProfiled);
    }
    return Seconds;
  }

  // Optimized steady state: the first iteration establishes the
  // reference; afterwards, watch both the workload size and where the
  // misses land for a phase change.
  if (!HaveReference) {
    ReferenceAccesses = Stats.Accesses;
    ReferenceSlowMisses = SlowMisses;
    HaveReference = true;
    return Seconds;
  }
  if (Config.ReprofileDeviation > 0.0) {
    double Deviation =
        std::max(relativeDeviation(Stats.Accesses, ReferenceAccesses),
                 relativeDeviation(SlowMisses, ReferenceSlowMisses));
    if (Deviation > Config.ReprofileDeviation) {
      logInfo("auto-tuner: behaviour shifted %.0f%%, re-profiling",
              Deviation * 100.0);
      Current = State::Profiling;
      IterationsProfiled = 0;
    }
  }
  return Seconds;
}
