//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automates the paper's manual instrumentation points. Section 5.2 notes
/// that "future works on compiler optimization could automatically insert
/// [atmem_optimize()] based on static analysis"; AutoTuner provides the
/// runtime half of that idea: the application only brackets its
/// iterations, and the tuner arms profiling for the first
/// ProfileIterations of them, then triggers optimize() once — and can
/// re-arm itself when the observed access volume shifts, re-optimizing
/// placement for a changed query (Section 2.2's data-driven dynamics,
/// together with RuntimeConfig::DemoteUnselected).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_CORE_AUTOTUNER_H
#define ATMEM_CORE_AUTOTUNER_H

#include "core/Runtime.h"

namespace atmem {
namespace core {

/// Tuning of the automatic optimizer.
struct AutoTunerConfig {
  /// Iterations profiled before the (first) optimize().
  uint32_t ProfileIterations = 1;
  /// Re-arm profiling when an iteration's behaviour deviates from the
  /// optimized reference by more than this factor (e.g. 0.5 = +-50%),
  /// signalling a phase/query change. Two signals are watched: the access
  /// count (workload size changed) and the slow-tier miss count (the
  /// working set moved away from the placed chunks — a different query
  /// touching different data). 0 disables re-optimization.
  double ReprofileDeviation = 0.5;
};

/// Drives profilingStart/stop and optimize() from iteration boundaries.
class AutoTuner {
public:
  AutoTuner(Runtime &Rt, AutoTunerConfig Config = {});

  /// Starts one application iteration (arms profiling when scheduled).
  void beginIteration();

  /// Ends the iteration; runs optimize() when the profiling window just
  /// closed. Returns the iteration's simulated seconds.
  double endIteration();

  /// True once the first optimize() has run.
  bool optimized() const { return Optimized; }

  /// Number of optimize() calls triggered so far.
  uint32_t optimizeCount() const { return Optimizes; }

  /// Aggregate migration counters across all optimize() calls.
  const mem::MigrationResult &migration() const { return Migration; }

private:
  enum class State { Profiling, Optimized };

  Runtime &Rt;
  AutoTunerConfig Config;
  State Current = State::Profiling;
  uint32_t IterationsProfiled = 0;
  uint64_t ReferenceAccesses = 0;
  uint64_t ReferenceSlowMisses = 0;
  bool HaveReference = false;
  bool Optimized = false;
  uint32_t Optimizes = 0;
  mem::MigrationResult Migration;
};

} // namespace core
} // namespace atmem

#endif // ATMEM_CORE_AUTOTUNER_H
