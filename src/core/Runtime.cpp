#include "core/Runtime.h"

#include "obs/Trace.h"
#include "sim/Tlb.h"
#include "support/Logging.h"

#include <algorithm>

using namespace atmem;
using namespace atmem::core;

thread_local Runtime::ContextBinding Runtime::Bound;

Runtime::Runtime(RuntimeConfig ConfigIn)
    : Config(std::move(ConfigIn)), M(Config.Machine), Registry(M),
      Pool(Config.Machine.Migration.CopyThreads),
      Profiler(Registry, Config.Profiler), AtmemMig(Registry, Pool),
      MbindMig(Registry) {
  if (Config.SimThreads > 1) {
    // Each thread's shard models its partition of the shared LLC; never
    // shrink below one fully associative set.
    sim::CacheConfig Shard = Config.Machine.Cache;
    Shard.SizeBytes =
        std::max<uint64_t>(Shard.SizeBytes / Config.SimThreads,
                           static_cast<uint64_t>(Shard.Ways) * Shard.LineBytes);
    Contexts.reserve(Config.SimThreads);
    for (uint32_t T = 0; T < Config.SimThreads; ++T)
      Contexts.push_back(std::make_unique<SimContext>(Shard));
    KernelPool = std::make_unique<mem::ThreadPool>(Config.SimThreads);
  }
  if (Config.Telemetry.Enabled || Config.Telemetry.anyOutput())
    obs::setEnabled(true);
}

Runtime::~Runtime() = default;

void Runtime::parallelTracked(uint64_t Begin, uint64_t End,
                              const TrackedBody &Body, uint64_t ChunkSize) {
  if (Begin >= End)
    return;
  if (Contexts.empty()) {
    Body(0, Begin, End);
    return;
  }
  bool BufferMisses = Profiler.isActive() || MissTrace || ReplayTlb;
  for (auto &Ctx : Contexts)
    Ctx->setBufferMisses(BufferMisses);
  if (ChunkSize == 0)
    ChunkSize = std::max<uint64_t>((End - Begin) / (Contexts.size() * 16), 64);
  KernelPool->parallelForThreaded(
      Begin, End, ChunkSize,
      [&](uint32_t Tid, uint64_t ChunkBegin, uint64_t ChunkEnd) {
        Bound = {this, Contexts[Tid].get()};
        Body(Tid, ChunkBegin, ChunkEnd);
        Bound = {};
      });
}

void Runtime::profilingStart() {
  Profiler.start(Config.Machine.Exec.Threads);
}

void Runtime::profilingStop() { Profiler.stop(); }

mem::MigrationResult Runtime::optimize() {
  if (Profiler.isActive())
    Profiler.stop();

  obs::SpanScope OptimizeSpan("runtime.optimize", "runtime");

  mem::Migrator &Mig =
      Config.Mechanism == MigrationMechanism::Atmem
          ? static_cast<mem::Migrator &>(AtmemMig)
          : static_cast<mem::Migrator &>(MbindMig);
  mem::MigrationResult Result;

  // Budget accounting must anticipate demotions: chunks the fresh profile
  // dropped vacate the fast tier before promotions land.
  uint64_t FastFree = M.allocator(sim::TierId::Fast).freeBytes();
  if (Config.DemoteUnselected)
    FastFree += Registry.totalBytesOn(sim::TierId::Fast);
  auto Budget = static_cast<uint64_t>(static_cast<double>(FastFree) *
                                      Config.FastBudgetFraction);
  if (Config.FastBudgetBytesCap != 0)
    Budget = std::min(Budget, Config.FastBudgetBytesCap);
  analyzer::Analyzer Anal(Config.Analyzer);
  if (Config.Strategy == PlacementStrategy::BandwidthBalanced) {
    // Equalize per-tier streaming time: place the share of miss traffic
    // matching the fast tier's share of aggregate bandwidth.
    const sim::TierSpec &Fast = Config.Machine.Fast;
    const sim::TierSpec &Slow = Config.Machine.Slow;
    double Share = Fast.BandwidthBytesPerSec /
                   (Fast.BandwidthBytesPerSec + Slow.BandwidthBytesPerSec);
    LastPlan = analyzer::PlanBuilder::buildBandwidthBalanced(
        Anal.classify(Registry, Profiler), Budget, Share);
  } else {
    LastPlan = Anal.plan(Registry, Profiler, Budget);
  }

  if (Config.DemoteUnselected)
    demoteUnselected(Mig, Result);
  for (const analyzer::ObjectPlan &ObjPlan : LastPlan.Objects) {
    mem::DataObject &Obj = Registry.object(ObjPlan.Object);
    // Only move ranges whose chunks are not already on the fast tier.
    std::vector<mem::ChunkRange> Pending;
    for (const mem::ChunkRange &Range : ObjPlan.Ranges)
      for (uint32_t C = Range.FirstChunk;
           C < Range.FirstChunk + Range.NumChunks;) {
        // Split the range at tier transitions.
        if (Obj.chunkTier(C) == sim::TierId::Fast) {
          ++C;
          continue;
        }
        uint32_t Begin = C;
        while (C < Range.FirstChunk + Range.NumChunks &&
               Obj.chunkTier(C) == sim::TierId::Slow)
          ++C;
        Pending.push_back({Begin, C - Begin});
      }
    if (Pending.empty())
      continue;
    if (!Mig.migrate(Obj, Pending, sim::TierId::Fast, Result))
      logError("migration of object '%s' hit fast-tier capacity",
               Obj.name().c_str());
  }
  logInfo("optimize: moved %llu bytes in %llu ranges, %.3f ms simulated",
          static_cast<unsigned long long>(Result.BytesMoved),
          static_cast<unsigned long long>(Result.Ranges),
          Result.SimSeconds * 1e3);
  OptimizeSpan.arg("bytes_moved", static_cast<double>(Result.BytesMoved))
      .arg("ranges", static_cast<double>(Result.Ranges))
      .arg("sim_sec", Result.SimSeconds);
  return Result;
}

void Runtime::demoteUnselected(mem::Migrator &Mig,
                               mem::MigrationResult &Result) {
  // Per-object selection flags from the current plan.
  for (mem::DataObject *Obj : Registry.liveObjects()) {
    std::vector<uint8_t> Selected(Obj->numChunks(), 0);
    for (const analyzer::ObjectPlan &ObjPlan : LastPlan.Objects) {
      if (ObjPlan.Object != Obj->id())
        continue;
      for (const mem::ChunkRange &Range : ObjPlan.Ranges)
        for (uint32_t C = Range.FirstChunk;
             C < Range.FirstChunk + Range.NumChunks; ++C)
          Selected[C] = 1;
    }
    std::vector<mem::ChunkRange> Demotions;
    for (uint32_t C = 0; C < Obj->numChunks();) {
      if (Selected[C] || Obj->chunkTier(C) != sim::TierId::Fast) {
        ++C;
        continue;
      }
      uint32_t Begin = C;
      while (C < Obj->numChunks() && !Selected[C] &&
             Obj->chunkTier(C) == sim::TierId::Fast)
        ++C;
      Demotions.push_back({Begin, C - Begin});
    }
    if (Demotions.empty())
      continue;
    if (!Mig.migrate(*Obj, Demotions, sim::TierId::Slow, Result))
      logError("demotion of object '%s' hit slow-tier capacity",
               Obj->name().c_str());
  }
}

void Runtime::beginIteration() {
  Stats = sim::AccessStats();
  for (auto &Ctx : Contexts)
    Ctx->beginIteration();
  if (obs::enabled() && !IterationSpanOpen) {
    obs::Tracer::instance().begin("runtime.iteration", "runtime");
    IterationSpanOpen = true;
  }
}

double Runtime::endIteration() {
  mergeContexts();
  double SimSec = M.kernelModel().estimate(Stats).seconds();
  if (obs::enabled()) {
    static obs::Counter Iterations("runtime.iterations");
    static obs::Counter Accesses("runtime.accesses");
    static obs::Counter LlcHits("runtime.llc_hits");
    static obs::Counter MissesFast("runtime.misses_fast");
    static obs::Counter MissesSlow("runtime.misses_slow");
    static obs::Histogram IterUs("runtime.iteration_sim_us");
    Iterations.add(1);
    Accesses.add(Stats.Accesses);
    LlcHits.add(Stats.LlcHits);
    MissesFast.add(Stats.TierMisses[sim::tierIndex(sim::TierId::Fast)]);
    MissesSlow.add(Stats.TierMisses[sim::tierIndex(sim::TierId::Slow)]);
    IterUs.recordSeconds(SimSec);
    if (ReplayTlb) {
      obs::Gauge("runtime.tlb_hits")
          .set(static_cast<double>(ReplayTlb->hits()));
      obs::Gauge("runtime.tlb_misses")
          .set(static_cast<double>(ReplayTlb->misses()));
    }
  }
  if (IterationSpanOpen) {
    IterationSpanOpen = false;
    obs::Tracer::instance().end(
        "runtime.iteration", "runtime",
        {{"sim_sec", SimSec},
         {"accesses", static_cast<double>(Stats.Accesses)},
         {"llc_hits", static_cast<double>(Stats.LlcHits)}});
  }
  return SimSec;
}

void Runtime::mergeContexts() {
  for (auto &Ctx : Contexts) {
    Stats += Ctx->stats();
    Ctx->stats() = sim::AccessStats();
    for (uint64_t Va : Ctx->missBuffer()) {
      Profiler.notifyMiss(Va);
      if (MissTrace)
        MissTrace->record(Va);
      if (ReplayTlb)
        replayTlbAccess(Va);
    }
    Ctx->missBuffer().clear();
  }
}

double Runtime::fastDataRatio() const {
  uint64_t Total = Registry.totalMappedBytes();
  if (Total == 0)
    return 0.0;
  return static_cast<double>(Registry.totalBytesOn(sim::TierId::Fast)) /
         static_cast<double>(Total);
}

void Runtime::replayTlbAccess(uint64_t Va) {
  sim::Translation T;
  if (M.pageTable().translate(Va, T))
    ReplayTlb->access(Va, T.PageBytes);
}
