#include "core/Runtime.h"

#include "obs/DecisionLog.h"
#include "obs/Export.h"
#include "obs/RingLog.h"
#include "obs/StatsSocket.h"
#include "obs/TimeSeries.h"
#include "fault/FaultInjection.h"
#include "obs/Trace.h"
#include "sim/SimdProbe.h"
#include "sim/Tlb.h"
#include "support/Logging.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <thread>

using namespace atmem;
using namespace atmem::core;

thread_local Runtime::ContextBinding Runtime::Bound;

namespace {

/// Topology detection is a perf hint with a graceful degradation path: a
/// fired probe fault (or a genuinely broken sysfs read) falls back to the
/// single-node layout, which every consumer must treat as
/// placement-equivalent. The site lives here rather than in
/// support::Topology because the support library sits below fault/obs in
/// the layering.
fault::Site TopologyProbeFault("drain.topology_probe");

void countTopologyProbeFailed() {
  if (obs::enabled()) {
    static obs::Counter Failed("topology.probe_failed");
    Failed.add(1);
  }
}

void countRetry() {
  if (obs::enabled()) {
    static obs::Counter Retries("migration.retries");
    Retries.add(1);
  }
}

void countDegraded(uint64_t SkippedRanges) {
  if (obs::enabled()) {
    static obs::Counter Degraded("migration.degraded");
    Degraded.add(SkippedRanges);
  }
}

void countRenominated() {
  if (obs::enabled()) {
    static obs::Counter Renominated("migration.skipped_renominated");
    Renominated.add(1);
  }
}

double rangePriority(const std::vector<double> *Priorities,
                     const mem::ChunkRange &Range);

/// One decision-log migration lifecycle event per range (no-op while the
/// flight recorder is closed).
void recordDecisionEvents(const mem::DataObject &Obj,
                          const std::vector<mem::ChunkRange> &Ranges,
                          sim::TierId Target, obs::DecisionPhase Phase,
                          const std::vector<double> *Priorities) {
  if (!obs::DecisionLog::enabled())
    return;
  obs::DecisionLog &Log = obs::DecisionLog::instance();
  for (const mem::ChunkRange &Range : Ranges) {
    obs::MigrationEventRecord Event;
    Event.Object = Obj.id();
    Event.FirstChunk = Range.FirstChunk;
    Event.NumChunks = Range.NumChunks;
    Event.TargetFast = Target == sim::TierId::Fast ? 1 : 0;
    Event.Phase = Phase;
    Event.Priority = rangePriority(Priorities, Range);
    Log.recordMigration(Event);
  }
}

/// Sub-ranges of \p Pending whose chunks still sit on \p Source — i.e.
/// the work a partially completed migrate() left behind. Recomputed from
/// chunk tiers so it is correct for both whole-range (atmem) and
/// page-prefix (mbind) partial progress.
std::vector<mem::ChunkRange>
remainingOnSource(const mem::DataObject &Obj,
                  const std::vector<mem::ChunkRange> &Pending,
                  sim::TierId Source) {
  std::vector<mem::ChunkRange> Out;
  for (const mem::ChunkRange &Range : Pending)
    for (uint32_t C = Range.FirstChunk;
         C < Range.FirstChunk + Range.NumChunks;) {
      if (Obj.chunkTier(C) != Source) {
        ++C;
        continue;
      }
      uint32_t Begin = C;
      while (C < Range.FirstChunk + Range.NumChunks &&
             Obj.chunkTier(C) == Source)
        ++C;
      Out.push_back({Begin, C - Begin});
    }
  return Out;
}

double rangePriority(const std::vector<double> *Priorities,
                     const mem::ChunkRange &Range) {
  if (!Priorities)
    return 0.0;
  double Max = 0.0;
  for (uint32_t C = Range.FirstChunk;
       C < Range.FirstChunk + Range.NumChunks && C < Priorities->size(); ++C)
    Max = std::max(Max, (*Priorities)[C]);
  return Max;
}

/// Splits \p Remaining into (subset, dropped): the highest-priority
/// single chunks whose combined footprint fits \p FreeBytes under
/// \p Mig's capacity model, and everything else. The subset stays
/// single-chunk ranges so the mechanism's per-range staging peak is one
/// chunk — smaller granules under pressure.
std::pair<std::vector<mem::ChunkRange>, std::vector<mem::ChunkRange>>
highestPriorityFit(const mem::DataObject &Obj,
                   const std::vector<mem::ChunkRange> &Remaining,
                   const mem::Migrator &Mig, uint64_t FreeBytes,
                   const std::vector<double> *Priorities) {
  struct Candidate {
    uint32_t Chunk;
    double Priority;
    uint64_t Bytes;
  };
  std::vector<Candidate> Candidates;
  for (const mem::ChunkRange &Range : Remaining)
    for (uint32_t C = Range.FirstChunk;
         C < Range.FirstChunk + Range.NumChunks; ++C) {
      auto [Begin, End] = Obj.rangeBytes({C, 1});
      if (End > Begin)
        Candidates.push_back({C, rangePriority(Priorities, {C, 1}),
                              End - Begin});
    }
  std::sort(Candidates.begin(), Candidates.end(),
            [](const Candidate &A, const Candidate &B) {
              if (A.Priority != B.Priority)
                return A.Priority > B.Priority;
              return A.Chunk < B.Chunk;
            });
  uint64_t Payload = 0;
  uint64_t MaxChunk = 0;
  std::vector<uint8_t> Taken(Obj.numChunks(), 0);
  bool TookAny = false;
  for (const Candidate &C : Candidates) {
    uint64_t NewPayload = Payload + C.Bytes;
    uint64_t NewMax = std::max(MaxChunk, C.Bytes);
    if (Mig.capacityNeeded(NewPayload, NewMax) > FreeBytes)
      continue;
    Payload = NewPayload;
    MaxChunk = NewMax;
    Taken[C.Chunk] = 1;
    TookAny = true;
  }
  std::pair<std::vector<mem::ChunkRange>, std::vector<mem::ChunkRange>> Out;
  if (!TookAny) {
    Out.second = Remaining;
    return Out;
  }
  for (const Candidate &C : Candidates)
    (Taken[C.Chunk] ? Out.first : Out.second).push_back({C.Chunk, 1});
  std::sort(Out.first.begin(), Out.first.end(),
            [](const mem::ChunkRange &A, const mem::ChunkRange &B) {
              return A.FirstChunk < B.FirstChunk;
            });
  return Out;
}

/// Appends the runs of \p Range's chunks that are on the slow tier and
/// not yet claimed in \p InPending, claiming them.
void appendSlowRuns(const mem::DataObject &Obj, const mem::ChunkRange &Range,
                    std::vector<uint8_t> &InPending,
                    std::vector<mem::ChunkRange> &Pending) {
  uint32_t Limit =
      std::min(Range.FirstChunk + Range.NumChunks, Obj.numChunks());
  for (uint32_t C = Range.FirstChunk; C < Limit;) {
    if (InPending[C] || Obj.chunkTier(C) != sim::TierId::Slow) {
      ++C;
      continue;
    }
    uint32_t Begin = C;
    while (C < Limit && !InPending[C] &&
           Obj.chunkTier(C) == sim::TierId::Slow) {
      InPending[C] = 1;
      ++C;
    }
    Pending.push_back({Begin, C - Begin});
  }
}

} // namespace

Runtime::Runtime(RuntimeConfig ConfigIn)
    : Config(std::move(ConfigIn)), M(Config.Machine), Registry(M),
      Pool(Config.Machine.Migration.CopyThreads),
      Profiler(Registry, Config.Profiler), AtmemMig(Registry, Pool),
      MbindMig(Registry) {
  // One topology probe per runtime, never per drain: the cached layout
  // and host-thread count feed every drain gate from here on. A failed
  // (or fault-injected) probe degrades to the single-node layout —
  // topology is a locality hint, never a correctness input, so the
  // degraded runtime places bit-identically.
  bool ProbeOk = true;
  if (Config.TopologyOverride) {
    Topo = *Config.TopologyOverride;
  } else if (TopologyProbeFault.shouldFail()) {
    Topo = support::Topology::singleNode();
    ProbeOk = false;
  } else {
    Topo = support::Topology::detect(&ProbeOk);
  }
  if (!ProbeOk) {
    countTopologyProbeFailed();
    logInfo("topology probe failed; using single-node layout");
  }
  HostThreads = Config.HostThreadsOverride
                    ? Config.HostThreadsOverride
                    : std::max(1u, Topo.hardwareThreads());
  if (obs::enabled()) {
    static obs::Gauge Nodes("numa.nodes");
    Nodes.set(Topo.numNodes());
  }
  if (Config.SimThreads > 1) {
    // Each thread's shard models its partition of the shared LLC; never
    // shrink below one fully associative set.
    sim::CacheConfig Shard = Config.Machine.Cache;
    Shard.SizeBytes =
        std::max<uint64_t>(Shard.SizeBytes / Config.SimThreads,
                           static_cast<uint64_t>(Shard.Ways) * Shard.LineBytes);
    Contexts.reserve(Config.SimThreads);
    for (uint32_t T = 0; T < Config.SimThreads; ++T)
      Contexts.push_back(std::make_unique<SimContext>(
          Shard, Topo.nodeOfShard(T, Config.SimThreads)));
    // On multi-node hosts each kernel worker is pinned to its shard's
    // home node before taking work, so the shard's miss buffer, recycle
    // pool, and attribution-index replica are first-touch allocated
    // node-locally. Pinning is best-effort (mocked topologies name cpus
    // the host may lack) and never affects results.
    mem::ThreadPool::WorkerInit Init;
    if (Topo.multiNode()) {
      auto PinSets = std::make_shared<std::vector<std::vector<int>>>();
      PinSets->reserve(Config.SimThreads);
      for (uint32_t T = 0; T < Config.SimThreads; ++T)
        PinSets->push_back(
            Topo.nodeCpus(Topo.nodeOfShard(T, Config.SimThreads)));
      Init = [PinSets](uint32_t Worker) {
        if (Worker < PinSets->size())
          support::pinThreadToCpus((*PinSets)[Worker]);
      };
    }
    KernelPool =
        std::make_unique<mem::ThreadPool>(Config.SimThreads, std::move(Init));
  }
  if (Config.Telemetry.Enabled || Config.Telemetry.anyOutput())
    obs::setEnabled(true);
  if (!Config.Telemetry.DecisionLogPath.empty()) {
    // Process-wide and idempotent: with several runtimes in one process
    // (bench comparisons) the first opener wins and the rest append to
    // the same stream; exportIfConfigured finalizes it at exit.
    std::string Error;
    if (!obs::DecisionLog::instance().open(Config.Telemetry.DecisionLogPath,
                                           &Error))
      logError("decision log: %s", Error.c_str());
  }
  if (!Config.Telemetry.DecisionLogRingPath.empty()) {
    // The crash-resilient always-on variant of the flight recorder: same
    // records, mmap'd ring segments instead of a flat file. Shares the
    // process-wide log with the same first-opener-wins semantics.
    obs::RingLogOptions Options;
    if (Config.Telemetry.RingSegmentBytes != 0)
      Options.SegmentBytes = Config.Telemetry.RingSegmentBytes;
    if (Config.Telemetry.RingMaxBytes != 0)
      Options.MaxBytes = Config.Telemetry.RingMaxBytes;
    std::string Error;
    if (!obs::openDecisionLogRing(Config.Telemetry.DecisionLogRingPath,
                                  Options, &Error))
      logError("decision ring: %s", Error.c_str());
  }
  if (!Config.Analyzer.RankerModelPath.empty() && !Config.Analyzer.Ranker) {
    // Learned ranker: load once here so every optimize() epoch scores
    // with the same weights. Any failure (missing file, malformed JSON,
    // injected fault) is non-fatal — the Eq. 1-5 heuristic stays active
    // and loadRankerModel has already bumped ranker.model_load_failed.
    analyzer::RankerModel Model;
    std::string Error;
    if (analyzer::loadRankerModel(Config.Analyzer.RankerModelPath, Model,
                                  &Error))
      Config.Analyzer.Ranker =
          std::make_shared<analyzer::RankerModel>(Model);
    else
      logError("ranker model: %s", Error.c_str());
  }
  if (!Config.Telemetry.TimeSeriesPath.empty() ||
      !Config.Telemetry.OpenMetricsPath.empty() ||
      !Config.Telemetry.StatsSocketPath.empty())
    obs::TimeSeries::instance().setEnabled(true);
  if (!Config.Telemetry.HealthLogPath.empty()) {
    // Same first-opener-wins process-wide stream as the decision log.
    std::string Error;
    if (!obs::HealthLog::instance().open(Config.Telemetry.HealthLogPath,
                                         &Error))
      logError("health log: %s", Error.c_str());
  }
  if (Config.Telemetry.HealthEnabled ||
      !Config.Telemetry.HealthLogPath.empty()) {
    HealthMon = std::make_unique<obs::HealthMonitor>(Config.Telemetry.Health);
  } else if (obs::healthDefaultEnabled()) {
    // Bench jobs construct runtimes without the batch TelemetryConfig;
    // the batch driver arms a process-wide default instead.
    HealthMon =
        std::make_unique<obs::HealthMonitor>(obs::healthDefaultConfig());
  }
  if (!Config.Telemetry.StatsSocketPath.empty()) {
    updatePlacementJson();
    StatsServer = std::make_unique<obs::StatsServer>();
    std::string Error;
    if (!StatsServer->start(Config.Telemetry.StatsSocketPath,
                            [this] { return statsSnapshotJson(); }, &Error)) {
      logError("stats socket: %s", Error.c_str());
      StatsServer.reset();
    }
  }
}

Runtime::~Runtime() {
  // The accept thread captures `this`; it must be gone before any member
  // it reads (and before the lookahead teardown churns placement).
  if (StatsServer)
    StatsServer->stop();
  shutdownLookahead();
}

void Runtime::parallelTracked(uint64_t Begin, uint64_t End,
                              const TrackedBody &Body, uint64_t ChunkSize) {
  if (Begin >= End)
    return;
  if (Contexts.empty()) {
    Body(0, Begin, End);
    return;
  }
  bool BufferMisses = Profiler.isActive() || MissTrace || ReplayTlb;
  for (auto &Ctx : Contexts)
    Ctx->setBufferMisses(BufferMisses);
  if (ChunkSize == 0)
    ChunkSize = std::max<uint64_t>((End - Begin) / (Contexts.size() * 16), 64);
  KernelPool->parallelForThreaded(
      Begin, End, ChunkSize,
      [&](uint32_t Tid, uint64_t ChunkBegin, uint64_t ChunkEnd) {
        Bound = {this, Contexts[Tid].get()};
        Body(Tid, ChunkBegin, ChunkEnd);
        Bound = {};
      });
}

void Runtime::profilingStart() {
  Profiler.start(Config.Machine.Exec.Threads);
}

void Runtime::profilingStop() { Profiler.stop(); }

mem::MigrationResult Runtime::optimize() {
  if (Profiler.isActive())
    Profiler.stop();

  if (Config.Lookahead.Enabled) {
    // Settle the overlapped staging copies before anything reads their
    // outcome, then let the adaptive scheduler skip the whole epoch when
    // placement has converged — no analysis, no decision-log epoch, no
    // migrations, nothing staged to resolve.
    joinLookaheadCopies();
    if (skipConvergedEpoch())
      return {};
    EpochRenominated = 0;
    EpochRollbacks = 0;
  }

  // Epoch bookkeeping for the time-series sample built at the bottom.
  // Wall-clock is only read when somebody consumes it, so a runtime with
  // no time-series/socket/health output takes exactly the old path.
  const bool TsEnabled = obs::TimeSeries::instance().enabled();
  const bool NeedWall = TsEnabled || HealthMon != nullptr;
  const uint64_t RollbacksBefore = EpochRollbacks;
  EpochRetries = 0;
  std::chrono::steady_clock::time_point WallStart;
  double IterWallUs = 0.0;
  if (NeedWall) {
    WallStart = std::chrono::steady_clock::now();
    if (HaveLastEpochWall)
      IterWallUs = std::chrono::duration<double, std::micro>(
                       WallStart - LastEpochWallEnd)
                       .count();
  }

  obs::SpanScope OptimizeSpan("runtime.optimize", "runtime");

  // One optimize() call is one decision-log epoch; every record emitted
  // below (classification, planning, migration lifecycle) is stamped
  // with it by the writer.
  if (obs::DecisionLog::enabled())
    obs::DecisionLog::instance().beginEpoch();

  mem::Migrator &Mig =
      Config.Mechanism == MigrationMechanism::Atmem
          ? static_cast<mem::Migrator &>(AtmemMig)
          : static_cast<mem::Migrator &>(MbindMig);
  mem::MigrationResult Result;

  // Budget accounting must anticipate demotions: chunks the fresh profile
  // dropped vacate the fast tier before promotions land.
  uint64_t FastFree = M.allocator(sim::TierId::Fast).freeBytes();
  if (Config.DemoteUnselected)
    FastFree += Registry.totalBytesOn(sim::TierId::Fast);
  auto Budget = static_cast<uint64_t>(static_cast<double>(FastFree) *
                                      Config.FastBudgetFraction);
  if (Config.FastBudgetBytesCap != 0)
    Budget = std::min(Budget, Config.FastBudgetBytesCap);
  // Classify once; the plan builders and the degraded-mode ranking both
  // work off the same classification, so partial plans use exactly the
  // Eq. 1 priorities the full plan was built from.
  analyzer::Analyzer Anal(Config.Analyzer);
  std::vector<analyzer::ObjectClassification> Classes =
      Anal.classify(Registry, Profiler);
  if (Config.Strategy == PlacementStrategy::BandwidthBalanced) {
    // Equalize per-tier streaming time: place the share of miss traffic
    // matching the fast tier's share of aggregate bandwidth.
    const sim::TierSpec &Fast = Config.Machine.Fast;
    const sim::TierSpec &Slow = Config.Machine.Slow;
    double Share = Fast.BandwidthBytesPerSec /
                   (Fast.BandwidthBytesPerSec + Slow.BandwidthBytesPerSec);
    LastPlan = analyzer::PlanBuilder::buildBandwidthBalanced(Classes, Budget,
                                                             Share);
  } else {
    LastPlan = analyzer::PlanBuilder::build(Classes, Budget);
  }
  auto priorityOf =
      [&Classes](mem::ObjectId Id) -> const std::vector<double> * {
    for (const analyzer::ObjectClassification &Cls : Classes)
      if (Cls.Object == Id)
        return &Cls.Local.Priority;
    return nullptr;
  };

  // Epoch boundary of the lookahead pipeline: staged-ahead ranges the
  // fresh plan confirms commit here for the price of a remap (their copy
  // already ran overlapped with compute); mispredictions evaporate. Runs
  // before demotions/promotions so the demand path below sees committed
  // chunks as already placed and never re-migrates them.
  if (Config.Lookahead.Enabled)
    resolveStagedAhead(Result);

  // Chunks a previous epoch had to leave behind are re-nominated this
  // epoch alongside the fresh plan.
  std::vector<SkippedChunk> PrevSkipped = std::move(Skipped);
  Skipped.clear();
  std::vector<uint8_t> Consumed(PrevSkipped.size(), 0);

  if (Config.DemoteUnselected)
    demoteUnselected(Mig, Result);
  for (const analyzer::ObjectPlan &ObjPlan : LastPlan.Objects) {
    mem::DataObject &Obj = Registry.object(ObjPlan.Object);
    // Only move ranges whose chunks are not already on the fast tier.
    std::vector<mem::ChunkRange> Pending;
    for (const mem::ChunkRange &Range : ObjPlan.Ranges)
      for (uint32_t C = Range.FirstChunk;
           C < Range.FirstChunk + Range.NumChunks;) {
        // Split the range at tier transitions.
        if (Obj.chunkTier(C) == sim::TierId::Fast) {
          ++C;
          continue;
        }
        uint32_t Begin = C;
        while (C < Range.FirstChunk + Range.NumChunks &&
               Obj.chunkTier(C) == sim::TierId::Slow)
          ++C;
        Pending.push_back({Begin, C - Begin});
      }
    if (!PrevSkipped.empty()) {
      std::vector<uint8_t> InPending(Obj.numChunks(), 0);
      for (const mem::ChunkRange &Range : Pending)
        for (uint32_t C = Range.FirstChunk;
             C < Range.FirstChunk + Range.NumChunks; ++C)
          InPending[C] = 1;
      for (size_t I = 0; I < PrevSkipped.size(); ++I) {
        if (Consumed[I] || PrevSkipped[I].Object != Obj.id() ||
            PrevSkipped[I].Target != sim::TierId::Fast)
          continue;
        Consumed[I] = 1;
        ++EpochRenominated;
        countRenominated();
        recordDecisionEvents(Obj, {PrevSkipped[I].Range}, sim::TierId::Fast,
                             obs::DecisionPhase::Renominated,
                             priorityOf(Obj.id()));
        appendSlowRuns(Obj, PrevSkipped[I].Range, InPending, Pending);
      }
    }
    if (Pending.empty())
      continue;
    promoteWithRecovery(Mig, Obj, std::move(Pending), priorityOf(Obj.id()),
                        Result);
  }
  // Skipped promotions whose object the fresh plan did not select at all
  // are still re-nominated (the chunks were worth fast-tier placement one
  // epoch ago and nothing has placed them since).
  for (size_t I = 0; I < PrevSkipped.size(); ++I) {
    if (Consumed[I] || PrevSkipped[I].Target != sim::TierId::Fast)
      continue;
    mem::ObjectId Id = PrevSkipped[I].Object;
    bool Live = false;
    for (const mem::DataObject *Obj : Registry.liveObjects())
      if (Obj->id() == Id) {
        Live = true;
        break;
      }
    if (!Live) {
      Consumed[I] = 1;
      continue;
    }
    mem::DataObject &Obj = Registry.object(Id);
    std::vector<mem::ChunkRange> Pending;
    std::vector<uint8_t> InPending(Obj.numChunks(), 0);
    for (size_t J = I; J < PrevSkipped.size(); ++J) {
      if (Consumed[J] || PrevSkipped[J].Object != Id ||
          PrevSkipped[J].Target != sim::TierId::Fast)
        continue;
      Consumed[J] = 1;
      ++EpochRenominated;
      countRenominated();
      recordDecisionEvents(Obj, {PrevSkipped[J].Range}, sim::TierId::Fast,
                           obs::DecisionPhase::Renominated,
                           priorityOf(Id));
      appendSlowRuns(Obj, PrevSkipped[J].Range, InPending, Pending);
    }
    if (!Pending.empty())
      promoteWithRecovery(Mig, Obj, std::move(Pending), priorityOf(Id),
                          Result);
  }
  // Predict and stage next epoch's hot chunks, then launch the overlapped
  // copy; finally update the adaptive scheduler's convergence accounting.
  if (Config.Lookahead.Enabled &&
      Config.Mechanism == MigrationMechanism::Atmem) {
    stageLookahead(Classes);
    updateBackoff();
  }

  logInfo("optimize: moved %llu bytes in %llu ranges, %.3f ms simulated",
          static_cast<unsigned long long>(Result.BytesMoved),
          static_cast<unsigned long long>(Result.Ranges),
          Result.SimSeconds * 1e3);
  OptimizeSpan.arg("bytes_moved", static_cast<double>(Result.BytesMoved))
      .arg("ranges", static_cast<double>(Result.Ranges))
      .arg("sim_sec", Result.SimSeconds);
  if (TsEnabled || StatsServer || HealthMon) {
    double WallUs = 0.0;
    if (NeedWall) {
      LastEpochWallEnd = std::chrono::steady_clock::now();
      HaveLastEpochWall = true;
      WallUs = std::chrono::duration<double, std::micro>(LastEpochWallEnd -
                                                         WallStart)
                   .count();
    }
    captureEpochSample(Result, RollbacksBefore, WallUs, IterWallUs);
  }
  return Result;
}

void Runtime::captureEpochSample(const mem::MigrationResult &Result,
                                 uint64_t RollbacksBefore, double WallUs,
                                 double IterWallUs) {
  ++OptimizeEpochs;
  if (obs::TimeSeries::instance().enabled() || HealthMon) {
    obs::EpochSample S;
    S.Epoch = OptimizeEpochs;
    S.Accesses = Stats.Accesses;
    S.MissesFast = Stats.TierMisses[sim::tierIndex(sim::TierId::Fast)];
    S.MissesSlow = Stats.TierMisses[sim::tierIndex(sim::TierId::Slow)];
    uint64_t Misses = S.MissesFast + S.MissesSlow;
    S.SlowMissFraction =
        Misses == 0 ? 0.0
                    : static_cast<double>(S.MissesSlow) /
                          static_cast<double>(Misses);
    double IterSec = M.kernelModel().estimate(Stats).seconds();
    S.DrainMissesPerSec =
        IterSec > 0.0 ? static_cast<double>(Misses) / IterSec : 0.0;
    S.MigrationBytes = Result.BytesMoved;
    S.MigrationRanges = Result.Ranges;
    S.Retries = EpochRetries;
    S.Rollbacks = EpochRollbacks - RollbacksBefore;
    S.MigrateSimSec = Result.SimSeconds;
    // The lookahead stats are cumulative; the sample reports this epoch's
    // delta so the series plots activity, not running totals.
    S.LookaheadStaged = LkStats.StagedRanges - TsPrevStaged;
    S.LookaheadCancelled = LkStats.CancelledRanges - TsPrevCancelled;
    S.LookaheadOverlapSec = LkStats.OverlappedSimSec - TsPrevOverlap;
    TsPrevStaged = LkStats.StagedRanges;
    TsPrevCancelled = LkStats.CancelledRanges;
    TsPrevOverlap = LkStats.OverlappedSimSec;
    S.FastDataRatio = fastDataRatio();
    S.OptimizeWallUs = WallUs;
    S.IterationWallUs = IterWallUs;
    if (obs::TimeSeries::instance().enabled())
      obs::TimeSeries::instance().record(S);
    if (HealthMon) {
      std::vector<obs::HealthEvent> Events = HealthMon->observeEpoch(S);
      obs::HealthLog &Log = obs::HealthLog::instance();
      for (const obs::HealthEvent &E : Events) {
        if (Log.isOpen())
          Log.append(E);
        if (obs::enabled()) {
          // Registered lazily inside the health-gated path, so runs with
          // health disabled export byte-identical metrics JSON.
          static obs::Counter Info("health.events_info");
          static obs::Counter Warn("health.events_warn");
          static obs::Counter Critical("health.events_critical");
          switch (E.Severity) {
          case obs::HealthSeverity::Info:
            Info.add(1);
            break;
          case obs::HealthSeverity::Warn:
            Warn.add(1);
            break;
          case obs::HealthSeverity::Critical:
            Critical.add(1);
            break;
          }
        }
      }
      if (obs::enabled()) {
        // Per-run SLO verdicts: the worst status each detector ever
        // reached (0 green / 1 yellow / 2 red), monotone via gaugeMax.
        obs::HealthMonitor::Snapshot Snap = HealthMon->snapshot();
        for (uint32_t D = 0; D < obs::NumHealthDetectors; ++D) {
          static std::once_flag NamesOnce;
          static std::vector<obs::Gauge> *SloGauges;
          std::call_once(NamesOnce, [] {
            SloGauges = new std::vector<obs::Gauge>();
            for (uint32_t I = 0; I < obs::NumHealthDetectors; ++I)
              SloGauges->emplace_back(
                  std::string("health.slo.") +
                  obs::healthDetectorName(
                      static_cast<obs::HealthDetector>(I)));
          });
          (*SloGauges)[D].max(
              static_cast<double>(Snap.Detectors[D].Worst));
        }
      }
    }
  }
  if (StatsServer)
    updatePlacementJson();
}

void Runtime::noteHealthMigration(uint64_t Object, uint32_t FirstChunk,
                                  uint32_t NumChunks, bool ToFast) {
  if (HealthMon)
    HealthMon->noteMigration(Object, FirstChunk, NumChunks, ToFast);
}

void Runtime::updatePlacementJson() {
  std::string Out = "[";
  char Buf[256];
  bool First = true;
  for (const mem::DataObject *Obj : Registry.liveObjects()) {
    uint64_t FastBytes = Obj->bytesOn(sim::TierId::Fast);
    // bytesOn() counts whole mapped chunks, so the residency fraction is
    // relative to mappedBytes (sizeBytes rounded up to the chunk grid).
    uint64_t Mapped = Obj->mappedBytes();
    std::string Name;
    for (char C : Obj->name()) {
      if (C == '"' || C == '\\')
        Name += '\\';
      if (static_cast<unsigned char>(C) >= 0x20)
        Name += C;
    }
    // The name goes through std::string appends (it is caller-controlled
    // and unbounded); only the fixed-width numeric tail uses snprintf.
    Out += First ? "{\"name\": \"" : ", {\"name\": \"";
    Out += Name;
    std::snprintf(Buf, sizeof(Buf),
                  "\", \"bytes\": %" PRIu64 ", \"chunks\": %" PRIu32
                  ", \"fast_bytes\": %" PRIu64 ", \"fast_fraction\": %.6f}",
                  Obj->sizeBytes(), Obj->numChunks(), FastBytes,
                  Mapped == 0 ? 0.0
                              : static_cast<double>(FastBytes) /
                                    static_cast<double>(Mapped));
    Out += Buf;
    First = false;
  }
  Out += "]";
  std::lock_guard<std::mutex> Lock(StatsMutex);
  PlacementJson = std::move(Out);
}

std::string Runtime::statsSnapshotJson() {
  // Runs on the accept thread: everything read here is either immutable,
  // internally synchronized (metric registry, time series, ring head
  // atomics), or the mutex-guarded placement snapshot. Live runtime
  // structures are never touched.
  obs::RingHead Head = obs::ringHead();
  std::string Placement;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Placement = PlacementJson;
  }
  if (Placement.empty())
    Placement = "[]";
  std::vector<obs::EpochSample> Samples =
      obs::TimeSeries::instance().snapshot();

  char Buf[512];
  std::string Out = "{\n  \"schema\": \"atmem-stats-v1\",\n";
  std::snprintf(Buf, sizeof(Buf),
                "  \"epoch\": %" PRIu64 ",\n  \"ring\": {\"segment\": %" PRIu64
                ", \"offset\": %" PRIu64 ", \"next_seq\": %" PRIu64 "},\n",
                Samples.empty() ? 0 : Samples.back().Epoch, Head.Segment,
                Head.Offset, Head.NextSeq);
  Out += Buf;
  if (!Samples.empty()) {
    const obs::EpochSample &S = Samples.back();
    std::snprintf(Buf, sizeof(Buf),
                  "  \"last_epoch\": {\"epoch\": %" PRIu64
                  ", \"slow_miss_fraction\": %.6f, \"migration_bytes\": "
                  "%" PRIu64 ", \"migration_ranges\": %" PRIu64
                  ", \"retries\": %" PRIu64 ", \"rollbacks\": %" PRIu64
                  ", \"fast_data_ratio\": %.6f, \"optimize_wall_us\": %.1f},\n",
                  S.Epoch, S.SlowMissFraction, S.MigrationBytes,
                  S.MigrationRanges, S.Retries, S.Rollbacks, S.FastDataRatio,
                  S.OptimizeWallUs);
    Out += Buf;
  }
  if (HealthMon) {
    // Live detector panel. The section is present only when the monitor
    // is armed, so the served schema is unchanged for existing clients.
    obs::HealthMonitor::Snapshot Snap = HealthMon->snapshot();
    std::snprintf(Buf, sizeof(Buf),
                  "  \"health\": {\"overall\": \"%s\", \"worst\": \"%s\", "
                  "\"events\": {\"info\": %" PRIu64 ", \"warn\": %" PRIu64
                  ", \"critical\": %" PRIu64 "}, \"detectors\": [",
                  obs::sloStatusName(Snap.Overall),
                  obs::sloStatusName(Snap.WorstOverall), Snap.EventsInfo,
                  Snap.EventsWarn, Snap.EventsCritical);
    Out += Buf;
    for (uint32_t D = 0; D < obs::NumHealthDetectors; ++D) {
      const auto &Det = Snap.Detectors[D];
      std::string Detail;
      for (char C : Det.Detail) {
        if (C == '"' || C == '\\')
          Detail += '\\';
        if (static_cast<unsigned char>(C) >= 0x20)
          Detail += C;
      }
      std::snprintf(
          Buf, sizeof(Buf),
          "%s{\"name\": \"%s\", \"status\": \"%s\", \"worst\": \"%s\", "
          "\"events\": %" PRIu64 ", \"last_epoch\": %" PRIu64
          ", \"value\": %.6f, \"detail\": \"",
          D == 0 ? "" : ", ",
          obs::healthDetectorName(static_cast<obs::HealthDetector>(D)),
          obs::sloStatusName(Det.Status), obs::sloStatusName(Det.Worst),
          Det.Events, Det.LastEventEpoch,
          std::isfinite(Det.Value) ? Det.Value : 0.0);
      Out += Buf;
      Out += Detail;
      Out += "\"}";
    }
    Out += "]},\n";
  }
  Out += "  \"metrics\":\n";
  Out += obs::metricsJson(obs::Registry::instance().snapshot(), "  ");
  Out += ",\n  \"placement\": ";
  Out += Placement;
  Out += "\n}\n";
  return Out;
}

void Runtime::demoteUnselected(mem::Migrator &Mig,
                               mem::MigrationResult &Result) {
  // Per-object selection flags from the current plan.
  for (mem::DataObject *Obj : Registry.liveObjects()) {
    std::vector<uint8_t> Selected(Obj->numChunks(), 0);
    for (const analyzer::ObjectPlan &ObjPlan : LastPlan.Objects) {
      if (ObjPlan.Object != Obj->id())
        continue;
      for (const mem::ChunkRange &Range : ObjPlan.Ranges)
        for (uint32_t C = Range.FirstChunk;
             C < Range.FirstChunk + Range.NumChunks; ++C)
          Selected[C] = 1;
    }
    std::vector<mem::ChunkRange> Demotions;
    for (uint32_t C = 0; C < Obj->numChunks();) {
      if (Selected[C] || Obj->chunkTier(C) != sim::TierId::Fast) {
        ++C;
        continue;
      }
      uint32_t Begin = C;
      while (C < Obj->numChunks() && !Selected[C] &&
             Obj->chunkTier(C) == sim::TierId::Fast)
        ++C;
      Demotions.push_back({Begin, C - Begin});
    }
    if (Demotions.empty())
      continue;
    // Demotions free capacity rather than consume it, so recovery is
    // retry-only: the next epoch recomputes unselected chunks from
    // scratch, which re-nominates anything left behind here.
    std::vector<mem::ChunkRange> Pending = std::move(Demotions);
    recordDecisionEvents(*Obj, Pending, sim::TierId::Slow,
                         obs::DecisionPhase::Planned, nullptr);
    // The ping-pong detector needs what actually moved, recomputed from
    // chunk tiers after the retry loop settles (all of Orig started on
    // the fast tier, so whatever now sits on slow was demoted here).
    std::vector<mem::ChunkRange> HealthOrig;
    if (HealthMon)
      HealthOrig = Pending;
    uint32_t Retries = 0;
    for (;;) {
      mem::MigrationStatus Status =
          Mig.migrate(*Obj, Pending, sim::TierId::Slow, Result);
      if (Status == mem::MigrationStatus::Retryable)
        ++EpochRollbacks; // A Retryable status means a range rolled back.
      if (Status == mem::MigrationStatus::Success)
        break;
      std::vector<mem::ChunkRange> Remaining =
          remainingOnSource(*Obj, Pending, sim::TierId::Fast);
      if (Remaining.empty())
        break;
      if (Status == mem::MigrationStatus::Retryable &&
          Retries < Config.MigrationMaxRetries) {
        ++Retries;
        ++EpochRetries;
        Result.SimSeconds += Config.MigrationRetryBackoffSec * Retries;
        countRetry();
        recordDecisionEvents(*Obj, Remaining, sim::TierId::Slow,
                             obs::DecisionPhase::Retried, nullptr);
        Pending = std::move(Remaining);
        continue;
      }
      recordSkipped(*Obj, Remaining, sim::TierId::Slow, nullptr);
      countDegraded(Remaining.size());
      logError("demotion of object '%s' hit slow-tier capacity",
               Obj->name().c_str());
      break;
    }
    if (HealthMon)
      for (const mem::ChunkRange &Moved :
           remainingOnSource(*Obj, HealthOrig, sim::TierId::Slow))
        noteHealthMigration(Obj->id(), Moved.FirstChunk, Moved.NumChunks,
                            /*ToFast=*/false);
  }
}

void Runtime::promoteWithRecovery(mem::Migrator &Mig, mem::DataObject &Obj,
                                  std::vector<mem::ChunkRange> Pending,
                                  const std::vector<double> *Priorities,
                                  mem::MigrationResult &Result) {
  uint32_t Retries = 0;
  bool Shrunk = false;
  recordDecisionEvents(Obj, Pending, sim::TierId::Fast,
                       obs::DecisionPhase::Planned, Priorities);
  // What the ping-pong detector sees is the promotion that actually
  // landed: recomputed from chunk tiers at every exit (all of Orig
  // started on the slow tier, so whatever now sits on fast moved here).
  std::vector<mem::ChunkRange> HealthOrig;
  if (HealthMon)
    HealthOrig = Pending;
  auto NoteMoved = [&] {
    if (!HealthMon)
      return;
    for (const mem::ChunkRange &Moved :
         remainingOnSource(Obj, HealthOrig, sim::TierId::Fast))
      noteHealthMigration(Obj.id(), Moved.FirstChunk, Moved.NumChunks,
                          /*ToFast=*/true);
  };
  // Ranges dropped by a capacity shrink, reported together with whatever
  // the final attempt leaves behind.
  std::vector<mem::ChunkRange> Abandoned;
  for (;;) {
    mem::MigrationStatus Status =
        Mig.migrate(Obj, Pending, sim::TierId::Fast, Result);
    if (Status == mem::MigrationStatus::Retryable)
      ++EpochRollbacks; // A Retryable status means a range rolled back.
    if (Status == mem::MigrationStatus::Success) {
      NoteMoved();
      if (Abandoned.empty())
        return;
      recordSkipped(Obj, Abandoned, sim::TierId::Fast, Priorities);
      countDegraded(Abandoned.size());
      logError("migration of object '%s' hit fast-tier capacity",
               Obj.name().c_str());
      return;
    }
    std::vector<mem::ChunkRange> Remaining =
        remainingOnSource(Obj, Pending, sim::TierId::Slow);
    if (Status == mem::MigrationStatus::Retryable &&
        Retries < Config.MigrationMaxRetries) {
      ++Retries;
      ++EpochRetries;
      Result.SimSeconds += Config.MigrationRetryBackoffSec * Retries;
      countRetry();
      recordDecisionEvents(Obj, Remaining, sim::TierId::Fast,
                           obs::DecisionPhase::Retried, Priorities);
      Pending = std::move(Remaining);
      continue;
    }
    if (Status == mem::MigrationStatus::Degraded && !Shrunk) {
      // Capacity-bound: keep the highest-priority chunks that fit the
      // free bytes under this mechanism's capacity model, as single-chunk
      // ranges (smaller staging granules under pressure).
      auto [Subset, Dropped] = highestPriorityFit(
          Obj, Remaining, Mig, M.allocator(sim::TierId::Fast).freeBytes(),
          Priorities);
      if (!Subset.empty()) {
        recordDecisionEvents(Obj, Dropped, sim::TierId::Fast,
                             obs::DecisionPhase::Degraded, Priorities);
        Abandoned.insert(Abandoned.end(), Dropped.begin(), Dropped.end());
        Pending = std::move(Subset);
        Shrunk = true;
        continue;
      }
    }
    Abandoned.insert(Abandoned.end(), Remaining.begin(), Remaining.end());
    if (!Abandoned.empty()) {
      recordSkipped(Obj, Abandoned, sim::TierId::Fast, Priorities);
      countDegraded(Abandoned.size());
    }
    if (Status == mem::MigrationStatus::Retryable)
      logError("migration of object '%s' abandoned after %u retries",
               Obj.name().c_str(), Retries);
    else
      logError("migration of object '%s' hit fast-tier capacity",
               Obj.name().c_str());
    NoteMoved();
    return;
  }
}

void Runtime::recordSkipped(const mem::DataObject &Obj,
                            const std::vector<mem::ChunkRange> &Ranges,
                            sim::TierId Target,
                            const std::vector<double> *Priorities) {
  recordDecisionEvents(Obj, Ranges, Target, obs::DecisionPhase::Skipped,
                       Priorities);
  for (const mem::ChunkRange &Range : Ranges)
    Skipped.push_back(
        {Obj.id(), Range, Target, rangePriority(Priorities, Range)});
}

void Runtime::beginIteration() {
  Stats = sim::AccessStats();
  for (auto &Ctx : Contexts)
    Ctx->beginIteration();
  if (obs::enabled() && !IterationSpanOpen) {
    obs::Tracer::instance().begin("runtime.iteration", "runtime");
    IterationSpanOpen = true;
  }
}

double Runtime::endIteration() {
  mergeContexts();
  double SimSec = M.kernelModel().estimate(Stats).seconds();
  if (obs::enabled()) {
    static obs::Counter Iterations("runtime.iterations");
    static obs::Counter Accesses("runtime.accesses");
    static obs::Counter LlcHits("runtime.llc_hits");
    static obs::Counter MissesFast("runtime.misses_fast");
    static obs::Counter MissesSlow("runtime.misses_slow");
    static obs::Histogram IterUs("runtime.iteration_sim_us");
    Iterations.add(1);
    Accesses.add(Stats.Accesses);
    LlcHits.add(Stats.LlcHits);
    MissesFast.add(Stats.TierMisses[sim::tierIndex(sim::TierId::Fast)]);
    MissesSlow.add(Stats.TierMisses[sim::tierIndex(sim::TierId::Slow)]);
    IterUs.recordSeconds(SimSec);
    if (ReplayTlb) {
      // Hoisted like the counters above: constructing a Gauge by name is
      // a registry lookup that has no place in the per-iteration path.
      static obs::Gauge TlbHits("runtime.tlb_hits");
      static obs::Gauge TlbMisses("runtime.tlb_misses");
      TlbHits.set(static_cast<double>(ReplayTlb->hits()));
      TlbMisses.set(static_cast<double>(ReplayTlb->misses()));
    }
  }
  if (IterationSpanOpen) {
    IterationSpanOpen = false;
    obs::Tracer::instance().end(
        "runtime.iteration", "runtime",
        {{"sim_sec", SimSec},
         {"accesses", static_cast<double>(Stats.Accesses)},
         {"llc_hits", static_cast<double>(Stats.LlcHits)}});
  }
  return SimSec;
}

void Runtime::mergeContexts() {
  if (Contexts.empty())
    return;
  if (Config.BatchedDrain)
    drainBatched();
  else
    drainReference();
}

void Runtime::drainReference() {
  // Pre-optimization drain, preserved verbatim: one profiler countdown
  // step, one trace append, and one uncached page-table walk per miss.
  for (auto &Ctx : Contexts) {
    Stats += Ctx->stats();
    Ctx->stats() = sim::AccessStats();
    for (uint64_t Va : Ctx->missBuffer()) {
      Profiler.notifyMissReference(Va);
      if (MissTrace)
        MissTrace->record(Va);
      if (ReplayTlb)
        replayTlbAccessUncached(Va);
    }
    Ctx->recycleMissBuffer();
  }
}

void Runtime::drainBatched() {
  // Stage 1 — merge shard stats in thread-index order and pre-scan the
  // buffers for samples. Sample *selection* depends only on the miss
  // order (attribution never feeds back into it), so the buffers'
  // concatenation order fully determines which misses are chosen.
  PendingScratch.clear();
  size_t TotalMisses = 0;
  for (auto &Ctx : Contexts) {
    Stats += Ctx->stats();
    Ctx->stats() = sim::AccessStats();
    TotalMisses += Ctx->missBuffer().size();
  }

  // Cross-node drain accounting: buffers were first-touched on their
  // shard's home node, so every byte a differently-homed thread drains
  // is remote traffic — the quantity NUMA sharding exists to shrink.
  if (obs::enabled() && Topo.multiNode()) {
    static obs::Counter RemoteBytes("numa.remote_drain_bytes");
    static obs::Counter LocalBytes("numa.local_drain_bytes");
    uint32_t DrainNode = Topo.nodeOfCpu(support::currentCpu());
    uint64_t Remote = 0, Local = 0;
    for (auto &Ctx : Contexts)
      (Ctx->homeNode() == DrainNode ? Local : Remote) +=
          Ctx->missBuffer().size() * sizeof(uint64_t);
    if (Local)
      LocalBytes.add(Local);
    if (Remote)
      RemoteBytes.add(Remote);
  }

  // The countdown advance is associative over a buffer: the state after
  // scanning N misses depends only on N (advanceSelection computes it in
  // O(period doublings)). So each shard's start state is computed
  // serially for pennies, the per-shard scans run concurrently on the
  // kernel pool — each shard scanned by one worker, ideally the one
  // pinned to the buffer's home node — and the selections are spliced in
  // thread-index order. Bit-identical to the serial scan by
  // construction; small drains and single-core hosts keep the serial
  // path.
  bool ParallelSelect = Profiler.isActive() && KernelPool &&
                        HostThreads > 1 && Contexts.size() > 1 &&
                        TotalMisses >= Config.ParallelSelectionThreshold;
  if (ParallelSelect) {
    size_t NumShards = Contexts.size();
    SelStateScratch.resize(NumShards);
    SelScratch.resize(NumShards);
    prof::SelectionState End = Profiler.selectionState();
    for (size_t I = 0; I < NumShards; ++I) {
      SelStateScratch[I] = End;
      Profiler.advanceSelection(End, Contexts[I]->missBuffer().size());
    }
    KernelPool->parallelForThreaded(
        0, NumShards, 1, [&](uint32_t, uint64_t Begin, uint64_t EndShard) {
          for (uint64_t I = Begin; I < EndShard; ++I) {
            SelScratch[I].clear();
            const std::vector<uint64_t> &Buf = Contexts[I]->missBuffer();
            Profiler.selectSamplesFrom(SelStateScratch[I], Buf.data(),
                                       Buf.size(), SelScratch[I]);
          }
        });
    // The last shard's scanned end state must land exactly on the
    // arithmetic advance (fuzzed in the equivalence suite too).
    assert(SelStateScratch.back() == End &&
           "arithmetic selection advance diverged from the scan");
    Profiler.commitSelectionState(End);
    for (size_t I = 0; I < NumShards; ++I)
      PendingScratch.insert(PendingScratch.end(), SelScratch[I].begin(),
                            SelScratch[I].end());
  } else {
    for (auto &Ctx : Contexts) {
      const std::vector<uint64_t> &Buf = Ctx->missBuffer();
      Profiler.selectSamples(Buf.data(), Buf.size(), PendingScratch);
    }
  }

  // Stage 4 launch — on multi-core hosts the TLB replay runs overlapped
  // with stages 2-3: replay touches only ReplayTlb/ReplayCache and its
  // own scratch, attribution/commit touch only registry and profiler
  // state, and both sides just read the miss buffers. Joined before
  // stage 5 donates the buffers. Single-core hosts (and small drains)
  // keep today's serial order.
  std::thread ReplayThread;
  bool OverlapReplay = ReplayTlb && Config.OverlapTlbReplay &&
                       HostThreads > 1 &&
                       TotalMisses >= Config.ParallelSelectionThreshold;
  if (OverlapReplay)
    ReplayThread = std::thread([this] { replayTlbBatched(); });

  // Stage 2 — attribute the selected samples to (object, chunk). Each
  // sample's result is a pure function of its address, so fanning the
  // lookups across the kernel pool cannot change any outcome; below the
  // threshold (or on a single-core host, where pool dispatch just
  // context-switches) the serial loop is cheaper than the fan-out.
  AttrScratch.assign(PendingScratch.size(), AttributedSample{});
  if (KernelPool && HostThreads > 1 &&
      PendingScratch.size() >= Config.ParallelAttributionThreshold) {
    // Hints persist across drains (warm starting points); each worker
    // owns one slot, so reuse is race-free.
    AttrHintScratch.resize(KernelPool->threadCount());
    // On multi-node hosts each participant attributes against its own
    // replica of the interval index, copied by the pinned worker itself
    // (first touch = node-local) and revalidated with one version
    // compare. The replica is byte-equal to the shared index, so results
    // cannot differ; single-node hosts keep reading the shared one.
    bool UseReplicas = Topo.multiNode();
    if (UseReplicas)
      NodeAttr.resize(KernelPool->threadCount());
    uint64_t IndexVersion = Registry.attributionIndexVersion();
    const std::vector<mem::DataObjectRegistry::AttrInterval> &SharedIndex =
        Registry.attributionIndex();
    uint64_t Chunk = std::max<uint64_t>(
        PendingScratch.size() / AttrHintScratch.size() / 4, 256);
    KernelPool->parallelForThreaded(
        0, PendingScratch.size(), Chunk,
        [&](uint32_t Tid, uint64_t Begin, uint64_t End) {
          const mem::DataObjectRegistry::AttrInterval *Index =
              SharedIndex.data();
          size_t IndexCount = SharedIndex.size();
          if (UseReplicas) {
            NodeAttrReplica &Replica = NodeAttr[Tid];
            if (Replica.Version != IndexVersion) {
              Replica.Index = SharedIndex;
              Replica.Version = IndexVersion;
            }
            Index = Replica.Index.data();
            IndexCount = Replica.Index.size();
          }
          mem::AttributionHint &Hint = AttrHintScratch[Tid];
          for (uint64_t I = Begin; I < End; ++I)
            AttrScratch[I].Ok = mem::DataObjectRegistry::attributeWithIndex(
                Index, IndexCount, PendingScratch[I].Va, AttrScratch[I].Attr,
                Hint);
        });
  } else {
    for (size_t I = 0; I < PendingScratch.size(); ++I)
      AttrScratch[I].Ok = Registry.attributeIndexed(
          PendingScratch[I].Va, AttrScratch[I].Attr, SerialAttrHint);
  }

  // Stage 3 — serial commit in selection order. Floating-point profile
  // accumulation happens in exactly the per-miss order, keeping results
  // bit-identical to the reference drain.
  for (size_t I = 0; I < PendingScratch.size(); ++I)
    Profiler.commitSample(PendingScratch[I], AttrScratch[I].Ok != 0,
                          AttrScratch[I].Attr);

  // Stage 4 — TLB replay: overlapped thread joins here, otherwise run it
  // now (today's serial order).
  if (ReplayThread.joinable())
    ReplayThread.join();
  else if (ReplayTlb)
    replayTlbBatched();

  // Stage 5 — trace hand-off and buffer recycling. The miss buffers are
  // donated to the trace writer's spill thread zero-copy, in thread-index
  // order (the same order the synchronous recordBatch calls used, so the
  // file bytes are unchanged); each context gets a drained segment back.
  // This runs after the TLB replay because the replay still reads the
  // buffers; the trace content itself depends on nothing downstream.
  for (auto &Ctx : Contexts) {
    if (MissTrace && !Ctx->missBuffer().empty())
      MissTrace->recordBatchOwned(
          Ctx->donateMissBuffer(MissTrace->takeRecycled()));
    else
      Ctx->recycleMissBuffer();
  }
}

void Runtime::replayTlbBatched() {
  if (!ReplayCache)
    ReplayCache = std::make_unique<sim::TranslationCache>(M.pageTable());
  sim::TranslationCache &Cache = *ReplayCache;
  sim::Tlb &Tlb = *ReplayTlb;
  // The page table cannot mutate while we replay, so the epoch check
  // runs once here instead of per miss, and the loop needs only the
  // page size — not the reconstructed frame — from the cache.
  Cache.revalidate();
  // Huge-page run skip: a 2 MiB VA region is uniformly mapped (one huge
  // page or 512 small ones), so once a miss resolves huge, every
  // following miss in the same 2 MiB frame shares that translation —
  // one translation per run instead of one per miss.
  //
  // The replay is software-pipelined at block granularity. Per block:
  // derive every miss's huge VPN with one SIMD shift pass, then
  // gather-probe the translation cache for all of them at once — the
  // probes are independent random loads over a 64 KiB slot array, so
  // batching lets their cache misses overlap each other and the TLB
  // accesses of the *previous* runs instead of serializing
  // probe → access → probe per miss; a prefetch starts the next run's
  // TLB set row while the current access retires. A block-start hint can
  // only be stale in the safe direction: a hit means the region WAS
  // cached huge under a quiescent table, so it is truly huge-mapped and
  // the verdict (huge-array access with this VPN) is exactly what the
  // sequential probe would produce; a stale miss falls through to the
  // same probe-then-translate path as before. TLB verdicts, counters,
  // and LRU state are therefore bit-identical to the unpipelined loop —
  // only the translation cache's internal diagnostics can differ.
  sim::TlbArray &HugeTlb = Tlb.hugeArray();
  sim::TlbArray &SmallTlb = Tlb.smallArray();
  uint64_t RunHugeVpn = ~0ull;

  // The pipeline's derive/probe passes only pay once the probe working
  // set (one huge slot per mapped 2 MiB) outgrows L1 and scalar probes
  // start stalling; small working sets keep the slots cache-hot, so the
  // single-pass run-skip loop below is strictly cheaper there. Both
  // paths leave bit-identical TLB state (the gate is a pure perf
  // choice), measured at the crossover in RuntimeConfig's knob comment.
  bool GatherReplay =
      Registry.totalMappedBytes() >= Config.GatherReplayMinMappedBytes;
  if (!GatherReplay) {
    for (auto &Ctx : Contexts)
      for (uint64_t Va : Ctx->missBuffer()) {
        uint64_t HugeVpn = Va >> 21;
        if (HugeVpn == RunHugeVpn || Cache.isCachedHuge(HugeVpn)) {
          RunHugeVpn = HugeVpn;
          HugeTlb.accessVpn(HugeVpn);
          continue;
        }
        uint64_t PageBytes;
        if (!Cache.translatePageBytes(Va, PageBytes))
          continue;
        if (PageBytes == sim::HugePageBytes) {
          RunHugeVpn = HugeVpn;
          HugeTlb.accessVpn(HugeVpn);
        } else {
          RunHugeVpn = ~0ull;
          SmallTlb.access(Va);
        }
      }
    return;
  }

  constexpr size_t BlockMisses = 4096;
  for (auto &Ctx : Contexts) {
    const std::vector<uint64_t> &Buf = Ctx->missBuffer();
    for (size_t Base = 0; Base < Buf.size(); Base += BlockMisses) {
      size_t N = std::min(BlockMisses, Buf.size() - Base);
      VpnScratch.resize(N);
      HugeHintScratch.resize(N);
      sim::batchShiftRight(Buf.data() + Base, N, 21, VpnScratch.data());
      Cache.probeHugeBatch(VpnScratch.data(), N, HugeHintScratch.data());
      for (size_t I = 0; I < N; ++I) {
        uint64_t HugeVpn = VpnScratch[I];
        if (I + 1 < N && VpnScratch[I + 1] != HugeVpn)
          HugeTlb.prefetchVpn(VpnScratch[I + 1]);
        if (HugeVpn == RunHugeVpn || HugeHintScratch[I] ||
            Cache.isCachedHuge(HugeVpn)) {
          RunHugeVpn = HugeVpn;
          HugeTlb.accessVpn(HugeVpn);
          continue;
        }
        uint64_t PageBytes;
        if (!Cache.translatePageBytes(Buf[Base + I], PageBytes))
          continue;
        if (PageBytes == sim::HugePageBytes) {
          RunHugeVpn = HugeVpn;
          HugeTlb.accessVpn(HugeVpn);
        } else {
          RunHugeVpn = ~0ull;
          SmallTlb.access(Buf[Base + I]);
        }
      }
    }
  }
}

double Runtime::fastDataRatio() const {
  uint64_t Total = Registry.totalMappedBytes();
  if (Total == 0)
    return 0.0;
  return static_cast<double>(Registry.totalBytesOn(sim::TierId::Fast)) /
         static_cast<double>(Total);
}

void Runtime::replayTlbAccess(uint64_t Va) {
  if (!ReplayCache)
    ReplayCache = std::make_unique<sim::TranslationCache>(M.pageTable());
  sim::Translation T;
  if (ReplayCache->translate(Va, T))
    ReplayTlb->access(Va, T.PageBytes);
}

void Runtime::replayTlbAccessUncached(uint64_t Va) {
  sim::Translation T;
  if (M.pageTable().translate(Va, T))
    ReplayTlb->access(Va, T.PageBytes);
}

//===----------------------------------------------------------------------===//
// Lookahead pipeline
//===----------------------------------------------------------------------===//

void Runtime::joinLookaheadCopies() {
  if (LookaheadCopyThread.joinable())
    LookaheadCopyThread.join();
}

void Runtime::shutdownLookahead() {
  joinLookaheadCopies();
  // Silent unmap (no events): the decision log may already be finalized
  // during teardown, and a destructed runtime's staging regions must not
  // outlive it either way.
  for (const mem::StagedAheadRange &Staged : StagedRanges)
    M.pageTable().unmapRegion(Staged.StagingVa, Staged.Len);
  StagedRanges.clear();
}

bool Runtime::skipConvergedEpoch() {
  if (!Config.Lookahead.AdaptiveEpochs || BackoffRemaining == 0 ||
      !StagedRanges.empty())
    return false;
  // Drift detection on the last iteration's per-tier miss split: a
  // converged placement serves most misses from the fast tier, so a
  // slow-heavy split means the access pattern moved and the back-off must
  // yield to a full analysis epoch immediately.
  uint64_t FastMisses = Stats.TierMisses[sim::tierIndex(sim::TierId::Fast)];
  uint64_t SlowMisses = Stats.TierMisses[sim::tierIndex(sim::TierId::Slow)];
  if (FastMisses + SlowMisses > 0) {
    double SlowFraction = static_cast<double>(SlowMisses) /
                          static_cast<double>(FastMisses + SlowMisses);
    if (SlowFraction >= Config.Lookahead.DriftSlowMissFraction) {
      BackoffRemaining = 0;
      BackoffLen = 0;
      ConvergedStreak = 0;
      logInfo("optimize: drift detected (%.0f%% slow-tier misses), "
              "re-arming analysis",
              SlowFraction * 100.0);
      return false;
    }
  }
  --BackoffRemaining;
  ++LkStats.BackedOffEpochs;
  logInfo("optimize: placement converged, backing off (%u epochs left)",
          BackoffRemaining);
  return true;
}

void Runtime::resolveStagedAhead(mem::MigrationResult &Result) {
  for (mem::StagedAheadRange &Staged : StagedRanges) {
    // Freed object: nothing to place, just release the staging region
    // (the migrator's event-emitting cancel path needs the live object).
    bool Live = false;
    for (const mem::DataObject *Obj : Registry.liveObjects())
      if (Obj->id() == Staged.Object) {
        Live = true;
        break;
      }
    if (!Live) {
      M.pageTable().unmapRegion(Staged.StagingVa, Staged.Len);
      ++LkStats.CancelledRanges;
      continue;
    }
    mem::DataObject &Obj = Registry.object(Staged.Object);
    if (!Staged.CopyDone)
      ++LkStats.CopyFaults;

    // A staged range commits only when the *fresh* plan independently
    // selects every chunk of it and the chunks are still where the stage
    // left them — predictions confirm placement decisions, they never
    // make them. Everything else is a cancelled prefetch: the staging
    // buffer unmaps and placement is exactly what a run without
    // lookahead would have produced.
    bool Confirmed = Staged.CopyDone;
    for (uint32_t C = Staged.Range.FirstChunk;
         Confirmed && C < Staged.Range.FirstChunk + Staged.Range.NumChunks;
         ++C)
      Confirmed = Obj.chunkTier(C) == Staged.Source;
    if (Confirmed) {
      bool Selected = false;
      for (const analyzer::ObjectPlan &ObjPlan : LastPlan.Objects) {
        if (ObjPlan.Object != Staged.Object)
          continue;
        Selected = true;
        for (uint32_t C = Staged.Range.FirstChunk;
             Selected &&
             C < Staged.Range.FirstChunk + Staged.Range.NumChunks;
             ++C) {
          bool InPlan = false;
          for (const mem::ChunkRange &Range : ObjPlan.Ranges)
            if (C >= Range.FirstChunk &&
                C < Range.FirstChunk + Range.NumChunks) {
              InPlan = true;
              break;
            }
          Selected = InPlan;
        }
        break;
      }
      Confirmed = Selected;
    }

    if (!Confirmed) {
      AtmemMig.cancelStagedAhead(Obj, Staged, sim::TierId::Fast);
      ++LkStats.CancelledRanges;
      continue;
    }
    mem::MigrationStatus Status =
        AtmemMig.commitStagedAhead(Obj, Staged, sim::TierId::Fast, Result);
    if (Status == mem::MigrationStatus::Success) {
      ++LkStats.CommittedRanges;
      LkStats.OverlappedSimSec += Staged.OverlappedSimSec;
      noteHealthMigration(Staged.Object, Staged.Range.FirstChunk,
                          Staged.Range.NumChunks, /*ToFast=*/true);
    } else {
      // The failed commit already cancelled itself (staging released,
      // placement untouched); the chunks stay eligible for the demand
      // path below.
      ++LkStats.CancelledRanges;
      ++EpochRollbacks;
    }
  }
  StagedRanges.clear();
}

void Runtime::stageLookahead(
    const std::vector<analyzer::ObjectClassification> &Classes) {
  if (!Lookahead)
    Lookahead =
        std::make_unique<analyzer::LookaheadPlanner>(Config.Lookahead.Planner);
  Lookahead->observeEpoch(Classes, EpochRenominated, EpochRollbacks,
                          Skipped.size());
  std::vector<analyzer::LookaheadPrediction> Predictions =
      Lookahead->predict();
  LkStats.PredictedChunks += Predictions.size();
  if (Predictions.empty())
    return;

  // Hard capacity budget: a slice of the post-migration fast free bytes,
  // with every staged byte holding 2x through the pipeline (the staging
  // buffer now plus the commit-time remap). Predictions are taken in
  // priority order; one that does not fit is skipped, not queued.
  uint64_t Budget = static_cast<uint64_t>(
      static_cast<double>(M.allocator(sim::TierId::Fast).freeBytes()) *
      Config.Lookahead.CapacityFraction);
  uint64_t Held = 0;
  struct Pick {
    mem::ObjectId Object;
    uint32_t Chunk;
  };
  std::vector<Pick> Picks;
  for (const analyzer::LookaheadPrediction &P : Predictions) {
    bool Live = false;
    for (const mem::DataObject *Obj : Registry.liveObjects())
      if (Obj->id() == P.Object) {
        Live = true;
        break;
      }
    if (!Live)
      continue;
    mem::DataObject &Obj = Registry.object(P.Object);
    if (P.Chunk >= Obj.numChunks() ||
        Obj.chunkTier(P.Chunk) != sim::TierId::Slow)
      continue;
    auto [Begin, End] = Obj.rangeBytes({P.Chunk, 1});
    uint64_t Bytes = End - Begin;
    if (Bytes == 0 || Held + 2 * Bytes > Budget)
      continue;
    Held += 2 * Bytes;
    Picks.push_back({P.Object, P.Chunk});
  }
  if (Picks.empty())
    return;

  // Group per object and merge adjacent chunks into contiguous ranges so
  // each staging buffer covers one run.
  std::sort(Picks.begin(), Picks.end(), [](const Pick &A, const Pick &B) {
    if (A.Object != B.Object)
      return A.Object < B.Object;
    return A.Chunk < B.Chunk;
  });
  size_t Before = StagedRanges.size();
  for (size_t I = 0; I < Picks.size();) {
    mem::ObjectId Id = Picks[I].Object;
    std::vector<mem::ChunkRange> Ranges;
    while (I < Picks.size() && Picks[I].Object == Id) {
      uint32_t First = Picks[I].Chunk;
      uint32_t Last = First;
      ++I;
      while (I < Picks.size() && Picks[I].Object == Id &&
             Picks[I].Chunk == Last + 1) {
        Last = Picks[I].Chunk;
        ++I;
      }
      Ranges.push_back({First, Last - First + 1});
    }
    AtmemMig.stageAhead(Registry.object(Id), Ranges, sim::TierId::Fast,
                        StagedRanges);
  }
  LkStats.StagedRanges += StagedRanges.size() - Before;
  if (StagedRanges.empty())
    return;

  // Launch the overlapped copies: one background thread drives the
  // migration pool through each staged range while the application
  // computes. joinLookaheadCopies() settles it before anything reads
  // CopyDone.
  LookaheadCopyThread = std::thread([this] {
    for (mem::StagedAheadRange &Staged : StagedRanges)
      AtmemMig.copyStagedAhead(Staged, sim::TierId::Fast);
  });
}

void Runtime::updateBackoff() {
  if (!Config.Lookahead.AdaptiveEpochs)
    return;
  bool Quiet = Lookahead && Lookahead->converged() && StagedRanges.empty() &&
               Skipped.empty();
  if (!Quiet) {
    ConvergedStreak = 0;
    return;
  }
  if (++ConvergedStreak < Config.Lookahead.ConvergedEpochsToBackoff)
    return;
  // Doubling windows: converged placements earn exponentially longer
  // analysis holidays, capped, and drift resets the ladder.
  BackoffLen = BackoffLen == 0 ? 1
                               : std::min(BackoffLen * 2,
                                          Config.Lookahead.MaxBackoffEpochs);
  BackoffRemaining = BackoffLen;
}
