#include "core/Runtime.h"

#include "obs/DecisionLog.h"
#include "obs/Export.h"
#include "obs/RingLog.h"
#include "obs/StatsSocket.h"
#include "obs/TimeSeries.h"
#include "obs/Trace.h"
#include "sim/Tlb.h"
#include "support/Logging.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>

using namespace atmem;
using namespace atmem::core;

thread_local Runtime::ContextBinding Runtime::Bound;

namespace {

void countRetry() {
  if (obs::enabled()) {
    static obs::Counter Retries("migration.retries");
    Retries.add(1);
  }
}

void countDegraded(uint64_t SkippedRanges) {
  if (obs::enabled()) {
    static obs::Counter Degraded("migration.degraded");
    Degraded.add(SkippedRanges);
  }
}

void countRenominated() {
  if (obs::enabled()) {
    static obs::Counter Renominated("migration.skipped_renominated");
    Renominated.add(1);
  }
}

double rangePriority(const std::vector<double> *Priorities,
                     const mem::ChunkRange &Range);

/// One decision-log migration lifecycle event per range (no-op while the
/// flight recorder is closed).
void recordDecisionEvents(const mem::DataObject &Obj,
                          const std::vector<mem::ChunkRange> &Ranges,
                          sim::TierId Target, obs::DecisionPhase Phase,
                          const std::vector<double> *Priorities) {
  if (!obs::DecisionLog::enabled())
    return;
  obs::DecisionLog &Log = obs::DecisionLog::instance();
  for (const mem::ChunkRange &Range : Ranges) {
    obs::MigrationEventRecord Event;
    Event.Object = Obj.id();
    Event.FirstChunk = Range.FirstChunk;
    Event.NumChunks = Range.NumChunks;
    Event.TargetFast = Target == sim::TierId::Fast ? 1 : 0;
    Event.Phase = Phase;
    Event.Priority = rangePriority(Priorities, Range);
    Log.recordMigration(Event);
  }
}

/// Sub-ranges of \p Pending whose chunks still sit on \p Source — i.e.
/// the work a partially completed migrate() left behind. Recomputed from
/// chunk tiers so it is correct for both whole-range (atmem) and
/// page-prefix (mbind) partial progress.
std::vector<mem::ChunkRange>
remainingOnSource(const mem::DataObject &Obj,
                  const std::vector<mem::ChunkRange> &Pending,
                  sim::TierId Source) {
  std::vector<mem::ChunkRange> Out;
  for (const mem::ChunkRange &Range : Pending)
    for (uint32_t C = Range.FirstChunk;
         C < Range.FirstChunk + Range.NumChunks;) {
      if (Obj.chunkTier(C) != Source) {
        ++C;
        continue;
      }
      uint32_t Begin = C;
      while (C < Range.FirstChunk + Range.NumChunks &&
             Obj.chunkTier(C) == Source)
        ++C;
      Out.push_back({Begin, C - Begin});
    }
  return Out;
}

double rangePriority(const std::vector<double> *Priorities,
                     const mem::ChunkRange &Range) {
  if (!Priorities)
    return 0.0;
  double Max = 0.0;
  for (uint32_t C = Range.FirstChunk;
       C < Range.FirstChunk + Range.NumChunks && C < Priorities->size(); ++C)
    Max = std::max(Max, (*Priorities)[C]);
  return Max;
}

/// Splits \p Remaining into (subset, dropped): the highest-priority
/// single chunks whose combined footprint fits \p FreeBytes under
/// \p Mig's capacity model, and everything else. The subset stays
/// single-chunk ranges so the mechanism's per-range staging peak is one
/// chunk — smaller granules under pressure.
std::pair<std::vector<mem::ChunkRange>, std::vector<mem::ChunkRange>>
highestPriorityFit(const mem::DataObject &Obj,
                   const std::vector<mem::ChunkRange> &Remaining,
                   const mem::Migrator &Mig, uint64_t FreeBytes,
                   const std::vector<double> *Priorities) {
  struct Candidate {
    uint32_t Chunk;
    double Priority;
    uint64_t Bytes;
  };
  std::vector<Candidate> Candidates;
  for (const mem::ChunkRange &Range : Remaining)
    for (uint32_t C = Range.FirstChunk;
         C < Range.FirstChunk + Range.NumChunks; ++C) {
      auto [Begin, End] = Obj.rangeBytes({C, 1});
      if (End > Begin)
        Candidates.push_back({C, rangePriority(Priorities, {C, 1}),
                              End - Begin});
    }
  std::sort(Candidates.begin(), Candidates.end(),
            [](const Candidate &A, const Candidate &B) {
              if (A.Priority != B.Priority)
                return A.Priority > B.Priority;
              return A.Chunk < B.Chunk;
            });
  uint64_t Payload = 0;
  uint64_t MaxChunk = 0;
  std::vector<uint8_t> Taken(Obj.numChunks(), 0);
  bool TookAny = false;
  for (const Candidate &C : Candidates) {
    uint64_t NewPayload = Payload + C.Bytes;
    uint64_t NewMax = std::max(MaxChunk, C.Bytes);
    if (Mig.capacityNeeded(NewPayload, NewMax) > FreeBytes)
      continue;
    Payload = NewPayload;
    MaxChunk = NewMax;
    Taken[C.Chunk] = 1;
    TookAny = true;
  }
  std::pair<std::vector<mem::ChunkRange>, std::vector<mem::ChunkRange>> Out;
  if (!TookAny) {
    Out.second = Remaining;
    return Out;
  }
  for (const Candidate &C : Candidates)
    (Taken[C.Chunk] ? Out.first : Out.second).push_back({C.Chunk, 1});
  std::sort(Out.first.begin(), Out.first.end(),
            [](const mem::ChunkRange &A, const mem::ChunkRange &B) {
              return A.FirstChunk < B.FirstChunk;
            });
  return Out;
}

/// Appends the runs of \p Range's chunks that are on the slow tier and
/// not yet claimed in \p InPending, claiming them.
void appendSlowRuns(const mem::DataObject &Obj, const mem::ChunkRange &Range,
                    std::vector<uint8_t> &InPending,
                    std::vector<mem::ChunkRange> &Pending) {
  uint32_t Limit =
      std::min(Range.FirstChunk + Range.NumChunks, Obj.numChunks());
  for (uint32_t C = Range.FirstChunk; C < Limit;) {
    if (InPending[C] || Obj.chunkTier(C) != sim::TierId::Slow) {
      ++C;
      continue;
    }
    uint32_t Begin = C;
    while (C < Limit && !InPending[C] &&
           Obj.chunkTier(C) == sim::TierId::Slow) {
      InPending[C] = 1;
      ++C;
    }
    Pending.push_back({Begin, C - Begin});
  }
}

} // namespace

Runtime::Runtime(RuntimeConfig ConfigIn)
    : Config(std::move(ConfigIn)), M(Config.Machine), Registry(M),
      Pool(Config.Machine.Migration.CopyThreads),
      Profiler(Registry, Config.Profiler), AtmemMig(Registry, Pool),
      MbindMig(Registry) {
  if (Config.SimThreads > 1) {
    // Each thread's shard models its partition of the shared LLC; never
    // shrink below one fully associative set.
    sim::CacheConfig Shard = Config.Machine.Cache;
    Shard.SizeBytes =
        std::max<uint64_t>(Shard.SizeBytes / Config.SimThreads,
                           static_cast<uint64_t>(Shard.Ways) * Shard.LineBytes);
    Contexts.reserve(Config.SimThreads);
    for (uint32_t T = 0; T < Config.SimThreads; ++T)
      Contexts.push_back(std::make_unique<SimContext>(Shard));
    KernelPool = std::make_unique<mem::ThreadPool>(Config.SimThreads);
  }
  if (Config.Telemetry.Enabled || Config.Telemetry.anyOutput())
    obs::setEnabled(true);
  if (!Config.Telemetry.DecisionLogPath.empty()) {
    // Process-wide and idempotent: with several runtimes in one process
    // (bench comparisons) the first opener wins and the rest append to
    // the same stream; exportIfConfigured finalizes it at exit.
    std::string Error;
    if (!obs::DecisionLog::instance().open(Config.Telemetry.DecisionLogPath,
                                           &Error))
      logError("decision log: %s", Error.c_str());
  }
  if (!Config.Telemetry.DecisionLogRingPath.empty()) {
    // The crash-resilient always-on variant of the flight recorder: same
    // records, mmap'd ring segments instead of a flat file. Shares the
    // process-wide log with the same first-opener-wins semantics.
    obs::RingLogOptions Options;
    if (Config.Telemetry.RingSegmentBytes != 0)
      Options.SegmentBytes = Config.Telemetry.RingSegmentBytes;
    if (Config.Telemetry.RingMaxBytes != 0)
      Options.MaxBytes = Config.Telemetry.RingMaxBytes;
    std::string Error;
    if (!obs::openDecisionLogRing(Config.Telemetry.DecisionLogRingPath,
                                  Options, &Error))
      logError("decision ring: %s", Error.c_str());
  }
  if (!Config.Analyzer.RankerModelPath.empty() && !Config.Analyzer.Ranker) {
    // Learned ranker: load once here so every optimize() epoch scores
    // with the same weights. Any failure (missing file, malformed JSON,
    // injected fault) is non-fatal — the Eq. 1-5 heuristic stays active
    // and loadRankerModel has already bumped ranker.model_load_failed.
    analyzer::RankerModel Model;
    std::string Error;
    if (analyzer::loadRankerModel(Config.Analyzer.RankerModelPath, Model,
                                  &Error))
      Config.Analyzer.Ranker =
          std::make_shared<analyzer::RankerModel>(Model);
    else
      logError("ranker model: %s", Error.c_str());
  }
  if (!Config.Telemetry.TimeSeriesPath.empty() ||
      !Config.Telemetry.OpenMetricsPath.empty() ||
      !Config.Telemetry.StatsSocketPath.empty())
    obs::TimeSeries::instance().setEnabled(true);
  if (!Config.Telemetry.StatsSocketPath.empty()) {
    updatePlacementJson();
    StatsServer = std::make_unique<obs::StatsServer>();
    std::string Error;
    if (!StatsServer->start(Config.Telemetry.StatsSocketPath,
                            [this] { return statsSnapshotJson(); }, &Error)) {
      logError("stats socket: %s", Error.c_str());
      StatsServer.reset();
    }
  }
}

Runtime::~Runtime() {
  // The accept thread captures `this`; it must be gone before any member
  // it reads (and before the lookahead teardown churns placement).
  if (StatsServer)
    StatsServer->stop();
  shutdownLookahead();
}

void Runtime::parallelTracked(uint64_t Begin, uint64_t End,
                              const TrackedBody &Body, uint64_t ChunkSize) {
  if (Begin >= End)
    return;
  if (Contexts.empty()) {
    Body(0, Begin, End);
    return;
  }
  bool BufferMisses = Profiler.isActive() || MissTrace || ReplayTlb;
  for (auto &Ctx : Contexts)
    Ctx->setBufferMisses(BufferMisses);
  if (ChunkSize == 0)
    ChunkSize = std::max<uint64_t>((End - Begin) / (Contexts.size() * 16), 64);
  KernelPool->parallelForThreaded(
      Begin, End, ChunkSize,
      [&](uint32_t Tid, uint64_t ChunkBegin, uint64_t ChunkEnd) {
        Bound = {this, Contexts[Tid].get()};
        Body(Tid, ChunkBegin, ChunkEnd);
        Bound = {};
      });
}

void Runtime::profilingStart() {
  Profiler.start(Config.Machine.Exec.Threads);
}

void Runtime::profilingStop() { Profiler.stop(); }

mem::MigrationResult Runtime::optimize() {
  if (Profiler.isActive())
    Profiler.stop();

  if (Config.Lookahead.Enabled) {
    // Settle the overlapped staging copies before anything reads their
    // outcome, then let the adaptive scheduler skip the whole epoch when
    // placement has converged — no analysis, no decision-log epoch, no
    // migrations, nothing staged to resolve.
    joinLookaheadCopies();
    if (skipConvergedEpoch())
      return {};
    EpochRenominated = 0;
    EpochRollbacks = 0;
  }

  // Epoch bookkeeping for the time-series sample built at the bottom.
  // Wall-clock is only read when somebody consumes it, so a runtime with
  // no time-series/socket output takes exactly the old path.
  const bool TsEnabled = obs::TimeSeries::instance().enabled();
  const uint64_t RollbacksBefore = EpochRollbacks;
  EpochRetries = 0;
  std::chrono::steady_clock::time_point WallStart;
  if (TsEnabled)
    WallStart = std::chrono::steady_clock::now();

  obs::SpanScope OptimizeSpan("runtime.optimize", "runtime");

  // One optimize() call is one decision-log epoch; every record emitted
  // below (classification, planning, migration lifecycle) is stamped
  // with it by the writer.
  if (obs::DecisionLog::enabled())
    obs::DecisionLog::instance().beginEpoch();

  mem::Migrator &Mig =
      Config.Mechanism == MigrationMechanism::Atmem
          ? static_cast<mem::Migrator &>(AtmemMig)
          : static_cast<mem::Migrator &>(MbindMig);
  mem::MigrationResult Result;

  // Budget accounting must anticipate demotions: chunks the fresh profile
  // dropped vacate the fast tier before promotions land.
  uint64_t FastFree = M.allocator(sim::TierId::Fast).freeBytes();
  if (Config.DemoteUnselected)
    FastFree += Registry.totalBytesOn(sim::TierId::Fast);
  auto Budget = static_cast<uint64_t>(static_cast<double>(FastFree) *
                                      Config.FastBudgetFraction);
  if (Config.FastBudgetBytesCap != 0)
    Budget = std::min(Budget, Config.FastBudgetBytesCap);
  // Classify once; the plan builders and the degraded-mode ranking both
  // work off the same classification, so partial plans use exactly the
  // Eq. 1 priorities the full plan was built from.
  analyzer::Analyzer Anal(Config.Analyzer);
  std::vector<analyzer::ObjectClassification> Classes =
      Anal.classify(Registry, Profiler);
  if (Config.Strategy == PlacementStrategy::BandwidthBalanced) {
    // Equalize per-tier streaming time: place the share of miss traffic
    // matching the fast tier's share of aggregate bandwidth.
    const sim::TierSpec &Fast = Config.Machine.Fast;
    const sim::TierSpec &Slow = Config.Machine.Slow;
    double Share = Fast.BandwidthBytesPerSec /
                   (Fast.BandwidthBytesPerSec + Slow.BandwidthBytesPerSec);
    LastPlan = analyzer::PlanBuilder::buildBandwidthBalanced(Classes, Budget,
                                                             Share);
  } else {
    LastPlan = analyzer::PlanBuilder::build(Classes, Budget);
  }
  auto priorityOf =
      [&Classes](mem::ObjectId Id) -> const std::vector<double> * {
    for (const analyzer::ObjectClassification &Cls : Classes)
      if (Cls.Object == Id)
        return &Cls.Local.Priority;
    return nullptr;
  };

  // Epoch boundary of the lookahead pipeline: staged-ahead ranges the
  // fresh plan confirms commit here for the price of a remap (their copy
  // already ran overlapped with compute); mispredictions evaporate. Runs
  // before demotions/promotions so the demand path below sees committed
  // chunks as already placed and never re-migrates them.
  if (Config.Lookahead.Enabled)
    resolveStagedAhead(Result);

  // Chunks a previous epoch had to leave behind are re-nominated this
  // epoch alongside the fresh plan.
  std::vector<SkippedChunk> PrevSkipped = std::move(Skipped);
  Skipped.clear();
  std::vector<uint8_t> Consumed(PrevSkipped.size(), 0);

  if (Config.DemoteUnselected)
    demoteUnselected(Mig, Result);
  for (const analyzer::ObjectPlan &ObjPlan : LastPlan.Objects) {
    mem::DataObject &Obj = Registry.object(ObjPlan.Object);
    // Only move ranges whose chunks are not already on the fast tier.
    std::vector<mem::ChunkRange> Pending;
    for (const mem::ChunkRange &Range : ObjPlan.Ranges)
      for (uint32_t C = Range.FirstChunk;
           C < Range.FirstChunk + Range.NumChunks;) {
        // Split the range at tier transitions.
        if (Obj.chunkTier(C) == sim::TierId::Fast) {
          ++C;
          continue;
        }
        uint32_t Begin = C;
        while (C < Range.FirstChunk + Range.NumChunks &&
               Obj.chunkTier(C) == sim::TierId::Slow)
          ++C;
        Pending.push_back({Begin, C - Begin});
      }
    if (!PrevSkipped.empty()) {
      std::vector<uint8_t> InPending(Obj.numChunks(), 0);
      for (const mem::ChunkRange &Range : Pending)
        for (uint32_t C = Range.FirstChunk;
             C < Range.FirstChunk + Range.NumChunks; ++C)
          InPending[C] = 1;
      for (size_t I = 0; I < PrevSkipped.size(); ++I) {
        if (Consumed[I] || PrevSkipped[I].Object != Obj.id() ||
            PrevSkipped[I].Target != sim::TierId::Fast)
          continue;
        Consumed[I] = 1;
        ++EpochRenominated;
        countRenominated();
        recordDecisionEvents(Obj, {PrevSkipped[I].Range}, sim::TierId::Fast,
                             obs::DecisionPhase::Renominated,
                             priorityOf(Obj.id()));
        appendSlowRuns(Obj, PrevSkipped[I].Range, InPending, Pending);
      }
    }
    if (Pending.empty())
      continue;
    promoteWithRecovery(Mig, Obj, std::move(Pending), priorityOf(Obj.id()),
                        Result);
  }
  // Skipped promotions whose object the fresh plan did not select at all
  // are still re-nominated (the chunks were worth fast-tier placement one
  // epoch ago and nothing has placed them since).
  for (size_t I = 0; I < PrevSkipped.size(); ++I) {
    if (Consumed[I] || PrevSkipped[I].Target != sim::TierId::Fast)
      continue;
    mem::ObjectId Id = PrevSkipped[I].Object;
    bool Live = false;
    for (const mem::DataObject *Obj : Registry.liveObjects())
      if (Obj->id() == Id) {
        Live = true;
        break;
      }
    if (!Live) {
      Consumed[I] = 1;
      continue;
    }
    mem::DataObject &Obj = Registry.object(Id);
    std::vector<mem::ChunkRange> Pending;
    std::vector<uint8_t> InPending(Obj.numChunks(), 0);
    for (size_t J = I; J < PrevSkipped.size(); ++J) {
      if (Consumed[J] || PrevSkipped[J].Object != Id ||
          PrevSkipped[J].Target != sim::TierId::Fast)
        continue;
      Consumed[J] = 1;
      ++EpochRenominated;
      countRenominated();
      recordDecisionEvents(Obj, {PrevSkipped[J].Range}, sim::TierId::Fast,
                           obs::DecisionPhase::Renominated,
                           priorityOf(Id));
      appendSlowRuns(Obj, PrevSkipped[J].Range, InPending, Pending);
    }
    if (!Pending.empty())
      promoteWithRecovery(Mig, Obj, std::move(Pending), priorityOf(Id),
                          Result);
  }
  // Predict and stage next epoch's hot chunks, then launch the overlapped
  // copy; finally update the adaptive scheduler's convergence accounting.
  if (Config.Lookahead.Enabled &&
      Config.Mechanism == MigrationMechanism::Atmem) {
    stageLookahead(Classes);
    updateBackoff();
  }

  logInfo("optimize: moved %llu bytes in %llu ranges, %.3f ms simulated",
          static_cast<unsigned long long>(Result.BytesMoved),
          static_cast<unsigned long long>(Result.Ranges),
          Result.SimSeconds * 1e3);
  OptimizeSpan.arg("bytes_moved", static_cast<double>(Result.BytesMoved))
      .arg("ranges", static_cast<double>(Result.Ranges))
      .arg("sim_sec", Result.SimSeconds);
  if (TsEnabled || StatsServer) {
    double WallUs = 0.0;
    if (TsEnabled)
      WallUs = std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - WallStart)
                   .count();
    captureEpochSample(Result, RollbacksBefore, WallUs);
  }
  return Result;
}

void Runtime::captureEpochSample(const mem::MigrationResult &Result,
                                 uint64_t RollbacksBefore, double WallUs) {
  ++OptimizeEpochs;
  if (obs::TimeSeries::instance().enabled()) {
    obs::EpochSample S;
    S.Epoch = OptimizeEpochs;
    S.Accesses = Stats.Accesses;
    S.MissesFast = Stats.TierMisses[sim::tierIndex(sim::TierId::Fast)];
    S.MissesSlow = Stats.TierMisses[sim::tierIndex(sim::TierId::Slow)];
    uint64_t Misses = S.MissesFast + S.MissesSlow;
    S.SlowMissFraction =
        Misses == 0 ? 0.0
                    : static_cast<double>(S.MissesSlow) /
                          static_cast<double>(Misses);
    double IterSec = M.kernelModel().estimate(Stats).seconds();
    S.DrainMissesPerSec =
        IterSec > 0.0 ? static_cast<double>(Misses) / IterSec : 0.0;
    S.MigrationBytes = Result.BytesMoved;
    S.MigrationRanges = Result.Ranges;
    S.Retries = EpochRetries;
    S.Rollbacks = EpochRollbacks - RollbacksBefore;
    S.MigrateSimSec = Result.SimSeconds;
    // The lookahead stats are cumulative; the sample reports this epoch's
    // delta so the series plots activity, not running totals.
    S.LookaheadStaged = LkStats.StagedRanges - TsPrevStaged;
    S.LookaheadCancelled = LkStats.CancelledRanges - TsPrevCancelled;
    S.LookaheadOverlapSec = LkStats.OverlappedSimSec - TsPrevOverlap;
    TsPrevStaged = LkStats.StagedRanges;
    TsPrevCancelled = LkStats.CancelledRanges;
    TsPrevOverlap = LkStats.OverlappedSimSec;
    S.FastDataRatio = fastDataRatio();
    S.OptimizeWallUs = WallUs;
    obs::TimeSeries::instance().record(S);
  }
  if (StatsServer)
    updatePlacementJson();
}

void Runtime::updatePlacementJson() {
  std::string Out = "[";
  char Buf[256];
  bool First = true;
  for (const mem::DataObject *Obj : Registry.liveObjects()) {
    uint64_t FastBytes = Obj->bytesOn(sim::TierId::Fast);
    // bytesOn() counts whole mapped chunks, so the residency fraction is
    // relative to mappedBytes (sizeBytes rounded up to the chunk grid).
    uint64_t Mapped = Obj->mappedBytes();
    std::string Name;
    for (char C : Obj->name()) {
      if (C == '"' || C == '\\')
        Name += '\\';
      if (static_cast<unsigned char>(C) >= 0x20)
        Name += C;
    }
    // The name goes through std::string appends (it is caller-controlled
    // and unbounded); only the fixed-width numeric tail uses snprintf.
    Out += First ? "{\"name\": \"" : ", {\"name\": \"";
    Out += Name;
    std::snprintf(Buf, sizeof(Buf),
                  "\", \"bytes\": %" PRIu64 ", \"chunks\": %" PRIu32
                  ", \"fast_bytes\": %" PRIu64 ", \"fast_fraction\": %.6f}",
                  Obj->sizeBytes(), Obj->numChunks(), FastBytes,
                  Mapped == 0 ? 0.0
                              : static_cast<double>(FastBytes) /
                                    static_cast<double>(Mapped));
    Out += Buf;
    First = false;
  }
  Out += "]";
  std::lock_guard<std::mutex> Lock(StatsMutex);
  PlacementJson = std::move(Out);
}

std::string Runtime::statsSnapshotJson() {
  // Runs on the accept thread: everything read here is either immutable,
  // internally synchronized (metric registry, time series, ring head
  // atomics), or the mutex-guarded placement snapshot. Live runtime
  // structures are never touched.
  obs::RingHead Head = obs::ringHead();
  std::string Placement;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Placement = PlacementJson;
  }
  if (Placement.empty())
    Placement = "[]";
  std::vector<obs::EpochSample> Samples =
      obs::TimeSeries::instance().snapshot();

  char Buf[512];
  std::string Out = "{\n  \"schema\": \"atmem-stats-v1\",\n";
  std::snprintf(Buf, sizeof(Buf),
                "  \"epoch\": %" PRIu64 ",\n  \"ring\": {\"segment\": %" PRIu64
                ", \"offset\": %" PRIu64 ", \"next_seq\": %" PRIu64 "},\n",
                Samples.empty() ? 0 : Samples.back().Epoch, Head.Segment,
                Head.Offset, Head.NextSeq);
  Out += Buf;
  if (!Samples.empty()) {
    const obs::EpochSample &S = Samples.back();
    std::snprintf(Buf, sizeof(Buf),
                  "  \"last_epoch\": {\"epoch\": %" PRIu64
                  ", \"slow_miss_fraction\": %.6f, \"migration_bytes\": "
                  "%" PRIu64 ", \"migration_ranges\": %" PRIu64
                  ", \"retries\": %" PRIu64 ", \"rollbacks\": %" PRIu64
                  ", \"fast_data_ratio\": %.6f, \"optimize_wall_us\": %.1f},\n",
                  S.Epoch, S.SlowMissFraction, S.MigrationBytes,
                  S.MigrationRanges, S.Retries, S.Rollbacks, S.FastDataRatio,
                  S.OptimizeWallUs);
    Out += Buf;
  }
  Out += "  \"metrics\":\n";
  Out += obs::metricsJson(obs::Registry::instance().snapshot(), "  ");
  Out += ",\n  \"placement\": ";
  Out += Placement;
  Out += "\n}\n";
  return Out;
}

void Runtime::demoteUnselected(mem::Migrator &Mig,
                               mem::MigrationResult &Result) {
  // Per-object selection flags from the current plan.
  for (mem::DataObject *Obj : Registry.liveObjects()) {
    std::vector<uint8_t> Selected(Obj->numChunks(), 0);
    for (const analyzer::ObjectPlan &ObjPlan : LastPlan.Objects) {
      if (ObjPlan.Object != Obj->id())
        continue;
      for (const mem::ChunkRange &Range : ObjPlan.Ranges)
        for (uint32_t C = Range.FirstChunk;
             C < Range.FirstChunk + Range.NumChunks; ++C)
          Selected[C] = 1;
    }
    std::vector<mem::ChunkRange> Demotions;
    for (uint32_t C = 0; C < Obj->numChunks();) {
      if (Selected[C] || Obj->chunkTier(C) != sim::TierId::Fast) {
        ++C;
        continue;
      }
      uint32_t Begin = C;
      while (C < Obj->numChunks() && !Selected[C] &&
             Obj->chunkTier(C) == sim::TierId::Fast)
        ++C;
      Demotions.push_back({Begin, C - Begin});
    }
    if (Demotions.empty())
      continue;
    // Demotions free capacity rather than consume it, so recovery is
    // retry-only: the next epoch recomputes unselected chunks from
    // scratch, which re-nominates anything left behind here.
    std::vector<mem::ChunkRange> Pending = std::move(Demotions);
    recordDecisionEvents(*Obj, Pending, sim::TierId::Slow,
                         obs::DecisionPhase::Planned, nullptr);
    uint32_t Retries = 0;
    for (;;) {
      mem::MigrationStatus Status =
          Mig.migrate(*Obj, Pending, sim::TierId::Slow, Result);
      if (Status == mem::MigrationStatus::Retryable)
        ++EpochRollbacks; // A Retryable status means a range rolled back.
      if (Status == mem::MigrationStatus::Success)
        break;
      std::vector<mem::ChunkRange> Remaining =
          remainingOnSource(*Obj, Pending, sim::TierId::Fast);
      if (Remaining.empty())
        break;
      if (Status == mem::MigrationStatus::Retryable &&
          Retries < Config.MigrationMaxRetries) {
        ++Retries;
        ++EpochRetries;
        Result.SimSeconds += Config.MigrationRetryBackoffSec * Retries;
        countRetry();
        recordDecisionEvents(*Obj, Remaining, sim::TierId::Slow,
                             obs::DecisionPhase::Retried, nullptr);
        Pending = std::move(Remaining);
        continue;
      }
      recordSkipped(*Obj, Remaining, sim::TierId::Slow, nullptr);
      countDegraded(Remaining.size());
      logError("demotion of object '%s' hit slow-tier capacity",
               Obj->name().c_str());
      break;
    }
  }
}

void Runtime::promoteWithRecovery(mem::Migrator &Mig, mem::DataObject &Obj,
                                  std::vector<mem::ChunkRange> Pending,
                                  const std::vector<double> *Priorities,
                                  mem::MigrationResult &Result) {
  uint32_t Retries = 0;
  bool Shrunk = false;
  recordDecisionEvents(Obj, Pending, sim::TierId::Fast,
                       obs::DecisionPhase::Planned, Priorities);
  // Ranges dropped by a capacity shrink, reported together with whatever
  // the final attempt leaves behind.
  std::vector<mem::ChunkRange> Abandoned;
  for (;;) {
    mem::MigrationStatus Status =
        Mig.migrate(Obj, Pending, sim::TierId::Fast, Result);
    if (Status == mem::MigrationStatus::Retryable)
      ++EpochRollbacks; // A Retryable status means a range rolled back.
    if (Status == mem::MigrationStatus::Success) {
      if (Abandoned.empty())
        return;
      recordSkipped(Obj, Abandoned, sim::TierId::Fast, Priorities);
      countDegraded(Abandoned.size());
      logError("migration of object '%s' hit fast-tier capacity",
               Obj.name().c_str());
      return;
    }
    std::vector<mem::ChunkRange> Remaining =
        remainingOnSource(Obj, Pending, sim::TierId::Slow);
    if (Status == mem::MigrationStatus::Retryable &&
        Retries < Config.MigrationMaxRetries) {
      ++Retries;
      ++EpochRetries;
      Result.SimSeconds += Config.MigrationRetryBackoffSec * Retries;
      countRetry();
      recordDecisionEvents(Obj, Remaining, sim::TierId::Fast,
                           obs::DecisionPhase::Retried, Priorities);
      Pending = std::move(Remaining);
      continue;
    }
    if (Status == mem::MigrationStatus::Degraded && !Shrunk) {
      // Capacity-bound: keep the highest-priority chunks that fit the
      // free bytes under this mechanism's capacity model, as single-chunk
      // ranges (smaller staging granules under pressure).
      auto [Subset, Dropped] = highestPriorityFit(
          Obj, Remaining, Mig, M.allocator(sim::TierId::Fast).freeBytes(),
          Priorities);
      if (!Subset.empty()) {
        recordDecisionEvents(Obj, Dropped, sim::TierId::Fast,
                             obs::DecisionPhase::Degraded, Priorities);
        Abandoned.insert(Abandoned.end(), Dropped.begin(), Dropped.end());
        Pending = std::move(Subset);
        Shrunk = true;
        continue;
      }
    }
    Abandoned.insert(Abandoned.end(), Remaining.begin(), Remaining.end());
    if (!Abandoned.empty()) {
      recordSkipped(Obj, Abandoned, sim::TierId::Fast, Priorities);
      countDegraded(Abandoned.size());
    }
    if (Status == mem::MigrationStatus::Retryable)
      logError("migration of object '%s' abandoned after %u retries",
               Obj.name().c_str(), Retries);
    else
      logError("migration of object '%s' hit fast-tier capacity",
               Obj.name().c_str());
    return;
  }
}

void Runtime::recordSkipped(const mem::DataObject &Obj,
                            const std::vector<mem::ChunkRange> &Ranges,
                            sim::TierId Target,
                            const std::vector<double> *Priorities) {
  recordDecisionEvents(Obj, Ranges, Target, obs::DecisionPhase::Skipped,
                       Priorities);
  for (const mem::ChunkRange &Range : Ranges)
    Skipped.push_back(
        {Obj.id(), Range, Target, rangePriority(Priorities, Range)});
}

void Runtime::beginIteration() {
  Stats = sim::AccessStats();
  for (auto &Ctx : Contexts)
    Ctx->beginIteration();
  if (obs::enabled() && !IterationSpanOpen) {
    obs::Tracer::instance().begin("runtime.iteration", "runtime");
    IterationSpanOpen = true;
  }
}

double Runtime::endIteration() {
  mergeContexts();
  double SimSec = M.kernelModel().estimate(Stats).seconds();
  if (obs::enabled()) {
    static obs::Counter Iterations("runtime.iterations");
    static obs::Counter Accesses("runtime.accesses");
    static obs::Counter LlcHits("runtime.llc_hits");
    static obs::Counter MissesFast("runtime.misses_fast");
    static obs::Counter MissesSlow("runtime.misses_slow");
    static obs::Histogram IterUs("runtime.iteration_sim_us");
    Iterations.add(1);
    Accesses.add(Stats.Accesses);
    LlcHits.add(Stats.LlcHits);
    MissesFast.add(Stats.TierMisses[sim::tierIndex(sim::TierId::Fast)]);
    MissesSlow.add(Stats.TierMisses[sim::tierIndex(sim::TierId::Slow)]);
    IterUs.recordSeconds(SimSec);
    if (ReplayTlb) {
      // Hoisted like the counters above: constructing a Gauge by name is
      // a registry lookup that has no place in the per-iteration path.
      static obs::Gauge TlbHits("runtime.tlb_hits");
      static obs::Gauge TlbMisses("runtime.tlb_misses");
      TlbHits.set(static_cast<double>(ReplayTlb->hits()));
      TlbMisses.set(static_cast<double>(ReplayTlb->misses()));
    }
  }
  if (IterationSpanOpen) {
    IterationSpanOpen = false;
    obs::Tracer::instance().end(
        "runtime.iteration", "runtime",
        {{"sim_sec", SimSec},
         {"accesses", static_cast<double>(Stats.Accesses)},
         {"llc_hits", static_cast<double>(Stats.LlcHits)}});
  }
  return SimSec;
}

void Runtime::mergeContexts() {
  if (Contexts.empty())
    return;
  if (Config.BatchedDrain)
    drainBatched();
  else
    drainReference();
}

void Runtime::drainReference() {
  // Pre-optimization drain, preserved verbatim: one profiler countdown
  // step, one trace append, and one uncached page-table walk per miss.
  for (auto &Ctx : Contexts) {
    Stats += Ctx->stats();
    Ctx->stats() = sim::AccessStats();
    for (uint64_t Va : Ctx->missBuffer()) {
      Profiler.notifyMissReference(Va);
      if (MissTrace)
        MissTrace->record(Va);
      if (ReplayTlb)
        replayTlbAccessUncached(Va);
    }
    Ctx->recycleMissBuffer();
  }
}

void Runtime::drainBatched() {
  // Stage 1 — serial, in thread-index order: merge shard stats, advance
  // the sampling countdown arithmetically over each buffer, and bulk-feed
  // the miss trace. Sample *selection* depends only on the miss order
  // (attribution never feeds back into it), so the buffers' concatenation
  // order fully determines which misses are chosen.
  PendingScratch.clear();
  for (auto &Ctx : Contexts) {
    Stats += Ctx->stats();
    Ctx->stats() = sim::AccessStats();
    const std::vector<uint64_t> &Buf = Ctx->missBuffer();
    Profiler.selectSamples(Buf.data(), Buf.size(), PendingScratch);
  }

  // Stage 2 — attribute the selected samples to (object, chunk). Each
  // sample's result is a pure function of its address, so fanning the
  // lookups across the kernel pool cannot change any outcome; below the
  // threshold (or on a single-core host, where pool dispatch just
  // context-switches) the serial loop is cheaper than the fan-out.
  constexpr size_t ParallelAttributionThreshold = 8192;
  AttrScratch.assign(PendingScratch.size(), AttributedSample{});
  if (KernelPool && std::thread::hardware_concurrency() > 1 &&
      PendingScratch.size() >= ParallelAttributionThreshold) {
    // Hints persist across drains (warm starting points); each worker
    // owns one slot, so reuse is race-free.
    AttrHintScratch.resize(KernelPool->threadCount());
    uint64_t Chunk = std::max<uint64_t>(
        PendingScratch.size() / AttrHintScratch.size() / 4, 256);
    KernelPool->parallelForThreaded(
        0, PendingScratch.size(), Chunk,
        [&](uint32_t Tid, uint64_t Begin, uint64_t End) {
          mem::AttributionHint &Hint = AttrHintScratch[Tid];
          for (uint64_t I = Begin; I < End; ++I)
            AttrScratch[I].Ok = Registry.attributeIndexed(
                PendingScratch[I].Va, AttrScratch[I].Attr, Hint);
        });
  } else {
    for (size_t I = 0; I < PendingScratch.size(); ++I)
      AttrScratch[I].Ok = Registry.attributeIndexed(
          PendingScratch[I].Va, AttrScratch[I].Attr, SerialAttrHint);
  }

  // Stage 3 — serial commit in selection order. Floating-point profile
  // accumulation happens in exactly the per-miss order, keeping results
  // bit-identical to the reference drain.
  for (size_t I = 0; I < PendingScratch.size(); ++I)
    Profiler.commitSample(PendingScratch[I], AttrScratch[I].Ok != 0,
                          AttrScratch[I].Attr);

  // Stage 4 — TLB replay. Inherently serial (LRU state), but the
  // translation cache absorbs the page-table walks. The cache and TLB
  // references are hoisted so the per-miss loop is probe + access only.
  if (ReplayTlb) {
    if (!ReplayCache)
      ReplayCache = std::make_unique<sim::TranslationCache>(M.pageTable());
    sim::TranslationCache &Cache = *ReplayCache;
    sim::Tlb &Tlb = *ReplayTlb;
    // The page table cannot mutate while we replay, so the epoch check
    // runs once here instead of per miss, and the loop needs only the
    // page size — not the reconstructed frame — from the cache.
    Cache.revalidate();
    // Huge-page run skip: a 2 MiB VA region is uniformly mapped (one huge
    // page or 512 small ones), so once a miss resolves huge, every
    // following miss in the same 2 MiB frame shares that translation.
    // Replay those straight against the huge array via the precomputed
    // VPN — one translation per run instead of one per miss. Runs that
    // break (random gather) still short-circuit through the counter-free
    // isCachedHuge() probe before falling back to the full translation.
    // Graph objects are huge-backed (PreferHuge registration), so on
    // dense iterations this drops nearly every cache probe. TLB verdicts
    // and LRU state are untouched: accessVpn(Va >> 21) is exactly
    // access(Va, HugePageBytes).
    sim::TlbArray &HugeTlb = Tlb.hugeArray();
    uint64_t RunHugeVpn = ~0ull;
    for (auto &Ctx : Contexts)
      for (uint64_t Va : Ctx->missBuffer()) {
        uint64_t HugeVpn = Va >> 21;
        if (HugeVpn == RunHugeVpn || Cache.isCachedHuge(HugeVpn)) {
          RunHugeVpn = HugeVpn;
          HugeTlb.accessVpn(HugeVpn);
          continue;
        }
        uint64_t PageBytes;
        if (!Cache.translatePageBytes(Va, PageBytes))
          continue;
        if (PageBytes == sim::HugePageBytes) {
          RunHugeVpn = HugeVpn;
          HugeTlb.accessVpn(HugeVpn);
        } else {
          RunHugeVpn = ~0ull;
          Tlb.smallArray().access(Va);
        }
      }
  }

  // Stage 5 — trace hand-off and buffer recycling. The miss buffers are
  // donated to the trace writer's spill thread zero-copy, in thread-index
  // order (the same order the synchronous recordBatch calls used, so the
  // file bytes are unchanged); each context gets a drained segment back.
  // This runs after the TLB replay because the replay still reads the
  // buffers; the trace content itself depends on nothing downstream.
  for (auto &Ctx : Contexts) {
    if (MissTrace && !Ctx->missBuffer().empty())
      MissTrace->recordBatchOwned(
          Ctx->donateMissBuffer(MissTrace->takeRecycled()));
    else
      Ctx->recycleMissBuffer();
  }
}

double Runtime::fastDataRatio() const {
  uint64_t Total = Registry.totalMappedBytes();
  if (Total == 0)
    return 0.0;
  return static_cast<double>(Registry.totalBytesOn(sim::TierId::Fast)) /
         static_cast<double>(Total);
}

void Runtime::replayTlbAccess(uint64_t Va) {
  if (!ReplayCache)
    ReplayCache = std::make_unique<sim::TranslationCache>(M.pageTable());
  sim::Translation T;
  if (ReplayCache->translate(Va, T))
    ReplayTlb->access(Va, T.PageBytes);
}

void Runtime::replayTlbAccessUncached(uint64_t Va) {
  sim::Translation T;
  if (M.pageTable().translate(Va, T))
    ReplayTlb->access(Va, T.PageBytes);
}

//===----------------------------------------------------------------------===//
// Lookahead pipeline
//===----------------------------------------------------------------------===//

void Runtime::joinLookaheadCopies() {
  if (LookaheadCopyThread.joinable())
    LookaheadCopyThread.join();
}

void Runtime::shutdownLookahead() {
  joinLookaheadCopies();
  // Silent unmap (no events): the decision log may already be finalized
  // during teardown, and a destructed runtime's staging regions must not
  // outlive it either way.
  for (const mem::StagedAheadRange &Staged : StagedRanges)
    M.pageTable().unmapRegion(Staged.StagingVa, Staged.Len);
  StagedRanges.clear();
}

bool Runtime::skipConvergedEpoch() {
  if (!Config.Lookahead.AdaptiveEpochs || BackoffRemaining == 0 ||
      !StagedRanges.empty())
    return false;
  // Drift detection on the last iteration's per-tier miss split: a
  // converged placement serves most misses from the fast tier, so a
  // slow-heavy split means the access pattern moved and the back-off must
  // yield to a full analysis epoch immediately.
  uint64_t FastMisses = Stats.TierMisses[sim::tierIndex(sim::TierId::Fast)];
  uint64_t SlowMisses = Stats.TierMisses[sim::tierIndex(sim::TierId::Slow)];
  if (FastMisses + SlowMisses > 0) {
    double SlowFraction = static_cast<double>(SlowMisses) /
                          static_cast<double>(FastMisses + SlowMisses);
    if (SlowFraction >= Config.Lookahead.DriftSlowMissFraction) {
      BackoffRemaining = 0;
      BackoffLen = 0;
      ConvergedStreak = 0;
      logInfo("optimize: drift detected (%.0f%% slow-tier misses), "
              "re-arming analysis",
              SlowFraction * 100.0);
      return false;
    }
  }
  --BackoffRemaining;
  ++LkStats.BackedOffEpochs;
  logInfo("optimize: placement converged, backing off (%u epochs left)",
          BackoffRemaining);
  return true;
}

void Runtime::resolveStagedAhead(mem::MigrationResult &Result) {
  for (mem::StagedAheadRange &Staged : StagedRanges) {
    // Freed object: nothing to place, just release the staging region
    // (the migrator's event-emitting cancel path needs the live object).
    bool Live = false;
    for (const mem::DataObject *Obj : Registry.liveObjects())
      if (Obj->id() == Staged.Object) {
        Live = true;
        break;
      }
    if (!Live) {
      M.pageTable().unmapRegion(Staged.StagingVa, Staged.Len);
      ++LkStats.CancelledRanges;
      continue;
    }
    mem::DataObject &Obj = Registry.object(Staged.Object);
    if (!Staged.CopyDone)
      ++LkStats.CopyFaults;

    // A staged range commits only when the *fresh* plan independently
    // selects every chunk of it and the chunks are still where the stage
    // left them — predictions confirm placement decisions, they never
    // make them. Everything else is a cancelled prefetch: the staging
    // buffer unmaps and placement is exactly what a run without
    // lookahead would have produced.
    bool Confirmed = Staged.CopyDone;
    for (uint32_t C = Staged.Range.FirstChunk;
         Confirmed && C < Staged.Range.FirstChunk + Staged.Range.NumChunks;
         ++C)
      Confirmed = Obj.chunkTier(C) == Staged.Source;
    if (Confirmed) {
      bool Selected = false;
      for (const analyzer::ObjectPlan &ObjPlan : LastPlan.Objects) {
        if (ObjPlan.Object != Staged.Object)
          continue;
        Selected = true;
        for (uint32_t C = Staged.Range.FirstChunk;
             Selected &&
             C < Staged.Range.FirstChunk + Staged.Range.NumChunks;
             ++C) {
          bool InPlan = false;
          for (const mem::ChunkRange &Range : ObjPlan.Ranges)
            if (C >= Range.FirstChunk &&
                C < Range.FirstChunk + Range.NumChunks) {
              InPlan = true;
              break;
            }
          Selected = InPlan;
        }
        break;
      }
      Confirmed = Selected;
    }

    if (!Confirmed) {
      AtmemMig.cancelStagedAhead(Obj, Staged, sim::TierId::Fast);
      ++LkStats.CancelledRanges;
      continue;
    }
    mem::MigrationStatus Status =
        AtmemMig.commitStagedAhead(Obj, Staged, sim::TierId::Fast, Result);
    if (Status == mem::MigrationStatus::Success) {
      ++LkStats.CommittedRanges;
      LkStats.OverlappedSimSec += Staged.OverlappedSimSec;
    } else {
      // The failed commit already cancelled itself (staging released,
      // placement untouched); the chunks stay eligible for the demand
      // path below.
      ++LkStats.CancelledRanges;
      ++EpochRollbacks;
    }
  }
  StagedRanges.clear();
}

void Runtime::stageLookahead(
    const std::vector<analyzer::ObjectClassification> &Classes) {
  if (!Lookahead)
    Lookahead =
        std::make_unique<analyzer::LookaheadPlanner>(Config.Lookahead.Planner);
  Lookahead->observeEpoch(Classes, EpochRenominated, EpochRollbacks,
                          Skipped.size());
  std::vector<analyzer::LookaheadPrediction> Predictions =
      Lookahead->predict();
  LkStats.PredictedChunks += Predictions.size();
  if (Predictions.empty())
    return;

  // Hard capacity budget: a slice of the post-migration fast free bytes,
  // with every staged byte holding 2x through the pipeline (the staging
  // buffer now plus the commit-time remap). Predictions are taken in
  // priority order; one that does not fit is skipped, not queued.
  uint64_t Budget = static_cast<uint64_t>(
      static_cast<double>(M.allocator(sim::TierId::Fast).freeBytes()) *
      Config.Lookahead.CapacityFraction);
  uint64_t Held = 0;
  struct Pick {
    mem::ObjectId Object;
    uint32_t Chunk;
  };
  std::vector<Pick> Picks;
  for (const analyzer::LookaheadPrediction &P : Predictions) {
    bool Live = false;
    for (const mem::DataObject *Obj : Registry.liveObjects())
      if (Obj->id() == P.Object) {
        Live = true;
        break;
      }
    if (!Live)
      continue;
    mem::DataObject &Obj = Registry.object(P.Object);
    if (P.Chunk >= Obj.numChunks() ||
        Obj.chunkTier(P.Chunk) != sim::TierId::Slow)
      continue;
    auto [Begin, End] = Obj.rangeBytes({P.Chunk, 1});
    uint64_t Bytes = End - Begin;
    if (Bytes == 0 || Held + 2 * Bytes > Budget)
      continue;
    Held += 2 * Bytes;
    Picks.push_back({P.Object, P.Chunk});
  }
  if (Picks.empty())
    return;

  // Group per object and merge adjacent chunks into contiguous ranges so
  // each staging buffer covers one run.
  std::sort(Picks.begin(), Picks.end(), [](const Pick &A, const Pick &B) {
    if (A.Object != B.Object)
      return A.Object < B.Object;
    return A.Chunk < B.Chunk;
  });
  size_t Before = StagedRanges.size();
  for (size_t I = 0; I < Picks.size();) {
    mem::ObjectId Id = Picks[I].Object;
    std::vector<mem::ChunkRange> Ranges;
    while (I < Picks.size() && Picks[I].Object == Id) {
      uint32_t First = Picks[I].Chunk;
      uint32_t Last = First;
      ++I;
      while (I < Picks.size() && Picks[I].Object == Id &&
             Picks[I].Chunk == Last + 1) {
        Last = Picks[I].Chunk;
        ++I;
      }
      Ranges.push_back({First, Last - First + 1});
    }
    AtmemMig.stageAhead(Registry.object(Id), Ranges, sim::TierId::Fast,
                        StagedRanges);
  }
  LkStats.StagedRanges += StagedRanges.size() - Before;
  if (StagedRanges.empty())
    return;

  // Launch the overlapped copies: one background thread drives the
  // migration pool through each staged range while the application
  // computes. joinLookaheadCopies() settles it before anything reads
  // CopyDone.
  LookaheadCopyThread = std::thread([this] {
    for (mem::StagedAheadRange &Staged : StagedRanges)
      AtmemMig.copyStagedAhead(Staged, sim::TierId::Fast);
  });
}

void Runtime::updateBackoff() {
  if (!Config.Lookahead.AdaptiveEpochs)
    return;
  bool Quiet = Lookahead && Lookahead->converged() && StagedRanges.empty() &&
               Skipped.empty();
  if (!Quiet) {
    ConvergedStreak = 0;
    return;
  }
  if (++ConvergedStreak < Config.Lookahead.ConvergedEpochsToBackoff)
    return;
  // Doubling windows: converged placements earn exponentially longer
  // analysis holidays, capped, and drift resets the ladder.
  BackoffLen = BackoffLen == 0 ? 1
                               : std::min(BackoffLen * 2,
                                          Config.Lookahead.MaxBackoffEpochs);
  BackoffRemaining = BackoffLen;
}
