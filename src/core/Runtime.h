//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ATMem runtime: the paper's three components glued behind one
/// object. Applications allocate their data through the runtime (receiving
/// TrackedArray views whose accesses feed the simulated LLC and the
/// profiler), run a profiled iteration between profilingStart()/stop(),
/// call optimize() to analyze and migrate, and read simulated iteration
/// times from the iteration scope API.
///
/// The C-style API of the paper's Listing 1 (atmem_malloc & friends) is
/// provided in AtmemApi.h on top of this class.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_CORE_RUNTIME_H
#define ATMEM_CORE_RUNTIME_H

#include "analyzer/Analyzer.h"
#include "analyzer/LookaheadPlanner.h"
#include "core/SimContext.h"
#include "mem/AtmemMigrator.h"
#include "mem/DataObjectRegistry.h"
#include "mem/MbindMigrator.h"
#include "mem/ThreadPool.h"
#include "obs/Telemetry.h"
#include "profiler/SamplingProfiler.h"
#include "profiler/TraceFile.h"
#include "sim/Machine.h"
#include "sim/TranslationCache.h"
#include "support/Topology.h"

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace atmem {

namespace obs {
class StatsServer;
}

namespace core {

/// Which migration mechanism optimize() uses.
enum class MigrationMechanism {
  Atmem, ///< Multi-stage multi-threaded (the paper's contribution).
  Mbind, ///< System-service model (the paper's comparison point).
};

/// How optimize() turns classifications into a plan.
enum class PlacementStrategy {
  /// The paper's default: all critical (sampled + estimated) chunks go to
  /// the fast tier, up to the byte budget.
  CriticalChunks,
  /// Section 9 extension for independent-channel machines (KNL): target
  /// a traffic split proportional to the tiers' bandwidths so both
  /// memories stream concurrently.
  BandwidthBalanced,
};

/// Lookahead migration scheduling (off by default: placement, decision
/// logs and simulated times are then byte-identical to a runtime without
/// the subsystem). Only meaningful with the Atmem mechanism — the staged
/// pipeline is what makes an overlapped prefetch commit cheap.
struct LookaheadOptions {
  bool Enabled = false;
  /// Trend-prediction and convergence tuning.
  analyzer::LookaheadPlannerConfig Planner;
  /// Fraction of the fast tier's post-migration free bytes the prefetch
  /// pipeline may reserve. Each staged byte holds 2x (staging buffer now
  /// plus the commit-time remap), so the effective payload budget is half
  /// of this slice — a *hard* cap, never borrowed against demand.
  double CapacityFraction = 0.5;
  /// Adaptive epoch scheduling: optimize() calls made while placement has
  /// converged return immediately (no analysis, no decision-log epoch,
  /// no migrations) for a doubling number of epochs, re-arming on drift.
  bool AdaptiveEpochs = true;
  /// Churn-free streak (LookaheadPlannerConfig::ConvergenceEpochs deep
  /// each) before the first back-off window opens.
  uint32_t ConvergedEpochsToBackoff = 2;
  /// Back-off windows double up to this many skipped epochs.
  uint32_t MaxBackoffEpochs = 8;
  /// Drift detector: a backed-off epoch still sees the last iteration's
  /// per-tier miss split; when the slow tier's share of misses reaches
  /// this fraction, the pattern has shifted and analysis re-arms
  /// immediately.
  double DriftSlowMissFraction = 0.5;
};

/// Complete runtime configuration.
struct RuntimeConfig {
  sim::MachineConfig Machine;
  prof::ProfilerConfig Profiler;
  analyzer::AnalyzerConfig Analyzer;
  /// Initial placement of new registrations (the experiment baselines
  /// flip this between Slow / Fast / PreferredFast).
  mem::InitialPlacement Placement = mem::InitialPlacement::Slow;
  /// Chunk-size override for registrations; 0 = adaptive (Section 4.1).
  uint64_t ChunkBytesOverride = 0;
  /// Registers every object as a single chunk, reducing ATMem to the
  /// coarse-grained whole-structure placement of prior work (Tahoe-style
  /// baseline; see paper Sections 1-2 and 9).
  bool WholeObjectChunks = false;
  MigrationMechanism Mechanism = MigrationMechanism::Atmem;
  PlacementStrategy Strategy = PlacementStrategy::CriticalChunks;
  /// Fraction of the fast tier's free bytes a plan may consume; the rest
  /// is headroom for the migration staging buffer and other tenants.
  double FastBudgetFraction = 0.85;
  /// Absolute cap on the plan budget in bytes (0 = uncapped). Models a
  /// shared server where co-tenants leave ATMem only a fixed slice of
  /// the fast memory (the paper's Section 1 motivation).
  uint64_t FastBudgetBytesCap = 0;
  /// When optimize() runs again after the access pattern changed (a new
  /// query, a new phase), fast-tier chunks that the fresh profile no
  /// longer selects are migrated back to the large-capacity tier before
  /// the newly critical chunks move in. Placement thus *adapts* across
  /// queries (the data-driven behaviour of paper Section 2.2).
  bool DemoteUnselected = true;
  /// Transient (Retryable) migration failures are retried up to this many
  /// times before the affected chunks are left on their source tier and
  /// recorded for the next epoch. Retries model a real runtime backing
  /// off and re-issuing the move; each costs MigrationRetryBackoffSec of
  /// simulated time on top of the migration work itself.
  uint32_t MigrationMaxRetries = 2;
  /// Simulated back-off added before the Nth retry (linear: N * this).
  double MigrationRetryBackoffSec = 100e-6;
  /// Host threads the tracked-execution engine uses for parallel kernel
  /// regions (Runtime::parallelTracked). 1 (the default) keeps the serial
  /// engine and is bit-identical to the pre-sharding runtime; T > 1 gives
  /// each thread a private LLC shard of SizeBytes / T plus private stats
  /// and miss buffers, merged deterministically at endIteration().
  uint32_t SimThreads = 1;
  /// Drains buffered shard misses through the batched pipeline: arithmetic
  /// sample pre-selection, bulk trace append, parallel indexed attribution,
  /// and cached TLB-replay translation. false selects the reference
  /// per-miss drain (per-event countdown, linear attribution walk, uncached
  /// page-table translation) — observably identical results, kept as the
  /// equivalence-suite oracle and the perf baseline.
  bool BatchedDrain = true;
  /// Pending samples below which the batched drain's stage-2 attribution
  /// stays serial: fan-out pays two pool rendezvous, so small drains are
  /// faster inline. Was a buried constant before it became a knob.
  uint64_t ParallelAttributionThreshold = 8192;
  /// Total buffered misses below which the batched drain keeps stage 1's
  /// sample pre-scan serial and stage 4's TLB replay on the draining
  /// thread (the overlap thread and the per-shard scan fan-out only pay
  /// off once the buffers dwarf their setup cost).
  uint64_t ParallelSelectionThreshold = 1u << 16;
  /// Runs stage 4 (TLB replay) on its own thread overlapped with stages
  /// 2-3 (attribution + commit) on multi-core hosts: the two touch
  /// disjoint state and both only read the miss buffers. Results are
  /// bit-identical either way; single-core hosts ignore this.
  bool OverlapTlbReplay = true;
  /// Registry mapped bytes at or above which stage 4 replays through the
  /// block-pipelined gather-probe path. The gather only pays when the
  /// translation cache's probe working set — one 16-byte huge slot per
  /// mapped 2 MiB region — outgrows L1 and random scalar probes start
  /// stalling; below that the slots stay cache-hot and the extra
  /// derive/probe passes are pure overhead, so small working sets keep
  /// the single-pass run-skip loop. 4 GiB mapped is the 2048-slot
  /// (32 KiB) crossover. Both paths produce bit-identical TLB state;
  /// tests pin 0 (always gather) and ~0 (never) to cover each.
  uint64_t GatherReplayMinMappedBytes = 4ull << 30;
  /// Cached host-parallelism override: 0 probes the topology once at
  /// construction (the value every drain-gate then reuses — never
  /// std::thread::hardware_concurrency() per drain). Tests set it >1 to
  /// force the parallel drain paths on small hosts.
  uint32_t HostThreadsOverride = 0;
  /// Topology override for tests (mocked multi-node layouts, forced
  /// single-node); null probes sysfs once at construction. Placement
  /// results are bit-identical under every topology — only locality and
  /// counters change.
  std::shared_ptr<const support::Topology> TopologyOverride;
  /// Lookahead migration scheduling and adaptive epoch back-off.
  LookaheadOptions Lookahead;
  /// Telemetry collection and export. Constructing a Runtime with
  /// Enabled (or any output path) set arms the process-wide obs switch;
  /// with the default (disabled) config every instrumentation site costs
  /// one relaxed atomic load and a branch.
  obs::TelemetryConfig Telemetry;
};

template <typename T> class TrackedArray;

/// One planned chunk range that optimize() could not place (capacity
/// pressure or an unrecovered fault). The runtime keeps the set from the
/// most recent epoch so the next optimize() re-nominates the chunks
/// instead of silently forgetting them.
struct SkippedChunk {
  mem::ObjectId Object = 0;
  mem::ChunkRange Range;
  /// Tier the chunks were headed for when they were skipped.
  sim::TierId Target = sim::TierId::Fast;
  /// Highest per-chunk priority (Eq. 1 PR) in the range at skip time.
  double Priority = 0.0;
};

/// Cumulative outcome counters of the lookahead scheduler. All zero while
/// lookahead is off; tests and the micro_lookahead bench read them.
struct LookaheadStats {
  /// Chunks the planner nominated (before the capacity budget).
  uint64_t PredictedChunks = 0;
  /// Staging buffers successfully mapped ahead of demand.
  uint64_t StagedRanges = 0;
  /// Prediction hits: staged ranges the fresh plan confirmed, committed
  /// at the boundary for the price of a remap.
  uint64_t CommittedRanges = 0;
  /// Staged ranges dropped without touching placement (misprediction,
  /// failed copy, or failed commit).
  uint64_t CancelledRanges = 0;
  /// Overlapped copies that hit an injected fault.
  uint64_t CopyFaults = 0;
  /// optimize() calls skipped by the adaptive epoch back-off.
  uint64_t BackedOffEpochs = 0;
  /// Staging-copy seconds absorbed by the compute overlap — demand-path
  /// migrations would have paid these as boundary stall.
  double OverlappedSimSec = 0.0;
};

/// The ATMem runtime for one simulated testbed.
class Runtime {
public:
  explicit Runtime(RuntimeConfig Config);
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  /// Registers an array of \p Count elements of T and returns a tracked
  /// view. Equivalent to the paper's atmem_malloc().
  template <typename T>
  TrackedArray<T> allocate(const std::string &Name, size_t Count);

  /// Unregisters an object; equivalent to atmem_free().
  void release(mem::ObjectId Id) { Registry.destroy(Id); }

  /// Arms hardware sampling (paper atmem_profiling_start()).
  void profilingStart();

  /// Disarms sampling (paper atmem_profiling_stop()).
  void profilingStop();

  /// Analyzes the collected profile and migrates the selected chunks to
  /// the fast tier with the configured mechanism (paper atmem_optimize()).
  /// Returns the migration counters; the applied plan is retrievable via
  /// lastPlan().
  mem::MigrationResult optimize();

  /// \name Iteration timing scope
  /// The application brackets each kernel iteration; the runtime counts
  /// accesses and converts them into simulated seconds at the end.
  /// @{
  void beginIteration();
  /// Ends the iteration and returns its simulated duration in seconds.
  double endIteration();
  const sim::AccessStats &iterationStats() const { return Stats; }
  /// @}

  /// Hot path: one tracked access at byte offset \p Offset of the object
  /// behind \p Handle. Inside a parallelTracked() region the access goes
  /// to the calling thread's private SimContext shard, lock-free;
  /// otherwise it is inline: flag test, LLC probe, per-tier accounting,
  /// and a profiler feed on misses.
  void onAccess(const TrackHandle &Handle, uint64_t Offset) {
    if (!TrackingEnabled)
      return;
    if (Bound.Owner == this) {
      Bound.Ctx->onAccess(Handle, Offset);
      return;
    }
    ++Stats.Accesses;
    uint64_t Va = Handle.VaBase + Offset;
    if (M.llc().access(Va)) {
      ++Stats.LlcHits;
      return;
    }
    ++Stats.TierMisses[Handle.ChunkTiers[Offset >> Handle.ChunkShift]];
    Profiler.notifyMiss(Va);
    if (MissTrace)
      MissTrace->record(Va);
    if (ReplayTlb)
      replayTlbAccess(Va);
  }

  /// \name Parallel tracked execution
  /// @{
  /// Body of a parallel tracked region: participant index in
  /// [0, simThreads()), then the chunk's [Begin, End).
  using TrackedBody = std::function<void(uint32_t, uint64_t, uint64_t)>;

  /// Runs \p Body over [Begin, End) on the kernel thread pool with
  /// chunked dynamic scheduling, binding each participant's tracked
  /// accesses to its SimContext shard. With SimThreads <= 1 the body runs
  /// inline as Body(0, Begin, End) on the serial engine. \p ChunkSize 0
  /// picks a size aimed at ~16 chunks per thread.
  void parallelTracked(uint64_t Begin, uint64_t End, const TrackedBody &Body,
                       uint64_t ChunkSize = 0);

  /// Threads the tracked-execution engine runs kernels with.
  uint32_t simThreads() const {
    return Contexts.empty() ? 1
                            : static_cast<uint32_t>(Contexts.size());
  }

  /// Shard \p Index's context (tests and diagnostics).
  SimContext &simContext(uint32_t Index) { return *Contexts[Index]; }
  /// @}

  /// Enables/disables all tracking (e.g. during graph construction).
  void setTrackingEnabled(bool Enabled) { TrackingEnabled = Enabled; }
  bool trackingEnabled() const { return TrackingEnabled; }

  /// Attaches a TLB that every tracked access replays against the current
  /// page table (Table 4 measurement mode); nullptr detaches.
  void setReplayTlb(sim::Tlb *Tlb) { ReplayTlb = Tlb; }

  /// Attaches a trace writer that records every LLC-miss address (for
  /// offline analysis through prof::OfflineProfiler); nullptr detaches.
  void setMissTrace(prof::TraceWriter *Writer) { MissTrace = Writer; }

  /// Fraction of registered bytes currently on the fast tier.
  double fastDataRatio() const;

  /// Modelled profiler overhead accumulated since profilingStart().
  double profilingOverheadSeconds() const {
    return Profiler.overheadSeconds();
  }

  /// The most recent plan applied by optimize().
  const analyzer::PlacementPlan &lastPlan() const { return LastPlan; }

  /// Chunks the most recent optimize() planned but could not place. The
  /// next optimize() merges still-unplaced entries back into its
  /// promotion work (re-nomination), so capacity pressure defers chunks
  /// instead of dropping them.
  const std::vector<SkippedChunk> &skippedChunks() const { return Skipped; }

  /// Cumulative lookahead scheduler outcomes (all zero when
  /// Config.Lookahead.Enabled is false).
  const LookaheadStats &lookaheadStats() const { return LkStats; }

  /// Host memory topology captured at construction (the override, the
  /// sysfs probe, or the degraded single-node fallback).
  const support::Topology &topology() const { return Topo; }

  /// Host threads cached at construction; every drain gate reads this.
  uint32_t hostThreads() const { return HostThreads; }

  sim::Machine &machine() { return M; }
  mem::DataObjectRegistry &registry() { return Registry; }
  prof::SamplingProfiler &profiler() { return Profiler; }
  mem::ThreadPool &pool() { return Pool; }
  const RuntimeConfig &config() const { return Config; }
  analyzer::AnalyzerConfig &analyzerConfig() { return Config.Analyzer; }

private:
  /// Replays \p Va against the TLB through the epoch-validated translation
  /// cache (identical verdicts to a direct page-table walk).
  void replayTlbAccess(uint64_t Va);

  /// Reference replay path: a direct page-table walk per miss, as the
  /// pre-batching runtime did. Used by the BatchedDrain=false drain.
  void replayTlbAccessUncached(uint64_t Va);

  /// Migrates fast-resident chunks that LastPlan no longer selects back
  /// to the slow tier (the adaptive re-optimization path).
  void demoteUnselected(mem::Migrator &Mig, mem::MigrationResult &Result);

  /// Promotes \p Pending to the fast tier with graceful degradation:
  /// transient failures get bounded retry-with-backoff, capacity
  /// exhaustion shrinks the work to the highest-priority chunks that fit
  /// (\p Priorities indexes per-chunk Eq. 1 PR; may be null), and
  /// whatever remains unplaced lands in the skipped set.
  void promoteWithRecovery(mem::Migrator &Mig, mem::DataObject &Obj,
                           std::vector<mem::ChunkRange> Pending,
                           const std::vector<double> *Priorities,
                           mem::MigrationResult &Result);

  /// Records \p Ranges of \p Obj as skipped on the way to \p Target.
  void recordSkipped(const mem::DataObject &Obj,
                     const std::vector<mem::ChunkRange> &Ranges,
                     sim::TierId Target,
                     const std::vector<double> *Priorities);

  /// Merges shard stats into Stats and replays buffered misses through
  /// the profiler / trace / TLB consumers, in thread-index order. With
  /// Config.BatchedDrain this runs the staged pipeline (select →
  /// attribute in parallel → commit in order); otherwise the reference
  /// per-miss loop.
  void mergeContexts();

  /// Batched drain stages over the per-context miss buffers.
  void drainBatched();
  /// Stage 4 of the batched drain: block-pipelined TLB replay over every
  /// shard buffer (batched VPN derivation, gather-probed translation
  /// hints, run skip). Touches only ReplayTlb/ReplayCache and the
  /// VpnScratch/HugeHintScratch members plus read-only miss buffers, so
  /// drainBatched may run it on a separate thread overlapped with stages
  /// 2-3.
  void replayTlbBatched();
  /// Reference per-miss drain (pre-optimization behaviour).
  void drainReference();

  /// \name Lookahead pipeline steps (no-ops while Lookahead is disabled)
  /// @{
  /// Joins the overlapped copy thread so every staged range's CopyDone is
  /// settled before the boundary reads it.
  void joinLookaheadCopies();
  /// Destructor path: joins the copy thread and cancels anything still
  /// staged so no staging region outlives the runtime.
  void shutdownLookahead();
  /// Adaptive epoch back-off: true when this optimize() call should be
  /// skipped outright (converged placement, no drift, nothing staged).
  bool skipConvergedEpoch();
  /// Epoch-boundary resolution: commit staged ranges the fresh plan
  /// confirmed, cancel the rest. Runs before demotions/promotions so the
  /// demand path sees the committed chunks as already placed.
  void resolveStagedAhead(mem::MigrationResult &Result);
  /// Feeds the planner this epoch's trend features, predicts, stages the
  /// winners under the capacity budget, and launches the overlapped copy.
  void stageLookahead(
      const std::vector<analyzer::ObjectClassification> &Classes);
  /// Converged-streak accounting and back-off window arming.
  void updateBackoff();
  /// @}

  /// The calling thread's shard binding inside a parallelTracked region.
  /// Owner disambiguates between runtimes when several coexist (the
  /// concurrent bench harness runs one runtime per job thread).
  struct ContextBinding {
    Runtime *Owner = nullptr;
    SimContext *Ctx = nullptr;
  };
  static thread_local ContextBinding Bound;

  RuntimeConfig Config;
  sim::Machine M;
  mem::DataObjectRegistry Registry;
  mem::ThreadPool Pool;
  prof::SamplingProfiler Profiler;
  mem::AtmemMigrator AtmemMig;
  mem::MbindMigrator MbindMig;
  analyzer::PlacementPlan LastPlan;
  /// Planned-but-unplaced chunks from the most recent optimize().
  std::vector<SkippedChunk> Skipped;
  sim::AccessStats Stats;
  /// One shard per SimThread when SimThreads > 1 (else empty).
  std::vector<std::unique_ptr<SimContext>> Contexts;
  /// Pool sized SimThreads driving parallelTracked (null when serial).
  std::unique_ptr<mem::ThreadPool> KernelPool;
  sim::Tlb *ReplayTlb = nullptr;
  prof::TraceWriter *MissTrace = nullptr;
  /// Direct-mapped translation cache for TLB replay, built lazily on
  /// first use (only when a replay TLB is attached).
  std::unique_ptr<sim::TranslationCache> ReplayCache;
  /// One sample's parallel attribution result, committed serially.
  struct AttributedSample {
    mem::Attribution Attr;
    uint8_t Ok = 0;
  };
  /// Reused drain scratch (selection and attribution stages).
  std::vector<prof::PendingSample> PendingScratch;
  std::vector<AttributedSample> AttrScratch;
  /// Attribution hint state recycled across drains: graph iterations miss
  /// in the same objects, so last drain's hints start warm instead of
  /// re-walking the registry index from cold every batch.
  mem::AttributionHint SerialAttrHint;
  std::vector<mem::AttributionHint> AttrHintScratch;
  /// \name Topology-sharded drain state
  /// @{
  /// Host topology captured once at construction (override, probe, or
  /// degraded single-node fallback) and the cached host thread count.
  support::Topology Topo;
  uint32_t HostThreads = 1;
  /// Per-shard selection states / outputs of the parallel stage-1
  /// pre-scan (spliced into PendingScratch in shard order).
  std::vector<prof::SelectionState> SelStateScratch;
  std::vector<std::vector<prof::PendingSample>> SelScratch;
  /// Stage-4 block scratch: a block's VPNs and its gather-probed
  /// cached-huge hints. Only the replay stage touches these (see
  /// replayTlbBatched's overlap contract).
  std::vector<uint64_t> VpnScratch;
  std::vector<uint8_t> HugeHintScratch;
  /// One participant's node-local copy of the registry's attribution
  /// index, refreshed lazily (by the pinned worker itself, so the copy is
  /// first-touched on its node) when the registry's version moves. Used
  /// only on multi-node hosts; single-node drains read the shared index
  /// as before. Padded so neighbouring participants don't false-share.
  struct alignas(64) NodeAttrReplica {
    std::vector<mem::DataObjectRegistry::AttrInterval> Index;
    uint64_t Version = ~0ull;
  };
  std::vector<NodeAttrReplica> NodeAttr;
  /// @}
  /// \name Lookahead state (untouched while Config.Lookahead.Enabled is
  /// false, so the disabled runtime is byte-identical to one predating
  /// the subsystem)
  /// @{
  std::unique_ptr<analyzer::LookaheadPlanner> Lookahead;
  /// Ranges staged ahead for the next epoch boundary. Written on the
  /// optimize() thread; the copy thread only mutates CopyDone /
  /// OverlappedSimSec of its entries and is joined before they are read.
  std::vector<mem::StagedAheadRange> StagedRanges;
  std::thread LookaheadCopyThread;
  uint32_t ConvergedStreak = 0;
  uint32_t BackoffLen = 0;
  uint32_t BackoffRemaining = 0;
  LookaheadStats LkStats;
  /// Churn inputs of the epoch being built (reset at each optimize()).
  uint64_t EpochRenominated = 0;
  uint64_t EpochRollbacks = 0;
  /// @}
  bool TrackingEnabled = true;
  /// True while a "runtime.iteration" trace span is open (beginIteration
  /// ran with telemetry enabled; endIteration closes it).
  bool IterationSpanOpen = false;
  /// \name Live observability (inert unless Telemetry configures it)
  /// @{
  /// 1-based ordinal of optimize() calls that ran a full epoch (skipped
  /// converged epochs do not count) — the time-series x axis.
  uint64_t OptimizeEpochs = 0;
  /// Migration retries of the epoch being built (companion to
  /// EpochRenominated/EpochRollbacks, reset every optimize()).
  uint64_t EpochRetries = 0;
  /// LkStats values at the previous epoch boundary, so samples report
  /// per-epoch deltas of the cumulative lookahead counters.
  uint64_t TsPrevStaged = 0;
  uint64_t TsPrevCancelled = 0;
  double TsPrevOverlap = 0.0;
  /// Snapshot server for --stats-socket (null when not requested, so the
  /// only cost in that mode is a pointer null check at shutdown).
  std::unique_ptr<obs::StatsServer> StatsServer;
  /// Placement summary served by the socket: rebuilt under StatsMutex at
  /// each epoch boundary so the accept thread never walks live registry
  /// structures concurrently with a migration.
  std::mutex StatsMutex;
  std::string PlacementJson;
  /// Online health monitor (null unless --health / --health-log or the
  /// process-wide default armed it). Every epoch-cadence call site pays
  /// one pointer null check when disabled; the access hot path pays
  /// nothing.
  std::unique_ptr<obs::HealthMonitor> HealthMon;
  /// Wall clock of the previous epoch boundary, for the IterationWallUs
  /// budget denominator (valid once HaveLastEpochWall).
  std::chrono::steady_clock::time_point LastEpochWallEnd;
  bool HaveLastEpochWall = false;
  /// @}

  /// Captures this epoch's time-series sample, feeds the health monitor,
  /// and refreshes the stats snapshot (no-ops when no sink is configured).
  void captureEpochSample(const mem::MigrationResult &Result,
                          uint64_t RollbacksBefore, double WallUs,
                          double IterWallUs);
  /// Reports the chunks \p Moved actually placed on \p ToFast's tier to
  /// the health monitor's ping-pong tracker (no-op when HealthMon is
  /// null).
  void noteHealthMigration(uint64_t Object, uint32_t FirstChunk,
                           uint32_t NumChunks, bool ToFast);
  /// Rebuilds PlacementJson from the live registry (epoch boundary only).
  void updatePlacementJson();
  /// Renders the document served to each stats-socket connection.
  std::string statsSnapshotJson();
};

/// A typed view over a registered data object. Every element access is
/// reported to the runtime, which models its cache/tier cost. Obtain raw()
/// for untracked bulk initialization.
template <typename T> class TrackedArray {
public:
  TrackedArray() = default;
  TrackedArray(Runtime *Rt, T *Data, size_t Count, TrackHandle Handle)
      : Rt(Rt), Data(Data), Count(Count), Handle(Handle) {}

  /// Tracked element access.
  T &operator[](size_t I) {
    Rt->onAccess(Handle, I * sizeof(T));
    return Data[I];
  }
  const T &operator[](size_t I) const {
    Rt->onAccess(Handle, I * sizeof(T));
    return Data[I];
  }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// Untracked raw pointer (initialization/verification only).
  T *raw() { return Data; }
  const T *raw() const { return Data; }

  mem::ObjectId objectId() const { return Handle.Object; }
  uint64_t va() const { return Handle.VaBase; }

private:
  Runtime *Rt = nullptr;
  T *Data = nullptr;
  size_t Count = 0;
  TrackHandle Handle;
};

template <typename T>
TrackedArray<T> Runtime::allocate(const std::string &Name, size_t Count) {
  uint64_t SizeBytes = Count * sizeof(T);
  uint64_t ChunkOverride = Config.ChunkBytesOverride;
  if (Config.WholeObjectChunks) {
    ChunkOverride = sim::SmallPageBytes;
    while (ChunkOverride < SizeBytes)
      ChunkOverride *= 2;
  }
  mem::DataObject &Obj =
      Registry.create(Name, SizeBytes, Config.Placement, ChunkOverride);
  TrackHandle Handle;
  Handle.VaBase = Obj.va();
  Handle.ChunkTiers = Obj.chunkTierData();
  Handle.ChunkShift = Obj.chunkShift();
  Handle.Object = Obj.id();
  return TrackedArray<T>(this, reinterpret_cast<T *>(Obj.data()), Count,
                         Handle);
}

} // namespace core
} // namespace atmem

#endif // ATMEM_CORE_RUNTIME_H
