//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread simulation context for the parallel tracked-execution
/// engine. When a kernel iteration runs with RuntimeConfig::SimThreads > 1,
/// every executing thread owns one SimContext: a private LLC shard sized
/// SizeBytes / SimThreads (approximating each thread's partition of a
/// shared last-level cache), private AccessStats, and a private buffer of
/// LLC-miss addresses. The hot path therefore takes no lock and touches no
/// shared cache line; Runtime::endIteration() merges shard stats and
/// drains the miss buffers into the profiler in thread-index order.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_CORE_SIMCONTEXT_H
#define ATMEM_CORE_SIMCONTEXT_H

#include "mem/DataObject.h"
#include "sim/CacheSim.h"
#include "sim/CostModel.h"

#include <cstdint>
#include <vector>

namespace atmem {
namespace core {

/// Internal per-object handle embedded in TrackedArray (hot-path data
/// only).
struct TrackHandle {
  uint64_t VaBase = 0;
  const uint8_t *ChunkTiers = nullptr;
  uint32_t ChunkShift = 0;
  mem::ObjectId Object = 0;
};

/// One thread's private slice of the simulated machine during a parallel
/// tracked region. Not thread-safe by design: exactly one thread uses a
/// context at a time (ThreadPool::parallelForThreaded guarantees an index
/// is never active twice concurrently).
class SimContext {
public:
  explicit SimContext(const sim::CacheConfig &ShardGeometry,
                      uint32_t HomeNodeId = 0)
      : Shard(ShardGeometry), HomeNodeId(HomeNodeId) {}

  /// NUMA node this shard's worker is pinned to (0 on single-node
  /// layouts). Purely locality/accounting metadata — placement results
  /// never depend on it. The miss buffer itself ends up node-local by
  /// first touch: it only ever grows inside onAccess() on the pinned
  /// worker.
  uint32_t homeNode() const { return HomeNodeId; }

  /// Lock-free hot path: probe the private LLC shard and account the
  /// access; misses are optionally buffered for the deterministic
  /// end-of-iteration drain into the profiler / trace / TLB replay.
  void onAccess(const TrackHandle &Handle, uint64_t Offset) {
    ++Stats.Accesses;
    uint64_t Va = Handle.VaBase + Offset;
    if (Shard.access(Va)) {
      ++Stats.LlcHits;
      return;
    }
    ++Stats.TierMisses[Handle.ChunkTiers[Offset >> Handle.ChunkShift]];
    if (BufferMisses)
      MissBuffer.push_back(Va);
  }

  sim::AccessStats &stats() { return Stats; }
  const sim::AccessStats &stats() const { return Stats; }

  std::vector<uint64_t> &missBuffer() { return MissBuffer; }

  /// Buffering is enabled only while a consumer (profiler, miss trace,
  /// TLB replay) is attached, so measured iterations pay no buffer
  /// traffic.
  void setBufferMisses(bool Enabled) { BufferMisses = Enabled; }

  sim::CacheSim &llcShard() { return Shard; }

  /// Resets per-iteration state (stats and buffered misses). The shard's
  /// cache contents persist across iterations, matching the serial LLC's
  /// warm behaviour. The miss buffer's capacity is re-reserved from the
  /// high-water mark recorded by recycleMissBuffer(), so a profiling
  /// window never regrows the buffer through doubling reallocations.
  void beginIteration() {
    Stats = sim::AccessStats();
    MissBuffer.clear();
    if (MissBuffer.capacity() < MissHighWater)
      MissBuffer.reserve(MissHighWater);
  }

  /// Called after the end-of-iteration drain: records the drained volume
  /// as the next iteration's reserve target and empties the buffer
  /// (capacity is retained).
  void recycleMissBuffer() {
    if (MissBuffer.size() > MissHighWater)
      MissHighWater = MissBuffer.size();
    MissBuffer.clear();
  }

  /// Donates the miss buffer to an asynchronous consumer (the trace
  /// writer's spill thread) and installs \p Replacement in its place —
  /// the zero-copy counterpart of recycleMissBuffer(). The high-water
  /// bookkeeping matches recycleMissBuffer(); the replacement is cleared
  /// and re-reserved like beginIteration() would.
  std::vector<uint64_t> donateMissBuffer(std::vector<uint64_t> Replacement) {
    if (MissBuffer.size() > MissHighWater)
      MissHighWater = MissBuffer.size();
    Replacement.clear();
    if (Replacement.capacity() < MissHighWater)
      Replacement.reserve(MissHighWater);
    std::swap(MissBuffer, Replacement);
    return Replacement;
  }

private:
  sim::CacheSim Shard;
  sim::AccessStats Stats;
  std::vector<uint64_t> MissBuffer;
  size_t MissHighWater = 0;
  bool BufferMisses = false;
  uint32_t HomeNodeId = 0;
};

} // namespace core
} // namespace atmem

#endif // ATMEM_CORE_SIMCONTEXT_H
