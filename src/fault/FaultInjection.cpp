//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "FaultInjection.h"

#include "../support/Prng.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

namespace atmem {
namespace fault {

namespace detail {
std::atomic<bool> GArmed{false};
} // namespace detail

namespace {

/// Per-site state: the registered name, the armed plan (if any), and hit
/// bookkeeping relative to the most recent arm().
struct SiteState {
  std::string Name;
  bool Armed = false;
  FaultPlan Plan;
  uint64_t Hits = 0;
  uint64_t Fires = 0;
  /// Probability-mode stream; reseeded on every arm() so schedules replay.
  Xoshiro256 Rng{1};
};

} // namespace

struct FaultRegistry::Impl {
  mutable std::mutex Mu;
  std::vector<SiteState> Sites;
  std::map<std::string, uint32_t> Index;
  uint32_t ArmedCount = 0;

  uint32_t idFor(const std::string &Name) {
    auto It = Index.find(Name);
    if (It != Index.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Sites.size());
    Sites.emplace_back();
    Sites.back().Name = Name;
    Index.emplace(Name, Id);
    return Id;
  }
};

FaultRegistry::FaultRegistry() : I(new Impl) {}

FaultRegistry &FaultRegistry::instance() {
  static FaultRegistry R;
  return R;
}

uint32_t FaultRegistry::siteId(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  return I->idFor(Name);
}

bool FaultRegistry::shouldFail(uint32_t Id) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  if (Id >= I->Sites.size())
    return false;
  SiteState &S = I->Sites[Id];
  ++S.Hits;
  if (!S.Armed)
    return false;
  bool Fire = false;
  switch (S.Plan.Mode) {
  case Trigger::Nth:
    Fire = S.Hits == S.Plan.N;
    break;
  case Trigger::EveryKth:
    Fire = S.Plan.N != 0 && S.Hits % S.Plan.N == 0;
    break;
  case Trigger::Probability:
    Fire = S.Rng.nextDouble() < S.Plan.P;
    break;
  }
  if (Fire)
    ++S.Fires;
  return Fire;
}

void FaultRegistry::arm(const std::string &SiteName, const FaultPlan &Plan) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  SiteState &S = I->Sites[I->idFor(SiteName)];
  if (!S.Armed)
    ++I->ArmedCount;
  S.Armed = true;
  S.Plan = Plan;
  S.Hits = 0;
  S.Fires = 0;
  S.Rng = Xoshiro256(Plan.Seed);
  detail::GArmed.store(true, std::memory_order_relaxed);
}

void FaultRegistry::disarm(const std::string &SiteName) {
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto It = I->Index.find(SiteName);
  if (It == I->Index.end())
    return;
  SiteState &S = I->Sites[It->second];
  if (S.Armed)
    --I->ArmedCount;
  S.Armed = false;
  if (I->ArmedCount == 0)
    detail::GArmed.store(false, std::memory_order_relaxed);
}

void FaultRegistry::disarmAll() {
  std::lock_guard<std::mutex> Lock(I->Mu);
  for (SiteState &S : I->Sites)
    S.Armed = false;
  I->ArmedCount = 0;
  detail::GArmed.store(false, std::memory_order_relaxed);
}

uint64_t FaultRegistry::hits(const std::string &SiteName) const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto It = I->Index.find(SiteName);
  return It == I->Index.end() ? 0 : I->Sites[It->second].Hits;
}

uint64_t FaultRegistry::fires(const std::string &SiteName) const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  auto It = I->Index.find(SiteName);
  return It == I->Index.end() ? 0 : I->Sites[It->second].Fires;
}

std::vector<std::string> FaultRegistry::registeredSites() const {
  std::lock_guard<std::mutex> Lock(I->Mu);
  std::vector<std::string> Names;
  Names.reserve(I->Index.size());
  for (const auto &Entry : I->Index)
    Names.push_back(Entry.first);
  return Names;
}

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

namespace {

void setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
}

bool parseUnsigned(std::string_view Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (Value > (UINT64_MAX - Digit) / 10)
      return false;
    Value = Value * 10 + Digit;
  }
  Out = Value;
  return true;
}

bool parseProbability(std::string_view Text, double &Out) {
  if (Text.empty())
    return false;
  // strtod accepts trailing garbage; require full consumption ourselves.
  std::string Copy(Text);
  char *End = nullptr;
  double Value = std::strtod(Copy.c_str(), &End);
  if (End != Copy.c_str() + Copy.size())
    return false;
  if (!(Value >= 0.0 && Value <= 1.0))
    return false;
  Out = Value;
  return true;
}

/// Parses one `site=trigger` entry into (Name, Plan); no side effects.
bool parseEntry(std::string_view Entry, std::string &Name, FaultPlan &Plan,
                std::string *Error) {
  size_t Eq = Entry.find('=');
  if (Eq == std::string_view::npos || Eq == 0) {
    setError(Error, "fault-spec entry '" + std::string(Entry) +
                        "' is missing 'site=trigger'");
    return false;
  }
  Name = std::string(Entry.substr(0, Eq));
  std::string_view Trig = Entry.substr(Eq + 1);
  size_t Colon = Trig.find(':');
  if (Colon == std::string_view::npos) {
    setError(Error, "fault-spec trigger '" + std::string(Trig) +
                        "' is missing a ':' argument");
    return false;
  }
  std::string_view Kind = Trig.substr(0, Colon);
  std::string_view Args = Trig.substr(Colon + 1);
  if (Kind == "nth" || Kind == "every") {
    uint64_t N = 0;
    if (!parseUnsigned(Args, N) || N == 0) {
      setError(Error, "fault-spec trigger '" + std::string(Trig) +
                          "' needs a positive integer");
      return false;
    }
    Plan.Mode = Kind == "nth" ? Trigger::Nth : Trigger::EveryKth;
    Plan.N = N;
    return true;
  }
  if (Kind == "prob") {
    std::string_view PText = Args;
    std::string_view SeedText;
    size_t SeedColon = Args.find(':');
    if (SeedColon != std::string_view::npos) {
      PText = Args.substr(0, SeedColon);
      SeedText = Args.substr(SeedColon + 1);
    }
    Plan.Mode = Trigger::Probability;
    if (!parseProbability(PText, Plan.P)) {
      setError(Error, "fault-spec probability '" + std::string(PText) +
                          "' must be a number in [0,1]");
      return false;
    }
    Plan.Seed = 1;
    if (!SeedText.empty() && !parseUnsigned(SeedText, Plan.Seed)) {
      setError(Error, "fault-spec seed '" + std::string(SeedText) +
                          "' must be a non-negative integer");
      return false;
    }
    return true;
  }
  setError(Error, "fault-spec trigger kind '" + std::string(Kind) +
                      "' is not one of nth/every/prob");
  return false;
}

} // namespace

bool armFromSpec(std::string_view Spec, std::string *Error) {
  // Parse the whole spec before arming anything so a malformed tail cannot
  // leave a half-armed process.
  std::vector<std::pair<std::string, FaultPlan>> Parsed;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string_view::npos)
      Comma = Spec.size();
    std::string_view Entry = Spec.substr(Pos, Comma - Pos);
    if (Entry.empty()) {
      setError(Error, "fault-spec has an empty entry");
      return false;
    }
    std::string Name;
    FaultPlan Plan;
    if (!parseEntry(Entry, Name, Plan, Error))
      return false;
    Parsed.emplace_back(std::move(Name), Plan);
    if (Comma == Spec.size())
      break;
    Pos = Comma + 1;
  }
  if (Parsed.empty()) {
    setError(Error, "fault-spec is empty");
    return false;
  }
  FaultRegistry &R = FaultRegistry::instance();
  for (const auto &Entry : Parsed)
    R.arm(Entry.first, Entry.second);
  return true;
}

bool armFromEnvironment(std::string *Error) {
  const char *Spec = std::getenv("ATMEM_FAULT_SPEC");
  if (!Spec || !*Spec)
    return true;
  return armFromSpec(Spec, Error);
}

const char *faultSpecHelp() {
  return "site=trigger[,site=trigger...] where trigger is nth:N, every:K, "
         "or prob:P[:seed]";
}

} // namespace fault
} // namespace atmem
