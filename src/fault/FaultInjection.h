//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide deterministic fault injection. Named *sites* mark failure
/// points in library code (a staging allocation, a page-table remap, a
/// worker-thread spawn); test code or a `--fault-spec` string *arms* a site
/// with a trigger plan, and the site then reports "fail now" on the matching
/// hits. The design mirrors atmem::obs: when nothing is armed — the default
/// in every production run — a site check costs exactly one relaxed atomic
/// load and a branch, so instrumented code paths stay byte-identical in
/// behaviour and essentially free.
///
/// Site names form a stable dotted catalogue (`migrator.staging_alloc`,
/// `migrator.remap`, `mbind.move_page`, `addrspace.alloc`,
/// `threadpool.spawn`, `io.read`, ...) documented in
/// docs/fault-injection.md together with the `--fault-spec` grammar:
///
///   spec    := entry (',' entry)*
///   entry   := site '=' trigger
///   trigger := 'nth:' N            fire exactly on the Nth hit (1-based)
///            | 'every:' K          fire on every Kth hit
///            | 'prob:' P [':' S]   fire with probability P (seeded PRNG)
///
/// All triggers are deterministic: the probability mode draws from a
/// per-site Xoshiro256 stream seeded by S (default 1), so a failing
/// schedule replays exactly from the spec alone.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_FAULT_FAULTINJECTION_H
#define ATMEM_FAULT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace atmem {
namespace fault {

namespace detail {
extern std::atomic<bool> GArmed;
} // namespace detail

/// True when at least one site is armed. Inline so the disarmed fast path
/// compiles to one relaxed load plus a branch.
inline bool anyArmed() {
  return detail::GArmed.load(std::memory_order_relaxed);
}

/// How an armed site decides which hits fail.
enum class Trigger {
  Nth,         ///< Fire exactly on the Nth hit since arming, once.
  EveryKth,    ///< Fire on every Kth hit since arming.
  Probability, ///< Fire on each hit with probability P (seeded PRNG).
};

/// One site's armed trigger plan.
struct FaultPlan {
  Trigger Mode = Trigger::Nth;
  /// The N of Nth / the K of EveryKth (1-based; 1 = first hit / every hit).
  uint64_t N = 1;
  /// The P of Probability, in [0, 1].
  double P = 0.0;
  /// PRNG seed for Probability (a spec replays exactly from site + plan).
  uint64_t Seed = 1;
};

/// The process-wide site registry. Instrumentation points use the Site
/// handle below; tests and the spec parser arm and inspect sites by name.
/// Arming/inspection is mutex-protected; hit evaluation takes the same
/// mutex but only ever runs when something is armed.
class FaultRegistry {
public:
  static FaultRegistry &instance();

  /// Registers \p Name (idempotent) and returns its dense id.
  uint32_t siteId(const std::string &Name);

  /// Records a hit on site \p Id and returns true when the armed plan says
  /// this hit fails. Always false for unarmed sites (the hit still counts).
  bool shouldFail(uint32_t Id);

  /// Arms \p SiteName (registering it if needed) with \p Plan. Hit and
  /// fire counts reset so trigger positions are relative to arming.
  void arm(const std::string &SiteName, const FaultPlan &Plan);

  /// Disarms one site (its counts stay readable until the next arm).
  void disarm(const std::string &SiteName);

  /// Disarms every site and clears the process-wide armed flag.
  void disarmAll();

  /// Hits recorded on \p SiteName since it was last armed (0 if never hit
  /// or unknown). Hits are only recorded while anyArmed() is true.
  uint64_t hits(const std::string &SiteName) const;

  /// Injected failures fired by \p SiteName since it was last armed.
  uint64_t fires(const std::string &SiteName) const;

  /// Every registered site name, sorted (the runtime catalogue).
  std::vector<std::string> registeredSites() const;

private:
  FaultRegistry();
  struct Impl;
  Impl *I;
};

/// A named fault-injection point. Construction registers the name once;
/// shouldFail() is the hot-path check.
class Site {
public:
  explicit Site(const char *Name)
      : Id(FaultRegistry::instance().siteId(Name)) {}

  /// True when the site is armed and the current hit must fail.
  bool shouldFail() const {
    if (!anyArmed())
      return false;
    return FaultRegistry::instance().shouldFail(Id);
  }

private:
  uint32_t Id;
};

/// Parses a `--fault-spec` string (grammar above) and arms every listed
/// site. Returns false without arming anything when \p Spec is malformed,
/// storing a diagnostic in \p Error when non-null.
bool armFromSpec(std::string_view Spec, std::string *Error = nullptr);

/// Arms from the ATMEM_FAULT_SPEC environment variable when it is set and
/// non-empty. Returns false only on a malformed spec.
bool armFromEnvironment(std::string *Error = nullptr);

/// One-line grammar reminder for --help text.
const char *faultSpecHelp();

} // namespace fault
} // namespace atmem

#endif // ATMEM_FAULT_FAULTINJECTION_H
