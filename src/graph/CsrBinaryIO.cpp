#include "graph/CsrBinaryIO.h"

#include <cstdio>
#include <memory>

using namespace atmem;
using namespace atmem::graph;

uint64_t graph::fnv1aDigest(const void *Data, size_t Bytes, uint64_t Seed) {
  const auto *Bytes8 = static_cast<const uint8_t *>(Data);
  uint64_t Hash = Seed;
  for (size_t I = 0; I < Bytes; ++I) {
    Hash ^= Bytes8[I];
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

namespace {

/// RAII FILE handle.
struct FileCloser {
  void operator()(std::FILE *File) const {
    if (File)
      std::fclose(File);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

uint64_t digestGraph(const CsrGraph &G) {
  uint64_t Digest = fnv1aDigest(G.rowOffsets().data(),
                                G.rowOffsets().size() * sizeof(uint64_t));
  Digest = fnv1aDigest(G.cols().data(),
                       G.cols().size() * sizeof(VertexId), Digest);
  if (G.hasWeights())
    Digest = fnv1aDigest(G.weights().data(),
                         G.weights().size() * sizeof(uint32_t), Digest);
  return Digest;
}

bool writeBlock(std::FILE *File, const void *Data, size_t Bytes) {
  return Bytes == 0 || std::fwrite(Data, 1, Bytes, File) == Bytes;
}

bool readBlock(std::FILE *File, void *Data, size_t Bytes) {
  return Bytes == 0 || std::fread(Data, 1, Bytes, File) == Bytes;
}

} // namespace

bool graph::writeCsrBinary(const CsrGraph &G, const std::string &Path) {
  FileHandle File(std::fopen(Path.c_str(), "wb"));
  if (!File)
    return false;

  CsrBinaryHeader Header;
  Header.HasWeights = G.hasWeights() ? 1 : 0;
  Header.NumVertices = G.numVertices();
  Header.NumEdges = G.numEdges();
  Header.PayloadDigest = digestGraph(G);

  if (!writeBlock(File.get(), &Header, sizeof(Header)))
    return false;
  if (!writeBlock(File.get(), G.rowOffsets().data(),
                  G.rowOffsets().size() * sizeof(uint64_t)))
    return false;
  if (!writeBlock(File.get(), G.cols().data(),
                  G.cols().size() * sizeof(VertexId)))
    return false;
  if (G.hasWeights() &&
      !writeBlock(File.get(), G.weights().data(),
                  G.weights().size() * sizeof(uint32_t)))
    return false;
  return std::fflush(File.get()) == 0;
}

std::optional<CsrGraph> graph::readCsrBinary(const std::string &Path) {
  FileHandle File(std::fopen(Path.c_str(), "rb"));
  if (!File)
    return std::nullopt;

  CsrBinaryHeader Header;
  if (!readBlock(File.get(), &Header, sizeof(Header)))
    return std::nullopt;
  if (Header.Magic != CsrBinaryHeader::MagicValue || Header.Version != 1)
    return std::nullopt;
  // Basic sanity before allocating: vertex ids are 32-bit.
  if (Header.NumVertices > (1ull << 32))
    return std::nullopt;

  std::vector<uint64_t> RowOffsets(Header.NumVertices + 1);
  std::vector<VertexId> Cols(Header.NumEdges);
  std::vector<uint32_t> Weights(Header.HasWeights ? Header.NumEdges : 0);
  if (!readBlock(File.get(), RowOffsets.data(),
                 RowOffsets.size() * sizeof(uint64_t)))
    return std::nullopt;
  if (!readBlock(File.get(), Cols.data(), Cols.size() * sizeof(VertexId)))
    return std::nullopt;
  if (!Weights.empty() &&
      !readBlock(File.get(), Weights.data(),
                 Weights.size() * sizeof(uint32_t)))
    return std::nullopt;

  // Structural validation before constructing (CsrGraph aborts on
  // inconsistent arrays; a corrupt file must fail gracefully instead).
  if (RowOffsets.front() != 0 || RowOffsets.back() != Cols.size())
    return std::nullopt;
  for (size_t I = 0; I + 1 < RowOffsets.size(); ++I)
    if (RowOffsets[I] > RowOffsets[I + 1])
      return std::nullopt;
  for (VertexId V : Cols)
    if (V >= Header.NumVertices)
      return std::nullopt;

  CsrGraph G(std::move(RowOffsets), std::move(Cols), std::move(Weights));
  if (digestGraph(G) != Header.PayloadDigest)
    return std::nullopt;
  return G;
}
