//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary CSR serialization. Generating the large synthetic datasets
/// costs seconds; persisting them as binary CSR lets repeated experiment
/// runs load in milliseconds, and gives users a compact interchange
/// format. The format is versioned and checksummed:
///
///   [CsrBinaryHeader][row offsets][cols][weights?]
///
/// with a FNV-1a digest over the payload detecting truncation and
/// corruption on load.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_GRAPH_CSRBINARYIO_H
#define ATMEM_GRAPH_CSRBINARYIO_H

#include "graph/CsrGraph.h"

#include <cstdint>
#include <optional>
#include <string>

namespace atmem {
namespace graph {

/// On-disk header of the binary CSR format (all fields little-endian).
struct CsrBinaryHeader {
  static constexpr uint64_t MagicValue = 0x314d454d54414243ull; // "CBATMEM1".

  uint64_t Magic = MagicValue;
  uint32_t Version = 1;
  uint32_t HasWeights = 0;
  uint64_t NumVertices = 0;
  uint64_t NumEdges = 0;
  /// FNV-1a over the three payload arrays, in file order.
  uint64_t PayloadDigest = 0;
};

/// FNV-1a digest used by the format (exposed for tests).
uint64_t fnv1aDigest(const void *Data, size_t Bytes,
                     uint64_t Seed = 0xcbf29ce484222325ull);

/// Writes \p G to \p Path. Returns false on I/O failure.
bool writeCsrBinary(const CsrGraph &G, const std::string &Path);

/// Loads a graph previously written by writeCsrBinary(). Returns
/// std::nullopt on I/O failure, bad magic/version, or digest mismatch.
std::optional<CsrGraph> readCsrBinary(const std::string &Path);

} // namespace graph
} // namespace atmem

#endif // ATMEM_GRAPH_CSRBINARYIO_H
