#include "graph/CsrGraph.h"

#include "support/Error.h"
#include "support/Prng.h"

#include <algorithm>
#include <cassert>

using namespace atmem;
using namespace atmem::graph;

CsrGraph::CsrGraph(std::vector<uint64_t> RowOffsetsIn,
                   std::vector<VertexId> ColsIn,
                   std::vector<uint32_t> WeightsIn)
    : RowOffsets(std::move(RowOffsetsIn)), Cols(std::move(ColsIn)),
      Weights(std::move(WeightsIn)) {
  if (RowOffsets.empty())
    reportFatalError("CSR row offsets must contain at least one entry");
  if (RowOffsets.back() != Cols.size())
    reportFatalError("CSR row offsets do not cover the column array");
  if (!Weights.empty() && Weights.size() != Cols.size())
    reportFatalError("CSR weight array size mismatch");
}

VertexId CsrGraph::maxDegreeVertex() const {
  VertexId Best = 0;
  uint64_t BestDegree = 0;
  for (VertexId V = 0; V < numVertices(); ++V) {
    uint64_t Degree = outDegree(V);
    if (Degree > BestDegree) {
      BestDegree = Degree;
      Best = V;
    }
  }
  return Best;
}

double CsrGraph::topDegreeEdgeShare(double Fraction) const {
  if (numEdges() == 0 || numVertices() == 0)
    return 0.0;
  std::vector<uint64_t> Degrees(numVertices());
  for (VertexId V = 0; V < numVertices(); ++V)
    Degrees[V] = outDegree(V);
  std::sort(Degrees.begin(), Degrees.end(), std::greater<uint64_t>());
  auto Top = static_cast<size_t>(Fraction * numVertices());
  if (Top == 0)
    Top = 1;
  uint64_t Sum = 0;
  for (size_t I = 0; I < Top && I < Degrees.size(); ++I)
    Sum += Degrees[I];
  return static_cast<double>(Sum) / static_cast<double>(numEdges());
}

CsrGraph graph::buildCsr(uint32_t NumVertices, std::vector<Edge> Edges,
                         const BuildOptions &Options) {
  if (Options.Symmetrize) {
    size_t Original = Edges.size();
    Edges.reserve(Original * 2);
    for (size_t I = 0; I < Original; ++I)
      Edges.emplace_back(Edges[I].second, Edges[I].first);
  }
  if (Options.RemoveSelfLoops) {
    Edges.erase(std::remove_if(Edges.begin(), Edges.end(),
                               [](const Edge &E) {
                                 return E.first == E.second;
                               }),
                Edges.end());
  }
  for ([[maybe_unused]] const Edge &E : Edges)
    assert(E.first < NumVertices && E.second < NumVertices &&
           "edge endpoint out of range");

  // Counting sort by source builds the offsets in O(V + E).
  std::vector<uint64_t> RowOffsets(NumVertices + 1, 0);
  for (const Edge &E : Edges)
    ++RowOffsets[E.first + 1];
  for (uint32_t V = 0; V < NumVertices; ++V)
    RowOffsets[V + 1] += RowOffsets[V];

  std::vector<VertexId> Cols(Edges.size());
  std::vector<uint64_t> Cursor(RowOffsets.begin(), RowOffsets.end() - 1);
  for (const Edge &E : Edges)
    Cols[Cursor[E.first]++] = E.second;

  if (Options.SortNeighbors || Options.DeduplicateEdges)
    for (uint32_t V = 0; V < NumVertices; ++V)
      std::sort(Cols.begin() + RowOffsets[V], Cols.begin() + RowOffsets[V + 1]);

  if (Options.DeduplicateEdges) {
    std::vector<uint64_t> NewOffsets(NumVertices + 1, 0);
    std::vector<VertexId> NewCols;
    NewCols.reserve(Cols.size());
    for (uint32_t V = 0; V < NumVertices; ++V) {
      VertexId Last = ~0u;
      for (uint64_t I = RowOffsets[V]; I < RowOffsets[V + 1]; ++I) {
        if (Cols[I] == Last)
          continue;
        NewCols.push_back(Cols[I]);
        Last = Cols[I];
      }
      NewOffsets[V + 1] = NewCols.size();
    }
    return CsrGraph(std::move(NewOffsets), std::move(NewCols));
  }
  return CsrGraph(std::move(RowOffsets), std::move(Cols));
}

CsrGraph graph::withRandomWeights(CsrGraph G, uint32_t MaxWeight,
                                  uint64_t Seed) {
  assert(MaxWeight > 0 && "weights need a positive range");
  std::vector<uint32_t> Weights(G.numEdges());
  const std::vector<uint64_t> &Offsets = G.rowOffsets();
  const std::vector<VertexId> &Cols = G.cols();
  for (VertexId V = 0; V + 1 < Offsets.size(); ++V) {
    for (uint64_t I = Offsets[V]; I < Offsets[V + 1]; ++I) {
      // Stable per-edge weight: hash of (seed, src, dst).
      SplitMix64 Hash(Seed ^ (static_cast<uint64_t>(V) << 32) ^ Cols[I]);
      Weights[I] = static_cast<uint32_t>(Hash.next() % MaxWeight) + 1;
    }
  }
  return CsrGraph(std::vector<uint64_t>(G.rowOffsets()),
                  std::vector<VertexId>(G.cols()), std::move(Weights));
}
