//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compressed sparse row graph representation matching the layout of the
/// paper's SIMD graph framework (GraphPhi): a row-offset array, a column
/// index array, and an optional edge-weight array. These three arrays are
/// exactly the "massive data structures with skewed access patterns" that
/// ATMem's adaptive chunks subdivide.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_GRAPH_CSRGRAPH_H
#define ATMEM_GRAPH_CSRGRAPH_H

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace atmem {
namespace graph {

/// Vertex identifier.
using VertexId = uint32_t;
/// A directed edge (source, destination).
using Edge = std::pair<VertexId, VertexId>;

/// Immutable CSR adjacency structure.
class CsrGraph {
public:
  CsrGraph() = default;
  CsrGraph(std::vector<uint64_t> RowOffsets, std::vector<VertexId> Cols,
           std::vector<uint32_t> Weights = {});

  uint32_t numVertices() const {
    return RowOffsets.empty()
               ? 0
               : static_cast<uint32_t>(RowOffsets.size() - 1);
  }
  uint64_t numEdges() const { return Cols.size(); }
  bool hasWeights() const { return !Weights.empty(); }

  uint64_t outDegree(VertexId V) const {
    return RowOffsets[V + 1] - RowOffsets[V];
  }

  /// Neighbors of \p V (untracked view; the instrumented kernels use their
  /// own tracked copies of the arrays).
  std::span<const VertexId> neighbors(VertexId V) const {
    return {Cols.data() + RowOffsets[V],
            static_cast<size_t>(outDegree(V))};
  }

  const std::vector<uint64_t> &rowOffsets() const { return RowOffsets; }
  const std::vector<VertexId> &cols() const { return Cols; }
  const std::vector<uint32_t> &weights() const { return Weights; }

  /// Vertex with the largest out-degree (the kernels' default source);
  /// 0 for empty graphs.
  VertexId maxDegreeVertex() const;

  /// Fraction of all edges owned by the top \p Fraction of vertices by
  /// degree — the skew metric the generators are validated against.
  double topDegreeEdgeShare(double Fraction) const;

private:
  std::vector<uint64_t> RowOffsets;
  std::vector<VertexId> Cols;
  std::vector<uint32_t> Weights;
};

/// Options controlling edge-list to CSR conversion.
struct BuildOptions {
  bool RemoveSelfLoops = true;
  bool DeduplicateEdges = false;
  bool SortNeighbors = true;
  /// Adds the reverse of every edge (undirected view).
  bool Symmetrize = false;
};

/// Builds a CSR graph over \p NumVertices from \p Edges.
CsrGraph buildCsr(uint32_t NumVertices, std::vector<Edge> Edges,
                  const BuildOptions &Options = {});

/// Attaches deterministic pseudo-random edge weights in [1, MaxWeight]
/// derived from \p Seed and the edge endpoints (stable across builds).
CsrGraph withRandomWeights(CsrGraph G, uint32_t MaxWeight, uint64_t Seed);

} // namespace graph
} // namespace atmem

#endif // ATMEM_GRAPH_CSRGRAPH_H
