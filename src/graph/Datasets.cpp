#include "graph/Datasets.h"

#include "graph/Generators.h"
#include "support/Error.h"

#include <cmath>

using namespace atmem;
using namespace atmem::graph;

const std::vector<std::string> &graph::datasetNames() {
  static const std::vector<std::string> Names = {
      "pokec", "rmat24", "twitter", "rmat27", "friendster"};
  return Names;
}

bool graph::isKnownDataset(const std::string &Name) {
  for (const std::string &Known : datasetNames())
    if (Known == Name)
      return true;
  return false;
}

namespace {

/// Paper-size description of one dataset.
struct DatasetSpec {
  const char *Name;
  double Vertices;   ///< Paper vertex count.
  double AvgDegree;  ///< Paper edges / vertices.
  bool IsRmat;
  double Gamma;      ///< Power-law exponent (ignored for R-MAT).
  uint64_t Seed;
};

const DatasetSpec Specs[] = {
    {"pokec", 1.6e6, 19.1, false, 2.6, 0xA01},
    {"rmat24", 16.8e6, 16.0, true, 0.0, 0xA02},
    {"twitter", 41.7e6, 36.0, false, 1.9, 0xA03},
    {"rmat27", 134.2e6, 15.6, true, 0.0, 0xA04},
    {"friendster", 68.3e6, 30.7, false, 2.3, 0xA05},
};

const DatasetSpec *findSpec(const std::string &Name) {
  for (const DatasetSpec &Spec : Specs)
    if (Name == Spec.Name)
      return &Spec;
  return nullptr;
}

} // namespace

Dataset graph::makeDataset(const std::string &Name, double ScaleDivisor) {
  const DatasetSpec *Spec = findSpec(Name);
  if (!Spec)
    reportFatalError("unknown dataset: " + Name);
  if (ScaleDivisor < 1.0)
    reportFatalError("dataset scale divisor must be >= 1");

  Dataset Result;
  Result.Name = Name;
  Result.ScaleDivisor = ScaleDivisor;

  auto Vertices =
      static_cast<uint32_t>(Spec->Vertices / ScaleDivisor);
  if (Vertices < 1024)
    Vertices = 1024;

  if (Spec->IsRmat) {
    RmatParams Params;
    // Match the scaled vertex count with the nearest power of two.
    Params.Scale = static_cast<uint32_t>(std::lround(std::log2(Vertices)));
    if (Params.Scale < 10)
      Params.Scale = 10;
    Params.EdgeFactor = Spec->AvgDegree;
    Params.Seed = Spec->Seed;
    Result.Graph = generateRmat(Params);
  } else {
    PowerLawParams Params;
    Params.NumVertices = Vertices;
    Params.AverageDegree = Spec->AvgDegree;
    Params.Gamma = Spec->Gamma;
    Params.Seed = Spec->Seed;
    Result.Graph = generatePowerLaw(Params);
  }
  return Result;
}
