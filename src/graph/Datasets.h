//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of the paper's five evaluation graphs (Table 2), reproduced as
/// scaled-down synthetic equivalents. Every dataset keeps the original's
/// relative size and degree skew:
///
///   name        | paper V / E       | family     | skew
///   ------------+-------------------+------------+----------------------
///   pokec       | 1.6 M  / 30.6 M   | power-law  | mild  (gamma 2.6)
///   rmat24      | 16.8 M / 268.4 M  | R-MAT s24  | Graph500 params
///   twitter     | 41.7 M / 1.5 B    | power-law  | heavy (gamma 1.9)
///   rmat27      | 134.2 M / 2.1 B   | R-MAT s27  | Graph500 params
///   friendster  | 68.3 M / 2.1 B    | power-law  | medium (gamma 2.3)
///
/// The \p ScaleDivisor shrinks vertex counts (default 256) while average
/// degree is preserved, so capacity-pressure experiments use machine
/// configurations scaled by the same divisor (see sim::nvmDramTestbed).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_GRAPH_DATASETS_H
#define ATMEM_GRAPH_DATASETS_H

#include "graph/CsrGraph.h"

#include <string>
#include <vector>

namespace atmem {
namespace graph {

/// Metadata plus the generated graph of one dataset.
struct Dataset {
  std::string Name;
  CsrGraph Graph;
  /// The divisor used to scale this instance down from the paper's size.
  double ScaleDivisor = 1.0;
};

/// Names of the five paper datasets in evaluation order.
const std::vector<std::string> &datasetNames();

/// True when \p Name is one of the five datasets.
bool isKnownDataset(const std::string &Name);

/// Builds dataset \p Name at \p ScaleDivisor (paper size / divisor).
/// Aborts on unknown names; check isKnownDataset() first for user input.
Dataset makeDataset(const std::string &Name, double ScaleDivisor = 256.0);

/// Default divisor used across benchmarks; keeps every figure sweep
/// in the minutes range while preserving the paper's relative shapes.
inline constexpr double DefaultScaleDivisor = 256.0;

} // namespace graph
} // namespace atmem

#endif // ATMEM_GRAPH_DATASETS_H
