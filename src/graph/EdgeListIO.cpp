#include "graph/EdgeListIO.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

using namespace atmem;
using namespace atmem::graph;

bool graph::writeEdgeList(const CsrGraph &G, const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  std::fprintf(File, "# vertices=%u edges=%" PRIu64 "\n", G.numVertices(),
               G.numEdges());
  for (VertexId V = 0; V < G.numVertices(); ++V)
    for (VertexId Dst : G.neighbors(V))
      std::fprintf(File, "%u %u\n", V, Dst);
  bool Ok = std::fclose(File) == 0;
  return Ok;
}

std::optional<CsrGraph> graph::readEdgeList(const std::string &Path,
                                            const BuildOptions &Options) {
  std::FILE *File = std::fopen(Path.c_str(), "r");
  if (!File)
    return std::nullopt;

  std::vector<Edge> Edges;
  VertexId MaxVertex = 0;
  char Line[256];
  while (std::fgets(Line, sizeof(Line), File)) {
    if (Line[0] == '#' || Line[0] == '\n')
      continue;
    unsigned Src = 0, Dst = 0;
    if (std::sscanf(Line, "%u %u", &Src, &Dst) != 2) {
      std::fclose(File);
      return std::nullopt;
    }
    Edges.emplace_back(Src, Dst);
    MaxVertex = std::max({MaxVertex, Src, Dst});
  }
  std::fclose(File);
  uint32_t NumVertices = Edges.empty() ? 0 : MaxVertex + 1;
  return buildCsr(NumVertices, std::move(Edges), Options);
}
