//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text edge-list input/output so users can run the framework on their own
/// graphs (one "src dst" pair per line; '#' comments ignored), matching
/// the SNAP distribution format of the paper's real datasets.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_GRAPH_EDGELISTIO_H
#define ATMEM_GRAPH_EDGELISTIO_H

#include "graph/CsrGraph.h"

#include <optional>
#include <string>

namespace atmem {
namespace graph {

/// Writes \p G as a text edge list to \p Path. Returns false on I/O error.
bool writeEdgeList(const CsrGraph &G, const std::string &Path);

/// Loads a text edge list from \p Path and builds a CSR graph; vertex ids
/// are taken verbatim, with the vertex count being max id + 1. Returns
/// std::nullopt on I/O or parse errors.
std::optional<CsrGraph> readEdgeList(const std::string &Path,
                                     const BuildOptions &Options = {});

} // namespace graph
} // namespace atmem

#endif // ATMEM_GRAPH_EDGELISTIO_H
