#include "graph/Generators.h"

#include "support/Error.h"
#include "support/Prng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

using namespace atmem;
using namespace atmem::graph;

CsrGraph graph::generateRmat(const RmatParams &Params) {
  if (Params.A + Params.B + Params.C >= 1.0)
    reportFatalError("R-MAT quadrant probabilities must sum below 1");
  uint32_t NumVertices = 1u << Params.Scale;
  auto NumEdges = static_cast<uint64_t>(Params.EdgeFactor * NumVertices);

  Xoshiro256 Rng(Params.Seed);
  std::vector<Edge> Edges;
  Edges.reserve(NumEdges);
  double AB = Params.A + Params.B;
  double ABC = AB + Params.C;
  for (uint64_t E = 0; E < NumEdges; ++E) {
    uint32_t Src = 0, Dst = 0;
    for (uint32_t Bit = 0; Bit < Params.Scale; ++Bit) {
      double R = Rng.nextDouble();
      Src <<= 1;
      Dst <<= 1;
      if (R < Params.A) {
        // Top-left quadrant: both bits zero.
      } else if (R < AB) {
        Dst |= 1;
      } else if (R < ABC) {
        Src |= 1;
      } else {
        Src |= 1;
        Dst |= 1;
      }
    }
    Edges.emplace_back(Src, Dst);
  }
  return buildCsr(NumVertices, std::move(Edges));
}

CsrGraph graph::generatePowerLaw(const PowerLawParams &Params) {
  assert(Params.Gamma > 1.0 && "power-law exponent must exceed 1");
  uint32_t NumVertices = Params.NumVertices;
  auto NumEdges =
      static_cast<uint64_t>(Params.AverageDegree * NumVertices);

  // Chung-Lu expected-degree weights: w_v proportional to
  // (v + v0)^(-1/(gamma-1)); v0 softens the head so the top hub does not
  // absorb a constant fraction of all edges regardless of size.
  double Exponent = -1.0 / (Params.Gamma - 1.0);
  double V0 = static_cast<double>(NumVertices) * 0.001 + 1.0;
  std::vector<double> Cumulative(NumVertices);
  double Sum = 0.0;
  for (uint32_t V = 0; V < NumVertices; ++V) {
    Sum += std::pow(static_cast<double>(V) + V0, Exponent);
    Cumulative[V] = Sum;
  }

  // Inverse-CDF sampling via binary search on the cumulative weights.
  Xoshiro256 Rng(Params.Seed);
  auto SampleVertex = [&]() -> uint32_t {
    double R = Rng.nextDouble() * Sum;
    auto It = std::lower_bound(Cumulative.begin(), Cumulative.end(), R);
    if (It == Cumulative.end())
      return NumVertices - 1;
    return static_cast<uint32_t>(It - Cumulative.begin());
  };

  std::vector<Edge> Edges;
  Edges.reserve(NumEdges);
  for (uint64_t E = 0; E < NumEdges; ++E) {
    uint32_t Src = SampleVertex();
    uint32_t Dst = SampleVertex();
    Edges.emplace_back(Src, Dst);
  }
  return buildCsr(NumVertices, std::move(Edges));
}
