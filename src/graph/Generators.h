//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic graph generators standing in for the paper's
/// datasets (Table 2). Two families:
///
///  - R-MAT (recursive matrix) for the rmat24/rmat27 inputs, with the
///    standard Graph500 parameters;
///  - Chung-Lu style power-law generation for the social graphs (pokec,
///    twitter, friendster), where vertex weights follow a power law with a
///    per-dataset exponent so cross-dataset skew differences survive the
///    scale-down. Hubs receive the lowest vertex ids, giving the spatial
///    hot-region clustering real social-graph orderings exhibit.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_GRAPH_GENERATORS_H
#define ATMEM_GRAPH_GENERATORS_H

#include "graph/CsrGraph.h"

#include <cstdint>

namespace atmem {
namespace graph {

/// R-MAT parameters (defaults are the Graph500 quadrant probabilities).
struct RmatParams {
  uint32_t Scale = 16;     ///< 2^Scale vertices.
  double EdgeFactor = 16;  ///< Edges per vertex.
  double A = 0.57;
  double B = 0.19;
  double C = 0.19;
  uint64_t Seed = 1;
};

/// Generates an R-MAT graph as CSR (self-loops removed, neighbors sorted).
CsrGraph generateRmat(const RmatParams &Params);

/// Chung-Lu power-law parameters.
struct PowerLawParams {
  uint32_t NumVertices = 1 << 16;
  double AverageDegree = 16.0;
  /// Degree distribution exponent gamma (smaller = heavier tail):
  /// twitter-like ~1.9, friendster-like ~2.3, pokec-like ~2.6.
  double Gamma = 2.2;
  uint64_t Seed = 1;
};

/// Generates a power-law graph: expected vertex degrees follow
/// w_v ~ (v+1)^(-1/(Gamma-1)), endpoints sampled proportionally to weight.
/// Vertex 0 is the heaviest hub.
CsrGraph generatePowerLaw(const PowerLawParams &Params);

} // namespace graph
} // namespace atmem

#endif // ATMEM_GRAPH_GENERATORS_H
