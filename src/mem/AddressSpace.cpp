#include "mem/AddressSpace.h"

#include "sim/FrameAllocator.h"

using namespace atmem;
using namespace atmem::mem;

uint64_t AddressSpace::reserve(uint64_t SizeBytes) {
  uint64_t Pages =
      (SizeBytes + sim::SmallPageBytes - 1) / sim::SmallPageBytes;
  if (Pages == 0)
    Pages = 1;
  uint64_t Va = Next;
  uint64_t Length = Pages * sim::SmallPageBytes;
  // Advance to the next 2 MiB boundary past the region plus a guard gap.
  uint64_t End = Va + Length + sim::HugePageBytes;
  Next = (End + sim::HugePageBytes - 1) & ~(sim::HugePageBytes - 1);
  Reserved += Length;
  return Va;
}
