//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated virtual address space. Registered data objects receive
/// disjoint, 2 MiB-aligned virtual ranges so that huge-page mappings are
/// always available to the page table. Virtual addresses are never reused;
/// a released range leaves a hole (matching how a long-lived process's
/// address space behaves, and keeping sample attribution unambiguous).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_MEM_ADDRESSSPACE_H
#define ATMEM_MEM_ADDRESSSPACE_H

#include <cstdint>

namespace atmem {
namespace mem {

/// Bump allocator over a simulated 64-bit virtual address space.
class AddressSpace {
public:
  /// Base virtual address of the first region handed out.
  static constexpr uint64_t BaseVa = 0x100000000000ull;

  /// Reserves a region of at least \p SizeBytes. The returned address is
  /// 2 MiB aligned and the reserved length is \p SizeBytes rounded up to a
  /// whole number of 4 KiB pages. A 2 MiB guard gap separates consecutive
  /// regions.
  uint64_t reserve(uint64_t SizeBytes);

  /// Total bytes reserved so far (excluding guard gaps).
  uint64_t reservedBytes() const { return Reserved; }

private:
  uint64_t Next = BaseVa;
  uint64_t Reserved = 0;
};

} // namespace mem
} // namespace atmem

#endif // ATMEM_MEM_ADDRESSSPACE_H
