#include "mem/AtmemMigrator.h"

#include "fault/FaultInjection.h"
#include "obs/DecisionLog.h"
#include "obs/Telemetry.h"
#include "obs/Trace.h"
#include "sim/Machine.h"

#include <cstring>
#include <memory>

using namespace atmem;
using namespace atmem::mem;

namespace {

/// Counts payload bytes by direction; promotion and demotion traffic have
/// very different costs on asymmetric tiers, so they get separate counters.
void countDirection(sim::TierId Target, uint64_t Bytes) {
  static obs::Counter ToFast("migrator.bytes_to_fast");
  static obs::Counter ToSlow("migrator.bytes_to_slow");
  (Target == sim::TierId::Fast ? ToFast : ToSlow).add(Bytes);
}

void countRollback() {
  if (obs::enabled()) {
    static obs::Counter RolledBack("migration.rolled_back");
    RolledBack.add(1);
  }
}

fault::Site StagingAllocFault("migrator.staging_alloc");
fault::Site RemapFault("migrator.remap");
fault::Site LookaheadAllocFault("lookahead.staging_alloc");
fault::Site LookaheadCopyFault("lookahead.copy");

/// Counter twins of the StagedAhead / PrefetchCancelled decision events;
/// crossCheckDecisionMetrics holds them equal to the event counts, so they
/// are bumped at exactly the event-emission sites.
void countStagedAhead() {
  if (obs::enabled()) {
    static obs::Counter Staged("lookahead.staged_ranges");
    Staged.add(1);
  }
}

void countPrefetchCancelled() {
  if (obs::enabled()) {
    static obs::Counter Cancelled("lookahead.cancelled_ranges");
    Cancelled.add(1);
  }
}

/// Flight-recorder lifecycle event for one range inside migrate(). The
/// fault site is only set on RolledBack, attributing which stage failed.
void recordRangeEvent(const DataObject &Obj, const ChunkRange &Range,
                      sim::TierId Target, obs::DecisionPhase Phase,
                      const char *FaultSite = nullptr) {
  if (!obs::DecisionLog::enabled())
    return;
  obs::DecisionLog &Log = obs::DecisionLog::instance();
  obs::MigrationEventRecord Event;
  Event.Object = Obj.id();
  Event.FirstChunk = Range.FirstChunk;
  Event.NumChunks = Range.NumChunks;
  Event.TargetFast = Target == sim::TierId::Fast ? 1 : 0;
  Event.Phase = Phase;
  if (FaultSite)
    Event.FaultSiteNameId = Log.nameId(FaultSite);
  Log.recordMigration(Event);
}

} // namespace

Migrator::~Migrator() = default;

const char *mem::migrationStatusName(MigrationStatus Status) {
  switch (Status) {
  case MigrationStatus::Success:
    return "success";
  case MigrationStatus::Retryable:
    return "retryable";
  case MigrationStatus::Degraded:
    return "degraded";
  case MigrationStatus::Failed:
    return "failed";
  }
  return "unknown";
}

uint64_t Migrator::capacityNeeded(uint64_t PayloadBytes, uint64_t) const {
  return PayloadBytes;
}

uint64_t AtmemMigrator::capacityNeeded(uint64_t PayloadBytes,
                                       uint64_t MaxRangeBytes) const {
  // The staging buffer and the remapped frames coexist at the stage (b)
  // peak; ranges are processed one at a time, so the peak is per-range.
  return PayloadBytes + MaxRangeBytes;
}

MigrationStatus AtmemMigrator::migrate(DataObject &Obj,
                                       const std::vector<ChunkRange> &Ranges,
                                       sim::TierId Target,
                                       MigrationResult &Result) {
  sim::Machine &M = Registry.machine();
  sim::PageTable &PT = M.pageTable();
  const sim::MigrationCostModel &Cost = M.migrationModel();

  // Capacity pre-check: the staging buffer and the remapped frames coexist
  // at the peak, so each range needs twice its length free on the target.
  // Ranges are processed one at a time, so the peak is per-range.
  uint64_t MaxRangeBytes = 0;
  uint64_t IncomingBytes = 0;
  for (const ChunkRange &Range : Ranges) {
    auto [Begin, End] = Obj.rangeBytes(Range);
    uint64_t Len = End - Begin;
    MaxRangeBytes = std::max(MaxRangeBytes, Len);
    IncomingBytes += Len;
  }
  if (M.allocator(Target).freeBytes() < capacityNeeded(IncomingBytes,
                                                       MaxRangeBytes))
    return MigrationStatus::Degraded;

  for (const ChunkRange &Range : Ranges) {
    auto [Begin, End] = Obj.rangeBytes(Range);
    uint64_t Len = End - Begin;
    if (Len == 0)
      continue;
    uint64_t RangeVa = Obj.va() + Begin;
    sim::TierId Source = Obj.chunkTier(Range.FirstChunk);

    obs::SpanScope RangeSpan("migrator.range", "migrator");

    // Stage (a): map a staging buffer on the target tier and copy the live
    // bytes into it with the worker pool. A failure here needs no rollback:
    // nothing was mapped, the source range is untouched, and every range
    // committed before this one stays committed.
    uint64_t StagingVa = Registry.reserveScratchVa(Len);
    if (StagingAllocFault.shouldFail() ||
        !PT.mapRegion(StagingVa, Len, Target, /*PreferHuge=*/true)) {
      countRollback();
      recordRangeEvent(Obj, Range, Target, obs::DecisionPhase::RolledBack,
                       "migrator.staging_alloc");
      return MigrationStatus::Retryable;
    }
    auto Staging = std::make_unique<std::byte[]>(Len);
    std::byte *Live = Obj.data() + Begin;
    std::byte *Stage = Staging.get();
    {
      obs::SpanScope CopyIn("migrator.copy_in", "migrator");
      Pool.parallelFor(0, Len, [&](uint64_t From, uint64_t To) {
        std::memcpy(Stage + From, Live + From, To - From);
      });
    }
    recordRangeEvent(Obj, Range, Target, obs::DecisionPhase::Staged);

    // Stage (b): rebind the virtual range to fresh target frames. Virtual
    // addresses are untouched; huge pages re-form where aligned. On failure
    // remapRange leaves the source mapping in place, so rolling back means
    // just unmapping the staging buffer.
    uint64_t Ptes = 0;
    {
      obs::SpanScope Remap("migrator.remap", "migrator");
      if (RemapFault.shouldFail() ||
          !PT.remapRange(RangeVa, Len, Target, /*PreferHuge=*/true, &Ptes)) {
        PT.unmapRegion(StagingVa, Len);
        countRollback();
        recordRangeEvent(Obj, Range, Target, obs::DecisionPhase::RolledBack,
                         "migrator.remap");
        return MigrationStatus::Retryable;
      }
    }
    recordRangeEvent(Obj, Range, Target, obs::DecisionPhase::Remapped);

    // Stage (c): drain the staging buffer back into the range.
    {
      obs::SpanScope Drain("migrator.copy_out", "migrator");
      Pool.parallelFor(0, Len, [&](uint64_t From, uint64_t To) {
        std::memcpy(Live + From, Stage + From, To - From);
      });
      PT.unmapRegion(StagingVa, Len);
    }

    for (uint32_t C = Range.FirstChunk;
         C < Range.FirstChunk + Range.NumChunks; ++C)
      Obj.setChunkTier(C, Target);
    recordRangeEvent(Obj, Range, Target, obs::DecisionPhase::Committed);

    sim::MigrationWork Work;
    Work.Bytes = Len;
    Work.PtesTouched = Ptes;
    Work.Source = Source;
    Work.Target = Target;
    sim::AtmemStageBreakdown Stages = Cost.atmemStages(Work);
    Result.SimSeconds +=
        Stages.total() + M.config().Migration.AtmemPerRangeSec;
    Result.BytesMoved += Len;
    Result.PtesTouched += Ptes;
    Result.Ranges += 1;

    if (obs::enabled()) {
      static obs::Counter RangeCount("migrator.ranges");
      static obs::Counter PteCount("migrator.ptes_touched");
      static obs::Histogram RangeBytes("migrator.range_bytes");
      static obs::Histogram CopyInUs("migrator.copy_in_sim_us");
      static obs::Histogram RemapUs("migrator.remap_sim_us");
      static obs::Histogram DrainUs("migrator.copy_out_sim_us");
      RangeCount.add(1);
      PteCount.add(Ptes);
      RangeBytes.record(Len);
      CopyInUs.recordSeconds(Stages.CopyInSec);
      RemapUs.recordSeconds(Stages.RemapSec);
      DrainUs.recordSeconds(Stages.DrainSec);
      countDirection(Target, Len);
      // Staging buffer and remapped frames coexist at the stage (b) peak.
      obs::Gauge("migrator.staging_hwm_bytes").max(static_cast<double>(Len));
      RangeSpan.arg("bytes", static_cast<double>(Len))
          .arg("ptes", static_cast<double>(Ptes))
          .arg("copy_in_sim_us", Stages.CopyInSec * 1e6)
          .arg("remap_sim_us", Stages.RemapSec * 1e6)
          .arg("copy_out_sim_us", Stages.DrainSec * 1e6);
    }
  }
  return MigrationStatus::Success;
}

MigrationStatus
AtmemMigrator::stageAhead(DataObject &Obj,
                          const std::vector<ChunkRange> &Ranges,
                          sim::TierId Target,
                          std::vector<StagedAheadRange> &Out) {
  sim::Machine &M = Registry.machine();
  sim::PageTable &PT = M.pageTable();

  // Pipeline peak per range: the staging buffer mapped now plus the fresh
  // frames the commit-time remap allocates before the buffer is released.
  // Checking 2x up front means a range that stages successfully can always
  // commit — the boundary never discovers capacity pressure it could have
  // seen here.
  uint64_t IncomingBytes = 0;
  for (const ChunkRange &Range : Ranges) {
    auto [Begin, End] = Obj.rangeBytes(Range);
    IncomingBytes += End - Begin;
  }
  if (M.allocator(Target).freeBytes() < 2 * IncomingBytes)
    return MigrationStatus::Degraded;

  for (const ChunkRange &Range : Ranges) {
    auto [Begin, End] = Obj.rangeBytes(Range);
    uint64_t Len = End - Begin;
    if (Len == 0)
      continue;
    uint64_t StagingVa = Registry.reserveScratchVa(Len);
    if (LookaheadAllocFault.shouldFail() ||
        !PT.mapRegion(StagingVa, Len, Target, /*PreferHuge=*/true)) {
      countRollback();
      recordRangeEvent(Obj, Range, Target, obs::DecisionPhase::RolledBack,
                       "lookahead.staging_alloc");
      return MigrationStatus::Retryable;
    }
    StagedAheadRange Staged;
    Staged.Object = Obj.id();
    Staged.Range = Range;
    Staged.StagingVa = StagingVa;
    Staged.Len = Len;
    Staged.Source = Obj.chunkTier(Range.FirstChunk);
    Out.push_back(Staged);
    countStagedAhead();
    recordRangeEvent(Obj, Range, Target, obs::DecisionPhase::StagedAhead);
  }
  return MigrationStatus::Success;
}

bool AtmemMigrator::copyStagedAhead(StagedAheadRange &Staged,
                                    sim::TierId Target) {
  if (LookaheadCopyFault.shouldFail())
    return false;
  // Model the cross-tier staging copy's bandwidth consumption without
  // reading the live range (the application is mutating it concurrently):
  // the pool streams a pattern through a thread-private block, paying the
  // same host memory traffic per byte, and the cost model supplies the
  // simulated copy-in seconds that the overlap absorbs.
  Pool.parallelFor(0, Staged.Len, [](uint64_t From, uint64_t To) {
    std::byte Block[4096];
    for (uint64_t At = From; At < To; At += sizeof(Block))
      std::memset(Block, static_cast<int>(At >> 12),
                  static_cast<size_t>(std::min<uint64_t>(sizeof(Block),
                                                         To - At)));
  });
  sim::MigrationWork Work;
  Work.Bytes = Staged.Len;
  Work.Source = Staged.Source;
  Work.Target = Target;
  Staged.OverlappedSimSec =
      Registry.machine().migrationModel().atmemStages(Work).CopyInSec;
  Staged.CopyDone = true;
  return true;
}

MigrationStatus
AtmemMigrator::commitStagedAhead(DataObject &Obj,
                                 const StagedAheadRange &Staged,
                                 sim::TierId Target,
                                 MigrationResult &Result) {
  sim::Machine &M = Registry.machine();
  sim::PageTable &PT = M.pageTable();
  const sim::MigrationCostModel &Cost = M.migrationModel();
  sim::TierId Source = Obj.chunkTier(Staged.Range.FirstChunk);

  // Release the staging reservation first, then rebind: the remap's fresh
  // frames take the staged frames' place on the same tier, so the peak
  // footprint never exceeds what stageAhead() reserved. If the remap then
  // fails, the source mapping is untouched — the prefetch just evaporates.
  PT.unmapRegion(Staged.StagingVa, Staged.Len);
  uint64_t RangeVa = Obj.va() + Obj.rangeBytes(Staged.Range).first;
  uint64_t Ptes = 0;
  if (RemapFault.shouldFail() ||
      !PT.remapRange(RangeVa, Staged.Len, Target, /*PreferHuge=*/true,
                     &Ptes)) {
    countRollback();
    countPrefetchCancelled();
    recordRangeEvent(Obj, Staged.Range, Target,
                     obs::DecisionPhase::PrefetchCancelled, "migrator.remap");
    return MigrationStatus::Retryable;
  }
  for (uint32_t C = Staged.Range.FirstChunk;
       C < Staged.Range.FirstChunk + Staged.Range.NumChunks; ++C)
    Obj.setChunkTier(C, Target);
  recordRangeEvent(Obj, Staged.Range, Target, obs::DecisionPhase::Committed);

  // The boundary pays only the remap and launch costs; the cross-tier
  // copy's seconds were absorbed by the overlap (OverlappedSimSec).
  sim::MigrationWork Work;
  Work.Bytes = Staged.Len;
  Work.PtesTouched = Ptes;
  Work.Source = Source;
  Work.Target = Target;
  sim::AtmemStageBreakdown Stages = Cost.atmemStages(Work);
  Result.SimSeconds += Stages.RemapSec + M.config().Migration.AtmemPerRangeSec;
  Result.BytesMoved += Staged.Len;
  Result.PtesTouched += Ptes;
  Result.Ranges += 1;

  if (obs::enabled()) {
    static obs::Counter RangeCount("migrator.ranges");
    static obs::Counter PteCount("migrator.ptes_touched");
    static obs::Histogram RangeBytes("migrator.range_bytes");
    RangeCount.add(1);
    PteCount.add(Ptes);
    RangeBytes.record(Staged.Len);
    countDirection(Target, Staged.Len);
    static obs::Counter Overlapped("lookahead.overlapped_sim_us");
    Overlapped.add(static_cast<uint64_t>(Staged.OverlappedSimSec * 1e6));
  }
  return MigrationStatus::Success;
}

void AtmemMigrator::cancelStagedAhead(DataObject &Obj,
                                      const StagedAheadRange &Staged,
                                      sim::TierId Target) {
  Registry.machine().pageTable().unmapRegion(Staged.StagingVa, Staged.Len);
  countPrefetchCancelled();
  recordRangeEvent(Obj, Staged.Range, Target,
                   obs::DecisionPhase::PrefetchCancelled);
}
