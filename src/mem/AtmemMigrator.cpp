#include "mem/AtmemMigrator.h"

#include "sim/Machine.h"
#include "support/Error.h"

#include <cstring>
#include <memory>

using namespace atmem;
using namespace atmem::mem;

Migrator::~Migrator() = default;

bool AtmemMigrator::migrate(DataObject &Obj,
                            const std::vector<ChunkRange> &Ranges,
                            sim::TierId Target, MigrationResult &Result) {
  sim::Machine &M = Registry.machine();
  sim::PageTable &PT = M.pageTable();
  const sim::MigrationCostModel &Cost = M.migrationModel();

  // Capacity pre-check: the staging buffer and the remapped frames coexist
  // at the peak, so each range needs twice its length free on the target.
  // Ranges are processed one at a time, so the peak is per-range.
  uint64_t MaxRangeBytes = 0;
  uint64_t IncomingBytes = 0;
  for (const ChunkRange &Range : Ranges) {
    auto [Begin, End] = Obj.rangeBytes(Range);
    uint64_t Len = End - Begin;
    MaxRangeBytes = std::max(MaxRangeBytes, Len);
    IncomingBytes += Len;
  }
  if (M.allocator(Target).freeBytes() < IncomingBytes + MaxRangeBytes)
    return false;

  for (const ChunkRange &Range : Ranges) {
    auto [Begin, End] = Obj.rangeBytes(Range);
    uint64_t Len = End - Begin;
    if (Len == 0)
      continue;
    uint64_t RangeVa = Obj.va() + Begin;
    sim::TierId Source = Obj.chunkTier(Range.FirstChunk);

    // Stage (a): map a staging buffer on the target tier and copy the live
    // bytes into it with the worker pool.
    uint64_t StagingVa = Registry.reserveScratchVa(Len);
    if (!PT.mapRegion(StagingVa, Len, Target, /*PreferHuge=*/true))
      reportFatalError("staging allocation failed despite capacity check");
    auto Staging = std::make_unique<std::byte[]>(Len);
    std::byte *Live = Obj.data() + Begin;
    std::byte *Stage = Staging.get();
    Pool.parallelFor(0, Len, [&](uint64_t From, uint64_t To) {
      std::memcpy(Stage + From, Live + From, To - From);
    });

    // Stage (b): rebind the virtual range to fresh target frames. Virtual
    // addresses are untouched; huge pages re-form where aligned.
    uint64_t Ptes = 0;
    if (!PT.remapRange(RangeVa, Len, Target, /*PreferHuge=*/true, &Ptes))
      reportFatalError("remap failed despite capacity check");

    // Stage (c): drain the staging buffer back into the range.
    Pool.parallelFor(0, Len, [&](uint64_t From, uint64_t To) {
      std::memcpy(Live + From, Stage + From, To - From);
    });
    PT.unmapRegion(StagingVa, Len);

    for (uint32_t C = Range.FirstChunk;
         C < Range.FirstChunk + Range.NumChunks; ++C)
      Obj.setChunkTier(C, Target);

    sim::MigrationWork Work;
    Work.Bytes = Len;
    Work.PtesTouched = Ptes;
    Work.Source = Source;
    Work.Target = Target;
    Result.SimSeconds +=
        Cost.atmemSeconds(Work) + M.config().Migration.AtmemPerRangeSec;
    Result.BytesMoved += Len;
    Result.PtesTouched += Ptes;
    Result.Ranges += 1;
  }
  return true;
}
