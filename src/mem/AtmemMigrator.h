//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's multi-stage multi-threaded migration mechanism
/// (Section 4.4, Figure 4). For each contiguous range: (a) worker threads
/// copy the live bytes into a staging buffer whose pages reside on the
/// target tier, (b) the virtual range is remapped onto fresh target-tier
/// frames — no data moves and virtual addresses are unchanged, huge pages
/// re-form where alignment allows — and (c) worker threads copy the staged
/// bytes back into the (now target-resident) range. Data moves twice, once
/// across tiers and once within the target tier, but both copies run at
/// full thread-parallel bandwidth and the mapping stays huge-page friendly.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_MEM_ATMEMMIGRATOR_H
#define ATMEM_MEM_ATMEMMIGRATOR_H

#include "mem/DataObjectRegistry.h"
#include "mem/Migrator.h"
#include "mem/ThreadPool.h"

namespace atmem {
namespace mem {

/// Application-level staged migrator.
class AtmemMigrator : public Migrator {
public:
  /// \p Registry supplies the machine and scratch virtual addresses;
  /// \p Pool runs the staged copies.
  AtmemMigrator(DataObjectRegistry &Registry, ThreadPool &Pool)
      : Registry(Registry), Pool(Pool) {}

  std::string name() const override { return "atmem"; }

  MigrationStatus migrate(DataObject &Obj,
                          const std::vector<ChunkRange> &Ranges,
                          sim::TierId Target,
                          MigrationResult &Result) override;

  uint64_t capacityNeeded(uint64_t PayloadBytes,
                          uint64_t MaxRangeBytes) const override;

private:
  DataObjectRegistry &Registry;
  ThreadPool &Pool;
};

} // namespace mem
} // namespace atmem

#endif // ATMEM_MEM_ATMEMMIGRATOR_H
