//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's multi-stage multi-threaded migration mechanism
/// (Section 4.4, Figure 4). For each contiguous range: (a) worker threads
/// copy the live bytes into a staging buffer whose pages reside on the
/// target tier, (b) the virtual range is remapped onto fresh target-tier
/// frames — no data moves and virtual addresses are unchanged, huge pages
/// re-form where alignment allows — and (c) worker threads copy the staged
/// bytes back into the (now target-resident) range. Data moves twice, once
/// across tiers and once within the target tier, but both copies run at
/// full thread-parallel bandwidth and the mapping stays huge-page friendly.
///
/// On top of migrate()'s demand path, the migrator exposes the lookahead
/// scheduler's *staged-ahead* pipeline: stageAhead() reserves and maps a
/// staging buffer per predicted range (cheap, synchronous),
/// copyStagedAhead() performs the cross-tier staging copy off the epoch
/// boundary (overlapped with kernel compute; its modelled seconds are
/// recorded as absorbed, not charged as a stall), and the epoch boundary
/// either commitStagedAhead()s a confirmed prediction — releasing the
/// staging reservation and rebinding the range onto target-tier frames in
/// one remap, the only cost the boundary pays — or cancelStagedAhead()s a
/// misprediction, which just unmaps the staging buffer and leaves
/// placement exactly as a run without lookahead would have had it. The
/// live bytes are never rewritten from the staged copy (the application
/// keeps mutating the range during the overlap; the staged frames and the
/// committed frames live on the same tier, so adopting fresh frames at
/// remap is observably equivalent to adopting the staged ones).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_MEM_ATMEMMIGRATOR_H
#define ATMEM_MEM_ATMEMMIGRATOR_H

#include "mem/DataObjectRegistry.h"
#include "mem/Migrator.h"
#include "mem/ThreadPool.h"

namespace atmem {
namespace mem {

/// One chunk range whose staging buffer the lookahead scheduler has mapped
/// ahead of demand. Owned by the runtime between stageAhead() and the
/// epoch-boundary commit/cancel; CopyDone is written by the overlapped
/// copy thread and read only after that thread is joined.
struct StagedAheadRange {
  ObjectId Object = 0;
  ChunkRange Range;
  uint64_t StagingVa = 0;
  uint64_t Len = 0;
  /// Tier the range resided on at stage time (captured so the overlapped
  /// copy thread never dereferences the registry).
  sim::TierId Source = sim::TierId::Slow;
  /// Set by copyStagedAhead() on success. A staged range whose copy never
  /// completed (fault injection, shutdown) must be cancelled, not
  /// committed.
  bool CopyDone = false;
  /// Modelled seconds of the staging copy, absorbed by the overlap with
  /// kernel compute instead of stalling the epoch boundary.
  double OverlappedSimSec = 0.0;
};

/// Application-level staged migrator.
class AtmemMigrator : public Migrator {
public:
  /// \p Registry supplies the machine and scratch virtual addresses;
  /// \p Pool runs the staged copies.
  AtmemMigrator(DataObjectRegistry &Registry, ThreadPool &Pool)
      : Registry(Registry), Pool(Pool) {}

  std::string name() const override { return "atmem"; }

  MigrationStatus migrate(DataObject &Obj,
                          const std::vector<ChunkRange> &Ranges,
                          sim::TierId Target,
                          MigrationResult &Result) override;

  uint64_t capacityNeeded(uint64_t PayloadBytes,
                          uint64_t MaxRangeBytes) const override;

  /// \name Staged-ahead (lookahead) pipeline
  /// @{

  /// Maps one staging buffer per range of \p Ranges on \p Target and
  /// appends the resulting records to \p Out. Synchronous and copy-free;
  /// emits one StagedAhead decision event per staged range. Capacity is
  /// checked up front for the full pipeline peak (staging now plus the
  /// commit-time remap), so a successful stage can always commit. Stops at
  /// the first allocation failure or injected `lookahead.staging_alloc`
  /// fault: earlier ranges stay staged (the caller resolves them normally)
  /// and Retryable is returned.
  MigrationStatus stageAhead(DataObject &Obj,
                             const std::vector<ChunkRange> &Ranges,
                             sim::TierId Target,
                             std::vector<StagedAheadRange> &Out);

  /// The overlapped cross-tier copy into \p Staged's buffer, run off the
  /// epoch boundary (typically from the runtime's lookahead copy thread)
  /// on the migration pool. Touches only the staging allocation — never
  /// the live range, which the application keeps mutating during the
  /// overlap. On success sets CopyDone and records the modelled copy
  /// seconds in OverlappedSimSec; an injected `lookahead.copy` fault
  /// leaves CopyDone unset, degrading the prefetch to a no-op. Emits no
  /// decision events and reads no registry state (those stay on the
  /// resolving thread), so it is safe while the application runs.
  bool copyStagedAhead(StagedAheadRange &Staged, sim::TierId Target);

  /// Epoch-boundary commit of a confirmed prediction: releases the staging
  /// reservation and rebinds the live range onto \p Target frames in one
  /// remap, then flips the chunk tiers. Only the remap and per-range
  /// launch costs are charged to \p Result — the cross-tier copy already
  /// ran overlapped. A remap failure (injected `migrator.remap` fault or
  /// exhausted frames) leaves placement untouched, emits
  /// PrefetchCancelled, and returns Retryable: the prefetch degrades to a
  /// no-op and the chunks stay eligible for the demand path.
  MigrationStatus commitStagedAhead(DataObject &Obj,
                                    const StagedAheadRange &Staged,
                                    sim::TierId Target,
                                    MigrationResult &Result);

  /// Drops a staged-ahead range without touching placement: unmaps the
  /// staging buffer and emits PrefetchCancelled. Used for mispredictions,
  /// failed copies, and shutdown.
  void cancelStagedAhead(DataObject &Obj, const StagedAheadRange &Staged,
                         sim::TierId Target);
  /// @}

private:
  DataObjectRegistry &Registry;
  ThreadPool &Pool;
};

} // namespace mem
} // namespace atmem

#endif // ATMEM_MEM_ATMEMMIGRATOR_H
