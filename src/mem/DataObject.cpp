#include "mem/DataObject.h"

#include "support/Error.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

using namespace atmem;
using namespace atmem::mem;

uint64_t mem::adaptiveChunkBytes(uint64_t SizeBytes, uint32_t TargetChunks) {
  assert(TargetChunks > 0 && "need a positive chunk target");
  uint64_t MinChunk = sim::SmallPageBytes;
  uint64_t MaxChunk = 64ull << 20;
  if (SizeBytes == 0)
    return MinChunk;
  uint64_t Raw = SizeBytes / TargetChunks;
  Raw = std::clamp(Raw, MinChunk, MaxChunk);
  return std::bit_ceil(Raw);
}

DataObject::DataObject(ObjectId Id, std::string Name, uint64_t Va,
                       uint64_t SizeBytes, uint64_t ChunkBytes)
    : Id(Id), Name(std::move(Name)), Va(Va), SizeBytes(SizeBytes),
      ChunkBytes(ChunkBytes) {
  if (!std::has_single_bit(ChunkBytes) || ChunkBytes < sim::SmallPageBytes)
    reportFatalError("chunk size must be a power of two >= 4 KiB");
  ChunkShift = static_cast<uint32_t>(std::countr_zero(ChunkBytes));
  uint64_t Pages =
      (SizeBytes + sim::SmallPageBytes - 1) / sim::SmallPageBytes;
  if (Pages == 0)
    Pages = 1;
  MappedBytes = Pages * sim::SmallPageBytes;
  NumChunks = static_cast<uint32_t>((MappedBytes + ChunkBytes - 1) /
                                    ChunkBytes);
  Host = std::make_unique<std::byte[]>(MappedBytes);
  std::memset(Host.get(), 0, MappedBytes);
  ChunkTiers.assign(NumChunks, static_cast<uint8_t>(sim::TierId::Slow));
}

uint64_t DataObject::bytesOn(sim::TierId Tier) const {
  uint64_t Bytes = 0;
  for (uint32_t C = 0; C < NumChunks; ++C)
    if (chunkTier(C) == Tier) {
      auto [Begin, End] = rangeBytes({C, 1});
      Bytes += End - Begin;
    }
  return Bytes;
}

std::pair<uint64_t, uint64_t>
DataObject::rangeBytes(const ChunkRange &Range) const {
  assert(Range.FirstChunk + Range.NumChunks <= NumChunks &&
         "chunk range out of bounds");
  uint64_t Begin = static_cast<uint64_t>(Range.FirstChunk) << ChunkShift;
  uint64_t End = Begin + (static_cast<uint64_t>(Range.NumChunks) << ChunkShift);
  End = std::min(End, MappedBytes);
  return {Begin, End};
}
