//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DataObject is ATMem's unit of registration (paper Section 4.1): one
/// application allocation (a vertex-property array, a CSR edge array, ...)
/// subdivided into N equal-sized *data chunks*. Chunk granularity adapts to
/// the object size so large objects do not explode metadata while small
/// objects still get intra-object resolution.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_MEM_DATAOBJECT_H
#define ATMEM_MEM_DATAOBJECT_H

#include "sim/FrameAllocator.h"
#include "sim/MemoryTier.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace atmem {
namespace mem {

/// Identifier of a registered data object.
using ObjectId = uint32_t;

/// A contiguous run of chunks inside one data object, used to express
/// migration plans compactly.
struct ChunkRange {
  uint32_t FirstChunk = 0;
  uint32_t NumChunks = 0;

  bool operator==(const ChunkRange &Other) const = default;
};

/// Picks the adaptive chunk size for an object of \p SizeBytes: the object
/// is split into roughly \p TargetChunks chunks, with the chunk size
/// clamped to [4 KiB, 64 MiB] and rounded to a power of two so chunk
/// resolution is a shift. Small objects therefore become a single chunk
/// (equivalent to whole-structure placement, see paper Section 9).
uint64_t adaptiveChunkBytes(uint64_t SizeBytes, uint32_t TargetChunks = 1024);

/// One registered allocation with its chunk metadata and host backing
/// store. The host buffer holds the live data the application reads and
/// writes; the simulated machine tracks where each chunk physically lives.
class DataObject {
public:
  DataObject(ObjectId Id, std::string Name, uint64_t Va, uint64_t SizeBytes,
             uint64_t ChunkBytes);

  ObjectId id() const { return Id; }
  const std::string &name() const { return Name; }
  uint64_t va() const { return Va; }
  uint64_t sizeBytes() const { return SizeBytes; }
  /// Region length rounded up to whole pages (what the page table maps).
  uint64_t mappedBytes() const { return MappedBytes; }
  uint64_t chunkBytes() const { return ChunkBytes; }
  uint32_t chunkShift() const { return ChunkShift; }
  uint32_t numChunks() const { return NumChunks; }

  /// Host memory backing the object's live data.
  std::byte *data() { return Host.get(); }
  const std::byte *data() const { return Host.get(); }

  /// Chunk index containing byte \p Offset into the object.
  uint32_t chunkOf(uint64_t Offset) const {
    return static_cast<uint32_t>(Offset >> ChunkShift);
  }

  /// Tier currently holding chunk \p Chunk. Maintained by the migrators;
  /// chunk-granular because plans move whole chunks and chunks never span
  /// pages of different tiers after an ATMem migration.
  sim::TierId chunkTier(uint32_t Chunk) const {
    return static_cast<sim::TierId>(ChunkTiers[Chunk]);
  }
  void setChunkTier(uint32_t Chunk, sim::TierId Tier) {
    ChunkTiers[Chunk] = static_cast<uint8_t>(Tier);
  }
  void setAllChunkTiers(sim::TierId Tier) {
    for (uint8_t &T : ChunkTiers)
      T = static_cast<uint8_t>(Tier);
  }

  /// Raw tier array for the access engine's hot path.
  const uint8_t *chunkTierData() const { return ChunkTiers.data(); }

  /// Bytes of this object resident on \p Tier according to chunk metadata.
  uint64_t bytesOn(sim::TierId Tier) const;

  /// Virtual byte range [begin, end) covered by \p Range, clamped to the
  /// mapped region length.
  std::pair<uint64_t, uint64_t> rangeBytes(const ChunkRange &Range) const;

private:
  ObjectId Id;
  std::string Name;
  uint64_t Va;
  uint64_t SizeBytes;
  uint64_t MappedBytes;
  uint64_t ChunkBytes;
  uint32_t ChunkShift;
  uint32_t NumChunks;
  std::unique_ptr<std::byte[]> Host;
  std::vector<uint8_t> ChunkTiers;
};

} // namespace mem
} // namespace atmem

#endif // ATMEM_MEM_DATAOBJECT_H
