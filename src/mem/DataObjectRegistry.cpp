#include "mem/DataObjectRegistry.h"

#include "fault/FaultInjection.h"
#include "support/Error.h"

#include <algorithm>

using namespace atmem;
using namespace atmem::mem;

namespace {

fault::Site AllocFault("addrspace.alloc");

} // namespace

DataObject &DataObjectRegistry::create(const std::string &Name,
                                       uint64_t SizeBytes,
                                       InitialPlacement Placement,
                                       uint64_t ChunkBytesOverride) {
  DataObject *Obj = tryCreate(Name, SizeBytes, Placement, ChunkBytesOverride);
  if (!Obj)
    reportFatalError("initial tier exhausted while registering " + Name);
  return *Obj;
}

DataObject *DataObjectRegistry::tryCreate(const std::string &Name,
                                          uint64_t SizeBytes,
                                          InitialPlacement Placement,
                                          uint64_t ChunkBytesOverride) {
  if (AllocFault.shouldFail())
    return nullptr;
  uint64_t ChunkBytes = ChunkBytesOverride != 0
                            ? ChunkBytesOverride
                            : adaptiveChunkBytes(SizeBytes);
  auto Id = static_cast<ObjectId>(Objects.size());
  uint64_t Va = Space.reserve(SizeBytes);
  auto Obj =
      std::make_unique<DataObject>(Id, Name, Va, SizeBytes, ChunkBytes);

  sim::PageTable &PT = M.pageTable();
  switch (Placement) {
  case InitialPlacement::Slow:
    if (!PT.mapRegion(Va, Obj->mappedBytes(), sim::TierId::Slow,
                      /*PreferHuge=*/true))
      return nullptr;
    Obj->setAllChunkTiers(sim::TierId::Slow);
    break;
  case InitialPlacement::Fast:
    if (!PT.mapRegion(Va, Obj->mappedBytes(), sim::TierId::Fast,
                      /*PreferHuge=*/true))
      return nullptr;
    Obj->setAllChunkTiers(sim::TierId::Fast);
    break;
  case InitialPlacement::PreferredFast:
  case InitialPlacement::Interleaved: {
    if (Placement == InitialPlacement::PreferredFast)
      PT.mapRegionPreferred(Va, Obj->mappedBytes(), sim::TierId::Fast,
                            /*PreferHuge=*/true);
    else
      PT.mapRegionInterleaved(Va, Obj->mappedBytes(), /*PreferHuge=*/true);
    // Record per-chunk tiers from the resulting mapping. Chunks of mixed
    // pages are attributed to their first page's tier; the access
    // engine's chunk-granular attribution is approximate for these
    // system policies, which do not maintain ATMem's chunk/page
    // alignment invariant.
    for (uint32_t C = 0; C < Obj->numChunks(); ++C) {
      auto [Begin, End] = Obj->rangeBytes({C, 1});
      (void)End;
      Obj->setChunkTier(C, PT.tierOf(Va + Begin));
    }
    break;
  }
  }
  DataObject *Ref = Obj.get();
  Objects.push_back(std::move(Obj));
  rebuildAttributionIndex();
  return Ref;
}

void DataObjectRegistry::destroy(ObjectId Id) {
  if (Id >= Objects.size() || !Objects[Id])
    reportFatalError("destroy of unknown data object");
  DataObject &Obj = *Objects[Id];
  M.pageTable().unmapRegion(Obj.va(), Obj.mappedBytes());
  Objects[Id].reset();
  rebuildAttributionIndex();
}

void DataObjectRegistry::rebuildAttributionIndex() {
  AttrIndex.clear();
  for (const auto &Obj : Objects)
    if (Obj)
      AttrIndex.push_back({Obj->va(), Obj->va() + Obj->mappedBytes(),
                           Obj->id(), Obj->chunkShift()});
  // The bump allocator hands out ascending, disjoint ranges, so the
  // registration-order walk above is already sorted; keep the sort as a
  // guard for any future address-space policy.
  std::sort(AttrIndex.begin(), AttrIndex.end(),
            [](const AttrInterval &A, const AttrInterval &B) {
              return A.Begin < B.Begin;
            });
  ++AttrIndexVersion;
}

bool DataObjectRegistry::attributeWithIndex(const AttrInterval *Index,
                                            size_t Count, uint64_t Va,
                                            Attribution &Out,
                                            AttributionHint &Hint) {
  const AttrInterval *Iv = nullptr;
  if (Hint.Slot < Count) {
    const AttrInterval &Cand = Index[Hint.Slot];
    if (Va >= Cand.Begin && Va < Cand.End)
      Iv = &Cand;
  }
  if (!Iv) {
    const AttrInterval *It = std::upper_bound(
        Index, Index + Count, Va,
        [](uint64_t V, const AttrInterval &I) { return V < I.Begin; });
    if (It == Index)
      return false;
    --It;
    if (Va >= It->End)
      return false;
    Iv = It;
    Hint.Slot = static_cast<uint32_t>(It - Index);
  }
  Out.Object = Iv->Object;
  Out.Chunk = static_cast<uint32_t>((Va - Iv->Begin) >> Iv->ChunkShift);
  return true;
}

bool DataObjectRegistry::attributeIndexed(uint64_t Va, Attribution &Out,
                                          AttributionHint &Hint) const {
  return attributeWithIndex(AttrIndex.data(), AttrIndex.size(), Va, Out,
                            Hint);
}

bool DataObjectRegistry::attribute(uint64_t Va, Attribution &Out) const {
  // Registration counts are small (tens of objects); a linear scan is
  // simpler than maintaining a sorted index and never shows up in
  // profiles because attribution runs only on sampled misses.
  for (const auto &Obj : Objects) {
    if (!Obj)
      continue;
    if (Va >= Obj->va() && Va < Obj->va() + Obj->mappedBytes()) {
      Out.Object = Obj->id();
      Out.Chunk = Obj->chunkOf(Va - Obj->va());
      return true;
    }
  }
  return false;
}

DataObject &DataObjectRegistry::object(ObjectId Id) {
  if (Id >= Objects.size() || !Objects[Id])
    reportFatalError("lookup of unknown data object");
  return *Objects[Id];
}

const DataObject &DataObjectRegistry::object(ObjectId Id) const {
  if (Id >= Objects.size() || !Objects[Id])
    reportFatalError("lookup of unknown data object");
  return *Objects[Id];
}

std::vector<DataObject *> DataObjectRegistry::liveObjects() {
  std::vector<DataObject *> Live;
  for (auto &Obj : Objects)
    if (Obj)
      Live.push_back(Obj.get());
  return Live;
}

std::vector<const DataObject *> DataObjectRegistry::liveObjects() const {
  std::vector<const DataObject *> Live;
  for (const auto &Obj : Objects)
    if (Obj)
      Live.push_back(Obj.get());
  return Live;
}

uint64_t DataObjectRegistry::totalMappedBytes() const {
  uint64_t Total = 0;
  for (const auto &Obj : Objects)
    if (Obj)
      Total += Obj->mappedBytes();
  return Total;
}

uint64_t DataObjectRegistry::totalBytesOn(sim::TierId Tier) const {
  uint64_t Total = 0;
  for (const auto &Obj : Objects)
    if (Obj)
      Total += Obj->bytesOn(Tier);
  return Total;
}
