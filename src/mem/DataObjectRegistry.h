//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of all live data objects. Owns the objects, assigns their
/// simulated virtual ranges, maps them on the machine under a chosen
/// initial tier, and resolves sampled addresses back to (object, chunk)
/// pairs for the profiler.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_MEM_DATAOBJECTREGISTRY_H
#define ATMEM_MEM_DATAOBJECTREGISTRY_H

#include "mem/AddressSpace.h"
#include "mem/DataObject.h"
#include "sim/Machine.h"

#include <memory>
#include <string>
#include <vector>

namespace atmem {
namespace mem {

/// Where a sampled address landed.
struct Attribution {
  ObjectId Object = 0;
  uint32_t Chunk = 0;
};

/// Caller-owned memo for attributeIndexed(): remembers which interval the
/// last address landed in. Sampled misses are heavily clustered by object,
/// so the memo turns most attributions into a bounds check. Each
/// attributing thread owns its own hint — the registry never writes shared
/// state on lookups. Padded to a cache line so per-thread hints packed in
/// an array don't false-share.
struct alignas(64) AttributionHint {
  uint32_t Slot = ~0u;
};

/// Initial placement policy for a new registration.
enum class InitialPlacement {
  Slow,          ///< Everything on the large-capacity tier (baseline).
  Fast,          ///< Everything on the fast tier (the paper's ideal case).
  PreferredFast, ///< numactl -p model: fast until full, then overflow.
  Interleaved,   ///< numactl -i model: pages alternate between tiers.
};

/// Creates, maps, looks up, and destroys data objects on one machine.
class DataObjectRegistry {
public:
  /// One live object's address range, denormalized for attribution.
  /// Public so NUMA-sharded drains can keep node-local replicas of the
  /// index (attributeWithIndex) instead of pulling every lookup through
  /// one socket's cache lines.
  struct AttrInterval {
    uint64_t Begin = 0; ///< Object VA.
    uint64_t End = 0;   ///< Object VA + mapped bytes.
    ObjectId Object = 0;
    uint32_t ChunkShift = 0;
  };

  explicit DataObjectRegistry(sim::Machine &M) : M(M) {}

  /// Registers an object of \p SizeBytes named \p Name. Chunk size is
  /// chosen adaptively unless \p ChunkBytesOverride is non-zero. The
  /// backing pages are mapped per \p Placement. Aborts when the initial
  /// tier cannot hold the object; use tryCreate() to handle that case.
  DataObject &create(const std::string &Name, uint64_t SizeBytes,
                     InitialPlacement Placement,
                     uint64_t ChunkBytesOverride = 0);

  /// Like create(), but returns nullptr (registering nothing) when the
  /// initial tier lacks capacity or the `addrspace.alloc` fault site
  /// fires. The Slow/Fast placements are all-or-nothing; the Preferred/
  /// Interleaved policies overflow instead of failing.
  DataObject *tryCreate(const std::string &Name, uint64_t SizeBytes,
                        InitialPlacement Placement,
                        uint64_t ChunkBytesOverride = 0);

  /// Unmaps and destroys the object identified by \p Id.
  void destroy(ObjectId Id);

  /// Resolves a simulated virtual address to its object and chunk.
  /// Returns false for addresses outside every live object. This is the
  /// linear reference walk; the batched pipeline uses attributeIndexed(),
  /// which returns identical results (objects never overlap).
  bool attribute(uint64_t Va, Attribution &Out) const;

  /// O(log objects) attribution over a sorted interval index that is
  /// rebuilt on create/destroy, with an O(1) last-hit fast path through
  /// \p Hint. Safe to call concurrently from many threads (each with its
  /// own hint) as long as no object is created or destroyed meanwhile.
  bool attributeIndexed(uint64_t Va, Attribution &Out,
                        AttributionHint &Hint) const;

  /// attributeIndexed() against a caller-supplied copy of the interval
  /// index. Per-node replicas of the index (copied while the registry is
  /// quiescent, validated via attributionIndexVersion()) give identical
  /// results — the lookup touches only \p Index and \p Hint.
  static bool attributeWithIndex(const AttrInterval *Index, size_t Count,
                                 uint64_t Va, Attribution &Out,
                                 AttributionHint &Hint);

  /// \name Attribution-index snapshot access
  /// The sorted interval index and its rebuild count. The version bumps
  /// on every create/destroy, so replica holders can revalidate with one
  /// integer compare; the span stays valid (and the version stable) while
  /// no object is created or destroyed — the same quiescence
  /// attributeIndexed() already requires.
  ///@{
  uint64_t attributionIndexVersion() const { return AttrIndexVersion; }
  const std::vector<AttrInterval> &attributionIndex() const {
    return AttrIndex;
  }
  ///@}

  DataObject &object(ObjectId Id);
  const DataObject &object(ObjectId Id) const;

  /// All live objects, in registration order.
  std::vector<DataObject *> liveObjects();
  std::vector<const DataObject *> liveObjects() const;

  /// Total mapped bytes across live objects.
  uint64_t totalMappedBytes() const;

  /// Bytes of live objects whose chunks sit on \p Tier.
  uint64_t totalBytesOn(sim::TierId Tier) const;

  sim::Machine &machine() { return M; }
  const sim::Machine &machine() const { return M; }

  /// Reserves a scratch virtual range (e.g. for a migration staging
  /// buffer) from the same address space as the data objects, so scratch
  /// mappings never collide with object mappings in the shared page table.
  uint64_t reserveScratchVa(uint64_t SizeBytes) {
    return Space.reserve(SizeBytes);
  }

private:
  void rebuildAttributionIndex();

  sim::Machine &M;
  AddressSpace Space;
  /// Index = ObjectId; nullptr for destroyed objects.
  std::vector<std::unique_ptr<DataObject>> Objects;
  /// Live-object ranges sorted by Begin (ranges are disjoint — the
  /// address space never reuses or overlaps allocations).
  std::vector<AttrInterval> AttrIndex;
  /// Bumped on every rebuild; lets replicas revalidate cheaply.
  uint64_t AttrIndexVersion = 0;
};

} // namespace mem
} // namespace atmem

#endif // ATMEM_MEM_DATAOBJECTREGISTRY_H
