#include "mem/MbindMigrator.h"

#include "fault/FaultInjection.h"
#include "obs/Telemetry.h"
#include "sim/Machine.h"

using namespace atmem;
using namespace atmem::mem;

namespace {

fault::Site MovePageFault("mbind.move_page");

} // namespace

MigrationStatus MbindMigrator::migrate(DataObject &Obj,
                                       const std::vector<ChunkRange> &Ranges,
                                       sim::TierId Target,
                                       MigrationResult &Result) {
  sim::Machine &M = Registry.machine();
  sim::PageTable &PT = M.pageTable();
  const sim::MigrationCostModel &Cost = M.migrationModel();

  uint64_t TotalBytesMoved = 0;
  for (const ChunkRange &Range : Ranges) {
    auto [Begin, End] = Obj.rangeBytes(Range);
    if (Begin >= End)
      continue;
    sim::TierId Source = Obj.chunkTier(Range.FirstChunk);

    uint64_t PagesMoved = 0;
    uint64_t Splits = 0;
    bool Failed = false;
    for (uint64_t Off = Begin; Off < End; Off += sim::SmallPageBytes) {
      bool Split = false;
      if (MovePageFault.shouldFail() ||
          !PT.movePage(Obj.va() + Off, Target, &Split)) {
        Failed = true;
        break;
      }
      if (Split)
        ++Splits;
      ++PagesMoved;
    }
    // The host bytes never relocate (virtual contents are unchanged by a
    // physical move); only the mapping and the cost change.

    uint64_t BytesMoved = PagesMoved * sim::SmallPageBytes;
    TotalBytesMoved += BytesMoved;
    sim::MigrationWork Work;
    Work.Bytes = BytesMoved;
    Work.PtesTouched = PagesMoved;
    Work.Source = Source;
    Work.Target = Target;
    Result.SimSeconds +=
        Cost.mbindSeconds(Work) + M.config().Migration.MbindPerCallSec;
    Result.BytesMoved += BytesMoved;
    Result.PtesTouched += PagesMoved;
    Result.HugePagesSplit += Splits;
    Result.Ranges += 1;

    if (obs::enabled()) {
      static obs::Counter Pages("mbind.pages_moved");
      static obs::Counter HugeSplits("mbind.huge_pages_split");
      static obs::Counter Failures("mbind.move_failures");
      Pages.add(PagesMoved);
      HugeSplits.add(Splits);
      if (Failed)
        Failures.add(1);
    }

    // Record per-chunk tiers for every fully moved chunk.
    for (uint32_t C = Range.FirstChunk;
         C < Range.FirstChunk + Range.NumChunks; ++C) {
      auto [CBegin, CEnd] = Obj.rangeBytes({C, 1});
      if (CEnd <= Begin + BytesMoved)
        Obj.setChunkTier(C, Target);
    }
    // The real service stops at the first page it cannot move; progress up
    // to here is kept (pages do not move back).
    if (Failed)
      return TotalBytesMoved > 0 ? MigrationStatus::Degraded
                                 : MigrationStatus::Failed;
  }
  return MigrationStatus::Success;
}
