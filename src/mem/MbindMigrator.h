//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model of the mbind/libnuma system-service migration path the paper
/// compares against (Section 2.3). The service is single-threaded and
/// blocking, moves memory page by page with per-page kernel bookkeeping
/// (rmap walk, locking, TLB shootdown), and splits any transparent huge
/// page it partially moves — permanently fragmenting the mapping and
/// inflating post-migration TLB misses (Table 4).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_MEM_MBINDMIGRATOR_H
#define ATMEM_MEM_MBINDMIGRATOR_H

#include "mem/DataObjectRegistry.h"
#include "mem/Migrator.h"

namespace atmem {
namespace mem {

/// System-service (mbind-style) migrator.
class MbindMigrator : public Migrator {
public:
  explicit MbindMigrator(DataObjectRegistry &Registry) : Registry(Registry) {}

  std::string name() const override { return "mbind"; }

  MigrationStatus migrate(DataObject &Obj,
                          const std::vector<ChunkRange> &Ranges,
                          sim::TierId Target,
                          MigrationResult &Result) override;

private:
  DataObjectRegistry &Registry;
};

} // namespace mem
} // namespace atmem

#endif // ATMEM_MEM_MBINDMIGRATOR_H
