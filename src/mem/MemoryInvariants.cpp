#include "mem/MemoryInvariants.h"

#include "mem/DataObjectRegistry.h"
#include "sim/Machine.h"

#include <unordered_set>

using namespace atmem;
using namespace atmem::mem;

namespace {

bool fail(std::string *Why, const std::string &Message) {
  if (Why)
    *Why = Message;
  return false;
}

const char *tierLabel(sim::TierId Tier) {
  return Tier == sim::TierId::Fast ? "fast" : "slow";
}

/// Frame exactness for one tier: allocator self-consistency, then the
/// page-table-mapped frames and the free-list frames must partition
/// [0, nextFrame()) with no overlap and no gap.
bool checkTierFrames(const sim::PageTable &PT, sim::TierId Tier,
                     std::string *Why) {
  const sim::FrameAllocator &Alloc = PT.allocator(Tier);
  std::string AllocWhy;
  if (!Alloc.selfCheck(&AllocWhy))
    return fail(Why, "allocator self-check: " + AllocWhy);

  std::unordered_set<uint64_t> Owned;
  uint64_t MappedBytes = 0;
  bool Ok = true;
  std::string Local;
  PT.forEachMapping([&](const sim::Translation &T) {
    if (!Ok || T.Tier != Tier)
      return;
    MappedBytes += T.PageBytes;
    for (uint64_t F = T.FrameBase;
         F < T.FrameBase + T.PageBytes / sim::SmallPageBytes; ++F) {
      if (F >= Alloc.nextFrame()) {
        Local = "mapped frame beyond bump pointer on tier " +
                std::string(tierLabel(Tier));
        Ok = false;
        return;
      }
      if (!Owned.insert(F).second) {
        Local = "frame " + std::to_string(F) + " mapped twice on tier " +
                std::string(tierLabel(Tier));
        Ok = false;
        return;
      }
    }
  });
  if (!Ok)
    return fail(Why, Local);

  if (MappedBytes != Alloc.usedBytes())
    return fail(Why, "tier " + std::string(tierLabel(Tier)) + ": page table "
                "maps " + std::to_string(MappedBytes) + " bytes but "
                "allocator has " + std::to_string(Alloc.usedBytes()) +
                " in use (leaked or double-freed frames)");
  if (MappedBytes != PT.mappedBytesOn(Tier))
    return fail(Why, "tier " + std::string(tierLabel(Tier)) +
                ": MappedBytes accounting drifted from live mappings");

  for (uint64_t F : Alloc.freeSmallFrames())
    if (!Owned.insert(F).second)
      return fail(Why, "frame " + std::to_string(F) + " both mapped and "
                  "free on tier " + tierLabel(Tier));
  for (uint64_t Base : Alloc.freeHugeFrames())
    for (uint64_t I = 0; I < sim::FramesPerHugeBlock; ++I)
      if (!Owned.insert(Base + I).second)
        return fail(Why, "frame " + std::to_string(Base + I) + " both "
                    "mapped and free on tier " + tierLabel(Tier));
  if (Owned.size() != Alloc.nextFrame())
    return fail(Why, "tier " + std::string(tierLabel(Tier)) + ": " +
                std::to_string(Alloc.nextFrame() - Owned.size()) +
                " touched frames neither mapped nor free (leak)");
  return true;
}

/// ATMem chunk alignment: every page of every chunk is mapped on the
/// chunk's recorded tier.
bool checkChunkTiers(const DataObjectRegistry &Registry, std::string *Why) {
  const sim::PageTable &PT = Registry.machine().pageTable();
  for (const DataObject *Obj : Registry.liveObjects()) {
    for (uint32_t C = 0; C < Obj->numChunks(); ++C) {
      auto [Begin, End] = Obj->rangeBytes({C, 1});
      sim::TierId Expect = Obj->chunkTier(C);
      for (uint64_t Off = Begin; Off < End; Off += sim::SmallPageBytes) {
        sim::Translation T;
        if (!PT.translate(Obj->va() + Off, T))
          return fail(Why, "object '" + Obj->name() + "' chunk " +
                      std::to_string(C) + " has an unmapped page");
        if (T.Tier != Expect)
          return fail(Why, "object '" + Obj->name() + "' chunk " +
                      std::to_string(C) + " recorded on " +
                      tierLabel(Expect) + " but a page sits on " +
                      tierLabel(T.Tier));
      }
    }
  }
  for (sim::TierId Tier : {sim::TierId::Fast, sim::TierId::Slow}) {
    uint64_t ObjectBytes = Registry.totalBytesOn(Tier);
    uint64_t TableBytes = PT.mappedBytesOn(Tier);
    if (ObjectBytes != TableBytes)
      return fail(Why, "tier " + std::string(tierLabel(Tier)) + ": objects "
                  "account " + std::to_string(ObjectBytes) + " bytes but "
                  "the page table maps " + std::to_string(TableBytes));
  }
  return true;
}

} // namespace

bool mem::checkMemoryInvariants(const DataObjectRegistry &Registry,
                                InvariantLevel Level, std::string *Why) {
  const sim::PageTable &PT = Registry.machine().pageTable();
  for (sim::TierId Tier : {sim::TierId::Fast, sim::TierId::Slow})
    if (!checkTierFrames(PT, Tier, Why))
      return false;
  if (Level == InvariantLevel::Full && !checkChunkTiers(Registry, Why))
    return false;
  return true;
}
