//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-layer consistency checker over the simulated memory system. After
/// any sequence of migrations — including ones that failed, rolled back,
/// or were injected with faults — the PageTable, the per-tier
/// FrameAllocators, and the DataObject tier accounting must still agree.
/// The fault-injection tests call this after every faulted pipeline run to
/// prove that graceful degradation never leaks or double-frees a simulated
/// frame.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_MEM_MEMORYINVARIANTS_H
#define ATMEM_MEM_MEMORYINVARIANTS_H

#include <string>

namespace atmem {
namespace mem {

class DataObjectRegistry;

/// How deep the consistency check goes.
enum class InvariantLevel {
  /// Frame exactness only: each allocator's internal identity holds, and
  /// per tier the page-table-mapped frames plus the free-list frames
  /// partition the touched frame range exactly — no frame leaked, none
  /// owned twice. Valid in every state, including after partial
  /// mbind-style moves.
  Frames,
  /// Frames plus ATMem's chunk alignment invariant: every page of every
  /// chunk sits on the chunk's recorded tier, and per-tier object byte
  /// totals equal the page table's mapped bytes. Only meaningful when all
  /// placements are whole-chunk (Slow/Fast initial placement plus
  /// atmem-mechanism migrations); partial mbind moves legitimately leave
  /// mixed chunks, so use Frames there.
  Full,
};

/// Verifies the invariants of \p Level over \p Registry's machine and live
/// objects. Returns false on the first violation, describing it in \p Why
/// when non-null. Expects a quiescent system (no staging buffer mapped).
bool checkMemoryInvariants(const DataObjectRegistry &Registry,
                           InvariantLevel Level = InvariantLevel::Full,
                           std::string *Why = nullptr);

} // namespace mem
} // namespace atmem

#endif // ATMEM_MEM_MEMORYINVARIANTS_H
