//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Migration mechanism interface. Two implementations reproduce the
/// comparison of the paper's Section 7.3 / Table 4:
///
///  - AtmemMigrator: the paper's multi-stage multi-threaded application
///    level mechanism (stage to a buffer on the target tier, remap the
///    virtual range onto fresh target frames, copy back);
///  - MbindMigrator: the mbind/libnuma system service (single-threaded,
///    page-by-page, huge-page splitting).
///
/// Both move the *real* host bytes (so tests can verify integrity) and
/// update the simulated page table; reported times come from the machine's
/// MigrationCostModel.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_MEM_MIGRATOR_H
#define ATMEM_MEM_MIGRATOR_H

#include "mem/DataObject.h"
#include "sim/MemoryTier.h"

#include <string>
#include <vector>

namespace atmem {
namespace mem {

/// How a migrate() call ended. Anything other than Success means some
/// requested chunks stayed on their source tier; the counters in
/// MigrationResult say how far the call got.
enum class MigrationStatus {
  Success,   ///< Every requested range committed to the target tier.
  Retryable, ///< A transient mid-stage failure was rolled back; earlier
             ///< ranges committed, the faulted range is intact on its
             ///< source tier, and an immediate retry may succeed.
  Degraded,  ///< Target capacity was insufficient; the mechanism moved
             ///< what it could (possibly nothing) and retrying without
             ///< freeing capacity will not help.
  Failed,    ///< No progress was made and none is possible.
};

/// Lower-case status name for logs and test diagnostics.
const char *migrationStatusName(MigrationStatus Status);

/// Outcome of one migrate() call.
struct MigrationResult {
  uint64_t BytesMoved = 0;     ///< Payload bytes relocated across tiers.
  uint64_t PtesTouched = 0;    ///< Page-table entries written.
  uint64_t HugePagesSplit = 0; ///< Huge mappings fragmented (mbind only).
  uint64_t Ranges = 0;         ///< Contiguous ranges processed.
  double SimSeconds = 0.0;     ///< Modelled wall time of the migration.

  MigrationResult &operator+=(const MigrationResult &Other) {
    BytesMoved += Other.BytesMoved;
    PtesTouched += Other.PtesTouched;
    HugePagesSplit += Other.HugePagesSplit;
    Ranges += Other.Ranges;
    SimSeconds += Other.SimSeconds;
    return *this;
  }
};

/// Abstract migration mechanism.
class Migrator {
public:
  virtual ~Migrator();

  /// Human-readable mechanism name for reports.
  virtual std::string name() const = 0;

  /// Moves the chunks of \p Obj covered by \p Ranges onto \p Target.
  /// Never aborts: capacity exhaustion and injected faults surface as a
  /// non-Success status. AtmemMigrator commits whole ranges atomically
  /// (a failed range rolls back to its source tier); MbindMigrator may
  /// leave a moved prefix (mirroring the partial semantics of the real
  /// service). \p Result accumulates (does not reset) counters.
  virtual MigrationStatus migrate(DataObject &Obj,
                                  const std::vector<ChunkRange> &Ranges,
                                  sim::TierId Target,
                                  MigrationResult &Result) = 0;

  /// Free bytes the mechanism needs on the target tier to migrate a plan
  /// of \p PayloadBytes total whose largest single range is
  /// \p MaxRangeBytes. The default assumes in-place page moves (payload
  /// only); AtmemMigrator adds staging headroom.
  virtual uint64_t capacityNeeded(uint64_t PayloadBytes,
                                  uint64_t MaxRangeBytes) const;
};

} // namespace mem
} // namespace atmem

#endif // ATMEM_MEM_MIGRATOR_H
