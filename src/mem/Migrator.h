//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Migration mechanism interface. Two implementations reproduce the
/// comparison of the paper's Section 7.3 / Table 4:
///
///  - AtmemMigrator: the paper's multi-stage multi-threaded application
///    level mechanism (stage to a buffer on the target tier, remap the
///    virtual range onto fresh target frames, copy back);
///  - MbindMigrator: the mbind/libnuma system service (single-threaded,
///    page-by-page, huge-page splitting).
///
/// Both move the *real* host bytes (so tests can verify integrity) and
/// update the simulated page table; reported times come from the machine's
/// MigrationCostModel.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_MEM_MIGRATOR_H
#define ATMEM_MEM_MIGRATOR_H

#include "mem/DataObject.h"
#include "sim/MemoryTier.h"

#include <string>
#include <vector>

namespace atmem {
namespace mem {

/// Outcome of one migrate() call.
struct MigrationResult {
  uint64_t BytesMoved = 0;     ///< Payload bytes relocated across tiers.
  uint64_t PtesTouched = 0;    ///< Page-table entries written.
  uint64_t HugePagesSplit = 0; ///< Huge mappings fragmented (mbind only).
  uint64_t Ranges = 0;         ///< Contiguous ranges processed.
  double SimSeconds = 0.0;     ///< Modelled wall time of the migration.

  MigrationResult &operator+=(const MigrationResult &Other) {
    BytesMoved += Other.BytesMoved;
    PtesTouched += Other.PtesTouched;
    HugePagesSplit += Other.HugePagesSplit;
    Ranges += Other.Ranges;
    SimSeconds += Other.SimSeconds;
    return *this;
  }
};

/// Abstract migration mechanism.
class Migrator {
public:
  virtual ~Migrator();

  /// Human-readable mechanism name for reports.
  virtual std::string name() const = 0;

  /// Moves the chunks of \p Obj covered by \p Ranges onto \p Target.
  /// Returns false when target capacity was insufficient; AtmemMigrator
  /// leaves the object untouched in that case, MbindMigrator may have
  /// moved a prefix (mirroring the partial semantics of the real service).
  /// \p Result accumulates (does not reset) counters.
  virtual bool migrate(DataObject &Obj, const std::vector<ChunkRange> &Ranges,
                       sim::TierId Target, MigrationResult &Result) = 0;
};

} // namespace mem
} // namespace atmem

#endif // ATMEM_MEM_MIGRATOR_H
