#include "mem/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace atmem;
using namespace atmem::mem;

ThreadPool::ThreadPool(uint32_t Threads) {
  uint32_t Count = std::max<uint32_t>(Threads, 1);
  Workers.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkReady.wait(Lock, [this] { return ShuttingDown || !Tasks.empty(); });
      if (ShuttingDown && Tasks.empty())
        return;
      Task = std::move(Tasks.front());
      Tasks.pop();
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      assert(Pending > 0 && "task accounting out of sync");
      --Pending;
    }
    WorkDone.notify_all();
  }
}

void ThreadPool::parallelFor(
    uint64_t Begin, uint64_t End,
    const std::function<void(uint64_t, uint64_t)> &Body) {
  if (Begin >= End)
    return;
  uint64_t Total = End - Begin;
  uint64_t Slices = std::min<uint64_t>(Workers.size(), Total);
  uint64_t PerSlice = (Total + Slices - 1) / Slices;

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (uint64_t S = 0; S < Slices; ++S) {
      uint64_t SliceBegin = Begin + S * PerSlice;
      uint64_t SliceEnd = std::min(SliceBegin + PerSlice, End);
      if (SliceBegin >= SliceEnd)
        break;
      ++Pending;
      Tasks.push([&Body, SliceBegin, SliceEnd] { Body(SliceBegin, SliceEnd); });
    }
  }
  WorkReady.notify_all();
  std::unique_lock<std::mutex> Lock(Mutex);
  WorkDone.wait(Lock, [this] { return Pending == 0; });
}
