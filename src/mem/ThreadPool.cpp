#include "mem/ThreadPool.h"

#include "fault/FaultInjection.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <system_error>

using namespace atmem;
using namespace atmem::mem;

namespace {

fault::Site SpawnFault("threadpool.spawn");

} // namespace

ThreadPool::ThreadPool(uint32_t Threads, WorkerInit Init) {
  uint32_t Count = std::max<uint32_t>(Threads, 1);
  Workers.reserve(Count);
  for (uint32_t I = 0; I < Count; ++I) {
    // A failed spawn (injected, or real resource exhaustion) degrades the
    // pool rather than killing the process; parallelFor falls back to
    // inline execution when no worker came up at all.
    if (SpawnFault.shouldFail())
      continue;
    try {
      // The init hook runs on the worker itself (affinity is per-thread)
      // before the worker becomes eligible for tasks.
      Workers.emplace_back([this, I, Init] {
        if (Init)
          Init(I);
        workerLoop();
      });
    } catch (const std::system_error &) {
      break;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkReady.wait(Lock, [this] { return ShuttingDown || !Tasks.empty(); });
      if (ShuttingDown && Tasks.empty())
        return;
      Task = std::move(Tasks.front());
      Tasks.pop();
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      assert(Pending > 0 && "task accounting out of sync");
      --Pending;
    }
    WorkDone.notify_all();
  }
}

void ThreadPool::parallelForThreaded(uint64_t Begin, uint64_t End,
                                     uint64_t ChunkSize,
                                     const ThreadedBody &Body) {
  if (Begin >= End)
    return;
  if (Workers.empty()) {
    Body(0, Begin, End);
    return;
  }
  uint64_t Total = End - Begin;
  if (ChunkSize == 0)
    ChunkSize = std::max<uint64_t>(Total / (Workers.size() * 8), 1);
  uint64_t NumChunks = (Total + ChunkSize - 1) / ChunkSize;
  // One participant task per worker, capped by the chunk count so tiny
  // ranges don't pay wakeups for participants with nothing to grab.
  auto Participants = static_cast<uint32_t>(
      std::min<uint64_t>(Workers.size(), NumChunks));

  // The grab cursor lives on this stack frame; the call blocks until all
  // participants drain, so the reference captures below stay valid.
  std::atomic<uint64_t> NextChunk{0};
  auto Run = [&, ChunkSize](uint32_t Index) {
    for (;;) {
      uint64_t Chunk = NextChunk.fetch_add(1, std::memory_order_relaxed);
      if (Chunk >= NumChunks)
        return;
      uint64_t ChunkBegin = Begin + Chunk * ChunkSize;
      uint64_t ChunkEnd = std::min(ChunkBegin + ChunkSize, End);
      Body(Index, ChunkBegin, ChunkEnd);
    }
  };

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (uint32_t P = 0; P < Participants; ++P) {
      ++Pending;
      Tasks.push([&Run, P] { Run(P); });
    }
  }
  WorkReady.notify_all();
  std::unique_lock<std::mutex> Lock(Mutex);
  WorkDone.wait(Lock, [this] { return Pending == 0; });
}

void ThreadPool::parallelFor(
    uint64_t Begin, uint64_t End,
    const std::function<void(uint64_t, uint64_t)> &Body, uint64_t ChunkSize) {
  parallelForThreaded(Begin, End, ChunkSize,
                      [&Body](uint32_t, uint64_t ChunkBegin,
                              uint64_t ChunkEnd) { Body(ChunkBegin, ChunkEnd); });
}
