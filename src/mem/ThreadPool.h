//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking thread pool used by the ATMem migrator for its
/// multi-threaded staging copies (paper Section 4.4). The pool is real —
/// the staged copies move real bytes through real threads — while the
/// *reported* migration time comes from the MigrationCostModel so results
/// do not depend on the host machine.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_MEM_THREADPOOL_H
#define ATMEM_MEM_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace atmem {
namespace mem {

/// Fixed-size worker pool with a blocking parallel-for primitive.
class ThreadPool {
public:
  /// Spawns \p Threads workers (at least one).
  explicit ThreadPool(uint32_t Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  uint32_t threadCount() const { return static_cast<uint32_t>(Workers.size()); }

  /// Splits [Begin, End) into one contiguous slice per worker and runs
  /// \p Body(SliceBegin, SliceEnd) on each concurrently. Blocks until all
  /// slices complete.
  void parallelFor(uint64_t Begin, uint64_t End,
                   const std::function<void(uint64_t, uint64_t)> &Body);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable WorkDone;
  std::queue<std::function<void()>> Tasks;
  uint32_t Pending = 0;
  bool ShuttingDown = false;
};

} // namespace mem
} // namespace atmem

#endif // ATMEM_MEM_THREADPOOL_H
