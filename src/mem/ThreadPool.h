//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking thread pool used by the ATMem migrator for its
/// multi-threaded staging copies (paper Section 4.4) and by the parallel
/// tracked-execution engine for kernel iterations. The pool is real —
/// the staged copies move real bytes through real threads — while the
/// *reported* migration time comes from the MigrationCostModel so results
/// do not depend on the host machine.
///
/// Work distribution is chunked dynamic scheduling: a parallel-for carves
/// [Begin, End) into fixed-size chunks that participants grab with one
/// atomic fetch-add each. Skewed iterations (a hub vertex's huge adjacency
/// list) therefore cannot straggle an entire slice the way the previous
/// one-contiguous-slice-per-worker split could.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_MEM_THREADPOOL_H
#define ATMEM_MEM_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace atmem {
namespace mem {

/// Fixed-size worker pool with blocking parallel-for primitives.
class ThreadPool {
public:
  /// Body form that also receives the participant index; accesses made by
  /// the body can be keyed on it (one simulation shard per participant).
  using ThreadedBody = std::function<void(uint32_t, uint64_t, uint64_t)>;

  /// Per-worker setup hook, run once on each worker's own thread (with its
  /// worker index) before it takes any task. The topology-sharded runtime
  /// pins worker I to its shard's home NUMA node here so everything the
  /// worker first-touches — miss buffers, recycle pools, index replicas —
  /// is allocated node-locally. Must not throw.
  using WorkerInit = std::function<void(uint32_t)>;

  /// Spawns \p Threads workers (at least one), each running \p Init first.
  explicit ThreadPool(uint32_t Threads, WorkerInit Init = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  uint32_t threadCount() const { return static_cast<uint32_t>(Workers.size()); }

  /// Runs \p Body(ChunkBegin, ChunkEnd) over [Begin, End) split into
  /// dynamically scheduled chunks of at most \p ChunkSize (0 picks a size
  /// aimed at ~8 chunks per worker). Blocks until the range completes.
  void parallelFor(uint64_t Begin, uint64_t End,
                   const std::function<void(uint64_t, uint64_t)> &Body,
                   uint64_t ChunkSize = 0);

  /// Like parallelFor, but \p Body also receives a stable participant
  /// index in [0, threadCount()): at most threadCount() participants run
  /// concurrently and no index is ever active on two chunks at once, so a
  /// body may use the index to address un-synchronized per-participant
  /// state. Chunks are grabbed dynamically; which chunks land on which
  /// index is scheduling-dependent.
  void parallelForThreaded(uint64_t Begin, uint64_t End, uint64_t ChunkSize,
                           const ThreadedBody &Body);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable WorkDone;
  std::queue<std::function<void()>> Tasks;
  uint32_t Pending = 0;
  bool ShuttingDown = false;
};

} // namespace mem
} // namespace atmem

#endif // ATMEM_MEM_THREADPOOL_H
