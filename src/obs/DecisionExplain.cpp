#include "obs/DecisionExplain.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>

using namespace atmem;
using namespace atmem::obs;

namespace {

std::string fmt(const char *Format, ...)
    __attribute__((format(printf, 1, 2)));

std::string fmt(const char *Format, ...) {
  char Buf[512];
  va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Buf, sizeof(Buf), Format, Args);
  va_end(Args);
  return Buf;
}

/// The ObjectEpoch record of \p Object (by name) in \p Epoch, or the one
/// from the last epoch the object appears in when Epoch is -1.
const ObjectEpochRecord *findObjectEpoch(const DecisionArtifact &A,
                                         const std::string &Object,
                                         int64_t Epoch, bool *NameKnown) {
  const ObjectEpochRecord *Best = nullptr;
  if (NameKnown)
    *NameKnown = false;
  for (const DecisionRecord &Rec : A.Records) {
    if (Rec.Kind != DecisionKind::ObjectEpoch)
      continue;
    if (A.name(Rec.Object.NameId) != Object)
      continue;
    if (NameKnown)
      *NameKnown = true;
    if (Epoch >= 0) {
      if (Rec.Object.Epoch == static_cast<uint64_t>(Epoch))
        return &Rec.Object;
    } else if (!Best || Rec.Object.Epoch >= Best->Epoch) {
      Best = &Rec.Object;
    }
  }
  return Epoch >= 0 ? nullptr : Best;
}

const ChunkDecisionRecord *findChunk(const DecisionArtifact &A,
                                     uint64_t Epoch, uint32_t Object,
                                     uint32_t Chunk) {
  for (const DecisionRecord &Rec : A.Records)
    if (Rec.Kind == DecisionKind::ChunkDecision &&
        Rec.Chunk.Epoch == Epoch && Rec.Chunk.Object == Object &&
        Rec.Chunk.Chunk == Chunk)
      return &Rec.Chunk;
  return nullptr;
}

char phaseChar(const MigrationEventRecord &R) {
  switch (R.Phase) {
  case DecisionPhase::Committed:
    return R.TargetFast ? '#' : 'v';
  case DecisionPhase::Skipped:
  case DecisionPhase::RolledBack:
    return 'x';
  case DecisionPhase::StagedAhead:
    return '>';
  default:
    return 0;
  }
}

int precedence(char C) {
  switch (C) {
  case 'x':
    return 7;
  case '#':
    return 6;
  case 'v':
    return 5;
  case '>':
    return 4;
  case 'p':
    return 3;
  case 'g':
    return 2;
  case 's':
    return 1;
  default:
    return 0;
  }
}

char chunkChar(const ChunkDecisionRecord &R) {
  if (R.Flags & DecisionChunkPromoted)
    return 'p';
  if (R.Flags & DecisionChunkGlobalRanked)
    return 'g';
  if (R.Flags & DecisionChunkSampledCritical)
    return 's';
  return '.';
}

/// Per-epoch selected / committed-fast chunk sets of every object, keyed
/// by object name — the comparable essence of a run for diffing.
struct PlacementMap {
  // (epoch, object name) -> chunk sets.
  std::map<std::pair<uint64_t, std::string>, std::set<uint32_t>> Selected;
  std::map<std::pair<uint64_t, std::string>, std::set<uint32_t>> Committed;
};

PlacementMap placementOf(const DecisionArtifact &A) {
  PlacementMap Map;
  // Object id -> name per epoch (ids may differ between runs; names are
  // the stable join key).
  std::map<std::pair<uint64_t, uint32_t>, std::string> IdName;
  for (const DecisionRecord &Rec : A.Records) {
    if (Rec.Kind == DecisionKind::ObjectEpoch) {
      IdName[{Rec.Object.Epoch, Rec.Object.Object}] =
          A.name(Rec.Object.NameId);
      // Materialize the key so objects with no selected chunks still
      // participate in the diff.
      Map.Selected[{Rec.Object.Epoch, A.name(Rec.Object.NameId)}];
    } else if (Rec.Kind == DecisionKind::ChunkDecision) {
      const ChunkDecisionRecord &R = Rec.Chunk;
      if (R.Flags != 0)
        Map.Selected[{R.Epoch, IdName[{R.Epoch, R.Object}]}].insert(
            R.Chunk);
    } else if (Rec.Kind == DecisionKind::MigrationEvent) {
      const MigrationEventRecord &R = Rec.Migration;
      if (R.Phase == DecisionPhase::Committed && R.TargetFast)
        for (uint32_t C = R.FirstChunk; C < R.FirstChunk + R.NumChunks;
             ++C)
          Map.Committed[{R.Epoch, IdName[{R.Epoch, R.Object}]}].insert(C);
    }
  }
  return Map;
}

std::string describeSetDiff(const std::set<uint32_t> &From,
                            const std::set<uint32_t> &To) {
  std::vector<uint32_t> Added, Removed;
  for (uint32_t C : To)
    if (!From.count(C))
      Added.push_back(C);
  for (uint32_t C : From)
    if (!To.count(C))
      Removed.push_back(C);
  auto preview = [](const std::vector<uint32_t> &Chunks) {
    std::string Out;
    for (size_t I = 0; I < Chunks.size() && I < 8; ++I)
      Out += (I ? "," : "") + std::to_string(Chunks[I]);
    if (Chunks.size() > 8)
      Out += ",...";
    return Out;
  };
  std::string Out;
  if (!Added.empty())
    Out += fmt("+%zu chunks only in B (%s)", Added.size(),
               preview(Added).c_str());
  if (!Removed.empty())
    Out += fmt("%s-%zu chunks only in A (%s)", Out.empty() ? "" : ", ",
               Removed.size(), preview(Removed).c_str());
  return Out;
}

} // namespace

bool obs::explainChunk(const DecisionArtifact &Artifact,
                       const WhyQuery &Query, std::string &Out,
                       std::string *Error) {
  bool NameKnown = false;
  const ObjectEpochRecord *Obj =
      findObjectEpoch(Artifact, Query.Object, Query.Epoch, &NameKnown);
  if (!Obj) {
    if (Error)
      *Error = NameKnown
                   ? "object '" + Query.Object + "' has no record in epoch " +
                         std::to_string(Query.Epoch)
                   : "object '" + Query.Object + "' never appears in the log";
    return false;
  }
  if (Query.Chunk >= Obj->NumChunks) {
    if (Error)
      *Error = "chunk " + std::to_string(Query.Chunk) +
               " out of range (object has " +
               std::to_string(Obj->NumChunks) + " chunks)";
    return false;
  }

  Out.clear();
  Out += fmt("object '%s' (id %u) chunk %u, epoch %" PRIu64 ":\n",
             Query.Object.c_str(), Obj->Object, Query.Chunk, Obj->Epoch);

  const ChunkDecisionRecord *Chunk =
      findChunk(Artifact, Obj->Epoch, Obj->Object, Query.Chunk);
  if (Chunk) {
    Out += fmt("  sampling: %" PRIu64 " samples (period %" PRIu64
               ") -> %.6g estimated misses over %" PRIu64 " B\n",
               Chunk->Samples, Obj->SamplePeriod, Chunk->EstimatedMisses,
               Obj->ChunkBytes);
    Out += fmt("  Eq.1 PR = %.6g misses/B\n", Chunk->Priority);
  } else {
    Out += "  sampling: no samples recorded (cold chunk)\n";
    Out += "  Eq.1 PR = 0\n";
  }
  Out += fmt("  Eq.2 theta = %.6g  [winner: %s]\n", Obj->Theta,
             thetaWinnerName(Obj->Winner));
  Out += fmt("      percentile term  = %.6g\n", Obj->ThetaPercentile);
  Out += fmt("      derivative cut   = %.6g\n", Obj->ThetaDerivative);
  Out += fmt("      noise floor      = %.6g\n", Obj->ThetaNoiseFloor);
  bool Sampled = Chunk && (Chunk->Flags & DecisionChunkSampledCritical);
  bool Global = Chunk && (Chunk->Flags & DecisionChunkGlobalRanked);
  bool Promoted = Chunk && (Chunk->Flags & DecisionChunkPromoted);
  if (Sampled)
    Out += "  Eq.3 PR > theta -> sampled critical (CAT = 1)\n";
  else if (Chunk)
    Out += "  Eq.3 PR <= theta -> not locally critical\n";
  else
    Out += "  Eq.3 no evidence -> not locally critical\n";
  Out += Global ? "  global ranking: pooled log-density cut flipped this "
                  "chunk critical\n"
                : "  global ranking: did not change this chunk\n";
  if (Obj->WeightRank != 0)
    Out += fmt("  Eq.4 weight W = %.6g (rank %u of %u weighted objects)\n",
               Obj->Weight, Obj->WeightRank, Obj->RankedObjects);
  else
    Out += "  Eq.4 weight W = 0 (no critical chunks; object unranked)\n";
  if (Obj->TrThreshold > 1.0)
    Out += fmt("  Eq.5 TR' = %.6g (clamped above 1: this object can never "
               "promote)\n",
               Obj->TrThreshold);
  else
    Out += fmt("  Eq.5 TR' = %.6g\n", Obj->TrThreshold);
  if (Promoted)
    Out += fmt("  tree: covering node TR = %.6g >= TR' -> promoted "
               "(estimated critical)\n",
               Chunk->NodeTreeRatio);
  else if (Chunk && Chunk->NodeTreeRatio > 0.0 && !Sampled && !Global)
    Out += fmt("  tree: deepest examined node TR = %.6g < TR' -> not "
               "promoted\n",
               Chunk->NodeTreeRatio);
  else if (Sampled || Global)
    Out += "  tree: chunk already critical; promotion not needed\n";
  else
    Out += "  tree: walk did not reach this chunk (no promotion)\n";

  // Migration lifecycle covering this chunk, in record order.
  bool AnyEvent = false;
  for (const DecisionRecord &Rec : Artifact.Records) {
    if (Rec.Kind != DecisionKind::MigrationEvent)
      continue;
    const MigrationEventRecord &R = Rec.Migration;
    if (R.Epoch != Obj->Epoch || R.Object != Obj->Object)
      continue;
    if (Query.Chunk < R.FirstChunk ||
        Query.Chunk >= R.FirstChunk + R.NumChunks)
      continue;
    if (!AnyEvent) {
      Out += "  migration:\n";
      AnyEvent = true;
    }
    Out += fmt("    %-11s chunks [%u,%u) -> %s", decisionPhaseName(R.Phase),
               R.FirstChunk, R.FirstChunk + R.NumChunks,
               R.TargetFast ? "fast" : "slow");
    if (R.FaultSiteNameId != 0)
      Out += fmt("  [fault site: %s]",
                 Artifact.name(R.FaultSiteNameId).c_str());
    if (R.Priority > 0.0)
      Out += fmt("  (priority %.6g)", R.Priority);
    Out += "\n";
  }
  if (!AnyEvent)
    Out += "  migration: no lifecycle events cover this chunk this epoch\n";

  // Lookahead provenance. A staged-ahead range is recorded in the epoch
  // whose trend predicted it; its commit (or cancellation) lands at the
  // *next* epoch's boundary, so answering "why was this chunk already in
  // the fast tier when the epoch began" takes stitching the two. Object
  // ids are stable across epochs within one run, so the earlier epoch's
  // events are matched by id.
  const MigrationEventRecord *Staged = nullptr;
  bool CommittedHere = false, CancelledHere = false;
  for (const DecisionRecord &Rec : Artifact.Records) {
    if (Rec.Kind != DecisionKind::MigrationEvent)
      continue;
    const MigrationEventRecord &R = Rec.Migration;
    if (R.Object != Obj->Object || Query.Chunk < R.FirstChunk ||
        Query.Chunk >= R.FirstChunk + R.NumChunks)
      continue;
    if (R.Phase == DecisionPhase::StagedAhead && R.Epoch < Obj->Epoch &&
        (!Staged || R.Epoch > Staged->Epoch))
      Staged = &R;
    if (R.Epoch == Obj->Epoch) {
      if (R.Phase == DecisionPhase::Committed && R.TargetFast)
        CommittedHere = true;
      if (R.Phase == DecisionPhase::PrefetchCancelled)
        CancelledHere = true;
    }
  }
  if (Staged && CommittedHere)
    Out += fmt("  lookahead: staged ahead in epoch %" PRIu64
               " (trend predicted next-epoch criticality); the overlapped "
               "copy ran during compute and this epoch's boundary paid only "
               "the remap — the chunk was already resident in the fast tier "
               "when the plan confirmed it\n",
               Staged->Epoch);
  else if (Staged && CancelledHere)
    Out += fmt("  lookahead: staged ahead in epoch %" PRIu64
               " but cancelled at this boundary (fresh plan did not confirm "
               "the prediction, or the copy faulted); placement fell back to "
               "the demand path unchanged\n",
               Staged->Epoch);
  return true;
}

std::string obs::renderHeatmap(const DecisionArtifact &Artifact,
                               const std::string &Object,
                               uint32_t MaxColumns) {
  if (MaxColumns == 0)
    MaxColumns = 1;
  // Epoch -> (object id, chunk count) for this object.
  std::map<uint64_t, std::pair<uint32_t, uint32_t>> Epochs;
  for (const DecisionRecord &Rec : Artifact.Records)
    if (Rec.Kind == DecisionKind::ObjectEpoch &&
        Artifact.name(Rec.Object.NameId) == Object)
      Epochs[Rec.Object.Epoch] = {Rec.Object.Object,
                                  Rec.Object.NumChunks};
  if (Epochs.empty())
    return "object '" + Object + "' never appears in the log\n";

  uint32_t NumChunks = 0;
  for (const auto &[Epoch, Info] : Epochs)
    NumChunks = std::max(NumChunks, Info.second);
  uint32_t PerColumn = (NumChunks + MaxColumns - 1) / MaxColumns;
  PerColumn = std::max(PerColumn, 1u);
  uint32_t Columns = (NumChunks + PerColumn - 1) / PerColumn;

  std::string Out =
      fmt("object '%s': %u chunks, %u chunk%s per column\n",
          Object.c_str(), NumChunks, PerColumn, PerColumn == 1 ? "" : "s");
  Out += "legend: '#' committed fast, 'v' committed slow, 'x' "
         "skipped/rolled back,\n        '>' staged ahead (lookahead), "
         "'p' promoted, 'g' global-ranked,\n        's' sampled critical, "
         "'.' cold\n";
  for (const auto &[Epoch, Info] : Epochs) {
    std::vector<char> Cells(NumChunks, '.');
    for (const DecisionRecord &Rec : Artifact.Records) {
      if (Rec.Kind == DecisionKind::ChunkDecision &&
          Rec.Chunk.Epoch == Epoch && Rec.Chunk.Object == Info.first &&
          Rec.Chunk.Chunk < NumChunks) {
        char C = chunkChar(Rec.Chunk);
        if (precedence(C) > precedence(Cells[Rec.Chunk.Chunk]))
          Cells[Rec.Chunk.Chunk] = C;
      } else if (Rec.Kind == DecisionKind::MigrationEvent &&
                 Rec.Migration.Epoch == Epoch &&
                 Rec.Migration.Object == Info.first) {
        char C = phaseChar(Rec.Migration);
        if (C == 0)
          continue;
        uint32_t End = std::min(
            Rec.Migration.FirstChunk + Rec.Migration.NumChunks, NumChunks);
        for (uint32_t Chunk = Rec.Migration.FirstChunk; Chunk < End;
             ++Chunk)
          if (precedence(C) > precedence(Cells[Chunk]))
            Cells[Chunk] = C;
      }
    }
    std::string Row;
    for (uint32_t Col = 0; Col < Columns; ++Col) {
      char Best = '.';
      for (uint32_t Chunk = Col * PerColumn;
           Chunk < std::min((Col + 1) * PerColumn, NumChunks); ++Chunk)
        if (precedence(Cells[Chunk]) > precedence(Best))
          Best = Cells[Chunk];
      Row += Best;
    }
    Out += fmt("epoch %3" PRIu64 " |%s|\n", Epoch, Row.c_str());
  }
  return Out;
}

std::string obs::diffDecisions(const DecisionArtifact &A,
                               const DecisionArtifact &B) {
  PlacementMap MapA = placementOf(A);
  PlacementMap MapB = placementOf(B);
  std::string Out;
  uint64_t Differences = 0;

  std::set<std::pair<uint64_t, std::string>> Keys;
  for (const auto &[Key, Chunks] : MapA.Selected)
    Keys.insert(Key);
  for (const auto &[Key, Chunks] : MapB.Selected)
    Keys.insert(Key);

  for (const auto &Key : Keys) {
    const auto &[Epoch, Name] = Key;
    bool InA = MapA.Selected.count(Key);
    bool InB = MapB.Selected.count(Key);
    if (InA != InB) {
      Out += fmt("epoch %" PRIu64 " object '%s': only in run %s\n", Epoch,
                 Name.c_str(), InA ? "A" : "B");
      ++Differences;
      continue;
    }
    std::string SelDiff =
        describeSetDiff(MapA.Selected[Key], MapB.Selected[Key]);
    if (!SelDiff.empty()) {
      Out += fmt("epoch %" PRIu64 " object '%s' selection: %s\n", Epoch,
                 Name.c_str(), SelDiff.c_str());
      ++Differences;
    }
    std::string ComDiff =
        describeSetDiff(MapA.Committed[Key], MapB.Committed[Key]);
    if (!ComDiff.empty()) {
      Out += fmt("epoch %" PRIu64 " object '%s' committed-to-fast: %s\n",
                 Epoch, Name.c_str(), ComDiff.c_str());
      ++Differences;
    }
  }
  Out += Differences == 0
             ? "placement decisions identical\n"
             : fmt("%" PRIu64 " difference%s\n", Differences,
                   Differences == 1 ? "" : "s");
  return Out;
}

std::string obs::summarizeDecisions(const DecisionArtifact &Artifact) {
  DecisionLogStats Stats;
  std::string Error;
  bool Valid = validateDecisionLog(Artifact, &Error, &Stats);
  std::string Out;
  Out += fmt("decision log: %zu records, %" PRIu64 " epochs, %" PRIu64
             " object-epochs, %" PRIu64 " chunk decisions\n",
             Artifact.Records.size(), Stats.Epochs, Stats.Objects,
             Stats.Chunks);
  if (!Valid)
    Out += "warning: " + Error + "\n";
  Out += fmt("promoted chunks: %" PRIu64 "; committed ranges: %" PRIu64
             "; retried: %" PRIu64 "; rolled back: %" PRIu64
             "; skipped: %" PRIu64 "; renominated: %" PRIu64 "\n",
             Stats.PromotedChunks, Stats.CommittedRanges, Stats.Retried,
             Stats.RolledBack, Stats.Skipped, Stats.Renominated);
  for (const DecisionRecord &Rec : Artifact.Records) {
    if (Rec.Kind != DecisionKind::ObjectEpoch)
      continue;
    const ObjectEpochRecord &R = Rec.Object;
    Out += fmt("epoch %" PRIu64 " object '%s': %u chunks, theta %.4g (%s), "
               "W %.4g (rank %u/%u), TR' %.4g, sampled %u, promoted %u\n",
               R.Epoch, Artifact.name(R.NameId).c_str(), R.NumChunks,
               R.Theta, thetaWinnerName(R.Winner), R.Weight, R.WeightRank,
               R.RankedObjects, R.TrThreshold, R.SampledCritical,
               R.PromotedCount);
  }
  return Out;
}
