//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline rendering over decoded decision logs (obs/DecisionLog.h): the
/// why-query causal chain behind tools/atmem_explain, per-object ASCII
/// chunk heatmaps over epochs, run-vs-run placement diffs, and a summary
/// table. Everything returns strings so tests can verify the tool's
/// output logic without spawning the binary.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_OBS_DECISIONEXPLAIN_H
#define ATMEM_OBS_DECISIONEXPLAIN_H

#include "obs/DecisionLog.h"

#include <cstdint>
#include <string>

namespace atmem {
namespace obs {

/// A "--why obj=<name> chunk=<n> [iter=<k>]" query.
struct WhyQuery {
  std::string Object;
  uint32_t Chunk = 0;
  /// Epoch to explain; -1 selects the last epoch the object appears in.
  int64_t Epoch = -1;
};

/// Reconstructs the causal chain of one (object, chunk, epoch) decision
/// from \p Artifact alone: sampling evidence, Eq. 1 PR, the Eq. 2 theta
/// components and winner, Eq. 3 classification, global ranking, Eq. 4/5
/// weight/rank/TR', the tree node that promoted or blocked the chunk, and
/// every recorded migration lifecycle step covering it. False (with
/// \p Error) when the object or epoch does not appear in the log.
bool explainChunk(const DecisionArtifact &Artifact, const WhyQuery &Query,
                  std::string &Out, std::string *Error = nullptr);

/// Renders \p Object's chunks (columns, bucketed to at most \p MaxColumns)
/// over epochs (rows). Legend: '#' committed to fast, 'v' committed to
/// slow (demotion), 'x' skipped / rolled back, 'p' promoted (estimated
/// critical), 'g' global-ranked, 's' sampled critical, '.' cold. A bucket
/// shows its highest-precedence state. Returns an error line when the
/// object never appears.
std::string renderHeatmap(const DecisionArtifact &Artifact,
                          const std::string &Object,
                          uint32_t MaxColumns = 96);

/// Compares the per-epoch, per-object selected and committed chunk sets of
/// two runs and describes every difference (objects or epochs present in
/// only one run, chunks selected or moved in one but not the other).
std::string diffDecisions(const DecisionArtifact &A,
                          const DecisionArtifact &B);

/// Per-epoch, per-object one-line summary of the whole artifact.
std::string summarizeDecisions(const DecisionArtifact &Artifact);

} // namespace obs
} // namespace atmem

#endif // ATMEM_OBS_DECISIONEXPLAIN_H
