#include "obs/DecisionLog.h"

#include "obs/Json.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <mutex>

using namespace atmem;
using namespace atmem::obs;

std::atomic<bool> obs::detail::GDecisionLogOpen{false};

namespace {

constexpr char Magic[4] = {'A', 'T', 'D', 'L'};
constexpr uint32_t FormatVersion = 1;

//===----------------------------------------------------------------------===//
// Little-endian encoding helpers
//===----------------------------------------------------------------------===//

void putU8(std::string &Buf, uint8_t V) {
  Buf.push_back(static_cast<char>(V));
}

void putU32(std::string &Buf, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Buf, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putF64(std::string &Buf, double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V));
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(Buf, Bits);
}

/// Bounds-checked little-endian decoder over one record payload.
struct Cursor {
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Ok = true;

  bool need(size_t N) {
    if (Pos + N > Size) {
      Ok = false;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!need(1))
      return 0;
    return Data[Pos++];
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos + I]) << (8 * I);
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += 8;
    return V;
  }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
};

void encodeObject(std::string &Buf, const ObjectEpochRecord &R) {
  putU8(Buf, static_cast<uint8_t>(DecisionKind::ObjectEpoch));
  putU64(Buf, R.Epoch);
  putU32(Buf, R.Object);
  putU32(Buf, R.NameId);
  putU32(Buf, R.NumChunks);
  putU64(Buf, R.ChunkBytes);
  putU64(Buf, R.SamplePeriod);
  putF64(Buf, R.Weight);
  putU32(Buf, R.WeightRank);
  putU32(Buf, R.RankedObjects);
  putF64(Buf, R.TrThreshold);
  putF64(Buf, R.Theta);
  putF64(Buf, R.ThetaPercentile);
  putF64(Buf, R.ThetaDerivative);
  putF64(Buf, R.ThetaNoiseFloor);
  putU8(Buf, static_cast<uint8_t>(R.Winner));
  putU32(Buf, R.SampledCritical);
  putU32(Buf, R.PromotedCount);
}

void encodeChunk(std::string &Buf, const ChunkDecisionRecord &R) {
  putU8(Buf, static_cast<uint8_t>(DecisionKind::ChunkDecision));
  putU64(Buf, R.Epoch);
  putU32(Buf, R.Object);
  putU32(Buf, R.Chunk);
  putU64(Buf, R.Samples);
  putF64(Buf, R.EstimatedMisses);
  putF64(Buf, R.Priority);
  putU8(Buf, R.Flags);
  putF64(Buf, R.NodeTreeRatio);
}

void encodeMigration(std::string &Buf, const MigrationEventRecord &R) {
  putU8(Buf, static_cast<uint8_t>(DecisionKind::MigrationEvent));
  putU64(Buf, R.Epoch);
  putU32(Buf, R.Object);
  putU32(Buf, R.FirstChunk);
  putU32(Buf, R.NumChunks);
  putU8(Buf, R.TargetFast);
  putU8(Buf, static_cast<uint8_t>(R.Phase));
  putU32(Buf, R.FaultSiteNameId);
  putF64(Buf, R.Priority);
}

void setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
}

//===----------------------------------------------------------------------===//
// JSON formatting helpers (local: the exporter's are file-static too)
//===----------------------------------------------------------------------===//

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Hex[8];
        std::snprintf(Hex, sizeof(Hex), "\\u%04x", C);
        Out += Hex;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string jsonNumber(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  // The strict parser has no inf/nan literals; clamp to null.
  if (std::strstr(Buf, "inf") || std::strstr(Buf, "nan"))
    return "null";
  return Buf;
}

} // namespace

const char *obs::decisionPhaseName(DecisionPhase Phase) {
  switch (Phase) {
  case DecisionPhase::Planned:
    return "planned";
  case DecisionPhase::Staged:
    return "staged";
  case DecisionPhase::Remapped:
    return "remapped";
  case DecisionPhase::Committed:
    return "committed";
  case DecisionPhase::RolledBack:
    return "rolled_back";
  case DecisionPhase::Retried:
    return "retried";
  case DecisionPhase::Degraded:
    return "degraded";
  case DecisionPhase::Skipped:
    return "skipped";
  case DecisionPhase::Renominated:
    return "renominated";
  case DecisionPhase::StagedAhead:
    return "staged_ahead";
  case DecisionPhase::PrefetchCancelled:
    return "prefetch_cancelled";
  }
  return "unknown";
}

const char *obs::thetaWinnerName(ThetaWinner Winner) {
  switch (Winner) {
  case ThetaWinner::Percentile:
    return "percentile";
  case ThetaWinner::Derivative:
    return "derivative";
  case ThetaWinner::NoiseFloor:
    return "noise_floor";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

namespace {

/// The classic flat-file destination: length-prefixed records appended
/// with stdio, exactly the byte stream the pre-sink writer produced.
class FileSink : public DecisionSink {
public:
  FileSink(std::FILE *File, std::string Path)
      : File(File), Path(std::move(Path)) {}
  ~FileSink() override {
    if (File)
      std::fclose(File);
  }

  void append(const std::string &Payload) override {
    std::string Framed;
    Framed.reserve(Payload.size() + 4);
    putU32(Framed, static_cast<uint32_t>(Payload.size()));
    Framed += Payload;
    if (std::fwrite(Framed.data(), 1, Framed.size(), File) != Framed.size())
      WriteFailed = true;
  }

  bool finish(std::string *Error) override {
    bool Ok = !WriteFailed;
    if (std::fclose(File) != 0)
      Ok = false;
    File = nullptr;
    if (!Ok)
      setError(Error, "write failure on decision log '" + Path + "'");
    return Ok;
  }

  const std::string &path() const override { return Path; }

private:
  std::FILE *File;
  std::string Path;
  bool WriteFailed = false;
};

} // namespace

struct DecisionLog::Impl {
  std::mutex Mutex;
  std::unique_ptr<DecisionSink> Sink;
  uint64_t Epoch = 0;
  uint64_t RecordCount = 0;
  uint32_t NextNameId = 0;
  std::unordered_map<std::string, uint32_t> NameIds;

  /// Hands one record payload to the sink. Caller holds Mutex.
  void emit(const std::string &Payload) {
    Sink->append(Payload);
    ++RecordCount;
  }
};

DecisionLog &DecisionLog::instance() {
  static DecisionLog Log;
  return Log;
}

DecisionLog::Impl &DecisionLog::impl() {
  static Impl TheImpl;
  return TheImpl;
}

bool DecisionLog::open(const std::string &Path, std::string *Error) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  if (I.Sink)
    return true; // Already recording; share the open log.
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    setError(Error, "cannot open '" + Path + "' for writing");
    return false;
  }
  std::string Header = decisionLogHeaderBytes();
  if (std::fwrite(Header.data(), 1, Header.size(), File) != Header.size()) {
    std::fclose(File);
    setError(Error, "cannot write header to '" + Path + "'");
    return false;
  }
  I.Sink = std::make_unique<FileSink>(File, Path);
  I.Epoch = 0;
  I.RecordCount = 0;
  I.NextNameId = 0;
  I.NameIds.clear();
  detail::GDecisionLogOpen.store(true, std::memory_order_relaxed);
  return true;
}

bool DecisionLog::openSink(std::unique_ptr<DecisionSink> Sink) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  if (I.Sink)
    return true; // Already recording; share the open log.
  I.Sink = std::move(Sink);
  I.Epoch = 0;
  I.RecordCount = 0;
  I.NextNameId = 0;
  I.NameIds.clear();
  detail::GDecisionLogOpen.store(true, std::memory_order_relaxed);
  return true;
}

bool DecisionLog::close(std::string *Error) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  if (!I.Sink)
    return true;
  detail::GDecisionLogOpen.store(false, std::memory_order_relaxed);
  std::string Payload;
  putU8(Payload, static_cast<uint8_t>(DecisionKind::Trailer));
  putU64(Payload, I.RecordCount);
  I.emit(Payload);
  bool Ok = I.Sink->finish(Error);
  I.Sink.reset();
  return Ok;
}

bool DecisionLog::isOpen() const {
  Impl &I = const_cast<DecisionLog *>(this)->impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  return I.Sink != nullptr;
}

std::string DecisionLog::path() const {
  Impl &I = const_cast<DecisionLog *>(this)->impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  return I.Sink ? I.Sink->path() : std::string();
}

uint64_t DecisionLog::beginEpoch() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  if (!I.Sink)
    return 0;
  ++I.Epoch;
  std::string Payload;
  putU8(Payload, static_cast<uint8_t>(DecisionKind::EpochBegin));
  putU64(Payload, I.Epoch);
  I.emit(Payload);
  return I.Epoch;
}

uint32_t DecisionLog::nameId(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  if (!I.Sink)
    return 0;
  auto It = I.NameIds.find(Name);
  if (It != I.NameIds.end())
    return It->second;
  uint32_t Id = ++I.NextNameId;
  I.NameIds.emplace(Name, Id);
  std::string Payload;
  putU8(Payload, static_cast<uint8_t>(DecisionKind::NameDef));
  putU32(Payload, Id);
  putU32(Payload, static_cast<uint32_t>(Name.size()));
  Payload += Name;
  I.emit(Payload);
  return Id;
}

void DecisionLog::recordObject(const ObjectEpochRecord &Record) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  if (!I.Sink)
    return;
  ObjectEpochRecord Stamped = Record;
  Stamped.Epoch = I.Epoch;
  std::string Payload;
  encodeObject(Payload, Stamped);
  I.emit(Payload);
}

void DecisionLog::recordChunk(const ChunkDecisionRecord &Record) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  if (!I.Sink)
    return;
  ChunkDecisionRecord Stamped = Record;
  Stamped.Epoch = I.Epoch;
  std::string Payload;
  encodeChunk(Payload, Stamped);
  I.emit(Payload);
}

void DecisionLog::recordMigration(const MigrationEventRecord &Record) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  if (!I.Sink)
    return;
  MigrationEventRecord Stamped = Record;
  Stamped.Epoch = I.Epoch;
  std::string Payload;
  encodeMigration(Payload, Stamped);
  I.emit(Payload);
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

const std::string &DecisionArtifact::name(uint32_t Id) const {
  static const std::string Empty;
  auto It = Names.find(Id);
  return It == Names.end() ? Empty : It->second;
}

std::string obs::decisionLogHeaderBytes() {
  std::string Header(Magic, sizeof(Magic));
  putU32(Header, FormatVersion);
  return Header;
}

std::string obs::encodeDecisionPayload(const DecisionRecord &Rec) {
  std::string Payload;
  switch (Rec.Kind) {
  case DecisionKind::NameDef:
    putU8(Payload, static_cast<uint8_t>(DecisionKind::NameDef));
    putU32(Payload, Rec.NameId);
    putU32(Payload, static_cast<uint32_t>(Rec.Name.size()));
    Payload += Rec.Name;
    break;
  case DecisionKind::EpochBegin:
    putU8(Payload, static_cast<uint8_t>(DecisionKind::EpochBegin));
    putU64(Payload, Rec.Epoch);
    break;
  case DecisionKind::ObjectEpoch:
    encodeObject(Payload, Rec.Object);
    break;
  case DecisionKind::ChunkDecision:
    encodeChunk(Payload, Rec.Chunk);
    break;
  case DecisionKind::MigrationEvent:
    encodeMigration(Payload, Rec.Migration);
    break;
  case DecisionKind::Trailer:
    putU8(Payload, static_cast<uint8_t>(DecisionKind::Trailer));
    putU64(Payload, Rec.Epoch);
    break;
  }
  return Payload;
}

bool obs::decodeDecisionPayload(const uint8_t *Data, size_t Size,
                                size_t ErrorOffset, DecisionRecord &Rec,
                                std::string *Error) {
  Cursor C{Data, Size};
  uint8_t Kind = C.u8();
  switch (static_cast<DecisionKind>(Kind)) {
  case DecisionKind::NameDef: {
    Rec.Kind = DecisionKind::NameDef;
    Rec.NameId = C.u32();
    uint32_t StrLen = C.u32();
    if (!C.need(StrLen)) {
      setError(Error, "truncated NameDef string");
      return false;
    }
    Rec.Name.assign(reinterpret_cast<const char *>(C.Data + C.Pos), StrLen);
    C.Pos += StrLen;
    break;
  }
  case DecisionKind::EpochBegin:
    Rec.Kind = DecisionKind::EpochBegin;
    Rec.Epoch = C.u64();
    break;
  case DecisionKind::ObjectEpoch: {
    Rec.Kind = DecisionKind::ObjectEpoch;
    ObjectEpochRecord &R = Rec.Object;
    R.Epoch = C.u64();
    R.Object = C.u32();
    R.NameId = C.u32();
    R.NumChunks = C.u32();
    R.ChunkBytes = C.u64();
    R.SamplePeriod = C.u64();
    R.Weight = C.f64();
    R.WeightRank = C.u32();
    R.RankedObjects = C.u32();
    R.TrThreshold = C.f64();
    R.Theta = C.f64();
    R.ThetaPercentile = C.f64();
    R.ThetaDerivative = C.f64();
    R.ThetaNoiseFloor = C.f64();
    R.Winner = static_cast<ThetaWinner>(C.u8());
    R.SampledCritical = C.u32();
    R.PromotedCount = C.u32();
    break;
  }
  case DecisionKind::ChunkDecision: {
    Rec.Kind = DecisionKind::ChunkDecision;
    ChunkDecisionRecord &R = Rec.Chunk;
    R.Epoch = C.u64();
    R.Object = C.u32();
    R.Chunk = C.u32();
    R.Samples = C.u64();
    R.EstimatedMisses = C.f64();
    R.Priority = C.f64();
    R.Flags = C.u8();
    R.NodeTreeRatio = C.f64();
    break;
  }
  case DecisionKind::MigrationEvent: {
    Rec.Kind = DecisionKind::MigrationEvent;
    MigrationEventRecord &R = Rec.Migration;
    R.Epoch = C.u64();
    R.Object = C.u32();
    R.FirstChunk = C.u32();
    R.NumChunks = C.u32();
    R.TargetFast = C.u8();
    R.Phase = static_cast<DecisionPhase>(C.u8());
    R.FaultSiteNameId = C.u32();
    R.Priority = C.f64();
    break;
  }
  case DecisionKind::Trailer:
    Rec.Kind = DecisionKind::Trailer;
    Rec.Epoch = C.u64();
    if (!C.Ok) {
      setError(Error, "truncated trailer");
      return false;
    }
    return true;
  default:
    setError(Error, "unknown record kind " + std::to_string(Kind) +
                        " at offset " + std::to_string(ErrorOffset));
    return false;
  }
  if (!C.Ok || C.Pos != C.Size) {
    setError(Error, "malformed record payload at offset " +
                        std::to_string(ErrorOffset));
    return false;
  }
  return true;
}

bool obs::readDecisionLog(const std::string &Path, DecisionArtifact &Out,
                          std::string *Error) {
  Out = DecisionArtifact();
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    setError(Error, "cannot open '" + Path + "'");
    return false;
  }
  std::string Bytes;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Bytes.append(Buf, N);
  bool ReadError = std::ferror(File) != 0;
  std::fclose(File);
  if (ReadError) {
    setError(Error, "I/O error reading '" + Path + "'");
    return false;
  }

  const auto *Data = reinterpret_cast<const uint8_t *>(Bytes.data());
  size_t Size = Bytes.size();
  if (Size < 8 || std::memcmp(Data, Magic, sizeof(Magic)) != 0) {
    setError(Error, "bad magic (not an ATDL decision log)");
    return false;
  }
  Cursor Head{Data + 4, 4};
  Out.Version = Head.u32();
  if (Out.Version != FormatVersion) {
    setError(Error,
             "unsupported version " + std::to_string(Out.Version));
    return false;
  }

  size_t Pos = 8;
  while (Pos < Size) {
    if (Pos + 4 > Size) {
      setError(Error, "truncated record length at offset " +
                          std::to_string(Pos));
      return false;
    }
    Cursor LenCur{Data + Pos, 4};
    uint32_t Len = LenCur.u32();
    Pos += 4;
    if (Len == 0 || Pos + Len > Size) {
      setError(Error, "truncated record payload at offset " +
                          std::to_string(Pos));
      return false;
    }
    DecisionRecord Rec;
    if (!decodeDecisionPayload(Data + Pos, Len, Pos, Rec, Error))
      return false;
    Pos += Len;
    if (Rec.Kind == DecisionKind::Trailer) {
      Out.TrailerCount = Rec.Epoch;
      Out.HasTrailer = true;
      if (Pos != Size) {
        setError(Error, "data after trailer");
        return false;
      }
      return true;
    }
    if (Rec.Kind == DecisionKind::NameDef)
      Out.Names[Rec.NameId] = Rec.Name;
    Out.Records.push_back(std::move(Rec));
  }
  // EOF without a trailer: the producer crashed or is still running. The
  // records read so far are returned; the validator reports it.
  return true;
}

//===----------------------------------------------------------------------===//
// Validator
//===----------------------------------------------------------------------===//

bool obs::validateDecisionLog(const DecisionArtifact &Artifact,
                              std::string *Error, DecisionLogStats *Stats) {
  DecisionLogStats Local;
  uint64_t CurrentEpoch = 0;
  bool SawEpoch = false;
  std::unordered_map<uint32_t, std::string> Defined;
  // (epoch, object) pairs with an ObjectEpoch record, for reference
  // checking of chunk and migration records.
  std::unordered_map<uint64_t, uint8_t> ObjectSeen;
  auto key = [](uint64_t Epoch, uint32_t Object) {
    return (Epoch << 32) | Object;
  };

  for (size_t I = 0; I < Artifact.Records.size(); ++I) {
    const DecisionRecord &Rec = Artifact.Records[I];
    auto fail = [&](const std::string &Why) {
      setError(Error, "record " + std::to_string(I) + ": " + Why);
      return false;
    };
    switch (Rec.Kind) {
    case DecisionKind::NameDef:
      if (Rec.NameId == 0)
        return fail("NameDef id 0 is reserved");
      if (!Defined.emplace(Rec.NameId, Rec.Name).second)
        return fail("duplicate NameDef id " + std::to_string(Rec.NameId));
      break;
    case DecisionKind::EpochBegin:
      if (SawEpoch && Rec.Epoch <= CurrentEpoch)
        return fail("epoch " + std::to_string(Rec.Epoch) +
                    " not above previous " + std::to_string(CurrentEpoch));
      CurrentEpoch = Rec.Epoch;
      SawEpoch = true;
      ++Local.Epochs;
      break;
    case DecisionKind::ObjectEpoch: {
      const ObjectEpochRecord &R = Rec.Object;
      if (R.Epoch != CurrentEpoch)
        return fail("ObjectEpoch epoch " + std::to_string(R.Epoch) +
                    " outside current epoch " +
                    std::to_string(CurrentEpoch));
      if (R.NameId != 0 && !Defined.count(R.NameId))
        return fail("ObjectEpoch references undefined name id " +
                    std::to_string(R.NameId));
      ObjectSeen[key(R.Epoch, R.Object)] = 1;
      ++Local.Objects;
      break;
    }
    case DecisionKind::ChunkDecision: {
      const ChunkDecisionRecord &R = Rec.Chunk;
      if (R.Epoch != CurrentEpoch)
        return fail("ChunkDecision epoch mismatch");
      if (!ObjectSeen.count(key(R.Epoch, R.Object)))
        return fail("ChunkDecision for object " +
                    std::to_string(R.Object) +
                    " without a preceding ObjectEpoch");
      ++Local.Chunks;
      if (R.Flags & DecisionChunkPromoted)
        ++Local.PromotedChunks;
      break;
    }
    case DecisionKind::MigrationEvent: {
      const MigrationEventRecord &R = Rec.Migration;
      if (R.Epoch != CurrentEpoch)
        return fail("MigrationEvent epoch mismatch");
      if (R.FaultSiteNameId != 0 && !Defined.count(R.FaultSiteNameId))
        return fail("MigrationEvent references undefined fault site id " +
                    std::to_string(R.FaultSiteNameId));
      switch (R.Phase) {
      case DecisionPhase::Committed:
        ++Local.CommittedRanges;
        break;
      case DecisionPhase::RolledBack:
        ++Local.RolledBack;
        break;
      case DecisionPhase::Retried:
        ++Local.Retried;
        break;
      case DecisionPhase::Skipped:
        ++Local.Skipped;
        break;
      case DecisionPhase::Renominated:
        ++Local.Renominated;
        break;
      case DecisionPhase::StagedAhead:
        ++Local.StagedAhead;
        break;
      case DecisionPhase::PrefetchCancelled:
        ++Local.PrefetchCancelled;
        break;
      default:
        break;
      }
      break;
    }
    case DecisionKind::Trailer:
      return fail("trailer embedded in the record stream");
    }
  }

  if (!Artifact.HasTrailer) {
    setError(Error, "missing trailer (truncated log)");
    if (Stats)
      *Stats = Local;
    return false;
  }
  if (Artifact.TrailerCount != Artifact.Records.size()) {
    setError(Error, "trailer claims " +
                        std::to_string(Artifact.TrailerCount) +
                        " records, file holds " +
                        std::to_string(Artifact.Records.size()));
    if (Stats)
      *Stats = Local;
    return false;
  }
  if (Stats)
    *Stats = Local;
  return true;
}

const char *obs::decisionLogHealthName(DecisionLogHealth Health) {
  switch (Health) {
  case DecisionLogHealth::Ok:
    return "ok";
  case DecisionLogHealth::Empty:
    return "empty";
  case DecisionLogHealth::Headerless:
    return "headerless";
  case DecisionLogHealth::Truncated:
    return "truncated";
  case DecisionLogHealth::Corrupt:
    return "corrupt";
  case DecisionLogHealth::Unreadable:
    return "unreadable";
  }
  return "unknown";
}

DecisionLogHealth obs::diagnoseDecisionLog(const std::string &Path,
                                           std::string *Detail) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    setError(Detail, "cannot open '" + Path + "'");
    return DecisionLogHealth::Unreadable;
  }
  // Probe size and magic first so empty and headerless files get their
  // own classes ahead of the reader's generic bad-magic error.
  char Head[8];
  size_t HeadN = std::fread(Head, 1, sizeof(Head), File);
  std::fclose(File);
  if (HeadN == 0) {
    setError(Detail, "file is empty");
    return DecisionLogHealth::Empty;
  }
  if (HeadN < sizeof(Head) || std::memcmp(Head, Magic, sizeof(Magic)) != 0) {
    setError(Detail, "missing ATDL header (not a decision log)");
    return DecisionLogHealth::Headerless;
  }

  DecisionArtifact Artifact;
  std::string Error;
  if (!readDecisionLog(Path, Artifact, &Error)) {
    setError(Detail, Error);
    // Every reader error about a record cut short carries the word
    // "truncated"; the rest is structural corruption (bad version,
    // unknown kind, malformed payload, data after trailer).
    return Error.find("truncated") != std::string::npos
               ? DecisionLogHealth::Truncated
               : DecisionLogHealth::Corrupt;
  }
  if (Artifact.Records.empty() && !Artifact.HasTrailer) {
    setError(Detail, "header only: no records and no trailer");
    return DecisionLogHealth::Empty;
  }
  if (!validateDecisionLog(Artifact, &Error)) {
    setError(Detail, Error);
    return Artifact.HasTrailer ? DecisionLogHealth::Corrupt
                               : DecisionLogHealth::Truncated;
  }
  setError(Detail, "ok");
  return DecisionLogHealth::Ok;
}

bool obs::crossCheckDecisionMetrics(const DecisionArtifact &Artifact,
                                    const JsonValue &Metrics,
                                    std::string *Error) {
  DecisionLogStats Stats;
  if (!validateDecisionLog(Artifact, Error, &Stats))
    return false;
  const JsonValue *Counters = Metrics.find("counters");
  auto counter = [&](const char *Name) -> uint64_t {
    if (!Counters)
      return 0;
    const JsonValue *V = Counters->findNumber(Name);
    return V ? static_cast<uint64_t>(V->NumberVal) : 0;
  };
  struct Check {
    const char *Counter;
    uint64_t LogCount;
  };
  const Check Checks[] = {
      {"migrator.ranges", Stats.CommittedRanges},
      {"migration.rolled_back", Stats.RolledBack},
      {"migration.retries", Stats.Retried},
      {"migration.skipped_renominated", Stats.Renominated},
      {"analyzer.chunks_estimated_critical", Stats.PromotedChunks},
      {"lookahead.staged_ranges", Stats.StagedAhead},
      {"lookahead.cancelled_ranges", Stats.PrefetchCancelled},
  };
  for (const Check &C : Checks) {
    uint64_t FromMetrics = counter(C.Counter);
    if (FromMetrics != C.LogCount) {
      setError(Error, std::string("counter ") + C.Counter + " = " +
                          std::to_string(FromMetrics) +
                          " but the decision log records " +
                          std::to_string(C.LogCount));
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// JSONL export
//===----------------------------------------------------------------------===//

std::string obs::decisionJsonl(const DecisionArtifact &Artifact) {
  std::string Out;
  char Line[256];
  for (const DecisionRecord &Rec : Artifact.Records) {
    switch (Rec.Kind) {
    case DecisionKind::NameDef:
      Out += "{\"kind\":\"name\",\"id\":" + std::to_string(Rec.NameId) +
             ",\"name\":\"" + jsonEscape(Rec.Name) + "\"}\n";
      break;
    case DecisionKind::EpochBegin:
      Out += "{\"kind\":\"epoch\",\"epoch\":" + std::to_string(Rec.Epoch) +
             "}\n";
      break;
    case DecisionKind::ObjectEpoch: {
      const ObjectEpochRecord &R = Rec.Object;
      std::snprintf(Line, sizeof(Line),
                    "{\"kind\":\"object\",\"epoch\":%" PRIu64
                    ",\"object\":%u,\"name\":\"%s\",\"chunks\":%u,"
                    "\"chunk_bytes\":%" PRIu64 ",\"period\":%" PRIu64 ",",
                    R.Epoch, R.Object,
                    jsonEscape(Artifact.name(R.NameId)).c_str(),
                    R.NumChunks, R.ChunkBytes, R.SamplePeriod);
      Out += Line;
      Out += "\"weight\":" + jsonNumber(R.Weight) +
             ",\"weight_rank\":" + std::to_string(R.WeightRank) +
             ",\"ranked_objects\":" + std::to_string(R.RankedObjects) +
             ",\"tr_threshold\":" + jsonNumber(R.TrThreshold) +
             ",\"theta\":" + jsonNumber(R.Theta) +
             ",\"theta_percentile\":" + jsonNumber(R.ThetaPercentile) +
             ",\"theta_derivative\":" + jsonNumber(R.ThetaDerivative) +
             ",\"theta_noise_floor\":" + jsonNumber(R.ThetaNoiseFloor) +
             ",\"theta_winner\":\"" + thetaWinnerName(R.Winner) +
             "\",\"sampled_critical\":" + std::to_string(R.SampledCritical) +
             ",\"promoted\":" + std::to_string(R.PromotedCount) + "}\n";
      break;
    }
    case DecisionKind::ChunkDecision: {
      const ChunkDecisionRecord &R = Rec.Chunk;
      std::snprintf(Line, sizeof(Line),
                    "{\"kind\":\"chunk\",\"epoch\":%" PRIu64
                    ",\"object\":%u,\"chunk\":%u,\"samples\":%" PRIu64 ",",
                    R.Epoch, R.Object, R.Chunk, R.Samples);
      Out += Line;
      Out += "\"estimated_misses\":" + jsonNumber(R.EstimatedMisses) +
             ",\"priority\":" + jsonNumber(R.Priority) +
             ",\"sampled_critical\":" +
             ((R.Flags & DecisionChunkSampledCritical) ? "true" : "false") +
             ",\"global_ranked\":" +
             ((R.Flags & DecisionChunkGlobalRanked) ? "true" : "false") +
             ",\"promoted\":" +
             ((R.Flags & DecisionChunkPromoted) ? "true" : "false") +
             ",\"node_tree_ratio\":" + jsonNumber(R.NodeTreeRatio) + "}\n";
      break;
    }
    case DecisionKind::MigrationEvent: {
      const MigrationEventRecord &R = Rec.Migration;
      std::snprintf(Line, sizeof(Line),
                    "{\"kind\":\"migration\",\"epoch\":%" PRIu64
                    ",\"object\":%u,\"first_chunk\":%u,\"num_chunks\":%u,",
                    R.Epoch, R.Object, R.FirstChunk, R.NumChunks);
      Out += Line;
      Out += std::string("\"target\":\"") +
             (R.TargetFast ? "fast" : "slow") + "\",\"phase\":\"" +
             decisionPhaseName(R.Phase) + "\",";
      if (R.FaultSiteNameId != 0)
        Out += "\"fault_site\":\"" +
               jsonEscape(Artifact.name(R.FaultSiteNameId)) + "\",";
      else
        Out += "\"fault_site\":null,";
      Out += "\"priority\":" + jsonNumber(R.Priority) + "}\n";
      break;
    }
    case DecisionKind::Trailer:
      break;
    }
  }
  return Out;
}

bool obs::writeDecisionJsonl(const DecisionArtifact &Artifact,
                             const std::string &Path, std::string *Error) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    setError(Error, "cannot open '" + Path + "' for writing");
    return false;
  }
  std::string Body = decisionJsonl(Artifact);
  bool Ok = std::fwrite(Body.data(), 1, Body.size(), File) == Body.size();
  if (std::fclose(File) != 0)
    Ok = false;
  if (!Ok)
    setError(Error, "write failure on '" + Path + "'");
  return Ok;
}
