//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The placement-decision flight recorder: an off-by-default, process-wide
/// log that captures one structured record per (epoch, object, chunk)
/// decision the ATMem pipeline makes — the sampled misses and Eq. 1 PR,
/// every Eq. 2 theta component and which one won, the Eq. 4 weight and its
/// global rank, the Eq. 5 TR' threshold and the m-ary tree node ratio that
/// caused (or blocked) promotion, and the full migration lifecycle
/// (planned → staged → remapped → committed, with retries, degradations,
/// rollbacks and fault-site attribution).
///
/// Records are written as compact length-prefixed binary ("atdl-v1"):
///
///   header  : magic "ATDL" + u32 version
///   record  : u32 payload length, then payload = u8 kind + fixed-width
///             little-endian fields (strings are interned through NameDef
///             records and referenced by id)
///   trailer : kind Trailer carrying the record count written before it
///
/// Like the metrics layer (Telemetry.h), the disabled cost at every
/// instrumentation site is one relaxed atomic load and a predicted branch;
/// all sites sit on cold control paths (classify / optimize / migrate),
/// never on the per-access hot path. The reader, validator and JSONL
/// export in this header are the single source of truth for the format:
/// tests, tools/atmem_obs_check and tools/atmem_explain all consume them.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_OBS_DECISIONLOG_H
#define ATMEM_OBS_DECISIONLOG_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace atmem {
namespace obs {

struct JsonValue;

namespace detail {
/// Process-wide "a decision log is open" flag; read relaxed on every
/// instrumentation site, written only by open()/close().
extern std::atomic<bool> GDecisionLogOpen;
} // namespace detail

/// Record kinds of the binary format (the u8 leading each payload).
enum class DecisionKind : uint8_t {
  NameDef = 0,     ///< Interned string: u32 id + bytes.
  EpochBegin = 1,  ///< A new optimize() epoch: u64 epoch id.
  ObjectEpoch = 2, ///< One object's per-epoch analyzer verdict.
  ChunkDecision = 3, ///< One chunk's classification within an epoch.
  MigrationEvent = 4, ///< One migration lifecycle step for a chunk range.
  Trailer = 255,   ///< Final record: u64 count of records before it.
};

/// Lifecycle phases a MigrationEvent can report.
enum class DecisionPhase : uint8_t {
  Planned = 0,    ///< optimize() nominated the range for the target tier.
  Staged = 1,     ///< Staging copy-in completed (AtmemMigrator stage a).
  Remapped = 2,   ///< Virtual range rebound to target frames (stage b).
  Committed = 3,  ///< Chunk tiers updated; the move is durable.
  RolledBack = 4, ///< A stage failed; partial state undone (fault site set).
  Retried = 5,    ///< Retryable failure absorbed by the bounded retry.
  Degraded = 6,   ///< Capacity shrink dropped the range from the attempt.
  Skipped = 7,    ///< Left unplaced; recorded for re-nomination.
  Renominated = 8, ///< A previously skipped range re-entered the plan.
  StagedAhead = 9, ///< Lookahead prefetch: staging mapped ahead of demand.
  PrefetchCancelled = 10, ///< Staged-ahead range dropped (misprediction or
                          ///< fault); staging released, placement untouched.
};

const char *decisionPhaseName(DecisionPhase Phase);

/// Which Eq. 2 term set theta (ties resolve in max-application order).
enum class ThetaWinner : uint8_t {
  Percentile = 0, ///< The P_n percentile term.
  Derivative = 1, ///< The 2-means derivative cut.
  NoiseFloor = 2, ///< The minPR / F_sample noise floor.
};

const char *thetaWinnerName(ThetaWinner Winner);

/// ChunkDecision flag bits.
constexpr uint8_t DecisionChunkSampledCritical = 1; ///< Eq. 3 CAT = 1.
constexpr uint8_t DecisionChunkGlobalRanked = 2; ///< Flipped by pooled rank.
constexpr uint8_t DecisionChunkPromoted = 4; ///< Estimated critical (tree).

/// One object's analyzer verdict for one epoch (Eq. 2, 4, 5).
struct ObjectEpochRecord {
  uint64_t Epoch = 0; ///< Stamped by the writer; readers see it filled.
  uint32_t Object = 0;
  uint32_t NameId = 0;
  uint32_t NumChunks = 0;
  uint64_t ChunkBytes = 0;
  uint64_t SamplePeriod = 0;
  double Weight = 0.0;       ///< Eq. 4 W; 0 when no critical chunks.
  uint32_t WeightRank = 0;   ///< 1-based rank among W > 0 objects; 0 = none.
  uint32_t RankedObjects = 0; ///< How many objects carried W > 0.
  double TrThreshold = 2.0;  ///< Eq. 5 TR' as used (> 1 never promotes).
  double Theta = 0.0;        ///< Eq. 2 threshold actually applied.
  double ThetaPercentile = 0.0;
  double ThetaDerivative = 0.0;
  double ThetaNoiseFloor = 0.0;
  ThetaWinner Winner = ThetaWinner::Percentile;
  uint32_t SampledCritical = 0; ///< Chunks with CAT = 1 after ranking.
  uint32_t PromotedCount = 0;   ///< Chunks the tree walk added.
};

/// One chunk's classification. Only chunks that carry information are
/// recorded (samples, critical, or promoted); absent chunks were cold.
struct ChunkDecisionRecord {
  uint64_t Epoch = 0;
  uint32_t Object = 0;
  uint32_t Chunk = 0;
  uint64_t Samples = 0;         ///< Raw sample hits.
  double EstimatedMisses = 0.0; ///< Unbiased per-chunk miss estimate.
  double Priority = 0.0;        ///< Eq. 1 PR (misses per byte).
  uint8_t Flags = 0;            ///< DecisionChunk* bits.
  /// Tree ratio of the deepest examined m-ary tree node covering this
  /// chunk: the promoting node's TR for promoted chunks, the blocking
  /// node's TR otherwise. 0 when the walk never ran (TR' > 1, no
  /// critical chunks, or promotion disabled).
  double NodeTreeRatio = 0.0;
};

/// One migration lifecycle step for a chunk range of an object.
struct MigrationEventRecord {
  uint64_t Epoch = 0;
  uint32_t Object = 0;
  uint32_t FirstChunk = 0;
  uint32_t NumChunks = 0;
  uint8_t TargetFast = 0; ///< 1 when headed to the fast tier.
  DecisionPhase Phase = DecisionPhase::Planned;
  uint32_t FaultSiteNameId = 0; ///< Interned site name; 0 = none.
  double Priority = 0.0;        ///< Best Eq. 1 PR in the range (if known).
};

/// Destination of the serialized atdl-v1 record stream. The DecisionLog
/// owns the serializer (interning, epoch stamping, the record payloads);
/// a sink owns the bytes' final resting place and its own framing: the
/// file sink length-prefixes records into a flat file, the ring sink
/// (RingLog.h) adds sequence numbers and CRCs inside mmap'd rotating
/// segments, and the null sink discards everything (serializer-cost
/// measurement). All calls arrive under the DecisionLog mutex.
class DecisionSink {
public:
  virtual ~DecisionSink() = default;

  /// Appends one serialized record payload (u8 kind + little-endian
  /// fields, unframed). Write failures are latched and reported by
  /// finish().
  virtual void append(const std::string &Payload) = 0;

  /// Flushes and releases the destination. False (with \p Error when
  /// non-null) when any write failed along the way.
  virtual bool finish(std::string *Error) = 0;

  /// Where the records are going (diagnostics; DecisionLog::path()).
  virtual const std::string &path() const = 0;
};

/// The process-wide decision-log writer. Thread-safe: record emission is
/// serialized by a mutex (all emitting sites are cold control paths).
/// Epochs are stamped at record time from the writer's current epoch, so
/// instrumentation sites never thread an epoch id through their layers.
class DecisionLog {
public:
  static DecisionLog &instance();

  /// True when a log is open; the one predicted branch every site pays.
  static bool enabled() {
    return detail::GDecisionLogOpen.load(std::memory_order_relaxed);
  }

  /// Opens \p Path and writes the header. A second open while a log is
  /// already open is a no-op returning true (several runtimes may share
  /// one process-wide log, as bench jobs do). False on I/O failure.
  bool open(const std::string &Path, std::string *Error = nullptr);

  /// Routes the record stream into an arbitrary sink. The ring and null
  /// front-ends in RingLog.h come through here; open() is sugar for a
  /// file sink. Keeps the already-open no-op semantics of open(): when a
  /// log is running the new sink is discarded and true is returned.
  bool openSink(std::unique_ptr<DecisionSink> Sink);

  /// Writes the trailer and closes. No-op returning true when nothing is
  /// open. False on I/O failure (the file is still closed).
  bool close(std::string *Error = nullptr);

  bool isOpen() const;
  /// The path of the currently open log ("" when closed).
  std::string path() const;

  /// Starts a new epoch (one optimize() call) and returns its id.
  /// Epoch ids increase monotonically for the lifetime of the log.
  uint64_t beginEpoch();

  /// Interns \p Name, emitting a NameDef record on first use.
  uint32_t nameId(const std::string &Name);

  /// \name Record emission (no-ops when the log is closed)
  /// The Epoch fields of the passed records are overwritten with the
  /// writer's current epoch.
  /// @{
  void recordObject(const ObjectEpochRecord &Record);
  void recordChunk(const ChunkDecisionRecord &Record);
  void recordMigration(const MigrationEventRecord &Record);
  /// @}

private:
  DecisionLog() = default;
  struct Impl;
  Impl &impl();
};

//===----------------------------------------------------------------------===//
// Reader / validator / JSONL export
//===----------------------------------------------------------------------===//

/// One decoded record; \p Kind selects which member is meaningful.
struct DecisionRecord {
  DecisionKind Kind = DecisionKind::EpochBegin;
  ObjectEpochRecord Object;     ///< Kind == ObjectEpoch.
  ChunkDecisionRecord Chunk;    ///< Kind == ChunkDecision.
  MigrationEventRecord Migration; ///< Kind == MigrationEvent.
  uint64_t Epoch = 0;           ///< Kind == EpochBegin.
  uint32_t NameId = 0;          ///< Kind == NameDef.
  std::string Name;             ///< Kind == NameDef.
};

/// A fully decoded decision-log file, in record order (trailer excluded).
struct DecisionArtifact {
  uint32_t Version = 0;
  std::vector<DecisionRecord> Records;
  /// Interned names by id (from the NameDef records).
  std::unordered_map<uint32_t, std::string> Names;
  /// Count the trailer claimed; HasTrailer false when the file was
  /// truncated before one was written.
  uint64_t TrailerCount = 0;
  bool HasTrailer = false;

  /// The interned name behind \p Id ("" when undefined).
  const std::string &name(uint32_t Id) const;
};

/// Aggregate counts the validator computes (for cross-checking against a
/// metrics snapshot and for quick reporting).
struct DecisionLogStats {
  uint64_t Epochs = 0;
  uint64_t Objects = 0;       ///< ObjectEpoch records.
  uint64_t Chunks = 0;        ///< ChunkDecision records.
  uint64_t PromotedChunks = 0; ///< ChunkDecision with the Promoted flag.
  uint64_t CommittedRanges = 0;
  uint64_t RolledBack = 0;
  uint64_t Retried = 0;
  uint64_t Skipped = 0;
  uint64_t Renominated = 0;
  uint64_t StagedAhead = 0;        ///< Lookahead prefetch stagings.
  uint64_t PrefetchCancelled = 0;  ///< Staged-ahead ranges dropped.
};

/// \name Low-level atdl-v1 codec
/// Shared by the file reader below and the ring recovery reader
/// (RingLog.h), so every sink speaks byte-identical record payloads.
/// @{

/// The 8-byte file header (magic "ATDL" + u32 version).
std::string decisionLogHeaderBytes();

/// Serializes one record as an (unframed) payload. For Trailer records
/// the claimed record count is taken from \p Rec.Epoch.
std::string encodeDecisionPayload(const DecisionRecord &Rec);

/// Decodes one record payload of \p Size bytes. \p ErrorOffset is the
/// payload's position in its container, used only in error messages. For
/// Trailer records the claimed count lands in \p Rec.Epoch.
bool decodeDecisionPayload(const uint8_t *Data, size_t Size,
                           size_t ErrorOffset, DecisionRecord &Rec,
                           std::string *Error = nullptr);
/// @}

/// Decodes \p Path into \p Out. False (with \p Error) on I/O failure, bad
/// magic/version, or a record that does not parse.
bool readDecisionLog(const std::string &Path, DecisionArtifact &Out,
                     std::string *Error = nullptr);

/// Validates structural invariants of a decoded artifact: EpochBegin ids
/// strictly increase; every other record carries the epoch of the latest
/// EpochBegin; name references resolve to a preceding NameDef; chunk and
/// migration records follow an ObjectEpoch for their (epoch, object); the
/// trailer count matches the records actually present. Fills \p Stats
/// when non-null (also on success-only paths).
bool validateDecisionLog(const DecisionArtifact &Artifact,
                         std::string *Error = nullptr,
                         DecisionLogStats *Stats = nullptr);

/// Coarse health classification of a decision-log file. Produced by
/// diagnoseDecisionLog() and mapped onto distinct process exit codes by
/// tools/atmem_obs_check, so scripts can tell a torn log from a missing
/// one without parsing diagnostics.
enum class DecisionLogHealth : uint8_t {
  Ok = 0,     ///< Reads and validates cleanly.
  Empty,      ///< Zero bytes, or a bare header with no records at all.
  Headerless, ///< Too short for a header or wrong magic.
  Truncated,  ///< Cut mid-record, or complete records but no trailer.
  Corrupt,    ///< Structurally invalid (bad kind, references, version).
  Unreadable, ///< The file cannot be opened or read.
};

/// Human label for \p Health ("ok", "empty", "headerless", ...).
const char *decisionLogHealthName(DecisionLogHealth Health);

/// Classifies the file at \p Path, storing the underlying reader or
/// validator diagnostic in \p Detail when non-null.
DecisionLogHealth diagnoseDecisionLog(const std::string &Path,
                                      std::string *Detail = nullptr);

/// Cross-checks a validated artifact against an "atmem-metrics-v1"
/// document from the same run: committed ranges vs migrator.ranges,
/// rollbacks vs migration.rolled_back, retries vs migration.retries,
/// re-nominations vs migration.skipped_renominated, and promoted chunks
/// vs analyzer.chunks_estimated_critical. Counters absent from the
/// snapshot are treated as zero. False (with \p Error) on any mismatch.
bool crossCheckDecisionMetrics(const DecisionArtifact &Artifact,
                               const JsonValue &Metrics,
                               std::string *Error = nullptr);

/// Serializes \p Artifact as JSON lines (one record per line, names
/// resolved inline) — the import format of scripts/extract_results.py.
std::string decisionJsonl(const DecisionArtifact &Artifact);

/// Writes decisionJsonl() to \p Path; false on I/O failure.
bool writeDecisionJsonl(const DecisionArtifact &Artifact,
                        const std::string &Path,
                        std::string *Error = nullptr);

} // namespace obs
} // namespace atmem

#endif // ATMEM_OBS_DECISIONLOG_H
