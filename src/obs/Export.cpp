#include "obs/Export.h"

#include "obs/DecisionLog.h"
#include "obs/Health.h"
#include "obs/TimeSeries.h"
#include "obs/Trace.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>

using namespace atmem;
using namespace atmem::obs;

namespace {

std::string escapeJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out += C;
  }
  return Out;
}

std::string formatDoubleJson(double V) {
  if (!std::isfinite(V))
    return "0";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

} // namespace

std::string obs::metricsJson(const TelemetrySnapshot &Snap,
                             const std::string &Indent) {
  std::string Out;
  char Buf[160];
  auto Line = [&](const std::string &S) { Out += Indent + S + "\n"; };

  Line("{");
  Line("  \"schema\": \"atmem-metrics-v1\",");

  Line("  \"counters\": {");
  for (size_t I = 0; I < Snap.Counters.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf), "    \"%s\": %" PRIu64 "%s",
                  escapeJson(Snap.Counters[I].first).c_str(),
                  Snap.Counters[I].second,
                  I + 1 == Snap.Counters.size() ? "" : ",");
    Line(Buf);
  }
  Line("  },");

  Line("  \"gauges\": {");
  for (size_t I = 0; I < Snap.Gauges.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf), "    \"%s\": %s%s",
                  escapeJson(Snap.Gauges[I].first).c_str(),
                  formatDoubleJson(Snap.Gauges[I].second).c_str(),
                  I + 1 == Snap.Gauges.size() ? "" : ",");
    Line(Buf);
  }
  Line("  },");

  Line("  \"histograms\": {");
  for (size_t I = 0; I < Snap.Histograms.size(); ++I) {
    const auto &[Name, H] = Snap.Histograms[I];
    Line("    \"" + escapeJson(Name) + "\": {");
    std::snprintf(Buf, sizeof(Buf),
                  "      \"count\": %" PRIu64 ", \"sum\": %" PRIu64
                  ", \"min\": %" PRIu64 ", \"max\": %" PRIu64 ",",
                  H.Count, H.Sum, H.Min, H.Max);
    Line(Buf);
    std::snprintf(Buf, sizeof(Buf),
                  "      \"p50\": %s, \"p90\": %s, \"p99\": %s,",
                  formatDoubleJson(H.percentile(50)).c_str(),
                  formatDoubleJson(H.percentile(90)).c_str(),
                  formatDoubleJson(H.percentile(99)).c_str());
    Line(Buf);
    Out += Indent + "      \"buckets\": [";
    for (size_t B = 0; B < H.Buckets.size(); ++B) {
      std::snprintf(Buf, sizeof(Buf), "{\"lo\": %" PRIu64
                    ", \"count\": %" PRIu64 "}%s",
                    H.Buckets[B].first, H.Buckets[B].second,
                    B + 1 == H.Buckets.size() ? "" : ", ");
      Out += Buf;
    }
    Out += "]\n";
    Line(I + 1 == Snap.Histograms.size() ? "    }" : "    },");
  }
  Line("  }");
  Out += Indent + "}";
  return Out;
}

bool obs::writeMetricsJson(const std::string &Path) {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return false;
  std::string Json = metricsJson(Registry::instance().snapshot());
  Json += "\n";
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), Out);
  std::fclose(Out);
  return Written == Json.size();
}

bool obs::validateMetricsJson(const JsonValue &Doc, std::string *Error) {
  auto Fail = [&](const std::string &Message) {
    if (Error)
      *Error = Message;
    return false;
  };
  if (!Doc.isObject())
    return Fail("document is not an object");
  const JsonValue *Schema = Doc.findString("schema");
  if (!Schema || Schema->StringVal != "atmem-metrics-v1")
    return Fail("missing or unknown \"schema\" tag");

  const JsonValue *Counters = Doc.find("counters");
  if (!Counters || !Counters->isObject())
    return Fail("missing \"counters\" object");
  for (const auto &[Name, V] : Counters->Object)
    if (!V.isNumber() || V.NumberVal < 0)
      return Fail("counter \"" + Name + "\" is not a non-negative number");

  const JsonValue *Gauges = Doc.find("gauges");
  if (!Gauges || !Gauges->isObject())
    return Fail("missing \"gauges\" object");
  for (const auto &[Name, V] : Gauges->Object)
    if (!V.isNumber())
      return Fail("gauge \"" + Name + "\" is not a number");

  const JsonValue *Histograms = Doc.find("histograms");
  if (!Histograms || !Histograms->isObject())
    return Fail("missing \"histograms\" object");
  for (const auto &[Name, H] : Histograms->Object) {
    if (!H.isObject())
      return Fail("histogram \"" + Name + "\" is not an object");
    for (const char *Key : {"count", "sum", "min", "max", "p50", "p90", "p99"})
      if (!H.findNumber(Key))
        return Fail("histogram \"" + Name + "\" lacks numeric \"" + Key +
                    "\"");
    const JsonValue *Buckets = H.find("buckets");
    if (!Buckets || !Buckets->isArray())
      return Fail("histogram \"" + Name + "\" lacks \"buckets\" array");
    double BucketTotal = 0.0;
    double PrevLo = -1.0;
    for (const JsonValue &B : Buckets->Array) {
      const JsonValue *Lo = B.findNumber("lo");
      const JsonValue *N = B.findNumber("count");
      if (!Lo || !N)
        return Fail("histogram \"" + Name + "\" has a malformed bucket");
      if (Lo->NumberVal <= PrevLo)
        return Fail("histogram \"" + Name + "\" buckets not ascending");
      PrevLo = Lo->NumberVal;
      BucketTotal += N->NumberVal;
    }
    if (BucketTotal != H.findNumber("count")->NumberVal)
      return Fail("histogram \"" + Name +
                  "\" bucket counts do not sum to \"count\"");
  }
  return true;
}

bool obs::validateTraceJson(const JsonValue &Doc, std::string *Error) {
  auto Fail = [&](const std::string &Message) {
    if (Error)
      *Error = Message;
    return false;
  };
  if (!Doc.isObject())
    return Fail("document is not an object");
  const JsonValue *Events = Doc.find("traceEvents");
  if (!Events || !Events->isArray())
    return Fail("missing \"traceEvents\" array");

  // Per-tid span stack for nesting, plus per-tid timestamp monotonicity.
  std::map<double, std::vector<std::string>> Stacks;
  std::map<double, double> LastTs;
  for (size_t I = 0; I < Events->Array.size(); ++I) {
    const JsonValue &E = Events->Array[I];
    std::string Where = "event " + std::to_string(I);
    if (!E.isObject())
      return Fail(Where + " is not an object");
    const JsonValue *Name = E.findString("name");
    const JsonValue *Ph = E.findString("ph");
    const JsonValue *Ts = E.findNumber("ts");
    const JsonValue *Pid = E.findNumber("pid");
    const JsonValue *Tid = E.findNumber("tid");
    if (!Name || !E.findString("cat") || !Ph || !Ts || !Pid || !Tid)
      return Fail(Where + " lacks a required field");
    if (Ph->StringVal != "B" && Ph->StringVal != "E")
      return Fail(Where + " has unknown phase \"" + Ph->StringVal + "\"");

    double TidKey = Tid->NumberVal;
    auto LastIt = LastTs.find(TidKey);
    if (LastIt != LastTs.end() && Ts->NumberVal < LastIt->second)
      return Fail(Where + " timestamp regresses within its tid");
    LastTs[TidKey] = Ts->NumberVal;

    std::vector<std::string> &Stack = Stacks[TidKey];
    if (Ph->StringVal == "B") {
      Stack.push_back(Name->StringVal);
    } else {
      if (Stack.empty())
        return Fail(Where + " ends \"" + Name->StringVal +
                    "\" with no open span on its tid");
      if (Stack.back() != Name->StringVal)
        return Fail(Where + " ends \"" + Name->StringVal +
                    "\" but the innermost open span is \"" + Stack.back() +
                    "\"");
      Stack.pop_back();
    }
  }
  for (const auto &[Tid, Stack] : Stacks)
    if (!Stack.empty())
      return Fail("tid " + std::to_string(Tid) + " leaves span \"" +
                  Stack.back() + "\" unclosed");
  return true;
}

bool obs::exportIfConfigured(const TelemetryConfig &Config) {
  bool Ok = true;
  if (!Config.MetricsPath.empty())
    Ok = writeMetricsJson(Config.MetricsPath) && Ok;
  if (!Config.TracePath.empty())
    Ok = Tracer::instance().writeChromeTrace(Config.TracePath) && Ok;
  // The decision log streams during the run; "export" is finalization
  // (trailer + close). A no-op when no log was ever opened.
  if (!Config.DecisionLogPath.empty() || !Config.DecisionLogRingPath.empty())
    Ok = DecisionLog::instance().close() && Ok;
  if (!Config.TimeSeriesPath.empty())
    Ok = writeTimeSeriesJsonl(Config.TimeSeriesPath) && Ok;
  if (!Config.OpenMetricsPath.empty())
    Ok = writeTimeSeriesOpenMetrics(Config.OpenMetricsPath) && Ok;
  // The health log streams during the run like the decision log; export
  // is finalization. A no-op when no log was ever opened.
  if (!Config.HealthLogPath.empty())
    Ok = HealthLog::instance().close() && Ok;
  return Ok;
}
