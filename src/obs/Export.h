//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization and validation of the telemetry layer's JSON artifacts:
///
///  - the metrics snapshot ("atmem-metrics-v1", see docs/observability.md)
///    written by --metrics-out and embedded as the "metrics" block of
///    bench_results.json;
///  - the Chrome trace-event document ("atmem-trace-v1") written by
///    --trace-out.
///
/// The validators are the single source of truth for the schema: tests,
/// the CI artifact check (tools/atmem_obs_check), and any future consumer
/// all call the same functions.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_OBS_EXPORT_H
#define ATMEM_OBS_EXPORT_H

#include "obs/Json.h"
#include "obs/Telemetry.h"

#include <string>

namespace atmem {
namespace obs {

/// Serializes \p Snap as an "atmem-metrics-v1" JSON document. \p Indent
/// prefixes every line (used when embedding into bench_results.json).
std::string metricsJson(const TelemetrySnapshot &Snap,
                        const std::string &Indent = "");

/// Writes metricsJson() of a fresh registry snapshot to \p Path; false on
/// I/O failure.
bool writeMetricsJson(const std::string &Path);

/// Checks that \p Doc is a well-formed "atmem-metrics-v1" snapshot:
/// schema tag, counters/gauges/histograms objects with numeric members,
/// and per-histogram count/sum/min/max/buckets consistency (bucket counts
/// sum to "count"). \p Error names the first violation.
bool validateMetricsJson(const JsonValue &Doc, std::string *Error = nullptr);

/// Checks that \p Doc is a valid Chrome trace-event document as the
/// tracer emits it: a "traceEvents" array whose members carry name / cat /
/// ph / ts / pid / tid, with every 'B' matched by a properly nested 'E' on
/// the same tid and non-decreasing timestamps per tid.
bool validateTraceJson(const JsonValue &Doc, std::string *Error = nullptr);

/// Writes the artifacts requested by \p Config (no-op for empty paths;
/// also a no-op when collection was never enabled). Returns false when any
/// requested file could not be written.
bool exportIfConfigured(const TelemetryConfig &Config);

} // namespace obs
} // namespace atmem

#endif // ATMEM_OBS_EXPORT_H
