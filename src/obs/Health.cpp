//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming health detectors, the atmem-health-v1 JSONL event log,
/// and the offline replay the doctor tool builds on. All detector math is
/// deterministic: the same epoch stream (plus the same migration notes)
/// produces the same event sequence online and offline.
///
//===----------------------------------------------------------------------===//

#include "obs/Health.h"

#include "fault/FaultInjection.h"
#include "obs/DecisionLog.h"
#include "obs/Json.h"
#include "obs/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace atmem {
namespace obs {

//===----------------------------------------------------------------------===//
// Names
//===----------------------------------------------------------------------===//

const char *healthSeverityName(HealthSeverity Severity) {
  switch (Severity) {
  case HealthSeverity::Info:
    return "info";
  case HealthSeverity::Warn:
    return "warn";
  case HealthSeverity::Critical:
    return "critical";
  }
  return "unknown";
}

const char *healthDetectorName(HealthDetector Detector) {
  switch (Detector) {
  case HealthDetector::SlowMissRegression:
    return "slow_miss_regression";
  case HealthDetector::MigrationStorm:
    return "migration_storm";
  case HealthDetector::PingPong:
    return "ping_pong";
  case HealthDetector::LookaheadWaste:
    return "lookahead_waste";
  case HealthDetector::OverheadBudget:
    return "overhead_budget";
  case HealthDetector::StalePlacement:
    return "stale_placement";
  }
  return "unknown";
}

const char *sloStatusName(SloStatus Status) {
  switch (Status) {
  case SloStatus::Green:
    return "green";
  case SloStatus::Yellow:
    return "yellow";
  case SloStatus::Red:
    return "red";
  }
  return "unknown";
}

bool healthDetectorFromName(const std::string &Name, HealthDetector &Out) {
  for (uint32_t D = 0; D < NumHealthDetectors; ++D)
    if (Name == healthDetectorName(static_cast<HealthDetector>(D))) {
      Out = static_cast<HealthDetector>(D);
      return true;
    }
  return false;
}

bool healthSeverityFromName(const std::string &Name, HealthSeverity &Out) {
  for (HealthSeverity S : {HealthSeverity::Info, HealthSeverity::Warn,
                           HealthSeverity::Critical})
    if (Name == healthSeverityName(S)) {
      Out = S;
      return true;
    }
  return false;
}

//===----------------------------------------------------------------------===//
// Knob spec
//===----------------------------------------------------------------------===//

const char *healthKnobsHelp() {
  return "comma-separated detector overrides, e.g. "
         "\"warmup_epochs=2,cusum_warn=0.1,storm_min_ranges=4\" "
         "(see docs/observability.md for the knob catalogue)";
}

bool parseHealthKnobs(const std::string &Spec, HealthConfig &Out,
                      std::string *Error) {
  auto Fail = [&](const std::string &Message) {
    if (Error)
      *Error = Message;
    return false;
  };
  HealthConfig Cfg = Out;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Entry = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Entry.empty())
      continue;
    size_t Eq = Entry.find('=');
    if (Eq == std::string::npos)
      return Fail("knob entry '" + Entry + "' lacks '='");
    std::string Key = Entry.substr(0, Eq);
    std::string Val = Entry.substr(Eq + 1);
    char *Rest = nullptr;
    double D = std::strtod(Val.c_str(), &Rest);
    if (Val.empty() || Rest == Val.c_str() || *Rest != '\0')
      return Fail("knob '" + Key + "' has malformed value '" + Val + "'");
    auto U32 = [&](uint32_t &Field) { Field = static_cast<uint32_t>(D); };
    auto U64 = [&](uint64_t &Field) { Field = static_cast<uint64_t>(D); };
    if (Key == "ewma_alpha")
      Cfg.EwmaAlpha = D;
    else if (Key == "cusum_slack")
      Cfg.CusumSlack = D;
    else if (Key == "cusum_warn")
      Cfg.CusumWarn = D;
    else if (Key == "cusum_critical")
      Cfg.CusumCritical = D;
    else if (Key == "warmup_epochs")
      U32(Cfg.WarmupEpochs);
    else if (Key == "storm_warn_factor")
      Cfg.StormWarnFactor = D;
    else if (Key == "storm_critical_factor")
      Cfg.StormCriticalFactor = D;
    else if (Key == "storm_min_ranges")
      U64(Cfg.StormMinRanges);
    else if (Key == "pingpong_window")
      U32(Cfg.PingPongWindowEpochs);
    else if (Key == "pingpong_warn_flips")
      U32(Cfg.PingPongWarnFlips);
    else if (Key == "pingpong_critical_flips")
      U32(Cfg.PingPongCriticalFlips);
    else if (Key == "waste_window")
      U32(Cfg.WasteWindowEpochs);
    else if (Key == "waste_min_staged")
      U64(Cfg.WasteMinStaged);
    else if (Key == "waste_warn_ratio")
      Cfg.WasteWarnRatio = D;
    else if (Key == "waste_critical_ratio")
      Cfg.WasteCriticalRatio = D;
    else if (Key == "overhead_warn")
      Cfg.OverheadWarnFraction = D;
    else if (Key == "overhead_critical")
      Cfg.OverheadCriticalFraction = D;
    else if (Key == "stale_warn_epochs")
      U32(Cfg.StaleWarnEpochs);
    else if (Key == "stale_critical_epochs")
      U32(Cfg.StaleCriticalEpochs);
    else if (Key == "stale_slow_miss")
      Cfg.StaleSlowMissFraction = D;
    else
      return Fail("unknown health knob '" + Key + "'");
  }
  Out = Cfg;
  return true;
}

//===----------------------------------------------------------------------===//
// HealthMonitor
//===----------------------------------------------------------------------===//

namespace {

/// Per-chunk ping-pong direction history.
struct ChunkFlips {
  uint8_t LastDir = 2; ///< 0 = to slow, 1 = to fast, 2 = unseen.
  /// Epochs of recent direction flips (pruned to the window).
  std::vector<uint64_t> FlipEpochs;
};

std::string formatDetail(const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  return Buf;
}

} // namespace

struct HealthMonitor::Impl {
  mutable std::mutex Mutex;

  DetectorState Dets[NumHealthDetectors];
  uint64_t EventsInfo = 0;
  uint64_t EventsWarn = 0;
  uint64_t EventsCritical = 0;
  uint64_t EpochsSeen = 0;
  uint64_t LastEpoch = 0;

  /// SlowMissRegression state.
  double SmfBaseline = 0.0;
  double Cusum = 0.0;
  bool HaveSmfBaseline = false;

  /// MigrationStorm state.
  double StormBaseline = 0.0;
  bool HaveStormBaseline = false;

  /// PingPong state: (object << 32 | chunk) -> flip history, plus the
  /// moves noted since the previous epoch boundary.
  struct PendingMove {
    uint64_t Object;
    uint32_t FirstChunk;
    uint32_t NumChunks;
    bool ToFast;
  };
  std::vector<PendingMove> PendingMoves;
  std::unordered_map<uint64_t, ChunkFlips> Flips;

  /// LookaheadWaste window (per-epoch staged/cancelled pairs).
  std::deque<std::pair<uint64_t, uint64_t>> WasteWindow;

  /// StalePlacement streak.
  uint64_t StaleStreak = 0;

  /// Applies the candidate verdict to detector \p D, emitting an event on
  /// every state transition (escalation, easing, recovery) and none on a
  /// steady state — the dedup/rate-limit contract.
  void transition(uint32_t D, uint64_t Epoch, SloStatus Cand, double Value,
                  double Threshold, std::string Detail,
                  std::vector<HealthEvent> &Out) {
    DetectorState &S = Dets[D];
    S.Value = Value;
    if (Cand == S.Status)
      return;
    HealthEvent E;
    E.Epoch = Epoch;
    E.Detector = static_cast<HealthDetector>(D);
    E.Value = Value;
    E.Threshold = Threshold;
    if (Cand == SloStatus::Green) {
      E.Severity = HealthSeverity::Info;
      E.Detail = "recovered";
      if (!Detail.empty())
        E.Detail += ": " + Detail;
    } else if (Cand == SloStatus::Red) {
      E.Severity = HealthSeverity::Critical;
      E.Detail = std::move(Detail);
    } else {
      E.Severity = HealthSeverity::Warn;
      E.Detail = S.Status == SloStatus::Red ? "easing: " + Detail
                                            : std::move(Detail);
    }
    S.Status = Cand;
    S.Worst = std::max(S.Worst, Cand);
    ++S.Events;
    S.LastEventEpoch = Epoch;
    S.Detail = E.Detail;
    switch (E.Severity) {
    case HealthSeverity::Info:
      ++EventsInfo;
      break;
    case HealthSeverity::Warn:
      ++EventsWarn;
      break;
    case HealthSeverity::Critical:
      ++EventsCritical;
      break;
    }
    Out.push_back(std::move(E));
  }
};

HealthMonitor::HealthMonitor(HealthConfig ConfigIn)
    : Config(ConfigIn), I(new Impl()) {}

HealthMonitor::~HealthMonitor() { delete I; }

void HealthMonitor::noteMigration(uint64_t Object, uint32_t FirstChunk,
                                  uint32_t NumChunks, bool ToFast) {
  if (NumChunks == 0)
    return;
  std::lock_guard<std::mutex> Lock(I->Mutex);
  I->PendingMoves.push_back({Object, FirstChunk, NumChunks, ToFast});
}

std::vector<HealthEvent>
HealthMonitor::observeEpoch(const EpochSample &Sample) {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  std::vector<HealthEvent> Out;
  ++I->EpochsSeen;
  I->LastEpoch = Sample.Epoch;
  const bool Warm = I->EpochsSeen > Config.WarmupEpochs;
  auto Ewma = [&](double &Baseline, bool &Have, double Value) {
    if (!Have) {
      Baseline = Value;
      Have = true;
    } else {
      Baseline += Config.EwmaAlpha * (Value - Baseline);
    }
  };

  // --- SlowMissRegression: one-sided CUSUM over an EWMA baseline. The
  // baseline only learns while the detector is green (and during warmup),
  // so a sustained regression cannot absorb itself into normality.
  {
    double Smf = Sample.SlowMissFraction;
    SloStatus Cand = SloStatus::Green;
    if (!Warm) {
      Ewma(I->SmfBaseline, I->HaveSmfBaseline, Smf);
    } else {
      double Excess = Smf - (I->SmfBaseline + Config.CusumSlack);
      I->Cusum = std::max(0.0, I->Cusum + Excess);
      Cand = I->Cusum >= Config.CusumCritical  ? SloStatus::Red
             : I->Cusum >= Config.CusumWarn    ? SloStatus::Yellow
                                               : SloStatus::Green;
      if (Cand == SloStatus::Green)
        Ewma(I->SmfBaseline, I->HaveSmfBaseline, Smf);
    }
    double Threshold = Cand == SloStatus::Red ? Config.CusumCritical
                                              : Config.CusumWarn;
    I->transition(
        static_cast<uint32_t>(HealthDetector::SlowMissRegression),
        Sample.Epoch, Cand, I->Cusum, Threshold,
        formatDetail("slow_miss_fraction %.4f vs baseline %.4f (cusum %.4f)",
                     Smf, I->SmfBaseline, I->Cusum),
        Out);
  }

  // --- MigrationStorm: committed ranges + retries + rollbacks, judged as
  // a multiple of their own EWMA baseline (floored at 1 so a perfectly
  // quiet history cannot make the first real migration a "storm" by
  // division alone — the absolute floor still gates).
  {
    double Activity = static_cast<double>(Sample.MigrationRanges +
                                          Sample.Retries + Sample.Rollbacks);
    SloStatus Cand = SloStatus::Green;
    double Factor = 0.0;
    if (!Warm) {
      Ewma(I->StormBaseline, I->HaveStormBaseline, Activity);
    } else {
      double Base = std::max(I->StormBaseline, 1.0);
      Factor = Activity / Base;
      bool BigEnough =
          Activity >= static_cast<double>(Config.StormMinRanges);
      Cand = BigEnough && Factor >= Config.StormCriticalFactor
                 ? SloStatus::Red
             : BigEnough && Factor >= Config.StormWarnFactor
                 ? SloStatus::Yellow
                 : SloStatus::Green;
      if (Cand == SloStatus::Green)
        Ewma(I->StormBaseline, I->HaveStormBaseline, Activity);
    }
    double Threshold = Cand == SloStatus::Red ? Config.StormCriticalFactor
                                              : Config.StormWarnFactor;
    I->transition(
        static_cast<uint32_t>(HealthDetector::MigrationStorm), Sample.Epoch,
        Cand, Factor, Threshold,
        formatDetail("%.0f migration ranges+retries+rollbacks vs baseline "
                     "%.2f (%.1fx)",
                     Activity, I->StormBaseline, Factor),
        Out);
  }

  // --- PingPong: per-chunk direction flips inside a sliding window. The
  // moves noted since the last boundary are stamped with this epoch.
  {
    for (const Impl::PendingMove &Move : I->PendingMoves) {
      uint8_t Dir = Move.ToFast ? 1 : 0;
      for (uint32_t C = Move.FirstChunk;
           C < Move.FirstChunk + Move.NumChunks; ++C) {
        ChunkFlips &F = I->Flips[(Move.Object << 32) | C];
        if (F.LastDir != 2 && F.LastDir != Dir)
          F.FlipEpochs.push_back(Sample.Epoch);
        F.LastDir = Dir;
      }
    }
    I->PendingMoves.clear();
    uint64_t WindowStart =
        Sample.Epoch >= Config.PingPongWindowEpochs
            ? Sample.Epoch - Config.PingPongWindowEpochs + 1
            : 0;
    uint64_t MaxFlips = 0;
    uint64_t WorstKey = 0;
    for (auto &[Key, F] : I->Flips) {
      F.FlipEpochs.erase(
          std::remove_if(F.FlipEpochs.begin(), F.FlipEpochs.end(),
                         [&](uint64_t E) { return E < WindowStart; }),
          F.FlipEpochs.end());
      uint64_t N = F.FlipEpochs.size();
      // Deterministic tie-break on the key so iteration order of the hash
      // map never changes which chunk the event names.
      if (N > MaxFlips || (N == MaxFlips && N > 0 && Key < WorstKey)) {
        MaxFlips = N;
        WorstKey = Key;
      }
    }
    SloStatus Cand = MaxFlips >= Config.PingPongCriticalFlips
                         ? SloStatus::Red
                     : MaxFlips >= Config.PingPongWarnFlips
                         ? SloStatus::Yellow
                         : SloStatus::Green;
    double Threshold = Cand == SloStatus::Red
                           ? Config.PingPongCriticalFlips
                           : Config.PingPongWarnFlips;
    I->transition(
        static_cast<uint32_t>(HealthDetector::PingPong), Sample.Epoch, Cand,
        static_cast<double>(MaxFlips), Threshold,
        formatDetail("object %" PRIu64 " chunk %u flipped tiers %" PRIu64
                     " times in %u epochs",
                     WorstKey >> 32,
                     static_cast<uint32_t>(WorstKey & 0xffffffffu), MaxFlips,
                     Config.PingPongWindowEpochs),
        Out);
  }

  // --- LookaheadWaste: cancelled/staged ratio over a sliding window (the
  // cancel of a staged range lands one epoch after its staging, so the
  // per-epoch ratio alone whipsaws).
  {
    I->WasteWindow.emplace_back(Sample.LookaheadStaged,
                                Sample.LookaheadCancelled);
    while (I->WasteWindow.size() > Config.WasteWindowEpochs)
      I->WasteWindow.pop_front();
    uint64_t Staged = 0, Cancelled = 0;
    for (const auto &[S, C] : I->WasteWindow) {
      Staged += S;
      Cancelled += C;
    }
    double Ratio = Staged == 0 ? 0.0
                               : static_cast<double>(Cancelled) /
                                     static_cast<double>(Staged);
    bool Meaningful = Staged >= Config.WasteMinStaged;
    SloStatus Cand = Meaningful && Ratio >= Config.WasteCriticalRatio
                         ? SloStatus::Red
                     : Meaningful && Ratio >= Config.WasteWarnRatio
                         ? SloStatus::Yellow
                         : SloStatus::Green;
    double Threshold = Cand == SloStatus::Red ? Config.WasteCriticalRatio
                                              : Config.WasteWarnRatio;
    I->transition(
        static_cast<uint32_t>(HealthDetector::LookaheadWaste), Sample.Epoch,
        Cand, Ratio, Threshold,
        formatDetail("%" PRIu64 " of %" PRIu64
                     " staged ranges cancelled in %u epochs",
                     Cancelled, Staged, Config.WasteWindowEpochs),
        Out);
  }

  // --- OverheadBudget: optimize() wall as a fraction of the iteration
  // wall it bounds. Epochs without an iteration measurement stay green.
  {
    SloStatus Cand = SloStatus::Green;
    double Frac = 0.0;
    if (Sample.IterationWallUs > 0.0) {
      Frac = Sample.OptimizeWallUs / Sample.IterationWallUs;
      Cand = Frac >= Config.OverheadCriticalFraction ? SloStatus::Red
             : Frac >= Config.OverheadWarnFraction   ? SloStatus::Yellow
                                                     : SloStatus::Green;
    }
    double Threshold = Cand == SloStatus::Red
                           ? Config.OverheadCriticalFraction
                           : Config.OverheadWarnFraction;
    I->transition(
        static_cast<uint32_t>(HealthDetector::OverheadBudget), Sample.Epoch,
        Cand, Frac, Threshold,
        formatDetail("optimize %.0f us vs iteration %.0f us (%.2fx)",
                     Sample.OptimizeWallUs, Sample.IterationWallUs, Frac),
        Out);
  }

  // --- StalePlacement: epochs in a row where nothing migrated while the
  // slow tier keeps eating misses — the runtime stopped adapting.
  {
    bool Stale = Sample.MigrationRanges == 0 &&
                 Sample.SlowMissFraction >= Config.StaleSlowMissFraction;
    I->StaleStreak = Stale ? I->StaleStreak + 1 : 0;
    SloStatus Cand = I->StaleStreak >= Config.StaleCriticalEpochs
                         ? SloStatus::Red
                     : I->StaleStreak >= Config.StaleWarnEpochs
                         ? SloStatus::Yellow
                         : SloStatus::Green;
    double Threshold = Cand == SloStatus::Red ? Config.StaleCriticalEpochs
                                              : Config.StaleWarnEpochs;
    I->transition(
        static_cast<uint32_t>(HealthDetector::StalePlacement), Sample.Epoch,
        Cand, static_cast<double>(I->StaleStreak), Threshold,
        formatDetail("%" PRIu64 " epochs without migrations at "
                     "slow_miss_fraction %.4f",
                     I->StaleStreak, Sample.SlowMissFraction),
        Out);
  }

  return Out;
}

HealthMonitor::Snapshot HealthMonitor::snapshot() const {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  Snapshot Out;
  for (uint32_t D = 0; D < NumHealthDetectors; ++D) {
    Out.Detectors[D] = I->Dets[D];
    Out.Overall = std::max(Out.Overall, I->Dets[D].Status);
    Out.WorstOverall = std::max(Out.WorstOverall, I->Dets[D].Worst);
  }
  Out.EventsInfo = I->EventsInfo;
  Out.EventsWarn = I->EventsWarn;
  Out.EventsCritical = I->EventsCritical;
  Out.LastEpoch = I->LastEpoch;
  return Out;
}

//===----------------------------------------------------------------------===//
// Process-wide default enable (bench harness)
//===----------------------------------------------------------------------===//

namespace {
std::atomic<bool> GHealthDefaultEnabled{false};
std::mutex GHealthDefaultMutex;
HealthConfig GHealthDefaultConfig;
} // namespace

void setHealthDefaultEnabled(bool On, const HealthConfig &Config) {
  std::lock_guard<std::mutex> Lock(GHealthDefaultMutex);
  GHealthDefaultConfig = Config;
  GHealthDefaultEnabled.store(On, std::memory_order_relaxed);
}

bool healthDefaultEnabled() {
  return GHealthDefaultEnabled.load(std::memory_order_relaxed);
}

HealthConfig healthDefaultConfig() {
  std::lock_guard<std::mutex> Lock(GHealthDefaultMutex);
  return GHealthDefaultConfig;
}

//===----------------------------------------------------------------------===//
// HealthLog
//===----------------------------------------------------------------------===//

namespace {

void countEmitFailed() {
  if (obs::enabled()) {
    static obs::Counter Failed("health.emit_failed");
    Failed.add(1);
  }
}

std::string escapeJsonString(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    // The short escapes round-trip through obs::parseJson (which passes
    // \uXXXX through verbatim by design); other control characters never
    // appear in detector detail strings.
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    if (C == '\t') {
      Out += "\\t";
      continue;
    }
    if (C == '\r') {
      Out += "\\r";
      continue;
    }
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out += C;
  }
  return Out;
}

void appendFiniteDouble(std::string &Out, double V) {
  if (!std::isfinite(V)) {
    Out += "0";
    return;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

} // namespace

std::string healthEventJson(const HealthEvent &Event) {
  std::string Out;
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "{\"epoch\":%" PRIu64 ",\"detector\":\"",
                Event.Epoch);
  Out += Buf;
  Out += healthDetectorName(Event.Detector);
  Out += "\",\"severity\":\"";
  Out += healthSeverityName(Event.Severity);
  Out += "\",\"value\":";
  appendFiniteDouble(Out, Event.Value);
  Out += ",\"threshold\":";
  appendFiniteDouble(Out, Event.Threshold);
  Out += ",\"detail\":\"";
  Out += escapeJsonString(Event.Detail);
  Out += "\"}";
  return Out;
}

bool parseHealthLog(const std::string &Text, std::vector<HealthEvent> &Out,
                    std::string *Error) {
  auto Fail = [&](const std::string &Message) {
    if (Error)
      *Error = Message;
    return false;
  };
  size_t Pos = 0;
  size_t LineNo = 0;
  bool SawHeader = false;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (Line.empty())
      continue;
    JsonValue Doc;
    std::string ParseError;
    if (!parseJson(Line, Doc, &ParseError))
      return Fail("line " + std::to_string(LineNo) + ": " + ParseError);
    if (!SawHeader) {
      const JsonValue *Schema = Doc.findString("schema");
      if (!Schema || Schema->StringVal != "atmem-health-v1")
        return Fail("line 1 is not an atmem-health-v1 schema header");
      SawHeader = true;
      continue;
    }
    const JsonValue *Epoch = Doc.findNumber("epoch");
    const JsonValue *Detector = Doc.findString("detector");
    const JsonValue *Severity = Doc.findString("severity");
    const JsonValue *Value = Doc.findNumber("value");
    const JsonValue *Threshold = Doc.findNumber("threshold");
    const JsonValue *Detail = Doc.findString("detail");
    if (!Epoch || !Detector || !Severity || !Value || !Threshold || !Detail)
      return Fail("line " + std::to_string(LineNo) +
                  " lacks a required event field");
    HealthEvent E;
    E.Epoch = static_cast<uint64_t>(Epoch->NumberVal);
    if (!healthDetectorFromName(Detector->StringVal, E.Detector))
      return Fail("line " + std::to_string(LineNo) + " names unknown "
                  "detector '" + Detector->StringVal + "'");
    if (!healthSeverityFromName(Severity->StringVal, E.Severity))
      return Fail("line " + std::to_string(LineNo) + " names unknown "
                  "severity '" + Severity->StringVal + "'");
    E.Value = Value->NumberVal;
    E.Threshold = Threshold->NumberVal;
    E.Detail = Detail->StringVal;
    Out.push_back(std::move(E));
  }
  if (!SawHeader)
    return Fail("empty document (no schema header)");
  return true;
}

struct HealthLog::Impl {
  std::mutex Mutex;
  std::FILE *File = nullptr;
  std::string Path;
  uint64_t Dropped = 0;
  bool WriteFailed = false;
  fault::Site EmitSite{"obs.health_emit"};
};

HealthLog::Impl &HealthLog::impl() {
  static Impl I;
  return I;
}

HealthLog &HealthLog::instance() {
  static HealthLog Log;
  return Log;
}

bool HealthLog::open(const std::string &Path, std::string *Error) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  if (I.File)
    return true; // First opener wins; later runtimes share the stream.
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  const char Header[] = "{\"schema\":\"atmem-health-v1\"}\n";
  if (std::fwrite(Header, 1, sizeof(Header) - 1, File) !=
      sizeof(Header) - 1) {
    std::fclose(File);
    if (Error)
      *Error = "cannot write header to '" + Path + "'";
    return false;
  }
  I.File = File;
  I.Path = Path;
  I.Dropped = 0;
  I.WriteFailed = false;
  return true;
}

bool HealthLog::isOpen() const {
  Impl &I = const_cast<HealthLog *>(this)->impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  return I.File != nullptr;
}

std::string HealthLog::path() const {
  Impl &I = const_cast<HealthLog *>(this)->impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  return I.Path;
}

void HealthLog::append(const HealthEvent &Event) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  if (!I.File)
    return;
  // Graceful degradation (the RingSink pattern): a fired fault or a
  // failed write drops this line and latches the counter; the monitor,
  // the stats snapshot, and placement itself never notice.
  if (I.EmitSite.shouldFail()) {
    ++I.Dropped;
    countEmitFailed();
    return;
  }
  std::string Line = healthEventJson(Event);
  Line += "\n";
  if (std::fwrite(Line.data(), 1, Line.size(), I.File) != Line.size()) {
    ++I.Dropped;
    I.WriteFailed = true;
    countEmitFailed();
  }
}

bool HealthLog::close(std::string *Error) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  if (!I.File)
    return true;
  bool Ok = !I.WriteFailed;
  if (std::fclose(I.File) != 0)
    Ok = false;
  I.File = nullptr;
  I.Path.clear();
  if (!Ok && Error)
    *Error = "health log lost events to write failures";
  return Ok;
}

uint64_t HealthLog::dropped() const {
  Impl &I = const_cast<HealthLog *>(this)->impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  return I.Dropped;
}

//===----------------------------------------------------------------------===//
// Offline replay
//===----------------------------------------------------------------------===//

HealthReport replayHealth(const HealthConfig &Config,
                          const std::vector<EpochSample> &Samples,
                          const DecisionArtifact *Artifact,
                          uint64_t ArtifactEpochBase) {
  // Committed migration events per decision-log epoch (the ping-pong
  // detector's offline input).
  std::unordered_map<uint64_t, std::vector<const MigrationEventRecord *>>
      Committed;
  if (Artifact)
    for (const DecisionRecord &Rec : Artifact->Records)
      if (Rec.Kind == DecisionKind::MigrationEvent &&
          Rec.Migration.Phase == DecisionPhase::Committed)
        Committed[Rec.Migration.Epoch].push_back(&Rec.Migration);

  HealthMonitor Monitor(Config);
  HealthReport Report;
  for (const EpochSample &S : Samples) {
    auto It = Committed.find(ArtifactEpochBase + S.Epoch);
    if (It != Committed.end())
      for (const MigrationEventRecord *Mig : It->second)
        Monitor.noteMigration(Mig->Object, Mig->FirstChunk, Mig->NumChunks,
                              Mig->TargetFast != 0);
    std::vector<HealthEvent> Events = Monitor.observeEpoch(S);
    Report.Events.insert(Report.Events.end(), Events.begin(), Events.end());
  }
  HealthMonitor::Snapshot Snap = Monitor.snapshot();
  Report.Overall = Snap.WorstOverall;
  for (uint32_t D = 0; D < NumHealthDetectors; ++D)
    Report.Worst[D] = Snap.Detectors[D].Worst;
  Report.Epochs = Samples.size();
  return Report;
}

} // namespace obs
} // namespace atmem
