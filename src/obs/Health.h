//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online placement-health monitoring. Where the time series (TimeSeries.h)
/// records how a run evolved and the decision log records why each chunk
/// moved, the health layer judges the run *while it happens*: a set of
/// deterministic streaming detectors consumes the per-epoch EpochSample
/// stream plus the migration commit stream and classifies each epoch as
/// healthy, degraded, or broken — a slow-miss regression the EWMA+CUSUM
/// change-point catches, a migration storm, ping-pong re-migration of the
/// same chunks, wasted lookahead staging, an observability-overhead budget
/// breach, or a stale placement that stopped adapting while the slow tier
/// keeps missing.
///
/// Detector verdicts surface three ways: severity-tagged events appended to
/// an "atmem-health-v1" JSONL log (HealthLog), per-run SLO verdicts in the
/// metrics export (health.slo.* gauges, health.events_* counters), and a
/// live "health" section of the atmem-stats-v1 snapshot that atmem_top
/// renders as a red/yellow/green panel. The same detector rules replay
/// offline over serialized artifacts through replayHealth(), which is what
/// tools/atmem_doctor builds its triage on — online and post-hoc analysis
/// can never disagree about the same stream.
///
/// Costs follow the telemetry discipline: a runtime without health
/// configured pays one pointer null check per epoch-cadence call site and
/// nothing on the access hot path; detectors themselves run at epoch
/// cadence only.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_OBS_HEALTH_H
#define ATMEM_OBS_HEALTH_H

#include "obs/TimeSeries.h"

#include <cstdint>
#include <string>
#include <vector>

namespace atmem {
namespace obs {

struct DecisionArtifact;

/// Severity of one emitted health event.
enum class HealthSeverity : uint8_t { Info = 0, Warn = 1, Critical = 2 };

/// The streaming detectors (one state machine each).
enum class HealthDetector : uint8_t {
  SlowMissRegression = 0, ///< EWMA baseline + CUSUM on SlowMissFraction.
  MigrationStorm = 1,     ///< Ranges+retries+rollbacks spike over baseline.
  PingPong = 2,           ///< Same chunks re-migrating back and forth.
  LookaheadWaste = 3,     ///< Cancelled/staged ratio too high.
  OverheadBudget = 4,     ///< optimize() wall vs. iteration wall breach.
  StalePlacement = 5,     ///< No migrations while slow-miss stays high.
};

constexpr uint32_t NumHealthDetectors = 6;

/// Red/yellow/green verdict of one detector (and the per-run SLO).
enum class SloStatus : uint8_t { Green = 0, Yellow = 1, Red = 2 };

const char *healthSeverityName(HealthSeverity Severity);
const char *healthDetectorName(HealthDetector Detector);
const char *sloStatusName(SloStatus Status);
/// Inverse of healthDetectorName; false when \p Name is unknown.
bool healthDetectorFromName(const std::string &Name, HealthDetector &Out);
/// Inverse of healthSeverityName; false when \p Name is unknown.
bool healthSeverityFromName(const std::string &Name, HealthSeverity &Out);

/// One emitted health event. Events mark detector *state transitions*
/// (escalation, easing, recovery), never per-epoch repeats — the built-in
/// dedup that keeps a ten-epoch storm from writing ten identical lines.
struct HealthEvent {
  uint64_t Epoch = 0;
  HealthDetector Detector = HealthDetector::SlowMissRegression;
  HealthSeverity Severity = HealthSeverity::Info;
  /// The detector's decision variable at the transition (CUSUM sum, spike
  /// factor, flip count, waste ratio, overhead fraction, stale streak).
  double Value = 0.0;
  /// The threshold the decision variable crossed.
  double Threshold = 0.0;
  /// Human-readable context ("baseline 0.12", "object 3 chunk 17", ...).
  std::string Detail;
};

/// Detector tuning knobs. Every default is chosen so a healthy fig05-style
/// run stays silent; tests and atmem_doctor override via parseHealthKnobs.
struct HealthConfig {
  /// \name SlowMissRegression (EWMA baseline + one-sided CUSUM)
  /// @{
  /// EWMA smoothing factor for the SlowMissFraction baseline. The baseline
  /// freezes while the detector is non-green so a sustained regression
  /// cannot talk its way into the baseline.
  double EwmaAlpha = 0.3;
  /// CUSUM slack (the "K" allowance): per-epoch excess over baseline that
  /// is forgiven before the cumulative sum grows.
  double CusumSlack = 0.05;
  /// CUSUM decision thresholds (the "H" values).
  double CusumWarn = 0.15;
  double CusumCritical = 0.4;
  /// Epochs that only feed the baselines before any detection runs.
  uint32_t WarmupEpochs = 2;
  /// @}

  /// \name MigrationStorm
  /// Activity = MigrationRanges + Retries + Rollbacks per epoch, compared
  /// against its own EWMA baseline (floored at 1).
  /// @{
  double StormWarnFactor = 4.0;
  double StormCriticalFactor = 8.0;
  /// Absolute activity floor below which no spike is a storm.
  uint64_t StormMinRanges = 8;
  /// @}

  /// \name PingPong
  /// @{
  /// Sliding window (epochs) over which direction flips are counted.
  uint32_t PingPongWindowEpochs = 4;
  /// Direction flips of one chunk within the window for warn / critical.
  uint32_t PingPongWarnFlips = 3;
  uint32_t PingPongCriticalFlips = 5;
  /// @}

  /// \name LookaheadWaste
  /// @{
  /// Sliding window (epochs) the staged/cancelled sums cover.
  uint32_t WasteWindowEpochs = 4;
  /// Minimum staged ranges in the window before the ratio is meaningful.
  uint64_t WasteMinStaged = 8;
  double WasteWarnRatio = 0.5;
  double WasteCriticalRatio = 0.9;
  /// @}

  /// \name OverheadBudget (OptimizeWallUs vs. IterationWallUs)
  /// @{
  double OverheadWarnFraction = 0.5;
  /// Critical is opt-in (default effectively disabled): wall-clock ratios
  /// on loaded CI hosts are too noisy to fail a job on by default.
  double OverheadCriticalFraction = 1e18;
  /// @}

  /// \name StalePlacement
  /// Consecutive epochs with zero migration ranges while SlowMissFraction
  /// stays at or above the floor.
  /// @{
  uint32_t StaleWarnEpochs = 3;
  uint32_t StaleCriticalEpochs = 6;
  double StaleSlowMissFraction = 0.5;
  /// @}
};

/// Parses a "knob=value,knob=value" override spec (knob names are the
/// snake_case field names: "ewma_alpha", "cusum_warn", "warmup_epochs",
/// "storm_warn_factor", "storm_critical_factor", "storm_min_ranges",
/// "pingpong_window", "pingpong_warn_flips", "pingpong_critical_flips",
/// "waste_window", "waste_min_staged", "waste_warn_ratio",
/// "waste_critical_ratio", "overhead_warn", "overhead_critical",
/// "stale_warn_epochs", "stale_critical_epochs", "stale_slow_miss",
/// "cusum_slack", "cusum_critical"). False (with \p Error) on an unknown
/// knob or a malformed value; \p Out is then unchanged.
bool parseHealthKnobs(const std::string &Spec, HealthConfig &Out,
                      std::string *Error = nullptr);

/// One-line knob grammar reminder for --help text.
const char *healthKnobsHelp();

/// The streaming detector engine. One monitor judges one runtime's epoch
/// stream (epoch ordinals and chunk identities are per-runtime, so
/// concurrent runtimes each own a monitor even when they share the
/// process-wide HealthLog). All methods are thread-safe; observeEpoch()
/// and noteMigration() run at epoch cadence on the optimize() thread,
/// snapshot() on the stats-socket accept thread.
class HealthMonitor {
public:
  explicit HealthMonitor(HealthConfig Config = HealthConfig());
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor &) = delete;
  HealthMonitor &operator=(const HealthMonitor &) = delete;

  /// Records a committed migration of [\p FirstChunk, +\p NumChunks) of
  /// \p Object (ping-pong input). Buffered and evaluated at the next
  /// observeEpoch(), which stamps the buffered moves with its epoch.
  void noteMigration(uint64_t Object, uint32_t FirstChunk, uint32_t NumChunks,
                     bool ToFast);

  /// Feeds one epoch boundary's sample through every detector and returns
  /// the events fired by state transitions (often empty).
  std::vector<HealthEvent> observeEpoch(const EpochSample &Sample);

  /// One detector's live state as served to the stats socket.
  struct DetectorState {
    SloStatus Status = SloStatus::Green; ///< Current verdict.
    SloStatus Worst = SloStatus::Green;  ///< Worst verdict this run (SLO).
    uint64_t Events = 0;                 ///< Events emitted so far.
    uint64_t LastEventEpoch = 0;         ///< Epoch of the latest event.
    double Value = 0.0;                  ///< Latest decision variable.
    std::string Detail;                  ///< Latest event detail.
  };

  struct Snapshot {
    SloStatus Overall = SloStatus::Green; ///< Worst current status.
    SloStatus WorstOverall = SloStatus::Green; ///< Worst ever (run SLO).
    DetectorState Detectors[NumHealthDetectors];
    uint64_t EventsInfo = 0;
    uint64_t EventsWarn = 0;
    uint64_t EventsCritical = 0;
    uint64_t LastEpoch = 0; ///< Epoch of the latest observeEpoch().
  };

  Snapshot snapshot() const;

  const HealthConfig &config() const { return Config; }

private:
  struct Impl;
  HealthConfig Config;
  Impl *I;
};

/// \name Process-wide default enable
/// The bench harness builds runtimes without the batch's TelemetryConfig
/// (mirroring how the time series is armed process-wide), so a batch that
/// wants live health arms this default; every Runtime constructed while it
/// is set builds its own monitor with the given config.
/// @{
void setHealthDefaultEnabled(bool On, const HealthConfig &Config = {});
bool healthDefaultEnabled();
HealthConfig healthDefaultConfig();
/// @}

/// The process-wide append-only "atmem-health-v1" JSONL event log. Shared
/// first-opener-wins like the decision log: several runtimes write to one
/// stream, exportIfConfigured() closes it. Emission is guarded by the
/// `obs.health_emit` fault site with graceful degradation — a fired fault
/// or a write failure drops the line, latches the `health.emit_failed`
/// counter, and never aborts or perturbs placement.
class HealthLog {
public:
  static HealthLog &instance();

  /// Opens \p Path and writes the schema header. A second open while a
  /// log is open is a no-op returning true. False on I/O failure.
  bool open(const std::string &Path, std::string *Error = nullptr);

  bool isOpen() const;
  std::string path() const;

  /// Appends one event line (no-op when closed; dropped when the
  /// obs.health_emit fault fires or the write fails).
  void append(const HealthEvent &Event);

  /// Flushes and closes. No-op returning true when nothing is open; false
  /// when any append along the way was dropped by an I/O failure (fault
  /// drops are degradation, not failure, and do not taint the close).
  bool close(std::string *Error = nullptr);

  /// Events dropped since open (fault-injected and I/O drops).
  uint64_t dropped() const;

private:
  HealthLog() = default;
  struct Impl;
  Impl &impl();
};

/// Serializes one event as a compact JSON object (no trailing newline).
std::string healthEventJson(const HealthEvent &Event);

/// Parses an "atmem-health-v1" JSONL document: schema header line, then
/// one event object per line. False (with \p Error) on a malformed header
/// or line; \p Out then holds the events parsed before the failure.
bool parseHealthLog(const std::string &Text, std::vector<HealthEvent> &Out,
                    std::string *Error = nullptr);

//===----------------------------------------------------------------------===//
// Offline replay (atmem_doctor)
//===----------------------------------------------------------------------===//

/// The offline replay's verdict over one run segment.
struct HealthReport {
  std::vector<HealthEvent> Events;
  SloStatus Overall = SloStatus::Green; ///< Worst verdict in the segment.
  SloStatus Worst[NumHealthDetectors] = {};
  uint64_t Epochs = 0;
};

/// Replays the streaming detectors over a serialized epoch stream, exactly
/// as the online monitor would have judged it. \p Artifact, when non-null,
/// supplies the per-epoch committed-migration events for the ping-pong
/// detector (sample epoch N reads artifact epoch \p ArtifactEpochBase + N);
/// without it ping-pong has no input and stays green.
HealthReport replayHealth(const HealthConfig &Config,
                          const std::vector<EpochSample> &Samples,
                          const DecisionArtifact *Artifact = nullptr,
                          uint64_t ArtifactEpochBase = 0);

} // namespace obs
} // namespace atmem

#endif // ATMEM_OBS_HEALTH_H
