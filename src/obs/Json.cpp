#include "obs/Json.h"

#include "fault/FaultInjection.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace atmem;
using namespace atmem::obs;

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Object)
    if (Name == Key)
      return &Value;
  return nullptr;
}

const JsonValue *JsonValue::findNumber(std::string_view Key) const {
  const JsonValue *V = find(Key);
  return V && V->isNumber() ? V : nullptr;
}

const JsonValue *JsonValue::findString(std::string_view Key) const {
  const JsonValue *V = find(Key);
  return V && V->isString() ? V : nullptr;
}

namespace {

fault::Site ReadFault("io.read");

/// Containers deeper than this are rejected rather than parsed: the
/// recursive-descent parser (and the parsed tree's destructor) consume
/// stack proportional to nesting depth, so adversarial input must be cut
/// off long before the stack is.
constexpr size_t MaxDepth = 256;

class Parser {
public:
  Parser(std::string_view Text, std::string *Error)
      : Text(Text), Error(Error) {}

  bool run(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return true;
  }

private:
  std::string_view Text;
  std::string *Error;
  size_t Pos = 0;
  size_t Depth = 0;

  bool fail(const std::string &Message) {
    if (Error)
      *Error = Message + " (at byte " + std::to_string(Pos) + ")";
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool parseValue(JsonValue &Out) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.StringVal);
    case 't':
    case 'f':
      return parseBool(Out);
    case 'n':
      return parseNull(Out);
    default:
      if (C == '-' || (C >= '0' && C <= '9'))
        return parseNumber(Out);
      return fail(std::string("unexpected character '") + C + "'");
    }
  }

  bool parseLiteral(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return fail("malformed literal");
    Pos += Lit.size();
    return true;
  }

  bool parseBool(JsonValue &Out) {
    Out.K = JsonValue::Kind::Bool;
    if (Text[Pos] == 't') {
      Out.BoolVal = true;
      return parseLiteral("true");
    }
    Out.BoolVal = false;
    return parseLiteral("false");
  }

  bool parseNull(JsonValue &Out) {
    Out.K = JsonValue::Kind::Null;
    return parseLiteral("null");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (consume('-'))
      ;
    if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return fail("malformed number");
    if (Text[Pos] == '0' && Pos + 1 < Text.size() &&
        std::isdigit(static_cast<unsigned char>(Text[Pos + 1])))
      return fail("leading zero in number");
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (consume('.')) {
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("malformed fraction");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("malformed exponent");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    Out.K = JsonValue::Kind::Number;
    Out.NumberVal =
        std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                    nullptr);
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return fail("expected '\"'");
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (Pos >= Text.size())
          return fail("unterminated escape");
        char E = Text[Pos++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          // Pass hex escapes through verbatim; the telemetry layer never
          // emits non-ASCII, so decoding is unnecessary for validation.
          if (Pos + 4 > Text.size())
            return fail("truncated \\u escape");
          Out += "\\u";
          Out += Text.substr(Pos, 4);
          Pos += 4;
          break;
        }
        default:
          return fail("unknown escape");
        }
        continue;
      }
      Out += C;
    }
    return fail("unterminated string");
  }

  bool parseArray(JsonValue &Out) {
    if (++Depth > MaxDepth)
      return fail("nesting too deep");
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (consume(']')) {
      --Depth;
      return true;
    }
    for (;;) {
      JsonValue Element;
      skipWs();
      if (!parseValue(Element))
        return false;
      Out.Array.push_back(std::move(Element));
      skipWs();
      if (consume(']')) {
        --Depth;
        return true;
      }
      if (!consume(','))
        return fail("expected ',' or ']' in array");
    }
  }

  bool parseObject(JsonValue &Out) {
    if (++Depth > MaxDepth)
      return fail("nesting too deep");
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (consume('}')) {
      --Depth;
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':'))
        return fail("expected ':' after object key");
      skipWs();
      JsonValue Value;
      if (!parseValue(Value))
        return false;
      Out.Object.emplace_back(std::move(Key), std::move(Value));
      skipWs();
      if (consume('}')) {
        --Depth;
        return true;
      }
      if (!consume(','))
        return fail("expected ',' or '}' in object");
    }
  }
};

} // namespace

bool obs::parseJson(std::string_view Text, JsonValue &Out,
                    std::string *Error) {
  Out = JsonValue();
  return Parser(Text, Error).run(Out);
}

bool obs::parseJsonFile(const std::string &Path, JsonValue &Out,
                        std::string *Error) {
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  if (!In) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return false;
  }
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0) {
    if (ReadFault.shouldFail()) {
      std::fclose(In);
      if (Error)
        *Error = "read error on '" + Path + "' (injected)";
      return false;
    }
    Text.append(Buf, N);
  }
  bool ReadError = std::ferror(In) != 0;
  std::fclose(In);
  if (ReadError) {
    if (Error)
      *Error = "read error on '" + Path + "'";
    return false;
  }
  return parseJson(Text, Out, Error);
}
