//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal JSON document model and recursive-descent parser, used to
/// validate the telemetry layer's exported artifacts (metrics snapshots,
/// Chrome trace files, bench timing blocks) in tests and in the
/// atmem_obs_check tool. Parsing is strict: trailing garbage, unterminated
/// strings, and malformed numbers are errors. Not a general-purpose JSON
/// library — no unicode escapes beyond pass-through, no streaming.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_OBS_JSON_H
#define ATMEM_OBS_JSON_H

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace atmem {
namespace obs {

/// One parsed JSON value.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool BoolVal = false;
  double NumberVal = 0.0;
  std::string StringVal;
  std::vector<JsonValue> Array;
  /// Members in document order (duplicate keys preserved).
  std::vector<std::pair<std::string, JsonValue>> Object;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Member lookup on objects; nullptr when absent or not an object.
  const JsonValue *find(std::string_view Key) const;

  /// Convenience: find + isNumber / isString.
  const JsonValue *findNumber(std::string_view Key) const;
  const JsonValue *findString(std::string_view Key) const;
};

/// Parses \p Text into \p Out. On failure returns false and, when
/// \p Error is non-null, stores a message with the byte offset.
bool parseJson(std::string_view Text, JsonValue &Out,
               std::string *Error = nullptr);

/// Reads and parses a whole file; false on I/O or parse failure.
bool parseJsonFile(const std::string &Path, JsonValue &Out,
                   std::string *Error = nullptr);

} // namespace obs
} // namespace atmem

#endif // ATMEM_OBS_JSON_H
