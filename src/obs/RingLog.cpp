#include "obs/RingLog.h"

#include "fault/FaultInjection.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace atmem;
using namespace atmem::obs;

namespace {

constexpr char RingMagic[4] = {'A', 'T', 'D', 'R'};
constexpr uint32_t RingVersion = 1;
constexpr size_t SegmentHeaderBytes = 16; // magic + u32 version + u64 seq.
constexpr size_t FrameHeaderBytes = 16;   // u32 len + u32 crc + u64 seq.
constexpr uint64_t MinSegmentBytes = 4096;

void setError(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
}

uint32_t crc32(const uint8_t *Data, size_t N) {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? (0xedb88320u ^ (C >> 1)) : (C >> 1);
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xffffffffu;
  for (size_t I = 0; I < N; ++I)
    C = Table[(C ^ Data[I]) & 0xff] ^ (C >> 8);
  return C ^ 0xffffffffu;
}

void storeU32(uint8_t *At, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    At[I] = static_cast<uint8_t>((V >> (8 * I)) & 0xff);
}

void storeU64(uint8_t *At, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    At[I] = static_cast<uint8_t>((V >> (8 * I)) & 0xff);
}

uint32_t loadU32(const uint8_t *At) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(At[I]) << (8 * I);
  return V;
}

uint64_t loadU64(const uint8_t *At) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(At[I]) << (8 * I);
  return V;
}

std::string segmentPath(const std::string &Base, uint64_t Index) {
  char Suffix[16];
  std::snprintf(Suffix, sizeof(Suffix), ".%06llu",
                static_cast<unsigned long long>(Index));
  return Base + Suffix;
}

/// Splits \p Path into its directory (defaulting to ".") and file name.
void splitPath(const std::string &Path, std::string &Dir,
               std::string &Name) {
  size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos) {
    Dir = ".";
    Name = Path;
  } else {
    Dir = Slash == 0 ? "/" : Path.substr(0, Slash);
    Name = Path.substr(Slash + 1);
  }
}

/// True when \p Suffix is one or more decimal digits; parses them.
bool parseIndex(const std::string &Suffix, uint64_t &Index) {
  if (Suffix.empty() || Suffix.size() > 12)
    return false;
  Index = 0;
  for (char C : Suffix) {
    if (C < '0' || C > '9')
      return false;
    Index = Index * 10 + static_cast<uint64_t>(C - '0');
  }
  return true;
}

struct Segment {
  uint64_t Index;
  std::string Path;
};

/// All live segments of the ring rooted at \p Base, sorted by index.
std::vector<Segment> scanSegments(const std::string &Base) {
  std::string Dir, Name;
  splitPath(Base, Dir, Name);
  std::string Prefix = Name + ".";
  std::vector<Segment> Segments;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Segments;
  while (struct dirent *Entry = ::readdir(D)) {
    std::string EntryName = Entry->d_name;
    if (EntryName.size() <= Prefix.size() ||
        EntryName.compare(0, Prefix.size(), Prefix) != 0)
      continue;
    uint64_t Index;
    if (!parseIndex(EntryName.substr(Prefix.size()), Index))
      continue;
    Segments.push_back({Index, (Dir == "." ? std::string() : Dir + "/") +
                                   EntryName});
  }
  ::closedir(D);
  std::sort(Segments.begin(), Segments.end(),
            [](const Segment &A, const Segment &B) {
              return A.Index < B.Index;
            });
  return Segments;
}

/// True when \p Path names an existing file starting with the ATDR magic.
bool hasRingMagic(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  char Head[4];
  size_t N = std::fread(Head, 1, sizeof(Head), File);
  std::fclose(File);
  return N == sizeof(Head) &&
         std::memcmp(Head, RingMagic, sizeof(RingMagic)) == 0;
}

/// Strips a `.NNNNNN` segment suffix when \p Path is itself a segment
/// file, yielding the ring base.
std::string resolveRingBase(const std::string &Path) {
  size_t Dot = Path.find_last_of('.');
  if (Dot != std::string::npos && Dot + 1 < Path.size()) {
    uint64_t Index;
    if (parseIndex(Path.substr(Dot + 1), Index) && hasRingMagic(Path))
      return Path.substr(0, Dot);
  }
  return Path;
}

//===----------------------------------------------------------------------===//
// Ring head publication
//===----------------------------------------------------------------------===//

std::atomic<uint64_t> GHeadSegment{0};
std::atomic<uint64_t> GHeadOffset{0};
std::atomic<uint64_t> GHeadSeq{0};

void publishHead(uint64_t Segment, uint64_t Offset, uint64_t NextSeq) {
  GHeadSegment.store(Segment, std::memory_order_relaxed);
  GHeadOffset.store(Offset, std::memory_order_relaxed);
  GHeadSeq.store(NextSeq, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Writer sink
//===----------------------------------------------------------------------===//

class RingSink : public DecisionSink {
public:
  RingSink(std::string Base, const RingLogOptions &Options)
      : Base(std::move(Base)), RingWriteSite("obs.ring_write") {
    SegmentBytes = std::max(Options.SegmentBytes, MinSegmentBytes);
    MaxSegments =
        std::max<uint64_t>(2, Options.MaxBytes / SegmentBytes);
  }

  ~RingSink() override { closeSegment(); }

  /// Removes stale segments of this base and maps segment 0. Must be
  /// called (successfully) before the sink is handed to the DecisionLog.
  bool start(std::string *Error) {
    for (const Segment &Old : scanSegments(Base))
      ::unlink(Old.Path.c_str());
    if (!createSegment(0)) {
      setError(Error, "cannot create ring segment '" +
                          segmentPath(Base, 0) + "'");
      return false;
    }
    return true;
  }

  void append(const std::string &Payload) override {
    // Remember NameDefs regardless of write outcome: rotation replays
    // the dictionary at every new segment head so the surviving window
    // stays self-contained after old segments age out.
    if (!Payload.empty() &&
        static_cast<DecisionKind>(static_cast<uint8_t>(Payload[0])) ==
            DecisionKind::NameDef)
      NameDefs.push_back(Payload);
    if (!Map) {
      WriteFailed = true;
      return;
    }
    if (RingWriteSite.shouldFail()) {
      WriteFailed = true; // Injected device failure: drop, head unmoved.
      return;
    }
    if (!writeFrame(Payload))
      WriteFailed = true;
  }

  bool finish(std::string *Error) override {
    closeSegment();
    publishHead(0, 0, 0);
    if (WriteFailed) {
      setError(Error, "write failure on decision ring '" + Base + "'");
      return false;
    }
    return true;
  }

  const std::string &path() const override { return Base; }

private:
  bool createSegment(uint64_t Index) {
    std::string Path = segmentPath(Base, Index);
    int Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (Fd < 0)
      return false;
    if (::ftruncate(Fd, static_cast<off_t>(SegmentBytes)) != 0) {
      ::close(Fd);
      ::unlink(Path.c_str());
      return false;
    }
    void *Mem = ::mmap(nullptr, SegmentBytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED, Fd, 0);
    ::close(Fd); // The mapping keeps the file alive.
    if (Mem == MAP_FAILED)
      return false;
    Map = static_cast<uint8_t *>(Mem);
    CurIndex = Index;
    std::memcpy(Map, RingMagic, sizeof(RingMagic));
    storeU32(Map + 4, RingVersion);
    storeU64(Map + 8, NextSeq);
    Offset = SegmentHeaderBytes;
    publishHead(CurIndex, Offset, NextSeq);
    return true;
  }

  void closeSegment() {
    if (!Map)
      return;
    // No msync: mmap'd stores live in the kernel page cache, which
    // survives process death (the crash model here); media durability
    // is not a goal of the flight recorder.
    ::munmap(Map, SegmentBytes);
    Map = nullptr;
  }

  /// Frames \p Payload at the head, rotating first when it cannot fit.
  /// Rotation replay passes AllowRotate = false so an oversized name
  /// dictionary cannot recurse into endless fresh segments.
  bool writeFrame(const std::string &Payload, bool AllowRotate = true) {
    size_t Frame = FrameHeaderBytes + Payload.size();
    if (Offset + Frame > SegmentBytes) {
      if (!AllowRotate || !rotate())
        return false;
      if (Offset + Frame > SegmentBytes)
        return false; // Larger than a whole segment; cannot ever fit.
    }
    uint8_t *At = Map + Offset;
    const auto *Bytes = reinterpret_cast<const uint8_t *>(Payload.data());
    storeU32(At + 4, crc32(Bytes, Payload.size()));
    storeU64(At + 8, NextSeq);
    std::memcpy(At + FrameHeaderBytes, Payload.data(), Payload.size());
    // Length last: until it lands, a concurrent or post-crash reader
    // sees the zero fill and treats the frame as not yet written. The
    // fence stops the compiler from sinking the CRC/seq/payload stores
    // below the length store; the CRC remains the backstop torn-write
    // detector for anything the hardware or kernel reorders.
    std::atomic_signal_fence(std::memory_order_release);
    storeU32(At, static_cast<uint32_t>(Payload.size()));
    Offset += Frame;
    ++NextSeq;
    publishHead(CurIndex, Offset, NextSeq);
    return true;
  }

  /// Opens the next segment, replays the name dictionary into it, and
  /// unlinks segments beyond the byte cap.
  bool rotate() {
    closeSegment();
    if (!createSegment(CurIndex + 1))
      return false;
    // The replay bypasses the fault site: it is internal bookkeeping,
    // not a record emission.
    for (const std::string &Def : NameDefs)
      if (!writeFrame(Def, /*AllowRotate=*/false))
        return false;
    while (CurIndex - LowIndex + 1 > MaxSegments) {
      ::unlink(segmentPath(Base, LowIndex).c_str());
      ++LowIndex;
    }
    return true;
  }

  std::string Base;
  fault::Site RingWriteSite;
  uint64_t SegmentBytes;
  uint64_t MaxSegments;
  uint8_t *Map = nullptr;
  uint64_t Offset = 0;
  uint64_t CurIndex = 0;
  uint64_t LowIndex = 0;
  uint64_t NextSeq = 0;
  std::vector<std::string> NameDefs;
  bool WriteFailed = false;
};

/// Discards everything: the serializer-cost baseline for micro_obs.
class NullSink : public DecisionSink {
public:
  void append(const std::string &Payload) override { Bytes += Payload.size(); }
  bool finish(std::string *) override { return true; }
  const std::string &path() const override {
    static const std::string Name = "<null>";
    return Name;
  }

private:
  uint64_t Bytes = 0;
};

} // namespace

RingHead obs::ringHead() {
  RingHead Head;
  Head.Segment = GHeadSegment.load(std::memory_order_relaxed);
  Head.Offset = GHeadOffset.load(std::memory_order_relaxed);
  Head.NextSeq = GHeadSeq.load(std::memory_order_relaxed);
  return Head;
}

bool obs::openDecisionLogRing(const std::string &BasePath,
                              const RingLogOptions &Options,
                              std::string *Error) {
  if (DecisionLog::instance().isOpen())
    return true; // Share the open log; do not disturb its segments.
  auto Sink = std::make_unique<RingSink>(BasePath, Options);
  if (!Sink->start(Error))
    return false;
  return DecisionLog::instance().openSink(std::move(Sink));
}

bool obs::openDecisionLogNull() {
  return DecisionLog::instance().openSink(std::make_unique<NullSink>());
}

std::vector<std::string> obs::ringSegmentFiles(const std::string &BasePath) {
  std::vector<std::string> Paths;
  for (const Segment &S : scanSegments(resolveRingBase(BasePath)))
    Paths.push_back(S.Path);
  return Paths;
}

bool obs::isRingLog(const std::string &Path) {
  if (hasRingMagic(Path))
    return true;
  return !scanSegments(Path).empty();
}

//===----------------------------------------------------------------------===//
// Recovery reader
//===----------------------------------------------------------------------===//

bool obs::readRingLog(const std::string &BasePath, DecisionArtifact &Out,
                      std::string *Error, RingRecoveryStats *Stats) {
  Out = DecisionArtifact();
  RingRecoveryStats Local;
  std::string Base = resolveRingBase(BasePath);

  // Decode the frame stream across segments, stopping at the first torn
  // frame: a zero length is the clean end of a segment's used region; a
  // CRC or sequence mismatch is a torn or lost write; a sequence gap
  // between segments means rotation outran this scan. If the *first*
  // scanned segment cannot be opened (a live writer may rotate it away
  // between scan and open), rescan once; a second failure is a real
  // read error, not an empty ring.
  std::vector<DecisionRecord> Stream;
  bool SawTrailer = false;
  for (int Attempt = 0;; ++Attempt) {
    std::vector<Segment> Segments = scanSegments(Base);
    if (Segments.empty()) {
      setError(Error, "no ring segments found for '" + Base + "'");
      return false;
    }
    Stream.clear();
    SawTrailer = false;
    Local = RingRecoveryStats();
    std::string FirstOpenFailure;
    uint64_t ExpectedSeq = 0;
    bool First = true;
    uint64_t PrevIndex = 0;
    bool Torn = false;
    for (const Segment &Seg : Segments) {
      if (Torn)
        break;
      if (!First && Seg.Index != PrevIndex + 1)
        break; // Index gap: the older window ended here.
      std::FILE *File = std::fopen(Seg.Path.c_str(), "rb");
      if (!File) {
        if (First)
          FirstOpenFailure = Seg.Path;
        break; // A later segment vanishing just ends the window early.
      }
      std::string Bytes;
      char Buf[1 << 16];
      size_t N;
      while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
        Bytes.append(Buf, N);
      std::fclose(File);
      const auto *Data = reinterpret_cast<const uint8_t *>(Bytes.data());
      size_t Size = Bytes.size();
      if (Size < SegmentHeaderBytes ||
          std::memcmp(Data, RingMagic, sizeof(RingMagic)) != 0 ||
          loadU32(Data + 4) != RingVersion) {
        if (First) {
          setError(Error, "bad ring segment header in '" + Seg.Path + "'");
          return false;
        }
        break; // A half-created successor segment: stop cleanly.
      }
      uint64_t BaseSeq = loadU64(Data + 8);
      if (First)
        ExpectedSeq = BaseSeq;
      else if (BaseSeq != ExpectedSeq)
        break; // Sequence gap across the rotation boundary.
      First = false;
      PrevIndex = Seg.Index;
      ++Local.Segments;

      size_t Pos = SegmentHeaderBytes;
      while (Pos + FrameHeaderBytes <= Size) {
        uint32_t Len = loadU32(Data + Pos);
        if (Len == 0)
          break; // Zero fill: end of this segment's used region.
        if (Pos + FrameHeaderBytes + Len > Size) {
          Torn = true;
          ++Local.TornFrames;
          break;
        }
        uint32_t Crc = loadU32(Data + Pos + 4);
        uint64_t Seq = loadU64(Data + Pos + 8);
        const uint8_t *Payload = Data + Pos + FrameHeaderBytes;
        if (Crc != crc32(Payload, Len) || Seq != ExpectedSeq) {
          Torn = true;
          ++Local.TornFrames;
          break;
        }
        DecisionRecord Rec;
        if (!decodeDecisionPayload(Payload, Len, Pos, Rec, nullptr)) {
          Torn = true;
          ++Local.TornFrames;
          break;
        }
        ++Local.FramesRead;
        ++ExpectedSeq;
        Pos += FrameHeaderBytes + Len;
        if (Rec.Kind == DecisionKind::Trailer) {
          SawTrailer = true;
          break;
        }
        Stream.push_back(std::move(Rec));
      }
      if (SawTrailer)
        break;
    }
    if (FirstOpenFailure.empty())
      break;
    if (Attempt > 0) {
      setError(Error, "cannot open ring segment '" + FirstOpenFailure + "'");
      return false;
    }
  }
  Local.CleanClose = SawTrailer;

  // Salvage whole epochs. NameDefs are hoisted (deduplicated, first
  // occurrence wins) ahead of the epoch stream so every reference
  // resolves regardless of where rotation replayed the dictionary.
  std::vector<DecisionRecord> NameDefs;
  for (const DecisionRecord &Rec : Stream)
    if (Rec.Kind == DecisionKind::NameDef &&
        !Out.Names.count(Rec.NameId)) {
      Out.Names[Rec.NameId] = Rec.Name;
      NameDefs.push_back(Rec);
    }

  size_t FirstEpoch = Stream.size();
  size_t End = SawTrailer ? Stream.size() : 0;
  for (size_t I = 0; I < Stream.size(); ++I)
    if (Stream[I].Kind == DecisionKind::EpochBegin) {
      if (FirstEpoch == Stream.size())
        FirstEpoch = I;
      if (!SawTrailer)
        End = I; // The last EpochBegin opens the epoch we must drop.
    }

  Out.Version = 1;
  Out.Records = std::move(NameDefs);
  for (size_t I = 0; I < Stream.size(); ++I) {
    if (Stream[I].Kind == DecisionKind::NameDef)
      continue;
    if (I < FirstEpoch) {
      ++Local.DroppedHead;
      continue;
    }
    if (I >= End) {
      ++Local.DroppedTail;
      continue;
    }
    if (Stream[I].Kind == DecisionKind::EpochBegin)
      ++Local.SalvagedEpochs;
    Out.Records.push_back(std::move(Stream[I]));
  }
  // Normalize into a trailer-complete artifact: the salvage is a
  // consistent prefix of the run, and downstream validation should hold.
  Out.TrailerCount = Out.Records.size();
  Out.HasTrailer = true;

  if (Stats)
    *Stats = Local;
  return true;
}

bool obs::readDecisionLogAny(const std::string &Path, DecisionArtifact &Out,
                             std::string *Error, RingRecoveryStats *Stats,
                             bool *WasRing) {
  bool Ring = isRingLog(Path);
  if (WasRing)
    *WasRing = Ring;
  if (Ring)
    return readRingLog(Path, Out, Error, Stats);
  return readDecisionLog(Path, Out, Error);
}

bool obs::writeDecisionLogFile(const DecisionArtifact &Artifact,
                               const std::string &Path,
                               std::string *Error) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    setError(Error, "cannot open '" + Path + "' for writing");
    return false;
  }
  std::string Bytes = decisionLogHeaderBytes();
  auto frame = [&Bytes](const std::string &Payload) {
    uint8_t Len[4];
    storeU32(Len, static_cast<uint32_t>(Payload.size()));
    Bytes.append(reinterpret_cast<const char *>(Len), sizeof(Len));
    Bytes += Payload;
  };
  for (const DecisionRecord &Rec : Artifact.Records)
    frame(encodeDecisionPayload(Rec));
  DecisionRecord Trailer;
  Trailer.Kind = DecisionKind::Trailer;
  Trailer.Epoch = Artifact.Records.size();
  frame(encodeDecisionPayload(Trailer));
  bool Ok = std::fwrite(Bytes.data(), 1, Bytes.size(), File) == Bytes.size();
  if (std::fclose(File) != 0)
    Ok = false;
  if (!Ok)
    setError(Error, "write failure on '" + Path + "'");
  return Ok;
}
