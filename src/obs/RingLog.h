//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-resilient ring destination for the decision log. Where the file
/// sink appends an unbounded flat file, the ring sink writes the same
/// atdl-v1 record payloads into a rotating set of fixed-size mmap'd
/// segment files under a hard byte cap — the always-on mode: a serving
/// runtime can leave decision capture enabled indefinitely and a crash
/// (even SIGKILL) loses at most the epoch that was in flight, because
/// mmap'd stores live in the kernel page cache and survive the process.
///
/// On-disk layout ("atdr-v1"): a ring rooted at BasePath consists of
/// segment files `BasePath.NNNNNN` with monotonically increasing indices
/// (rotation deletes the oldest, so live indices form a contiguous
/// window). Each segment is exactly SegmentBytes long, zero-filled, and
/// starts with a 16-byte header:
///
///   magic "ATDR" | u32 version | u64 sequence number of the first record
///
/// followed by framed records:
///
///   u32 payload length | u32 CRC-32 of payload | u64 sequence | payload
///
/// A zero length marks the end of the used region. Payloads are exactly
/// the DecisionLog record payloads (u8 kind + little-endian fields), so
/// both sinks share one serializer. Sequence numbers increase by one per
/// record across segments; the CRC plus the sequence chain is how the
/// recovery reader detects torn writes: it stops at the first frame that
/// fails either check.
///
/// Rotation re-emits every interned NameDef at the head of each new
/// segment, making the surviving window self-contained after old
/// segments age out; the recovery reader deduplicates them. Recovery
/// salvages whole epochs only: records before the first EpochBegin of
/// the surviving window and records of the final, unterminated epoch
/// (no following EpochBegin or Trailer) are dropped, and the result is
/// normalized into a trailer-complete DecisionArtifact that passes
/// validateDecisionLog() and every downstream tool.
///
/// Writes go through the `obs.ring_write` fault-injection site: an
/// injected failure drops that record (latched into the sink's failure
/// flag) without advancing the ring head, modelling a full or failing
/// device while keeping the segment structure intact.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_OBS_RINGLOG_H
#define ATMEM_OBS_RINGLOG_H

#include "obs/DecisionLog.h"

#include <cstdint>
#include <string>
#include <vector>

namespace atmem {
namespace obs {

/// Geometry of a ring log. Defaults keep sixteen 256 KiB segments — a
/// few thousand epochs of a typical run — under a 4 MiB cap.
struct RingLogOptions {
  /// Size of every segment file. Clamped up to a small minimum so the
  /// header plus one maximal record always fits.
  uint64_t SegmentBytes = 256 << 10;
  /// Hard cap across all live segments; rotation unlinks the oldest
  /// segment beyond max(2, MaxBytes / SegmentBytes) live files.
  uint64_t MaxBytes = 4 << 20;
};

/// Last-published write position of the active ring sink. All zeros when
/// no ring is open.
struct RingHead {
  uint64_t Segment = 0; ///< Index of the segment being written.
  uint64_t Offset = 0;  ///< Byte offset of the next frame in it.
  uint64_t NextSeq = 0; ///< Sequence number the next record will carry.
};

/// Lock-free snapshot of the ring head, safe from any thread (the stats
/// socket reads it while the runtime writes records).
RingHead ringHead();

/// Routes the process-wide DecisionLog into a ring rooted at \p BasePath
/// (existing segments of that base are removed first, like fopen "wb").
/// Same sharing semantics as DecisionLog::open(): a no-op returning true
/// when a log is already open. False (with \p Error) when the first
/// segment cannot be created.
bool openDecisionLogRing(const std::string &BasePath,
                         const RingLogOptions &Options = RingLogOptions(),
                         std::string *Error = nullptr);

/// Routes the DecisionLog into a sink that discards every byte — the
/// serializer-cost baseline for bench/micro_obs.
bool openDecisionLogNull();

/// What the recovery reader saw while salvaging a ring.
struct RingRecoveryStats {
  uint64_t Segments = 0;      ///< Segment files scanned.
  uint64_t FramesRead = 0;    ///< Frames that passed CRC + sequence.
  uint64_t TornFrames = 0;    ///< Frames dropped by CRC/sequence/decode.
  uint64_t DroppedHead = 0;   ///< Records before the first EpochBegin.
  uint64_t DroppedTail = 0;   ///< Records of the unterminated last epoch.
  uint64_t SalvagedEpochs = 0; ///< Complete epochs in the artifact.
  bool CleanClose = false;    ///< A Trailer record was present.
};

/// True when \p Path looks like a ring: it has `Path.NNNNNN` segments,
/// or is itself a segment file with the ATDR magic.
bool isRingLog(const std::string &Path);

/// Salvages the ring rooted at \p BasePath (a base name or any one of
/// its segment files) into a normalized, trailer-complete artifact.
/// False (with \p Error) when no segments exist or the first segment's
/// header is unreadable. Partial salvage — torn frames, a missing
/// trailer — is success; \p Stats reports what was dropped.
bool readRingLog(const std::string &BasePath, DecisionArtifact &Out,
                 std::string *Error = nullptr,
                 RingRecoveryStats *Stats = nullptr);

/// Reads \p Path as either a flat atdl file or a ring (dispatching on
/// isRingLog), so tools accept both transparently. \p WasRing, when
/// non-null, reports which reader ran; \p Stats is filled only for
/// rings.
bool readDecisionLogAny(const std::string &Path, DecisionArtifact &Out,
                        std::string *Error = nullptr,
                        RingRecoveryStats *Stats = nullptr,
                        bool *WasRing = nullptr);

/// Re-encodes \p Artifact as a flat atdl-v1 file with a trailer — the
/// export path for salvaged rings. False (with \p Error) on I/O failure.
bool writeDecisionLogFile(const DecisionArtifact &Artifact,
                          const std::string &Path,
                          std::string *Error = nullptr);

/// The segment files of the ring rooted at \p BasePath, sorted by index
/// (diagnostics and tests).
std::vector<std::string> ringSegmentFiles(const std::string &BasePath);

} // namespace obs
} // namespace atmem

#endif // ATMEM_OBS_RINGLOG_H
