//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// UNIX-domain stats socket server and one-shot client.
///
//===----------------------------------------------------------------------===//

#include "obs/StatsSocket.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace atmem {
namespace obs {

namespace {

/// sockaddr_un carries a fixed 108-byte path on Linux; longer paths
/// cannot be bound at all, so fail them up front with a clear message.
bool fillAddress(const std::string &Path, sockaddr_un &Addr,
                 std::string *Error) {
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "stats socket path '" + Path + "' is empty or longer than " +
               std::to_string(sizeof(Addr.sun_path) - 1) + " bytes";
    return false;
  }
  memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

void writeAll(int Fd, const std::string &Body) {
  size_t Off = 0;
  while (Off < Body.size()) {
    // MSG_NOSIGNAL: a client that disconnects mid-snapshot must surface
    // as EPIPE here, not as a SIGPIPE that kills the serving runtime.
    ssize_t N = send(Fd, Body.data() + Off, Body.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return; // EPIPE etc.: client went away; nothing to do.
    }
    Off += static_cast<size_t>(N);
  }
}

} // namespace

struct StatsServer::Impl {
  int ListenFd = -1;
  std::string Path;
  Provider Render;
  std::thread AcceptThread;
  std::atomic<bool> Stop{false};

  /// Accept loop: poll with a short timeout so stop() converges without
  /// a wakeup channel; each connection gets one rendered document.
  void run() {
    while (!Stop.load(std::memory_order_relaxed)) {
      pollfd Pfd{ListenFd, POLLIN, 0};
      int Ready = poll(&Pfd, 1, /*timeout_ms=*/100);
      if (Ready <= 0)
        continue;
      int Conn = accept(ListenFd, nullptr, nullptr);
      if (Conn < 0)
        continue;
      writeAll(Conn, Render());
      close(Conn);
    }
  }
};

StatsServer::StatsServer() : I(new Impl()) {}

StatsServer::~StatsServer() {
  stop();
  delete I;
}

bool StatsServer::start(const std::string &Path, Provider Render,
                        std::string *Error) {
  if (I->ListenFd >= 0)
    return true;
  sockaddr_un Addr;
  if (!fillAddress(Path, Addr, Error))
    return false;
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("cannot create stats socket: ") + strerror(errno);
    return false;
  }
  unlink(Path.c_str()); // Replace a stale socket file, like fopen "wb".
  if (bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      listen(Fd, /*backlog=*/8) != 0) {
    if (Error)
      *Error = "cannot bind stats socket '" + Path + "': " + strerror(errno);
    close(Fd);
    return false;
  }
  I->ListenFd = Fd;
  I->Path = Path;
  I->Render = std::move(Render);
  I->Stop.store(false, std::memory_order_relaxed);
  I->AcceptThread = std::thread([this] { I->run(); });
  return true;
}

void StatsServer::stop() {
  if (I->ListenFd < 0)
    return;
  I->Stop.store(true, std::memory_order_relaxed);
  if (I->AcceptThread.joinable())
    I->AcceptThread.join();
  close(I->ListenFd);
  I->ListenFd = -1;
  unlink(I->Path.c_str());
  I->Path.clear();
  I->Render = nullptr;
}

bool StatsServer::running() const { return I->ListenFd >= 0; }

const std::string &StatsServer::path() const { return I->Path; }

bool statsSocketFetch(const std::string &Path, std::string &Out,
                      std::string *Error) {
  Out.clear();
  sockaddr_un Addr;
  if (!fillAddress(Path, Addr, Error))
    return false;
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("cannot create socket: ") + strerror(errno);
    return false;
  }
  if (connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    if (Error)
      *Error = "cannot connect to stats socket '" + Path +
               "': " + strerror(errno);
    close(Fd);
    return false;
  }
  char Buf[4096];
  for (;;) {
    ssize_t N = read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Error)
        *Error = std::string("read failure on stats socket: ") +
                 strerror(errno);
      close(Fd);
      return false;
    }
    if (N == 0)
      break;
    Out.append(Buf, static_cast<size_t>(N));
  }
  close(Fd);
  if (Out.empty()) {
    if (Error)
      *Error = "stats socket returned an empty snapshot";
    return false;
  }
  return true;
}

} // namespace obs
} // namespace atmem
