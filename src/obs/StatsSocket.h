//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Live inspection endpoint: a UNIX-domain-socket snapshot server the
/// Runtime starts when --stats-socket is given, and the matching one-shot
/// client used by tools/atmem_top and the tests.
///
/// The protocol is deliberately trivial — connect, read one JSON
/// document until EOF, close — so `nc -U` and scripts work as well as
/// atmem_top. The server does not know what it serves: the owner hands
/// it a provider callback that renders the current snapshot (metrics,
/// placement, ring head), keeping this layer free of core dependencies
/// and the provider free to lock whatever the snapshot needs. The accept
/// loop runs on its own thread and never touches the access hot path;
/// when no server is started the runtime cost is one null check at
/// shutdown.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_OBS_STATSSOCKET_H
#define ATMEM_OBS_STATSSOCKET_H

#include <functional>
#include <string>

namespace atmem {
namespace obs {

/// One-shot snapshot server over a UNIX domain socket.
class StatsServer {
public:
  /// Renders the document served to each connection. Called on the
  /// accept thread; must be safe to call concurrently with the owner's
  /// normal operation.
  using Provider = std::function<std::string()>;

  StatsServer();
  ~StatsServer(); ///< Implies stop().

  StatsServer(const StatsServer &) = delete;
  StatsServer &operator=(const StatsServer &) = delete;

  /// Binds \p Path (an existing socket file there is replaced, like
  /// fopen "wb") and starts the accept thread. False (with \p Error)
  /// when the socket cannot be created or bound; true and a no-op when
  /// already started.
  bool start(const std::string &Path, Provider Render,
             std::string *Error = nullptr);

  /// Joins the accept thread and unlinks the socket file. Idempotent.
  void stop();

  bool running() const;
  const std::string &path() const;

private:
  struct Impl;
  Impl *I;
};

/// Client side: connects to \p Path, reads until EOF into \p Out. False
/// (with \p Error) when the socket is absent or the read fails. Used by
/// atmem_top and the tests.
bool statsSocketFetch(const std::string &Path, std::string &Out,
                      std::string *Error = nullptr);

} // namespace obs
} // namespace atmem

#endif // ATMEM_OBS_STATSSOCKET_H
