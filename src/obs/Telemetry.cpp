#include "obs/Telemetry.h"

#include "support/Error.h"

#include <algorithm>
#include <array>
#include <bit>
#include <map>
#include <memory>
#include <mutex>

using namespace atmem;
using namespace atmem::obs;

std::atomic<bool> obs::detail::GEnabled{false};

void obs::setEnabled(bool On) {
  detail::GEnabled.store(On, std::memory_order_relaxed);
}

uint32_t obs::currentThreadId() {
  static std::atomic<uint32_t> Next{0};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

uint32_t obs::histogramBucketIndex(uint64_t Value) {
  if (Value < 32)
    return static_cast<uint32_t>(Value);
  uint32_t Log = 63 - static_cast<uint32_t>(std::countl_zero(Value));
  uint32_t Sub = static_cast<uint32_t>((Value >> (Log - 3)) & 7);
  return 32 + (Log - 5) * 8 + Sub;
}

uint64_t obs::histogramBucketLowerBound(uint32_t Index) {
  if (Index < 32)
    return Index;
  uint32_t Log = 5 + (Index - 32) / 8;
  uint32_t Sub = (Index - 32) % 8;
  return (uint64_t{1} << Log) + (static_cast<uint64_t>(Sub) << (Log - 3));
}

uint64_t obs::histogramBucketUpperBound(uint32_t Index) {
  if (Index < 32)
    return Index + 1;
  uint32_t Log = 5 + (Index - 32) / 8;
  uint64_t Lower = histogramBucketLowerBound(Index);
  uint64_t Width = uint64_t{1} << (Log - 3);
  return Lower > UINT64_MAX - Width ? UINT64_MAX : Lower + Width;
}

double HistogramSnapshot::percentile(double Pct) const {
  if (Count == 0)
    return 0.0;
  Pct = std::clamp(Pct, 0.0, 100.0);
  // Rank among Count values using the same closest-ranks convention as
  // atmem::percentile over a sorted vector.
  double Rank = Pct / 100.0 * static_cast<double>(Count - 1);
  uint64_t Lo = static_cast<uint64_t>(Rank);
  uint64_t Seen = 0;
  for (const auto &[Lower, N] : Buckets) {
    if (Seen + N > Lo) {
      // Interpolate inside the bucket assuming uniform occupancy.
      uint32_t Index = histogramBucketIndex(Lower);
      double Width = static_cast<double>(histogramBucketUpperBound(Index)) -
                     static_cast<double>(Lower);
      double Within =
          (Rank - static_cast<double>(Seen)) / static_cast<double>(N);
      double Value = static_cast<double>(Lower) + Within * Width;
      return std::clamp(Value, static_cast<double>(Min),
                        static_cast<double>(Max));
    }
    Seen += N;
  }
  return static_cast<double>(Max);
}

const uint64_t *TelemetrySnapshot::counter(const std::string &Name) const {
  for (const auto &[N, V] : Counters)
    if (N == Name)
      return &V;
  return nullptr;
}

const double *TelemetrySnapshot::gauge(const std::string &Name) const {
  for (const auto &[N, V] : Gauges)
    if (N == Name)
      return &V;
  return nullptr;
}

const HistogramSnapshot *
TelemetrySnapshot::histogram(const std::string &Name) const {
  for (const auto &[N, V] : Histograms)
    if (N == Name)
      return &V;
  return nullptr;
}

namespace {

// Capacity limits keep per-thread slabs statically sized so the record
// path is a single indexed fetch_add with no growth checks. The fixed
// catalogue uses a few dozen names; per-object gauges scale with the
// object population (~10 per registered object).
constexpr uint32_t MaxCounters = 256;
constexpr uint32_t MaxGauges = 4096;
constexpr uint32_t MaxHistograms = 64;

/// One histogram's per-thread storage (single writer: the owning thread).
struct HistSlab {
  std::array<std::atomic<uint64_t>, HistogramBuckets> BucketCounts{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

/// One thread's private slab set. Allocated on a thread's first record and
/// kept alive for the process lifetime so late snapshots still see counts
/// from finished threads.
struct ThreadSlab {
  std::array<std::atomic<uint64_t>, MaxCounters> Counters{};
  /// Lazily allocated per histogram; the owning thread publishes with a
  /// release store, snapshot readers acquire.
  std::array<std::atomic<HistSlab *>, MaxHistograms> Histograms{};

  ~ThreadSlab() {
    for (auto &H : Histograms)
      delete H.load(std::memory_order_relaxed);
  }
};

struct GaugeCell {
  std::atomic<double> Value{0.0};
  /// Monotonic variant state for gaugeMax.
  std::atomic<double> MaxValue{0.0};
  std::atomic<bool> Touched{false};
  std::atomic<bool> IsMax{false};
};

} // namespace

struct Registry::Impl {
  mutable std::mutex Mutex; // Guards the name maps and the slab list.
  std::map<std::string, uint32_t> CounterNames;
  std::map<std::string, uint32_t> GaugeNames;
  std::map<std::string, uint32_t> HistogramNames;
  std::vector<std::unique_ptr<ThreadSlab>> Slabs;
  /// Gauges are set from cold control paths (analyzer, migrator summary),
  /// so they live centrally with last-writer-wins semantics instead of
  /// per-thread shards that would need merge tie-breaking.
  std::array<GaugeCell, MaxGauges> Gauges{};

  ThreadSlab &localSlab() {
    thread_local ThreadSlab *Slab = nullptr;
    if (Slab)
      return *Slab;
    auto Owned = std::make_unique<ThreadSlab>();
    Slab = Owned.get();
    std::lock_guard<std::mutex> Lock(Mutex);
    Slabs.push_back(std::move(Owned));
    return *Slab;
  }

  uint32_t intern(std::map<std::string, uint32_t> &Names,
                  const std::string &Name, uint32_t Limit, const char *Kind) {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Names.find(Name);
    if (It != Names.end())
      return It->second;
    if (Names.size() >= Limit)
      reportFatalError(std::string("telemetry ") + Kind +
                       " capacity exhausted registering '" + Name + "'");
    uint32_t Id = static_cast<uint32_t>(Names.size());
    Names.emplace(Name, Id);
    return Id;
  }
};

Registry::Registry() : I(new Impl) {}

Registry &Registry::instance() {
  static Registry R;
  return R;
}

uint32_t Registry::counterId(const std::string &Name) {
  return I->intern(I->CounterNames, Name, MaxCounters, "counter");
}

uint32_t Registry::gaugeId(const std::string &Name) {
  return I->intern(I->GaugeNames, Name, MaxGauges, "gauge");
}

uint32_t Registry::histogramId(const std::string &Name) {
  return I->intern(I->HistogramNames, Name, MaxHistograms, "histogram");
}

void Registry::counterAdd(uint32_t Id, uint64_t Delta) {
  I->localSlab().Counters[Id].fetch_add(Delta, std::memory_order_relaxed);
}

void Registry::gaugeSet(uint32_t Id, double Value) {
  GaugeCell &Cell = I->Gauges[Id];
  Cell.Value.store(Value, std::memory_order_relaxed);
  Cell.Touched.store(true, std::memory_order_release);
}

void Registry::gaugeMax(uint32_t Id, double Value) {
  GaugeCell &Cell = I->Gauges[Id];
  double Cur = Cell.MaxValue.load(std::memory_order_relaxed);
  while (Value > Cur &&
         !Cell.MaxValue.compare_exchange_weak(Cur, Value,
                                              std::memory_order_relaxed))
    ;
  Cell.IsMax.store(true, std::memory_order_relaxed);
  Cell.Touched.store(true, std::memory_order_release);
}

void Registry::histogramRecord(uint32_t Id, uint64_t Value) {
  ThreadSlab &Slab = I->localSlab();
  HistSlab *H = Slab.Histograms[Id].load(std::memory_order_relaxed);
  if (!H) {
    H = new HistSlab();
    Slab.Histograms[Id].store(H, std::memory_order_release);
  }
  H->BucketCounts[histogramBucketIndex(Value)].fetch_add(
      1, std::memory_order_relaxed);
  H->Count.fetch_add(1, std::memory_order_relaxed);
  H->Sum.fetch_add(Value, std::memory_order_relaxed);
  // Single writer per slab: load-compare-store needs no CAS.
  if (Value < H->Min.load(std::memory_order_relaxed))
    H->Min.store(Value, std::memory_order_relaxed);
  if (Value > H->Max.load(std::memory_order_relaxed))
    H->Max.store(Value, std::memory_order_relaxed);
}

TelemetrySnapshot Registry::snapshot() const {
  TelemetrySnapshot Snap;
  std::lock_guard<std::mutex> Lock(I->Mutex);

  // std::map iteration is name-sorted, which makes snapshots (and the
  // exported JSON) deterministic across registration interleavings.
  for (const auto &[Name, Id] : I->CounterNames) {
    uint64_t Total = 0;
    for (const auto &Slab : I->Slabs)
      Total += Slab->Counters[Id].load(std::memory_order_relaxed);
    Snap.Counters.emplace_back(Name, Total);
  }

  for (const auto &[Name, Id] : I->GaugeNames) {
    const GaugeCell &Cell = I->Gauges[Id];
    if (!Cell.Touched.load(std::memory_order_acquire))
      continue;
    double V = Cell.IsMax.load(std::memory_order_relaxed)
                   ? Cell.MaxValue.load(std::memory_order_relaxed)
                   : Cell.Value.load(std::memory_order_relaxed);
    Snap.Gauges.emplace_back(Name, V);
  }

  for (const auto &[Name, Id] : I->HistogramNames) {
    HistogramSnapshot H;
    std::array<uint64_t, HistogramBuckets> Merged{};
    H.Min = UINT64_MAX;
    for (const auto &Slab : I->Slabs) {
      const HistSlab *S = Slab->Histograms[Id].load(std::memory_order_acquire);
      if (!S)
        continue;
      for (uint32_t B = 0; B < HistogramBuckets; ++B)
        Merged[B] += S->BucketCounts[B].load(std::memory_order_relaxed);
      H.Count += S->Count.load(std::memory_order_relaxed);
      H.Sum += S->Sum.load(std::memory_order_relaxed);
      H.Min = std::min(H.Min, S->Min.load(std::memory_order_relaxed));
      H.Max = std::max(H.Max, S->Max.load(std::memory_order_relaxed));
    }
    if (H.Count == 0)
      H.Min = 0;
    for (uint32_t B = 0; B < HistogramBuckets; ++B)
      if (Merged[B] != 0)
        H.Buckets.emplace_back(histogramBucketLowerBound(B), Merged[B]);
    Snap.Histograms.emplace_back(Name, std::move(H));
  }
  return Snap;
}

void Registry::resetValues() {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  for (const auto &Slab : I->Slabs) {
    for (auto &C : Slab->Counters)
      C.store(0, std::memory_order_relaxed);
    for (auto &HPtr : Slab->Histograms) {
      HistSlab *H = HPtr.load(std::memory_order_relaxed);
      if (!H)
        continue;
      for (auto &B : H->BucketCounts)
        B.store(0, std::memory_order_relaxed);
      H->Count.store(0, std::memory_order_relaxed);
      H->Sum.store(0, std::memory_order_relaxed);
      H->Min.store(UINT64_MAX, std::memory_order_relaxed);
      H->Max.store(0, std::memory_order_relaxed);
    }
  }
  for (auto &Cell : I->Gauges) {
    Cell.Value.store(0.0, std::memory_order_relaxed);
    Cell.MaxValue.store(0.0, std::memory_order_relaxed);
    Cell.IsMax.store(false, std::memory_order_relaxed);
    Cell.Touched.store(false, std::memory_order_relaxed);
  }
}
