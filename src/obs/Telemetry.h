//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide runtime telemetry: named counters, gauges, and log-scale
/// histograms over per-thread sharded slots. The hot path mirrors the
/// SimContext design of the parallel tracked-execution engine: a thread
/// increments only its own slab (single writer, relaxed atomics, no shared
/// cache line), and slabs are merged when a snapshot is taken. Collection
/// is disabled by default; every record operation then costs exactly one
/// relaxed atomic load and a branch, so instrumented code paths stay
/// byte-identical in behaviour and essentially free.
///
/// Metric names form a stable catalogue documented in
/// docs/observability.md; per-object analyzer metrics use dynamic names
/// ("analyzer.obj.<object>.<field>"). Handles cache the dense metric id,
/// so steady-state recording never touches the name map.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_OBS_TELEMETRY_H
#define ATMEM_OBS_TELEMETRY_H

#include "obs/Health.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace atmem {
namespace obs {

namespace detail {
extern std::atomic<bool> GEnabled;
} // namespace detail

/// True when telemetry collection is armed. Inline so disabled
/// instrumentation compiles to one relaxed load plus a branch.
inline bool enabled() {
  return detail::GEnabled.load(std::memory_order_relaxed);
}

/// Arms or disarms process-wide collection. Tools flip this on when an
/// export path (--metrics-out / --trace-out) is configured.
void setEnabled(bool On);

/// Number of log-scale histogram buckets: values below 32 are exact, and
/// each power of two above is split into 8 linear sub-buckets (worst-case
/// relative quantization error 1/16 at the bucket midpoint).
constexpr uint32_t HistogramBuckets = 32 + (64 - 5) * 8;

/// Maps a recorded value to its bucket.
uint32_t histogramBucketIndex(uint64_t Value);
/// Inclusive lower bound of bucket \p Index.
uint64_t histogramBucketLowerBound(uint32_t Index);
/// Exclusive upper bound of bucket \p Index.
uint64_t histogramBucketUpperBound(uint32_t Index);

/// Merged view of one histogram.
struct HistogramSnapshot {
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = 0;
  uint64_t Max = 0;
  /// Non-empty buckets as (inclusive lower bound, count), ascending.
  std::vector<std::pair<uint64_t, uint64_t>> Buckets;

  /// The \p Pct-th percentile (0..100) estimated by linear interpolation
  /// inside the containing bucket. Exact for values below 32; within
  /// ~6.25% relative error above. 0 when empty.
  double percentile(double Pct) const;
  double mean() const {
    return Count == 0 ? 0.0
                      : static_cast<double>(Sum) / static_cast<double>(Count);
  }
};

/// Deterministic merged view of the whole registry: every registered
/// metric, sorted by name. Two snapshots taken after the same set of
/// recorded values are identical regardless of which threads recorded
/// them or in which order.
struct TelemetrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, double>> Gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> Histograms;

  const uint64_t *counter(const std::string &Name) const;
  const double *gauge(const std::string &Name) const;
  const HistogramSnapshot *histogram(const std::string &Name) const;
};

/// The process-wide metric registry. Instrumentation sites use the typed
/// handles below; the registry itself is only touched directly to take
/// snapshots and by tests.
class Registry {
public:
  static Registry &instance();

  /// \name Registration (mutex-protected; idempotent per name)
  /// @{
  uint32_t counterId(const std::string &Name);
  uint32_t gaugeId(const std::string &Name);
  uint32_t histogramId(const std::string &Name);
  /// @}

  /// \name Recording (lock-free on the calling thread's slab)
  /// @{
  void counterAdd(uint32_t Id, uint64_t Delta);
  void gaugeSet(uint32_t Id, double Value);
  /// Monotonic gauge: keeps the maximum of all values ever set (used for
  /// high-water marks such as the migration staging buffer).
  void gaugeMax(uint32_t Id, double Value);
  void histogramRecord(uint32_t Id, uint64_t Value);
  /// @}

  /// Merges every thread's slabs into a deterministic snapshot. Safe to
  /// call while other threads record; concurrent increments land in this
  /// or the next snapshot.
  TelemetrySnapshot snapshot() const;

  /// Zeroes every value (names and ids stay registered). Tests only.
  void resetValues();

private:
  Registry();
  struct Impl;
  Impl *I;
};

/// A named monotonically increasing counter. Construction registers the
/// name once; add() is hot-path safe.
class Counter {
public:
  explicit Counter(const char *Name)
      : Id(Registry::instance().counterId(Name)) {}
  void add(uint64_t Delta = 1) const {
    if (!enabled())
      return;
    Registry::instance().counterAdd(Id, Delta);
  }

private:
  uint32_t Id;
};

/// A named last-writer-wins gauge (set) with a monotonic variant (max).
class Gauge {
public:
  explicit Gauge(const char *Name) : Id(Registry::instance().gaugeId(Name)) {}
  explicit Gauge(const std::string &Name)
      : Id(Registry::instance().gaugeId(Name)) {}
  void set(double Value) const {
    if (!enabled())
      return;
    Registry::instance().gaugeSet(Id, Value);
  }
  void max(double Value) const {
    if (!enabled())
      return;
    Registry::instance().gaugeMax(Id, Value);
  }

private:
  uint32_t Id;
};

/// A named log-scale histogram of uint64 values.
class Histogram {
public:
  explicit Histogram(const char *Name)
      : Id(Registry::instance().histogramId(Name)) {}
  void record(uint64_t Value) const {
    if (!enabled())
      return;
    Registry::instance().histogramRecord(Id, Value);
  }
  /// Seconds expressed as whole microseconds (the catalogue's convention
  /// for duration histograms, suffix "_us").
  void recordSeconds(double Seconds) const {
    if (!enabled())
      return;
    if (Seconds < 0.0)
      Seconds = 0.0;
    Registry::instance().histogramRecord(
        Id, static_cast<uint64_t>(Seconds * 1e6));
  }

private:
  uint32_t Id;
};

/// Dense per-thread id shared by the telemetry slabs and the tracer
/// (assigned on first use, stable for the thread's lifetime).
uint32_t currentThreadId();

/// Export configuration carried by RuntimeConfig and the tool layer.
struct TelemetryConfig {
  /// Master collection switch; Runtime arms the process-wide flag when a
  /// runtime is constructed with this set.
  bool Enabled = false;
  /// Metrics snapshot JSON path ("" = no file).
  std::string MetricsPath;
  /// Chrome trace-event JSON path ("" = no file).
  std::string TracePath;
  /// Placement decision flight-recorder path ("" = no log). Runtime opens
  /// the process-wide obs::DecisionLog here on construction (idempotent —
  /// concurrent runtimes share one log); exportIfConfigured() writes the
  /// trailer and closes it.
  std::string DecisionLogPath;
  /// Ring-sink base path for the decision log ("" = no ring). Mutually
  /// exclusive with DecisionLogPath in practice (whichever the Runtime
  /// opens first wins — the process-wide log is shared). Segments are
  /// written as DecisionLogRingPath.NNNNNN; see obs/RingLog.h.
  std::string DecisionLogRingPath;
  /// Ring geometry (0 = the RingLogOptions defaults).
  uint64_t RingSegmentBytes = 0;
  uint64_t RingMaxBytes = 0;
  /// Per-epoch time-series JSONL path ("" = no file).
  std::string TimeSeriesPath;
  /// Per-epoch time-series OpenMetrics text path ("" = no file).
  std::string OpenMetricsPath;
  /// UNIX-domain stats socket path ("" = no live endpoint).
  std::string StatsSocketPath;
  /// Health event JSONL path ("" = no file). Opening it (first-opener-wins
  /// process-wide, like the decision log) also arms the live monitor;
  /// exportIfConfigured() closes the log.
  std::string HealthLogPath;
  /// Arms the live health monitor without an event log (detector states
  /// still reach the metrics export and the stats-socket health panel).
  bool HealthEnabled = false;
  /// Detector tuning knobs for the monitor above.
  HealthConfig Health;

  /// Enabled if any output is requested.
  bool anyOutput() const {
    return !MetricsPath.empty() || !TracePath.empty() ||
           !DecisionLogPath.empty() || !DecisionLogRingPath.empty() ||
           !TimeSeriesPath.empty() || !OpenMetricsPath.empty() ||
           !StatsSocketPath.empty() || !HealthLogPath.empty();
  }
};

} // namespace obs
} // namespace atmem

#endif // ATMEM_OBS_TELEMETRY_H
