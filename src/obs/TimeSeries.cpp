//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch time-series store and the JSONL / OpenMetrics serializers.
///
//===----------------------------------------------------------------------===//

#include "obs/TimeSeries.h"

#include <atomic>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <mutex>

namespace atmem {
namespace obs {

struct TimeSeries::Impl {
  std::atomic<bool> Enabled{false};
  mutable std::mutex Mutex;
  std::vector<EpochSample> Samples;
};

TimeSeries::TimeSeries() : I(new Impl()) {}

TimeSeries &TimeSeries::instance() {
  static TimeSeries TS;
  return TS;
}

bool TimeSeries::enabled() const {
  return I->Enabled.load(std::memory_order_relaxed);
}

void TimeSeries::setEnabled(bool On) {
  I->Enabled.store(On, std::memory_order_relaxed);
}

void TimeSeries::record(const EpochSample &Sample) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(I->Mutex);
  I->Samples.push_back(Sample);
}

std::vector<EpochSample> TimeSeries::snapshot() const {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  return I->Samples;
}

void TimeSeries::clear() {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  I->Samples.clear();
}

namespace {

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  int N = vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N) < sizeof(Buf)
                        ? static_cast<size_t>(N)
                        : sizeof(Buf) - 1);
}

/// %.17g round-trips doubles exactly; integers print without exponent.
void appendDouble(std::string &Out, double Value) {
  appendf(Out, "%.17g", Value);
}

bool writeStringToFile(const std::string &Path, const std::string &Body,
                       std::string *Error) {
  FILE *File = fopen(Path.c_str(), "wb");
  if (!File) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written = fwrite(Body.data(), 1, Body.size(), File);
  bool Ok = Written == Body.size();
  if (fclose(File) != 0)
    Ok = false;
  if (!Ok && Error)
    *Error = "write failure on '" + Path + "'";
  return Ok;
}

} // namespace

std::string timeSeriesJsonl(const std::vector<EpochSample> &Samples) {
  std::string Out;
  appendf(Out, "{\"schema\":\"atmem-timeseries-v1\",\"epochs\":%zu}\n",
          Samples.size());
  for (const EpochSample &S : Samples) {
    appendf(Out,
            "{\"epoch\":%" PRIu64 ",\"accesses\":%" PRIu64
            ",\"misses_fast\":%" PRIu64 ",\"misses_slow\":%" PRIu64,
            S.Epoch, S.Accesses, S.MissesFast, S.MissesSlow);
    Out += ",\"slow_miss_fraction\":";
    appendDouble(Out, S.SlowMissFraction);
    Out += ",\"drain_misses_per_sec\":";
    appendDouble(Out, S.DrainMissesPerSec);
    appendf(Out,
            ",\"migration_bytes\":%" PRIu64 ",\"migration_ranges\":%" PRIu64
            ",\"retries\":%" PRIu64 ",\"rollbacks\":%" PRIu64,
            S.MigrationBytes, S.MigrationRanges, S.Retries, S.Rollbacks);
    Out += ",\"migrate_sim_sec\":";
    appendDouble(Out, S.MigrateSimSec);
    appendf(Out,
            ",\"lookahead_staged\":%" PRIu64 ",\"lookahead_cancelled\":%" PRIu64,
            S.LookaheadStaged, S.LookaheadCancelled);
    Out += ",\"lookahead_overlap_sec\":";
    appendDouble(Out, S.LookaheadOverlapSec);
    Out += ",\"fast_data_ratio\":";
    appendDouble(Out, S.FastDataRatio);
    Out += ",\"optimize_wall_us\":";
    appendDouble(Out, S.OptimizeWallUs);
    Out += "}\n";
  }
  return Out;
}

namespace {

/// One OpenMetrics gauge family: a TYPE line, then one labelled sample
/// per epoch produced by \p Value.
template <typename Fn>
void emitFamily(std::string &Out, const char *Name,
                const std::vector<EpochSample> &Samples, Fn Value) {
  appendf(Out, "# TYPE %s gauge\n", Name);
  for (const EpochSample &S : Samples) {
    appendf(Out, "%s{epoch=\"%" PRIu64 "\"} ", Name, S.Epoch);
    appendDouble(Out, Value(S));
    Out += "\n";
  }
}

} // namespace

std::string timeSeriesOpenMetrics(const std::vector<EpochSample> &Samples) {
  std::string Out;
  auto U = [](uint64_t V) { return static_cast<double>(V); };
  emitFamily(Out, "atmem_epoch_accesses", Samples,
             [&](const EpochSample &S) { return U(S.Accesses); });
  emitFamily(Out, "atmem_epoch_misses_fast", Samples,
             [&](const EpochSample &S) { return U(S.MissesFast); });
  emitFamily(Out, "atmem_epoch_misses_slow", Samples,
             [&](const EpochSample &S) { return U(S.MissesSlow); });
  emitFamily(Out, "atmem_epoch_slow_miss_fraction", Samples,
             [](const EpochSample &S) { return S.SlowMissFraction; });
  emitFamily(Out, "atmem_epoch_drain_misses_per_sec", Samples,
             [](const EpochSample &S) { return S.DrainMissesPerSec; });
  emitFamily(Out, "atmem_epoch_migration_bytes", Samples,
             [&](const EpochSample &S) { return U(S.MigrationBytes); });
  emitFamily(Out, "atmem_epoch_migration_ranges", Samples,
             [&](const EpochSample &S) { return U(S.MigrationRanges); });
  emitFamily(Out, "atmem_epoch_migration_retries", Samples,
             [&](const EpochSample &S) { return U(S.Retries); });
  emitFamily(Out, "atmem_epoch_migration_rollbacks", Samples,
             [&](const EpochSample &S) { return U(S.Rollbacks); });
  emitFamily(Out, "atmem_epoch_migrate_sim_sec", Samples,
             [](const EpochSample &S) { return S.MigrateSimSec; });
  emitFamily(Out, "atmem_epoch_lookahead_staged", Samples,
             [&](const EpochSample &S) { return U(S.LookaheadStaged); });
  emitFamily(Out, "atmem_epoch_lookahead_cancelled", Samples,
             [&](const EpochSample &S) { return U(S.LookaheadCancelled); });
  emitFamily(Out, "atmem_epoch_lookahead_overlap_sec", Samples,
             [](const EpochSample &S) { return S.LookaheadOverlapSec; });
  emitFamily(Out, "atmem_epoch_fast_data_ratio", Samples,
             [](const EpochSample &S) { return S.FastDataRatio; });
  emitFamily(Out, "atmem_epoch_optimize_wall_us", Samples,
             [](const EpochSample &S) { return S.OptimizeWallUs; });
  Out += "# EOF\n";
  return Out;
}

bool writeTimeSeriesJsonl(const std::string &Path, std::string *Error) {
  return writeStringToFile(
      Path, timeSeriesJsonl(TimeSeries::instance().snapshot()), Error);
}

bool writeTimeSeriesOpenMetrics(const std::string &Path, std::string *Error) {
  return writeStringToFile(
      Path, timeSeriesOpenMetrics(TimeSeries::instance().snapshot()), Error);
}

} // namespace obs
} // namespace atmem
