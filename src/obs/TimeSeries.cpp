//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch time-series store and the JSONL / OpenMetrics serializers.
///
//===----------------------------------------------------------------------===//

#include "obs/TimeSeries.h"

#include "obs/Json.h"

#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <mutex>

namespace atmem {
namespace obs {

struct TimeSeries::Impl {
  std::atomic<bool> Enabled{false};
  mutable std::mutex Mutex;
  std::vector<EpochSample> Samples;
};

TimeSeries::TimeSeries() : I(new Impl()) {}

TimeSeries &TimeSeries::instance() {
  static TimeSeries TS;
  return TS;
}

bool TimeSeries::enabled() const {
  return I->Enabled.load(std::memory_order_relaxed);
}

void TimeSeries::setEnabled(bool On) {
  I->Enabled.store(On, std::memory_order_relaxed);
}

void TimeSeries::record(const EpochSample &Sample) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(I->Mutex);
  I->Samples.push_back(Sample);
}

std::vector<EpochSample> TimeSeries::snapshot() const {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  return I->Samples;
}

void TimeSeries::clear() {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  I->Samples.clear();
}

namespace {

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  int N = vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N) < sizeof(Buf)
                        ? static_cast<size_t>(N)
                        : sizeof(Buf) - 1);
}

/// %.17g round-trips doubles exactly; integers print without exponent.
/// Non-finite values serialize as 0 — a ratio field poisoned by an inf/nan
/// intermediate must not produce invalid JSON or OpenMetrics text.
void appendDouble(std::string &Out, double Value) {
  if (!std::isfinite(Value)) {
    Out += '0';
    return;
  }
  appendf(Out, "%.17g", Value);
}

bool writeStringToFile(const std::string &Path, const std::string &Body,
                       std::string *Error) {
  FILE *File = fopen(Path.c_str(), "wb");
  if (!File) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written = fwrite(Body.data(), 1, Body.size(), File);
  bool Ok = Written == Body.size();
  if (fclose(File) != 0)
    Ok = false;
  if (!Ok && Error)
    *Error = "write failure on '" + Path + "'";
  return Ok;
}

} // namespace

std::string timeSeriesJsonl(const std::vector<EpochSample> &Samples) {
  std::string Out;
  appendf(Out, "{\"schema\":\"atmem-timeseries-v1\",\"epochs\":%zu}\n",
          Samples.size());
  for (const EpochSample &S : Samples) {
    appendf(Out,
            "{\"epoch\":%" PRIu64 ",\"accesses\":%" PRIu64
            ",\"misses_fast\":%" PRIu64 ",\"misses_slow\":%" PRIu64,
            S.Epoch, S.Accesses, S.MissesFast, S.MissesSlow);
    Out += ",\"slow_miss_fraction\":";
    appendDouble(Out, S.SlowMissFraction);
    Out += ",\"drain_misses_per_sec\":";
    appendDouble(Out, S.DrainMissesPerSec);
    appendf(Out,
            ",\"migration_bytes\":%" PRIu64 ",\"migration_ranges\":%" PRIu64
            ",\"retries\":%" PRIu64 ",\"rollbacks\":%" PRIu64,
            S.MigrationBytes, S.MigrationRanges, S.Retries, S.Rollbacks);
    Out += ",\"migrate_sim_sec\":";
    appendDouble(Out, S.MigrateSimSec);
    appendf(Out,
            ",\"lookahead_staged\":%" PRIu64 ",\"lookahead_cancelled\":%" PRIu64,
            S.LookaheadStaged, S.LookaheadCancelled);
    Out += ",\"lookahead_overlap_sec\":";
    appendDouble(Out, S.LookaheadOverlapSec);
    Out += ",\"fast_data_ratio\":";
    appendDouble(Out, S.FastDataRatio);
    Out += ",\"optimize_wall_us\":";
    appendDouble(Out, S.OptimizeWallUs);
    Out += ",\"iteration_wall_us\":";
    appendDouble(Out, S.IterationWallUs);
    Out += "}\n";
  }
  return Out;
}

bool parseTimeSeriesJsonl(const std::string &Text,
                          std::vector<EpochSample> &Out, std::string *Error) {
  auto Fail = [&](const std::string &Message) {
    if (Error)
      *Error = Message;
    return false;
  };
  size_t Pos = 0;
  size_t LineNo = 0;
  bool SawHeader = false;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (Line.empty())
      continue;
    JsonValue Doc;
    std::string ParseError;
    if (!parseJson(Line, Doc, &ParseError))
      return Fail("line " + std::to_string(LineNo) + ": " + ParseError);
    if (!SawHeader) {
      const JsonValue *Schema = Doc.findString("schema");
      if (!Schema || Schema->StringVal != "atmem-timeseries-v1")
        return Fail("line 1 is not an atmem-timeseries-v1 schema header");
      SawHeader = true;
      continue;
    }
    auto Num = [&](const char *Key) {
      const JsonValue *V = Doc.findNumber(Key);
      return V ? V->NumberVal : 0.0;
    };
    auto U64 = [&](const char *Key) {
      return static_cast<uint64_t>(Num(Key));
    };
    if (!Doc.findNumber("epoch"))
      return Fail("line " + std::to_string(LineNo) + " lacks \"epoch\"");
    EpochSample S;
    S.Epoch = U64("epoch");
    S.Accesses = U64("accesses");
    S.MissesFast = U64("misses_fast");
    S.MissesSlow = U64("misses_slow");
    S.SlowMissFraction = Num("slow_miss_fraction");
    S.DrainMissesPerSec = Num("drain_misses_per_sec");
    S.MigrationBytes = U64("migration_bytes");
    S.MigrationRanges = U64("migration_ranges");
    S.Retries = U64("retries");
    S.Rollbacks = U64("rollbacks");
    S.MigrateSimSec = Num("migrate_sim_sec");
    S.LookaheadStaged = U64("lookahead_staged");
    S.LookaheadCancelled = U64("lookahead_cancelled");
    S.LookaheadOverlapSec = Num("lookahead_overlap_sec");
    S.FastDataRatio = Num("fast_data_ratio");
    S.OptimizeWallUs = Num("optimize_wall_us");
    S.IterationWallUs = Num("iteration_wall_us");
    Out.push_back(S);
  }
  if (!SawHeader)
    return Fail("empty document (no schema header)");
  return true;
}

std::string openMetricsEscapeLabel(const std::string &Value) {
  // The exposition format's label escapes: backslash, double quote, and
  // line feed; everything else passes through byte-for-byte.
  std::string Out;
  Out.reserve(Value.size());
  for (char C : Value) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out;
}

namespace {

/// One OpenMetrics gauge family: a TYPE line, then one labelled sample
/// per epoch produced by \p Value. \p RunLabel is pre-escaped ("" = no
/// run label).
template <typename Fn>
void emitFamily(std::string &Out, const char *Name,
                const std::vector<EpochSample> &Samples,
                const std::string &RunLabel, Fn Value) {
  appendf(Out, "# TYPE %s gauge\n", Name);
  for (const EpochSample &S : Samples) {
    if (RunLabel.empty())
      appendf(Out, "%s{epoch=\"%" PRIu64 "\"} ", Name, S.Epoch);
    else
      appendf(Out, "%s{run=\"%s\",epoch=\"%" PRIu64 "\"} ", Name,
              RunLabel.c_str(), S.Epoch);
    appendDouble(Out, Value(S));
    Out += "\n";
  }
}

} // namespace

std::string timeSeriesOpenMetrics(const std::vector<EpochSample> &Samples,
                                  const std::string &RunLabel) {
  std::string Out;
  std::string Run = openMetricsEscapeLabel(RunLabel);
  auto U = [](uint64_t V) { return static_cast<double>(V); };
  emitFamily(Out, "atmem_epoch_accesses", Samples, Run,
             [&](const EpochSample &S) { return U(S.Accesses); });
  emitFamily(Out, "atmem_epoch_misses_fast", Samples, Run,
             [&](const EpochSample &S) { return U(S.MissesFast); });
  emitFamily(Out, "atmem_epoch_misses_slow", Samples, Run,
             [&](const EpochSample &S) { return U(S.MissesSlow); });
  emitFamily(Out, "atmem_epoch_slow_miss_fraction", Samples, Run,
             [](const EpochSample &S) { return S.SlowMissFraction; });
  emitFamily(Out, "atmem_epoch_drain_misses_per_sec", Samples, Run,
             [](const EpochSample &S) { return S.DrainMissesPerSec; });
  emitFamily(Out, "atmem_epoch_migration_bytes", Samples, Run,
             [&](const EpochSample &S) { return U(S.MigrationBytes); });
  emitFamily(Out, "atmem_epoch_migration_ranges", Samples, Run,
             [&](const EpochSample &S) { return U(S.MigrationRanges); });
  emitFamily(Out, "atmem_epoch_migration_retries", Samples, Run,
             [&](const EpochSample &S) { return U(S.Retries); });
  emitFamily(Out, "atmem_epoch_migration_rollbacks", Samples, Run,
             [&](const EpochSample &S) { return U(S.Rollbacks); });
  emitFamily(Out, "atmem_epoch_migrate_sim_sec", Samples, Run,
             [](const EpochSample &S) { return S.MigrateSimSec; });
  emitFamily(Out, "atmem_epoch_lookahead_staged", Samples, Run,
             [&](const EpochSample &S) { return U(S.LookaheadStaged); });
  emitFamily(Out, "atmem_epoch_lookahead_cancelled", Samples, Run,
             [&](const EpochSample &S) { return U(S.LookaheadCancelled); });
  emitFamily(Out, "atmem_epoch_lookahead_overlap_sec", Samples, Run,
             [](const EpochSample &S) { return S.LookaheadOverlapSec; });
  emitFamily(Out, "atmem_epoch_fast_data_ratio", Samples, Run,
             [](const EpochSample &S) { return S.FastDataRatio; });
  emitFamily(Out, "atmem_epoch_optimize_wall_us", Samples, Run,
             [](const EpochSample &S) { return S.OptimizeWallUs; });
  emitFamily(Out, "atmem_epoch_iteration_wall_us", Samples, Run,
             [](const EpochSample &S) { return S.IterationWallUs; });
  Out += "# EOF\n";
  return Out;
}

bool writeTimeSeriesJsonl(const std::string &Path, std::string *Error) {
  return writeStringToFile(
      Path, timeSeriesJsonl(TimeSeries::instance().snapshot()), Error);
}

bool writeTimeSeriesOpenMetrics(const std::string &Path, std::string *Error) {
  return writeStringToFile(
      Path, timeSeriesOpenMetrics(TimeSeries::instance().snapshot()), Error);
}

} // namespace obs
} // namespace atmem
