//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-epoch time series of the load-bearing runtime gauges. Where the
/// metrics snapshot (Export.h) answers "what were the totals at exit",
/// the time series answers "how did the run evolve": one EpochSample is
/// captured at every optimize() boundary, so regressions that cancel out
/// in the totals (a migration storm in epoch 3 absorbed by a quiet
/// epoch 7) stay visible.
///
/// Collection follows the telemetry discipline: disabled by default, and
/// a disabled record() costs one relaxed atomic load plus a branch.
/// Samples are exported as JSONL (one object per epoch, plotting-ready
/// via scripts/extract_results.py --timeseries) and as OpenMetrics text
/// (one labelled sample per epoch per metric) for scrape-style tooling.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_OBS_TIMESERIES_H
#define ATMEM_OBS_TIMESERIES_H

#include <cstdint>
#include <string>
#include <vector>

namespace atmem {
namespace obs {

/// One epoch boundary's worth of gauges, captured by Runtime::optimize()
/// right after the migration phase commits.
struct EpochSample {
  uint64_t Epoch = 0; ///< 1-based optimize() ordinal.

  /// \name Access mix of the iteration that triggered the epoch
  /// @{
  uint64_t Accesses = 0;
  uint64_t MissesFast = 0;
  uint64_t MissesSlow = 0;
  /// Slow-tier fraction of all tier misses (0 when the iteration had
  /// none) — the signal ATMem exists to drive down.
  double SlowMissFraction = 0.0;
  /// Misses drained per simulated second (drain throughput proxy).
  double DrainMissesPerSec = 0.0;
  /// @}

  /// \name Migration activity committed this epoch
  /// @{
  uint64_t MigrationBytes = 0;
  uint64_t MigrationRanges = 0;
  uint64_t Retries = 0;
  uint64_t Rollbacks = 0;
  double MigrateSimSec = 0.0;
  /// @}

  /// \name Lookahead scheduling
  /// @{
  uint64_t LookaheadStaged = 0;
  uint64_t LookaheadCancelled = 0;
  double LookaheadOverlapSec = 0.0;
  /// @}

  /// Fraction of tracked bytes resident in the fast tier after the
  /// epoch's migrations.
  double FastDataRatio = 0.0;
  /// Wall-clock microseconds optimize() itself spent — the observability
  /// and decision overhead this subsystem is meant to keep honest.
  double OptimizeWallUs = 0.0;
  /// Wall-clock microseconds between the previous epoch boundary and this
  /// optimize() call — the application compute the overhead above is
  /// budgeted against. 0 for the first epoch (no previous boundary).
  double IterationWallUs = 0.0;
};

/// Process-wide sample store, shared by every Runtime like the metric
/// registry. Thread-safe; record() is called at epoch cadence (never the
/// access hot path), so a mutex is fine.
class TimeSeries {
public:
  static TimeSeries &instance();

  /// One relaxed load + branch when disabled.
  bool enabled() const;
  void setEnabled(bool On);

  void record(const EpochSample &Sample);
  std::vector<EpochSample> snapshot() const;
  /// Drops every sample (names in the metric registry are untouched).
  void clear();

private:
  TimeSeries();
  struct Impl;
  Impl *I;
};

/// Serializes \p Samples as JSONL: one "atmem-timeseries-v1" header line,
/// then one compact JSON object per epoch in capture order. Non-finite
/// ratio fields serialize as 0 so the output is always valid JSON.
std::string timeSeriesJsonl(const std::vector<EpochSample> &Samples);

/// Serializes \p Samples as OpenMetrics text (gauge families named
/// atmem_epoch_*, one sample per epoch labelled {epoch="N"}, terminated
/// by "# EOF"). A non-empty \p RunLabel adds a run="..." label to every
/// sample (escaped per the OpenMetrics exposition rules).
std::string timeSeriesOpenMetrics(const std::vector<EpochSample> &Samples,
                                  const std::string &RunLabel = "");

/// Escapes \p Value for use inside an OpenMetrics label string
/// (backslash, double quote, and newline get backslash escapes).
std::string openMetricsEscapeLabel(const std::string &Value);

/// Parses an "atmem-timeseries-v1" JSONL document back into samples
/// (tools/atmem_doctor and atmem_obs_check --timeseries). Fields absent
/// from a line default to 0, so logs from before a field was added still
/// load. False (with \p Error) on a malformed header or line; \p Out then
/// holds the samples parsed before the failure.
bool parseTimeSeriesJsonl(const std::string &Text,
                          std::vector<EpochSample> &Out,
                          std::string *Error = nullptr);

/// \name File writers (false on I/O failure)
/// @{
bool writeTimeSeriesJsonl(const std::string &Path,
                          std::string *Error = nullptr);
bool writeTimeSeriesOpenMetrics(const std::string &Path,
                                std::string *Error = nullptr);
/// @}

} // namespace obs
} // namespace atmem

#endif // ATMEM_OBS_TIMESERIES_H
