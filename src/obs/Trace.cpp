#include "obs/Trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>

using namespace atmem;
using namespace atmem::obs;

namespace {

using Clock = std::chrono::steady_clock;

/// JSON string escaping for names/categories/arg keys.
std::string escapeJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

struct Tracer::Impl {
  mutable std::mutex Mutex;
  std::vector<TraceEvent> Events;
  Clock::time_point Epoch = Clock::now();

  double nowUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - Epoch)
        .count();
  }
};

Tracer::Tracer() : I(new Impl) {}

Tracer &Tracer::instance() {
  static Tracer T;
  return T;
}

void Tracer::begin(const char *Name, const char *Category) {
  TraceEvent E;
  E.Name = Name;
  E.Category = Category;
  E.Phase = 'B';
  E.Tid = currentThreadId();
  std::lock_guard<std::mutex> Lock(I->Mutex);
  E.WallUs = I->nowUs();
  I->Events.push_back(std::move(E));
}

void Tracer::end(const char *Name, const char *Category,
                 std::vector<std::pair<std::string, double>> Args) {
  TraceEvent E;
  E.Name = Name;
  E.Category = Category;
  E.Phase = 'E';
  E.Tid = currentThreadId();
  E.Args = std::move(Args);
  std::lock_guard<std::mutex> Lock(I->Mutex);
  E.WallUs = I->nowUs();
  I->Events.push_back(std::move(E));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  return I->Events;
}

size_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  return I->Events.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> Lock(I->Mutex);
  I->Events.clear();
  I->Epoch = Clock::now();
}

std::string Tracer::chromeTraceJson() const {
  std::vector<TraceEvent> Events = events();
  std::string Out;
  Out += "{\n  \"traceEvents\": [\n";
  char Buf[256];
  for (size_t N = 0; N < Events.size(); ++N) {
    const TraceEvent &E = Events[N];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", "
                  "\"ts\": %.3f, \"pid\": 1, \"tid\": %" PRIu32,
                  escapeJson(E.Name).c_str(), escapeJson(E.Category).c_str(),
                  E.Phase, E.WallUs, E.Tid);
    Out += Buf;
    if (!E.Args.empty()) {
      Out += ", \"args\": {";
      for (size_t A = 0; A < E.Args.size(); ++A) {
        std::snprintf(Buf, sizeof(Buf), "%s\"%s\": %.9g",
                      A == 0 ? "" : ", ", escapeJson(E.Args[A].first).c_str(),
                      E.Args[A].second);
        Out += Buf;
      }
      Out += "}";
    }
    Out += "}";
    if (N + 1 != Events.size())
      Out += ",";
    Out += "\n";
  }
  Out += "  ],\n";
  Out += "  \"displayTimeUnit\": \"ms\",\n";
  Out += "  \"otherData\": {\"tool\": \"atmem\", "
         "\"schema\": \"atmem-trace-v1\"}\n";
  Out += "}\n";
  return Out;
}

bool Tracer::writeChromeTrace(const std::string &Path) const {
  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out)
    return false;
  std::string Json = chromeTraceJson();
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), Out);
  std::fclose(Out);
  return Written == Json.size();
}
