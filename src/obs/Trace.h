//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Span-based pipeline tracer. Instrumented stages record begin/end
/// events carrying a dense thread id, a wall-clock timestamp (microseconds
/// since the tracer epoch), and optional numeric arguments — typically the
/// stage's *simulated* duration, so a trace shows both what the host spent
/// and what the model charged. Export is Chrome trace-event JSON (the
/// "traceEvents" array format), loadable in Perfetto or chrome://tracing.
///
/// Spans are scoped per thread (SpanScope is RAII), so begin/end events
/// nest properly within each tid. The tracer shares the process-wide
/// obs::enabled() switch: a disabled span construction costs one relaxed
/// atomic load and a branch. Span rates are pipeline-stage coarse
/// (iterations, analyzer runs, migration ranges), so the event sink is a
/// simple mutex-protected buffer rather than a sharded one.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_OBS_TRACE_H
#define ATMEM_OBS_TRACE_H

#include "obs/Telemetry.h"

#include <string>
#include <utility>
#include <vector>

namespace atmem {
namespace obs {

/// One begin or end event.
struct TraceEvent {
  std::string Name;
  std::string Category;
  char Phase = 'B'; ///< 'B' = begin, 'E' = end.
  uint32_t Tid = 0;
  double WallUs = 0.0; ///< Microseconds since the tracer epoch.
  /// Numeric arguments (attached to end events by SpanScope).
  std::vector<std::pair<std::string, double>> Args;
};

/// Process-wide event sink.
class Tracer {
public:
  static Tracer &instance();

  /// Records a begin event on the calling thread.
  void begin(const char *Name, const char *Category);

  /// Records the matching end event with optional arguments.
  void end(const char *Name, const char *Category,
           std::vector<std::pair<std::string, double>> Args = {});

  /// Copy of all recorded events, in recording order (per tid this is
  /// begin/end nesting order).
  std::vector<TraceEvent> events() const;

  size_t eventCount() const;

  /// Drops all recorded events (tests and tool re-runs).
  void clear();

  /// Serializes the recorded events as Chrome trace-event JSON. Returns
  /// false when the file cannot be written.
  bool writeChromeTrace(const std::string &Path) const;

  /// The JSON document written by writeChromeTrace, as a string.
  std::string chromeTraceJson() const;

private:
  Tracer();
  struct Impl;
  Impl *I;
};

/// RAII span: emits a begin event at construction and the end event (with
/// any attached args) at destruction. Inert when telemetry is disabled at
/// construction time, even if it gets enabled mid-span.
class SpanScope {
public:
  explicit SpanScope(const char *Name, const char *Category = "pipeline")
      : Name(Name), Category(Category), Active(enabled()) {
    if (Active)
      Tracer::instance().begin(Name, Category);
  }
  ~SpanScope() {
    if (Active)
      Tracer::instance().end(Name, Category, std::move(Args));
  }
  SpanScope(const SpanScope &) = delete;
  SpanScope &operator=(const SpanScope &) = delete;

  /// Attaches a numeric argument to the end event. Chainable.
  SpanScope &arg(const char *Key, double Value) {
    if (Active)
      Args.emplace_back(Key, Value);
    return *this;
  }

  bool active() const { return Active; }

private:
  const char *Name;
  const char *Category;
  bool Active;
  std::vector<std::pair<std::string, double>> Args;
};

} // namespace obs
} // namespace atmem

#endif // ATMEM_OBS_TRACE_H
