#include "profiler/OfflineProfiler.h"

using namespace atmem;
using namespace atmem::prof;

ProfileSource::~ProfileSource() = default;

void OfflineProfiler::notifyMiss(uint64_t Va) {
  ++Misses;
  // Offline replay touches every trace event (no sampling), so the
  // hinted interval index matters even more here than in the sampler.
  mem::Attribution Attr;
  if (!Registry.attributeIndexed(Va, Attr, Hint))
    return;
  if (Profiles.size() <= Attr.Object)
    Profiles.resize(Attr.Object + 1);
  ObjectProfile &Profile = Profiles[Attr.Object];
  if (Profile.Samples.empty()) {
    uint32_t Chunks = Registry.object(Attr.Object).numChunks();
    Profile.Samples.assign(Chunks, 0);
    Profile.EstimatedMisses.assign(Chunks, 0.0);
  }
  ++Profile.Samples[Attr.Chunk];
  Profile.EstimatedMisses[Attr.Chunk] += 1.0;
}

bool OfflineProfiler::loadTrace(const std::string &Path) {
  TraceReader Reader;
  if (!Reader.open(Path))
    return false;
  return Reader.forEach([this](uint64_t Va) { notifyMiss(Va); });
}

ObjectProfile OfflineProfiler::profileFor(mem::ObjectId Id) const {
  if (Id < Profiles.size() && !Profiles[Id].Samples.empty())
    return Profiles[Id];
  ObjectProfile Empty;
  uint32_t Chunks = Registry.object(Id).numChunks();
  Empty.Samples.assign(Chunks, 0);
  Empty.EstimatedMisses.assign(Chunks, 0.0);
  return Empty;
}
