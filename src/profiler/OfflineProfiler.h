//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full-information profiling from a recorded miss trace — the offline
/// (Pin-style) comparator of the paper's related work [9, 30]. Every miss
/// counts exactly (period 1, no sampling loss), giving the analyzer a
/// ground-truth density map. Comparing placements derived from this
/// source against the SamplingProfiler's quantifies the information the
/// sampler loses and how much of it the tree promotion patches back
/// (Objective II).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_PROFILER_OFFLINEPROFILER_H
#define ATMEM_PROFILER_OFFLINEPROFILER_H

#include "mem/DataObjectRegistry.h"
#include "profiler/ProfileSource.h"
#include "profiler/TraceFile.h"

#include <string>
#include <vector>

namespace atmem {
namespace prof {

/// Exact per-chunk miss profiles accumulated from a miss stream.
class OfflineProfiler : public ProfileSource {
public:
  explicit OfflineProfiler(mem::DataObjectRegistry &Registry)
      : Registry(Registry) {}

  /// Counts one miss at \p Va (called directly when profiling in-process
  /// without a trace file).
  void notifyMiss(uint64_t Va);

  /// Accumulates every event of the trace at \p Path. Returns false when
  /// the file is missing, malformed, or truncated.
  bool loadTrace(const std::string &Path);

  /// Total misses accumulated.
  uint64_t missCount() const { return Misses; }

  ObjectProfile profileFor(mem::ObjectId Id) const override;
  /// Exact counts: every miss is a sample.
  uint64_t period() const override { return 1; }

private:
  mem::DataObjectRegistry &Registry;
  std::vector<ObjectProfile> Profiles;
  mem::AttributionHint Hint;
  uint64_t Misses = 0;
};

} // namespace prof
} // namespace atmem

#endif // ATMEM_PROFILER_OFFLINEPROFILER_H
