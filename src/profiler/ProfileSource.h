//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract source of per-chunk miss profiles for the analyzer. Two
/// implementations exist: the online PEBS-like SamplingProfiler (the
/// paper's mechanism) and the trace-driven OfflineProfiler (the
/// full-information comparator in the style of the Pin-based offline
/// tools the paper cites as related work [9, 30]). Keeping the analyzer
/// source-agnostic lets the benchmarks quantify exactly how much quality
/// sampling loses — and how much the tree-based patching wins back
/// (the paper's Objective II).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_PROFILER_PROFILESOURCE_H
#define ATMEM_PROFILER_PROFILESOURCE_H

#include "mem/DataObject.h"

#include <cstdint>
#include <vector>

namespace atmem {
namespace prof {

/// Per-object sampling result.
struct ObjectProfile {
  /// Raw sample hits per chunk.
  std::vector<uint64_t> Samples;
  /// Unbiased miss estimate per chunk: each sample contributes the period
  /// in force when it was taken (exact counts for offline profiles).
  std::vector<double> EstimatedMisses;
};

/// Anything that can hand the analyzer per-chunk miss estimates.
class ProfileSource {
public:
  virtual ~ProfileSource();

  /// Profile for one object (zero-filled when the object was never
  /// observed).
  virtual ObjectProfile profileFor(mem::ObjectId Id) const = 0;

  /// The sampling period behind the estimates (Eq. 2's noise floor);
  /// 1 for exact offline profiles.
  virtual uint64_t period() const = 0;
};

} // namespace prof
} // namespace atmem

#endif // ATMEM_PROFILER_PROFILESOURCE_H
