#include "profiler/SamplingProfiler.h"

#include "obs/Telemetry.h"
#include "obs/Trace.h"
#include "support/Logging.h"

#include <algorithm>
#include <cmath>

using namespace atmem;
using namespace atmem::prof;

SamplingProfiler::SamplingProfiler(mem::DataObjectRegistry &Registry,
                                   ProfilerConfig Config)
    : Registry(Registry), Config(Config) {}

uint64_t SamplingProfiler::deriveInitialPeriod(uint64_t TotalChunks,
                                               uint64_t TotalBytes,
                                               uint32_t Threads) {
  // Empirical rule: one pass over the working set misses roughly once per
  // cache line; a profiling window covers a few passes. Aim the period so
  // the expected samples from one pass give each chunk a statistically
  // useful count (~16), keeping per-chunk Poisson noise from masquerading
  // as skew. Each hardware thread drains its own PEBS buffer, so the
  // thread count only nudges the period up slightly to bound aggregate
  // record volume on very wide machines.
  uint64_t ExpectedMissesPerPass = std::max<uint64_t>(TotalBytes / 64, 1);
  uint64_t WantedSamples = std::max<uint64_t>(TotalChunks * 16, 1024);
  uint64_t Period = ExpectedMissesPerPass / WantedSamples;
  if (Threads > 128)
    Period *= 2;
  Period = std::max<uint64_t>(Period, 16);
  return std::min<uint64_t>(Period, 1u << 20);
}

void SamplingProfiler::start(uint32_t ThreadsIn) {
  Profiles.clear();
  MissesSeen = 0;
  SamplesTaken = 0;
  Threads = std::max(1u, ThreadsIn);

  uint64_t TotalChunks = 0;
  uint64_t TotalBytes = 0;
  for (const mem::DataObject *Obj : Registry.liveObjects()) {
    TotalChunks += Obj->numChunks();
    TotalBytes += Obj->mappedBytes();
  }
  double Budget = Config.SamplesPerChunk * static_cast<double>(TotalChunks);
  SampleBudget = static_cast<uint64_t>(std::clamp<double>(
      Budget, static_cast<double>(Config.MinSampleBudget),
      static_cast<double>(Config.MaxSampleBudget)));

  Period = Config.InitialPeriod != 0
               ? Config.InitialPeriod
               : deriveInitialPeriod(TotalChunks, TotalBytes, Threads);
  StartPeriod = Period;
  Countdown = Period;
  Active = true;
  if (obs::enabled()) {
    obs::Tracer::instance().begin("profiler.window", "profiler");
    WindowSpanOpen = true;
  }
  logDebug("profiler armed: period=%llu budget=%llu chunks=%llu",
           static_cast<unsigned long long>(Period),
           static_cast<unsigned long long>(SampleBudget),
           static_cast<unsigned long long>(TotalChunks));
}

void SamplingProfiler::stop() {
  bool WasActive = Active;
  Active = false;
  if (WasActive && obs::enabled()) {
    // Window totals come from the existing aggregates — notifyMiss itself
    // is never instrumented, keeping the hot path untouched.
    static obs::Counter Samples("profiler.samples_taken");
    static obs::Counter Misses("profiler.misses_seen");
    static obs::Counter Unsampled("profiler.events_unsampled");
    Samples.add(SamplesTaken);
    Misses.add(MissesSeen);
    Unsampled.add(MissesSeen - SamplesTaken);
    obs::Gauge("profiler.period.initial")
        .set(static_cast<double>(StartPeriod));
    obs::Gauge("profiler.period.effective").set(static_cast<double>(Period));
    obs::Gauge("profiler.sample_budget")
        .set(static_cast<double>(SampleBudget));
  }
  if (WindowSpanOpen) {
    WindowSpanOpen = false;
    obs::Tracer::instance().end(
        "profiler.window", "profiler",
        {{"samples_taken", static_cast<double>(SamplesTaken)},
         {"misses_seen", static_cast<double>(MissesSeen)},
         {"period_initial", static_cast<double>(StartPeriod)},
         {"period_effective", static_cast<double>(Period)}});
  }
}

void SamplingProfiler::recordSample(uint64_t Va) {
  // The sample is weighted by the period in force when it was taken, so
  // capture it before the budget check below may double it.
  PendingSample S{Va, Period};
  ++SamplesTaken;
  // Budget control: once the budget is consumed, halve the sampling rate.
  // Estimates stay unbiased because each sample is weighted by the period
  // in force when it was taken.
  if (SamplesTaken % SampleBudget == 0)
    Period *= 2;
  mem::Attribution Attr;
  bool Attributed = Registry.attributeIndexed(Va, Attr, Hint);
  commitSample(S, Attributed, Attr);
}

void SamplingProfiler::notifyMissReference(uint64_t Va) {
  if (!Active)
    return;
  ++MissesSeen;
  if (--Countdown != 0)
    return;
  // Original per-sample body: linear registry walk, accumulate at the
  // pre-doubling period, then adapt.
  ++SamplesTaken;
  mem::Attribution Attr;
  if (Registry.attribute(Va, Attr)) {
    if (Profiles.size() <= Attr.Object)
      Profiles.resize(Attr.Object + 1);
    ObjectProfile &Profile = Profiles[Attr.Object];
    if (Profile.Samples.empty()) {
      uint32_t Chunks = Registry.object(Attr.Object).numChunks();
      Profile.Samples.assign(Chunks, 0);
      Profile.EstimatedMisses.assign(Chunks, 0.0);
    }
    ++Profile.Samples[Attr.Chunk];
    Profile.EstimatedMisses[Attr.Chunk] += static_cast<double>(Period);
  }
  if (SamplesTaken % SampleBudget == 0)
    Period *= 2;
  Countdown = Period;
}

void SamplingProfiler::selectSamples(const uint64_t *Vas, size_t N,
                                     std::vector<PendingSample> &Out) {
  if (!Active)
    return;
  SelectionState S = selectionState();
  selectSamplesFrom(S, Vas, N, Out);
  commitSelectionState(S);
}

void SamplingProfiler::selectSamplesFrom(SelectionState &S,
                                         const uint64_t *Vas, size_t N,
                                         std::vector<PendingSample> &Out)
    const {
  // Equivalent to N ordered notifyMiss() calls: with Countdown events left
  // before the next sample, a span of R remaining misses contains a sample
  // iff R >= Countdown, and it is the (Countdown-1)-th of them. Everything
  // between samples is skipped in one arithmetic stride.
  size_t I = 0;
  while (N - I >= S.Countdown) {
    I += static_cast<size_t>(S.Countdown) - 1;
    Out.push_back({Vas[I], S.Period});
    ++I;
    ++S.SamplesTaken;
    if (S.SamplesTaken % SampleBudget == 0)
      S.Period *= 2;
    S.Countdown = S.Period;
  }
  S.Countdown -= N - I;
  S.MissesSeen += N;
}

void SamplingProfiler::advanceSelection(SelectionState &S, uint64_t N) const {
  // Between period doublings the scan above is an arithmetic progression:
  // the first sample lands after Countdown misses, every further one after
  // Period more. Batch all samples up to the next doubling in one stride.
  uint64_t I = 0;
  while (N - I >= S.Countdown) {
    uint64_t ToDouble = SampleBudget - S.SamplesTaken % SampleBudget;
    uint64_t Avail = 1 + (N - I - S.Countdown) / S.Period;
    uint64_t Take = Avail < ToDouble ? Avail : ToDouble;
    I += S.Countdown + (Take - 1) * S.Period;
    S.SamplesTaken += Take;
    if (Take == ToDouble)
      S.Period *= 2;
    S.Countdown = S.Period;
  }
  S.Countdown -= N - I;
  S.MissesSeen += N;
}

void SamplingProfiler::commitSample(const PendingSample &S, bool Attributed,
                                    const mem::Attribution &Attr) {
  if (!Attributed)
    return;
  if (Profiles.size() <= Attr.Object)
    Profiles.resize(Attr.Object + 1);
  ObjectProfile &Profile = Profiles[Attr.Object];
  if (Profile.Samples.empty()) {
    uint32_t Chunks = Registry.object(Attr.Object).numChunks();
    Profile.Samples.assign(Chunks, 0);
    Profile.EstimatedMisses.assign(Chunks, 0.0);
  }
  ++Profile.Samples[Attr.Chunk];
  Profile.EstimatedMisses[Attr.Chunk] += static_cast<double>(S.PeriodInForce);
}

void SamplingProfiler::notifyMissBatch(const uint64_t *Vas, size_t N) {
  if (!Active || N == 0)
    return;
  PendingScratch.clear();
  selectSamples(Vas, N, PendingScratch);
  for (const PendingSample &S : PendingScratch) {
    mem::Attribution Attr;
    bool Attributed = Registry.attributeIndexed(S.Va, Attr, Hint);
    commitSample(S, Attributed, Attr);
  }
}

double SamplingProfiler::overheadSeconds() const {
  // Every application thread drains its own PEBS buffer concurrently.
  return static_cast<double>(SamplesTaken) * Config.SampleCostSec /
         static_cast<double>(Threads);
}

ObjectProfile SamplingProfiler::profileFor(mem::ObjectId Id) const {
  if (Id < Profiles.size() && !Profiles[Id].Samples.empty())
    return Profiles[Id];
  ObjectProfile Empty;
  uint32_t Chunks = Registry.object(Id).numChunks();
  Empty.Samples.assign(Chunks, 0);
  Empty.EstimatedMisses.assign(Chunks, 0.0);
  return Empty;
}
