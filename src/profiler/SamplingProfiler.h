//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ATMem profiler (paper Sections 3, 5.1). On the real system it
/// programs the PMU for PEBS precise-address sampling of LLC-miss loads;
/// here it subscribes to the simulated LLC's miss stream and samples every
/// Nth miss, which has the same information-loss characteristics the
/// analyzer's tree promotion exists to patch.
///
/// The sampling period adapts at runtime: an initial period is derived
/// from the registered chunk population and thread count, and the period
/// doubles whenever the collected sample count reaches the budget — so a
/// long profiling window does not oversample ("avoids unnecessarily high
/// sampling frequency while ensuring efficient information collection").
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_PROFILER_SAMPLINGPROFILER_H
#define ATMEM_PROFILER_SAMPLINGPROFILER_H

#include "mem/DataObjectRegistry.h"
#include "profiler/ProfileSource.h"

#include <cstdint>
#include <vector>

namespace atmem {
namespace prof {

/// Tuning knobs of the profiler.
struct ProfilerConfig {
  /// Target average samples per data chunk used to size the budget.
  double SamplesPerChunk = 48.0;
  /// Hard bounds on the total sample budget.
  uint64_t MinSampleBudget = 1u << 12;
  uint64_t MaxSampleBudget = 1u << 21;
  /// Initial sampling period (misses between samples) before adaptation;
  /// 0 derives it from the chunk population (see deriveInitialPeriod).
  uint64_t InitialPeriod = 0;
  /// Modelled cost of delivering one PEBS record (microcode assist plus
  /// buffer drain, amortized), seconds. Records are produced by all
  /// application threads concurrently, so the wall-clock overhead is this
  /// cost times samples divided by the thread count.
  double SampleCostSec = 250e-9;
};

/// Sampling profiler over the simulated miss stream.
class SamplingProfiler : public ProfileSource {
public:
  SamplingProfiler(mem::DataObjectRegistry &Registry, ProfilerConfig Config);

  /// Arms the profiler: derives the initial period from the current chunk
  /// population and \p Threads, clears previous results, and starts
  /// consuming miss events.
  void start(uint32_t Threads);

  /// Disarms the profiler; results remain readable.
  void stop();

  bool isActive() const { return Active; }

  /// Feed of LLC-miss events from the access engine; called for every
  /// simulated miss while active. Samples every Nth event.
  void notifyMiss(uint64_t Va) {
    if (!Active)
      return;
    ++MissesSeen;
    if (--Countdown != 0)
      return;
    recordSample(Va);
    Countdown = Period;
  }

  /// Sampling period currently in force.
  uint64_t period() const override { return Period; }

  /// The period the window started with, before budget-driven doubling.
  uint64_t initialPeriod() const { return StartPeriod; }

  uint64_t sampleCount() const { return SamplesTaken; }
  uint64_t missesSeen() const { return MissesSeen; }

  /// Modelled profiling overhead (seconds) for the samples taken so far.
  double overheadSeconds() const;

  /// Result for one object; valid after stop() (or during profiling).
  /// Returns an empty profile for objects that received no samples.
  ObjectProfile profileFor(mem::ObjectId Id) const override;

  /// Derives the initial sampling period from the registered chunk
  /// population and the thread count (paper Section 5.1): more chunks or
  /// more threads generate miss events faster, so the period grows to keep
  /// the sample budget intact across the profiling window.
  static uint64_t deriveInitialPeriod(uint64_t TotalChunks,
                                      uint64_t TotalBytes, uint32_t Threads);

private:
  void recordSample(uint64_t Va);

  mem::DataObjectRegistry &Registry;
  ProfilerConfig Config;
  bool Active = false;
  /// True while a "profiler.window" trace span is open (start() ran with
  /// telemetry enabled and stop() has not yet closed it).
  bool WindowSpanOpen = false;
  uint64_t Period = 64;
  uint64_t StartPeriod = 64;
  uint64_t Countdown = 64;
  uint64_t MissesSeen = 0;
  uint64_t SamplesTaken = 0;
  uint64_t SampleBudget = 0;
  uint32_t Threads = 1;
  /// Indexed by ObjectId; entries sized lazily on first sample.
  std::vector<ObjectProfile> Profiles;
};

} // namespace prof
} // namespace atmem

#endif // ATMEM_PROFILER_SAMPLINGPROFILER_H
