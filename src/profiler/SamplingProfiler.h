//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ATMem profiler (paper Sections 3, 5.1). On the real system it
/// programs the PMU for PEBS precise-address sampling of LLC-miss loads;
/// here it subscribes to the simulated LLC's miss stream and samples every
/// Nth miss, which has the same information-loss characteristics the
/// analyzer's tree promotion exists to patch.
///
/// The sampling period adapts at runtime: an initial period is derived
/// from the registered chunk population and thread count, and the period
/// doubles whenever the collected sample count reaches the budget — so a
/// long profiling window does not oversample ("avoids unnecessarily high
/// sampling frequency while ensuring efficient information collection").
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_PROFILER_SAMPLINGPROFILER_H
#define ATMEM_PROFILER_SAMPLINGPROFILER_H

#include "mem/DataObjectRegistry.h"
#include "profiler/ProfileSource.h"

#include <cstdint>
#include <vector>

namespace atmem {
namespace prof {

/// Tuning knobs of the profiler.
struct ProfilerConfig {
  /// Target average samples per data chunk used to size the budget.
  double SamplesPerChunk = 48.0;
  /// Hard bounds on the total sample budget.
  uint64_t MinSampleBudget = 1u << 12;
  uint64_t MaxSampleBudget = 1u << 21;
  /// Initial sampling period (misses between samples) before adaptation;
  /// 0 derives it from the chunk population (see deriveInitialPeriod).
  uint64_t InitialPeriod = 0;
  /// Modelled cost of delivering one PEBS record (microcode assist plus
  /// buffer drain, amortized), seconds. Records are produced by all
  /// application threads concurrently, so the wall-clock overhead is this
  /// cost times samples divided by the thread count.
  double SampleCostSec = 250e-9;
};

/// A miss selected for sampling by the batched pre-scan, not yet
/// attributed to an (object, chunk). PeriodInForce is the period at the
/// moment of selection — each sample is weighted by it, which keeps the
/// miss estimates unbiased across budget-driven period doubling.
struct PendingSample {
  uint64_t Va = 0;
  uint64_t PeriodInForce = 0;
};

/// The complete sampling-countdown state as a value. Selection depends
/// only on miss *order*, and this state advances deterministically with
/// the number of misses scanned — never their contents — so a drain can
/// compute each shard's start state arithmetically (advanceSelection),
/// scan all shards' buffers concurrently (selectSamplesFrom), and splice
/// the selections in shard order for a result bit-identical to one
/// serial scan.
struct SelectionState {
  uint64_t Countdown = 0;
  uint64_t Period = 0;
  uint64_t SamplesTaken = 0;
  uint64_t MissesSeen = 0;

  bool operator==(const SelectionState &O) const {
    return Countdown == O.Countdown && Period == O.Period &&
           SamplesTaken == O.SamplesTaken && MissesSeen == O.MissesSeen;
  }
  bool operator!=(const SelectionState &O) const { return !(*this == O); }
};

/// Sampling profiler over the simulated miss stream.
class SamplingProfiler : public ProfileSource {
public:
  SamplingProfiler(mem::DataObjectRegistry &Registry, ProfilerConfig Config);

  /// Arms the profiler: derives the initial period from the current chunk
  /// population and \p Threads, clears previous results, and starts
  /// consuming miss events.
  void start(uint32_t Threads);

  /// Disarms the profiler; results remain readable.
  void stop();

  bool isActive() const { return Active; }

  /// Feed of LLC-miss events from the access engine; called for every
  /// simulated miss while active. Samples every Nth event.
  void notifyMiss(uint64_t Va) {
    if (!Active)
      return;
    ++MissesSeen;
    if (--Countdown != 0)
      return;
    recordSample(Va);
    Countdown = Period;
  }

  /// Batched equivalent of calling notifyMiss() on each of \p N misses in
  /// order, with identical observable state afterwards. The countdown
  /// advances arithmetically in Period-sized strides instead of
  /// decrementing per miss, and attribution goes through the registry's
  /// interval index.
  void notifyMissBatch(const uint64_t *Vas, size_t N);

  /// Reference per-miss drain: the pre-optimization path (per-event
  /// countdown, linear registry walk). Kept so the equivalence suite and
  /// the micro benchmark can compare the batched pipeline against the
  /// original behaviour byte for byte.
  void notifyMissReference(uint64_t Va);

  /// Stage 1 of the batched drain: advances the sampling state over \p N
  /// ordered misses and appends the selected samples to \p Out without
  /// attributing them. Selection depends only on miss order — never on
  /// attribution results — which is what lets stage 2 run in parallel.
  void selectSamples(const uint64_t *Vas, size_t N,
                     std::vector<PendingSample> &Out);

  /// \name Split selection for the sharded pre-scan
  /// selectSamples() == selectionState() + selectSamplesFrom() +
  /// commitSelectionState(); the split form lets the batched drain scan
  /// shard buffers concurrently from precomputed start states.
  ///@{

  /// Current countdown state as a value.
  SelectionState selectionState() const {
    return {Countdown, Period, SamplesTaken, MissesSeen};
  }

  /// Installs \p S as the profiler's countdown state (the state after the
  /// last shard, once a sharded pre-scan spliced its selections).
  void commitSelectionState(const SelectionState &S) {
    Countdown = S.Countdown;
    Period = S.Period;
    SamplesTaken = S.SamplesTaken;
    MissesSeen = S.MissesSeen;
  }

  /// Advances \p S over \p N misses WITHOUT looking at them — the state
  /// after a scan depends only on the count. Sample positions within a
  /// stretch of constant period are an arithmetic progression, so the
  /// advance costs O(period doublings), not O(N): this is what makes
  /// per-shard start states cheap to compute serially before the
  /// parallel scans. Fuzzed against selectSamplesFrom() for equality.
  void advanceSelection(SelectionState &S, uint64_t N) const;

  /// The selectSamples() scan against caller-owned state: appends the
  /// samples selected among \p Vas to \p Out and advances \p S exactly as
  /// notifyMiss() would. Const — safe to run on several states/buffers
  /// concurrently (SampleBudget is fixed while the profiler is active).
  void selectSamplesFrom(SelectionState &S, const uint64_t *Vas, size_t N,
                         std::vector<PendingSample> &Out) const;
  ///@}

  /// Stage 3 of the batched drain: folds one selected sample into the
  /// per-chunk profiles. Must be called in selection order (floating-point
  /// accumulation order is part of the bit-identical contract).
  /// \p Attributed mirrors the registry lookup result for \p S.Va.
  void commitSample(const PendingSample &S, bool Attributed,
                    const mem::Attribution &Attr);

  /// Sampling period currently in force.
  uint64_t period() const override { return Period; }

  /// The period the window started with, before budget-driven doubling.
  uint64_t initialPeriod() const { return StartPeriod; }

  uint64_t sampleCount() const { return SamplesTaken; }
  uint64_t missesSeen() const { return MissesSeen; }

  /// Modelled profiling overhead (seconds) for the samples taken so far.
  double overheadSeconds() const;

  /// Result for one object; valid after stop() (or during profiling).
  /// Returns an empty profile for objects that received no samples.
  ObjectProfile profileFor(mem::ObjectId Id) const override;

  /// Derives the initial sampling period from the registered chunk
  /// population and the thread count (paper Section 5.1): more chunks or
  /// more threads generate miss events faster, so the period grows to keep
  /// the sample budget intact across the profiling window.
  static uint64_t deriveInitialPeriod(uint64_t TotalChunks,
                                      uint64_t TotalBytes, uint32_t Threads);

private:
  void recordSample(uint64_t Va);

  mem::DataObjectRegistry &Registry;
  ProfilerConfig Config;
  bool Active = false;
  /// True while a "profiler.window" trace span is open (start() ran with
  /// telemetry enabled and stop() has not yet closed it).
  bool WindowSpanOpen = false;
  uint64_t Period = 64;
  uint64_t StartPeriod = 64;
  uint64_t Countdown = 64;
  uint64_t MissesSeen = 0;
  uint64_t SamplesTaken = 0;
  uint64_t SampleBudget = 0;
  uint32_t Threads = 1;
  /// Indexed by ObjectId; entries sized lazily on first sample.
  std::vector<ObjectProfile> Profiles;
  /// Last-hit memo for indexed attribution on the serial paths.
  mem::AttributionHint Hint;
  /// Reused selection buffer for notifyMissBatch.
  std::vector<PendingSample> PendingScratch;
};

} // namespace prof
} // namespace atmem

#endif // ATMEM_PROFILER_SAMPLINGPROFILER_H
