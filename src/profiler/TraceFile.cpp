#include "profiler/TraceFile.h"

using namespace atmem;
using namespace atmem::prof;

TraceWriter::~TraceWriter() {
  if (File)
    finish();
}

bool TraceWriter::open(const std::string &Path) {
  if (File)
    finish();
  File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  Events = 0;
  WriteFailed = false;
  Buffer.clear();
  Buffer.reserve(FlushThreshold);
  // Placeholder header; finish() rewrites it with the final event count.
  TraceHeader Header;
  if (std::fwrite(&Header, sizeof(Header), 1, File) != 1) {
    std::fclose(File);
    File = nullptr;
    return false;
  }
  return true;
}

void TraceWriter::flush() {
  if (!File || Buffer.empty())
    return;
  if (std::fwrite(Buffer.data(), sizeof(uint64_t), Buffer.size(), File) !=
      Buffer.size())
    WriteFailed = true;
  Buffer.clear();
}

void TraceWriter::writeDirect(const uint64_t *Vas, size_t N) {
  if (std::fwrite(Vas, sizeof(uint64_t), N, File) != N)
    WriteFailed = true;
}

bool TraceWriter::finish() {
  if (!File)
    return false;
  flush();
  TraceHeader Header;
  Header.EventCount = Events;
  bool Ok = !WriteFailed;
  Ok = Ok && std::fseek(File, 0, SEEK_SET) == 0;
  Ok = Ok && std::fwrite(&Header, sizeof(Header), 1, File) == 1;
  Ok = std::fclose(File) == 0 && Ok;
  File = nullptr;
  return Ok;
}

TraceReader::~TraceReader() {
  if (File)
    std::fclose(File);
}

bool TraceReader::open(const std::string &Path) {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
  File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  if (std::fread(&Header, sizeof(Header), 1, File) != 1 ||
      Header.Magic != TraceHeader::MagicValue || Header.Version != 1) {
    std::fclose(File);
    File = nullptr;
    return false;
  }
  return true;
}

bool TraceReader::forEach(const std::function<void(uint64_t)> &Consume) {
  if (!File)
    return false;
  std::vector<uint64_t> Buffer(1 << 16);
  uint64_t Remaining = Header.EventCount;
  while (Remaining > 0) {
    size_t Want = static_cast<size_t>(
        std::min<uint64_t>(Remaining, Buffer.size()));
    size_t Got = std::fread(Buffer.data(), sizeof(uint64_t), Want, File);
    for (size_t I = 0; I < Got; ++I)
      Consume(Buffer[I]);
    if (Got != Want)
      return false; // Truncated.
    Remaining -= Got;
  }
  return true;
}
