#include "profiler/TraceFile.h"

#include <algorithm>
#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

using namespace atmem;
using namespace atmem::prof;

namespace {

/// Demotes the calling thread to background scheduling where supported.
/// The spill thread is pure I/O deferral: it must never preempt a compute
/// thread mid-drain (on few-core hosts that would just move the write
/// cost back into the timed path). Backpressure keeps this safe: when the
/// bounded queue fills, the producer sleeps, which is exactly when an
/// idle-class thread gets the CPU.
void demoteToIdleScheduling() {
#if defined(__linux__)
  sched_param Param{};
  pthread_setschedparam(pthread_self(), SCHED_IDLE, &Param); // Best effort.
#endif
}

} // namespace

TraceWriter::~TraceWriter() {
  if (File)
    finish();
}

bool TraceWriter::open(const std::string &Path) {
  if (File)
    finish();
  File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  Events = 0;
  WriteFailed.store(false, std::memory_order_relaxed);
  Buffer.clear();
  Buffer.reserve(FlushThreshold);
  // Placeholder header; finish() rewrites it with the final event count.
  // Written before the spill thread starts, so the thread's appends land
  // strictly after it.
  TraceHeader Header;
  if (std::fwrite(&Header, sizeof(Header), 1, File) != 1) {
    std::fclose(File);
    File = nullptr;
    return false;
  }
  ShuttingDown = false;
  Queue.clear();
  Writer = std::thread([this] { writerLoop(); });
  return true;
}

void TraceWriter::writerLoop() {
  demoteToIdleScheduling();
  std::unique_lock<std::mutex> Lock(QueueMutex);
  for (;;) {
    QueueCv.wait(Lock, [this] { return ShuttingDown || !Queue.empty(); });
    if (Queue.empty())
      return; // Shutdown with nothing left to write.
    std::vector<uint64_t> Segment = std::move(Queue.front());
    Queue.pop_front();
    Lock.unlock();
    if (std::fwrite(Segment.data(), sizeof(uint64_t), Segment.size(),
                    File) != Segment.size())
      WriteFailed.store(true, std::memory_order_relaxed);
    Segment.clear();
    Lock.lock();
    if (Pool.size() < MaxPooledSegments)
      Pool.push_back(std::move(Segment));
    SpaceCv.notify_all();
  }
}

void TraceWriter::enqueue(std::vector<uint64_t> &&Segment) {
  std::unique_lock<std::mutex> Lock(QueueMutex);
  SpaceCv.wait(Lock, [this] { return Queue.size() < MaxQueuedSegments; });
  Queue.push_back(std::move(Segment));
  QueueCv.notify_one();
}

void TraceWriter::spillBuffer() {
  if (Buffer.empty())
    return;
  std::vector<uint64_t> Next;
  {
    std::unique_lock<std::mutex> Lock(QueueMutex);
    SpaceCv.wait(Lock, [this] { return Queue.size() < MaxQueuedSegments; });
    Queue.push_back(std::move(Buffer));
    if (!Pool.empty()) {
      Next = std::move(Pool.back());
      Pool.pop_back();
    }
    QueueCv.notify_one();
  }
  Buffer = std::move(Next);
  if (Buffer.capacity() < FlushThreshold)
    Buffer.reserve(FlushThreshold);
}

void TraceWriter::recordBatch(const uint64_t *Vas, size_t N) {
  if (!File || N == 0)
    return;
  Events += N;
  if (N >= FlushThreshold) {
    spillBuffer(); // Older buffered events must precede the batch on disk.
    std::vector<uint64_t> Segment = takeRecycled();
    Segment.assign(Vas, Vas + N);
    enqueue(std::move(Segment));
    return;
  }
  Buffer.insert(Buffer.end(), Vas, Vas + N);
  if (Buffer.size() >= FlushThreshold)
    spillBuffer();
}

void TraceWriter::recordBatchOwned(std::vector<uint64_t> &&Vas) {
  if (!File || Vas.empty())
    return;
  Events += Vas.size();
  if (Vas.size() >= FlushThreshold) {
    spillBuffer(); // Keep stream order: buffered events first.
    enqueue(std::move(Vas));
    return;
  }
  // Small donations join the buffer; the husk goes straight to the pool.
  Buffer.insert(Buffer.end(), Vas.begin(), Vas.end());
  Vas.clear();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Pool.size() < MaxPooledSegments)
      Pool.push_back(std::move(Vas));
  }
  if (Buffer.size() >= FlushThreshold)
    spillBuffer();
}

std::vector<uint64_t> TraceWriter::takeRecycled() {
  std::lock_guard<std::mutex> Lock(QueueMutex);
  if (Pool.empty())
    return {};
  std::vector<uint64_t> Out = std::move(Pool.back());
  Pool.pop_back();
  return Out;
}

bool TraceWriter::finish() {
  if (!File)
    return false;
  spillBuffer();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    ShuttingDown = true;
    QueueCv.notify_one();
  }
  if (Writer.joinable())
    Writer.join();
  // The writer exits only once the queue is empty, so every event is on
  // disk (or recorded as failed) before the header patch below.
  TraceHeader Header;
  Header.EventCount = Events;
  bool Ok = !WriteFailed.load(std::memory_order_relaxed);
  Ok = Ok && std::fseek(File, 0, SEEK_SET) == 0;
  Ok = Ok && std::fwrite(&Header, sizeof(Header), 1, File) == 1;
  Ok = std::fclose(File) == 0 && Ok;
  File = nullptr;
  Pool.clear();
  return Ok;
}

TraceReader::~TraceReader() {
  if (File)
    std::fclose(File);
}

bool TraceReader::open(const std::string &Path) {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
  File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  if (std::fread(&Header, sizeof(Header), 1, File) != 1 ||
      Header.Magic != TraceHeader::MagicValue || Header.Version != 1) {
    std::fclose(File);
    File = nullptr;
    return false;
  }
  return true;
}

bool TraceReader::forEach(const std::function<void(uint64_t)> &Consume) {
  if (!File)
    return false;
  std::vector<uint64_t> Buffer(1 << 16);
  uint64_t Remaining = Header.EventCount;
  while (Remaining > 0) {
    size_t Want = static_cast<size_t>(
        std::min<uint64_t>(Remaining, Buffer.size()));
    size_t Got = std::fread(Buffer.data(), sizeof(uint64_t), Want, File);
    for (size_t I = 0; I < Got; ++I)
      Consume(Buffer[I]);
    if (Got != Want)
      return false; // Truncated.
    Remaining -= Got;
  }
  return true;
}
