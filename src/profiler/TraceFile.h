//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary miss-trace recording. A trace is the stream of LLC-miss virtual
/// addresses of one profiled window, with a versioned header and an event
/// count so truncated files are detected. Traces feed the OfflineProfiler
/// (full-information placement analysis) and make profiling runs
/// reproducible and inspectable offline.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_PROFILER_TRACEFILE_H
#define ATMEM_PROFILER_TRACEFILE_H

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace atmem {
namespace prof {

/// On-disk header of a miss trace.
struct TraceHeader {
  static constexpr uint64_t MagicValue = 0x3143524d54414d54ull; // "TMATMRC1".

  uint64_t Magic = MagicValue;
  uint32_t Version = 1;
  uint32_t Reserved = 0;
  uint64_t EventCount = 0;
};

/// Buffered writer for a miss trace. The header's event count is patched
/// on finish(), so an unfinished file is recognizably incomplete.
class TraceWriter {
public:
  TraceWriter() = default;
  ~TraceWriter();

  TraceWriter(const TraceWriter &) = delete;
  TraceWriter &operator=(const TraceWriter &) = delete;

  /// Opens \p Path for writing. Returns false on I/O failure.
  bool open(const std::string &Path);

  /// Appends one miss address. No-op when not open.
  void record(uint64_t Va) {
    if (!File)
      return;
    Buffer.push_back(Va);
    ++Events;
    if (Buffer.size() >= FlushThreshold)
      flush();
  }

  /// Appends \p N miss addresses in order — one bulk write instead of N
  /// per-event calls. The resulting file bytes are identical to N
  /// record() calls (the event stream alone determines the output):
  /// small batches join the buffer; flush-sized ones drain any pending
  /// events first and then stream straight from the caller's array,
  /// skipping the intermediate copy entirely.
  void recordBatch(const uint64_t *Vas, size_t N) {
    if (!File || N == 0)
      return;
    Events += N;
    if (N >= FlushThreshold) {
      flush(); // Older buffered events must precede the batch on disk.
      writeDirect(Vas, N);
      return;
    }
    Buffer.insert(Buffer.end(), Vas, Vas + N);
    if (Buffer.size() >= FlushThreshold)
      flush();
  }

  /// Flushes buffers, patches the header, and closes. Returns false when
  /// any write failed.
  bool finish();

  bool isOpen() const { return File != nullptr; }
  uint64_t eventCount() const { return Events; }

private:
  void flush();
  /// Writes \p N events from \p Vas to the file without buffering.
  void writeDirect(const uint64_t *Vas, size_t N);

  static constexpr size_t FlushThreshold = 1 << 16;

  std::FILE *File = nullptr;
  std::vector<uint64_t> Buffer;
  uint64_t Events = 0;
  bool WriteFailed = false;
};

/// Streaming reader over a miss trace.
class TraceReader {
public:
  /// Opens \p Path and validates the header. Returns false on failure.
  bool open(const std::string &Path);
  ~TraceReader();

  TraceReader() = default;
  TraceReader(const TraceReader &) = delete;
  TraceReader &operator=(const TraceReader &) = delete;

  /// Invokes \p Consume for every event; returns false when the file
  /// ends early (truncation).
  bool forEach(const std::function<void(uint64_t)> &Consume);

  uint64_t eventCount() const { return Header.EventCount; }

private:
  std::FILE *File = nullptr;
  TraceHeader Header;
};

} // namespace prof
} // namespace atmem

#endif // ATMEM_PROFILER_TRACEFILE_H
