//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary miss-trace recording. A trace is the stream of LLC-miss virtual
/// addresses of one profiled window, with a versioned header and an event
/// count so truncated files are detected. Traces feed the OfflineProfiler
/// (full-information placement analysis) and make profiling runs
/// reproducible and inspectable offline.
///
/// The writer spills asynchronously: full segments are handed to a
/// dedicated writer thread over a bounded FIFO queue, so the recording
/// thread (the end-of-iteration drain) never blocks on the file system.
/// Segments are written strictly in hand-off order, so the file bytes are
/// identical to a synchronous writer's; drained segments return through a
/// recycle pool, making the batched drain's hand-off allocation-free and
/// copy-free (it donates the iteration's miss buffer itself).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_PROFILER_TRACEFILE_H
#define ATMEM_PROFILER_TRACEFILE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace atmem {
namespace prof {

/// On-disk header of a miss trace.
struct TraceHeader {
  static constexpr uint64_t MagicValue = 0x3143524d54414d54ull; // "TMATMRC1".

  uint64_t Magic = MagicValue;
  uint32_t Version = 1;
  uint32_t Reserved = 0;
  uint64_t EventCount = 0;
};

/// Buffered writer for a miss trace. The header's event count is patched
/// on finish(), so an unfinished file is recognizably incomplete.
///
/// Thread model: record()/recordBatch()/recordBatchOwned() must come from
/// one producer thread; the internal writer thread owns the FILE between
/// open() and finish().
class TraceWriter {
public:
  TraceWriter() = default;
  ~TraceWriter();

  TraceWriter(const TraceWriter &) = delete;
  TraceWriter &operator=(const TraceWriter &) = delete;

  /// Opens \p Path for writing and starts the spill thread. Returns false
  /// on I/O failure.
  bool open(const std::string &Path);

  /// Appends one miss address. No-op when not open.
  void record(uint64_t Va) {
    if (!File)
      return;
    Buffer.push_back(Va);
    ++Events;
    if (Buffer.size() >= FlushThreshold)
      spillBuffer();
  }

  /// Appends \p N miss addresses in order — one bulk hand-off instead of
  /// N per-event calls. The resulting file bytes are identical to N
  /// record() calls (the event stream alone determines the output):
  /// small batches join the buffer; flush-sized ones are copied into a
  /// recycled segment and queued behind any pending buffered events.
  void recordBatch(const uint64_t *Vas, size_t N);

  /// Zero-copy variant of recordBatch(): takes ownership of \p Vas and
  /// queues it for the spill thread directly — the drain donates each
  /// iteration's miss buffer instead of copying 8 bytes per miss through
  /// the file API. Pair with takeRecycled() to get a drained buffer back.
  void recordBatchOwned(std::vector<uint64_t> &&Vas);

  /// A spent segment from the recycle pool (empty, capacity warm), or an
  /// empty vector when none is available yet.
  std::vector<uint64_t> takeRecycled();

  /// Drains the spill queue, patches the header, and closes. Returns
  /// false when any write failed.
  bool finish();

  bool isOpen() const { return File != nullptr; }
  uint64_t eventCount() const { return Events; }

private:
  /// Moves the producer-side Buffer into the spill queue (order
  /// preserved) and replaces it with a recycled segment.
  void spillBuffer();
  /// Queues \p Segment for the writer thread; blocks only when the
  /// bounded queue is full (spill thread persistently behind).
  void enqueue(std::vector<uint64_t> &&Segment);
  void writerLoop();

  static constexpr size_t FlushThreshold = 1 << 16;
  /// Bounded queue depth: enough for one drain's worth of shard buffers
  /// plus headroom, small enough to cap memory at a few segments.
  static constexpr size_t MaxQueuedSegments = 8;
  static constexpr size_t MaxPooledSegments = 8;

  std::FILE *File = nullptr;
  std::vector<uint64_t> Buffer;
  uint64_t Events = 0;
  std::atomic<bool> WriteFailed{false};

  std::thread Writer;
  std::mutex QueueMutex;
  std::condition_variable QueueCv; ///< Signals the writer: work/shutdown.
  std::condition_variable SpaceCv; ///< Signals producers: queue drained.
  std::deque<std::vector<uint64_t>> Queue;
  std::vector<std::vector<uint64_t>> Pool;
  bool ShuttingDown = false;
};

/// Streaming reader over a miss trace.
class TraceReader {
public:
  /// Opens \p Path and validates the header. Returns false on failure.
  bool open(const std::string &Path);
  ~TraceReader();

  TraceReader() = default;
  TraceReader(const TraceReader &) = delete;
  TraceReader &operator=(const TraceReader &) = delete;

  /// Invokes \p Consume for every event; returns false when the file
  /// ends early (truncation).
  bool forEach(const std::function<void(uint64_t)> &Consume);

  uint64_t eventCount() const { return Header.EventCount; }

private:
  std::FILE *File = nullptr;
  TraceHeader Header;
};

} // namespace prof
} // namespace atmem

#endif // ATMEM_PROFILER_TRACEFILE_H
