#include "sim/CacheSim.h"

#include <bit>
#include <cassert>

using namespace atmem;
using namespace atmem::sim;

static uint32_t floorLog2(uint64_t Value) {
  assert(Value != 0);
  return 63 - static_cast<uint32_t>(std::countl_zero(Value));
}

CacheSim::CacheSim(const CacheConfig &Config)
    : Ways(Config.Ways), LineBytes(Config.LineBytes),
      LineShift(floorLog2(Config.LineBytes)) {
  assert((Config.LineBytes & (Config.LineBytes - 1)) == 0 &&
         "line size must be a power of two");
  uint64_t Lines = Config.SizeBytes / Config.LineBytes;
  uint64_t WantedSets = Lines / Config.Ways;
  // Round the set count down to a power of two so indexing is a mask.
  Sets = WantedSets == 0 ? 1 : (1u << floorLog2(WantedSets));
  SetShift = floorLog2(Sets);
  Tags.assign(static_cast<size_t>(Sets) * Ways, ~0ull);
  Stamps.assign(static_cast<size_t>(Sets) * Ways, 0);
}

bool CacheSim::access(uint64_t Va) {
  uint64_t Line = Va >> LineShift;
  uint32_t Set = static_cast<uint32_t>(Line & (Sets - 1));
  uint64_t Tag = Line >> SetShift;
  size_t Base = static_cast<size_t>(Set) * Ways;
  ++Clock;
  uint64_t Stamp = Clock;

  size_t Victim = Base;
  uint64_t VictimStamp = ~0ull;
  for (size_t I = Base; I < Base + Ways; ++I) {
    if (Tags[I] == Tag) {
      Stamps[I] = Stamp;
      ++Hits;
      return true;
    }
    if (Tags[I] == ~0ull) {
      Victim = I;
      VictimStamp = 0;
    } else if (Stamps[I] < VictimStamp) {
      Victim = I;
      VictimStamp = Stamps[I];
    }
  }
  ++Misses;
  Tags[Victim] = Tag;
  Stamps[Victim] = Stamp;
  return false;
}

void CacheSim::flushAll() {
  for (uint64_t &Tag : Tags)
    Tag = ~0ull;
}
