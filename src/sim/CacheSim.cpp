#include "sim/CacheSim.h"

#include "sim/SimdProbe.h"

#include <bit>
#include <cassert>

using namespace atmem;
using namespace atmem::sim;

static uint32_t floorLog2(uint64_t Value) {
  assert(Value != 0);
  return 63 - static_cast<uint32_t>(std::countl_zero(Value));
}

CacheSim::CacheSim(const CacheConfig &Config)
    : Ways(Config.Ways), LineBytes(Config.LineBytes),
      LineShift(floorLog2(Config.LineBytes)) {
  assert((Config.LineBytes & (Config.LineBytes - 1)) == 0 &&
         "line size must be a power of two");
  uint64_t Lines = Config.SizeBytes / Config.LineBytes;
  uint64_t WantedSets = Lines / Config.Ways;
  // Round the set count down to a power of two so indexing is a mask.
  Sets = WantedSets == 0 ? 1 : (1u << floorLog2(WantedSets));
  SetShift = floorLog2(Sets);
  Tags.assign(static_cast<size_t>(Sets) * Ways, ~0ull);
  Stamps.assign(static_cast<size_t>(Sets) * Ways, 0);
}

bool CacheSim::access(uint64_t Va) {
  uint64_t Line = Va >> LineShift;
  uint32_t Set = static_cast<uint32_t>(Line & (Sets - 1));
  uint64_t Tag = Line >> SetShift;
  uint64_t *TagRow = Tags.data() + static_cast<size_t>(Set) * Ways;
  uint64_t *StampRow = Stamps.data() + static_cast<size_t>(Set) * Ways;
#if defined(__GNUC__) || defined(__clang__)
  // The stamp row is only touched after the tag probe resolves; start the
  // load early so a hit's stamp update doesn't stall.
  __builtin_prefetch(StampRow, 1);
#endif
  ++Clock;

  // Hit probe: tag-only scan with no victim bookkeeping — hits are the
  // overwhelmingly common case on warm sets. The shipped geometries are
  // multiples of four ways, so the scan runs in 4-way SIMD groups; the
  // group scan order plus probeWay4's lowest-match rule preserve the
  // scalar loop's first-match semantics exactly.
#if ATMEM_SIMD_PROBE
  if ((Ways & 3u) == 0) {
    for (uint32_t G = 0; G < Ways; G += 4) {
      int Way = probeWay4(TagRow + G, Tag);
      if (Way >= 0) {
        StampRow[G + static_cast<uint32_t>(Way)] = Clock;
        ++Hits;
        return true;
      }
    }
  } else
#endif
    for (uint32_t I = 0; I < Ways; ++I) {
      if (TagRow[I] == Tag) {
        StampRow[I] = Clock;
        ++Hits;
        return true;
      }
    }

  // Miss: same victim rule as the historical fused loop — the last invalid
  // way if any, otherwise the first way holding the minimal stamp — so
  // replacement decisions stay bit-identical.
  uint32_t Victim = 0;
  uint64_t VictimStamp = ~0ull;
  for (uint32_t I = 0; I < Ways; ++I) {
    if (TagRow[I] == ~0ull) {
      Victim = I;
      VictimStamp = 0;
    } else if (StampRow[I] < VictimStamp) {
      Victim = I;
      VictimStamp = StampRow[I];
    }
  }
  ++Misses;
  TagRow[Victim] = Tag;
  StampRow[Victim] = Clock;
  return false;
}

void CacheSim::flushAll() {
  for (uint64_t &Tag : Tags)
    Tag = ~0ull;
}
