//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Set-associative last-level cache model. Every tracked access from the
/// graph kernels passes through this model; its miss verdicts are both the
/// profiler's sampling signal (PEBS samples LLC-miss loads, Eq. 1 of the
/// paper) and the cost model's timing signal. The model is deliberately a
/// plain LRU cache: the paper's observation that graph workloads defeat
/// cache optimization is exactly reproduced by skewed miss concentration in
/// the hot chunks.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SIM_CACHESIM_H
#define ATMEM_SIM_CACHESIM_H

#include "sim/MachineConfig.h"

#include <cstdint>
#include <vector>

namespace atmem {
namespace sim {

/// LRU set-associative cache indexed by simulated virtual address.
class CacheSim {
public:
  explicit CacheSim(const CacheConfig &Config);

  /// Records an access to \p Va. Returns true on a hit.
  bool access(uint64_t Va);

  /// Empties the cache (used between measured iterations when cold-cache
  /// behaviour is wanted).
  void flushAll();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  void resetCounters() {
    Hits = 0;
    Misses = 0;
  }

  uint32_t lineBytes() const { return LineBytes; }
  uint64_t sizeBytes() const {
    return static_cast<uint64_t>(Sets) * Ways * LineBytes;
  }

  /// Test hook: fast-forwards the LRU clock (e.g. near the old uint32_t
  /// stamp wraparound) without issuing billions of accesses.
  void setClockForTesting(uint64_t NewClock) { Clock = NewClock; }

private:
  uint32_t Sets;
  uint32_t SetShift = 0;
  uint32_t Ways;
  uint32_t LineBytes;
  uint32_t LineShift;
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  /// Struct-of-arrays set storage: the hit probe scans only the tag row
  /// (one or two cache lines per set), touching stamps just to refresh the
  /// LRU position; the victim scan on a miss reads both rows.
  std::vector<uint64_t> Tags;   ///< Sets*Ways tags; ~0 means invalid.
  /// LRU stamps parallel to Tags. Full-width: a uint32_t stamp silently
  /// wraps after 2^32 accesses, inverting the LRU order for long runs.
  std::vector<uint64_t> Stamps;
};

} // namespace sim
} // namespace atmem

#endif // ATMEM_SIM_CACHESIM_H
