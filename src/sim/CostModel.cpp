#include "sim/CostModel.h"

#include <algorithm>

using namespace atmem;
using namespace atmem::sim;

KernelTime KernelCostModel::estimate(const AccessStats &Stats) const {
  const ExecutionModel &Exec = Config.Exec;
  KernelTime Time;

  double Threads = static_cast<double>(Exec.Threads);
  Time.CpuSec =
      static_cast<double>(Stats.Accesses) * Exec.CpuSecPerAccess / Threads;

  // Latency term: every hit pays the LLC hit latency; every miss pays the
  // load-to-use latency of the serving tier. Misses from all threads
  // overlap up to Threads * MissesInFlightPerThread.
  double LatencyWork =
      static_cast<double>(Stats.LlcHits) * Exec.LlcHitLatencySec;
  for (unsigned I = 0; I < NumTiers; ++I) {
    const TierSpec &Tier =
        Config.tier(I == 0 ? TierId::Fast : TierId::Slow);
    LatencyWork += static_cast<double>(Stats.TierMisses[I]) *
                   Tier.LoadLatencySec;
  }
  Time.LatencySec =
      LatencyWork / (Threads * Exec.MissesInFlightPerThread);

  // Bandwidth term: each miss consumes the device access granularity of
  // raw bandwidth on its serving tier. With independent channels (KNL)
  // the tiers serve their shares concurrently, so the most loaded tier
  // bounds the time; with shared channels (Optane on the DDR bus) the
  // service times add (paper Section 9).
  double TierSec[NumTiers];
  for (unsigned I = 0; I < NumTiers; ++I) {
    const TierSpec &Tier =
        Config.tier(I == 0 ? TierId::Fast : TierId::Slow);
    double Bytes = static_cast<double>(Stats.TierMisses[I]) *
                   static_cast<double>(std::max<uint32_t>(
                       Tier.AccessGranularityBytes, 64));
    TierSec[I] = Bytes / Tier.BandwidthBytesPerSec;
  }
  Time.BandwidthSec = Exec.Channels == ChannelSharing::Independent
                          ? std::max(TierSec[0], TierSec[1])
                          : TierSec[0] + TierSec[1];
  return Time;
}

double MigrationCostModel::copyBandwidth(TierId Source, TierId Target,
                                         uint32_t Threads) const {
  const TierSpec &Src = Config.tier(Source);
  const TierSpec &Dst = Config.tier(Target);
  double Aggregate = Src.SingleThreadCopyBytesPerSec +
                     (Threads > 1 ? (Threads - 1) * Src.PerThreadCopyBytesPerSec
                                  : 0.0);
  Aggregate = std::min(Aggregate, Src.BandwidthBytesPerSec);
  Aggregate = std::min(Aggregate, Dst.BandwidthBytesPerSec);
  return Aggregate;
}

double MigrationCostModel::mbindSeconds(const MigrationWork &Work) const {
  double CopySec = static_cast<double>(Work.Bytes) /
                   copyBandwidth(Work.Source, Work.Target, /*Threads=*/1);
  double PageSec = static_cast<double>(Work.PtesTouched) *
                   Config.Migration.MbindPerPageSec;
  return CopySec + PageSec;
}

AtmemStageBreakdown
MigrationCostModel::atmemStages(const MigrationWork &Work) const {
  uint32_t Threads = Config.Migration.CopyThreads;
  AtmemStageBreakdown Stages;
  // Stage one: source region -> staging buffer on the target tier.
  Stages.CopyInSec = static_cast<double>(Work.Bytes) /
                     copyBandwidth(Work.Source, Work.Target, Threads);
  // Stage two: remap bookkeeping, no data movement.
  Stages.RemapSec = static_cast<double>(Work.PtesTouched) *
                    Config.Migration.RemapPerPageSec;
  // Stage three: staging buffer -> final frames, both on the target tier.
  Stages.DrainSec = static_cast<double>(Work.Bytes) /
                    copyBandwidth(Work.Target, Work.Target, Threads);
  return Stages;
}

double MigrationCostModel::atmemSeconds(const MigrationWork &Work) const {
  return atmemStages(Work).total();
}
