//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analytical timing models that convert counted events into simulated
/// seconds. Two models live here:
///
///  - KernelCostModel: execution time of a graph-kernel iteration from its
///    access/miss counters (DESIGN.md Section 4). The kernel is either
///    CPU-bound, latency-bound (misses overlapped by memory-level
///    parallelism), or bandwidth-bound on one tier, whichever dominates.
///  - MigrationCostModel: wall time of data migration under the mbind
///    system service (single-threaded, per-page kernel bookkeeping) versus
///    the ATMem multi-stage multi-threaded copy (Section 4.4 / Table 4).
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SIM_COSTMODEL_H
#define ATMEM_SIM_COSTMODEL_H

#include "sim/MachineConfig.h"

#include <cstdint>

namespace atmem {
namespace sim {

/// Counters accumulated over one kernel iteration by the access engine.
struct AccessStats {
  uint64_t Accesses = 0;
  uint64_t LlcHits = 0;
  /// LLC misses served by each tier (indexed by tierIndex()).
  uint64_t TierMisses[NumTiers] = {0, 0};

  uint64_t totalMisses() const {
    return TierMisses[0] + TierMisses[1];
  }

  AccessStats &operator+=(const AccessStats &Other) {
    Accesses += Other.Accesses;
    LlcHits += Other.LlcHits;
    for (unsigned I = 0; I < NumTiers; ++I)
      TierMisses[I] += Other.TierMisses[I];
    return *this;
  }
};

/// Breakdown of a kernel-time estimate, useful for tests and reports.
struct KernelTime {
  double CpuSec = 0.0;
  double LatencySec = 0.0;
  double BandwidthSec = 0.0;

  /// The governing term: kernels run as slow as their tightest bottleneck.
  double seconds() const {
    double T = CpuSec;
    if (LatencySec > T)
      T = LatencySec;
    if (BandwidthSec > T)
      T = BandwidthSec;
    return T;
  }
};

/// Converts AccessStats into simulated seconds for a given machine.
class KernelCostModel {
public:
  explicit KernelCostModel(const MachineConfig &Config) : Config(Config) {}

  /// Estimates the time of one kernel iteration that produced \p Stats.
  KernelTime estimate(const AccessStats &Stats) const;

private:
  const MachineConfig &Config;
};

/// Inputs to a migration-time estimate.
struct MigrationWork {
  uint64_t Bytes = 0;       ///< Payload bytes moved between tiers.
  uint64_t PtesTouched = 0; ///< Page-table entries written.
  TierId Source = TierId::Slow;
  TierId Target = TierId::Fast;
};

/// Per-stage timing of one ATMem migration (Section 4.4's three stages).
/// total() sums in stage order, so it is bit-identical to the historical
/// single-expression atmemSeconds() result.
struct AtmemStageBreakdown {
  double CopyInSec = 0.0; ///< Source tier -> staging buffer on the target.
  double RemapSec = 0.0;  ///< Page-table rewrite, no data movement.
  double DrainSec = 0.0;  ///< Staging buffer -> final frames (target tier).

  double total() const { return CopyInSec + RemapSec + DrainSec; }
};

/// Estimates migration wall time for the two mechanisms.
class MigrationCostModel {
public:
  explicit MigrationCostModel(const MachineConfig &Config) : Config(Config) {}

  /// System-service migration: one thread reads the source tier and pays
  /// kernel bookkeeping per page.
  double mbindSeconds(const MigrationWork &Work) const;

  /// ATMem migration: payload crosses tiers once into the staging buffer
  /// (multi-threaded, bounded by both tiers' peak bandwidth), the range is
  /// remapped (cheap per-page bookkeeping), then payload moves once more
  /// within the target tier. Equals atmemStages(Work).total().
  double atmemSeconds(const MigrationWork &Work) const;

  /// The same estimate with per-stage resolution (migrator telemetry and
  /// the Table 4 breakdown).
  AtmemStageBreakdown atmemStages(const MigrationWork &Work) const;

  /// Aggregate copy bandwidth \p Threads threads achieve when reading from
  /// \p Source and writing to \p Target.
  double copyBandwidth(TierId Source, TierId Target, uint32_t Threads) const;

private:
  const MachineConfig &Config;
};

} // namespace sim
} // namespace atmem

#endif // ATMEM_SIM_COSTMODEL_H
