#include "sim/FrameAllocator.h"

#include <cassert>

using namespace atmem;
using namespace atmem::sim;

FrameAllocator::FrameAllocator(TierId Tier, uint64_t CapacityBytes)
    : Tier(Tier), CapacityBytes(CapacityBytes) {}

std::optional<uint64_t> FrameAllocator::allocateSmall() {
  if (UsedBytes + SmallPageBytes > CapacityBytes)
    return std::nullopt;
  uint64_t Frame;
  if (!FreeSmall.empty()) {
    Frame = FreeSmall.back();
    FreeSmall.pop_back();
  } else if (!FreeHuge.empty()) {
    // Carve a small frame out of a free huge block; the remainder becomes
    // individually free small frames.
    uint64_t Base = FreeHuge.back();
    FreeHuge.pop_back();
    for (uint64_t I = 1; I < FramesPerHugeBlock; ++I)
      FreeSmall.push_back(Base + I);
    Frame = Base;
  } else {
    Frame = NextFrame;
    NextFrame += FramesPerHugeBlock;
    for (uint64_t I = 1; I < FramesPerHugeBlock; ++I)
      FreeSmall.push_back(Frame + I);
  }
  UsedBytes += SmallPageBytes;
  return Frame;
}

std::optional<uint64_t> FrameAllocator::allocateHuge() {
  if (UsedBytes + HugePageBytes > CapacityBytes)
    return std::nullopt;
  uint64_t Base;
  if (!FreeHuge.empty()) {
    Base = FreeHuge.back();
    FreeHuge.pop_back();
  } else {
    Base = NextFrame;
    NextFrame += FramesPerHugeBlock;
  }
  UsedBytes += HugePageBytes;
  return Base;
}

void FrameAllocator::freeSmall(uint64_t Frame) {
  assert(UsedBytes >= SmallPageBytes && "double free on tier");
  UsedBytes -= SmallPageBytes;
  FreeSmall.push_back(Frame);
}

void FrameAllocator::freeHuge(uint64_t BaseFrame) {
  assert(BaseFrame % FramesPerHugeBlock == 0 && "misaligned huge block");
  assert(UsedBytes >= HugePageBytes && "double free on tier");
  UsedBytes -= HugePageBytes;
  FreeHuge.push_back(BaseFrame);
}

void FrameAllocator::splitHuge(uint64_t BaseFrame) {
  assert(BaseFrame % FramesPerHugeBlock == 0 && "misaligned huge block");
  // Occupancy unchanged: the 512 frames stay allocated, but future frees
  // arrive one small frame at a time. Nothing to record beyond the
  // contract, because frames are identified by number alone.
  (void)BaseFrame;
}
