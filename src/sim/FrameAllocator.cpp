#include "sim/FrameAllocator.h"

#include <cassert>
#include <unordered_set>

using namespace atmem;
using namespace atmem::sim;

FrameAllocator::FrameAllocator(TierId Tier, uint64_t CapacityBytes)
    : Tier(Tier), CapacityBytes(CapacityBytes) {}

std::optional<uint64_t> FrameAllocator::allocateSmall() {
  if (UsedBytes + SmallPageBytes > CapacityBytes)
    return std::nullopt;
  uint64_t Frame;
  if (!FreeSmall.empty()) {
    Frame = FreeSmall.back();
    FreeSmall.pop_back();
  } else if (!FreeHuge.empty()) {
    // Carve a small frame out of a free huge block; the remainder becomes
    // individually free small frames.
    uint64_t Base = FreeHuge.back();
    FreeHuge.pop_back();
    for (uint64_t I = 1; I < FramesPerHugeBlock; ++I)
      FreeSmall.push_back(Base + I);
    Frame = Base;
  } else {
    Frame = NextFrame;
    NextFrame += FramesPerHugeBlock;
    for (uint64_t I = 1; I < FramesPerHugeBlock; ++I)
      FreeSmall.push_back(Frame + I);
  }
  UsedBytes += SmallPageBytes;
  return Frame;
}

std::optional<uint64_t> FrameAllocator::allocateHuge() {
  if (UsedBytes + HugePageBytes > CapacityBytes)
    return std::nullopt;
  uint64_t Base;
  if (!FreeHuge.empty()) {
    Base = FreeHuge.back();
    FreeHuge.pop_back();
  } else {
    Base = NextFrame;
    NextFrame += FramesPerHugeBlock;
  }
  UsedBytes += HugePageBytes;
  return Base;
}

void FrameAllocator::freeSmall(uint64_t Frame) {
  assert(UsedBytes >= SmallPageBytes && "double free on tier");
  UsedBytes -= SmallPageBytes;
  FreeSmall.push_back(Frame);
}

void FrameAllocator::freeHuge(uint64_t BaseFrame) {
  assert(BaseFrame % FramesPerHugeBlock == 0 && "misaligned huge block");
  assert(UsedBytes >= HugePageBytes && "double free on tier");
  UsedBytes -= HugePageBytes;
  FreeHuge.push_back(BaseFrame);
}

bool FrameAllocator::selfCheck(std::string *Why) const {
  auto Fail = [&](const std::string &Message) {
    if (Why)
      *Why = std::string("tier ") + (Tier == TierId::Fast ? "fast" : "slow") +
             ": " + Message;
    return false;
  };
  if (UsedBytes > CapacityBytes)
    return Fail("used " + std::to_string(UsedBytes) + " exceeds capacity " +
                std::to_string(CapacityBytes));
  if (NextFrame % FramesPerHugeBlock != 0)
    return Fail("bump pointer not huge-aligned");
  // Every free frame must be unique and inside the touched region, and
  // free bytes + used bytes must exactly cover what the bump pointer
  // handed out — anything else is a leak or a double free.
  std::unordered_set<uint64_t> Seen;
  for (uint64_t Frame : FreeSmall) {
    if (Frame >= NextFrame)
      return Fail("free small frame beyond bump pointer");
    if (!Seen.insert(Frame).second)
      return Fail("frame " + std::to_string(Frame) + " on free list twice");
  }
  for (uint64_t Base : FreeHuge) {
    if (Base % FramesPerHugeBlock != 0)
      return Fail("misaligned free huge block");
    if (Base + FramesPerHugeBlock > NextFrame)
      return Fail("free huge block beyond bump pointer");
    for (uint64_t I = 0; I < FramesPerHugeBlock; ++I)
      if (!Seen.insert(Base + I).second)
        return Fail("frame " + std::to_string(Base + I) +
                    " on free list twice");
  }
  uint64_t FreeListBytes = static_cast<uint64_t>(Seen.size()) * SmallPageBytes;
  uint64_t TouchedBytes = NextFrame * SmallPageBytes;
  if (UsedBytes + FreeListBytes != TouchedBytes)
    return Fail("used " + std::to_string(UsedBytes) + " + free " +
                std::to_string(FreeListBytes) + " != touched " +
                std::to_string(TouchedBytes));
  return true;
}

void FrameAllocator::splitHuge(uint64_t BaseFrame) {
  assert(BaseFrame % FramesPerHugeBlock == 0 && "misaligned huge block");
  // Occupancy unchanged: the 512 frames stay allocated, but future frees
  // arrive one small frame at a time. Nothing to record beyond the
  // contract, because frames are identified by number alone.
  (void)BaseFrame;
}
