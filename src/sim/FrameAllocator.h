//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Physical frame allocation for one simulated memory tier. Frames are
/// 4 KiB; huge allocations hand out 512-frame blocks aligned to 512 frames
/// so that a 2 MiB page mapping is physically contiguous. Fragmentation
/// behaviour matters here: when a huge block is split (mbind-style partial
/// migration), its frames are released individually and are never
/// re-coalesced, exactly like transparent-huge-page breakup on Linux.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SIM_FRAMEALLOCATOR_H
#define ATMEM_SIM_FRAMEALLOCATOR_H

#include "sim/MemoryTier.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace atmem {
namespace sim {

/// Size of a small page/frame in bytes.
inline constexpr uint64_t SmallPageBytes = 4096;
/// Size of a huge page in bytes.
inline constexpr uint64_t HugePageBytes = 2ull << 20;
/// Number of small frames per huge block.
inline constexpr uint64_t FramesPerHugeBlock = HugePageBytes / SmallPageBytes;

/// Allocates simulated physical frames on one tier, tracking occupancy
/// against the tier capacity.
class FrameAllocator {
public:
  FrameAllocator(TierId Tier, uint64_t CapacityBytes);

  /// Allocates one 4 KiB frame. Returns the frame number, or std::nullopt
  /// when the tier is full.
  std::optional<uint64_t> allocateSmall();

  /// Allocates a 512-frame block aligned to 512 frames for a 2 MiB page.
  /// Returns the base frame number, or std::nullopt when no capacity.
  std::optional<uint64_t> allocateHuge();

  /// Releases one small frame.
  void freeSmall(uint64_t Frame);

  /// Releases a whole huge block by its base frame.
  void freeHuge(uint64_t BaseFrame);

  /// Declares a previously huge block as split: the caller now owns its 512
  /// constituent frames individually and will release them via freeSmall().
  /// Occupancy is unchanged; this only switches accounting granularity.
  void splitHuge(uint64_t BaseFrame);

  TierId tier() const { return Tier; }
  uint64_t capacityBytes() const { return CapacityBytes; }
  uint64_t usedBytes() const { return UsedBytes; }
  uint64_t freeBytes() const { return CapacityBytes - UsedBytes; }

  /// Bump pointer: frames in [0, nextFrame()) have been touched at least
  /// once; everything beyond is pristine.
  uint64_t nextFrame() const { return NextFrame; }
  const std::vector<uint64_t> &freeSmallFrames() const { return FreeSmall; }
  const std::vector<uint64_t> &freeHugeFrames() const { return FreeHuge; }

  /// Verifies the allocator's internal identity: every touched frame is
  /// either free or accounted in UsedBytes, nothing is free twice, and
  /// occupancy never exceeds capacity. Returns false and explains in
  /// \p Why (when non-null) on violation.
  bool selfCheck(std::string *Why = nullptr) const;

private:
  TierId Tier;
  uint64_t CapacityBytes;
  uint64_t UsedBytes = 0;
  /// Bump pointer for never-touched frames, in small-frame units. Always
  /// advanced in huge-block multiples to keep alignment available.
  uint64_t NextFrame = 0;
  std::vector<uint64_t> FreeSmall;
  std::vector<uint64_t> FreeHuge;
};

} // namespace sim
} // namespace atmem

#endif // ATMEM_SIM_FRAMEALLOCATOR_H
