#include "sim/Machine.h"

using namespace atmem;
using namespace atmem::sim;

Machine::Machine(MachineConfig ConfigIn)
    : Config(std::move(ConfigIn)),
      FastAlloc(TierId::Fast, Config.Fast.CapacityBytes),
      SlowAlloc(TierId::Slow, Config.Slow.CapacityBytes),
      PT(FastAlloc, SlowAlloc), Llc(Config.Cache), KernelModel(Config),
      MigrationModel(Config) {}
