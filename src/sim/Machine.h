//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Machine class aggregates the simulated hardware of one testbed:
/// frame allocators for both tiers, the page table, the LLC model, and the
/// two cost models. Higher layers (mem, core) hold a Machine and never
/// instantiate the pieces individually.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SIM_MACHINE_H
#define ATMEM_SIM_MACHINE_H

#include "sim/CacheSim.h"
#include "sim/CostModel.h"
#include "sim/FrameAllocator.h"
#include "sim/MachineConfig.h"
#include "sim/PageTable.h"
#include "sim/Tlb.h"

namespace atmem {
namespace sim {

/// One simulated heterogeneous-memory machine.
class Machine {
public:
  explicit Machine(MachineConfig Config);

  const MachineConfig &config() const { return Config; }

  PageTable &pageTable() { return PT; }
  const PageTable &pageTable() const { return PT; }

  CacheSim &llc() { return Llc; }

  FrameAllocator &allocator(TierId Tier) {
    return Tier == TierId::Fast ? FastAlloc : SlowAlloc;
  }
  const FrameAllocator &allocator(TierId Tier) const {
    return Tier == TierId::Fast ? FastAlloc : SlowAlloc;
  }

  const KernelCostModel &kernelModel() const { return KernelModel; }
  const MigrationCostModel &migrationModel() const { return MigrationModel; }

  /// Builds a fresh TLB with this machine's geometry (TLB state is
  /// per-measurement, so callers own their instances).
  Tlb makeTlb() const { return Tlb(Config.Tlb); }

private:
  MachineConfig Config;
  FrameAllocator FastAlloc;
  FrameAllocator SlowAlloc;
  PageTable PT;
  CacheSim Llc;
  KernelCostModel KernelModel;
  MigrationCostModel MigrationModel;
};

} // namespace sim
} // namespace atmem

#endif // ATMEM_SIM_MACHINE_H
