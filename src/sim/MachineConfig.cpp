#include "sim/MachineConfig.h"

#include <algorithm>

using namespace atmem;
using namespace atmem::sim;

static constexpr double GB = 1e9;
static constexpr uint64_t GiB = 1ull << 30;

MachineConfig sim::nvmDramTestbed(double CapacityScale) {
  MachineConfig Config;
  Config.Name = "NVM-DRAM";

  Config.Fast.Name = "DRAM";
  Config.Fast.CapacityBytes =
      static_cast<uint64_t>(96.0 * CapacityScale * GiB);
  Config.Fast.BandwidthBytesPerSec = 104.0 * GB;
  Config.Fast.LoadLatencySec = 100e-9;
  Config.Fast.AccessGranularityBytes = 64;
  Config.Fast.SingleThreadCopyBytesPerSec = 10.0 * GB;
  Config.Fast.PerThreadCopyBytesPerSec = 6.0 * GB;

  Config.Slow.Name = "NVM";
  Config.Slow.CapacityBytes =
      static_cast<uint64_t>(768.0 * CapacityScale * GiB);
  Config.Slow.BandwidthBytesPerSec = 39.0 * GB;
  Config.Slow.LoadLatencySec = 300e-9;
  // Optane media reads 256-byte blocks; random 64-byte misses waste 3/4 of
  // raw bandwidth, giving the up-to-10x application slowdowns of Fig. 1a.
  Config.Slow.AccessGranularityBytes = 256;
  // Optane read throughput scales poorly with thread count: the first
  // reader gets ~8 GB/s but extra threads add little, so even the
  // multi-threaded staging copy stays far from the 39 GB/s peak. This is
  // why the paper's migration speedup is smaller on NVM-DRAM (Table 4).
  Config.Slow.SingleThreadCopyBytesPerSec = 8.0 * GB;
  Config.Slow.PerThreadCopyBytesPerSec = 0.5 * GB;

  // 35.75 MB shared L3, scaled with the datasets so the cache-to-working-
  // set ratio matches the real machine's (floor keeps geometry sane).
  Config.Cache.SizeBytes = static_cast<uint64_t>(
      std::max(35.75 * CapacityScale, 0.03125) * (1 << 20));
  Config.Cache.Ways = 16;

  Config.Exec.Threads = 48;
  Config.Exec.MissesInFlightPerThread = 4.0;
  // Optane DIMMs share the six DDR channels with DRAM (Section 2.1).
  Config.Exec.Channels = ChannelSharing::Shared;

  Config.Migration.MbindPerPageSec = 0.4e-6;
  Config.Migration.RemapPerPageSec = 0.05e-6;
  Config.Migration.CopyThreads = 16;
  return Config;
}

MachineConfig sim::mcdramDramTestbed(double CapacityScale,
                                     double FastCapacityDerate) {
  MachineConfig Config;
  Config.Name = "MCDRAM-DRAM";

  Config.Fast.Name = "MCDRAM";
  Config.Fast.CapacityBytes = static_cast<uint64_t>(
      16.0 * CapacityScale / FastCapacityDerate * GiB);
  Config.Fast.BandwidthBytesPerSec = 400.0 * GB;
  // MCDRAM trades slightly higher latency for bandwidth.
  Config.Fast.LoadLatencySec = 150e-9;
  Config.Fast.AccessGranularityBytes = 64;
  Config.Fast.SingleThreadCopyBytesPerSec = 5.0 * GB;
  Config.Fast.PerThreadCopyBytesPerSec = 1.6 * GB;

  Config.Slow.Name = "DDR4";
  Config.Slow.CapacityBytes =
      static_cast<uint64_t>(96.0 * CapacityScale * GiB);
  Config.Slow.BandwidthBytesPerSec = 90.0 * GB;
  Config.Slow.LoadLatencySec = 130e-9;
  Config.Slow.AccessGranularityBytes = 64;
  Config.Slow.SingleThreadCopyBytesPerSec = 5.0 * GB;
  Config.Slow.PerThreadCopyBytesPerSec = 1.6 * GB;

  // Aggregated L2 on KNL (no L3), scaled with the datasets.
  Config.Cache.SizeBytes = static_cast<uint64_t>(
      std::max(16.0 * CapacityScale, 0.03125) * (1 << 20));
  Config.Cache.Ways = 16;

  Config.Exec.Threads = 256;
  Config.Exec.MissesInFlightPerThread = 2.0; // In-order-ish Atom cores.
  Config.Exec.CpuSecPerAccess = 2.4e-9;      // 1.1 GHz weak cores.
  // MCDRAM has independent on-package channels next to the DDR4
  // channels, so bandwidth aggregates across tiers (Section 9).
  Config.Exec.Channels = ChannelSharing::Independent;

  Config.Migration.MbindPerPageSec = 0.6e-6; // Slower cores, slower kernel.
  Config.Migration.RemapPerPageSec = 0.08e-6;
  Config.Migration.CopyThreads = 64;
  return Config;
}
