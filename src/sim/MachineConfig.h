//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-machine configuration for the simulated testbeds, with presets
/// reproducing the two platforms of the paper's Table 1: the 2nd Gen Xeon
/// Scalable NVM-DRAM system and the Knights Landing MCDRAM-DRAM system.
/// Capacities accept a scale factor so that the scaled-down graph datasets
/// (see graph/Datasets.h) experience the same relative capacity pressure as
/// the full-size graphs did on the real machines.
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SIM_MACHINECONFIG_H
#define ATMEM_SIM_MACHINECONFIG_H

#include "sim/MemoryTier.h"

#include <cstdint>
#include <string>

namespace atmem {
namespace sim {

/// Cache geometry of the simulated last-level cache.
struct CacheConfig {
  uint64_t SizeBytes = 32ull << 20;
  uint32_t Ways = 16;
  uint32_t LineBytes = 64;
};

/// Geometry of the simulated data TLB (split 4 KiB / 2 MiB arrays, both
/// set-associative, as on contemporary x86 cores).
struct TlbConfig {
  uint32_t SmallEntries = 64;
  uint32_t SmallWays = 4;
  uint32_t HugeEntries = 32;
  uint32_t HugeWays = 4;
};

/// How the two tiers' memory traffic shares the physical channels
/// (paper Section 9): Optane DIMMs sit on the same channels as DRAM, so
/// concurrent traffic to both serializes; KNL's MCDRAM has its own
/// on-package channels, so traffic to both tiers overlaps and their
/// bandwidths aggregate.
enum class ChannelSharing {
  Shared,      ///< One channel pool: per-tier service times add.
  Independent, ///< Separate channels: the slower tier bounds the time.
};

/// Parameters of the execution-time model (see DESIGN.md Section 4).
struct ExecutionModel {
  /// Hardware threads the kernels are modelled to run with.
  uint32_t Threads = 48;
  /// Memory-level parallelism: outstanding misses one thread overlaps.
  double MissesInFlightPerThread = 4.0;
  /// CPU cost charged per tracked access (instruction work), seconds.
  double CpuSecPerAccess = 1.2e-9;
  /// LLC hit latency, seconds.
  double LlcHitLatencySec = 20e-9;
  /// Channel topology between the tiers.
  ChannelSharing Channels = ChannelSharing::Shared;
};

/// Parameters of the migration-time model. The mbind path is
/// single-threaded and pays a per-page kernel bookkeeping cost; the ATMem
/// path uses the thread pool and pays a small per-page remap cost
/// (Section 4.4 / Table 4 of the paper).
struct MigrationModel {
  /// Kernel bookkeeping per 4 KiB page moved via the system service
  /// (page-table locking, rmap walk, TLB shootdown), seconds.
  double MbindPerPageSec = 0.4e-6;
  /// Application-level remap bookkeeping per 4 KiB page, seconds.
  double RemapPerPageSec = 0.05e-6;
  /// Threads the ATMem migrator uses for the staged copies.
  uint32_t CopyThreads = 16;
  /// Fixed cost to launch one migration call for a contiguous range
  /// (thread wakeup, staging setup — application-level work, no syscall).
  /// Makes merging discrete segments via tree promotion measurably
  /// beneficial (paper Section 4.3).
  double AtmemPerRangeSec = 10e-6;
  /// Fixed cost of one mbind() system call on a contiguous range.
  double MbindPerCallSec = 20e-6;
};

/// Complete description of one simulated testbed.
struct MachineConfig {
  std::string Name;
  TierSpec Fast;
  TierSpec Slow;
  CacheConfig Cache;
  TlbConfig Tlb;
  ExecutionModel Exec;
  MigrationModel Migration;

  const TierSpec &tier(TierId Tier) const {
    return Tier == TierId::Fast ? Fast : Slow;
  }
};

/// The NVM-DRAM testbed (Table 1, top): DRAM is the fast tier (104 GB/s,
/// ~100 ns), Optane NVM the slow tier (39 GB/s, ~300 ns, 256 B media
/// granularity). \p CapacityScale shrinks capacities to match scaled-down
/// datasets (1.0 reproduces the full-size machine).
MachineConfig nvmDramTestbed(double CapacityScale = 1.0);

/// The MCDRAM-DRAM (Knights Landing) testbed (Table 1, bottom): MCDRAM is
/// the fast tier (400 GB/s) with only 16 GiB capacity, DDR4 the slow tier
/// (90 GB/s). KNL cores are weak, so the execution model uses 256 threads
/// with lower per-thread copy bandwidth.
///
/// \p FastCapacityDerate models the footprint gap between this repo's
/// plain CSR arrays and the paper's GraphPhi hierarchical segment format
/// (roughly 3x heavier): the paper's large graphs exceed 16 GiB MCDRAM
/// (Section 7.2), so the scaled MCDRAM must exceed-proof the scaled
/// datasets the same way.
MachineConfig mcdramDramTestbed(double CapacityScale = 1.0,
                                double FastCapacityDerate = 3.0);

} // namespace sim
} // namespace atmem

#endif // ATMEM_SIM_MACHINECONFIG_H
