//===----------------------------------------------------------------------===//
//
// Part of the ATMem reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tier identifiers and per-tier hardware specifications for the simulated
/// heterogeneous memory system. A system always has exactly two tiers,
/// mirroring the paper's NVM-DRAM and MCDRAM-DRAM testbeds: a
/// small-capacity high-performance tier ("fast") and a large-capacity
/// low-performance tier ("slow").
///
//===----------------------------------------------------------------------===//

#ifndef ATMEM_SIM_MEMORYTIER_H
#define ATMEM_SIM_MEMORYTIER_H

#include <cstdint>
#include <string>

namespace atmem {
namespace sim {

/// Identifies one of the two memory tiers.
enum class TierId : uint8_t {
  Fast = 0, ///< Small high-performance memory (DRAM next to NVM; MCDRAM).
  Slow = 1, ///< Large low-performance memory (Optane NVM; DDR4 on KNL).
};

/// Number of tiers in every simulated system.
inline constexpr unsigned NumTiers = 2;

/// Converts a tier id to a dense array index.
inline constexpr unsigned tierIndex(TierId Tier) {
  return static_cast<unsigned>(Tier);
}

/// The opposite tier.
inline constexpr TierId otherTier(TierId Tier) {
  return Tier == TierId::Fast ? TierId::Slow : TierId::Fast;
}

/// Hardware description of one memory tier. Latency and bandwidth values
/// come from the paper's published platform numbers (Section 2.1 and
/// Table 1); the access granularity models device-internal read width
/// (Optane media reads 256-byte blocks, so 64-byte demand misses waste 3/4
/// of the raw device bandwidth under random access).
struct TierSpec {
  std::string Name;
  uint64_t CapacityBytes = 0;
  /// Peak sequential bandwidth in bytes per second.
  double BandwidthBytesPerSec = 0.0;
  /// Load-to-use latency for an LLC miss served by this tier, seconds.
  double LoadLatencySec = 0.0;
  /// Device-internal access granularity in bytes; every random 64-byte miss
  /// occupies this many bytes of raw device bandwidth.
  uint32_t AccessGranularityBytes = 64;
  /// Copy bandwidth one thread can extract when reading from this tier
  /// (bytes/second). Bounds single-threaded (mbind-style) migration.
  double SingleThreadCopyBytesPerSec = 0.0;
  /// Copy bandwidth each additional thread contributes when reading from
  /// this tier, until the tier's peak bandwidth saturates.
  double PerThreadCopyBytesPerSec = 0.0;

  /// Effective bandwidth available to random 64-byte misses, accounting for
  /// the device access granularity.
  double randomAccessBandwidth() const {
    double Amplification =
        static_cast<double>(AccessGranularityBytes) / 64.0;
    return BandwidthBytesPerSec / (Amplification < 1.0 ? 1.0 : Amplification);
  }
};

} // namespace sim
} // namespace atmem

#endif // ATMEM_SIM_MEMORYTIER_H
