#include "sim/PageTable.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace atmem;
using namespace atmem::sim;

static constexpr uint64_t SmallShift = 12;
static constexpr uint64_t HugeShift = 21;
static constexpr uint64_t VpnsPerHuge = FramesPerHugeBlock;

PageTable::PageTable(FrameAllocator &FastAlloc, FrameAllocator &SlowAlloc)
    : FastAlloc(FastAlloc), SlowAlloc(SlowAlloc) {
  assert(FastAlloc.tier() == TierId::Fast && "allocator order swapped");
  assert(SlowAlloc.tier() == TierId::Slow && "allocator order swapped");
}

//===----------------------------------------------------------------------===//
// Region directory
//===----------------------------------------------------------------------===//

PageTable::Region *PageTable::regionOf(uint64_t Vpn) {
  return const_cast<Region *>(
      static_cast<const PageTable *>(this)->regionOf(Vpn));
}

const PageTable::Region *PageTable::regionOf(uint64_t Vpn) const {
  auto It = std::upper_bound(
      Regions.begin(), Regions.end(), Vpn,
      [](uint64_t V, const Region &R) { return V < R.BeginVpn; });
  if (It == Regions.begin())
    return nullptr;
  const Region &R = *std::prev(It);
  return Vpn < R.EndVpn ? &R : nullptr;
}

PageTable::Region &PageTable::ensureRegion(uint64_t BeginVpn,
                                           uint64_t EndVpn) {
  // First region whose end reaches the new range (overlap or touch).
  auto First = std::lower_bound(
      Regions.begin(), Regions.end(), BeginVpn,
      [](const Region &R, uint64_t V) { return R.EndVpn < V; });
  auto Last = First;
  uint64_t NewBegin = BeginVpn;
  uint64_t NewEnd = EndVpn;
  while (Last != Regions.end() && Last->BeginVpn <= EndVpn) {
    NewBegin = std::min(NewBegin, Last->BeginVpn);
    NewEnd = std::max(NewEnd, Last->EndVpn);
    ++Last;
  }
  if (First == Last) {
    Region Fresh;
    Fresh.BeginVpn = BeginVpn;
    Fresh.EndVpn = EndVpn;
    Fresh.Slots.assign(EndVpn - BeginVpn, 0);
    return *Regions.insert(First, std::move(Fresh));
  }
  if (First + 1 == Last && First->BeginVpn <= BeginVpn &&
      First->EndVpn >= EndVpn)
    return *First;
  Region Merged;
  Merged.BeginVpn = NewBegin;
  Merged.EndVpn = NewEnd;
  Merged.Slots.assign(NewEnd - NewBegin, 0);
  for (auto It = First; It != Last; ++It) {
    std::copy(It->Slots.begin(), It->Slots.end(),
              Merged.Slots.begin() + (It->BeginVpn - NewBegin));
    Merged.LiveSlots += It->LiveSlots;
  }
  auto At = Regions.erase(First, Last);
  return *Regions.insert(At, std::move(Merged));
}

void PageTable::pruneEmptyRegions(uint64_t BeginVpn, uint64_t EndVpn) {
  Regions.erase(std::remove_if(Regions.begin(), Regions.end(),
                               [&](const Region &R) {
                                 return R.LiveSlots == 0 &&
                                        R.BeginVpn < EndVpn &&
                                        R.EndVpn > BeginVpn;
                               }),
                Regions.end());
}

void PageTable::writeSmall(Region &R, uint64_t Vpn, uint64_t Frame,
                           TierId Tier) {
  uint64_t &S = R.slot(Vpn);
  assert(!(S & SlotValid) && "mapping over a live page");
  S = packSlot(Frame, Tier, false);
  ++R.LiveSlots;
  ++SmallCount;
}

void PageTable::writeHuge(Region &R, uint64_t BaseVpn, uint64_t FrameBase,
                          TierId Tier) {
  for (uint64_t I = 0; I < VpnsPerHuge; ++I) {
    uint64_t &S = R.slot(BaseVpn + I);
    assert(!(S & SlotValid) && "mapping over a live page");
    S = packSlot(FrameBase + I, Tier, true);
  }
  R.LiveSlots += VpnsPerHuge;
  ++HugeCount;
}

void PageTable::clearSmall(Region &R, uint64_t Vpn) {
  assert((R.slot(Vpn) & SlotValid) && "clearing a dead slot");
  R.slot(Vpn) = 0;
  --R.LiveSlots;
  --SmallCount;
}

void PageTable::clearHuge(Region &R, uint64_t BaseVpn) {
  for (uint64_t I = 0; I < VpnsPerHuge; ++I)
    R.slot(BaseVpn + I) = 0;
  R.LiveSlots -= VpnsPerHuge;
  --HugeCount;
}

//===----------------------------------------------------------------------===//
// Mapping policies
//===----------------------------------------------------------------------===//

bool PageTable::mapRegion(uint64_t Va, uint64_t Size, TierId Tier,
                          bool PreferHuge) {
  assert(Va % SmallPageBytes == 0 && "unaligned region base");
  assert(Size % SmallPageBytes == 0 && "unaligned region size");
  ++Epoch;
  FrameAllocator &Alloc = allocator(Tier);
  if (Alloc.freeBytes() < Size)
    return false;

  Region &R = ensureRegion(Va >> SmallShift, (Va + Size) >> SmallShift);
  uint64_t Pos = Va;
  uint64_t End = Va + Size;
  while (Pos < End) {
    bool CanHuge = PreferHuge && Pos % HugePageBytes == 0 &&
                   End - Pos >= HugePageBytes;
    if (CanHuge) {
      auto Base = Alloc.allocateHuge();
      if (!Base)
        reportFatalError("huge block exhausted after byte-capacity check");
      writeHuge(R, Pos >> SmallShift, *Base, Tier);
      MappedBytes[tierIndex(Tier)] += HugePageBytes;
      Pos += HugePageBytes;
      continue;
    }
    auto Frame = Alloc.allocateSmall();
    assert(Frame && "capacity pre-checked");
    writeSmall(R, Pos >> SmallShift, *Frame, Tier);
    MappedBytes[tierIndex(Tier)] += SmallPageBytes;
    Pos += SmallPageBytes;
  }
  return true;
}

uint64_t PageTable::mapRegionPreferred(uint64_t Va, uint64_t Size,
                                       TierId Preferred, bool PreferHuge) {
  assert(Va % SmallPageBytes == 0 && "unaligned region base");
  assert(Size % SmallPageBytes == 0 && "unaligned region size");
  ++Epoch;
  FrameAllocator &Pref = allocator(Preferred);
  FrameAllocator &Fallback = allocator(otherTier(Preferred));
  Region &R = ensureRegion(Va >> SmallShift, (Va + Size) >> SmallShift);
  uint64_t OnPreferred = 0;

  uint64_t Pos = Va;
  uint64_t End = Va + Size;
  while (Pos < End) {
    bool CanHuge = PreferHuge && Pos % HugePageBytes == 0 &&
                   End - Pos >= HugePageBytes;
    if (CanHuge) {
      if (auto Base = Pref.allocateHuge()) {
        writeHuge(R, Pos >> SmallShift, *Base, Preferred);
        MappedBytes[tierIndex(Preferred)] += HugePageBytes;
        OnPreferred += HugePageBytes;
        Pos += HugePageBytes;
        continue;
      }
      if (auto Base = Fallback.allocateHuge()) {
        writeHuge(R, Pos >> SmallShift, *Base, otherTier(Preferred));
        MappedBytes[tierIndex(otherTier(Preferred))] += HugePageBytes;
        Pos += HugePageBytes;
        continue;
      }
      // Neither tier can supply a contiguous block: fall through to small
      // pages for this stretch.
    }
    if (auto Frame = Pref.allocateSmall()) {
      writeSmall(R, Pos >> SmallShift, *Frame, Preferred);
      MappedBytes[tierIndex(Preferred)] += SmallPageBytes;
      OnPreferred += SmallPageBytes;
    } else if (auto Frame2 = Fallback.allocateSmall()) {
      writeSmall(R, Pos >> SmallShift, *Frame2, otherTier(Preferred));
      MappedBytes[tierIndex(otherTier(Preferred))] += SmallPageBytes;
    } else {
      reportFatalError("simulated machine out of physical memory");
    }
    Pos += SmallPageBytes;
  }
  return OnPreferred;
}

uint64_t PageTable::mapRegionInterleaved(uint64_t Va, uint64_t Size,
                                         bool PreferHuge) {
  assert(Va % SmallPageBytes == 0 && "unaligned region base");
  assert(Size % SmallPageBytes == 0 && "unaligned region size");
  ++Epoch;
  Region &R = ensureRegion(Va >> SmallShift, (Va + Size) >> SmallShift);
  uint64_t OnFast = 0;
  uint64_t Pos = Va;
  uint64_t End = Va + Size;
  unsigned Turn = 0;
  while (Pos < End) {
    TierId Wanted = Turn++ % 2 == 0 ? TierId::Fast : TierId::Slow;
    bool CanHuge = PreferHuge && Pos % HugePageBytes == 0 &&
                   End - Pos >= HugePageBytes;
    uint64_t PageBytes = CanHuge ? HugePageBytes : SmallPageBytes;
    auto TryMap = [&](TierId Tier) -> bool {
      FrameAllocator &Alloc = allocator(Tier);
      if (CanHuge) {
        auto Base = Alloc.allocateHuge();
        if (!Base)
          return false;
        writeHuge(R, Pos >> SmallShift, *Base, Tier);
      } else {
        auto Frame = Alloc.allocateSmall();
        if (!Frame)
          return false;
        writeSmall(R, Pos >> SmallShift, *Frame, Tier);
      }
      MappedBytes[tierIndex(Tier)] += PageBytes;
      if (Tier == TierId::Fast)
        OnFast += PageBytes;
      return true;
    };
    if (!TryMap(Wanted) && !TryMap(otherTier(Wanted)))
      reportFatalError("simulated machine out of physical memory");
    Pos += PageBytes;
  }
  return OnFast;
}

void PageTable::unmapRegion(uint64_t Va, uint64_t Size) {
  ++Epoch;
  uint64_t Pos = Va;
  uint64_t End = Va + Size;
  while (Pos < End) {
    Region *R = regionOf(Pos >> SmallShift);
    uint64_t S = R ? R->slot(Pos >> SmallShift) : 0;
    if (!(S & SlotValid))
      reportFatalError("unmapRegion over unmapped page");
    if (S & SlotHuge) {
      // A huge page must sit entirely inside the range, so Pos is its base.
      if (Pos % HugePageBytes != 0)
        reportFatalError("unmapRegion over unmapped page");
      allocator(slotTier(S)).freeHuge(slotFrame(S));
      MappedBytes[tierIndex(slotTier(S))] -= HugePageBytes;
      clearHuge(*R, Pos >> SmallShift);
      Pos += HugePageBytes;
    } else {
      allocator(slotTier(S)).freeSmall(slotFrame(S));
      MappedBytes[tierIndex(slotTier(S))] -= SmallPageBytes;
      clearSmall(*R, Pos >> SmallShift);
      Pos += SmallPageBytes;
    }
  }
  pruneEmptyRegions(Va >> SmallShift, (End + SmallPageBytes - 1) >> SmallShift);
}

bool PageTable::splitCoveringHugePage(uint64_t Va) {
  Region *R = regionOf(Va >> SmallShift);
  if (!R)
    return false;
  uint64_t S = R->slot(Va >> SmallShift);
  if (!(S & SlotValid) || !(S & SlotHuge))
    return false;
  uint64_t BaseVpn = (Va >> HugeShift) << (HugeShift - SmallShift);
  uint64_t FrameBase = slotFrame(R->slot(BaseVpn));
  allocator(slotTier(S)).splitHuge(FrameBase);
  // Each slot already carries its own frame number; dropping the huge bit
  // turns the block into 512 small PTEs on the same frames.
  for (uint64_t I = 0; I < VpnsPerHuge; ++I)
    R->slot(BaseVpn + I) &= ~SlotHuge;
  --HugeCount;
  SmallCount += VpnsPerHuge;
  return true;
}

bool PageTable::remapRange(uint64_t Va, uint64_t Size, TierId NewTier,
                           bool PreferHuge, uint64_t *PagesTouched) {
  assert(Va % SmallPageBytes == 0 && "unaligned range base");
  assert(Size % SmallPageBytes == 0 && "unaligned range size");
  ++Epoch;
  uint64_t End = Va + Size;
  // Huge pages straddling either boundary must split so the remap touches
  // exactly the requested range.
  if (Va % HugePageBytes != 0)
    splitCoveringHugePage(Va);
  if (End % HugePageBytes != 0)
    splitCoveringHugePage(End);

  // Capacity check: bytes arriving on NewTier from the other tier.
  uint64_t Incoming = 0;
  for (uint64_t Pos = Va; Pos < End;) {
    Translation T;
    if (!translate(Pos, T))
      reportFatalError("remapRange over unmapped page");
    if (T.Tier != NewTier)
      Incoming += T.PageBytes;
    Pos = T.PageVa + T.PageBytes;
  }
  if (allocator(NewTier).freeBytes() < Incoming)
    return false;

  uint64_t Touched = 0;
  uint64_t Pos = Va;
  while (Pos < End) {
    bool WantHuge = PreferHuge && Pos % HugePageBytes == 0 &&
                    End - Pos >= HugePageBytes;
    if (WantHuge) {
      // Release everything currently backing [Pos, Pos + 2 MiB).
      uint64_t Stop = Pos + HugePageBytes;
      Region *R = regionOf(Pos >> SmallShift);
      if (!R)
        reportFatalError("remapRange over unmapped page");
      for (uint64_t P = Pos; P < Stop;) {
        uint64_t S = R->slot(P >> SmallShift);
        if (!(S & SlotValid))
          reportFatalError("remapRange over unmapped page");
        if (S & SlotHuge) {
          allocator(slotTier(S)).freeHuge(slotFrame(S));
          MappedBytes[tierIndex(slotTier(S))] -= HugePageBytes;
          clearHuge(*R, P >> SmallShift);
          P += HugePageBytes;
        } else {
          allocator(slotTier(S)).freeSmall(slotFrame(S));
          MappedBytes[tierIndex(slotTier(S))] -= SmallPageBytes;
          clearSmall(*R, P >> SmallShift);
          P += SmallPageBytes;
        }
      }
      auto Base = allocator(NewTier).allocateHuge();
      if (!Base) {
        // Contiguity exhausted even though byte capacity was available;
        // degrade to small pages for this stretch.
        for (uint64_t P = Pos; P < Stop; P += SmallPageBytes) {
          auto Frame = allocator(NewTier).allocateSmall();
          assert(Frame && "byte capacity verified above");
          writeSmall(*R, P >> SmallShift, *Frame, NewTier);
          MappedBytes[tierIndex(NewTier)] += SmallPageBytes;
          ++Touched;
        }
      } else {
        writeHuge(*R, Pos >> SmallShift, *Base, NewTier);
        MappedBytes[tierIndex(NewTier)] += HugePageBytes;
        ++Touched;
      }
      Pos = Stop;
      continue;
    }
    // Small-page stretch (unaligned head/tail, or PreferHuge=false over a
    // huge mapping — split it down first).
    splitCoveringHugePage(Pos);
    Region *R = regionOf(Pos >> SmallShift);
    uint64_t *S = R ? &R->slot(Pos >> SmallShift) : nullptr;
    if (!S || !(*S & SlotValid))
      reportFatalError("remapRange over unmapped page");
    allocator(slotTier(*S)).freeSmall(slotFrame(*S));
    MappedBytes[tierIndex(slotTier(*S))] -= SmallPageBytes;
    auto Frame = allocator(NewTier).allocateSmall();
    assert(Frame && "byte capacity verified above");
    *S = packSlot(*Frame, NewTier, false);
    MappedBytes[tierIndex(NewTier)] += SmallPageBytes;
    ++Touched;
    Pos += SmallPageBytes;
  }
  if (PagesTouched)
    *PagesTouched = Touched;
  return true;
}

bool PageTable::movePage(uint64_t Va, TierId NewTier, bool *SplitHugePage) {
  ++Epoch;
  bool Split = splitCoveringHugePage(Va);
  if (SplitHugePage)
    *SplitHugePage = Split;
  Region *R = regionOf(Va >> SmallShift);
  uint64_t *S = R ? &R->slot(Va >> SmallShift) : nullptr;
  if (!S || !(*S & SlotValid))
    reportFatalError("movePage over unmapped page");
  if (slotTier(*S) == NewTier)
    return true;
  auto Frame = allocator(NewTier).allocateSmall();
  if (!Frame)
    return false;
  allocator(slotTier(*S)).freeSmall(slotFrame(*S));
  MappedBytes[tierIndex(slotTier(*S))] -= SmallPageBytes;
  *S = packSlot(*Frame, NewTier, false);
  MappedBytes[tierIndex(NewTier)] += SmallPageBytes;
  return true;
}

bool PageTable::translate(uint64_t Va, Translation &Out) const {
  uint64_t Vpn = Va >> SmallShift;
  const Region *R = regionOf(Vpn);
  if (!R)
    return false;
  uint64_t S = R->slot(Vpn);
  if (!(S & SlotValid))
    return false;
  if (S & SlotHuge) {
    Out.PageVa = (Va >> HugeShift) << HugeShift;
    Out.PageBytes = HugePageBytes;
    Out.FrameBase = slotFrame(S) - (Vpn & (VpnsPerHuge - 1));
    Out.Tier = slotTier(S);
    return true;
  }
  Out.PageVa = Vpn << SmallShift;
  Out.PageBytes = SmallPageBytes;
  Out.FrameBase = slotFrame(S);
  Out.Tier = slotTier(S);
  return true;
}

void PageTable::forEachMapping(
    const std::function<void(const Translation &)> &Fn) const {
  Translation T;
  for (const Region &R : Regions) {
    uint64_t I = 0;
    while (I < R.Slots.size()) {
      uint64_t S = R.Slots[I];
      if (!(S & SlotValid)) {
        ++I;
        continue;
      }
      uint64_t Vpn = R.BeginVpn + I;
      if (S & SlotHuge) {
        uint64_t BaseVpn = Vpn & ~(VpnsPerHuge - 1);
        T.PageVa = BaseVpn << SmallShift;
        T.PageBytes = HugePageBytes;
        T.FrameBase = slotFrame(S) - (Vpn - BaseVpn);
        T.Tier = slotTier(S);
        Fn(T);
        I = BaseVpn + VpnsPerHuge - R.BeginVpn;
        continue;
      }
      T.PageVa = Vpn << SmallShift;
      T.PageBytes = SmallPageBytes;
      T.FrameBase = slotFrame(S);
      T.Tier = slotTier(S);
      Fn(T);
      ++I;
    }
  }
}

TierId PageTable::tierOf(uint64_t Va) const {
  Translation T;
  if (!translate(Va, T))
    reportFatalError("tierOf on unmapped address");
  return T.Tier;
}
